(* Validator behind the @bench-smoke alias: parse BENCH_results.json back and
   check the tfree-bench/v1 shape, so a malformed emitter fails the build
   rather than silently producing an unreadable baseline. *)

open Tfree_util

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_json: " ^ msg); exit 1) fmt

let require name = function Some v -> v | None -> fail "missing field %S" name

let field doc name = require name (Jsonout.member name doc)

let float_field doc name =
  match Jsonout.to_float (field doc name) with
  | Some x -> x
  | None -> fail "field %S is not a number" name

(* The fleet member (load_gen --fleet --fleet-out): one row per worker
   count in {1, 2, 4}, each an exactly-reconciled run, plus the sweep's
   throughput gate — the sharded fleets must beat one worker on the same
   workload.  Validated whenever the member is present; [--fleet] makes
   its absence an error. *)
let check_fleet fleet =
  ignore (field (field fleet "workload") "queries");
  let rows =
    match Jsonout.to_list (field fleet "rows") with
    | Some (_ :: _ as l) -> l
    | _ -> fail "fleet rows missing or empty"
  in
  let int_of row name = int_of_float (float_field row name) in
  let by_workers =
    List.map
      (fun row ->
        let w = int_of row "workers" in
        (match field row "name" with
        | Jsonout.Str name when name = Printf.sprintf "fleet/w%d" w -> ()
        | Jsonout.Str name -> fail "fleet row for %d workers is named %S" w name
        | _ -> fail "fleet row name is not a string");
        if int_of row "wrong" <> 0 then fail "fleet/w%d row records wrong verdicts" w;
        if int_of row "restarts" <> 0 then fail "fleet/w%d row records worker restarts" w;
        (match field row "reconciled" with
        | Bool true -> ()
        | _ -> fail "fleet/w%d row is not marked reconciled" w);
        let served = int_of row "served" and ok = int_of row "ok" and extra = int_of row "extra" in
        if served <> ok + extra then
          fail "fleet/w%d: served %d != %d ok + %d re-served" w served ok extra;
        let qps = float_field row "qps" in
        if qps <= 0.0 then fail "fleet/w%d: non-positive qps" w;
        (w, qps))
      rows
  in
  if List.sort compare (List.map fst by_workers) <> [ 1; 2; 4 ] then
    fail "fleet rows must cover worker counts {1, 2, 4} exactly";
  let qps w = List.assoc w by_workers in
  if qps 2 <= qps 1 then fail "fleet/w2 qps (%g) does not beat fleet/w1 (%g)" (qps 2) (qps 1);
  if qps 4 <= qps 1 then fail "fleet/w4 qps (%g) does not beat fleet/w1 (%g)" (qps 4) (qps 1);
  List.length by_workers

let () =
  let fleet_required = Array.exists (( = ) "--fleet") Sys.argv in
  let path =
    match List.filter (fun a -> a <> "--fleet") (List.tl (Array.to_list Sys.argv)) with
    | p :: _ -> p
    | [] -> "BENCH_results.json"
  in
  let content =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail "%s" msg
  in
  let doc =
    match Jsonout.parse content with
    | Ok v -> v
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let fleet_rows =
    match Jsonout.member "fleet" doc with
    | Some fleet -> check_fleet fleet
    | None when fleet_required -> fail "--fleet requires a fleet member in %s" path
    | None -> 0
  in
  (match field doc "schema" with
  | Str "tfree-bench/v1" -> ()
  | Str "tfree-fleet/v1" ->
      (* standalone sweep document: the fleet member is all there is *)
      Printf.printf "check_json: %s ok (%d fleet rows)\n" path fleet_rows;
      exit 0
  | Str other -> fail "unexpected schema %S" other
  | _ -> fail "schema is not a string");
  (* A document produced with --only flags carries the filter (one id as a
     string, several as a list) and covers exactly the matching experiments;
     micro rows are absent from filtered runs. *)
  let check_known id =
    if Tfree_experiments.Registry.find id = None then fail "only names unknown experiment %S" id;
    id
  in
  let only =
    match Jsonout.member "only" doc with
    | None -> None
    | Some (Str id) -> Some [ check_known id ]
    | Some (List ids) ->
        Some
          (List.map
             (function Jsonout.Str id -> check_known id | _ -> fail "only list entry is not a string")
             ids)
    | Some _ -> fail "only is not a string or a list"
  in
  let harness = field doc "harness" in
  let w1 = float_field harness "wall_s_jobs1" in
  let wn = float_field harness "wall_s_jobsN" in
  if w1 <= 0.0 || wn <= 0.0 then fail "non-positive harness wall-clock";
  ignore (float_field harness "speedup");
  (match field harness "tables_identical" with
  | Bool true -> ()
  | Bool false -> fail "harness tables differ between job counts"
  | _ -> fail "tables_identical is not a bool");
  let experiments =
    match Jsonout.to_list (field harness "experiments") with
    | Some (_ :: _ as l) -> l
    | Some [] -> fail "empty experiments list"
    | None -> fail "experiments is not a list"
  in
  (* An experiment row may carry a per-phase trace profile; when it does,
     the decomposition identity must hold inside the document itself: the
     phase bits sum to accounted_bits, and the size histogram covers every
     traced message. *)
  let check_trace id tr =
    (match field tr "identity" with
    | Bool true -> ()
    | Bool false -> fail "%s: trace identity flag is false" id
    | _ -> fail "%s: trace identity is not a bool" id);
    let accounted = int_of_float (float_field tr "accounted_bits") in
    let phases =
      match Jsonout.to_list (field tr "phases") with
      | Some (_ :: _ as l) -> l
      | _ -> fail "%s: trace phases missing or empty" id
    in
    let phase_bits, phase_msgs =
      List.fold_left
        (fun (bits, msgs) p ->
          (match field p "phase" with Jsonout.Str _ -> () | _ -> fail "%s: phase name is not a string" id);
          ( bits + int_of_float (float_field p "bits"),
            msgs + int_of_float (float_field p "messages") ))
        (0, 0) phases
    in
    if phase_bits <> accounted then
      fail "%s: trace decomposition broken — phases sum to %d bits, accounted %d" id phase_bits
        accounted;
    let hist =
      match Jsonout.to_list (field tr "size_histogram") with
      | Some l -> l
      | None -> fail "%s: size_histogram is not a list" id
    in
    let hist_msgs =
      List.fold_left (fun acc b -> acc + int_of_float (float_field b "count")) 0 hist
    in
    if hist_msgs <> phase_msgs then
      fail "%s: size histogram covers %d messages, phases carry %d" id hist_msgs phase_msgs
  in
  let ids =
    List.map
      (fun e ->
        let id =
          match field e "id" with
          | Jsonout.Str id -> id
          | _ -> fail "experiment id is not a string"
        in
        if Tfree_experiments.Registry.find id = None then fail "unknown experiment id %S" id;
        ignore (float_field e "wall_s_jobs1");
        ignore (float_field e "wall_s_jobsN");
        Option.iter (check_trace id) (Jsonout.member "trace" e);
        id)
      experiments
  in
  (match only with
  | Some filter when List.sort compare ids <> List.sort compare filter ->
      fail "document filtered to [%s] but covers [%s]" (String.concat "; " filter)
        (String.concat "; " ids)
  | _ -> ());
  let micro =
    match Jsonout.to_list (field doc "micro") with
    | Some (_ :: _ as l) -> l
    | Some [] -> if only = None then fail "empty micro list" else []
    | None -> fail "micro is not a list"
  in
  List.iter
    (fun m ->
      (match field m "name" with Jsonout.Str _ -> () | _ -> fail "micro name is not a string");
      ignore (Jsonout.member "ns_per_run" m);
      ignore (Jsonout.member "r2" m))
    micro;
  (* The wire-codec rows (bench/micro_wire.ml) must be present on every
     unfiltered document, and the document itself must witness the v2-beats-v1
     gates: binary strictly below JSON on framed and payload bytes/query and
     on encode/decode ns/query, allocation inside the zero-alloc budget.  A
     baseline that no longer shows the win is as broken as a malformed one. *)
  if only = None then begin
    let wire_row name =
      match
        List.find_opt
          (fun m -> match Jsonout.member "name" m with Some (Str n) -> n = name | _ -> false)
          micro
      with
      | Some m -> m
      | None -> fail "missing micro row %S" name
    in
    let beaten name =
      let row = wire_row name in
      let v1 = float_field row "v1" and v2 = float_field row "v2" in
      if not (v2 < v1) then fail "%s: v2 (%g) is not below v1 (%g)" name v2 v1
    in
    beaten "micro/serve-encode-ns";
    beaten "micro/serve-decode-ns";
    let bytes = wire_row "micro/serve-bytes-per-query" in
    List.iter
      (fun side ->
        let v1 = float_field bytes ("v1_" ^ side) and v2 = float_field bytes ("v2_" ^ side) in
        if not (v2 < v1) then
          fail "micro/serve-bytes-per-query: v2 %s bytes (%g) not below v1 (%g)" side v2 v1)
      [ "framed"; "payload" ];
    let words = wire_row "micro/serve-minor-words-per-query" in
    let v2 = float_field words "v2" and limit = float_field words "limit" in
    if limit <= 0.0 then fail "micro/serve-minor-words-per-query: non-positive limit";
    if v2 > limit then
      fail "micro/serve-minor-words-per-query: %g minor words/query over the %g budget" v2 limit;
    (* The dataset rows (bench/dataset_bench.ml) witness the reasons
       lib/dataset exists: the snapshot loads faster than regenerating or
       re-parsing the corpus, and is the smaller on-disk encoding. *)
    let load = wire_row "dataset/snapshot-load-vs-regen" in
    let snap_ns = float_field load "snapshot_ns" in
    let regen_ns = float_field load "regen_ns" in
    let dimacs_ns = float_field load "dimacs_ns" in
    if float_field load "m" <= 0.0 then fail "dataset/snapshot-load-vs-regen: non-positive m";
    if not (snap_ns < regen_ns) then
      fail "dataset/snapshot-load-vs-regen: load (%g ns) not below regeneration (%g ns)" snap_ns
        regen_ns;
    if not (snap_ns < dimacs_ns) then
      fail "dataset/snapshot-load-vs-regen: load (%g ns) not below dimacs parse (%g ns)" snap_ns
        dimacs_ns;
    let size = wire_row "dataset/snapshot-bytes-per-edge" in
    let snap_b = float_field size "snapshot_bytes" in
    let dimacs_b = float_field size "dimacs_bytes" in
    let m = float_field size "m" in
    if m <= 0.0 then fail "dataset/snapshot-bytes-per-edge: non-positive m";
    if not (snap_b < dimacs_b) then
      fail "dataset/snapshot-bytes-per-edge: snapshot (%g B) not below dimacs (%g B)" snap_b dimacs_b;
    let bpe = float_field size "bits_per_edge" in
    if Float.abs (bpe -. (8.0 *. snap_b /. m)) > 0.01 then
      fail "dataset/snapshot-bytes-per-edge: bits_per_edge %g does not reconcile" bpe;
    (* The congest rows (lib/experiments/congest_threshold.ml): every
       threshold row must be internally consistent — detection counts within
       [0, reps], cap and threshold on the geometric grid {1, 2, 4, ...},
       threshold within the cap, and the rate at the threshold at least 1/2
       by definition — and the accounting row must witness the per-round
       ledger identity from the document alone: sum of per-round bits =
       total message bits = traced bits (same for message counts). *)
    let pow2 v =
      let i = int_of_float v in
      Float.is_integer v && i >= 1 && i land (i - 1) = 0
    in
    let thresholds =
      List.filter
        (fun m ->
          match Jsonout.member "name" m with Some (Str "congest/threshold") -> true | _ -> false)
        micro
    in
    if thresholds = [] then fail "missing congest/threshold rows";
    List.iter
      (fun row ->
        let reps = float_field row "reps" in
        let cap = float_field row "cap_rounds" in
        let detected = float_field row "detected" in
        if reps <= 0.0 then fail "congest/threshold: non-positive reps";
        if detected < 0.0 || detected > reps then
          fail "congest/threshold: detected %g outside [0, %g]" detected reps;
        if not (pow2 cap) then fail "congest/threshold: cap %g is not a power of two" cap;
        match field row "threshold_rounds" with
        | Jsonout.Null -> ()
        | Jsonout.Num t ->
            if not (pow2 t) then fail "congest/threshold: threshold %g is not a power of two" t;
            if t > cap then fail "congest/threshold: threshold %g exceeds the cap %g" t cap;
            let rate = float_field row "rate_at_threshold" in
            if rate < 0.5 || rate > 1.0 then
              fail "congest/threshold: rate %g at the threshold is outside [1/2, 1]" rate
        | _ -> fail "congest/threshold: threshold_rounds is neither a number nor null")
      thresholds;
    let acc = wire_row "congest/accounting" in
    (match field acc "identity" with
    | Bool true -> ()
    | Bool false -> fail "congest/accounting: identity flag is false"
    | _ -> fail "congest/accounting: identity is not a bool");
    let total = float_field acc "total_bits" in
    if total <= 0.0 then fail "congest/accounting: non-positive total bits";
    List.iter
      (fun k ->
        let v = float_field acc k in
        if v <> total then fail "congest/accounting: %s (%g) != total_bits (%g)" k v total)
      [ "round_bits_sum"; "traced_bits" ];
    if float_field acc "round_messages_sum" <> float_field acc "messages" then
      fail "congest/accounting: per-round message sum does not reconcile";
    if float_field acc "rounds_run" > float_field acc "budget" then
      fail "congest/accounting: rounds_run exceeds the budget"
  end;
  Printf.printf "check_json: %s ok (%d experiments, %d micro rows, %d fleet rows)\n" path
    (List.length experiments) (List.length micro) fleet_rows
