(* Validator behind the @bench-smoke alias: parse BENCH_results.json back and
   check the tfree-bench/v1 shape, so a malformed emitter fails the build
   rather than silently producing an unreadable baseline. *)

open Tfree_util

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_json: " ^ msg); exit 1) fmt

let require name = function Some v -> v | None -> fail "missing field %S" name

let field doc name = require name (Jsonout.member name doc)

let float_field doc name =
  match Jsonout.to_float (field doc name) with
  | Some x -> x
  | None -> fail "field %S is not a number" name

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_results.json" in
  let content =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail "%s" msg
  in
  let doc =
    match Jsonout.parse content with
    | Ok v -> v
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  (match field doc "schema" with
  | Str "tfree-bench/v1" -> ()
  | Str other -> fail "unexpected schema %S" other
  | _ -> fail "schema is not a string");
  (* A document produced with --only ID carries that id and covers only the
     matching experiment; micro rows are absent from filtered runs. *)
  let only =
    match Jsonout.member "only" doc with
    | None -> None
    | Some (Str id) ->
        if Tfree_experiments.Registry.find id = None then fail "only names unknown experiment %S" id;
        Some id
    | Some _ -> fail "only is not a string"
  in
  let harness = field doc "harness" in
  let w1 = float_field harness "wall_s_jobs1" in
  let wn = float_field harness "wall_s_jobsN" in
  if w1 <= 0.0 || wn <= 0.0 then fail "non-positive harness wall-clock";
  ignore (float_field harness "speedup");
  (match field harness "tables_identical" with
  | Bool true -> ()
  | Bool false -> fail "harness tables differ between job counts"
  | _ -> fail "tables_identical is not a bool");
  let experiments =
    match Jsonout.to_list (field harness "experiments") with
    | Some (_ :: _ as l) -> l
    | Some [] -> fail "empty experiments list"
    | None -> fail "experiments is not a list"
  in
  let ids =
    List.map
      (fun e ->
        let id =
          match field e "id" with
          | Jsonout.Str id -> id
          | _ -> fail "experiment id is not a string"
        in
        if Tfree_experiments.Registry.find id = None then fail "unknown experiment id %S" id;
        ignore (float_field e "wall_s_jobs1");
        ignore (float_field e "wall_s_jobsN");
        id)
      experiments
  in
  (match only with
  | Some id when ids <> [ id ] -> fail "document filtered to %S but covers other experiments" id
  | _ -> ());
  let micro =
    match Jsonout.to_list (field doc "micro") with
    | Some (_ :: _ as l) -> l
    | Some [] -> if only = None then fail "empty micro list" else []
    | None -> fail "micro is not a list"
  in
  List.iter
    (fun m ->
      (match field m "name" with Jsonout.Str _ -> () | _ -> fail "micro name is not a string");
      ignore (Jsonout.member "ns_per_run" m);
      ignore (Jsonout.member "r2" m))
    micro;
  Printf.printf "check_json: %s ok (%d experiments, %d micro rows)\n" path (List.length experiments)
    (List.length micro)
