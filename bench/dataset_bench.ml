(* Micro-benchmark of the dataset pipeline: what a registered snapshot
   buys the daemon over regenerating (or re-parsing) the corpus.

   One fixture graph — a far instance on the service's generator stream,
   a quarter-million edges — is rendered once as DIMACS text and as the
   binary snapshot, both on disk; the timed closures then race the three
   ways a daemon could obtain the graph:

     regen ns        rebuild from the generator (what a cache miss on a
                     generated instance costs)
     dimacs ns       re-parse the text file
     snapshot ns     load the snapshot

   plus the size ledger (snapshot vs DIMACS bytes, bits/edge).  The gates
   are the reasons lib/dataset exists: the snapshot must load faster than
   regeneration and faster than the text parse, and must be the smaller
   encoding — {!check} turns each failure into a violation string.  Every
   load is verified to reproduce the generator's graph exactly (compared
   by canonical snapshot image) before anything is timed.
   [bench/main.ml] embeds the rows in BENCH_results.json ([dataset/*]);
   [bench/check_json.ml] re-validates them. *)

open Tfree_graph
module Service = Tfree_wire.Service
module Snapshot = Tfree_dataset.Snapshot
module Dimacs = Tfree_dataset.Dimacs

let fixture_n = 60_000
let fixture_d = 8.0
let fixture_seed = 24

let regen () = Service.build_instance Service.Far (Service.graph_rng fixture_seed) ~n:fixture_n ~d:fixture_d ~eps:0.1

type result = {
  iters : int;
  n : int;
  m : int;
  regen_ns : float;
  dimacs_ns : float;
  snapshot_ns : float;
  dimacs_bytes : int;
  snapshot_bytes : int;
}

let time_ns ~iters f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let measure ~iters =
  if iters < 1 then invalid_arg "Dataset_bench.measure: iters must be positive";
  let g = regen () in
  let image = Snapshot.encode g in
  let dimacs_file = Filename.temp_file "tfree_dsbench" ".col" in
  let snap_file = Filename.temp_file "tfree_dsbench" ".tfs" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ dimacs_file; snap_file ])
    (fun () ->
      Dimacs.save g dimacs_file;
      Snapshot.save g snap_file;
      (* correctness before speed: every path yields the generator's graph *)
      let same h = String.equal image (Snapshot.encode h) in
      if not (same (Dimacs.load dimacs_file)) then failwith "dataset bench: dimacs load differs";
      if not (same (Snapshot.load snap_file)) then failwith "dataset bench: snapshot load differs";
      {
        iters;
        n = Graph.n g;
        m = Graph.m g;
        regen_ns = time_ns ~iters regen;
        dimacs_ns = time_ns ~iters (fun () -> Graph.m (Dimacs.load dimacs_file));
        snapshot_ns = time_ns ~iters (fun () -> Graph.m (Snapshot.load snap_file));
        dimacs_bytes = (Unix.stat dimacs_file).Unix.st_size;
        snapshot_bytes = (Unix.stat snap_file).Unix.st_size;
      })

(* ----------------------------------------------------------- the gate *)

(** Every way the snapshot is required to win, as violation strings
    (empty = pass).  The byte gate is deterministic; the timing gates
    compare a binary delta decode against a generator run and a text
    parse an order of magnitude slower, so they cannot flip on noise. *)
let violations r =
  let v = ref [] in
  let push fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  if r.snapshot_ns >= r.regen_ns then
    push "snapshot load %.0f ns >= regeneration %.0f" r.snapshot_ns r.regen_ns;
  if r.snapshot_ns >= r.dimacs_ns then
    push "snapshot load %.0f ns >= dimacs parse %.0f" r.snapshot_ns r.dimacs_ns;
  if r.snapshot_bytes >= r.dimacs_bytes then
    push "snapshot %d B >= dimacs %d B" r.snapshot_bytes r.dimacs_bytes;
  List.rev !v

let check r = match violations r with [] -> Ok () | v -> Error v

(* ------------------------------------------------------------- output *)

let print_table r =
  let ms x = Printf.sprintf "%.2f ms" (x /. 1e6) in
  Tfree_util.Table.print
    (Tfree_util.Table.make
       ~title:
         (Printf.sprintf "dataset pipeline micro (far n=%d m=%d, %d iters/row)" r.n r.m r.iters)
       ~header:[ "path"; "time"; "vs regen"; "bytes" ]
       [
         [ "regenerate"; ms r.regen_ns; "1.000"; "-" ];
         [
           "parse dimacs";
           ms r.dimacs_ns;
           Printf.sprintf "%.3f" (r.dimacs_ns /. r.regen_ns);
           string_of_int r.dimacs_bytes;
         ];
         [
           "load snapshot";
           ms r.snapshot_ns;
           Printf.sprintf "%.3f" (r.snapshot_ns /. r.regen_ns);
           string_of_int r.snapshot_bytes;
         ];
       ])

(* The BENCH_results.json rows, in the micro array next to the
   Micro_wire rows; check_json validates them by name. *)
let to_rows r =
  let num x = Tfree_util.Jsonout.Num x in
  let int n = num (float_of_int n) in
  [
    Tfree_util.Jsonout.Obj
      [
        ("name", Tfree_util.Jsonout.Str "dataset/snapshot-load-vs-regen");
        ("regen_ns", num r.regen_ns);
        ("dimacs_ns", num r.dimacs_ns);
        ("snapshot_ns", num r.snapshot_ns);
        ("m", int r.m);
      ];
    Tfree_util.Jsonout.Obj
      [
        ("name", Tfree_util.Jsonout.Str "dataset/snapshot-bytes-per-edge");
        ("snapshot_bytes", int r.snapshot_bytes);
        ("dimacs_bytes", int r.dimacs_bytes);
        ("m", int r.m);
        ("bits_per_edge", num (8.0 *. float_of_int r.snapshot_bytes /. float_of_int (max 1 r.m)));
      ];
  ]
