(* Smoke behind the @congest-smoke alias: the round-budget machinery end to
   end on a small fixed instance, deterministic in its seeds.

   1. Threshold scan: for several seeds, the geometric-grid budget returned
      by [rounds_to_detect] must equal a naive scan that re-runs the tester
      independently at each grid budget (the budget-independence claim made
      executable), at least half of the seeds must detect within the cap
      (the detection-probability-crosses-1/2 methodology E27 uses), and a
      budget of one round must never detect (probes sent in the only round
      are charged but not delivered).

   2. Per-round accounting: one traced run must reconcile three ways — the
      sum of per-round bits equals [stats.total_message_bits] equals the
      traced bits — and the per-round rows re-derived from the serialized
      Chrome trace must equal the in-memory [round_stats] ledger.  The
      trace file is then handed to trace_check, which re-asserts the
      decomposition identity from the bytes alone. *)

open Tfree_util
open Tfree_graph
module Sim = Tfree_congest.Simulator
module Tester = Tfree_congest.Triangle_tester
module Trace = Tfree_trace.Trace

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("congest_smoke: " ^ msg); exit 1) fmt

let trace_file = "congest_trace.json"

let fmt_opt = function Some r -> string_of_int r | None -> "none"

let () =
  let g = Gen.diluted_far (Rng.create 4242) ~triangles:6 ~extra_degree:8 in
  let cap = 512 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  (* 1. the threshold scan, checked against the naive per-budget re-scan *)
  let naive ~seed =
    let rec scan r =
      if r > cap then None
      else if (Tester.test ~rounds:r g ~eps:0.1 ~seed).Tester.triangle <> None then Some r
      else scan (2 * r)
    in
    scan 1
  in
  let thresholds =
    List.map
      (fun seed ->
        let grid = Tester.rounds_to_detect g ~seed ~max_rounds:cap in
        let expect = naive ~seed in
        if grid <> expect then
          fail "seed %d: grid scan %s != naive scan %s" seed (fmt_opt grid) (fmt_opt expect);
        if (Tester.test ~rounds:1 g ~eps:0.1 ~seed).Tester.triangle <> None then
          fail "seed %d: detected with a 1-round budget (no message was ever delivered)" seed;
        grid)
      seeds
  in
  let detected = List.length (List.filter Option.is_some thresholds) in
  if 2 * detected < List.length seeds then
    fail "only %d/%d seeds detect within %d rounds" detected (List.length seeds) cap;
  (* 2. the per-round accounting identity, in memory and through the file *)
  let c = Trace.create () in
  let r =
    Trace.with_collector c (fun () -> Tester.test ~tap:(Trace.tap c) ~rounds:cap g ~eps:0.1 ~seed:1)
  in
  let st = r.Tester.stats in
  let sum_bits = Array.fold_left (fun a (rs : Sim.round_stat) -> a + rs.Sim.round_bits) 0 st.Sim.round_stats in
  let sum_msgs =
    Array.fold_left (fun a (rs : Sim.round_stat) -> a + rs.Sim.round_messages) 0 st.Sim.round_stats
  in
  if sum_bits <> st.Sim.total_message_bits then
    fail "per-round bits sum to %d, total is %d" sum_bits st.Sim.total_message_bits;
  if sum_msgs <> st.Sim.messages then
    fail "per-round messages sum to %d, total is %d" sum_msgs st.Sim.messages;
  if Trace.total_bits c <> st.Sim.total_message_bits then
    fail "traced %d bits, accounted %d" (Trace.total_bits c) st.Sim.total_message_bits;
  if Array.length st.Sim.round_stats <> st.Sim.rounds_run then
    fail "%d round stats for %d executed rounds" (Array.length st.Sim.round_stats) st.Sim.rounds_run;
  let json =
    Trace.to_chrome c
      ~other:
        [
          ("accounted_bits", Jsonout.Num (float_of_int st.Sim.total_message_bits));
          ("protocol", Jsonout.Str "congest");
          ("verdict", Jsonout.Str (match r.Tester.triangle with Some _ -> "triangle" | None -> "triangle-free"));
          ("outcome", Jsonout.Str (Sim.outcome_to_string st.Sim.outcome));
          ("rounds_run", Jsonout.Num (float_of_int st.Sim.rounds_run));
          ("round_budget", Jsonout.Num (float_of_int r.Tester.budget));
        ]
  in
  Out_channel.with_open_text trace_file (fun oc -> Out_channel.output_string oc (Jsonout.to_string json));
  (* the serialized file must yield the same per-round ledger *)
  let from_stats =
    List.filter
      (fun (_, m, _) -> m > 0)
      (List.mapi
         (fun i (rs : Sim.round_stat) -> (i + 1, rs.Sim.round_messages, rs.Sim.round_bits))
         (Array.to_list st.Sim.round_stats))
  in
  let reparsed =
    match Jsonout.parse (In_channel.with_open_text trace_file In_channel.input_all) with
    | Ok doc -> Trace.round_rows_of_chrome doc
    | Error msg -> fail "%s does not parse back: %s" trace_file msg
  in
  if reparsed <> from_stats then fail "per-round rows from the trace file diverge from round_stats";
  Printf.printf
    "congest_smoke: ok (%d/%d seeds detect within %d rounds; traced run %s after %d round(s), %d \
     bits = per-round sum = traced bits; wrote %s)\n"
    detected (List.length seeds) cap
    (Sim.outcome_to_string st.Sim.outcome)
    st.Sim.rounds_run st.Sim.total_message_bits trace_file
