(* Standalone wire-codec micro-benchmark gate, behind the @micro-smoke
   alias: run {!Micro_wire} at the requested iteration count, print the
   v1-vs-v2 table, and exit nonzero unless binary v2 beats JSON v1 on
   framed and payload bytes/query and on encode and decode ns/query, and
   the v2 round trip stays inside its minor-words allocation budget.

     (default)   full iteration count, for quoting numbers
     --smoke     reduced iterations; what CI runs on every push
     --iters N   explicit count (overrides --smoke when given after it) *)

let iters = ref 200_000
let smoke_iters = 20_000

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        iters := smoke_iters;
        parse rest
    | "--iters" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            iters := n;
            parse rest
        | _ ->
            prerr_endline "micro: --iters expects a positive integer";
            exit 2)
    | arg :: _ ->
        Printf.eprintf "micro: unknown argument %s (expected --smoke, --iters N)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let r = Micro_wire.measure ~iters:!iters in
  Micro_wire.print_table r;
  match Micro_wire.check r with
  | Ok () -> print_endline "micro: ok (v2 beats v1 on bytes and time; zero-alloc budget held)"
  | Error violations ->
      List.iter (fun v -> prerr_endline ("micro: GATE FAILED: " ^ v)) violations;
      exit 1
