(* Validator behind the @trace-smoke alias: parse a Chrome trace-event file
   written by `tfree run --trace` and re-assert, from the serialized bytes
   alone, that

     - the document is valid JSON of the traceEvents-object form, with at
       least one phase span and one message instant event;
     - every message event carries well-formed args: a parseable channel, a
       non-negative bit count, a positive round, a phase and a sequence
       number, with sequence numbers forming 0..N-1 exactly once each;
     - the decomposition identity holds: the message events' bits sum to the
       recorded accounted_bits (what the cost ledger charged).

   Usage: trace_check FILE *)

open Tfree_util
module Trace = Tfree_trace.Trace

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("trace_check: " ^ msg); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: trace_check FILE" in
  let content =
    try In_channel.with_open_text path In_channel.input_all with Sys_error msg -> fail "%s" msg
  in
  let doc =
    match Jsonout.parse content with
    | Ok v -> v
    | Error msg -> fail "%s: not Chrome trace-event JSON: %s" path msg
  in
  let events =
    match Option.bind (Jsonout.member "traceEvents" doc) Jsonout.to_list with
    | Some l -> l
    | None -> fail "missing traceEvents list"
  in
  let cat ev = match Jsonout.member "cat" ev with Some (Jsonout.Str c) -> c | _ -> "" in
  let spans = List.filter (fun ev -> cat ev = "phase") events in
  let messages = List.filter (fun ev -> cat ev = "message") events in
  if spans = [] then fail "no phase spans recorded";
  if messages = [] then fail "no message events recorded";
  List.iter
    (fun ev ->
      match Jsonout.member "ph" ev with
      | Some (Jsonout.Str ("X" | "i")) -> ()
      | _ -> fail "event with ph neither X nor i")
    events;
  let num args k =
    match Option.bind (Jsonout.member k args) Jsonout.to_float with
    | Some f -> int_of_float f
    | None -> fail "message args missing numeric %S" k
  in
  let seen_seq = Hashtbl.create 256 in
  let traced_bits =
    List.fold_left
      (fun acc ev ->
        let args = match Jsonout.member "args" ev with Some a -> a | None -> fail "message without args" in
        (match Jsonout.member "channel" args with
        | Some (Jsonout.Str ch) ->
            if Tfree_comm.Channel.parse ch = None then fail "unparseable channel %S" ch
        | _ -> fail "message args missing channel");
        (match Jsonout.member "phase" args with
        | Some (Jsonout.Str _) -> ()
        | _ -> fail "message args missing phase");
        let bits = num args "bits" in
        if bits < 0 then fail "negative bit count %d" bits;
        if num args "round" < 1 then fail "round below 1";
        let seq = num args "seq" in
        if Hashtbl.mem seen_seq seq then fail "duplicate sequence number %d" seq;
        Hashtbl.add seen_seq seq ();
        acc + bits)
      0 messages
  in
  let n_msgs = List.length messages in
  for s = 0 to n_msgs - 1 do
    if not (Hashtbl.mem seen_seq s) then fail "sequence numbers are not 0..%d (missing %d)" (n_msgs - 1) s
  done;
  let accounted =
    match Trace.other_num_of_chrome "accounted_bits" doc with
    | Some a -> a
    | None -> fail "otherData.accounted_bits missing"
  in
  if traced_bits <> accounted then
    fail "decomposition broken: %d traced bits, %d accounted" traced_bits accounted;
  (* The library must recover the same totals from the file as the raw scan. *)
  let row_bits = List.fold_left (fun acc (_, _, b) -> acc + b) 0 (Trace.phase_rows_of_chrome doc) in
  if row_bits <> traced_bits then fail "phase_rows_of_chrome disagrees with the raw event scan";
  Printf.printf "trace_check: %s ok (%d spans, %d messages, %d bits = accounted exactly)\n" path
    (List.length spans) n_msgs traced_bits
