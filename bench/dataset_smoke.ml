(* Dataset smoke behind the @dataset-smoke alias — the lib/dataset
   pipeline end to end, deterministic in its seeds:

     1. import: a DIMACS fixture parses, snapshots, and registers in a
        fresh manifest; the manifest round-trips through Registry.load;
        a generated dataset (the service's generator stream) registers
        alongside it with its gen parameters recorded.

     2. scale: a >= 1M-edge corpus renders as an edge list, re-parses to
        the identical graph, snapshots, and loads back measurably faster
        than regenerating it.

     3. serve: a forked tfree-serve daemon loads the manifest and answers
        {"op": "dataset"} over JSON v1 and binary v2 with responses equal
        to each other and to the in-process run, byte-identical (v1 line)
        to the equivalent generated-instance query, and a repeat query
        must hit the instance cache; the stats telemetry must reconcile
        the per-dataset served gauge, the cache counters and the
        per-version split. *)

open Tfree_util
open Tfree_graph
module Service = Tfree_wire.Service
module Proto = Tfree_wire.Proto
module Snapshot = Tfree_dataset.Snapshot
module Dimacs = Tfree_dataset.Dimacs
module Edgelist = Tfree_dataset.Edgelist
module Registry = Tfree_dataset.Registry

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("dataset_smoke: " ^ msg); exit 1) fmt

let dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "tfree-dataset-smoke-%d" (Unix.getpid ())) in
  Unix.mkdir d 0o700;
  d

let cleanup () =
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let in_dir f = Filename.concat dir f
let manifest = in_dir "datasets.json"
let same_graph a b = String.equal (Snapshot.encode a) (Snapshot.encode b)

(* the generated twin of the "gen" dataset: far n=300 d=6 seed=5 on the
   service's generator stream, so dataset and generated queries agree *)
let gen_n = 300
let gen_d = 6.0
let gen_seed = 5
let gen_graph () = Service.build_instance Service.Far (Service.graph_rng gen_seed) ~n:gen_n ~d:gen_d ~eps:0.1

(* ---------- part 1: import + manifest round trip ---------- *)

let fixture_dimacs =
  "c dataset_smoke fixture: K4 plus a pendant\n\
   p edge 5 7\n\
   e 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\ne 4 5\n"

let import () =
  let reg = Registry.create ~dir () in
  (* the DIMACS fixture, imported the way `tfree dataset import` does it *)
  let g_fix = Dimacs.parse_string fixture_dimacs in
  if Graph.n g_fix <> 5 || Graph.m g_fix <> 7 then
    fail "fixture parsed to n=%d m=%d, expected 5/7" (Graph.n g_fix) (Graph.m g_fix);
  Snapshot.save g_fix (in_dir "fixture.tfs");
  Registry.add reg
    { Registry.name = "fixture"; path = "fixture.tfs"; format = Registry.Snapshot;
      n = Graph.n g_fix; m = Graph.m g_fix; gen = None };
  (* the generated dataset, the way `tfree dataset gen` records it *)
  let g_gen = gen_graph () in
  Snapshot.save g_gen (in_dir "gen.tfs");
  Registry.add reg
    { Registry.name = "gen"; path = "gen.tfs"; format = Registry.Snapshot; n = Graph.n g_gen;
      m = Graph.m g_gen;
      gen = Some { Registry.gen_family = "far"; gen_n; gen_d; gen_eps = 0.1; gen_seed } };
  Registry.save reg manifest;
  (* reload: same entries, same graphs *)
  let reg' = Registry.load manifest in
  if List.length (Registry.entries reg') <> 2 then fail "manifest round trip lost entries";
  if not (same_graph g_fix (Registry.graph reg' "fixture")) then
    fail "fixture graph differs after manifest round trip";
  if not (same_graph g_gen (Registry.graph reg' "gen")) then
    fail "gen graph differs after manifest round trip";
  (match Registry.find reg' "gen" with
  | Some { Registry.gen = Some m; _ } when m.Registry.gen_seed = gen_seed -> ()
  | _ -> fail "gen metadata lost in manifest round trip");
  Printf.printf "dataset_smoke: import ok (2 datasets, manifest %s)\n%!" manifest;
  reg'

(* ---------- part 2: the million-edge corpus ---------- *)

let big_corpus reg =
  let n = 260_000 and d = 8.0 and seed = 42 in
  let regen () = Service.build_instance Service.Far (Service.graph_rng seed) ~n ~d ~eps:0.1 in
  let t0 = Unix.gettimeofday () in
  let g = regen () in
  let regen_s = Unix.gettimeofday () -. t0 in
  if Graph.m g < 1_000_000 then fail "big corpus has only %d edges, wanted >= 1M" (Graph.m g);
  (* the text parser at scale: render, stream back, identical graph *)
  let text = Edgelist.to_string g in
  if not (same_graph g (Edgelist.parse_string ~n:(Graph.n g) text)) then
    fail "big corpus edge-list round trip differs";
  Snapshot.save g (in_dir "big.tfs");
  let t1 = Unix.gettimeofday () in
  let loaded = Snapshot.load (in_dir "big.tfs") in
  let load_s = Unix.gettimeofday () -. t1 in
  if not (same_graph g loaded) then fail "big corpus snapshot round trip differs";
  if load_s >= regen_s then
    fail "big snapshot load (%.3fs) not faster than regeneration (%.3fs)" load_s regen_s;
  Registry.add reg
    { Registry.name = "big"; path = "big.tfs"; format = Registry.Snapshot; n = Graph.n g;
      m = Graph.m g;
      gen = Some { Registry.gen_family = "far"; gen_n = n; gen_d = d; gen_eps = 0.1; gen_seed = seed } };
  Registry.save reg manifest;
  Printf.printf
    "dataset_smoke: big corpus ok (m=%d, %d edge-list bytes, snapshot load %.3fs vs regen %.3fs)\n%!"
    (Graph.m g) (String.length text) load_s regen_s

(* ---------- part 3: the daemon ---------- *)

let stats_num stats k =
  match Option.bind (Jsonout.member k stats) Jsonout.to_float with
  | Some f -> int_of_float f
  | None -> fail "stats missing numeric field %S" k

let stats_sub stats k =
  match Jsonout.member k stats with Some o -> o | None -> fail "stats missing object %S" k

let serve () =
  let path = in_dir "serve.sock" in
  let registry = Registry.load manifest in
  (* five protocol queries: gen over v2, over v1, a repeat (cache hit),
     the generated twin, and one over the big corpus *)
  match Unix.fork () with
  | 0 -> exit (if Service.serve ~line_timeout_s:30.0 ~registry ~path () = 5 then 0 else 1)
  | server -> (
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then (
            Unix.kill server Sys.sigkill;
            fail "server socket never appeared")
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (try
         let dreq = { (Service.default_dataset_request ~name:"gen") with ds_seed = gen_seed } in
         let ask ?protocol req =
           match Service.client_dataset ?protocol ~path req with
           | Ok r -> r
           | Error msg -> fail "dataset query failed: %s" msg
         in
         let via_v2 = ask ~protocol:Proto.V2 dreq in
         let via_v1 = ask ~protocol:Proto.V1 dreq in
         let repeat = ask ~protocol:Proto.V1 dreq in
         if via_v2 <> via_v1 || via_v1 <> repeat then
           fail "dataset responses differ across wire versions or repeats";
         (* the in-process run and the generated twin, both bit-identical *)
         let local = Service.run_dataset_request ~registry dreq in
         if via_v1 <> local then fail "served dataset response differs from the in-process run";
         let twin =
           { Service.default_request with family = Service.Far; n = gen_n; d = gen_d; seed = gen_seed }
         in
         (match Service.client_query ~protocol:Proto.V1 ~path twin with
         | Error msg -> fail "generated twin query failed: %s" msg
         | Ok r -> if r <> via_v1 then fail "generated twin response differs from the dataset response");
         (* the big corpus through the daemon *)
         let big = { (Service.default_dataset_request ~name:"big") with ds_seed = 3 } in
         let served_big = ask big in
         let local_big = Service.run_dataset_request ~registry big in
         if served_big <> local_big then fail "big-corpus response differs from the in-process run";
         (* telemetry: per-dataset gauge, cache counters, version split *)
         let stats =
           match Service.client_stats ~path () with
           | Ok s -> s
           | Error msg -> fail "stats query: %s" msg
         in
         if stats_num stats "queries_served" <> 5 then
           fail "server served %d queries, expected 5" (stats_num stats "queries_served");
         if stats_num stats "errors" <> 0 then fail "server counted %d errors" (stats_num stats "errors");
         let datasets = stats_sub stats "datasets" in
         if stats_num datasets "gen" <> 3 then
           fail "datasets gauge served gen %d times, expected 3" (stats_num datasets "gen");
         if stats_num datasets "big" <> 1 then
           fail "datasets gauge served big %d times, expected 1" (stats_num datasets "big");
         let cache = stats_sub stats "cache" in
         (* gen misses once then hits twice; the twin shares the graph rng
            but keys separately (one miss); big misses once *)
         if stats_num cache "hits" <> 2 || stats_num cache "misses" <> 3 then
           fail "cache hits/misses %d/%d, expected 2/3" (stats_num cache "hits")
             (stats_num cache "misses");
         let versions = stats_sub stats "protocol_versions" in
         let v_served v = stats_num (stats_sub versions v) "served" in
         if v_served "v1" <> 3 || v_served "v2" <> 2 then
           fail "version split v1=%d v2=%d, expected 3/2" (v_served "v1") (v_served "v2")
       with e ->
         Unix.kill server Sys.sigkill;
         ignore (Unix.waitpid [] server);
         raise e);
      Service.client_shutdown ~path ();
      match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 ->
          print_endline "dataset_smoke: serve ok (v1 = v2 = in-process = generated twin; stats reconcile)"
      | _, _ -> fail "server did not exit cleanly (or served a wrong count)")

let () =
  Fun.protect ~finally:cleanup (fun () ->
      let reg = import () in
      big_corpus reg;
      serve ());
  print_endline "dataset_smoke: ok"
