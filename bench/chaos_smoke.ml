(* Chaos smoke behind the @chaos-smoke alias — the fault-injection stack
   end to end, deterministic in its seeds:

     1. in-process chaos matrix: every fault kind x {pipe, socketpair} x all
        four protocols, one injected fault per run.  A run either completes
        with the fault-free verdict and bit count (the fault missed or was
        benign) or aborts with a typed Wire_error whose scheduled kind is
        non-benign.  Wrong verdicts and hangs are hard failures.

     2. forked tfree-serve daemon sabotaging its own first three replies
        (drop, corrupt, truncate); a client with retries=5 must recover the
        correct verdict spending exactly three retries, and the server's
        stats must count exactly three injected faults and zero errors.

     3. a client killed mid-request (partial line, then close) must cost the
        daemon one transport error and nothing else: the next query on a
        fresh connection is served normally. *)

open Tfree_util
module Common = Tfree_experiments.Common
module Service = Tfree_wire.Service
module Wire = Tfree_wire.Wire_runtime
module Fault = Tfree_wire.Fault
module Wire_error = Tfree_wire.Wire_error
module Metrics = Tfree_wire.Metrics

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("chaos_smoke: " ^ msg); exit 1) fmt
let params = Tfree.Params.practical

(* ---------- part 1: in-process chaos matrix ---------- *)

let run_tester ?tap proto ~seed ~davg parts =
  match proto with
  | `Unrestricted -> Tfree.Tester.unrestricted ?tap ~seed params parts
  | `Sim -> Tfree.Tester.simultaneous ?tap ~seed params ~d:davg parts
  | `Oblivious -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params parts
  | `Exact -> Tfree.Tester.exact ?tap ~seed parts

let protocols =
  [ ("unrestricted", `Unrestricted); ("sim", `Sim); ("oblivious", `Oblivious); ("exact", `Exact) ]

let kinds =
  [
    Fault.Drop;
    Fault.Corrupt { bit = 13 };
    Fault.Truncate { keep = 5 };
    Fault.Delay { amount = 2 };
    Fault.Partial { at = 3 };
    Fault.Close;
  ]

let chaos_matrix () =
  let seed = 7 in
  let _, parts = Common.far_instance ~n:200 ~d:4.0 ~k:4 ~dup:true seed in
  let davg = 4.0 in
  let clean = ref 0 and aborted = ref 0 in
  List.iter
    (fun transport ->
      List.iter
        (fun (pname, proto) ->
          let base = run_tester proto ~seed ~davg parts in
          List.iter
            (fun kind ->
              List.iter
                (fun op ->
                  let net = Wire.create ~fault:[ { Fault.op; kind } ] ~transport ~k:4 () in
                  match
                    Fun.protect
                      ~finally:(fun () -> Wire.close net)
                      (fun () -> run_tester ~tap:(Wire.tap net) proto ~seed ~davg parts)
                  with
                  | r ->
                      if
                        r.Tfree.Tester.verdict <> base.Tfree.Tester.verdict
                        || r.Tfree.Tester.bits <> base.Tfree.Tester.bits
                      then
                        fail "%s/%s under %s@%d: run completed but differs from fault-free base"
                          (Wire.kind_to_string transport) pname (Fault.kind_name kind) op
                      else incr clean
                  | exception Wire_error.Wire_error k ->
                      if Fault.benign kind then
                        fail "%s/%s: benign fault %s@%d aborted the run (%s)"
                          (Wire.kind_to_string transport) pname (Fault.kind_name kind) op
                          (Wire_error.message k)
                      else incr aborted)
                [ 0; 5 ])
            kinds)
        protocols)
    [ Wire.Pipe; Wire.Socketpair ];
  Printf.printf "chaos_smoke: matrix ok (%d runs: %d clean, %d typed aborts, 0 wrong verdicts)\n"
    (!clean + !aborted) !clean !aborted

(* ---------- part 1b: the same matrix over {"op": "dataset"} ---------- *)

(* A dataset-backed exchange under every fault kind x both transports x the
   protocols: the run either answers the fault-free response bit for bit or
   aborts with a typed Wire_error (surfaced by run_dataset_request exactly
   as run_request surfaces it).  Never a wrong verdict, never a hang. *)
let dataset_matrix () =
  let module Registry = Tfree_dataset.Registry in
  let module Snapshot = Tfree_dataset.Snapshot in
  let seed = 7 in
  let g = Service.build_instance Service.Far (Service.graph_rng seed) ~n:200 ~d:4.0 ~eps:0.1 in
  let snap = Filename.temp_file "tfree_chaos_ds" ".tfs" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      Snapshot.save g snap;
      let registry = Registry.create () in
      Registry.add registry
        { Registry.name = "chaos"; path = snap; format = Registry.Snapshot;
          n = Tfree_graph.Graph.n g; m = Tfree_graph.Graph.m g; gen = None };
      let spec_of op kind =
        Printf.sprintf "%d:%s" op
          (match kind with
          | Fault.Drop -> "drop"
          | Fault.Corrupt { bit } -> Printf.sprintf "corrupt@%d" bit
          | Fault.Truncate { keep } -> Printf.sprintf "truncate@%d" keep
          | Fault.Delay { amount } -> Printf.sprintf "delay@%d" amount
          | Fault.Partial { at } -> Printf.sprintf "partial@%d" at
          | Fault.Close -> "close")
      in
      let clean = ref 0 and aborted = ref 0 in
      List.iter
        (fun transport ->
          List.iter
            (fun (pname, protocol) ->
              let base_req =
                { (Service.default_dataset_request ~name:"chaos") with
                  ds_protocol = protocol; ds_seed = seed; ds_transport = transport }
              in
              let base = Service.run_dataset_request ~registry base_req in
              List.iter
                (fun kind ->
                  List.iter
                    (fun op ->
                      let req = { base_req with Service.ds_fault = spec_of op kind } in
                      match Service.run_dataset_request ~registry req with
                      | r ->
                          if r <> base then
                            fail "dataset %s/%s under %s: run completed but differs from base"
                              (Wire.kind_to_string transport) pname req.Service.ds_fault
                          else incr clean
                      | exception Wire_error.Wire_error k ->
                          if Fault.benign kind then
                            fail "dataset %s/%s: benign fault %s aborted the run (%s)"
                              (Wire.kind_to_string transport) pname req.Service.ds_fault
                              (Wire_error.message k)
                          else incr aborted)
                    [ 0; 5 ])
                kinds)
            [ ("sim", Service.Sim); ("oblivious", Service.Oblivious); ("exact", Service.Exact) ])
        [ Wire.Pipe; Wire.Socketpair ];
      Printf.printf
        "chaos_smoke: dataset matrix ok (%d runs: %d clean, %d typed aborts, 0 wrong verdicts)\n"
        (!clean + !aborted) !clean !aborted)

(* ---------- forked-daemon scaffolding ---------- *)

let with_server ?(fault = []) ~tag ~expect_served f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-chaos-%s-%d.sock" tag (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 -> exit (if Service.serve ~line_timeout_s:5.0 ~fault ~path () = expect_served then 0 else 1)
  | server ->
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then (
            Unix.kill server Sys.sigkill;
            fail "%s: server socket %s never appeared" tag path)
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (try f path
       with e ->
         Unix.kill server Sys.sigkill;
         ignore (Unix.waitpid [] server);
         raise e);
      Service.client_shutdown ~path ();
      (match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> fail "%s: server did not exit cleanly (or served a wrong count)" tag)

let stats_num stats k =
  match Option.bind (Jsonout.member k stats) Jsonout.to_float with
  | Some f -> int_of_float f
  | None -> fail "stats missing numeric field %S" k

let stats_category stats name =
  match Jsonout.member "errors_by_category" stats with
  | None -> fail "stats missing errors_by_category"
  | Some cats -> (
      match Option.bind (Jsonout.member name cats) Jsonout.to_float with
      | Some f -> int_of_float f
      | None -> fail "errors_by_category missing %S" name)

let get_stats path =
  match Service.client_stats ~path () with
  | Ok stats -> stats
  | Error msg -> fail "stats query: %s" msg

(* ---------- part 2: retry recovery through sabotaged replies ---------- *)

let retry_recovery () =
  let fault =
    [
      { Fault.op = 0; kind = Fault.Drop };
      { Fault.op = 1; kind = Fault.Corrupt { bit = 13 } };
      { Fault.op = 2; kind = Fault.Truncate { keep = 5 } };
    ]
  in
  let req = { Service.default_request with n = 200; seed = 3 } in
  (* three sabotaged replies + the one that gets through, all served queries *)
  with_server ~fault ~tag:"retry" ~expect_served:4 (fun path ->
      let m = Metrics.create () in
      match Service.client_query ~retries:5 ~backoff_s:0.01 ~metrics:m ~path req with
      | Error msg -> fail "retry client failed: %s" msg
      | Ok resp ->
          let local = Service.run_request req in
          if
            resp.Service.verdict <> local.Service.verdict
            || resp.Service.bits <> local.Service.bits
          then fail "retry client recovered a response that differs from the local run";
          if Metrics.retries m <> 3 then
            fail "client spent %d retries, schedule forced exactly 3" (Metrics.retries m);
          let stats = get_stats path in
          if stats_num stats "injected_faults" <> 3 then
            fail "server injected %d faults, scheduled 3" (stats_num stats "injected_faults");
          if stats_num stats "errors" <> 0 then
            fail "injected faults were miscounted as %d errors" (stats_num stats "errors");
          if stats_num stats "queries_served" <> 4 then
            fail "server served %d queries, expected 4" (stats_num stats "queries_served"));
  print_endline "chaos_smoke: retry recovery ok (3 retries, 3 injected faults, 0 errors)"

(* ---------- part 3: client killed mid-request ---------- *)

let killed_client () =
  with_server ~tag:"killed" ~expect_served:1 (fun path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let partial = Bytes.of_string "{\"protocol\": \"ex" in
      ignore (Unix.write sock partial 0 (Bytes.length partial));
      Unix.close sock;
      (* the daemon must shrug that off and serve the next connection *)
      let req = { Service.default_request with n = 200; seed = 5 } in
      (match Service.client_query ~path req with
      | Error msg -> fail "query after killed client failed: %s" msg
      | Ok resp ->
          if not (Wire.reconciles resp.Service.wire) then
            fail "reply after killed client does not reconcile");
      let stats = get_stats path in
      if stats_num stats "errors" <> 1 || stats_category stats "transport" <> 1 then
        fail "killed client should cost exactly one transport error (errors=%d, transport=%d)"
          (stats_num stats "errors")
          (stats_category stats "transport");
      if stats_num stats "queries_served" <> 1 then
        fail "server served %d queries, expected 1" (stats_num stats "queries_served"));
  print_endline "chaos_smoke: killed client ok (one transport error, daemon kept serving)"

let () =
  chaos_matrix ();
  dataset_matrix ();
  retry_recovery ();
  killed_client ();
  print_endline "chaos_smoke: ok"
