(* Benchmark and reproduction harness.

   Two parts:
   1. The Table-1 regeneration harness: every experiment of DESIGN.md §4 runs
      at Small scale and prints its table (these are the numbers EXPERIMENTS.md
      quotes).
   2. Bechamel micro-benchmarks: one Test.make per Table-1 protocol row (plus
      the substrate hot paths), timing a single representative run.

   Modes (parsed from argv, no cmdliner here to keep bench standalone):
     (default)      print part 1 then part 2, as always
     --json         additionally run part 1 at jobs=1 and at jobs=N, verify
                    the rendered tables are identical, and write
                    BENCH_results.json (schema documented in EXPERIMENTS.md)
     --jobs N       request N pool workers (same semantics as the CLI flag:
                    a ceiling, capped at the hardware core count)
     --smoke        shrink the bechamel quota so --json finishes quickly;
                    used by the @bench-smoke dune alias
     --only ID      run a subset of the registered experiments instead of the
                    whole harness; repeat the flag for a union of ids.
                    Bechamel micro-benchmarks are skipped and the JSON
                    document records the filter in its "only" field (a
                    string for one id, a list for several) *)

open Tfree_util
open Tfree_graph
open Bechamel
open Toolkit

(* ------------------------------------------------------------ argv *)

type opts = { json : bool; smoke : bool; jobs : int option; only : string list }

let opts =
  let o = ref { json = false; smoke = false; jobs = None; only = [] } in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        o := { !o with json = true };
        parse rest
    | "--smoke" :: rest ->
        o := { !o with smoke = true };
        parse rest
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            o := { !o with jobs = Some j };
            parse rest
        | _ ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2)
    | "--only" :: id :: rest ->
        (* Repeated flags union; a duplicate id is not an error, just noise. *)
        if not (List.mem id !o.only) then o := { !o with only = !o.only @ [ id ] };
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s (expected --json, --smoke, --jobs N, --only ID)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  !o

(* The experiments this invocation runs: the full registry, or the union of
   the ids named by --only flags, in registry order. *)
let entries =
  match opts.only with
  | [] -> Tfree_experiments.Registry.all
  | ids ->
      List.iter
        (fun id ->
          if Tfree_experiments.Registry.find id = None then (
            Printf.eprintf "bench: unknown experiment id %S (try `tfree list`)\n" id;
            exit 2))
        ids;
      List.filter
        (fun (e : Tfree_experiments.Registry.entry) -> List.mem e.Tfree_experiments.Registry.id ids)
        Tfree_experiments.Registry.all

(* ------------------------------------------------ part 1: experiments *)

(* Render the whole Table-1 harness to a string, timing each experiment.
   Keeping the output as a string serves two purposes: the --json mode diffs
   the jobs=1 and jobs=N renderings to certify determinism, and the default
   mode prints it verbatim (byte-identical to the historical output). *)
let render_experiments () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "# Table 1 reproduction (Small scale; see EXPERIMENTS.md)\n\n";
  let t0 = Unix.gettimeofday () in
  let timings =
    List.map
      (fun (e : Tfree_experiments.Registry.entry) ->
        Printf.ksprintf (Buffer.add_string buf) "### %s [%s]\n" e.title e.id;
        let t = Unix.gettimeofday () in
        let tables = Tfree_experiments.Registry.run ~scale:Tfree_experiments.Common.Small e in
        let dt = Unix.gettimeofday () -. t in
        List.iter (fun tbl -> Buffer.add_string buf (Table.render tbl)) tables;
        Buffer.add_char buf '\n';
        (e.id, dt))
      entries
  in
  let wall = Unix.gettimeofday () -. t0 in
  (Buffer.contents buf, timings, wall)

(* -------------------------------------------- part 2: bechamel micro *)

let params = Tfree.Params.practical

(* Fixed fixtures, built once so the timed closures only run the protocol. *)
let fixture_low =
  let rng = Rng.create 4242 in
  let g = Gen.far_with_degree rng ~n:1000 ~d:4.0 ~eps:0.1 in
  (g, Partition.with_duplication rng ~k:4 ~dup_p:0.3 g)

let fixture_dense =
  let rng = Rng.create 4243 in
  let g = Gen.far_with_degree rng ~n:600 ~d:36.0 ~eps:0.1 in
  (g, Partition.with_duplication rng ~k:4 ~dup_p:0.3 g)

let seed_counter = ref 0

let next_seed () =
  incr seed_counter;
  !seed_counter

(* -------------------------------------------- per-phase trace profiles *)

(* One representative traced run per Table-1 protocol row, on the micro
   fixtures at a fixed seed: the phase breakdown and the message-size
   histogram are deterministic (bits only, no wall-clock), so the profile is
   identical at every job count and can sit inside BENCH_results.json.
   check_json re-verifies the decomposition identity on every profile. *)
let trace_profile =
  let module Trace = Tfree_trace.Trace in
  let traced run =
    let c = Trace.create () in
    let report : Tfree.Tester.report = Trace.with_collector c (fun () -> run (Trace.tap c)) in
    let accounted = report.Tfree.Tester.bits in
    if not (Trace.decomposes c ~accounted) then
      failwith "bench: trace decomposition identity failed";
    Jsonout.Obj
      [
        ("accounted_bits", Jsonout.Num (float_of_int accounted));
        ("identity", Jsonout.Bool true);
        ( "phases",
          Jsonout.List
            (List.map
               (fun (phase, msgs, bits) ->
                 Jsonout.Obj
                   [
                     ("phase", Jsonout.Str phase);
                     ("messages", Jsonout.Num (float_of_int msgs));
                     ("bits", Jsonout.Num (float_of_int bits));
                   ])
               (Trace.phase_rows c)) );
        ( "size_histogram",
          Jsonout.List
            (List.map
               (fun (bucket, count) ->
                 Jsonout.Obj
                   [
                     ("log2_bucket", Jsonout.Num (float_of_int bucket));
                     ("count", Jsonout.Num (float_of_int count));
                   ])
               (Trace.size_histogram c)) );
      ]
  in
  fun id ->
    let g_low, parts_low = fixture_low in
    let g_dense, parts_dense = fixture_dense in
    match id with
    | "table1/unrestricted" ->
        Some (traced (fun tap -> Tfree.Tester.unrestricted ~tap ~seed:1 params parts_low))
    | "table1/sim-low" ->
        Some
          (traced (fun tap ->
               Tfree.Tester.simultaneous ~tap ~seed:1 params ~d:(Graph.avg_degree g_low) parts_low))
    | "table1/sim-high" ->
        Some
          (traced (fun tap ->
               Tfree.Tester.simultaneous ~tap ~seed:1 params ~d:(Graph.avg_degree g_dense)
                 parts_dense))
    | "table1/sim-oblivious" ->
        Some (traced (fun tap -> Tfree.Tester.simultaneous_oblivious ~tap ~seed:1 params parts_low))
    | "table1/exact-gap" -> Some (traced (fun tap -> Tfree.Tester.exact ~tap ~seed:1 parts_low))
    | _ -> None

let micro_tests =
  let g_low, parts_low = fixture_low in
  let g_dense, parts_dense = fixture_dense in
  Test.make_grouped ~name:"tfree"
    [
      Test.make ~name:"table1/unrestricted"
        (Staged.stage (fun () -> Tfree.Tester.unrestricted ~seed:(next_seed ()) params parts_low));
      Test.make ~name:"table1/sim-low"
        (Staged.stage (fun () ->
             Tfree.Sim_low.run ~seed:(next_seed ()) params ~d:(Graph.avg_degree g_low) parts_low));
      Test.make ~name:"table1/sim-high"
        (Staged.stage (fun () ->
             Tfree.Sim_high.run ~seed:(next_seed ()) params ~d:(Graph.avg_degree g_dense) parts_dense));
      Test.make ~name:"table1/sim-oblivious"
        (Staged.stage (fun () -> Tfree.Sim_oblivious.run ~seed:(next_seed ()) params parts_low));
      Test.make ~name:"table1/exact-baseline"
        (Staged.stage (fun () -> Tfree.Tester.exact ~seed:(next_seed ()) parts_low));
      Test.make ~name:"substrate/triangle-find"
        (Staged.stage (fun () -> Triangle.find g_dense));
      Test.make ~name:"substrate/greedy-packing"
        (Staged.stage (fun () -> Triangle.greedy_packing g_low));
      Test.make ~name:"substrate/degree-approx"
        (Staged.stage (fun () ->
             let rt = Tfree_comm.Runtime.make ~seed:(next_seed ()) parts_low in
             Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.1 ~boost:0.3 0));
      Test.make ~name:"lower/bm-reduction"
        (Staged.stage (fun () ->
             let rng = Rng.create (next_seed ()) in
             let inst = Tfree_lowerbound.Boolean_matching.generate rng ~n:256 ~target:false in
             Tfree_lowerbound.Boolean_matching.reduction_graph inst));
      Test.make ~name:"lower/streaming-detector"
        (Staged.stage (fun () ->
             let det = Tfree_streaming.Detector.make ~seed:(next_seed ()) ~p:0.2 in
             let rng = Rng.create (next_seed ()) in
             Tfree_streaming.Stream_alg.run det ~n:(Graph.n g_low)
               (Tfree_streaming.Stream_alg.stream_of_graph rng g_low)));
    ]

(* Run bechamel and return (name, ns/run, r²) rows, sorted by name. *)
let measure_micro () =
  let quota, limit = if opts.smoke then (0.05, 50) else (0.5, 300) in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est = match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square o) in
        (name, est, r2) :: acc)
      results []
  in
  List.sort compare rows

let print_micro rows =
  print_endline "# Bechamel micro-benchmarks (one Test.make per protocol row)";
  let table =
    Table.make ~title:"wall-clock per run"
      ~header:[ "benchmark"; "time/run"; "r²" ]
      (List.map
         (fun (name, est, r2) ->
           let human =
             if Float.is_nan est then "-"
             else if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
             else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
             else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
             else Printf.sprintf "%.0f ns" est
           in
           [ name; human; Table.fcell r2 ])
         rows)
  in
  Table.print table

(* The wire-codec micro-benchmark (bench/micro_wire.ml): JSON v1 vs binary
   v2 on the serve hot path.  Same iteration split as @micro-smoke. *)
let measure_wire () = Micro_wire.measure ~iters:(if opts.smoke then 20_000 else 200_000)

(* The dataset-pipeline micro-benchmark (bench/dataset_bench.ml): snapshot
   load vs regeneration vs text parse on a quarter-million-edge corpus.
   Few iterations — each one loads the whole graph. *)
let measure_dataset () = Dataset_bench.measure ~iters:(if opts.smoke then 2 else 5)

(* ------------------------------------------------------- json output *)

let json_file = "BENCH_results.json"

(* The baseline document consumed by @bench-smoke and by regression tooling.
   Schema "tfree-bench/v1" (documented in EXPERIMENTS.md):
     harness runs are the full Table-1 loop at jobs=1 and at the requested
     job count, with per-experiment wall-clock and a byte-identity check of
     the rendered tables; micro rows are bechamel OLS estimates. *)
let run_json () =
  let requested = match opts.jobs with Some j -> j | None -> Pool.jobs () in
  Pool.set_jobs 1;
  let out1, timings1, wall1 = render_experiments () in
  Pool.set_jobs requested;
  let effective = Pool.jobs () in
  let outn, timingsn, walln = render_experiments () in
  let identical = String.equal out1 outn in
  print_string outn;
  (* A filtered run regenerates only the requested experiments' tables; the
     bechamel micro suite covers the whole protocol zoo, so it only runs
     with the full harness. *)
  let micro = if opts.only = [] then measure_micro () else [] in
  if opts.only = [] then print_micro micro;
  let wire = if opts.only = [] then Some (measure_wire ()) else None in
  Option.iter Micro_wire.print_table wire;
  let dataset = if opts.only = [] then Some (measure_dataset ()) else None in
  Option.iter Dataset_bench.print_table dataset;
  (* The congest threshold/accounting rows (lib/experiments/congest_threshold.ml):
     seeded, wall-clock-free, so the document stays byte-stable. *)
  let congest = if opts.only = [] then Tfree_experiments.Congest_threshold.bench_rows () else [] in
  let experiments =
    List.map2
      (fun (id, dt1) (id', dtn) ->
        assert (String.equal id id');
        Jsonout.Obj
          ([ ("id", Jsonout.Str id); ("wall_s_jobs1", Jsonout.Num dt1); ("wall_s_jobsN", Jsonout.Num dtn) ]
          @ match trace_profile id with Some p -> [ ("trace", p) ] | None -> []))
      timings1 timingsn
  in
  let doc =
    Jsonout.Obj
      ([
         ("schema", Jsonout.Str "tfree-bench/v1");
         ("scale", Jsonout.Str "small");
       ]
      @ (match opts.only with
        | [] -> []
        | [ id ] -> [ ("only", Jsonout.Str id) ]
        | ids -> [ ("only", Jsonout.List (List.map (fun id -> Jsonout.Str id) ids)) ])
      @ [
        ("jobs", Obj [ ("requested", Num (float_of_int requested)); ("effective", Num (float_of_int effective)) ]);
        ( "harness",
          Obj
            [
              ("wall_s_jobs1", Num wall1);
              ("wall_s_jobsN", Num walln);
              ("speedup", Num (wall1 /. walln));
              ("tables_identical", Bool identical);
              ("experiments", List experiments);
            ] );
        ( "micro",
          List
            (List.map
               (fun (name, est, r2) ->
                 Jsonout.Obj [ ("name", Str name); ("ns_per_run", Num est); ("r2", Num r2) ])
               micro
            @ (match wire with Some w -> Micro_wire.to_rows w | None -> [])
            @ (match dataset with Some d -> Dataset_bench.to_rows d | None -> [])
            @ congest) );
      ])
  in
  let oc = open_out json_file in
  output_string oc (Jsonout.to_string doc);
  close_out oc;
  Printf.printf "wrote %s (jobs %d/%d, harness %.2fs vs %.2fs, tables %s)\n" json_file requested
    effective wall1 walln
    (if identical then "identical" else "DIFFER");
  if not identical then exit 1

let () =
  Option.iter Pool.set_jobs opts.jobs;
  if opts.json then run_json ()
  else begin
    let out, _, _ = render_experiments () in
    print_string out;
    if opts.only = [] then begin
      print_micro (measure_micro ());
      Micro_wire.print_table (measure_wire ());
      Dataset_bench.print_table (measure_dataset ())
    end;
    print_endline "done."
  end
