(* Micro-benchmark of the serve wire codecs: the JSON v1 line protocol
   against the binary v2 frame protocol, on the hot query shape.

   One "query" is a full exchange — one request out, one reply back — so
   every figure is per exchange:

     encode ns/query   build the request and reply wire images
     decode ns/query   parse both back into their records
     bytes/query       framed (what crosses the socket) and payload (the
                       body inside the framing: the JSON text for v1, the
                       frame body for v2), reported separately
     minor words/query minor-heap allocation of one v2 encode+decode round
                       trip over preallocated scratch buffers

   The v2 path is required to be zero-alloc in the steady state: after a
   warm-up pass grows the scratch buffers to working size, the round trip
   may allocate only the decoded records themselves — {!check} enforces a
   hard {!minor_words_limit} budget, and the v2-beats-v1 gates on both
   byte counts and both codec timings.  The measured round trip also
   records into a {!Tfree_obs.Histogram} (as the serve loop does for
   every query and phase) under the same unchanged budget, pinning the
   histogram's recording fast path at zero allocations.  [bench/main.ml] embeds the rows in
   BENCH_results.json ([micro/serve-*]); [bench/micro.ml] runs the gate
   standalone behind the @micro-smoke alias; [bench/check_json.ml]
   re-validates the emitted rows. *)

open Tfree_util
module Service = Tfree_wire.Service
module Proto = Tfree_wire.Proto
module Wire = Tfree_wire.Wire_runtime
module Histogram = Tfree_obs.Histogram

(* ------------------------------------------------------------ fixtures *)

(* The hot shape: a default-ish query (no fault spec, so the decoder takes
   its fast path) and a reply whose wire report satisfies the
   reconciliation identity — the fixture must be a reply the server could
   actually send. *)
let fixture_request = { Service.default_request with n = 500; seed = 7 }

let fixture_response =
  let wire_bytes = 4583 and framing_overhead_bits = 1144 in
  let accounted_bits = (wire_bytes * 8) - framing_overhead_bits in
  {
    Service.verdict = Tfree.Tester.Triangle (12, 99, 431);
    bits = accounted_bits;
    rounds = 3;
    max_message = 1184;
    wire =
      {
        Wire.wire_bytes;
        frames = 37;
        payload_bits = accounted_bits;
        framing_overhead_bits;
        accounted_bits;
        ratio = float_of_int (wire_bytes * 8) /. float_of_int accounted_bits;
      };
  }

let () = assert (Wire.reconciles fixture_response.Service.wire)

(* ------------------------------------------------------------- results *)

type result = {
  iters : int;
  v1_encode_ns : float;
  v2_encode_ns : float;
  v1_decode_ns : float;
  v2_decode_ns : float;
  v1_framed_bytes : int;  (** request line + reply line, newlines included *)
  v1_payload_bytes : int;  (** the JSON text alone *)
  v2_framed_bytes : int;  (** both frames: length prefix + body + checksum *)
  v2_payload_bytes : int;  (** both frame bodies *)
  minor_words : float;  (** minor-heap words per v2 encode+decode round trip *)
}

(** The zero-alloc budget: one v2 round trip may allocate the decoded
    request and response records (plus the boxed floats inside them) and
    nothing proportional to the message — no strings, no closures, no
    intermediate buffers. *)
let minor_words_limit = 256.0

(* --------------------------------------------------------- measurement *)

let time_ns ~iters f =
  ignore (Sys.opaque_identity (f ()));
  (* warm-up: grow scratch, fault in code *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let measure ~iters =
  if iters < 1 then invalid_arg "Micro_wire.measure: iters must be positive";
  (* v1: the JSON line protocol exactly as client and server shape it *)
  let request_json () = Jsonout.to_line (Service.request_to_json fixture_request) in
  let response_json () = Jsonout.to_line (Service.response_to_json fixture_response) in
  let request_line = request_json () and response_line = response_json () in
  let v1_encode () = String.length (request_json ()) + String.length (response_json ()) in
  let v1_decode () =
    let req =
      match Jsonout.parse request_line with
      | Ok j -> Service.request_of_json j
      | Error msg -> failwith msg
    in
    let resp =
      match Jsonout.parse response_line with
      | Ok j -> Service.response_of_json j
      | Error msg -> failwith msg
    in
    match (req, resp) with
    | Ok r, Ok p -> (r, p)
    | Error msg, _ | _, Error msg -> failwith msg
  in
  (* v2: preallocated per-"connection" scratch, reused every iteration *)
  let qbuf = Proto.create_buf () and rbuf = Proto.create_buf () in
  let v2_encode () =
    Service.encode_query_frame qbuf fixture_request;
    Service.encode_response_frame rbuf fixture_response;
    Proto.frame_len qbuf + Proto.frame_len rbuf
  in
  ignore (v2_encode ());
  (* standalone copies of the sealed frames, as they arrive off a socket *)
  let frame_copy b =
    let c = Bytes.create (Proto.frame_len b) in
    Bytes.blit (Proto.storage b) (Proto.frame_off b) c 0 (Proto.frame_len b);
    c
  in
  let qframe = frame_copy qbuf and rframe = frame_copy rbuf in
  let cur = Proto.cursor () in
  let v2_decode () =
    let used = Proto.try_frame qframe ~pos:0 ~limit:(Bytes.length qframe) cur in
    if used <> Bytes.length qframe then failwith "micro: query frame did not consume";
    if Proto.get_u8 cur <> Service.tag_query then failwith "micro: bad query tag";
    let req =
      match Service.decode_request_body cur with Ok r -> r | Error msg -> failwith msg
    in
    Proto.expect_end cur;
    let used = Proto.try_frame rframe ~pos:0 ~limit:(Bytes.length rframe) cur in
    if used <> Bytes.length rframe then failwith "micro: reply frame did not consume";
    if Proto.get_u8 cur <> Service.tag_reply then failwith "micro: bad reply tag";
    let resp = Service.decode_response_body cur in
    Proto.expect_end cur;
    (req, resp)
  in
  (* correctness before speed: both decoders reproduce the fixtures *)
  let check_round (req, resp) =
    if req <> fixture_request then failwith "micro: decoded request differs";
    if resp <> fixture_response then failwith "micro: decoded response differs"
  in
  check_round (v1_decode ());
  check_round (v2_decode ());
  (* byte counts (the +1s are the newline framing of the line protocol) *)
  let v1_payload_bytes = String.length request_line + String.length response_line in
  let v1_framed_bytes = v1_payload_bytes + 2 in
  ignore (v2_encode ());
  let v2_framed_bytes = Proto.frame_len qbuf + Proto.frame_len rbuf in
  let v2_payload_bytes = Proto.frame_body_len qbuf + Proto.frame_body_len rbuf in
  (* allocation: one warmed v2 round trip, minor words per iteration.
     The round trip includes latency-histogram recording — the serve loop
     records every query and every phase — under the SAME budget: the
     histogram's int fast path must stay zero-alloc or the gate trips. *)
  let hist = Histogram.create () in
  let round_trip () =
    ignore (Sys.opaque_identity (v2_encode ()));
    Histogram.record_int hist (Proto.frame_len qbuf + Proto.frame_len rbuf);
    ignore (Sys.opaque_identity (v2_decode ()));
    Histogram.record_int hist 37
  in
  round_trip ();
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    round_trip ()
  done;
  let minor_words = (Gc.minor_words () -. w0) /. float_of_int iters in
  {
    iters;
    v1_encode_ns = time_ns ~iters v1_encode;
    v2_encode_ns = time_ns ~iters v2_encode;
    v1_decode_ns = time_ns ~iters (fun () -> fst (v1_decode ()));
    v2_decode_ns = time_ns ~iters (fun () -> fst (v2_decode ()));
    v1_framed_bytes;
    v1_payload_bytes;
    v2_framed_bytes;
    v2_payload_bytes;
    minor_words;
  }

(* ----------------------------------------------------------- the gate *)

(** Every way v2 is required to beat v1, as violation strings (empty =
    pass).  The byte gates are deterministic; the timing gates compare
    medians-of-one and are run at iteration counts high enough that the
    two-orders-of-magnitude JSON/binary gap cannot flip on noise. *)
let violations r =
  let v = ref [] in
  let push fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  if r.v2_framed_bytes >= r.v1_framed_bytes then
    push "v2 framed bytes/query %d >= v1 %d" r.v2_framed_bytes r.v1_framed_bytes;
  if r.v2_payload_bytes >= r.v1_payload_bytes then
    push "v2 payload bytes/query %d >= v1 %d" r.v2_payload_bytes r.v1_payload_bytes;
  if r.v2_encode_ns >= r.v1_encode_ns then
    push "v2 encode %.0f ns/query >= v1 %.0f" r.v2_encode_ns r.v1_encode_ns;
  if r.v2_decode_ns >= r.v1_decode_ns then
    push "v2 decode %.0f ns/query >= v1 %.0f" r.v2_decode_ns r.v1_decode_ns;
  if r.minor_words > minor_words_limit then
    push "v2 round trip allocates %.1f minor words/query, budget %.0f" r.minor_words
      minor_words_limit;
  List.rev !v

let check r = match violations r with [] -> Ok () | v -> Error v

(* ------------------------------------------------------------- output *)

let print_table r =
  let f1 x = Printf.sprintf "%.1f" x in
  Table.print
    (Table.make ~title:(Printf.sprintf "wire codec micro (%d iters/row)" r.iters)
       ~header:[ "metric"; "v1 (json)"; "v2 (binary)"; "v2/v1" ]
       [
         [
           "encode ns/query";
           f1 r.v1_encode_ns;
           f1 r.v2_encode_ns;
           Printf.sprintf "%.3f" (r.v2_encode_ns /. r.v1_encode_ns);
         ];
         [
           "decode ns/query";
           f1 r.v1_decode_ns;
           f1 r.v2_decode_ns;
           Printf.sprintf "%.3f" (r.v2_decode_ns /. r.v1_decode_ns);
         ];
         [
           "framed bytes/query";
           string_of_int r.v1_framed_bytes;
           string_of_int r.v2_framed_bytes;
           Printf.sprintf "%.3f"
             (float_of_int r.v2_framed_bytes /. float_of_int r.v1_framed_bytes);
         ];
         [
           "payload bytes/query";
           string_of_int r.v1_payload_bytes;
           string_of_int r.v2_payload_bytes;
           Printf.sprintf "%.3f"
             (float_of_int r.v2_payload_bytes /. float_of_int r.v1_payload_bytes);
         ];
         [
           "minor words/query (v2)";
           "-";
           f1 r.minor_words;
           Printf.sprintf "<= %.0f" minor_words_limit;
         ];
       ])

(* The BENCH_results.json rows.  Same array as the bechamel rows (every
   row carries a "name"); the wire rows carry their own fields instead of
   ns_per_run/r2, and check_json validates them by name. *)
let to_rows r =
  let num x = Jsonout.Num x in
  let int n = num (float_of_int n) in
  [
    Jsonout.Obj
      [
        ("name", Jsonout.Str "micro/serve-encode-ns");
        ("v1", num r.v1_encode_ns);
        ("v2", num r.v2_encode_ns);
      ];
    Jsonout.Obj
      [
        ("name", Jsonout.Str "micro/serve-decode-ns");
        ("v1", num r.v1_decode_ns);
        ("v2", num r.v2_decode_ns);
      ];
    Jsonout.Obj
      [
        ("name", Jsonout.Str "micro/serve-bytes-per-query");
        ("v1_framed", int r.v1_framed_bytes);
        ("v1_payload", int r.v1_payload_bytes);
        ("v2_framed", int r.v2_framed_bytes);
        ("v2_payload", int r.v2_payload_bytes);
      ];
    Jsonout.Obj
      [
        ("name", Jsonout.Str "micro/serve-minor-words-per-query");
        ("v2", num r.minor_words);
        ("limit", num minor_words_limit);
      ];
  ]
