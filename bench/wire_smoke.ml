(* Smoke test behind the @wire-smoke alias: fork a tfree-serve daemon on a
   temporary Unix-domain socket, query it once per protocol, and check that

     - the reply reconciles: wire_bytes*8 - framing_overhead_bits equals the
       accounted bits, exactly;
     - the served response is byte-identical to computing the same request
       locally (the service is deterministic in the request's seed);
     - a malformed line gets a structured {"ok":false,"error":...} reply and
       the same connection then serves a normal query;
     - the server's {"op":"stats"} telemetry reconciles against the client's
       own tally of the whole scripted session;

   then shut the daemon down and insist it exits cleanly. *)

open Tfree_util
module Service = Tfree_wire.Service
module Wire = Tfree_wire.Wire_runtime

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("wire_smoke: " ^ msg); exit 1) fmt

(* Raw line-oriented client, for scripting several lines on one connection
   (Service.client_query opens a fresh connection per query). *)
let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  sock

let send_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let recv_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec loop () =
    match Unix.read fd one 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ -> if Bytes.get one 0 = '\n' then Some (Buffer.contents buf) else (Buffer.add_char buf (Bytes.get one 0); loop ())
  in
  loop ()

let requests =
  List.map
    (fun (protocol, transport) -> { Service.default_request with protocol; n = 200; transport })
    [
      (Service.Oblivious, Wire.Socketpair);
      (Service.Exact, Wire.Pipe);
      (Service.Sim, Wire.Socketpair);
      (Service.Unrestricted, Wire.Pipe);
    ]

let () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-wire-smoke-%d.sock" (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 ->
      (* child: serve until the shutdown command; the session is the request
         list plus one scripted query after the malformed line (errors and
         stats lines don't count as served queries) *)
      exit (if Service.serve ~path () = List.length requests + 1 then 0 else 1)
  | server ->
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then (
            Unix.kill server Sys.sigkill;
            fail "server socket %s never appeared" path)
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (* The client's own tally of the session, reconciled against the
         server's stats reply at the end. *)
      let tally_queries = ref 0 and tally_errors = ref 0 in
      let tally_wire_bytes = ref 0 and tally_accounted = ref 0 in
      let tally_verdicts : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      let count_verdict name found =
        let tri, free = Option.value ~default:(0, 0) (Hashtbl.find_opt tally_verdicts name) in
        Hashtbl.replace tally_verdicts name (if found then (tri + 1, free) else (tri, free + 1))
      in
      List.iter
        (fun req ->
          let name = Service.protocol_to_string req.Service.protocol in
          match Service.client_query ~path req with
          | Error msg -> fail "%s: %s" name msg
          | Ok resp ->
              if not (Wire.reconciles resp.Service.wire) then
                fail "%s does not reconcile: %s" name (Wire.report_summary resp.Service.wire);
              let local = Service.run_request req in
              if
                Service.response_to_json resp <> Service.response_to_json local
              then fail "%s: served response differs from local computation" name;
              incr tally_queries;
              tally_wire_bytes := !tally_wire_bytes + resp.Service.wire.Wire.wire_bytes;
              tally_accounted := !tally_accounted + resp.Service.wire.Wire.accounted_bits;
              count_verdict name
                (match resp.Service.verdict with
                | Tfree.Tester.Triangle _ -> true
                | Tfree.Tester.Triangle_free -> false);
              Printf.printf "wire_smoke: %-12s ok (%s)\n" name
                (Wire.report_summary resp.Service.wire))
        requests;
      (* Malformed line: structured error reply, connection stays usable. *)
      let conn = connect path in
      send_line conn "{not json";
      (match recv_line conn with
      | Some line -> (
          match Jsonout.parse line with
          | Ok j -> (
              match (Jsonout.member "ok" j, Jsonout.member "error" j) with
              | Some (Jsonout.Bool false), Some (Jsonout.Str _) -> incr tally_errors
              | _ -> fail "malformed line got a non-error reply: %s" line)
          | Error msg -> fail "error reply is not JSON (%s): %s" msg line)
      | None -> fail "server closed the connection on a malformed line");
      send_line conn (Jsonout.to_line (Service.request_to_json (List.hd requests)));
      (match recv_line conn with
      | Some line -> (
          match Result.bind (Jsonout.parse line) Service.response_of_json with
          | Ok resp ->
              incr tally_queries;
              tally_wire_bytes := !tally_wire_bytes + resp.Service.wire.Wire.wire_bytes;
              tally_accounted := !tally_accounted + resp.Service.wire.Wire.accounted_bits;
              count_verdict
                (Service.protocol_to_string (List.hd requests).Service.protocol)
                (match resp.Service.verdict with
                | Tfree.Tester.Triangle _ -> true
                | Tfree.Tester.Triangle_free -> false)
          | Error msg -> fail "query after malformed line failed: %s" msg)
      | None -> fail "connection unusable after a malformed line");
      Unix.close conn;
      (* Stats reconciliation against the tally. *)
      (match Service.client_stats ~path () with
      | Error msg -> fail "stats query: %s" msg
      | Ok stats ->
          let num k =
            match Option.bind (Jsonout.member k stats) Jsonout.to_float with
            | Some f -> int_of_float f
            | None -> fail "stats missing numeric field %S" k
          in
          let check what got want =
            if got <> want then fail "stats %s = %d, client tallied %d" what got want
          in
          check "queries_served" (num "queries_served") !tally_queries;
          check "errors" (num "errors") !tally_errors;
          (let cats =
             match Jsonout.member "errors_by_category" stats with
             | Some c -> c
             | None -> fail "stats missing errors_by_category"
           in
           let cat k =
             match Option.bind (Jsonout.member k cats) Jsonout.to_float with
             | Some f -> int_of_float f
             | None -> fail "errors_by_category missing %S" k
           in
           (* the one error in this script is the malformed line *)
           check "errors_by_category.malformed" (cat "malformed") !tally_errors;
           List.iter
             (fun k -> check ("errors_by_category." ^ k) (cat k) 0)
             [ "unknown_op"; "run_failure"; "timeout"; "transport" ]);
          check "retries" (num "retries") 0;
          check "injected_faults" (num "injected_faults") 0;
          check "wire_bytes" (num "wire_bytes") !tally_wire_bytes;
          check "accounted_bits" (num "accounted_bits") !tally_accounted;
          let verdicts =
            match Jsonout.member "verdicts" stats with
            | Some v -> v
            | None -> fail "stats missing verdicts"
          in
          Hashtbl.iter
            (fun name (tri, free) ->
              match Jsonout.member name verdicts with
              | Some v ->
                  let f k =
                    match Option.bind (Jsonout.member k v) Jsonout.to_float with
                    | Some x -> int_of_float x
                    | None -> fail "stats verdicts.%s missing %S" name k
                  in
                  check (name ^ " triangles") (f "triangle") tri;
                  check (name ^ " triangle-frees") (f "triangle_free") free
              | None -> fail "stats verdicts missing protocol %S" name)
            tally_verdicts;
          print_endline "wire_smoke: stats reconcile with the client tally");
      Service.client_shutdown ~path ();
      (match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> fail "server did not exit cleanly");
      if Sys.file_exists path then fail "server left its socket behind";
      print_endline "wire_smoke: ok"
