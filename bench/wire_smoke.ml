(* Smoke test behind the @wire-smoke alias: fork a tfree-serve daemon on a
   temporary Unix-domain socket, query it once per protocol, and check that

     - the reply reconciles: wire_bytes*8 - framing_overhead_bits equals the
       accounted bits, exactly;
     - the served response is byte-identical to computing the same request
       locally (the service is deterministic in the request's seed);

   then shut the daemon down and insist it exits cleanly. *)

module Service = Tfree_wire.Service
module Wire = Tfree_wire.Wire_runtime

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("wire_smoke: " ^ msg); exit 1) fmt

let requests =
  List.map
    (fun (protocol, transport) -> { Service.default_request with protocol; n = 200; transport })
    [
      (Service.Oblivious, Wire.Socketpair);
      (Service.Exact, Wire.Pipe);
      (Service.Sim, Wire.Socketpair);
      (Service.Unrestricted, Wire.Pipe);
    ]

let () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-wire-smoke-%d.sock" (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 ->
      (* child: serve until the shutdown command *)
      exit (if Service.serve ~path () = List.length requests then 0 else 1)
  | server ->
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then (
            Unix.kill server Sys.sigkill;
            fail "server socket %s never appeared" path)
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      List.iter
        (fun req ->
          let name = Service.protocol_to_string req.Service.protocol in
          match Service.client_query ~path req with
          | Error msg -> fail "%s: %s" name msg
          | Ok resp ->
              if not (Wire.reconciles resp.Service.wire) then
                fail "%s does not reconcile: %s" name (Wire.report_summary resp.Service.wire);
              let local = Service.run_request req in
              if
                Service.response_to_json resp <> Service.response_to_json local
              then fail "%s: served response differs from local computation" name;
              Printf.printf "wire_smoke: %-12s ok (%s)\n" name
                (Wire.report_summary resp.Service.wire))
        requests;
      Service.client_shutdown ~path;
      (match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> fail "server did not exit cleanly");
      if Sys.file_exists path then fail "server left its socket behind";
      print_endline "wire_smoke: ok"
