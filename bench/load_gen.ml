(* Closed-loop load generator for tfree-serve, behind the @load-smoke
   alias.

   Forks one server and [--clients] concurrent client processes; each
   client drives [--queries] protocol queries through the socket, grouped
   into [{"op": "batch"}] exchanges of [--batch] requests, cycling
   [--seeds] distinct instance seeds so the server's LRU cache sees
   genuine reuse.  Every reply is compared against a locally computed run
   of the same request — a single wrong verdict (or bit count, or a wire
   report that does not reconcile) is a hard failure.

   The parent then reconciles the server's [{"op": "stats"}] telemetry
   against the clients' own tallies:

     queries_served   = clients x queries + retries x batch
     cache lookups    = queries_served, misses = distinct seeds,
                        hits = lookups - misses (> 0 whenever seeds repeat)
     batches / items  = exchanges incl. retried ones / batches x batch
     injected_faults  = the whole [--fault] schedule, with exactly one
                        client retry per non-benign firing; errors = 0

   and reports latency quantiles (per closed-loop exchange) and measured
   line-protocol bytes per query.  Exit status is nonzero on any
   violation, so the alias doubles as a concurrency regression gate.

   Every forked process leaves with [Unix._exit]: the parent's [at_exit]
   handlers must run once, in the parent. *)

open Tfree_util
module Service = Tfree_wire.Service
module Fault = Tfree_wire.Fault
module Metrics = Tfree_wire.Metrics
module Wire = Tfree_wire.Wire_runtime

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("load_gen: " ^ msg); exit 1) fmt

(* ------------------------------------------------------------ arguments *)

let clients = ref 4
let queries = ref 8
let batch = ref 2
let seeds = ref 4
let retries = ref 8
let fault_spec = ref "1:drop,3:corrupt@13,6:close"
let max_clients = ref 64
let cache_capacity = ref 32
let inst_n = ref 200
let socket_path = ref ""

let specs =
  [
    ("--clients", Arg.Set_int clients, "N  concurrent client processes (default 4)");
    ("--queries", Arg.Set_int queries, "Q  queries per client; multiple of --batch (default 8)");
    ("--batch", Arg.Set_int batch, "B  requests per batch exchange; 1 = single lines (default 2)");
    ("--seeds", Arg.Set_int seeds, "S  distinct instance seeds cycled per client (default 4)");
    ("--retries", Arg.Set_int retries, "R  client retry budget per exchange (default 8)");
    ("--fault", Arg.Set_string fault_spec,
     "SPEC  server reply-fault schedule, Fault.parse grammar; '' = none");
    ("--max-clients", Arg.Set_int max_clients, "M  server connection cap (default 64)");
    ("--cache", Arg.Set_int cache_capacity, "C  server instance-cache capacity (default 32)");
    ("--n", Arg.Set_int inst_n, "N  instance size per query (default 200)");
    ("--socket", Arg.Set_string socket_path, "PATH  socket path (default: fresh temp path)");
  ]

let usage = "load_gen [options]  -- closed-loop load generator for tfree-serve"

(* ------------------------------------------------------- request plan *)

let request_for seed = { Service.default_request with n = !inst_n; seed }

(* Client [c]'s query stream: seeds cycle 1..S, identically across
   clients, so the distinct instance-key count is exactly S. *)
let plan_for_client _c =
  let reqs = List.init !queries (fun q -> request_for (1 + (q mod !seeds))) in
  let rec group = function
    | [] -> []
    | l ->
        let rec take n = function
          | x :: tl when n > 0 ->
              let h, rest = take (n - 1) tl in
              (x :: h, rest)
          | rest -> ([], rest)
        in
        let h, rest = take !batch l in
        h :: group rest
  in
  group reqs

(* The exact line-protocol bytes of one all-ok exchange: the request line
   as the client serializes it, plus the reply line as [handle_line]
   shapes it (a batch item's reply object is byte-for-byte the single
   reply).  Used for the bytes/query report. *)
let exchange_bytes reqs resps =
  let request_line =
    match reqs with
    | [ r ] when !batch = 1 -> Jsonout.to_line (Service.request_to_json r)
    | _ -> Jsonout.to_line (Service.batch_request_to_json reqs)
  in
  let reply_line =
    match resps with
    | [ r ] when !batch = 1 -> Jsonout.to_line (Service.response_to_json r)
    | _ ->
        Jsonout.to_line
          (Jsonout.Obj
             [
               ("ok", Jsonout.Bool true);
               ("count", Jsonout.Num (float_of_int (List.length resps)));
               ("results", Jsonout.List (List.map Service.response_to_json resps));
             ])
  in
  String.length request_line + String.length reply_line + 2 (* the newlines *)

(* ------------------------------------------------------- client process *)

type tally = {
  mutable ok : int;
  mutable wrong : int;
  mutable failed : int;
  mutable bytes : int;
  mutable lats_us : int list;  (** newest first; one sample per exchange *)
}

let check_item expected = function
  | Error msg -> `Failed msg
  | Ok (resp : Service.response) ->
      if
        resp.Service.verdict = expected.Service.verdict
        && resp.Service.bits = expected.Service.bits
        && resp.Service.rounds = expected.Service.rounds
        && Wire.reconciles resp.Service.wire
      then `Ok
      else `Wrong

let run_client ~path ~expected c =
  let m = Metrics.create () in
  let t = { ok = 0; wrong = 0; failed = 0; bytes = 0; lats_us = [] } in
  List.iter
    (fun reqs ->
      let expect = List.map (fun r -> expected r.Service.seed) reqs in
      let t0 = Unix.gettimeofday () in
      let results =
        if !batch = 1 then
          List.map
            (fun r ->
              Service.client_query ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02
                ~backoff_seed:c ~metrics:m ~path r)
            reqs
        else
          match
            Service.client_batch ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02 ~backoff_seed:c
              ~metrics:m ~path reqs
          with
          | Ok items -> items
          | Error msg -> List.map (fun _ -> Error msg) reqs
      in
      t.lats_us <- int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) :: t.lats_us;
      List.iter2
        (fun e r ->
          match check_item e r with
          | `Ok -> t.ok <- t.ok + 1
          | `Wrong -> t.wrong <- t.wrong + 1
          | `Failed msg ->
              Printf.eprintf "load_gen: client %d exchange failed: %s\n%!" c msg;
              t.failed <- t.failed + 1)
        expect results;
      if List.for_all Result.is_ok results then
        t.bytes <- t.bytes + exchange_bytes reqs (List.map Result.get_ok results))
    (plan_for_client c);
  (t, Metrics.retries m)

(* One result line per client down the pipe; each is far under PIPE_BUF,
   so concurrent writes stay atomic. *)
let emit_tally fd c (t, nretries) =
  let lats = String.concat "," (List.rev_map string_of_int t.lats_us) in
  let line =
    Printf.sprintf "%d %d %d %d %d %d %s\n" c t.ok t.wrong t.failed nretries t.bytes lats
  in
  ignore (Unix.write_substring fd line 0 (String.length line))

(* --------------------------------------------------------- the harness *)

let stats_num stats k =
  match Option.bind (Jsonout.member k stats) Jsonout.to_float with
  | Some f -> int_of_float f
  | None -> fail "stats missing numeric field %S" k

let stats_sub stats outer k =
  match Option.bind (Jsonout.member outer stats) (Jsonout.member k) with
  | Some j -> (
      match Jsonout.to_float j with
      | Some f -> int_of_float f
      | None -> fail "stats field %s.%s is not numeric" outer k)
  | None -> fail "stats missing field %s.%s" outer k

let () =
  Arg.parse specs (fun a -> fail "unexpected argument %S" a) usage;
  if !clients < 1 || !queries < 1 || !batch < 1 || !seeds < 1 then
    fail "--clients, --queries, --batch and --seeds must be positive";
  if !queries mod !batch <> 0 then
    fail "--queries (%d) must be a multiple of --batch (%d)" !queries !batch;
  if !clients > !max_clients then
    fail "--clients (%d) beyond --max-clients (%d) would shed; raise the cap" !clients !max_clients;
  let fault =
    match Fault.parse !fault_spec with
    | Ok s -> s
    | Error msg -> fail "bad --fault spec: %s" msg
  in
  let path =
    if !socket_path <> "" then !socket_path
    else
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "tfree-load-%d.sock" (Unix.getpid ()))
  in
  (* expected replies, computed locally before any forking *)
  let expected_arr =
    Array.init !seeds (fun i -> Service.run_request (request_for (1 + i)))
  in
  let expected seed = expected_arr.(seed - 1) in
  (* ---- server ---- *)
  let server =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (Service.serve ~max_clients:!max_clients ~line_timeout_s:10.0 ~fault
                ~cache_capacity:!cache_capacity ~path ())
         with _ -> Unix._exit 2);
        Unix._exit 0
    | pid -> pid
  in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then (
        Unix.kill server Sys.sigkill;
        fail "server socket %s never appeared" path)
      else (
        Unix.sleepf 0.05;
        await (tries - 1))
  in
  await 100;
  (* ---- clients ---- *)
  let rd, wr = Unix.pipe () in
  let pids =
    List.init !clients (fun c ->
        match Unix.fork () with
        | 0 ->
            Unix.close rd;
            emit_tally wr c (run_client ~path ~expected c);
            Unix._exit 0
        | pid -> pid)
  in
  Unix.close wr;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read rd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  Unix.close rd;
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> fail "a client process crashed")
    pids;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  if List.length lines <> !clients then
    fail "collected %d client tallies, expected %d" (List.length lines) !clients;
  let ok = ref 0 and wrong = ref 0 and failed = ref 0 in
  let nretries = ref 0 and bytes = ref 0 and lats = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ _c; o; w; f; r; b; ls ] ->
          ok := !ok + int_of_string o;
          wrong := !wrong + int_of_string w;
          failed := !failed + int_of_string f;
          nretries := !nretries + int_of_string r;
          bytes := !bytes + int_of_string b;
          List.iter
            (fun s -> if s <> "" then lats := float_of_string s :: !lats)
            (String.split_on_char ',' ls)
      | _ -> fail "garbled client tally %S" line)
    lines;
  (* ---- server telemetry, then shutdown ---- *)
  let stats =
    match Service.client_stats ~path () with
    | Ok s -> s
    | Error msg -> fail "stats query: %s" msg
  in
  Service.client_shutdown ~path;
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "server did not exit cleanly");
  (* ---- reconciliation ---- *)
  let total = !clients * !queries in
  if !wrong > 0 then fail "%d wrong verdicts out of %d queries" !wrong total;
  if !failed > 0 then fail "%d exchanges exhausted their retry budget" !failed total;
  if !ok <> total then fail "served %d ok replies, expected %d" !ok total;
  let served = stats_num stats "queries_served" in
  let expect_served = total + (!nretries * !batch) in
  if served <> expect_served then
    fail "server served %d queries; clients account for %d (= %d ok + %d retries x %d batch)"
      served expect_served total !nretries !batch;
  let nonbenign =
    List.length (List.filter (fun e -> not (Fault.benign e.Fault.kind)) fault)
  in
  if stats_num stats "injected_faults" <> List.length fault then
    fail "server injected %d faults, scheduled %d"
      (stats_num stats "injected_faults") (List.length fault);
  if !nretries <> nonbenign then
    fail "clients spent %d retries; the schedule's %d non-benign faults force exactly that many"
      !nretries nonbenign;
  if stats_num stats "errors" <> 0 then
    fail "server tallied %d errors on a clean run" (stats_num stats "errors");
  let hits = stats_sub stats "cache" "hits"
  and misses = stats_sub stats "cache" "misses"
  and lookups = stats_sub stats "cache" "lookups" in
  if !cache_capacity > 0 then begin
    if lookups <> served then fail "cache lookups %d != queries served %d" lookups served;
    if hits + misses <> lookups then
      fail "cache hits %d + misses %d != lookups %d" hits misses lookups;
    if !cache_capacity >= !seeds && misses <> !seeds then
      fail "cache misses %d != %d distinct seeds" misses !seeds;
    if served > !seeds && hits = 0 then fail "seed reuse produced no cache hits"
  end;
  let exchanges = total / !batch + !nretries in
  if !batch > 1 then begin
    if stats_sub stats "batch" "batches" <> exchanges then
      fail "server saw %d batches, clients sent %d" (stats_sub stats "batch" "batches") exchanges;
    if stats_sub stats "batch" "items" <> exchanges * !batch then
      fail "server saw %d batch items, clients sent %d"
        (stats_sub stats "batch" "items") (exchanges * !batch)
  end;
  (* ---- report ---- *)
  let q p = Stats.quantile p !lats /. 1000.0 in
  Printf.printf
    "load_gen: %d clients x %d queries (batch %d, %d seeds): 0 wrong, %d retries, %d injected\n"
    !clients !queries !batch !seeds !nretries (stats_num stats "injected_faults");
  Printf.printf "load_gen: cache %d/%d/%d hit/miss/lookups; %d batches\n" hits misses lookups
    (if !batch > 1 then exchanges else 0);
  Printf.printf "load_gen: latency/exchange ms p50 %.1f  p90 %.1f  p99 %.1f; %.1f wire bytes/query\n"
    (q 0.50) (q 0.90) (q 0.99)
    (float_of_int !bytes /. float_of_int total);
  print_endline "load_gen: ok"
