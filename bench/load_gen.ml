(* Closed-loop load generator for tfree-serve, behind the @load-smoke
   alias.

   For each wire protocol selected by [--protocol] (default: both v1 and
   v2), forks one server and [--clients] concurrent client processes; each
   client drives [--queries] protocol queries through the socket, grouped
   into batch exchanges of [--batch] requests, cycling [--seeds] distinct
   instance seeds so the server's LRU cache sees genuine reuse.  Every
   reply is compared against a locally computed run of the same request —
   a single wrong verdict (or bit count, or a wire report that does not
   reconcile) is a hard failure.

   The parent then reconciles the server's [{"op": "stats"}] telemetry
   against the clients' own tallies:

     queries_served   = clients x queries + retries x batch
     cache lookups    = queries_served, misses = distinct seeds,
                        hits = lookups - misses (> 0 whenever seeds repeat)
     batches / items  = exchanges incl. retried ones / batches x batch
     injected_faults  = the whole [--fault] schedule, with exactly one
                        client retry per non-benign firing; errors = 0
     protocol_versions.vN
                      = all serving lands on the active version: its
                        served gauge equals queries_served, its byte gauge
                        equals the clients' framed bytes over all-ok
                        exchanges, and the other version's gauges are 0

   and reports latency and wire traffic per query — framed bytes (what
   crosses the socket: newline framing for v1, length prefix + checksum
   for v2) and payload bytes (the JSON text / frame body alone) separately,
   side by side across versions when both run.  Exit status is nonzero on
   any violation, so the alias doubles as a concurrency regression gate.

   Latency reconciliation: each client also records its per-exchange
   latencies into a bounded {!Tfree_obs.Histogram} shipped down the pipe
   in compact form.  The parent merges the per-client histograms and
   insists the merge is bit-identical to a histogram of all raw samples
   (merge over split histograms = unsplit), that the merged quantiles
   agree with {!Stats.quantile} over the raw samples within the
   histogram's documented precision, and that the server's own latency
   histogram counted every served query; the server's per-phase
   histograms must account one run and one encode per served query, and
   their p99s are reported.

   Every forked process leaves with [Unix._exit]: the parent's [at_exit]
   handlers must run once, in the parent. *)

open Tfree_util
module Service = Tfree_wire.Service
module Proto = Tfree_wire.Proto
module Fault = Tfree_wire.Fault
module Metrics = Tfree_wire.Metrics
module Wire = Tfree_wire.Wire_runtime
module Histogram = Tfree_obs.Histogram
module Phase = Tfree_obs.Phase

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("load_gen: " ^ msg); exit 1) fmt

(* ------------------------------------------------------------ arguments *)

let clients = ref 4
let queries = ref 8
let batch = ref 2
let seeds = ref 4
let retries = ref 8
let fault_spec = ref "1:drop,3:corrupt@13,6:close"
let max_clients = ref 64
let cache_capacity = ref 32
let inst_n = ref 200
let socket_path = ref ""
let protocol_mode = ref "both"
let workers = ref 0
let fleet_sweep = ref false
let fleet_out = ref ""

let specs =
  [
    ("--clients", Arg.Set_int clients, "N  concurrent client processes (default 4)");
    ("--queries", Arg.Set_int queries, "Q  queries per client; multiple of --batch (default 8)");
    ("--batch", Arg.Set_int batch, "B  requests per batch exchange; 1 = single lines (default 2)");
    ("--seeds", Arg.Set_int seeds, "S  distinct instance seeds cycled per client (default 4)");
    ("--retries", Arg.Set_int retries, "R  client retry budget per exchange (default 8)");
    ("--fault", Arg.Set_string fault_spec,
     "SPEC  server reply-fault schedule, Fault.parse grammar; '' = none");
    ("--max-clients", Arg.Set_int max_clients, "M  server connection cap (default 64)");
    ("--cache", Arg.Set_int cache_capacity, "C  server instance-cache capacity (default 32)");
    ("--n", Arg.Set_int inst_n, "N  instance size per query (default 200)");
    ("--socket", Arg.Set_string socket_path, "PATH  socket path stem (default: fresh temp path)");
    ("--protocol", Arg.Set_string protocol_mode,
     "P  wire protocol to drive: v1, v2 or both (default both)");
    ("--workers", Arg.Set_int workers,
     "W  drive a W-worker fleet (serve --workers W) with shard-aware clients; 0 = single server \
      (default 0)");
    ("--fleet", Arg.Set fleet_sweep,
     "  fleet throughput sweep: run the workload at 1, 2 and 4 workers, reconcile each run \
      exactly, and require the multi-worker runs to beat one worker on wall-clock qps");
    ("--fleet-out", Arg.Set_string fleet_out,
     "FILE  write the sweep's fleet/* rows as JSON: into FILE's \"fleet\" member when it is a \
      tfree-bench/v1 document, else as a standalone tfree-fleet/v1 document");
  ]

let usage = "load_gen [options]  -- closed-loop load generator for tfree-serve"

(* ------------------------------------------------------- request plan *)

let request_for seed = { Service.default_request with n = !inst_n; seed }

(* Client [c]'s query stream: seeds cycle 1..S, identically across
   clients, so the distinct instance-key count is exactly S. *)
let plan_for_client _c =
  let reqs = List.init !queries (fun q -> request_for (1 + (q mod !seeds))) in
  let rec group = function
    | [] -> []
    | l ->
        let rec take n = function
          | x :: tl when n > 0 ->
              let h, rest = take (n - 1) tl in
              (x :: h, rest)
          | rest -> ([], rest)
        in
        let h, rest = take !batch l in
        h :: group rest
  in
  group reqs

(* The exact wire bytes of one all-ok exchange, as (framed, payload):
   request plus reply as the client serializes them and the server shapes
   its replies (a batch item's reply is byte-for-byte the single reply in
   both protocols).  Framed is what the server's per-version byte gauge
   records — line bytes incl. newlines for v1, whole frames for v2 — so
   summing this over all-ok exchanges must reproduce that gauge exactly.
   Payload strips the framing: newlines for v1, length prefix and checksum
   for v2. *)
let exchange_bytes ~pref reqs resps =
  match (pref : Proto.pref) with
  | V1 ->
      let request_line =
        match reqs with
        | [ r ] when !batch = 1 -> Jsonout.to_line (Service.request_to_json r)
        | _ -> Jsonout.to_line (Service.batch_request_to_json reqs)
      in
      let reply_line =
        match resps with
        | [ r ] when !batch = 1 -> Jsonout.to_line (Service.response_to_json r)
        | _ ->
            Jsonout.to_line
              (Jsonout.Obj
                 [
                   ("ok", Jsonout.Bool true);
                   ("count", Jsonout.Num (float_of_int (List.length resps)));
                   ("results", Jsonout.List (List.map Service.response_to_json resps));
                 ])
      in
      let payload = String.length request_line + String.length reply_line in
      (payload + 2 (* the newlines *), payload)
  | V2 | Auto ->
      let b = Proto.create_buf () in
      (match reqs with
      | [ r ] when !batch = 1 -> Service.encode_query_frame b r
      | _ -> Service.encode_batch_frame b reqs);
      let qf = Proto.frame_len b and qp = Proto.frame_body_len b in
      (match resps with
      | [ r ] when !batch = 1 -> Service.encode_response_frame b r
      | _ -> Service.encode_batch_reply_frame b resps);
      (qf + Proto.frame_len b, qp + Proto.frame_body_len b)

(* ------------------------------------------------------- client process *)

type tally = {
  mutable ok : int;
  mutable wrong : int;
  mutable failed : int;
  mutable framed : int;
  mutable payload : int;
  mutable lats_us : int list;  (** newest first; one sample per exchange *)
}

let check_item expected = function
  | Error msg -> `Failed msg
  | Ok (resp : Service.response) ->
      if
        resp.Service.verdict = expected.Service.verdict
        && resp.Service.bits = expected.Service.bits
        && resp.Service.rounds = expected.Service.rounds
        && Wire.reconciles resp.Service.wire
      then `Ok
      else `Wrong

let run_client ~pref ~path ~expected c =
  let m = Metrics.create () in
  let t = { ok = 0; wrong = 0; failed = 0; framed = 0; payload = 0; lats_us = [] } in
  List.iter
    (fun reqs ->
      let expect = List.map (fun r -> expected r.Service.seed) reqs in
      let t0 = Unix.gettimeofday () in
      let results =
        if !batch = 1 then
          List.map
            (fun r ->
              Service.client_query ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02
                ~backoff_seed:c ~metrics:m ~protocol:pref ~path r)
            reqs
        else
          match
            Service.client_batch ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02 ~backoff_seed:c
              ~metrics:m ~protocol:pref ~path reqs
          with
          | Ok items -> items
          | Error msg -> List.map (fun _ -> Error msg) reqs
      in
      t.lats_us <- int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) :: t.lats_us;
      List.iter2
        (fun e r ->
          match check_item e r with
          | `Ok -> t.ok <- t.ok + 1
          | `Wrong -> t.wrong <- t.wrong + 1
          | `Failed msg ->
              Printf.eprintf "load_gen: client %d exchange failed: %s\n%!" c msg;
              t.failed <- t.failed + 1)
        expect results;
      if List.for_all Result.is_ok results then begin
        let framed, payload = exchange_bytes ~pref reqs (List.map Result.get_ok results) in
        t.framed <- t.framed + framed;
        t.payload <- t.payload + payload
      end)
    (plan_for_client c);
  (t, Metrics.retries m)

(* One result line per client down the pipe; each is far under PIPE_BUF,
   so concurrent writes stay atomic.  The ninth token is the client's
   latency histogram in {!Histogram.to_compact} form (space-free), built
   from exactly the raw samples in the eighth — the parent checks the
   merge of these against a histogram of all the raw samples. *)
let emit_tally fd c (t, nretries) =
  let lats = String.concat "," (List.rev_map string_of_int t.lats_us) in
  let h = Histogram.create () in
  List.iter (fun us -> Histogram.record h (float_of_int us)) t.lats_us;
  let line =
    Printf.sprintf "%d %d %d %d %d %d %d %s %s\n" c t.ok t.wrong t.failed nretries t.framed
      t.payload lats (Histogram.to_compact h)
  in
  ignore (Unix.write_substring fd line 0 (String.length line))

(* --------------------------------------------------------- the harness *)

let stats_num stats k =
  match Option.bind (Jsonout.member k stats) Jsonout.to_float with
  | Some f -> int_of_float f
  | None -> fail "stats missing numeric field %S" k

let stats_sub stats outer k =
  match Option.bind (Jsonout.member outer stats) (Jsonout.member k) with
  | Some j -> (
      match Jsonout.to_float j with
      | Some f -> int_of_float f
      | None -> fail "stats field %s.%s is not numeric" outer k)
  | None -> fail "stats missing field %s.%s" outer k

(* protocol_versions.vN.{served,bytes} *)
let stats_version stats v k =
  let key = Printf.sprintf "v%d" v in
  match
    Option.bind (Jsonout.member "protocol_versions" stats) (fun pv ->
        Option.bind (Jsonout.member key pv) (Jsonout.member k))
  with
  | Some j -> (
      match Jsonout.to_float j with
      | Some f -> int_of_float f
      | None -> fail "stats field protocol_versions.%s.%s is not numeric" key k)
  | None -> fail "stats missing field protocol_versions.%s.%s" key k

type run_summary = {
  label : string;
  framed_per_query : float;
  payload_per_query : float;
  us_per_query : float;
}

(* One full load run over wire protocol [pref]: fork a server and the
   client fleet, drain tallies, reconcile stats — including the
   per-version served/byte gauges — and report.  Returns the per-query
   figures for the cross-version comparison. *)
let run_load ~pref ~fault ~expected ~path =
  let label = Proto.pref_to_string pref in
  let active = match (pref : Proto.pref) with V1 -> 1 | V2 | Auto -> 2 in
  (* ---- server ---- *)
  let server =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (Service.serve ~max_clients:!max_clients ~line_timeout_s:10.0 ~fault
                ~cache_capacity:!cache_capacity ~path ())
         with _ -> Unix._exit 2);
        Unix._exit 0
    | pid -> pid
  in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then (
        Unix.kill server Sys.sigkill;
        fail "server socket %s never appeared" path)
      else (
        Unix.sleepf 0.05;
        await (tries - 1))
  in
  await 100;
  (* ---- clients ---- *)
  let rd, wr = Unix.pipe () in
  let pids =
    List.init !clients (fun c ->
        match Unix.fork () with
        | 0 ->
            Unix.close rd;
            emit_tally wr c (run_client ~pref ~path ~expected c);
            Unix._exit 0
        | pid -> pid)
  in
  Unix.close wr;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read rd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  Unix.close rd;
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> fail "[%s] a client process crashed" label)
    pids;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  if List.length lines <> !clients then
    fail "[%s] collected %d client tallies, expected %d" label (List.length lines) !clients;
  let ok = ref 0 and wrong = ref 0 and failed = ref 0 in
  let nretries = ref 0 and framed = ref 0 and payload = ref 0 and lats = ref [] in
  let merged = Histogram.create () in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ _c; o; w; f; r; fb; pb; ls; hc ] ->
          ok := !ok + int_of_string o;
          wrong := !wrong + int_of_string w;
          failed := !failed + int_of_string f;
          nretries := !nretries + int_of_string r;
          framed := !framed + int_of_string fb;
          payload := !payload + int_of_string pb;
          List.iter
            (fun s -> if s <> "" then lats := float_of_string s :: !lats)
            (String.split_on_char ',' ls);
          (match Histogram.of_compact hc with
          | Ok h -> Histogram.merge merged h
          | Error msg -> fail "[%s] garbled client histogram: %s" label msg)
      | _ -> fail "[%s] garbled client tally %S" label line)
    lines;
  (* merge over per-client histograms = one histogram of all raw samples,
     exactly; and the merged quantiles track the exact sample quantiles
     within the histogram's documented precision *)
  let reference = Histogram.create () in
  List.iter (Histogram.record reference) !lats;
  if not (Histogram.equal merged reference) then
    fail "[%s] merged client histograms differ from the unsplit histogram of all samples" label;
  if Histogram.count merged <> List.length !lats then
    fail "[%s] merged histogram holds %d samples, clients reported %d" label
      (Histogram.count merged) (List.length !lats);
  List.iter
    (fun p ->
      let exact = Stats.quantile p !lats in
      let approx = Histogram.quantile merged p in
      let tolerance = Histogram.max_error merged exact in
      if Float.abs (approx -. exact) > tolerance then
        fail "[%s] histogram p%.0f %.1f drifts from exact %.1f beyond precision %.1f" label
          (100.0 *. p) approx exact tolerance)
    [ 0.5; 0.9; 0.99 ];
  (* ---- server telemetry, then shutdown ---- *)
  let stats =
    match Service.client_stats ~protocol:pref ~path () with
    | Ok s -> s
    | Error msg -> fail "[%s] stats query: %s" label msg
  in
  Service.client_shutdown ~protocol:pref ~path ();
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "[%s] server did not exit cleanly" label);
  (* ---- reconciliation ---- *)
  let total = !clients * !queries in
  if !wrong > 0 then fail "[%s] %d wrong verdicts out of %d queries" label !wrong total;
  if !failed > 0 then fail "[%s] %d exchanges exhausted their retry budget" label !failed;
  if !ok <> total then fail "[%s] served %d ok replies, expected %d" label !ok total;
  let served = stats_num stats "queries_served" in
  let expect_served = total + (!nretries * !batch) in
  if served <> expect_served then
    fail "[%s] server served %d queries; clients account for %d (= %d ok + %d retries x %d batch)"
      label served expect_served total !nretries !batch;
  let nonbenign =
    List.length (List.filter (fun e -> not (Fault.benign e.Fault.kind)) fault)
  in
  if stats_num stats "injected_faults" <> List.length fault then
    fail "[%s] server injected %d faults, scheduled %d" label
      (stats_num stats "injected_faults") (List.length fault);
  if !nretries <> nonbenign then
    fail "[%s] clients spent %d retries; the schedule's %d non-benign faults force exactly that many"
      label !nretries nonbenign;
  if stats_num stats "errors" <> 0 then
    fail "[%s] server tallied %d errors on a clean run" label (stats_num stats "errors");
  (* every query serves — and every byte lands — on the active version;
     the byte gauge counts clean replies only, which is exactly the
     clients' all-ok exchanges (a sabotaged attempt is retried, and only
     the clean final attempt is recorded on either side) *)
  for v = 1 to Metrics.max_wire_version do
    let expect_served = if v = active then served else 0 in
    let expect_bytes = if v = active then !framed else 0 in
    if stats_version stats v "served" <> expect_served then
      fail "[%s] v%d served gauge %d, expected %d" label v (stats_version stats v "served")
        expect_served;
    if stats_version stats v "bytes" <> expect_bytes then
      fail "[%s] v%d byte gauge %d; clients' framed all-ok bytes total %d" label v
        (stats_version stats v "bytes") expect_bytes
  done;
  let hits = stats_sub stats "cache" "hits"
  and misses = stats_sub stats "cache" "misses"
  and lookups = stats_sub stats "cache" "lookups" in
  if !cache_capacity > 0 then begin
    if lookups <> served then fail "[%s] cache lookups %d != queries served %d" label lookups served;
    if hits + misses <> lookups then
      fail "[%s] cache hits %d + misses %d != lookups %d" label hits misses lookups;
    if !cache_capacity >= !seeds && misses <> !seeds then
      fail "[%s] cache misses %d != %d distinct seeds" label misses !seeds;
    if served > !seeds && hits = 0 then fail "[%s] seed reuse produced no cache hits" label
  end;
  let exchanges = total / !batch + !nretries in
  if !batch > 1 then begin
    if stats_sub stats "batch" "batches" <> exchanges then
      fail "[%s] server saw %d batches, clients sent %d" label
        (stats_sub stats "batch" "batches") exchanges;
    if stats_sub stats "batch" "items" <> exchanges * !batch then
      fail "[%s] server saw %d batch items, clients sent %d" label
        (stats_sub stats "batch" "items") (exchanges * !batch)
  end;
  (* the server's own bounded histograms: the end-to-end latency histogram
     counted every served query, and the per-phase histograms account
     exactly one run and one encode per served query *)
  if stats_sub stats "latency_us" "count" <> served then
    fail "[%s] server latency histogram holds %d samples, served %d queries" label
      (stats_sub stats "latency_us" "count") served;
  let phase_num phase k =
    match
      Option.bind (Jsonout.member "phases" stats) (fun ps ->
          Option.bind (Jsonout.member (Phase.name phase) ps) (Jsonout.member k))
    with
    | Some j -> Option.value ~default:0.0 (Jsonout.to_float j)
    | None -> fail "[%s] stats missing field phases.%s.%s" label (Phase.name phase) k
  in
  if int_of_float (phase_num Phase.Run "count") <> served then
    fail "[%s] run phase counted %.0f samples, served %d queries" label
      (phase_num Phase.Run "count") served;
  if int_of_float (phase_num Phase.Encode "count") <> served then
    fail "[%s] encode phase counted %.0f samples, served %d queries" label
      (phase_num Phase.Encode "count") served;
  (* ---- report ---- *)
  let q p = Stats.quantile p !lats /. 1000.0 in
  Printf.printf
    "load_gen: [%s] %d clients x %d queries (batch %d, %d seeds): 0 wrong, %d retries, %d injected\n"
    label !clients !queries !batch !seeds !nretries (stats_num stats "injected_faults");
  Printf.printf "load_gen: [%s] cache %d/%d/%d hit/miss/lookups; %d batches\n" label hits misses
    lookups
    (if !batch > 1 then exchanges else 0);
  Printf.printf "load_gen: [%s] latency/exchange ms p50 %.1f  p90 %.1f  p99 %.1f\n" label (q 0.50)
    (q 0.90) (q 0.99);
  Printf.printf "load_gen: [%s] server phase p99 us:%s\n" label
    (String.concat ""
       (List.map
          (fun p -> Printf.sprintf "  %s %.0f" (Phase.name p) (phase_num p "p99"))
          Phase.all));
  let per_query b = float_of_int b /. float_of_int total in
  Printf.printf "load_gen: [%s] wire bytes/query %.1f framed, %.1f payload\n" label
    (per_query !framed) (per_query !payload);
  {
    label;
    framed_per_query = per_query !framed;
    payload_per_query = per_query !payload;
    us_per_query = List.fold_left ( +. ) 0.0 !lats /. float_of_int total;
  }

(* ------------------------------------------------------- fleet harness *)

(* The fleet workload routes every request to the worker that owns its
   instance key — the same {!Service.shard_of_request} hash the fleet
   parent shards by — so each worker's LRU sees only its slice of the
   seed space.  That sharding is the single-core throughput lever the
   sweep measures: with [--seeds] past a worker's [--cache] capacity,
   one worker thrashes (every lookup rebuilds its instance) while at
   two or four workers every shard slice fits its cache and repeats
   hit.  Clients group each [--batch] chunk per shard (one exchange
   per shard the chunk touches) and account retries per exchange, so
   the reconciliation [served = ok + extra] stays exact at any batch
   size: a retried exchange re-serves exactly its own items. *)

(* One fleet client: returns (ok, wrong, failed, retries, extra) where
   [extra] counts queries the server served again because an exchange
   was retried. *)
let run_fleet_client ~workers ~path ~expected c =
  let m = Metrics.create () in
  let ok = ref 0 and wrong = ref 0 and failed = ref 0 and extra = ref 0 in
  List.iter
    (fun reqs ->
      let by_shard = Hashtbl.create 4 in
      List.iter
        (fun r ->
          let sh = Service.shard_of_request ~workers r in
          Hashtbl.replace by_shard sh (r :: (try Hashtbl.find by_shard sh with Not_found -> [])))
        reqs;
      let groups =
        Hashtbl.fold (fun sh rs acc -> (sh, List.rev rs) :: acc) by_shard [] |> List.sort compare
      in
      List.iter
        (fun (sh, reqs) ->
          let spath = Service.worker_path ~path sh in
          let before = Metrics.retries m in
          let results =
            match reqs with
            | [ r ] ->
                [
                  Service.client_query ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02
                    ~backoff_seed:c ~metrics:m ~protocol:Proto.V2 ~path:spath r;
                ]
            | _ -> (
                match
                  Service.client_batch ~timeout_s:5.0 ~retries:!retries ~backoff_s:0.02
                    ~backoff_seed:c ~metrics:m ~protocol:Proto.V2 ~path:spath reqs
                with
                | Ok items -> items
                | Error msg -> List.map (fun _ -> Error msg) reqs)
          in
          extra := !extra + ((Metrics.retries m - before) * List.length reqs);
          List.iter2
            (fun r result ->
              match check_item (expected r.Service.seed) result with
              | `Ok -> incr ok
              | `Wrong -> incr wrong
              | `Failed msg ->
                  Printf.eprintf "load_gen: fleet client %d exchange failed: %s\n%!" c msg;
                  incr failed)
            reqs results)
        groups)
    (plan_for_client c);
  (!ok, !wrong, !failed, Metrics.retries m, !extra)

type fleet_row = {
  fr_workers : int;
  fr_qps : float;
  fr_served : int;
  fr_ok : int;
  fr_retries : int;
  fr_extra : int;
  fr_hits : int;
  fr_misses : int;
  fr_restarts : int;
}

(* One full fleet run at [workers]: fork [serve --workers], await the
   public and every shard socket, drive the shard-aware client fleet,
   measure wall-clock qps over the client phase, then reconcile the
   merged {"op":"stats"} exactly — served = ok + extra, zero wrong,
   zero errors, cache lookups = served, per-worker gauges summing to
   the total, no restarts. *)
let run_fleet_load ~workers ~expected ~path =
  let label = Printf.sprintf "fleet w%d" workers in
  let all_paths = path :: List.init workers (Service.worker_path ~path) in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) all_paths;
  let server =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (Service.serve ~max_clients:!max_clients ~line_timeout_s:10.0
                ~cache_capacity:!cache_capacity ~workers ~path ())
         with _ -> Unix._exit 2);
        Unix._exit 0
    | pid -> pid
  in
  let rec await tries =
    if not (List.for_all Sys.file_exists all_paths) then
      if tries = 0 then (
        Unix.kill server Sys.sigkill;
        fail "[%s] fleet sockets at %s never appeared" label path)
      else (
        Unix.sleepf 0.05;
        await (tries - 1))
  in
  await 100;
  let rd, wr = Unix.pipe () in
  let t0 = Unix.gettimeofday () in
  let pids =
    List.init !clients (fun c ->
        match Unix.fork () with
        | 0 ->
            Unix.close rd;
            let ok, wrong, failed, nretries, extra = run_fleet_client ~workers ~path ~expected c in
            let line = Printf.sprintf "%d %d %d %d %d %d\n" c ok wrong failed nretries extra in
            ignore (Unix.write_substring wr line 0 (String.length line));
            Unix._exit 0
        | pid -> pid)
  in
  Unix.close wr;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read rd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  Unix.close rd;
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> fail "[%s] a client process crashed" label)
    pids;
  let t1 = Unix.gettimeofday () in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf)) in
  if List.length lines <> !clients then
    fail "[%s] collected %d client tallies, expected %d" label (List.length lines) !clients;
  let ok = ref 0 and wrong = ref 0 and failed = ref 0 and nretries = ref 0 and extra = ref 0 in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ _c; o; w; f; r; x ] ->
          ok := !ok + int_of_string o;
          wrong := !wrong + int_of_string w;
          failed := !failed + int_of_string f;
          nretries := !nretries + int_of_string r;
          extra := !extra + int_of_string x
      | _ -> fail "[%s] garbled client tally %S" label line)
    lines;
  let stats =
    match Service.client_stats ~protocol:Proto.V2 ~path () with
    | Ok s -> s
    | Error msg -> fail "[%s] stats query: %s" label msg
  in
  Service.client_shutdown ~path ();
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "[%s] fleet supervisor did not exit cleanly" label);
  let total = !clients * !queries in
  if !wrong > 0 then fail "[%s] %d wrong verdicts out of %d queries" label !wrong total;
  if !failed > 0 then fail "[%s] %d exchanges exhausted their retry budget" label !failed;
  if !ok <> total then fail "[%s] %d ok replies, expected %d" label !ok total;
  let served = stats_num stats "queries_served" in
  if served <> !ok + !extra then
    fail "[%s] fleet served %d queries; clients account for %d (= %d ok + %d re-served)" label
      served (!ok + !extra) !ok !extra;
  if stats_num stats "errors" <> 0 then
    fail "[%s] fleet tallied %d errors on a clean run" label (stats_num stats "errors");
  if stats_num stats "injected_faults" <> 0 then
    fail "[%s] fleet injected %d faults with no schedule" label (stats_num stats "injected_faults");
  let hits = stats_sub stats "cache" "hits" and misses = stats_sub stats "cache" "misses" in
  if hits + misses <> served then
    fail "[%s] cache lookups %d != queries served %d" label (hits + misses) served;
  let wobj =
    match Jsonout.member "workers" stats with
    | Some w -> w
    | None -> fail "[%s] merged stats missing the workers object" label
  in
  if stats_num wobj "count" <> workers then
    fail "[%s] workers gauge says %d, fleet has %d" label (stats_num wobj "count") workers;
  let restarts = stats_num wobj "restarts" in
  if restarts <> 0 then fail "[%s] %d unexpected worker restarts" label restarts;
  (match Option.bind (Jsonout.member "fleet" wobj) Jsonout.to_list with
  | Some entries ->
      if List.length entries <> workers then
        fail "[%s] %d per-worker gauge rows, expected %d" label (List.length entries) workers;
      let sum = List.fold_left (fun acc e -> acc + stats_num e "served") 0 entries in
      if sum <> served then
        fail "[%s] per-worker served gauges sum to %d, fleet served %d" label sum served
  | None -> fail "[%s] workers object missing the fleet array" label);
  let qps = float_of_int total /. Float.max 1e-9 (t1 -. t0) in
  Printf.printf
    "load_gen: [%s] %d clients x %d queries: %.0f qps, served %d (%d ok + %d re-served), cache \
     %d/%d hit/miss\n"
    label !clients !queries qps served !ok !extra hits misses;
  {
    fr_workers = workers;
    fr_qps = qps;
    fr_served = served;
    fr_ok = !ok;
    fr_retries = !nretries;
    fr_extra = !extra;
    fr_hits = hits;
    fr_misses = misses;
    fr_restarts = restarts;
  }

let fleet_json rows =
  let num i = Jsonout.Num (float_of_int i) in
  Jsonout.Obj
    [
      ( "workload",
        Jsonout.Obj
          [
            ("clients", num !clients);
            ("queries", num !queries);
            ("batch", num !batch);
            ("seeds", num !seeds);
            ("cache", num !cache_capacity);
            ("n", num !inst_n);
          ] );
      ( "rows",
        Jsonout.List
          (List.map
             (fun r ->
               Jsonout.Obj
                 [
                   ("name", Jsonout.Str (Printf.sprintf "fleet/w%d" r.fr_workers));
                   ("workers", num r.fr_workers);
                   ("qps", Jsonout.Num r.fr_qps);
                   ("served", num r.fr_served);
                   ("ok", num r.fr_ok);
                   ("retries", num r.fr_retries);
                   ("extra", num r.fr_extra);
                   ("wrong", num 0);
                   ("cache_hits", num r.fr_hits);
                   ("cache_misses", num r.fr_misses);
                   ("restarts", num r.fr_restarts);
                   ("reconciled", Jsonout.Bool true);
                 ])
             rows) );
    ]

(* Write the sweep's rows: injected as the "fleet" member of an existing
   tfree-bench/v1 document (the committed baseline keeps one document),
   or as a standalone tfree-fleet/v1 document. *)
let write_fleet_out file rows =
  let fleet = fleet_json rows in
  let doc =
    match
      if Sys.file_exists file then Jsonout.parse (In_channel.with_open_text file In_channel.input_all)
      else Error "absent"
    with
    | Ok (Jsonout.Obj fields)
      when Jsonout.member "schema" (Jsonout.Obj fields) = Some (Jsonout.Str "tfree-bench/v1") ->
        Jsonout.Obj (List.filter (fun (k, _) -> k <> "fleet") fields @ [ ("fleet", fleet) ])
    | _ -> Jsonout.Obj [ ("schema", Jsonout.Str "tfree-fleet/v1"); ("fleet", fleet) ]
  in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Jsonout.to_string ~indent:2 doc);
      Out_channel.output_char oc '\n');
  Printf.printf "load_gen: fleet rows written to %s\n" file

let run_fleet_sweep ~expected ~stem =
  (* Two measured runs per worker count, keeping the faster: every run
     reconciles exactly on its own, so the extra run only filters
     one-off scheduler noise out of the wall-clock qps the gate below
     compares. *)
  let rows =
    List.map
      (fun w ->
        let run i = run_fleet_load ~workers:w ~expected ~path:(Printf.sprintf "%s.f%d.r%d" stem w i) in
        let a = run 0 and b = run 1 in
        if b.fr_qps > a.fr_qps then b else a)
      [ 1; 2; 4 ]
  in
  let qps w =
    match List.find_opt (fun r -> r.fr_workers = w) rows with
    | Some r -> r.fr_qps
    | None -> fail "fleet sweep lost its w%d row" w
  in
  Printf.printf "load_gen: fleet qps  w1 %.0f  w2 %.0f  w4 %.0f\n" (qps 1) (qps 2) (qps 4);
  if qps 2 <= qps 1 then
    fail "fleet of 2 (%.0f qps) does not beat one worker (%.0f qps)" (qps 2) (qps 1);
  if qps 4 <= qps 1 then
    fail "fleet of 4 (%.0f qps) does not beat one worker (%.0f qps)" (qps 4) (qps 1);
  if !fleet_out <> "" then write_fleet_out !fleet_out rows

let () =
  Arg.parse specs (fun a -> fail "unexpected argument %S" a) usage;
  if !clients < 1 || !queries < 1 || !batch < 1 || !seeds < 1 then
    fail "--clients, --queries, --batch and --seeds must be positive";
  if !queries mod !batch <> 0 then
    fail "--queries (%d) must be a multiple of --batch (%d)" !queries !batch;
  if !clients > !max_clients then
    fail "--clients (%d) beyond --max-clients (%d) would shed; raise the cap" !clients !max_clients;
  let prefs =
    match !protocol_mode with
    | "v1" -> [ Proto.V1 ]
    | "v2" -> [ Proto.V2 ]
    | "both" -> [ Proto.V1; Proto.V2 ]
    | p -> fail "bad --protocol %S (expected v1, v2 or both)" p
  in
  let fault =
    match Fault.parse !fault_spec with
    | Ok s -> s
    | Error msg -> fail "bad --fault spec: %s" msg
  in
  let stem =
    if !socket_path <> "" then !socket_path
    else
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "tfree-load-%d.sock" (Unix.getpid ()))
  in
  (* expected replies, computed locally before any forking *)
  let expected_arr =
    Array.init !seeds (fun i -> Service.run_request (request_for (1 + i)))
  in
  let expected seed = expected_arr.(seed - 1) in
  if !fleet_sweep || !workers > 0 then begin
    (* Fleet runs are clean-path throughput measurements: the fault
       schedule targets a single server's reply stream and would make
       the per-worker op indices racy across a fleet. *)
    if !fault_spec <> "" then
      fail "--fleet/--workers measure the clean path; drop --fault (%S)" !fault_spec;
    if !fleet_sweep then run_fleet_sweep ~expected ~stem
    else begin
      let row = run_fleet_load ~workers:!workers ~expected ~path:stem in
      if !fleet_out <> "" then write_fleet_out !fleet_out [ row ]
    end;
    print_endline "load_gen: ok";
    exit 0
  end;
  let summaries =
    List.map
      (fun pref ->
        let path =
          if List.length prefs = 1 then stem
          else stem ^ "." ^ Proto.pref_to_string pref
        in
        run_load ~pref ~fault ~expected ~path)
      prefs
  in
  (match summaries with
  | [ s1; s2 ] ->
      Printf.printf
        "load_gen: side by side  bytes/query framed %s %.1f vs %s %.1f | payload %.1f vs %.1f | us/query %.1f vs %.1f\n"
        s1.label s1.framed_per_query s2.label s2.framed_per_query s1.payload_per_query
        s2.payload_per_query s1.us_per_query s2.us_per_query;
      if s2.framed_per_query >= s1.framed_per_query then
        fail "v2 framed bytes/query %.1f is not below v1's %.1f" s2.framed_per_query
          s1.framed_per_query;
      if s2.payload_per_query >= s1.payload_per_query then
        fail "v2 payload bytes/query %.1f is not below v1's %.1f" s2.payload_per_query
          s1.payload_per_query
  | _ -> ());
  print_endline "load_gen: ok"
