(* Observability smoke behind the @obs-smoke alias: the serve-grade
   observability surface end to end, against the real binary.

   Forks the tfree CLI as a daemon with every observability flag on
   (--log/--log-level, --slow-us, --trace-sample/--trace-out,
   --metrics-file/--metrics-interval), drives queries over both wire
   protocols plus a batch — each checked against a locally computed run,
   zero wrong verdicts — and then asserts, from the outside:

     - {"op": "health"} answers over JSON v1 AND the v2 frame tag, with
       the O(1) scalar payload and cache occupancy;
     - the stats JSON's per-phase histograms honor the phase-count
       contract: cache_lookup, run and encode each hold exactly one
       sample per served query, as does the end-to-end latency histogram;
     - `tfree client --stats --format prom` emits exposition text that
       passes the strict {!Prom.validate} parser, as does the --metrics-file
       the daemon rewrites on its interval;
     - the --log file is well-formed JSONL (every line parses, every line
       carries ts/level/event) and the lifecycle events landed: start,
       accept, slow_query (--slow-us 1 makes every query slow),
       metrics_dump, trace_written, shutdown;
     - the sampled trace file exists (the dune rule chains trace_check on
       it, re-asserting the message-decomposition identity from the bytes
       alone).

   Usage: obs_smoke TFREE_BIN *)

open Tfree_util
module Service = Tfree_wire.Service
module Proto = Tfree_wire.Proto
module Prom = Tfree_obs.Prom
module Phase = Tfree_obs.Phase

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("obs_smoke: " ^ msg); exit 1) fmt

let log_file = "obs_serve.log"
let metrics_file = "obs_metrics.prom"
let trace_file = "obs_trace.json"
let prom_cli_file = "obs_prom_cli.txt"

let num_member path j =
  let rec go j = function
    | [] -> Jsonout.to_float j
    | k :: rest -> ( match Jsonout.member k j with Some v -> go v rest | None -> None)
  in
  match go j path with
  | Some f -> f
  | None -> fail "missing numeric field %s" (String.concat "." path)

let () =
  let bin = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: obs_smoke TFREE_BIN" in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-obs-%d.sock" (Unix.getpid ()))
  in
  (* ---- the daemon, through the real CLI with every obs flag on ---- *)
  let server =
    Unix.create_process bin
      [|
        bin; "serve"; "--socket"; path; "--log"; log_file; "--log-level"; "debug"; "--slow-us";
        "1"; "--trace-sample"; "1"; "--trace-out"; trace_file; "--metrics-file"; metrics_file;
        "--metrics-interval"; "0.2";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then (
        Unix.kill server Sys.sigkill;
        fail "server socket %s never appeared" path)
      else (
        Unix.sleepf 0.05;
        await (tries - 1))
  in
  await 100;
  (* ---- queries over both protocols, checked against local runs ---- *)
  let request seed = { Service.default_request with n = 200; seed } in
  let expected = Array.init 3 (fun i -> Service.run_request (request (1 + i))) in
  let check_resp label (resp : Service.response) seed =
    let e = expected.(seed - 1) in
    if resp.Service.verdict <> e.Service.verdict then fail "[%s] wrong verdict on seed %d" label seed;
    if resp.Service.bits <> e.Service.bits then fail "[%s] wrong bit count on seed %d" label seed
  in
  List.iter
    (fun (label, pref) ->
      List.iter
        (fun seed ->
          match Service.client_query ~protocol:pref ~path (request seed) with
          | Ok resp -> check_resp label resp seed
          | Error msg -> fail "[%s] query seed %d: %s" label seed msg)
        [ 1; 2; 3 ])
    [ ("v1", Proto.V1); ("v2", Proto.V2) ];
  (match Service.client_batch ~protocol:Proto.V2 ~path [ request 1; request 2 ] with
  | Ok [ Ok r1; Ok r2 ] ->
      check_resp "batch" r1 1;
      check_resp "batch" r2 2
  | Ok _ -> fail "[batch] unexpected reply shape"
  | Error msg -> fail "[batch] %s" msg);
  let served_expected = 8 in
  (* ---- health over v1 and v2 ---- *)
  List.iter
    (fun (label, pref) ->
      match Service.client_health ~protocol:pref ~path () with
      | Error msg -> fail "[%s] health: %s" label msg
      | Ok h ->
          if num_member [ "uptime_s" ] h < 0.0 then fail "[%s] negative uptime" label;
          if int_of_float (num_member [ "queries_served" ] h) <> served_expected then
            fail "[%s] health served %.0f, expected %d" label
              (num_member [ "queries_served" ] h)
              served_expected;
          if int_of_float (num_member [ "errors" ] h) <> 0 then fail "[%s] health errors != 0" label;
          if int_of_float (num_member [ "cache"; "capacity" ] h) <> 32 then
            fail "[%s] health cache capacity %.0f != default 32" label
              (num_member [ "cache"; "capacity" ] h);
          if num_member [ "cache"; "entries" ] h < 1.0 then
            fail "[%s] health cache empty after cached queries" label)
    [ ("v1", Proto.V1); ("v2", Proto.V2) ];
  (* ---- stats: phase-count contract + Prometheus exposition ---- *)
  let stats =
    match Service.client_stats ~path () with Ok s -> s | Error msg -> fail "stats: %s" msg
  in
  let served = int_of_float (num_member [ "queries_served" ] stats) in
  if served <> served_expected then fail "served %d, expected %d" served served_expected;
  if int_of_float (num_member [ "errors" ] stats) <> 0 then fail "errors on a clean run";
  if int_of_float (num_member [ "latency_us"; "count" ] stats) <> served then
    fail "latency histogram count %.0f != served %d" (num_member [ "latency_us"; "count" ] stats) served;
  List.iter
    (fun phase ->
      let count = int_of_float (num_member [ "phases"; Phase.name phase; "count" ] stats) in
      if count <> served then
        fail "phase %s counted %d samples, served %d" (Phase.name phase) count served)
    [ Phase.Cache_lookup; Phase.Run; Phase.Encode ];
  (* read and parse count at least one unit per exchange; write lags the
     stats snapshot by the in-flight stats exchange itself *)
  if num_member [ "phases"; "read"; "count" ] stats < float_of_int served then
    fail "read phase undercounts";
  (match Prom.validate (Prom.of_stats stats) with
  | Ok () -> ()
  | Error msg -> fail "Prom.of_stats failed its own validator: %s" msg);
  (* the CLI's --stats --format prom, captured and validated *)
  let out =
    Unix.openfile prom_cli_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let cli =
    Unix.create_process bin
      [| bin; "client"; "--socket"; path; "--stats"; "--format"; "prom" |]
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  (match Unix.waitpid [] cli with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "client --stats --format prom exited nonzero");
  let cli_text = In_channel.with_open_text prom_cli_file In_channel.input_all in
  (match Prom.validate cli_text with
  | Ok () -> ()
  | Error msg -> fail "CLI prom output invalid: %s" msg);
  (* ---- the daemon's periodic --metrics-file dump ---- *)
  Unix.sleepf 0.5;
  let dump_text = In_channel.with_open_text metrics_file In_channel.input_all in
  (match Prom.validate dump_text with
  | Ok () -> ()
  | Error msg -> fail "--metrics-file dump invalid: %s" msg);
  (* ---- shutdown, then the artifacts ---- *)
  Service.client_shutdown ~path ();
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "server did not exit cleanly");
  let log_lines =
    In_channel.with_open_text log_file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  if log_lines = [] then fail "--log wrote nothing";
  let events = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match Jsonout.parse line with
      | Error msg -> fail "log line is not JSON (%s): %s" msg line
      | Ok j ->
          ignore (num_member [ "ts" ] j);
          (match Jsonout.member "level" j with
          | Some (Jsonout.Str ("debug" | "info" | "warn" | "error")) -> ()
          | _ -> fail "log line without a known level: %s" line);
          (match Jsonout.member "event" j with
          | Some (Jsonout.Str e) -> Hashtbl.replace events e ()
          | _ -> fail "log line without an event: %s" line))
    log_lines;
  List.iter
    (fun e -> if not (Hashtbl.mem events e) then fail "lifecycle event %S never logged" e)
    [ "start"; "accept"; "slow_query"; "metrics_dump"; "trace_written"; "shutdown" ];
  if not (Sys.file_exists trace_file) then fail "--trace-out wrote nothing";
  Printf.printf
    "obs_smoke: ok (%d queries over v1+v2+batch, 0 wrong; health on both protocols; %d JSONL log \
     lines; prom exposition valid from CLI and --metrics-file; trace written)\n"
    served (List.length log_lines)
