(* Benchmark and reproduction harness.

   Two parts:
   1. The Table-1 regeneration harness: every experiment of DESIGN.md §4 runs
      at Small scale and prints its table (these are the numbers EXPERIMENTS.md
      quotes).
   2. Bechamel micro-benchmarks: one Test.make per Table-1 protocol row (plus
      the substrate hot paths), timing a single representative run. *)

open Tfree_util
open Tfree_graph
open Bechamel
open Toolkit

(* ------------------------------------------------ part 1: experiments *)

let run_experiments () =
  print_endline "# Table 1 reproduction (Small scale; see EXPERIMENTS.md)";
  print_newline ();
  List.iter
    (fun (e : Tfree_experiments.Registry.entry) ->
      Printf.printf "### %s [%s]\n%!" e.Tfree_experiments.Registry.title e.Tfree_experiments.Registry.id;
      Tfree_experiments.Registry.run_and_print ~scale:Tfree_experiments.Common.Small e;
      print_newline ())
    Tfree_experiments.Registry.all

(* -------------------------------------------- part 2: bechamel micro *)

let params = Tfree.Params.practical

(* Fixed fixtures, built once so the timed closures only run the protocol. *)
let fixture_low =
  let rng = Rng.create 4242 in
  let g = Gen.far_with_degree rng ~n:1000 ~d:4.0 ~eps:0.1 in
  (g, Partition.with_duplication rng ~k:4 ~dup_p:0.3 g)

let fixture_dense =
  let rng = Rng.create 4243 in
  let g = Gen.far_with_degree rng ~n:600 ~d:36.0 ~eps:0.1 in
  (g, Partition.with_duplication rng ~k:4 ~dup_p:0.3 g)

let seed_counter = ref 0

let next_seed () =
  incr seed_counter;
  !seed_counter

let micro_tests =
  let g_low, parts_low = fixture_low in
  let g_dense, parts_dense = fixture_dense in
  Test.make_grouped ~name:"tfree"
    [
      Test.make ~name:"table1/unrestricted"
        (Staged.stage (fun () -> Tfree.Tester.unrestricted ~seed:(next_seed ()) params parts_low));
      Test.make ~name:"table1/sim-low"
        (Staged.stage (fun () ->
             Tfree.Sim_low.run ~seed:(next_seed ()) params ~d:(Graph.avg_degree g_low) parts_low));
      Test.make ~name:"table1/sim-high"
        (Staged.stage (fun () ->
             Tfree.Sim_high.run ~seed:(next_seed ()) params ~d:(Graph.avg_degree g_dense) parts_dense));
      Test.make ~name:"table1/sim-oblivious"
        (Staged.stage (fun () -> Tfree.Sim_oblivious.run ~seed:(next_seed ()) params parts_low));
      Test.make ~name:"table1/exact-baseline"
        (Staged.stage (fun () -> Tfree.Tester.exact ~seed:(next_seed ()) parts_low));
      Test.make ~name:"substrate/triangle-find"
        (Staged.stage (fun () -> Triangle.find g_dense));
      Test.make ~name:"substrate/greedy-packing"
        (Staged.stage (fun () -> Triangle.greedy_packing g_low));
      Test.make ~name:"substrate/degree-approx"
        (Staged.stage (fun () ->
             let rt = Tfree_comm.Runtime.make ~seed:(next_seed ()) parts_low in
             Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.1 ~boost:0.3 0));
      Test.make ~name:"lower/bm-reduction"
        (Staged.stage (fun () ->
             let rng = Rng.create (next_seed ()) in
             let inst = Tfree_lowerbound.Boolean_matching.generate rng ~n:256 ~target:false in
             Tfree_lowerbound.Boolean_matching.reduction_graph inst));
      Test.make ~name:"lower/streaming-detector"
        (Staged.stage (fun () ->
             let det = Tfree_streaming.Detector.make ~seed:(next_seed ()) ~p:0.2 in
             let rng = Rng.create (next_seed ()) in
             Tfree_streaming.Stream_alg.run det ~n:(Graph.n g_low)
               (Tfree_streaming.Stream_alg.stream_of_graph rng g_low)));
    ]

let run_micro () =
  print_endline "# Bechamel micro-benchmarks (one Test.make per protocol row)";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est = match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square o) in
        (name, est, r2) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  let table =
    Table.make ~title:"wall-clock per run"
      ~header:[ "benchmark"; "time/run"; "r²" ]
      (List.map
         (fun (name, est, r2) ->
           let human =
             if Float.is_nan est then "-"
             else if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
             else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
             else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
             else Printf.sprintf "%.0f ns" est
           in
           [ name; human; Table.fcell r2 ])
         rows)
  in
  Table.print table

let () =
  run_experiments ();
  run_micro ();
  print_endline "done."
