(** Shared machinery for the experiment harness (DESIGN.md §4).

    Every experiment produces one or more {!Tfree_util.Table.t} rendering the
    measured quantities next to the paper's predicted shape; EXPERIMENTS.md
    quotes the small-scale outputs produced by [bench/main.exe].  All
    experiments run at two scales: [Small] (seconds, used by the bench
    executable) and [Big] (minutes, via the CLI). *)

open Tfree_util
open Tfree_graph

type scale = Small | Big

let reps = function Small -> 5 | Big -> 15

(** Mean communication bits of [run : seed -> int] over [reps] seeds, with
    the detection count (every experiment also tracks correctness). *)
let mean_bits ~reps run =
  let bits = ref [] and hits = ref 0 in
  for s = 1 to reps do
    let b, found = run s in
    bits := float_of_int b :: !bits;
    if found then incr hits
  done;
  (Stats.mean !bits, float_of_int !hits /. float_of_int reps)

let found_of_report (r : Tfree.Tester.report) =
  match r.Tfree.Tester.verdict with Tfree.Tester.Triangle _ -> true | Tfree.Tester.Triangle_free -> false

(** A far instance at (n, d) partitioned over k players with mild
    duplication, seeded deterministically. *)
let far_instance ~n ~d ~k ~dup seed =
  let rng = Rng.create (914_771 * seed) in
  let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
  let parts =
    if dup then Partition.with_duplication rng ~k ~dup_p:0.3 g else Partition.disjoint_random rng ~k g
  in
  (g, parts)

(** Fit the log–log exponent of (n, bits) points. *)
let exponent pts = (Stats.loglog_exponent pts).Stats.slope

let fmt_exp e = Table.fcell ~prec:2 e

(** Build the standard scaling table: one row per n, closing with the fitted
    exponent row. *)
let scaling_table ~title ~claim rows_with_fit =
  let rows, pts = rows_with_fit in
  let fit = exponent pts in
  Table.make ~title
    ~header:[ "n"; "d"; "k"; "mean bits"; "success" ]
    (rows @ [ [ "fit"; "-"; "-"; Printf.sprintf "n^%s" (fmt_exp fit); claim ] ])
