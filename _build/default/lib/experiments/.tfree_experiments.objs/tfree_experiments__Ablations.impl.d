lib/experiments/ablations.ml: Array Bucket Common Float Gen Graph Hashtbl List Option Partition Rng Stats Table Tfree Tfree_comm Tfree_graph Tfree_lowerbound Tfree_util
