lib/experiments/registry.ml: Ablations Common Extensions List Lower_bounds Table Tfree_util Upper_bounds
