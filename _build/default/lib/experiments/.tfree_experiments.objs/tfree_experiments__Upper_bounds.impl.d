lib/experiments/upper_bounds.ml: Common Float Gen Graph List Option Partition Printf Table Tfree Tfree_comm Tfree_graph Tfree_util
