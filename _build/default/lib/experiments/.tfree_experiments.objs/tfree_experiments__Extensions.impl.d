lib/experiments/extensions.ml: Behrend Common Gen Graph List Option Partition Printf Rng Stats Subgraph Table Tfree Tfree_comm Tfree_congest Tfree_graph Tfree_util Triangle
