lib/experiments/common.ml: Gen Partition Printf Rng Stats Table Tfree Tfree_graph Tfree_util
