(** Property-testing protocols for connectivity and bipartiteness built from
    the §3.1 building blocks — demonstrating the paper's claim that the
    standard property-testing primitives translate into the communication
    model.  Both are one-sided with exact witnesses. *)

open Tfree_comm

type connectivity_verdict =
  | Connected_looking  (** no small component found (connected, or δ-failure) *)
  | Disconnected of int list  (** a full component smaller than V: a certificate *)

(** Sparse-model connectivity tester: sample O(1/(ǫ·d̄)) vertices, truncated
    BFS from each; rejects only on a certified small component. *)
val test_connectivity : Runtime.t -> Params.t -> key:int -> connectivity_verdict

type bipartiteness_verdict =
  | Bipartite_looking  (** no odd cycle found *)
  | Odd_cycle of int list  (** an odd cycle of the input: a certificate *)

(** Dense-model bipartiteness tester: collect the induced subgraph of a
    shared sample (paying only for existing edges) and search for an odd
    cycle. *)
val test_bipartiteness : Runtime.t -> Params.t -> key:int -> bipartiteness_verdict
