(** The §3.1 building blocks as coordinator-model sub-protocols, each with
    its stated cost and — where the paper requires it — unbiased under edge
    duplication (shared random priorities). *)

open Tfree_comm
open Tfree_graph

(** Edge-existence query (dense-model primitive): O(k) bits, the answer is
    announced to everyone. *)
val query_edge : Runtime.t -> int * int -> bool

(** Uniformly random edge incident to the vertex (sparse-model primitive),
    uniform even with duplication; O(k·log n) bits.  [None] at isolated
    vertices. *)
val random_incident_edge : Runtime.t -> key:int -> int -> Graph.edge option

(** Random walk taking a uniform incident edge per step; returns the visited
    vertices starting at the source, stopping early at isolated vertices. *)
val random_walk : Runtime.t -> key:int -> int -> steps:int -> int list

(** Uniformly random edge of the whole graph (impossible in the plain query
    model, cheap here); O(k·log n) bits. *)
val random_edge : Runtime.t -> key:int -> Graph.edge option

(** All edges of the induced subgraph: O(k·m'·log n) bits for m' subgraph
    edges — pays only for edges that exist. *)
val induced_subgraph : Runtime.t -> int list -> Graph.t

(** Distributed BFS; returns the distance array (-1 = unreachable). *)
val bfs : Runtime.t -> int -> int array

(** Truncated distributed BFS: stop once more than [max_vertices] vertices
    are discovered.  Returns (discovered vertices, exhausted?); when
    exhausted, the discovered set is the whole component — a certificate of
    disconnection if it is smaller than V. *)
val bfs_limited : Runtime.t -> int -> max_vertices:int -> int list * bool
