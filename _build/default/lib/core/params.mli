(** Protocol parameters: farness ǫ, error δ, and the constants inside the
    sampling formulas, under two profiles — [Paper] (the worst-case formulas
    verbatim) and [Practical] (the same asymptotic terms with reduced
    constant/1/ǫ² safety factors; deviations documented per formula in the
    implementation and in DESIGN.md §2). *)

type profile = Paper | Practical

type t = {
  eps : float;  (** farness parameter ǫ *)
  delta : float;  (** error probability bound δ *)
  profile : profile;
  boost : float;  (** extra multiplier on sample counts and caps *)
}

(** Worst-case constants, ǫ = 0.1, δ = 1/3. *)
val paper : t

(** Laptop-scale constants, ǫ = 0.1, δ = 1/3. *)
val practical : t

val with_eps : t -> float -> t
val with_delta : t -> float -> t
val with_boost : t -> float -> t

(** log2 n floored at 1 — the polylog unit in cost formulas. *)
val log_n : n:int -> float

val ln_n : n:int -> float

(** ln (6/δ). *)
val ln6d : t -> float

(** Candidate samples per bucket (Algorithm 3's q). *)
val bucket_samples : t -> k:int -> n:int -> int

(** Cap on retained candidates per bucket (Algorithm 3's |C| bound). *)
val candidate_cap : t -> n:int -> int

(** Edge-sampling probability around a degree-d candidate (Algorithm 4). *)
val edge_sample_prob : t -> n:int -> d:float -> float

(** Sample-count multiplier for the degree-approximation experiments. *)
val degree_approx_boost : t -> float

(** The simultaneous protocols' Chebyshev constant (Theorem 3.26), scaled
    with 1/ǫ; equals the paper's 8/(9δ) at ǫ = 0.1. *)
val sim_c : t -> float
