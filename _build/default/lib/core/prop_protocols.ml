(** Additional property-testing protocols built from the §3.1 building
    blocks — the paper's claim that "the essential primitives used in the
    property testing setting … are efficiently translatable into our
    communication complexity model", demonstrated on the two properties its
    introduction names alongside triangle-freeness ([38] proves both
    maximally hard to decide exactly): connectivity and bipartiteness.

    Both testers are one-sided with exact witnesses:
    - [test_connectivity] rejects only after exhausting a component smaller
      than the vertex set (a certificate of disconnection);
    - [test_bipartiteness] rejects only after exhibiting an odd cycle all of
      whose edges were received from players. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

type connectivity_verdict =
  | Connected_looking  (** no small component found (connected, or δ-failure) *)
  | Disconnected of int list  (** a full component smaller than V: a certificate *)

(** Connectivity tester (sparse-model style, [22]): a graph ǫ-far from
    connected (≥ ǫ·m edge-insertions needed) has ≥ ǫ·m + 1 components, so at
    least half its components span < 2/(ǫ·d̄) vertices each and a random
    vertex lands in one with probability ≥ ǫ·d̄/4-ish.  Sample
    O(1/(ǫ·d̄)·ln(1/δ)) vertices and run truncated BFS from each. *)
let test_connectivity rt (p : Params.t) ~key =
  let n = Runtime.n rt in
  (* d̄ from a cheap edge-count estimate; an empty graph with n > 1 vertices
     is maximally disconnected. *)
  let m_hat =
    Degree_approx.approx_edge_count rt ~key ~alpha:2.0 ~tau:(p.Params.delta /. 4.0)
      ~boost:(Params.degree_approx_boost p)
  in
  if n <= 1 then Connected_looking
  else if m_hat = 0 then Disconnected [ 0 ]
  else begin
    let d_bar = Float.max 0.5 (2.0 *. float_of_int m_hat /. float_of_int n) in
    let budget = Float.max 2.0 (2.0 /. (p.Params.eps *. d_bar)) in
    let samples =
      max 2
        (int_of_float
           (Float.ceil (Float.log (2.0 /. p.Params.delta) /. p.Params.eps /. d_bar *. 4.0)))
    in
    let samples = min samples n in
    let rng = Runtime.shared_rng rt ~key:(key + 1) in
    let rec probe i =
      if i >= samples then Connected_looking
      else begin
        let src = Rng.int rng n in
        let component, exhausted = Blocks.bfs_limited rt src ~max_vertices:(int_of_float budget) in
        if exhausted && List.length component < n then Disconnected component else probe (i + 1)
      end
    in
    probe 0
  end

type bipartiteness_verdict =
  | Bipartite_looking  (** no odd cycle found *)
  | Odd_cycle of int list  (** an odd cycle of the input: a certificate *)

(** Bipartiteness tester (dense-model style, [22]): sample a shared vertex
    set, collect its induced subgraph (cheap here: players pay only for
    edges that exist, §3.1), and look for an odd cycle. *)
let test_bipartiteness rt (p : Params.t) ~key =
  let n = Runtime.n rt in
  let sample_size =
    min n
      (max 4
         (int_of_float
            (Float.ceil (4.0 *. Params.ln_n ~n /. p.Params.eps *. Float.log (2.0 /. p.Params.delta)))))
  in
  let rng = Runtime.shared_rng rt ~key in
  let sample = Sampling.without_replacement rng n sample_size in
  let sub = Blocks.induced_subgraph rt sample in
  match Traversal.odd_cycle sub with
  | Some cycle -> Odd_cycle cycle
  | None -> Bipartite_looking
