(** Constant-factor approximation of the number of distinct elements held
    jointly by the players — Theorem 3.1 (with duplication) and Lemma 3.2
    (without).

    Instantiated with a vertex's incident edges this approximates deg(v); with
    the whole edge set it approximates m (the paper notes the procedure
    "solves the more general problem of approximating the number of distinct
    elements in a set", which is exactly how we implement it).

    Structure of the duplication-tolerant procedure (Theorem 3.1):
    - {b Phase 1}: each player sends the index of the most significant bit of
      its local count; the sum of the rounded counts d′ satisfies
      D ≤ d′ ≤ 2k·D, a k-factor window.
    - {b Phase 2}: geometric guesses g = d′, d′/√α, … — for each guess the
      players run shared-randomness Bernoulli experiments (mark each universe
      element with probability 1/g; report whether they hold a marked
      element) and stop at the first guess whose empirical success rate
      clears a threshold.

    The paper's threshold constant ("F(r)/c") contains typos; we use the
    statistically equivalent choice documented in DESIGN.md §2: the midpoint
    between the success probabilities at the two α-approximation boundaries,
    1−e^{−1/α} (guess too high) and 1−e^{−√α} (guess low enough), with a
    Hoeffding sample count.  The two-phase structure and the O(k log log +
    k·polylog) cost are the paper's. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let msb_index c =
  if c <= 0 then -1
  else begin
    let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
    go 0 c
  end

(* Success-rate boundaries for approximation factor alpha (see header). *)
let thresholds ~alpha =
  let low = 1.0 -. exp (-1.0 /. alpha) in
  let high = 1.0 -. exp (-.sqrt alpha) in
  let theta = (low +. high) /. 2.0 in
  let margin = (high -. low) /. 2.0 in
  (theta, margin)

(** [approx_distinct rt ~key ~alpha ~tau ~boost ~elements] returns an
    α-approximation (with probability >= 1-τ) of |∪_j elements(E_j)|, where
    [elements] lists a player's universe elements as integers agreed upon by
    all players (e.g. neighbour ids of a fixed vertex).  Returns 0 when no
    player holds any element. *)
let approx_distinct rt ~key ~alpha ~tau ~boost ~elements =
  let local : int list array = Array.init (Runtime.k rt) (fun j -> elements (Runtime.input rt j)) in
  (* Phase 1: MSB indices of the local counts. *)
  let replies =
    Runtime.ask_all rt ~req:Msg.empty (fun j _ ->
        Msg.int_in ~lo:(-1) ~hi:62 (msb_index (List.length local.(j))))
  in
  let d' =
    Array.fold_left
      (fun acc reply ->
        let i = Msg.get_int reply in
        if i < 0 then acc else acc +. Float.pow 2.0 (float_of_int (i + 1)))
      0.0 replies
  in
  if d' = 0.0 then 0
  else begin
    (* Phase 2: geometric guesses down to d'/(2k·alpha). *)
    let k = float_of_int (Runtime.k rt) in
    let floor_guess = Float.max 1.0 (d' /. (2.0 *. k *. alpha)) in
    let theta, margin = thresholds ~alpha in
    let n_guesses =
      1 + int_of_float (Float.ceil (Float.log (d' /. floor_guess) /. Float.log (sqrt alpha)))
    in
    let m_exp =
      let hoeffding = Float.log (2.0 *. float_of_int n_guesses /. tau) /. (2.0 *. margin *. margin) in
      max 8 (int_of_float (Float.ceil (boost *. hoeffding)))
    in
    let run_guess idx g =
      let p = Float.min 1.0 (1.0 /. g) in
      let successes = ref 0 in
      for e = 0 to m_exp - 1 do
        let mark_rng = Runtime.shared_rng rt ~key:(key + (7919 * idx) + (104729 * (e + 1))) in
        let replies =
          Runtime.ask_all rt ~req:Msg.empty (fun j _ ->
              (* Each player checks its (precomputed) elements for a marked
                 one and answers a single bit. *)
              Msg.bool (List.exists (fun el -> Rng.hash_float mark_rng el < p) local.(j)))
        in
        if Array.exists Msg.get_bool replies then incr successes
      done;
      float_of_int !successes /. float_of_int m_exp >= theta
    in
    let rec scan idx g =
      if g <= floor_guess then g
      else if run_guess idx g then g
      else scan (idx + 1) (g /. sqrt alpha)
    in
    let answer = scan 0 d' in
    (* The coordinator announces the outcome's exponent so all players agree. *)
    Runtime.tell_all rt (Msg.int_in ~lo:0 ~hi:127 (max 0 (msb_index (int_of_float answer))));
    max 1 (int_of_float (Float.round answer))
  end

(** Lemma 3.2: without duplication each player just sends the top bits of its
    exact local count; the truncated sum under-counts by at most the factor
    α.  O(k·log log) bits, no experiments. *)
let approx_distinct_nodup rt ~key:_ ~alpha ~elements =
  if alpha <= 1.0 then invalid_arg "approx_distinct_nodup: alpha must exceed 1";
  (* Keep b top bits so truncation loses < 2^{1-b} <= alpha - 1 relatively. *)
  let b =
    let rec go b = if Float.pow 2.0 (float_of_int (1 - b)) <= alpha -. 1.0 then b else go (b + 1) in
    go 1
  in
  let replies =
    Runtime.ask_all rt ~req:Msg.empty (fun _ input ->
        let c = List.length (elements input) in
        let i = msb_index c in
        if i < 0 then Msg.tuple [ Msg.int_in ~lo:(-1) ~hi:62 (-1); Msg.int_in ~lo:0 ~hi:((1 lsl b) - 1) 0 ]
        else begin
          let shift = max 0 (i - b + 1) in
          Msg.tuple
            [ Msg.int_in ~lo:(-1) ~hi:62 i; Msg.int_in ~lo:0 ~hi:((1 lsl b) - 1) ((c lsr shift) land ((1 lsl b) - 1)) ]
        end)
  in
  Array.fold_left
    (fun acc reply ->
      match Msg.get_tuple reply with
      | [ idx; top ] ->
          let i = Msg.get_int idx in
          if i < 0 then acc
          else begin
            (* Truncation loses < 2^shift <= c·2^{1-b}, an under-count only. *)
            let shift = max 0 (i - b + 1) in
            acc + (Msg.get_int top lsl shift)
          end
      | _ -> invalid_arg "approx_distinct_nodup: malformed reply")
    0 replies

(** α-approximate deg(v) under duplication (Theorem 3.1 specialized). *)
let approx_degree rt ~key ~alpha ~tau ~boost v =
  approx_distinct rt ~key ~alpha ~tau ~boost ~elements:(fun input ->
      Array.to_list (Graph.neighbors input v))

(** α-approximate total edge count m (for the degree-oblivious driver,
    Corollary 3.22). *)
let approx_edge_count rt ~key ~alpha ~tau ~boost =
  let n = Runtime.n rt in
  approx_distinct rt ~key ~alpha ~tau ~boost ~elements:(fun input ->
      List.map (fun (u, v) -> (u * n) + v) (Graph.edges input))
