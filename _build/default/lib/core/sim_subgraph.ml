(** Extension: simultaneous testing of H-freeness for small patterns H —
    the direction §5 proposes ("generalizing our techniques for detecting a
    wider class of subgraphs"; cf. [19] for 4-vertex patterns in CONGEST).

    The high-degree protocol (Algorithm 7) generalizes directly: a graph
    ǫ-far from H-freeness contains ≥ ǫ·m/|E(H)| edge-disjoint copies of H;
    sampling each vertex with probability s/n keeps a given copy with
    probability (s/n)^{|V(H)|}, so
        s = c · n · (ǫ·d·n/(2·e_H))^{-1/h}   (h = |V(H)|, e_H = |E(H)|)
    puts Θ(c^h) expected surviving copies in the sampled induced subgraph.
    Players send their edges inside the sample (with the same per-player cap
    derivation as Algorithm 7); the referee searches the union for an
    embedding of H.  One-sided: the referee verifies the embedding against
    received edges before reporting.

    For h = 3 this is exactly {!Sim_high}; the cost grows as
    O~(k·n^{1-2/h}·(d/ǫ)^{... }) — for C4/K4 at d = Θ(√n) the message is
    O~(k·n^{5/8})-ish, still sublinear in m. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

(** Vertex-sample size for pattern [p] at average degree [d]. *)
let sample_size (prm : Params.t) ~n ~d (p : Subgraph.pattern) =
  let h = float_of_int p.Subgraph.vertices in
  let e_h = float_of_int (List.length p.Subgraph.edges) in
  let c = Params.sim_c prm in
  let copies = prm.Params.eps *. Float.max 1.0 d *. float_of_int n /. (2.0 *. e_h) in
  let raw = c *. float_of_int n /. Float.pow (Float.max 1.0 copies) (1.0 /. h) in
  max p.Subgraph.vertices (min n (int_of_float (Float.ceil raw)))

(** Per-player edge cap: (2/δ)·expected edges in the sampled subgraph. *)
let edge_cap (prm : Params.t) ~n ~d ~s =
  let expected = Float.max 1.0 d *. float_of_int (s * s) /. (2.0 *. float_of_int n) in
  max 8 (int_of_float (Float.ceil (2.0 *. expected /. prm.Params.delta)))

let protocol (prm : Params.t) ~d (p : Subgraph.pattern) : int array option Simultaneous.protocol =
  {
    Simultaneous.player =
      (fun ctx _j input ->
        let n = ctx.Simultaneous.n in
        let s = sample_size prm ~n ~d p in
        let rng = Simultaneous.shared_rng ctx ~key:61 in
        let in_s v = Rng.hash_float rng v < float_of_int s /. float_of_int n in
        let cap = edge_cap prm ~n ~d ~s in
        let selected =
          Graph.fold_edges input ~init:[] ~f:(fun acc u v ->
              if in_s u && in_s v then (u, v) :: acc else acc)
        in
        Msg.edges ~n (List.filteri (fun idx _ -> idx < cap) selected));
    referee =
      (fun ctx messages ->
        let n = ctx.Simultaneous.n in
        let union = Graph.of_edges ~n (List.concat_map Msg.get_edges (Array.to_list messages)) in
        match Subgraph.find union p with
        | Some assignment when Subgraph.is_embedding union p assignment -> Some assignment
        | _ -> None);
  }

let run ~seed (prm : Params.t) ~d p inputs = Simultaneous.run ~seed (protocol prm ~d p) inputs
