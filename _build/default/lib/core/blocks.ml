(** Building blocks of §3.1: the property-testing primitives, implemented as
    coordinator-model sub-protocols with their stated costs.

    Several of the primitives must be unbiased under {e edge duplication}
    (the same edge held by several players).  Following the paper, the
    duplication-proof ones impose a shared random priority order and take the
    minimum: an edge's chance of winning depends only on its priority, not on
    how many players hold it. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

(** Edge-existence query — the dense-model primitive.  Each player answers
    one bit; the coordinator announces the OR.  O(k) bits. *)
let query_edge rt (u, v) =
  let u, v = Graph.normalize_edge (u, v) in
  let present = Runtime.any_player rt (fun input -> Graph.mem_edge input u v) in
  Runtime.tell_all rt (Msg.bool present);
  present

(* Shared random priority of vertex [u] in the sub-protocol step keyed by
   [rng]; ties are broken by the vertex id, so the order is a uniformly random
   permutation. *)
let priority rng u = (Rng.hash_float rng u, u)

(** Uniformly random edge incident to [v] — the sparse-model primitive.  A
    shared random order over the n-1 potential incident edges is fixed; each
    player reports its first incident edge under that order and the
    coordinator announces the overall first.  Uniform even with duplication.
    O(k log n) bits. *)
let random_incident_edge rt ~key v =
  let rng = Runtime.shared_rng rt ~key in
  let n = Runtime.n rt in
  let best_of input =
    Array.fold_left
      (fun acc u ->
        match acc with
        | Some b when priority rng b <= priority rng u -> acc
        | _ -> Some u)
      None (Graph.neighbors input v)
  in
  let replies = Runtime.ask_all rt ~req:(Msg.vertex ~n v) (fun _ input -> Msg.vertex_opt ~n (best_of input)) in
  let winner =
    Array.fold_left
      (fun acc reply ->
        match (acc, Msg.get_vertex_opt reply) with
        | None, r -> r
        | Some b, Some u when priority rng u < priority rng b -> Some u
        | acc, _ -> acc)
      None replies
  in
  Runtime.tell_all rt (Msg.vertex_opt ~n winner);
  Option.map (fun u -> Graph.normalize_edge (v, u)) winner

(** Random walk of [steps] steps from [src], taking a uniform incident edge
    at each step (the pivotal sparse-model procedure).  Returns the visited
    vertices, starting with [src]; stops early at an isolated vertex. *)
let random_walk rt ~key src ~steps =
  let rec go v step acc =
    if step >= steps then List.rev acc
    else begin
      match random_incident_edge rt ~key:(key + (1000003 * (step + 1))) v with
      | None -> List.rev acc
      | Some (a, b) ->
          let next = if a = v then b else a in
          go next (step + 1) (next :: acc)
    end
  in
  go src 0 [ src ]

(** Uniformly random edge of the whole graph — possible here though not in
    the standard query model.  Shared random priority over all vertex pairs;
    each player sends its top edge.  O(k log n) bits. *)
let random_edge rt ~key =
  let rng = Runtime.shared_rng rt ~key in
  let n = Runtime.n rt in
  let edge_priority (u, v) = (Rng.hash_float2 rng u v, u, v) in
  let best_of input =
    Graph.fold_edges input ~init:None ~f:(fun acc u v ->
        match acc with
        | Some e when edge_priority e <= edge_priority (u, v) -> acc
        | _ -> Some (u, v))
  in
  let replies =
    Runtime.ask_all rt ~req:Msg.empty (fun _ input ->
        match best_of input with
        | None -> Msg.edges ~n []
        | Some e -> Msg.edges ~n [ e ])
  in
  let winner =
    Array.fold_left
      (fun acc reply ->
        match (acc, Msg.get_edges reply) with
        | None, [ e ] -> Some e
        | Some b, [ e ] when edge_priority e < edge_priority b -> Some e
        | acc, _ -> acc)
      None replies
  in
  (match winner with
  | None -> Runtime.tell_all rt (Msg.edges ~n [])
  | Some e -> Runtime.tell_all rt (Msg.edges ~n [ e ]));
  winner

(** All edges of the subgraph induced by [vs] — O(k·m'·log n) bits where m'
    is the subgraph's edge count (cheaper than the query model's |vs|²
    whenever the subgraph is sparse). *)
let induced_subgraph rt vs =
  let n = Runtime.n rt in
  let keep = Array.make n false in
  List.iter (fun v -> keep.(v) <- true) vs;
  let replies =
    Runtime.ask_all rt ~req:(Msg.vertices ~n vs) (fun _ input ->
        Msg.edges ~n
          (List.filter (fun (u, v) -> keep.(u) && keep.(v)) (Graph.edges input)))
  in
  Graph.of_edges ~n (List.concat_map Msg.get_edges (Array.to_list replies))

(** Truncated distributed BFS: explore from [src] until either the component
    is exhausted or more than [max_vertices] vertices have been discovered.
    Returns (discovered vertices, exhausted?) — [exhausted = true] means the
    discovered set is the whole component, a certificate of disconnection
    whenever it is smaller than the graph.  The workhorse of the
    connectivity tester. *)
let bfs_limited rt src ~max_vertices =
  let n = Runtime.n rt in
  let seen = Array.make n false in
  seen.(src) <- true;
  let count = ref 1 in
  let rec expand frontier =
    match frontier with
    | [] -> true
    | _ when !count > max_vertices -> false
    | _ ->
        Runtime.tell_all rt (Msg.vertices ~n frontier);
        let in_frontier = Array.make n false in
        List.iter (fun v -> in_frontier.(v) <- true) frontier;
        let replies =
          Runtime.ask_all rt ~req:Msg.empty (fun _ input ->
              Msg.edges ~n
                (List.filter
                   (fun (u, v) -> in_frontier.(u) || in_frontier.(v))
                   (Graph.edges input)))
        in
        let next = ref [] in
        List.iter
          (fun (u, v) ->
            let touch w =
              if not seen.(w) then begin
                seen.(w) <- true;
                incr count;
                next := w :: !next
              end
            in
            if in_frontier.(u) then touch v;
            if in_frontier.(v) then touch u)
          (List.concat_map Msg.get_edges (Array.to_list replies));
        expand !next
  in
  let exhausted = expand [ src ] in
  (List.filter (fun v -> seen.(v)) (List.init n (fun v -> v)), exhausted)

(** Distributed BFS from [src]: each layer, the coordinator posts the
    frontier and players reply with their incident edges.  Returns the
    distance array (-1 for unreachable) — O(n log n) bits per §3.1 when run
    on a blackboard. *)
let bfs rt src =
  let n = Runtime.n rt in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let rec expand frontier d =
    match frontier with
    | [] -> ()
    | _ ->
        Runtime.tell_all rt (Msg.vertices ~n frontier);
        let in_frontier = Array.make n false in
        List.iter (fun v -> in_frontier.(v) <- true) frontier;
        let replies =
          Runtime.ask_all rt ~req:Msg.empty (fun _ input ->
              Msg.edges ~n
                (List.filter
                   (fun (u, v) -> in_frontier.(u) || in_frontier.(v))
                   (Graph.edges input)))
        in
        let next = ref [] in
        List.iter
          (fun (u, v) ->
            let touch w =
              if dist.(w) < 0 then begin
                dist.(w) <- d + 1;
                next := w :: !next
              end
            in
            if in_frontier.(u) then touch v;
            if in_frontier.(v) then touch u)
          (List.concat_map Msg.get_edges (Array.to_list replies));
        expand !next (d + 1)
  in
  expand [ src ] 0;
  dist
