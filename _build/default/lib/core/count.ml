(** Approximate triangle-edge counting — the quantity behind the paper's
    hardness results for finding triangle edges (Theorem 4.1) and the
    streaming connection to triangle counting [27].

    Built from two §3.1 blocks: uniform random edges (duplication-unbiased)
    and neighbourhood collection.  [is_triangle_edge] decides Definition 3
    exactly for one edge at cost O(k·deg·log n): the coordinator collects
    and posts N(u) and each player checks its own {v,w} edges against it —
    the closing pair may be split across two players, which local checking
    alone cannot see.  [estimate_triangle_edge_fraction] samples random
    edges and returns the hit fraction; multiplied by an edge-count estimate
    it gives the triangle-edge count within (1+α)·additive-sampling error. *)

open Tfree_graph
open Tfree_comm

(** The full (deduplicated) neighbourhood of [u], collected at the
    coordinator and posted: O(k·deg(u)·log n) bits. *)
let collect_neighbors rt ~key:_ u =
  let n = Runtime.n rt in
  let replies =
    Runtime.ask_all_visible rt ~req:(Msg.vertex ~n u) (fun _ input visible ->
        let already = Hashtbl.create 16 in
        List.iter
          (fun prev -> List.iter (fun w -> Hashtbl.replace already w ()) (Msg.get_vertices prev))
          visible;
        Msg.vertices ~n
          (List.filter (fun w -> not (Hashtbl.mem already w)) (Array.to_list (Graph.neighbors input u))))
  in
  let tbl = Hashtbl.create 32 in
  Array.iter (fun r -> List.iter (fun w -> Hashtbl.replace tbl w ()) (Msg.get_vertices r)) replies;
  Hashtbl.fold (fun w () acc -> w :: acc) tbl []

(** Exact distributed test of Definition 3 for edge (u, v). *)
let is_triangle_edge rt ~key (u, v) =
  let n = Runtime.n rt in
  let nu = collect_neighbors rt ~key u in
  Runtime.tell_all rt (Msg.tuple [ Msg.vertex ~n u; Msg.vertex ~n v; Msg.vertices ~n nu ]);
  let mark = Array.make n false in
  List.iter (fun w -> if w <> v then mark.(w) <- true) nu;
  Runtime.any_player rt (fun input ->
      Array.exists (fun w -> w <> u && mark.(w)) (Graph.neighbors input v))

type estimate = {
  sampled : int;  (** edges actually sampled (0 on an empty graph) *)
  hits : int;  (** sampled edges that are triangle edges *)
  fraction : float;  (** hits / sampled *)
}

(** Sample [samples] uniform edges and test each; unbiased estimator of the
    triangle-edge fraction of the input. *)
let estimate_triangle_edge_fraction rt ~key ~samples =
  let rec loop i sampled hits =
    if i >= samples then (sampled, hits)
    else begin
      match Blocks.random_edge rt ~key:(key + (613 * (i + 1))) with
      | None -> (sampled, hits)
      | Some e ->
          let hit = is_triangle_edge rt ~key:(key + (617 * (i + 1))) e in
          loop (i + 1) (sampled + 1) (if hit then hits + 1 else hits)
    end
  in
  let sampled, hits = loop 0 0 0 in
  {
    sampled;
    hits;
    fraction = (if sampled = 0 then 0.0 else float_of_int hits /. float_of_int sampled);
  }

(** Triangle-edge count estimate: fraction × (2-approximate m). *)
let estimate_triangle_edges rt (p : Params.t) ~key ~samples =
  let est = estimate_triangle_edge_fraction rt ~key ~samples in
  let m_hat =
    Degree_approx.approx_edge_count rt ~key:(key + 7) ~alpha:2.0 ~tau:(p.Params.delta /. 4.0)
      ~boost:(Params.degree_approx_boost p)
  in
  est.fraction *. float_of_int m_hat
