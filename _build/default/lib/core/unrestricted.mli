(** The unrestricted-communication triangle-finding protocol of §3.3
    (Algorithms 1–6): O~(k·(nd)^{1/4} + k²) bits, degree-oblivious
    (Corollary 3.22), one-sided.

    The intermediate procedures are exposed for targeted tests; the
    entry point is {!find_triangle}. *)

open Tfree_comm
open Tfree_graph

type stats = { buckets_tried : int; candidates_tested : int; edges_posted : int }

val no_stats : stats

(** Per-player suspected-bucket membership B̃ʲᵢ for all buckets, precomputed
    once per run (purely local). *)
val btilde_members : Runtime.t -> int array array array

(** Algorithm 1: uniform sample from B̃ᵢ under a shared random priority,
    unbiased despite duplication.  [None] iff no player suspects bucket
    [i]. *)
val sample_uniform_from_btilde :
  ?btilde:int array array array -> Runtime.t -> key:int -> i:int -> int option

(** Algorithm 3: candidate full vertices for bucket [i] with their
    approximate degrees (filtered to [d⁻/√3, √3·d⁺]). *)
val get_full_candidates :
  ?btilde:int array array array -> Runtime.t -> Params.t -> key:int -> i:int -> (int * int) list

(** Algorithm 4: post a sampled star around the vertex; returns the sampled
    neighbours confirmed by some player (per-player caps applied; on a
    blackboard players post in turns without repetition, Theorem 3.23). *)
val sample_edges : Runtime.t -> Params.t -> key:int -> int -> d_hat:int -> int list

(** Ask every player for an edge closing a vee of the posted star; any
    returned triangle is verified-by-construction real. *)
val close_vee : Runtime.t -> v:int -> ws:int list -> Triangle.triangle option

(** Algorithm 5 for one bucket. *)
val find_triangle_vee :
  ?btilde:int array array array ->
  Runtime.t ->
  Params.t ->
  key:int ->
  i:int ->
  stats:stats ref ->
  Triangle.triangle option

(** Algorithm 6 with the degree-oblivious window: estimate d, iterate the
    buckets of [d_l/2, 2·d_h], return a real triangle or [None]. *)
val find_triangle :
  ?collect_stats:bool -> Runtime.t -> Params.t -> Triangle.triangle option * stats
