(** Extension (§5): simultaneous H-freeness testing for small patterns by
    the generalized Algorithm-7 sampler — vertex sample tuned so Θ(c^h)
    edge-disjoint H-copies survive into the induced subgraph, referee
    searches the union for an embedding and verifies it (one-sided). *)

open Tfree_comm
open Tfree_graph

(** Vertex-sample size for the pattern at average degree [d]. *)
val sample_size : Params.t -> n:int -> d:float -> Subgraph.pattern -> int

(** Per-player edge cap: (2/δ)·expected sampled-subgraph edges. *)
val edge_cap : Params.t -> n:int -> d:float -> s:int -> int

(** The protocol; the referee returns a verified embedding (pattern vertex →
    graph vertex) or [None]. *)
val protocol : Params.t -> d:float -> Subgraph.pattern -> int array option Simultaneous.protocol

val run :
  seed:int ->
  Params.t ->
  d:float ->
  Subgraph.pattern ->
  Partition.t ->
  int array option Simultaneous.outcome
