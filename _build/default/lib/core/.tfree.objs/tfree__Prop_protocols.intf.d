lib/core/prop_protocols.mli: Params Runtime Tfree_comm
