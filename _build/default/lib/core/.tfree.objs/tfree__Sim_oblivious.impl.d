lib/core/sim_oblivious.ml: Array Bits Float Graph Hashtbl List Msg Params Rng Sim_high Sim_low Simultaneous Tfree_comm Tfree_graph Tfree_util Triangle
