lib/core/sim_subgraph.mli: Params Partition Simultaneous Subgraph Tfree_comm Tfree_graph
