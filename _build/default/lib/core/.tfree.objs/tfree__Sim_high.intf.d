lib/core/sim_high.mli: Params Partition Simultaneous Tfree_comm Tfree_graph Triangle
