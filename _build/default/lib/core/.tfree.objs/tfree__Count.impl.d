lib/core/count.ml: Array Blocks Degree_approx Graph Hashtbl List Msg Params Runtime Tfree_comm Tfree_graph
