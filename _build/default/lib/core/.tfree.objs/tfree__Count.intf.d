lib/core/count.mli: Params Runtime Tfree_comm
