lib/core/unrestricted.ml: Array Bucket Degree_approx Float Graph Hashtbl List Msg Params Rng Runtime Tfree_comm Tfree_graph Tfree_util Triangle
