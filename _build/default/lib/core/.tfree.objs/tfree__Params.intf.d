lib/core/params.mli:
