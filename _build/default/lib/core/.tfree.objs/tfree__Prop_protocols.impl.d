lib/core/prop_protocols.ml: Blocks Degree_approx Float List Params Rng Runtime Sampling Tfree_comm Tfree_graph Tfree_util Traversal
