lib/core/degree_approx.mli: Graph Runtime Tfree_comm Tfree_graph
