lib/core/exact_baseline.ml: Array Graph List Msg Partition Simultaneous Tfree_comm Tfree_graph Triangle
