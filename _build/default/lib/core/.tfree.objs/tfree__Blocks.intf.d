lib/core/blocks.mli: Graph Runtime Tfree_comm Tfree_graph
