lib/core/degree_approx.ml: Array Float Graph List Msg Rng Runtime Tfree_comm Tfree_graph Tfree_util
