lib/core/exact_baseline.mli: Partition Simultaneous Tfree_comm Tfree_graph Triangle
