lib/core/sim_oblivious.mli: Graph Params Partition Simultaneous Tfree_comm Tfree_graph Triangle
