lib/core/unrestricted.mli: Params Runtime Tfree_comm Tfree_graph Triangle
