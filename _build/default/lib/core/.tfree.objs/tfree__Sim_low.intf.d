lib/core/sim_low.mli: Params Partition Simultaneous Tfree_comm Tfree_graph Triangle
