lib/core/tester.mli: Params Partition Runtime Tfree_comm Tfree_graph Triangle
