lib/core/tester.ml: Cost Exact_baseline Params Partition Runtime Sim_high Sim_low Sim_oblivious Simultaneous Tfree_comm Tfree_graph Triangle Unrestricted
