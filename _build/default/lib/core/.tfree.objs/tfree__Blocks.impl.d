lib/core/blocks.ml: Array Graph List Msg Option Rng Runtime Tfree_comm Tfree_graph Tfree_util
