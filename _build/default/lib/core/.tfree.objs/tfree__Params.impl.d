lib/core/params.ml: Float Tfree_util
