lib/core/sim_high.ml: Array Float Graph List Msg Params Rng Simultaneous Tfree_comm Tfree_graph Tfree_util Triangle
