lib/core/sim_subgraph.ml: Array Float Graph List Msg Params Rng Simultaneous Subgraph Tfree_comm Tfree_graph Tfree_util
