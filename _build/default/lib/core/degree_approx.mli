(** Constant-factor approximate counting of the distinct elements held
    jointly by the players — Theorem 3.1 (duplication-tolerant: MSB phase +
    geometric guesses with shared-randomness Bernoulli experiments) and
    Lemma 3.2 (duplication-free: truncated exact counts).  Instantiated for
    vertex degrees and for the total edge count.

    Threshold note: the paper's constant-picking passage has typos; we use
    the statistically equivalent midpoint threshold documented in the
    implementation header and DESIGN.md §2. *)

open Tfree_comm
open Tfree_graph

(** Index of the most significant set bit; -1 for nonpositive input. *)
val msb_index : int -> int

(** The stop threshold θ and separation margin for approximation factor
    [alpha] (both in (0,1)). *)
val thresholds : alpha:float -> float * float

(** α-approximation (probability >= 1-τ) of |∪ⱼ elements(Eⱼ)|; [elements]
    lists a player's universe elements as integers agreed by all players.
    [boost] scales the per-guess experiment count.  0 when nobody holds
    anything. *)
val approx_distinct :
  Runtime.t ->
  key:int ->
  alpha:float ->
  tau:float ->
  boost:float ->
  elements:(Graph.t -> int list) ->
  int

(** Lemma 3.2: without duplication, the truncated-count sum — never
    over-counts, within factor [alpha], O(k·log log) bits, deterministic.
    @raise Invalid_argument when [alpha <= 1]. *)
val approx_distinct_nodup : Runtime.t -> key:int -> alpha:float -> elements:(Graph.t -> int list) -> int

(** α-approximate deg(v) under duplication. *)
val approx_degree : Runtime.t -> key:int -> alpha:float -> tau:float -> boost:float -> int -> int

(** α-approximate total edge count m (Corollary 3.22's degree estimate). *)
val approx_edge_count : Runtime.t -> key:int -> alpha:float -> tau:float -> boost:float -> int
