(** Protocol parameters.

    Every protocol in the paper is governed by the farness parameter ǫ, the
    error bound δ, and worst-case constants inside the sampling formulas.
    Two profiles are provided:

    - [Paper]: the formulas verbatim, e.g. q = ln(6/δ)·108·log²n·k/ǫ²
      candidate samples per bucket (Algorithm 3).  Correct on adversarial
      inputs but astronomically conservative (millions of samples at n=10³,
      ǫ=0.1) — usable only for tiny n or as documentation.
    - [Practical]: the same asymptotic terms with the worst-case 1/ǫ² and
      squared-log safety factors reduced (documented per formula below).
      This preserves every n-, d- and k-dependent term — which is what the
      scaling experiments measure — and suffices w.h.p. on the benign planted
      and random instances the experiments use; the δ-failures that remain
      are handled by amplification (repetition), as in the paper.

    EXPERIMENTS.md records the profile of every experiment. *)

type profile = Paper | Practical

type t = {
  eps : float;  (** farness parameter ǫ *)
  delta : float;  (** error probability bound δ *)
  profile : profile;
  boost : float;  (** extra multiplier on sample counts and caps (default 1) *)
}

let paper = { eps = 0.1; delta = 1.0 /. 3.0; profile = Paper; boost = 1.0 }

let practical = { eps = 0.1; delta = 1.0 /. 3.0; profile = Practical; boost = 1.0 }

let with_eps t eps = { t with eps }
let with_delta t delta = { t with delta }
let with_boost t boost = { t with boost }

(** log2 n, floored at 1 — the polylog unit in the cost formulas. *)
let log_n ~n = Float.max 1.0 (Tfree_util.Bits.log2 (float_of_int (max 2 n)))

let ln_n ~n = Float.max 1.0 (Float.log (float_of_int (max 2 n)))

let ln6d t = Float.log (6.0 /. t.delta)

let ceil_pos x = max 1 (int_of_float (Float.ceil x))

(** Candidate samples per bucket (Algorithm 3's q).
    Paper: ln(6/δ)·108·log²n·k/ǫ².  Practical: 6·k·ln n. *)
let bucket_samples t ~k ~n =
  let logn = log_n ~n in
  match t.profile with
  | Paper ->
      ceil_pos (t.boost *. ln6d t *. 108.0 *. logn *. logn *. float_of_int k /. (t.eps *. t.eps))
  | Practical -> ceil_pos (t.boost *. 6.0 *. float_of_int k *. ln_n ~n)

(** Cap on retained candidates per bucket (Algorithm 3's |C| bound).
    Paper: ln(6/δ)·312·log²n/ǫ².  Practical: 5·ln n. *)
let candidate_cap t ~n =
  let logn = log_n ~n in
  match t.profile with
  | Paper -> ceil_pos (t.boost *. ln6d t *. 312.0 *. logn *. logn /. (t.eps *. t.eps))
  | Practical -> ceil_pos (t.boost *. 5.0 *. ln_n ~n)

(** Edge-sampling probability around a candidate of (approx) degree d
    (Algorithm 4).  Paper: 4·sqrt(ln(6/δ))·sqrt(12·log n/(ǫ·d)).
    Practical: 2·sqrt(ln n/(ǫ·d)) — same Θ(sqrt(log n/ǫd)). *)
let edge_sample_prob t ~n ~d =
  let d = Float.max 1.0 d in
  match t.profile with
  | Paper ->
      Float.min 1.0
        (t.boost *. 4.0 *. sqrt (ln6d t) *. sqrt (12.0 *. log_n ~n /. (t.eps *. d)))
  | Practical -> Float.min 1.0 (t.boost *. 2.0 *. sqrt (ln_n ~n /. (t.eps *. d)))

(** Sample-count multiplier for degree-approximation experiments. *)
let degree_approx_boost t = match t.profile with Paper -> t.boost | Practical -> 0.2 *. t.boost

(** Multiplier c in the simultaneous protocols' sample sizes.  Theorem 3.26
    picks c = 8/(9δ) treating ǫ as a constant; the Chebyshev argument behind
    it needs the expected sampled-triangle count ǫ·c³/6 to stay large, so we
    scale the constant by 1/ǫ (conservative: 1/ǫ^{1/3} would suffice for the
    expectation alone, but the variance term also grows).  At the default
    ǫ = 0.1 this is exactly the paper's 8/(9δ). *)
let sim_c t = Float.max 2.0 (t.boost *. 0.8 /. (9.0 *. t.delta *. t.eps))
