(** Approximate triangle-edge counting from the §3.1 blocks: uniform edge
    sampling plus an exact distributed test of Definition 3 (the closing
    pair may be split across players, so the coordinator collects and posts
    one endpoint's neighbourhood). *)

open Tfree_comm

(** The deduplicated neighbourhood of the vertex, collected at the
    coordinator; O(k·deg·log n) bits. *)
val collect_neighbors : Runtime.t -> key:int -> int -> int list

(** Exact distributed test: is (u, v) a triangle edge of the union graph? *)
val is_triangle_edge : Runtime.t -> key:int -> int * int -> bool

type estimate = {
  sampled : int;  (** edges actually sampled (0 on an empty graph) *)
  hits : int;  (** sampled edges that are triangle edges *)
  fraction : float;  (** hits / sampled *)
}

(** Unbiased estimator of the triangle-edge fraction by uniform edge
    sampling. *)
val estimate_triangle_edge_fraction : Runtime.t -> key:int -> samples:int -> estimate

(** Triangle-edge count estimate: fraction × 2-approximate m. *)
val estimate_triangle_edges : Runtime.t -> Params.t -> key:int -> samples:int -> float
