(** Bit-size arithmetic for the communication cost model.

    The paper charges O(log n) bits per vertex or edge identifier; this module
    fixes the exact accounting used everywhere: a value ranging over [c]
    possibilities costs [ceil (log2 c)] bits (minimum 1). *)

(** Smallest [b] with [2^b >= c]; at least 1. *)
let for_card c =
  if c <= 1 then 1
  else begin
    let rec loop b pow = if pow >= c then b else loop (b + 1) (2 * pow) in
    loop 1 2
  end

(** Bits to name a vertex of an n-vertex graph. *)
let vertex ~n = for_card (max n 2)

(** Bits to name an (unordered) edge: two vertex identifiers. *)
let edge ~n = 2 * vertex ~n

(** Bits for an integer known to lie in [lo, hi]. *)
let int_in_range ~lo ~hi =
  if hi < lo then invalid_arg "Bits.int_in_range: hi < lo";
  for_card (hi - lo + 1)

(** Bits for a nonnegative integer sent with a self-delimiting (Elias-gamma
    style) code: 2*floor(log2 (v+1)) + 1. *)
let elias_gamma v =
  if v < 0 then invalid_arg "Bits.elias_gamma: negative";
  let rec log2floor acc x = if x <= 1 then acc else log2floor (acc + 1) (x lsr 1) in
  2 * log2floor 0 (v + 1) + 1

(** ceil (log2 x) for floats, used in cost formulas. *)
let log2 x = Float.log x /. Float.log 2.0
