(** Sampling primitives shared by the protocols and the generators. *)

(** Sorted indices in [0, n), each selected independently with probability
    [p]; runs in time proportional to the output via geometric skips. *)
val bernoulli_subset : Rng.t -> int -> p:float -> int list

(** [m] distinct uniform indices from [0, n), sorted (Floyd's algorithm).
    @raise Invalid_argument if [m > n]. *)
val without_replacement : Rng.t -> int -> int -> int list

(** Fisher–Yates shuffle, in place. *)
val shuffle_in_place : Rng.t -> 'a array -> unit

(** Shuffled copy of a list. *)
val shuffle : Rng.t -> 'a list -> 'a list

(** Uniform element.  @raise Invalid_argument on the empty list. *)
val choose : Rng.t -> 'a list -> 'a

(** Uniform sample of [m] items from a sequence of unknown length (keeps
    everything when the sequence is shorter than [m]). *)
val reservoir : Rng.t -> int -> 'a Seq.t -> 'a list

(** Number of successes in [n] iid Bernoulli(p) trials (exact summation). *)
val binomial : Rng.t -> n:int -> p:float -> int
