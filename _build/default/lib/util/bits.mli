(** Bit-size arithmetic for the communication cost model: a value ranging
    over [c] possibilities costs ceil(log2 c) bits (minimum 1). *)

(** Smallest [b] with [2^b >= c]; at least 1. *)
val for_card : int -> int

(** Bits to name a vertex of an n-vertex graph: ceil(log2 n). *)
val vertex : n:int -> int

(** Bits to name an unordered edge: two vertex identifiers. *)
val edge : n:int -> int

(** Bits for an integer known by both sides to lie in [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)
val int_in_range : lo:int -> hi:int -> int

(** Self-delimiting (Elias-gamma style) code length for a nonnegative
    integer: 2·floor(log2 (v+1)) + 1.
    @raise Invalid_argument on negatives. *)
val elias_gamma : int -> int

(** log base 2, for floats (cost formulas). *)
val log2 : float -> float
