(** Sampling primitives shared by the protocols and the generators. *)

(** [bernoulli_subset rng n ~p] returns the sorted list of indices in
    [0, n) each selected independently with probability [p], using geometric
    skips so the cost is proportional to the output, not to [n]. *)
let bernoulli_subset rng n ~p =
  if p <= 0.0 then []
  else if p >= 1.0 then List.init n (fun i -> i)
  else begin
    let rec loop i acc =
      let i = i + Rng.geometric rng ~p in
      if i >= n then List.rev acc else loop (i + 1) (i :: acc)
    in
    loop 0 []
  end

(** [without_replacement rng n m] samples [m] distinct indices from [0, n),
    returned sorted.  Uses Floyd's algorithm: O(m) expected time and space. *)
let without_replacement rng n m =
  if m > n then invalid_arg "Sampling.without_replacement: m > n";
  let seen = Hashtbl.create (2 * m) in
  let rec pick j acc =
    if j >= n then acc
    else begin
      let t = Rng.int rng (j + 1) in
      let chosen = if Hashtbl.mem seen t then j else t in
      Hashtbl.replace seen chosen ();
      pick (j + 1) (chosen :: acc)
    end
  in
  let picks = pick (n - m) [] in
  List.sort compare picks

let shuffle_in_place rng a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle rng l =
  let a = Array.of_list l in
  shuffle_in_place rng a;
  Array.to_list a

(** Uniform element of a non-empty list. *)
let choose rng l =
  match l with
  | [] -> invalid_arg "Sampling.choose: empty list"
  | _ -> List.nth l (Rng.int rng (List.length l))

(** Reservoir sampling of [m] items from a sequence of unknown length. *)
let reservoir rng m seq =
  let buf = Array.make m None in
  let count = ref 0 in
  Seq.iter
    (fun x ->
      let i = !count in
      incr count;
      if i < m then buf.(i) <- Some x
      else begin
        let j = Rng.int rng (i + 1) in
        if j < m then buf.(j) <- Some x
      end)
    seq;
  let taken = min m !count in
  List.init taken (fun i ->
      match buf.(i) with Some x -> x | None -> assert false)

(** [binomial rng ~n ~p] — number of successes in [n] iid trials.  Exact
    summation for small [n]; normal approximation would bias the tail
    statistics the experiments rely on, so we pay the linear cost. *)
let binomial rng ~n ~p =
  let rec loop i acc = if i >= n then acc else loop (i + 1) (acc + if Rng.bool rng ~p then 1 else 0) in
  loop 0 0
