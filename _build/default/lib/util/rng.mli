(** Splittable pseudo-random number generator (SplitMix64).

    The protocols' {e shared randomness} (§2): parties holding the same root
    seed derive identical streams for identical key paths, so agreeing on
    samples, priorities or Bernoulli marks costs no communication.  The
    stateless keyed hashes implement shared random functions over large
    index spaces without materializing them. *)

type t

(** Fresh generator from an integer seed. *)
val create : int -> t

(** Independent copy: advancing one does not affect the other. *)
val copy : t -> t

(** Next raw 64-bit output; advances the stream. *)
val next_int64 : t -> int64

(** [split t key] derives an independent child stream from [t]'s current
    state and [key] without advancing [t]: same state + same key = same
    child, for all parties. *)
val split : t -> int -> t

(** Stateless keyed hash in [0, 1): a pure function of (stream state, key).
    Used for shared random priorities and Bernoulli marks. *)
val hash_float : t -> int -> float

(** Stateless keyed hash of a pair of keys, in [0, 1); order-sensitive. *)
val hash_float2 : t -> int -> int -> float

(** [hash_bool t key ~p]: shared Bernoulli(p) mark for [key]. *)
val hash_bool : t -> int -> p:float -> bool

(** Uniform integer in [0, bound); advances the stream.
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1); advances the stream. *)
val float : t -> float

(** Bernoulli(p); advances the stream. *)
val bool : t -> p:float -> bool

(** Number of failures before the first success of a Bernoulli(p) sequence;
    O(1) regardless of the outcome (inverse-CDF).  Used for subset sampling
    by skipping. *)
val geometric : t -> p:float -> int
