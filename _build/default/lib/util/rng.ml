(** Splittable pseudo-random number generator.

    The paper's protocols rely on {e shared randomness}: all players and the
    coordinator interpret the same public random bits, e.g. to agree on a
    random priority order over vertices (Algorithm 1) or on a sampled vertex
    set (Algorithms 7--10) without communicating.  We realize this with a
    SplitMix64 generator: a stream is identified by a 64-bit state, and
    [split] derives a statistically independent child stream from a parent
    stream and an integer key.  Two parties holding the same root seed derive
    identical streams for identical key paths, which is exactly the shared-
    randomness abstraction.

    In addition to stateful streams we expose {e stateless keyed hashing}
    ([hash_float], [hash_bool], ...): a pure function of (stream, key) used to
    implement shared random priorities and shared Bernoulli marks over huge
    index spaces without materializing them. *)

type t = { mutable state : int64; salt : int64 }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: a strong 64-bit mixing permutation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed); salt = mix64 (Int64.add (Int64.of_int seed) golden) }

let copy t = { state = t.state; salt = t.salt }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix64 (Int64.logxor t.state t.salt)

(** [split t key] derives an independent child stream.  The child depends
    only on the {e current} state of [t] and [key]; it does not advance [t],
    so parties that agree on [t]'s state and the key derive the same child. *)
let split t key =
  let k = mix64 (Int64.logxor t.salt (Int64.of_int key)) in
  { state = mix64 (Int64.logxor t.state k); salt = mix64 (Int64.add k golden) }

(** Stateless keyed hash in [0, 1). *)
let hash_float t key =
  let h = mix64 (Int64.logxor (Int64.add t.state (Int64.of_int key)) t.salt) in
  let mantissa = Int64.to_float (Int64.shift_right_logical h 11) in
  mantissa /. 9007199254740992.0 (* 2^53 *)

(** Stateless keyed hash over a pair of keys, in [0, 1). *)
let hash_float2 t key1 key2 =
  let h1 = mix64 (Int64.logxor (Int64.add t.state (Int64.of_int key1)) t.salt) in
  let h = mix64 (Int64.add h1 (Int64.of_int key2)) in
  let mantissa = Int64.to_float (Int64.shift_right_logical h 11) in
  mantissa /. 9007199254740992.0

let hash_bool t key ~p = hash_float t key < p

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let float t =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  mantissa /. 9007199254740992.0

let bool t ~p = float t < p

(** Geometric number of failures before first success with parameter [p];
    used for fast Bernoulli-subset sampling by skipping. *)
let geometric t ~p =
  if p >= 1.0 then 0
  else if p <= 0.0 then max_int
  else begin
    let u = float t in
    let u = if u <= 0.0 then 1e-300 else u in
    let g = Float.to_int (Float.floor (Float.log u /. Float.log1p (-.p))) in
    if g < 0 then 0 else g
  end
