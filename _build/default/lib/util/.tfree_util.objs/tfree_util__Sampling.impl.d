lib/util/sampling.ml: Array Hashtbl List Rng Seq
