lib/util/bits.mli:
