lib/util/stats.mli:
