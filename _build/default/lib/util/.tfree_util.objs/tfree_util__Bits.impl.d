lib/util/bits.ml: Float
