lib/util/table.mli:
