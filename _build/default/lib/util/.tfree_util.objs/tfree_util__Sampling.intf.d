lib/util/sampling.mli: Rng Seq
