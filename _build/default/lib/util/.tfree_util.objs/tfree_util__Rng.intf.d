lib/util/rng.mli:
