(** Plain-text table rendering for the experiment harness.  Every experiment
    prints one of these; EXPERIMENTS.md quotes them. *)

type t = { title : string; header : string list; rows : string list list }

let make ~title ~header rows = { title; header; rows }

let widths t =
  let ncols = List.length t.header in
  let w = Array.make ncols 0 in
  let feed row = List.iteri (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell)) row in
  feed t.header;
  List.iter feed t.rows;
  w

let render t =
  let w = widths t in
  let pad i cell = cell ^ String.make (w.(i) - String.length cell) ' ' in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep = "|" ^ String.concat "|" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w)) ^ "|" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) t.rows;
  Buffer.contents buf

let print t = print_string (render t)

let fcell ?(prec = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" prec x

let icell = string_of_int
