(** Plain-text (markdown-style) table rendering for the experiment harness. *)

type t = { title : string; header : string list; rows : string list list }

val make : title:string -> header:string list -> string list list -> t

(** Rendered with aligned columns, a title line, and a separator row. *)
val render : t -> string

val print : t -> unit

(** Fixed-precision float cell (default 2 decimals); "-" for NaN. *)
val fcell : ?prec:int -> float -> string

val icell : int -> string
