(** The CONGEST triangle-freeness tester in the style of Censor-Hillel et
    al. [10]: every round each vertex probes a random neighbour pair (u, w)
    by sending u's id to w, who checks {u, w} locally — any hit is a real
    triangle (one-sided).  Θ(1/ǫ²) rounds, O(log n)-bit messages. *)

open Tfree_graph

type state = { found : Triangle.triangle option }

val algorithm : state Simulator.algorithm

type result = {
  triangle : Triangle.triangle option;
  rounds : int;
  stats : Simulator.stats;
}

(** Run for ceil(c/ǫ²) rounds (c defaults to 2) with log n-bit bandwidth. *)
val test : ?c:float -> Graph.t -> eps:float -> seed:int -> result

(** Smallest (geometrically scanned) round count at which a triangle is
    detected, up to [max_rounds]. *)
val rounds_to_detect : Graph.t -> seed:int -> max_rounds:int -> int option
