lib/congest/triangle_tester.mli: Graph Simulator Tfree_graph Triangle
