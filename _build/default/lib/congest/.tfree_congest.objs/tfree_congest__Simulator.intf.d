lib/congest/simulator.mli: Graph Tfree_comm Tfree_graph Tfree_util
