lib/congest/simulator.ml: Array Graph List Rng Tfree_comm Tfree_graph Tfree_util
