lib/congest/triangle_tester.ml: Array Float Graph List Rng Simulator Tfree_comm Tfree_graph Tfree_util Triangle
