(** Synchronous CONGEST simulator — the distributed model the paper's first
    motivation comes from ([10, 19]: property testing in CONGEST, whose lower
    bounds are expected to require communication-complexity advances like
    this paper's).

    n nodes, one per graph vertex; computation proceeds in synchronous
    rounds; in each round a node may send one message of at most [b_bits]
    bits along each incident edge (the bandwidth cap is enforced — oversized
    messages raise).  Nodes know n, their own id, their incident edges, and
    a private random stream. *)

open Tfree_util
open Tfree_graph

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int }

type 'st algorithm = {
  init : n:int -> int -> int array -> 'st;
      (** [init ~n v neighbors]: starting state of node [v]. *)
  round :
    n:int ->
    round:int ->
    int ->
    'st ->
    rng:Rng.t ->
    inbox:(int * Tfree_comm.Msg.t) list ->
    neighbors:int array ->
    'st * (int * Tfree_comm.Msg.t) list;
      (** One synchronous round at node [v]: consume the inbox (sender,
          message) and emit an outbox (neighbour, message).  Sending to a
          non-neighbour raises. *)
}

type stats = {
  rounds_run : int;
  total_message_bits : int;
  max_message_bits : int;
  messages : int;
}

(** [run g ~b_bits ~rounds ~seed alg] executes [rounds] synchronous rounds
    and returns the final node states and traffic statistics.
    @raise Bandwidth_exceeded when a message exceeds [b_bits]
    @raise Invalid_argument on sends to non-neighbours. *)
let run g ~b_bits ~rounds ~seed alg =
  let n = Graph.n g in
  let root = Rng.create seed in
  let rngs = Array.init n (fun v -> Rng.split root (v + 1)) in
  let states = Array.init n (fun v -> alg.init ~n v (Graph.neighbors g v)) in
  let inboxes : (int * Tfree_comm.Msg.t) list array = Array.make n [] in
  let total = ref 0 and max_bits = ref 0 and messages = ref 0 in
  for r = 0 to rounds - 1 do
    let outgoing = Array.make n [] in
    for v = 0 to n - 1 do
      let st, outbox =
        alg.round ~n ~round:r v states.(v) ~rng:rngs.(v) ~inbox:inboxes.(v)
          ~neighbors:(Graph.neighbors g v)
      in
      states.(v) <- st;
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge g v dst) then
            invalid_arg "Congest.run: send to non-neighbour";
          let bits = Tfree_comm.Msg.bits msg in
          if bits > b_bits then raise (Bandwidth_exceeded { round = r; src = v; dst; bits });
          total := !total + bits;
          max_bits := max !max_bits bits;
          incr messages;
          outgoing.(dst) <- (v, msg) :: outgoing.(dst))
        outbox
    done;
    Array.blit outgoing 0 inboxes 0 n
  done;
  ( states,
    { rounds_run = rounds; total_message_bits = !total; max_message_bits = !max_bits; messages = !messages } )
