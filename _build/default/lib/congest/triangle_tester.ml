(** The CONGEST triangle-freeness tester in the style of Censor-Hillel et
    al. [10]: O(1/ǫ²) rounds, O(log n)-bit messages.

    Each round, every vertex v with degree ≥ 2 picks a uniformly random pair
    of its neighbours (u, w) and sends u's identifier to w.  A vertex w
    receiving "u" from v knows {v, w} (its own edge) and {v, u} (v vouches
    for an edge it holds), and checks {u, w} locally — a hit is a real
    triangle (one-sided).  On a graph ǫ-far from triangle-free, a constant
    fraction of the ǫ·m disjoint triangle-vees is hit per round in
    expectation, so Θ(1/ǫ²) rounds detect w.h.p. *)

open Tfree_util
open Tfree_graph

type state = { found : Triangle.triangle option }

let algorithm : state Simulator.algorithm =
  {
    init = (fun ~n:_ _v _nbrs -> { found = None });
    round =
      (fun ~n ~round:_ v st ~rng ~inbox ~neighbors ->
        (* Check incoming probes first: (sender, claimed neighbour of sender). *)
        let found =
          List.fold_left
            (fun acc (sender, msg) ->
              match acc with
              | Some _ -> acc
              | None -> begin
                  match Tfree_comm.Msg.get_vertex_opt msg with
                  | Some u when u <> v && Array.exists (( = ) u) neighbors ->
                      Some (Triangle.normalize (sender, u, v))
                  | _ -> None
                end)
            st.found inbox
        in
        (* Emit this round's probe: a random neighbour pair (u, w). *)
        let deg = Array.length neighbors in
        let outbox =
          if deg < 2 then []
          else begin
            let i = Rng.int rng deg in
            let j = (i + 1 + Rng.int rng (deg - 1)) mod deg in
            [ (neighbors.(j), Tfree_comm.Msg.vertex_opt ~n (Some neighbors.(i))) ]
          end
        in
        ({ found }, outbox))
  }

type result = {
  triangle : Triangle.triangle option;
  rounds : int;
  stats : Simulator.stats;
}

(** Run the tester for ceil(c/ǫ²) rounds (c defaults to 2) with log n-bit
    bandwidth; returns the first triangle recorded at any node. *)
let test ?(c = 2.0) g ~eps ~seed =
  let n = Graph.n g in
  let rounds = max 1 (int_of_float (Float.ceil (c /. (eps *. eps)))) in
  let b_bits = 1 + Tfree_util.Bits.vertex ~n in
  let states, stats = Simulator.run g ~b_bits ~rounds ~seed algorithm in
  let triangle =
    Array.fold_left
      (fun acc st -> match acc with Some _ -> acc | None -> st.found)
      None states
  in
  { triangle; rounds; stats }

(** Rounds until first detection (scanning round counts geometrically up to
    [max_rounds]); [None] if never detected — the statistic E19 plots
    against ǫ. *)
let rounds_to_detect g ~seed ~max_rounds =
  let rec scan rounds =
    if rounds > max_rounds then None
    else begin
      let n = Graph.n g in
      let b_bits = 1 + Tfree_util.Bits.vertex ~n in
      let states, _ = Simulator.run g ~b_bits ~rounds ~seed algorithm in
      let hit = Array.exists (fun st -> st.found <> None) states in
      if hit then Some rounds else scan (rounds * 2)
    end
  in
  scan 1
