(** Synchronous CONGEST simulator ([10, 19]'s model): one node per vertex,
    synchronous rounds, at most [b_bits] bits per incident edge per round —
    the bandwidth cap is enforced at runtime. *)

open Tfree_graph

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int }

type 'st algorithm = {
  init : n:int -> int -> int array -> 'st;
      (** [init ~n v neighbors]: starting state of node [v]. *)
  round :
    n:int ->
    round:int ->
    int ->
    'st ->
    rng:Tfree_util.Rng.t ->
    inbox:(int * Tfree_comm.Msg.t) list ->
    neighbors:int array ->
    'st * (int * Tfree_comm.Msg.t) list;
      (** One synchronous round at node [v]: consume the inbox
          (sender, message), emit an outbox (neighbour, message). *)
}

type stats = {
  rounds_run : int;
  total_message_bits : int;
  max_message_bits : int;
  messages : int;
}

(** Execute the algorithm; returns final node states and traffic statistics.
    @raise Bandwidth_exceeded when a message exceeds [b_bits]
    @raise Invalid_argument on sends to non-neighbours. *)
val run :
  Graph.t -> b_bits:int -> rounds:int -> seed:int -> 'st algorithm -> 'st array * stats
