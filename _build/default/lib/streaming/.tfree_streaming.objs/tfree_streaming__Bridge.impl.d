lib/streaming/bridge.ml: Graph List Partition Stream_alg Tfree_graph
