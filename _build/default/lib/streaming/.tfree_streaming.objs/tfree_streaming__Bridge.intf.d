lib/streaming/bridge.mli: Partition Stream_alg Tfree_graph
