lib/streaming/stream_alg.ml: Array Graph List Partition Sampling Seq Tfree_graph Tfree_util
