lib/streaming/detector.mli: Stream_alg Tfree_graph Triangle
