lib/streaming/stream_alg.mli: Graph Partition Seq Tfree_graph Tfree_util
