lib/streaming/detector.ml: Bits Float Graph Rng Stream_alg Tfree_graph Tfree_util Triangle
