(** Single-pass edge-stream algorithms with exact space accounting (§4.2.2):
    the space complexity is the state-size high-water mark over the run,
    which is what the one-way bridge ships as messages. *)

open Tfree_graph

type ('state, 'r) t = {
  init : n:int -> 'state;
  step : 'state -> int * int -> 'state;
  finish : 'state -> 'r;
  size_bits : 'state -> int;
}

type 'r outcome = { result : 'r; space_bits : int; edges_seen : int }

(** Run over a stream, tracking the space high-water mark. *)
val run : ('s, 'r) t -> n:int -> (int * int) Seq.t -> 'r outcome

(** The graph's edges in a shuffled order. *)
val stream_of_graph : Tfree_util.Rng.t -> Graph.t -> (int * int) Seq.t

(** Concatenated per-player segments — the order the one-way bridge uses. *)
val stream_of_partition : Partition.t -> (int * int) Seq.t
