(** Sampling-based streaming triangle(-edge) detector.

    Keeps the edges induced by a shared pseudorandom vertex sample (the
    streaming twin of Algorithm 7): state is the retained edge list, space is
    its encoded size, and the finish step looks for a triangle.  With sample
    probability ~(1/(ǫd))^{1/3}·n^{-1/3} the space matches the protocol's
    O~((nd)^{1/3}) message size, and the detector finds a triangle on ǫ-far
    inputs with constant probability. *)

open Tfree_util
open Tfree_graph

type state = { n : int; keep : int -> bool; edges : (int * int) list; count : int }

let make ~seed ~p : (state, Triangle.triangle option) Stream_alg.t =
  {
    init =
      (fun ~n ->
        let rng = Rng.split (Rng.create seed) 5 in
        { n; keep = (fun v -> Rng.hash_float rng v < p); edges = []; count = 0 });
    step =
      (fun st (u, v) ->
        if st.keep u && st.keep v then { st with edges = (u, v) :: st.edges; count = st.count + 1 }
        else st);
    finish = (fun st -> Triangle.find (Graph.of_edges ~n:st.n st.edges));
    size_bits = (fun st -> Bits.elias_gamma st.count + (st.count * Bits.edge ~n:st.n));
  }

(** Sample probability tuned to the Algorithm-7 rate for (n, d, ǫ). *)
let tuned_p ~n ~d ~eps ~c =
  Float.min 1.0
    (c *. Float.pow (float_of_int n *. float_of_int n /. (eps *. Float.max 1.0 d)) (1.0 /. 3.0)
    /. float_of_int n)
