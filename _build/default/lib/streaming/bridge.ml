(** The generic streaming ⇄ one-way reduction of §4.2.2 ([4]).

    Direction used by the paper's lower bound: a streaming algorithm with
    space S yields a 3-player one-way protocol with messages of at most S
    bits — Alice runs the algorithm on her segment and ships the state, Bob
    continues and ships the state, Charlie finishes.  Hence a one-way
    communication lower bound is a streaming space lower bound.

    [oneway_of_streaming] performs that construction executably and reports
    both the protocol's message sizes and the algorithm's space high-water
    mark, which the tests assert equal. *)

open Tfree_graph

type 'r run = {
  result : 'r;
  message_bits : int * int;  (** Alice's and Bob's state shipments *)
  space_bits : int;  (** the streaming high-water mark over the same run *)
}

let oneway_of_streaming (alg : ('s, 'r) Stream_alg.t) ~(inputs : Partition.t) =
  if Partition.k inputs <> 3 then invalid_arg "Bridge.oneway_of_streaming: needs 3 players";
  let n = Partition.n inputs in
  let watermark = ref 0 in
  let observe st =
    watermark := max !watermark (alg.Stream_alg.size_bits st);
    st
  in
  let segment st g =
    List.fold_left (fun st e -> observe (alg.Stream_alg.step st e)) st (Graph.edges g)
  in
  let st0 = observe (alg.Stream_alg.init ~n) in
  (* Alice's segment; her message is the serialized state. *)
  let st1 = observe (segment st0 (Partition.player inputs 0)) in
  let alice_bits = alg.Stream_alg.size_bits st1 in
  (* Bob's segment. *)
  let st2 = observe (segment st1 (Partition.player inputs 1)) in
  let bob_bits = alg.Stream_alg.size_bits st2 in
  (* Charlie finishes. *)
  let st3 = observe (segment st2 (Partition.player inputs 2)) in
  {
    result = alg.Stream_alg.finish st3;
    message_bits = (alice_bits, bob_bits);
    space_bits = !watermark;
  }
