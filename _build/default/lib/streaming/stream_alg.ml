(** Single-pass edge-stream algorithms with space accounting (§4.2.2).

    The data-stream model reads the edges once, in order; the space
    complexity is the maximum state size at any point.  An algorithm is a
    record of [init]/[step]/[finish] plus [size_bits], so the runner can track
    the high-water mark exactly — that high-water mark is what the one-way
    bridge exchanges as messages. *)

open Tfree_util
open Tfree_graph

type ('state, 'r) t = {
  init : n:int -> 'state;
  step : 'state -> int * int -> 'state;
  finish : 'state -> 'r;
  size_bits : 'state -> int;
}

type 'r outcome = { result : 'r; space_bits : int; edges_seen : int }

let run alg ~n stream =
  let state = ref (alg.init ~n) in
  let space = ref (alg.size_bits !state) in
  let count = ref 0 in
  Seq.iter
    (fun e ->
      state := alg.step !state e;
      incr count;
      space := max !space (alg.size_bits !state))
    stream;
  { result = alg.finish !state; space_bits = !space; edges_seen = !count }

(** Edge stream of a graph in a shuffled order (adversarial orders can be fed
    directly as lists). *)
let stream_of_graph rng g =
  let edges = Array.of_list (Graph.edges g) in
  Sampling.shuffle_in_place rng edges;
  Array.to_seq edges

(** Concatenated per-player streams: the order used by the one-way bridge
    (Alice's segment, then Bob's, then Charlie's). *)
let stream_of_partition (parts : Partition.t) =
  Array.to_seq parts |> Seq.concat_map (fun g -> List.to_seq (Graph.edges g))
