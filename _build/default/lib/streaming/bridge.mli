(** The generic streaming → one-way reduction of §4.2.2: a space-S streaming
    algorithm yields a 3-player one-way protocol whose messages are state
    snapshots of at most S bits — hence one-way communication lower bounds
    are streaming space lower bounds. *)

open Tfree_graph

type 'r run = {
  result : 'r;
  message_bits : int * int;  (** Alice's and Bob's state shipments *)
  space_bits : int;  (** the space high-water mark over the same run *)
}

(** Execute the construction on a 3-player partition (Alice's segment, then
    Bob's, then Charlie's).
    @raise Invalid_argument unless there are exactly 3 players. *)
val oneway_of_streaming : ('s, 'r) Stream_alg.t -> inputs:Partition.t -> 'r run
