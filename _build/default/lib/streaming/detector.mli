(** Sampling-based streaming triangle detector — the streaming twin of
    Algorithm 7: retain the edges induced by a shared pseudorandom vertex
    sample; a triangle among them is a verified witness. *)

open Tfree_graph

type state = { n : int; keep : int -> bool; edges : (int * int) list; count : int }

(** Detector keeping each vertex with probability [p]. *)
val make : seed:int -> p:float -> (state, Triangle.triangle option) Stream_alg.t

(** Sample probability matching Algorithm 7's rate for (n, d, ǫ); space then
    tracks O~((nd)^{1/3}). *)
val tuned_p : n:int -> d:float -> eps:float -> c:float -> float
