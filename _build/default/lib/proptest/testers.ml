(** Centralized query-model triangle-freeness testers, used as baselines.

    - [dense_tester]: the classical dense-model tester (sample vertex
      triples, query the three pairs) — the oblivious tester of [2] that the
      simultaneous protocols are compared against.
    - [general_tester]: a simplified [3]-style tester for the general model:
      sample vertices, estimate their degrees, sample ~sqrt(deg)
      neighbours of each and query all pairs among them (the birthday-paradox
      step shared with Algorithm 4).

    Both are one-sided: they report a triangle only when its three edges were
    positively queried. *)

open Tfree_util
open Tfree_graph

type result = Found of Triangle.triangle | Not_found_after of int  (** queries spent *)

(** Dense tester: [trials] uniformly random triples. *)
let dense_tester rng oracle ~trials =
  let n = Query_model.n oracle in
  let rec go t =
    if t >= trials then Not_found_after (Query_model.total_queries oracle)
    else begin
      let a = Rng.int rng n and b = Rng.int rng n and c = Rng.int rng n in
      if a <> b && b <> c && a <> c
         && Query_model.edge_query oracle a b
         && Query_model.edge_query oracle b c
         && Query_model.edge_query oracle a c
      then Found (Triangle.normalize (a, b, c))
      else go (t + 1)
    end
  in
  go 0

(** General-model tester: for each of [vertex_trials] random vertices, sample
    ~[c]·sqrt(deg) of its neighbours (by index) and edge-query all pairs. *)
let general_tester rng oracle ~vertex_trials ~c =
  let n = Query_model.n oracle in
  let try_vertex () =
    let v = Rng.int rng n in
    let d = Query_model.degree_query oracle v in
    if d < 2 then None
    else begin
      let sample_size = min d (max 2 (int_of_float (Float.ceil (c *. sqrt (float_of_int d))))) in
      let idxs = Sampling.without_replacement rng d sample_size in
      let nbrs = List.filter_map (fun i -> Query_model.neighbor_query oracle v i) idxs in
      let arr = Array.of_list nbrs in
      let len = Array.length arr in
      let rec pairs i j =
        if i >= len then None
        else if j >= len then pairs (i + 1) (i + 2)
        else if Query_model.edge_query oracle arr.(i) arr.(j) then
          Some (Triangle.normalize (v, arr.(i), arr.(j)))
        else pairs i (j + 1)
      in
      pairs 0 1
    end
  in
  let rec go t =
    if t >= vertex_trials then Not_found_after (Query_model.total_queries oracle)
    else begin
      match try_vertex () with Some tri -> Found tri | None -> go (t + 1)
    end
  in
  go 0
