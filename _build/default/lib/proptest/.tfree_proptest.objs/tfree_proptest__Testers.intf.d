lib/proptest/testers.mli: Query_model Tfree_graph Tfree_util Triangle
