lib/proptest/query_model.ml: Array Graph Tfree_graph
