lib/proptest/query_model.mli: Graph Tfree_graph
