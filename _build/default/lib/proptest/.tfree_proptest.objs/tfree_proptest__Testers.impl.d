lib/proptest/testers.ml: Array Float List Query_model Rng Sampling Tfree_graph Tfree_util Triangle
