(** The classical (centralized) property-testing query model, as the
    comparator the paper positions itself against (§1, §2).

    A tester accesses the input graph only through an oracle — edge queries
    (dense model), degree and i-th-neighbour queries (sparse/general model) —
    and its complexity is the number of queries.  The oracle counts each kind
    so experiments can put query counts side by side with communication
    bits. *)

open Tfree_graph

type t = {
  graph : Graph.t;
  mutable edge_queries : int;
  mutable degree_queries : int;
  mutable neighbor_queries : int;
}

let make graph = { graph; edge_queries = 0; degree_queries = 0; neighbor_queries = 0 }

let n t = Graph.n t.graph

(** Is {u, v} an edge?  (Dense-model primitive.) *)
let edge_query t u v =
  t.edge_queries <- t.edge_queries + 1;
  Graph.mem_edge t.graph u v

(** deg(v).  (General-model auxiliary query.) *)
let degree_query t v =
  t.degree_queries <- t.degree_queries + 1;
  Graph.degree t.graph v

(** i-th neighbour of v (0-based); [None] when i >= deg(v).
    (Sparse-model primitive.) *)
let neighbor_query t v i =
  t.neighbor_queries <- t.neighbor_queries + 1;
  let nbrs = Graph.neighbors t.graph v in
  if i < Array.length nbrs then Some nbrs.(i) else None

let total_queries t = t.edge_queries + t.degree_queries + t.neighbor_queries
