(** Centralized query-model triangle-freeness testers (baselines): the dense
    triple-sampling tester of [2] and a simplified [3]-style general-model
    tester (degree query + birthday-paradox neighbour sampling).  Both
    one-sided. *)

open Tfree_graph

type result = Found of Triangle.triangle | Not_found_after of int  (** queries spent *)

(** [trials] uniformly random triples, three edge queries each. *)
val dense_tester : Tfree_util.Rng.t -> Query_model.t -> trials:int -> result

(** For each of [vertex_trials] random vertices: degree query, sample
    ~c·sqrt(deg) neighbours, edge-query all pairs. *)
val general_tester : Tfree_util.Rng.t -> Query_model.t -> vertex_trials:int -> c:float -> result
