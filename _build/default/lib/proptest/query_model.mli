(** The classical centralized property-testing query model (the comparator
    the paper positions itself against): edge queries (dense model), degree
    and i-th-neighbour queries (sparse/general model), with per-kind query
    counting. *)

open Tfree_graph

type t = {
  graph : Graph.t;
  mutable edge_queries : int;
  mutable degree_queries : int;
  mutable neighbor_queries : int;
}

val make : Graph.t -> t

val n : t -> int

(** Is {u, v} an edge? *)
val edge_query : t -> int -> int -> bool

(** deg(v). *)
val degree_query : t -> int -> int

(** i-th neighbour of v (0-based); [None] past the degree. *)
val neighbor_query : t -> int -> int -> int option

val total_queries : t -> int
