(** One-way three-player model (§4.2.2): the Alice → Bob → Charlie chain, and
    the paper's "extended" variant where Alice and Bob alternate for any
    number of turns with Charlie observing the transcript. *)

open Tfree_graph

type ctx = { n : int; shared : Tfree_util.Rng.t }

val shared_rng : ctx -> key:int -> Tfree_util.Rng.t

(** Chain protocol: Alice's message, Bob's message (seeing Alice's), and
    Charlie's output (seeing both). *)
type 'r chain = {
  alice : ctx -> Graph.t -> Msg.t;
  bob : ctx -> Graph.t -> Msg.t -> Msg.t;
  charlie : ctx -> Graph.t -> Msg.t -> Msg.t -> 'r;
}

type 'r outcome = { result : 'r; total_bits : int; max_message_bits : int }

val run_chain :
  seed:int ->
  'r chain ->
  alice_input:Graph.t ->
  bob_input:Graph.t ->
  charlie_input:Graph.t ->
  'r outcome

(** Extended variant: Alice speaks on even turns, Bob on odd ones, each a
    function of own input and the transcript so far; after [turns] exchanges
    Charlie outputs from his input and the full transcript. *)
type 'r extended = {
  speak : ctx -> turn:int -> Graph.t -> Msg.t list -> Msg.t;
  out : ctx -> Graph.t -> Msg.t list -> 'r;
  turns : int;
}

val run_extended :
  seed:int ->
  'r extended ->
  alice_input:Graph.t ->
  bob_input:Graph.t ->
  charlie_input:Graph.t ->
  'r outcome
