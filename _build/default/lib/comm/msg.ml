(** Messages with exact bit accounting.

    Every value crossing a channel in any of the models is a [Msg.t]: a typed
    payload plus the number of bits it costs under the schema of
    {!Tfree_util.Bits} (a vertex costs ceil(log2 n), an edge twice that, a
    list additionally carries a self-delimiting length).  Protocols construct
    messages only through the smart constructors here, so the cost model is
    centralized and auditable. *)

open Tfree_util

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Vertex of int
  | No_vertex
  | Edge of int * int
  | Vertices of int list
  | Edges of (int * int) list
  | Tuple of value list

type t = { value : value; bits : int }

let bits t = t.bits
let value t = t.value

let empty = { value = Unit; bits = 0 }

let bool b = { value = Bool b; bits = 1 }

(** Integer known by both sides to lie in [lo, hi]. *)
let int_in ~lo ~hi v =
  if v < lo || v > hi then invalid_arg "Msg.int_in: out of declared range";
  { value = Int v; bits = Bits.int_in_range ~lo ~hi }

(** Nonnegative integer with a self-delimiting code. *)
let nat v = { value = Int v; bits = Bits.elias_gamma v }

let vertex ~n v = { value = Vertex v; bits = Bits.vertex ~n }

(** Optional vertex: 1 flag bit plus the identifier when present. *)
let vertex_opt ~n vo =
  match vo with
  | None -> { value = No_vertex; bits = 1 }
  | Some v -> { value = Vertex v; bits = 1 + Bits.vertex ~n }

let edge ~n (u, v) = { value = Edge (u, v); bits = Bits.edge ~n }

(** Length-prefixed vertex list. *)
let vertices ~n vs =
  { value = Vertices vs; bits = Bits.elias_gamma (List.length vs) + (List.length vs * Bits.vertex ~n) }

(** Length-prefixed edge list — the dominant message type in every protocol. *)
let edges ~n es =
  { value = Edges es; bits = Bits.elias_gamma (List.length es) + (List.length es * Bits.edge ~n) }

let tuple parts =
  { value = Tuple (List.map (fun p -> p.value) parts);
    bits = List.fold_left (fun acc p -> acc + p.bits) 0 parts }

(* Extraction: a mismatch is a protocol bug, so we fail loudly. *)

let get_bool t = match t.value with Bool b -> b | _ -> invalid_arg "Msg.get_bool"

let get_int t = match t.value with Int v -> v | _ -> invalid_arg "Msg.get_int"

let get_vertex_opt t =
  match t.value with
  | Vertex v -> Some v
  | No_vertex -> None
  | _ -> invalid_arg "Msg.get_vertex_opt"

let get_edge t = match t.value with Edge (u, v) -> (u, v) | _ -> invalid_arg "Msg.get_edge"

let get_vertices t = match t.value with Vertices vs -> vs | _ -> invalid_arg "Msg.get_vertices"

let get_edges t = match t.value with Edges es -> es | _ -> invalid_arg "Msg.get_edges"

let get_tuple t =
  match t.value with
  | Tuple vs -> List.map (fun v -> { value = v; bits = 0 }) vs
  | _ -> invalid_arg "Msg.get_tuple"
