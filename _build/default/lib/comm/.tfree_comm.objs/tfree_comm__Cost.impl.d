lib/comm/cost.ml: Array Printf
