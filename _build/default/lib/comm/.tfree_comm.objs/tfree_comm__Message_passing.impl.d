lib/comm/message_passing.ml: Bits List Msg Partition Rng Tfree_graph Tfree_util
