lib/comm/newman.mli: Partition Runtime Tfree_graph
