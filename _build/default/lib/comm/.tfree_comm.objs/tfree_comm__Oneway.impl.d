lib/comm/oneway.ml: Graph List Msg Rng Tfree_graph Tfree_util
