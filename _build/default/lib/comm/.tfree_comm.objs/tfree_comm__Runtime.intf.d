lib/comm/runtime.mli: Cost Graph Msg Partition Tfree_graph Tfree_util
