lib/comm/oneway.mli: Graph Msg Tfree_graph Tfree_util
