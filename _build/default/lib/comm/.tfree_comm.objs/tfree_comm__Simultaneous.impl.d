lib/comm/simultaneous.ml: Array Graph Msg Partition Rng Tfree_graph Tfree_util
