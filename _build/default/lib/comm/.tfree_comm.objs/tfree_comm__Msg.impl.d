lib/comm/msg.ml: Bits List Tfree_util
