lib/comm/runtime.ml: Array Cost List Msg Partition Rng Tfree_graph Tfree_util
