lib/comm/message_passing.mli: Graph Msg Partition Tfree_graph Tfree_util
