lib/comm/simultaneous.mli: Graph Msg Partition Tfree_graph Tfree_util
