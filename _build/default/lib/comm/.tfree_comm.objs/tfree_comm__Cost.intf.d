lib/comm/cost.mli:
