lib/comm/msg.mli:
