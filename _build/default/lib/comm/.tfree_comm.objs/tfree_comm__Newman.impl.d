lib/comm/newman.ml: Msg Runtime Tfree_util
