(** The message-passing model and its §2 equivalence with the coordinator
    model: pairwise private channels; a coordinator can simulate any
    message-passing run at 2·CC + (#messages)·ceil(log k) bits (forwarding
    with recipient ids), and the reverse simulation is free. *)

open Tfree_graph

(** A directed message record. *)
type sent = { src : int; dst : int; bits : int }

type t

val make : seed:int -> Partition.t -> t

val k : t -> int
val input : t -> int -> Graph.t
val shared_rng : t -> key:int -> Tfree_util.Rng.t

(** Send over the private channel; recorded on the transcript and returned
    unchanged.  @raise Invalid_argument on self-sends or bad indices. *)
val send : t -> src:int -> dst:int -> Msg.t -> Msg.t

val total_bits : t -> int
val message_count : t -> int

(** Cost of replaying the recorded run through a coordinator relay. *)
val simulate_in_coordinator : t -> int

(** §2's claimed bound 2·CC + messages·ceil(log k) — equals
    {!simulate_in_coordinator} by construction; tests assert it. *)
val coordinator_bound : t -> int
