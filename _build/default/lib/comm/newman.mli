(** Newman's theorem, the direction invoked in §2: a shared-randomness
    protocol runs with private coins at an extra O(k·log n) bits — the
    coordinator draws a seed privately and announces it, and all parties
    derive the "shared" streams from the announcement. *)

open Tfree_graph

(** [run_private ?mode ~coordinator_seed ~seed_bits inputs body] announces a
    [seed_bits]-bit privately drawn seed (charged on the ledger: k·seed_bits
    on private channels, seed_bits on a blackboard), then runs [body] over a
    runtime seeded with the announcement.  Returns the body's result and the
    runtime for cost inspection. *)
val run_private :
  ?mode:Runtime.mode ->
  coordinator_seed:int ->
  seed_bits:int ->
  Partition.t ->
  (Runtime.t -> 'a) ->
  'a * Runtime.t

(** The announcement's cost under the given mode and player count. *)
val overhead_bits : mode:Runtime.mode -> k:int -> seed_bits:int -> int
