(** One-way three-player model (§4.2.2).

    Standard chain: Alice sends one message to Bob, Bob one message to
    Charlie, Charlie outputs.  The paper's "extended" variant lets Alice and
    Bob converse back-and-forth for any number of rounds with Charlie
    observing the whole transcript; both are provided.  The max-message /
    total-transcript statistics feed the streaming bridge
    ({!Tfree_streaming.Bridge}). *)

open Tfree_util
open Tfree_graph

type ctx = { n : int; shared : Rng.t }

let shared_rng ctx ~key = Rng.split ctx.shared key

(** Chain protocol: Alice -> Bob -> Charlie. *)
type 'r chain = {
  alice : ctx -> Graph.t -> Msg.t;
  bob : ctx -> Graph.t -> Msg.t -> Msg.t;
  charlie : ctx -> Graph.t -> Msg.t -> Msg.t -> 'r;
}

type 'r outcome = { result : 'r; total_bits : int; max_message_bits : int }

let run_chain ~seed chain ~alice_input ~bob_input ~charlie_input =
  let ctx = { n = Graph.n alice_input; shared = Rng.split (Rng.create seed) 0 } in
  let m1 = chain.alice ctx alice_input in
  let m2 = chain.bob ctx bob_input m1 in
  {
    result = chain.charlie ctx charlie_input m1 m2;
    total_bits = Msg.bits m1 + Msg.bits m2;
    max_message_bits = max (Msg.bits m1) (Msg.bits m2);
  }

(** Extended variant: Alice and Bob alternate (Alice speaks on even turns),
    each turn a function of own input and the transcript so far; [turns]
    exchanges in total, then Charlie outputs from his input and the full
    transcript. *)
type 'r extended = {
  speak : ctx -> turn:int -> Graph.t -> Msg.t list -> Msg.t;
  out : ctx -> Graph.t -> Msg.t list -> 'r;
  turns : int;
}

let run_extended ~seed ext ~alice_input ~bob_input ~charlie_input =
  let ctx = { n = Graph.n alice_input; shared = Rng.split (Rng.create seed) 0 } in
  let rec converse turn transcript =
    if turn >= ext.turns then List.rev transcript
    else begin
      let speaker_input = if turn mod 2 = 0 then alice_input else bob_input in
      let msg = ext.speak ctx ~turn speaker_input (List.rev transcript) in
      converse (turn + 1) (msg :: transcript)
    end
  in
  let transcript = converse 0 [] in
  let total_bits = List.fold_left (fun acc m -> acc + Msg.bits m) 0 transcript in
  let max_message_bits = List.fold_left (fun acc m -> max acc (Msg.bits m)) 0 transcript in
  { result = ext.out ctx charlie_input transcript; total_bits; max_message_bits }
