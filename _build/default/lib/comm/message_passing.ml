(** The message-passing model and its equivalence with the coordinator model
    (§2): every two players share a private channel; a message-passing
    protocol can be simulated by a coordinator at a log k overhead per
    message (append the recipient id so the coordinator can forward), and a
    coordinator protocol runs unchanged in the message-passing model (one
    player plays coordinator).

    The runtime records a transcript of directed messages with exact bit
    accounting; [simulate_in_coordinator] replays a transcript through the
    coordinator relay and returns the relayed cost, which the tests compare
    against the claimed [2·CC + messages·⌈log k⌉] bound. *)

open Tfree_util
open Tfree_graph

type sent = { src : int; dst : int; bits : int }

type t = {
  k : int;
  n : int;
  inputs : Partition.t;
  shared : Rng.t;
  mutable transcript : sent list;  (** newest first *)
}

let make ~seed inputs =
  {
    k = Partition.k inputs;
    n = Partition.n inputs;
    inputs;
    shared = Rng.split (Rng.create seed) 0;
    transcript = [];
  }

let k t = t.k
let input t j = Partition.player t.inputs j
let shared_rng t ~key = Rng.split t.shared key

(** Send [msg] from player [src] to player [dst] over their private
    channel. *)
let send t ~src ~dst msg =
  if src = dst || src < 0 || dst < 0 || src >= t.k || dst >= t.k then
    invalid_arg "Message_passing.send: bad endpoints";
  t.transcript <- { src; dst; bits = Msg.bits msg } :: t.transcript;
  msg

let total_bits t = List.fold_left (fun acc s -> acc + s.bits) 0 t.transcript

let message_count t = List.length t.transcript

(** Cost of simulating the recorded run with a coordinator: each message
    goes player→coordinator with the recipient id appended (⌈log k⌉ bits),
    then coordinator→recipient. *)
let simulate_in_coordinator t =
  let id_bits = Bits.for_card (max 2 t.k) in
  List.fold_left (fun acc s -> acc + (2 * s.bits) + id_bits) 0 t.transcript

(** §2's claimed bound on the simulation overhead. *)
let coordinator_bound t = (2 * total_bits t) + (message_count t * Bits.for_card (max 2 t.k))
