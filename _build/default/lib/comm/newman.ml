(** Newman's theorem, the direction used in §2: a shared-randomness protocol
    can be run with private coins at an extra O(k·log n) bits — the
    coordinator draws the seed privately and announces it, after which all
    parties derive the "shared" streams from the announced seed.

    [run_private] performs exactly that: charges the seed broadcast on the
    ledger, then runs the protocol body against a runtime whose shared
    randomness is the announced seed.  The paper invokes this to argue that
    the public-coin assumption is free for multi-round protocols; the tests
    verify both the cost delta (= broadcast of [seed_bits]) and that
    verdicts are unchanged relative to a public-coin run with the same
    seed. *)



(** [run_private ?mode ~coordinator_seed ~seed_bits inputs body] announces a
    [seed_bits]-bit seed drawn from the coordinator's private randomness and
    runs [body] over a runtime seeded with it.  Returns the body's result
    and the runtime (for cost inspection). *)
let run_private ?(mode = Runtime.Coordinator) ~coordinator_seed ~seed_bits inputs body =
  (* The coordinator's private draw: any value representable in seed_bits. *)
  let coordinator_rng = Tfree_util.Rng.create coordinator_seed in
  let bound = if seed_bits >= 30 then 1 lsl 30 else 1 lsl seed_bits in
  let announced = Tfree_util.Rng.int coordinator_rng bound in
  let rt = Runtime.make ~mode ~seed:announced inputs in
  (* Announce the seed: k·seed_bits on private channels, seed_bits on a
     blackboard. *)
  Runtime.tell_all rt (Msg.int_in ~lo:0 ~hi:(bound - 1) announced);
  (body rt, rt)

(** The cost the transformation adds under the given mode and player count:
    the seed announcement. *)
let overhead_bits ~mode ~k ~seed_bits =
  match mode with Runtime.Coordinator -> k * seed_bits | Runtime.Blackboard -> seed_bits
