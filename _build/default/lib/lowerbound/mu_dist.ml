(** The hard input distribution µ of §4.2.1: a tripartite graph on
    U ∪ V₁ ∪ V₂ where every cross-part pair is an edge independently with
    probability γ/√n.  Alice receives the U×V₁ edges, Bob U×V₂ and Charlie
    V₁×V₂ — the three-player split every lower bound in §4.2 is proved
    against.

    [lemma_4_5_stats] reproduces Lemma 4.5 empirically: the sampled graphs
    carry Θ(n^{3/2}) edge-disjoint triangles and are Ω(1)-far from
    triangle-free with probability at least 1/2 (for suitable γ). *)

open Tfree_graph

type sides = { part : int; alice : Graph.t; bob : Graph.t; charlie : Graph.t }

let side_of ~part u v =
  let su = u / part and sv = v / part in
  match (min su sv, max su sv) with
  | 0, 1 -> `Alice
  | 0, 2 -> `Bob
  | 1, 2 -> `Charlie
  | _ -> invalid_arg "Mu_dist.side_of: not a cross-part pair"

(** Sample G ~ µ with |U| = |V₁| = |V₂| = part; edge probability γ/√(3·part). *)
let sample rng ~part ~gamma =
  let n = 3 * part in
  let p = Float.min 1.0 (gamma /. sqrt (float_of_int n)) in
  Gen.tripartite_gnp rng ~part ~p

(** Split a tripartite graph into the canonical 3-player partition. *)
let split g ~part =
  let n = Graph.n g in
  let pick side = Graph.filter_edges g (fun u v -> side_of ~part u v = side) in
  ignore n;
  { part; alice = pick `Alice; bob = pick `Bob; charlie = pick `Charlie }

let to_partition (s : sides) : Partition.t = [| s.alice; s.bob; s.charlie |]

(** Sample an input directly as a 3-player partition. *)
let sample_partition rng ~part ~gamma =
  let g = sample rng ~part ~gamma in
  (g, to_partition (split g ~part))

type stats = {
  n : int;
  m : int;
  triangles : int;
  disjoint_triangles : int;  (** greedy packing size *)
  farness_lb : float;  (** packing / m *)
}

let stats g =
  let packing = List.length (Triangle.greedy_packing g) in
  {
    n = Graph.n g;
    m = Graph.m g;
    triangles = Triangle.count g;
    disjoint_triangles = packing;
    farness_lb = float_of_int packing /. float_of_int (max 1 (Graph.m g));
  }

(** Over [trials] samples: fraction that are certifiably ǫ-far, and the mean
    packing size normalized by n^{3/2} (Lemma 4.5 predicts a constant). *)
let lemma_4_5_stats rng ~part ~gamma ~eps ~trials =
  let far = ref 0 in
  let norm_packing = ref 0.0 in
  for _ = 1 to trials do
    let g = sample rng ~part ~gamma in
    let s = stats g in
    if s.farness_lb >= eps then incr far;
    norm_packing :=
      !norm_packing +. (float_of_int s.disjoint_triangles /. Float.pow (float_of_int s.n) 1.5)
  done;
  ( float_of_int !far /. float_of_int trials,
    !norm_packing /. float_of_int trials )

(** µ′ of §4.2.1: µ conditioned on being (certifiably) ǫ-far — rejection
    sampling, with a cap on attempts. *)
let sample_far rng ~part ~gamma ~eps =
  let rec attempt i =
    if i > 200 then None
    else begin
      let g = sample rng ~part ~gamma in
      if Distance.certified_far g ~eps then Some g else attempt (i + 1)
    end
  in
  attempt 0
