(** Lemma 4.17: embed a hard instance of n′ vertices and degree Θ((n′)^c)
    among isolated vertices to reach any lower average degree d′, preserving
    triangles and farness-in-edges; n′ = (d′·n)^{1/(1+c)}. *)

open Tfree_graph

(** The lemma's source-size formula, clamped to [6, n]. *)
val source_size : n:int -> d':float -> c:float -> int

type embedded = {
  inputs : Partition.t;
  graph : Graph.t;
  n' : int;
  achieved_degree : float;
}

(** Build a k-player embedded instance from a hard-instance family [make]
    and a partitioner [split]; one common label shuffle keeps the players'
    inputs consistent. *)
val embed_at_degree :
  Tfree_util.Rng.t ->
  n:int ->
  d':float ->
  c:float ->
  k:int ->
  make:(Tfree_util.Rng.t -> int -> Graph.t) ->
  split:(Tfree_util.Rng.t -> k:int -> Graph.t -> Partition.t) ->
  embedded
