(** Information-theory toolkit backing the lower bounds of §4: entropy, KL
    divergence, mutual information (Definitions 1 and 9), super-additivity
    (Lemma 4.2) and the divergence bound of Lemma 4.3.

    Distributions are finite and explicit (float arrays summing to 1); the
    tests verify the identities the proofs rest on, numerically, on grids and
    on random distributions. *)

let log2 x = Float.log x /. Float.log 2.0

(** Shannon entropy in bits; 0·log 0 = 0. *)
let entropy dist =
  Array.fold_left (fun acc p -> if p > 0.0 then acc -. (p *. log2 p) else acc) 0.0 dist

(** KL divergence D(mu || eta) in bits (Definition 1); +inf when mu puts mass
    where eta does not. *)
let kl_divergence mu eta =
  if Array.length mu <> Array.length eta then invalid_arg "Info.kl_divergence: size mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      if p > 0.0 then begin
        if eta.(i) <= 0.0 then acc := infinity
        else acc := !acc +. (p *. log2 (p /. eta.(i)))
      end)
    mu;
  !acc

(** KL divergence between Bernoulli(q) and Bernoulli(p). *)
let binary_kl ~q ~p = kl_divergence [| q; 1.0 -. q |] [| p; 1.0 -. p |]

(** Lemma 4.3's lower bound: for p < 1/2, D(q || p) >= q - 2p (the paper
    states it in nats-free form; it holds a fortiori in bits for the regime
    used, and the tests check the exact statement numerically). *)
let lemma_4_3_bound ~q ~p = q -. (2.0 *. p)

(** A finite joint distribution of (X, Y): matrix p.(x).(y). *)
type joint = float array array

let check_joint (j : joint) =
  let total = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 j in
  if Float.abs (total -. 1.0) > 1e-9 then invalid_arg "Info.check_joint: not normalized"

let marginal_x (j : joint) = Array.map (fun row -> Array.fold_left ( +. ) 0.0 row) j

let marginal_y (j : joint) =
  let ny = Array.length j.(0) in
  Array.init ny (fun y -> Array.fold_left (fun acc row -> acc +. row.(y)) 0.0 j)

(** Mutual information I(X;Y) = sum p(x,y)·log(p(x,y)/(p(x)p(y))), in bits. *)
let mutual_information (j : joint) =
  check_joint j;
  let px = marginal_x j and py = marginal_y j in
  let acc = ref 0.0 in
  Array.iteri
    (fun x row ->
      Array.iteri
        (fun y p -> if p > 0.0 then acc := !acc +. (p *. log2 (p /. (px.(x) *. py.(y)))))
        row)
    j;
  Float.max 0.0 !acc

(** I(X;Y) via the conditional-divergence form of Definition 9:
    E_y [ D( p(X|Y=y) || p(X) ) ] — used to cross-check the direct formula. *)
let mutual_information_via_kl (j : joint) =
  check_joint j;
  let px = marginal_x j and py = marginal_y j in
  let nx = Array.length j in
  let ny = Array.length j.(0) in
  let acc = ref 0.0 in
  for y = 0 to ny - 1 do
    if py.(y) > 0.0 then begin
      let cond = Array.init nx (fun x -> j.(x).(y) /. py.(y)) in
      acc := !acc +. (py.(y) *. kl_divergence cond px)
    end
  done;
  !acc

(** Empirical joint distribution from paired integer samples with alphabet
    sizes [nx], [ny]. *)
let empirical_joint ~nx ~ny samples =
  let counts = Array.make_matrix nx ny 0 in
  List.iter (fun (x, y) -> counts.(x).(y) <- counts.(x).(y) + 1) samples;
  let total = float_of_int (max 1 (List.length samples)) in
  Array.map (Array.map (fun c -> float_of_int c /. total)) counts
