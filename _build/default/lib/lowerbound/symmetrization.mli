(** Symmetrization (Theorem 4.15): lift a symmetric 3-player distribution µ
    to the k-player η (X₁, X₂ to two random players other than the last, X₃
    to the rest); a k-player simultaneous protocol then yields a 3-player
    one-way protocol with E|Π′| = (2/k)·CC_η(Π), measured here. *)

open Tfree_graph

(** embed(i, j, X): players i and j hold X₁ and X₂, everyone else X₃.
    @raise Invalid_argument when i = j or either is the last player. *)
val embed : k:int -> i:int -> j:int -> Graph.t * Graph.t * Graph.t -> Partition.t

(** Uniform ordered pair of distinct role players (excluding the last). *)
val draw_roles : Tfree_util.Rng.t -> k:int -> int * int

type measurement = {
  lhs_mean : float;  (** E[|Π′|]: the two role players' message bits *)
  rhs_mean : float;  (** (2/k)·E[CC_η(Π)] *)
  trials : int;
}

(** Measure both sides of the identity for a simultaneous protocol over
    inputs drawn by [sample_mu]. *)
val measure_identity :
  Tfree_util.Rng.t ->
  k:int ->
  trials:int ->
  sample_mu:(Tfree_util.Rng.t -> Graph.t * Graph.t * Graph.t) ->
  'r Tfree_comm.Simultaneous.protocol ->
  measurement

(** Symmetric 3-player sampler from the tripartite hard distribution. *)
val mu_sampler : part:int -> gamma:float -> Tfree_util.Rng.t -> Graph.t * Graph.t * Graph.t
