(** The hard input distribution µ of §4.2.1: tripartite U ∪ V₁ ∪ V₂, each
    cross-part pair an edge iid with probability γ/√n; Alice holds U×V₁,
    Bob U×V₂, Charlie V₁×V₂. *)

open Tfree_graph

type sides = { part : int; alice : Graph.t; bob : Graph.t; charlie : Graph.t }

(** Which player's side a cross-part pair belongs to.
    @raise Invalid_argument on within-part pairs. *)
val side_of : part:int -> int -> int -> [ `Alice | `Bob | `Charlie ]

(** Sample G ~ µ with parts of size [part] (n = 3·part). *)
val sample : Tfree_util.Rng.t -> part:int -> gamma:float -> Graph.t

(** The canonical 3-player split of a tripartite graph. *)
val split : Graph.t -> part:int -> sides

val to_partition : sides -> Partition.t

(** Sample the graph together with its 3-player partition. *)
val sample_partition : Tfree_util.Rng.t -> part:int -> gamma:float -> Graph.t * Partition.t

type stats = {
  n : int;
  m : int;
  triangles : int;
  disjoint_triangles : int;  (** greedy packing size *)
  farness_lb : float;  (** packing / m *)
}

val stats : Graph.t -> stats

(** Over [trials] samples: (fraction certifiably ǫ-far, mean packing/n^1.5)
    — the two quantities of Lemma 4.5. *)
val lemma_4_5_stats :
  Tfree_util.Rng.t -> part:int -> gamma:float -> eps:float -> trials:int -> float * float

(** µ conditioned on certified ǫ-farness (rejection sampling, <= 200
    attempts). *)
val sample_far : Tfree_util.Rng.t -> part:int -> gamma:float -> eps:float -> Graph.t option
