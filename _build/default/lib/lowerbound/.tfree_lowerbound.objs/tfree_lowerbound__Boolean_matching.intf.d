lib/lowerbound/boolean_matching.mli: Graph Partition Tfree_graph Tfree_util
