lib/lowerbound/symmetrization.mli: Graph Partition Tfree_comm Tfree_graph Tfree_util
