lib/lowerbound/mu_dist.mli: Graph Partition Tfree_graph Tfree_util
