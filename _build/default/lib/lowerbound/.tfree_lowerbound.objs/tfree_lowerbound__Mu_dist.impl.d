lib/lowerbound/mu_dist.ml: Distance Float Gen Graph List Partition Tfree_graph Triangle
