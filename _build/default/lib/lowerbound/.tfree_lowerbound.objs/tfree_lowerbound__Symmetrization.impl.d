lib/lowerbound/symmetrization.ml: Array Mu_dist Partition Rng Simultaneous Tfree_comm Tfree_graph Tfree_util
