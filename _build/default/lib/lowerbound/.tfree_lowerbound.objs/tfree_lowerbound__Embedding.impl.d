lib/lowerbound/embedding.ml: Array Float Graph Partition Sampling Tfree_graph Tfree_util
