lib/lowerbound/info.mli:
