lib/lowerbound/budgeted.mli: Graph Oneway Partition Simultaneous Tfree_comm Tfree_graph Triangle
