lib/lowerbound/boolean_matching.ml: Array Graph List Partition Rng Sampling Tfree_graph Tfree_util
