lib/lowerbound/info.ml: Array Float List
