lib/lowerbound/embedding.mli: Graph Partition Tfree_graph Tfree_util
