lib/lowerbound/budgeted.ml: Array Bits Float Graph List Msg Oneway Rng Simultaneous Tfree_comm Tfree_graph Tfree_util Triangle
