(** The Boolean Matching problem and its reduction to triangle-freeness
    testing at average degree Θ(1) — Definition 12 and Theorem 4.16: yes
    instances (Mx ⊕ w = 0ⁿ) reduce to graphs with n edge-disjoint triangles,
    no instances (= 1ⁿ) to triangle-free graphs, so testers inherit BM's
    Ω(√n) one-way bound [28, 36]. *)

open Tfree_graph

type instance = {
  x : bool array;  (** Alice's 2n bits *)
  matching : (int * int) array;  (** Bob's perfect matching on [0, 2n) *)
  w : bool array;  (** Bob's n bits *)
}

(** n (the number of matching rows). *)
val size : instance -> int

(** (Mx)ⱼ ⊕ wⱼ. *)
val row_value : instance -> int -> bool

(** Random instance with Mx ⊕ w = target·1ⁿ. *)
val generate : Tfree_util.Rng.t -> n:int -> target:bool -> instance

(** The hub vertex u of the reduction graph. *)
val hub : int

(** Vertex (i, b) of the reduction graph's [2n]×{0,1} grid. *)
val vertex_of : i:int -> b:bool -> int

(** Vertex count of the reduction graph: 4n + 1. *)
val graph_n : instance -> int

val alice_edges : instance -> (int * int) list
val bob_edges : instance -> (int * int) list

val reduction_graph : instance -> Graph.t

(** Two-player (Alice, Bob) partition of the reduction graph. *)
val to_partition : instance -> Partition.t

(** Number of matching rows with (Mx ⊕ w)ⱼ = 0 — the triangle count Theorem
    4.16 predicts. *)
val expected_triangles : instance -> int
