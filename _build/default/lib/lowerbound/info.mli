(** Information-theory toolkit behind the §4 lower bounds: entropy, KL
    divergence, mutual information (Definitions 1 and 9), super-additivity
    (Lemma 4.2), and the divergence bound of Lemma 4.3.  Distributions are
    finite and explicit; all quantities in bits. *)

val log2 : float -> float

(** Shannon entropy; 0·log 0 = 0. *)
val entropy : float array -> float

(** D(mu || eta); +inf where mu has mass outside eta's support.
    @raise Invalid_argument on size mismatch. *)
val kl_divergence : float array -> float array -> float

(** Divergence between Bernoulli(q) and Bernoulli(p). *)
val binary_kl : q:float -> p:float -> float

(** Lemma 4.3's lower bound q - 2p (valid for p < 1/2). *)
val lemma_4_3_bound : q:float -> p:float -> float

(** Finite joint distribution p(x, y) as a matrix. *)
type joint = float array array

(** @raise Invalid_argument when the mass does not sum to 1. *)
val check_joint : joint -> unit

val marginal_x : joint -> float array
val marginal_y : joint -> float array

(** I(X;Y), direct formula. *)
val mutual_information : joint -> float

(** I(X;Y) via E_y[D(p(X|Y=y) || p(X))] (Definition 9) — cross-check. *)
val mutual_information_via_kl : joint -> float

(** Empirical joint from paired integer samples. *)
val empirical_joint : nx:int -> ny:int -> (int * int) list -> joint
