(** Budget-capped protocol variants for the threshold experiments (E6):
    the executable shape of the §4 lower bounds — cap the per-player budget
    of the matching upper bound and locate where success collapses; the
    threshold should scale as the lower bound does. *)

open Tfree_graph
open Tfree_comm

(** Sim-high with its sample size derived from a per-player bit budget and
    messages hard-truncated at the budget. *)
val sim_high_budgeted :
  budget_bits:int -> d:float -> Triangle.triangle option Simultaneous.protocol

(** One-way chain with budget-capped forwarded samples (for the Ω((nd)^{1/6})
    one-way shape). *)
val oneway_budgeted : budget_bits:int -> Triangle.triangle option Oneway.chain

(** Fraction of [trials] fresh instances from [gen] on which the protocol
    outputs a verified triangle. *)
val success_rate :
  trials:int ->
  gen:(int -> Partition.t * Graph.t) ->
  protocol:Triangle.triangle option Simultaneous.protocol ->
  float

(** Smallest power-of-two-stepped budget in [lo, hi] whose success rate
    reaches [target], with the rate achieved there. *)
val threshold_budget :
  trials:int ->
  gen:(int -> Partition.t * Graph.t) ->
  protocol_of_budget:(int -> Triangle.triangle option Simultaneous.protocol) ->
  target:float ->
  lo:int ->
  hi:int ->
  (int * float) option
