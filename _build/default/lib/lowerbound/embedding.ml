(** The degree-embedding argument of Lemma 4.17: a hard instance of n′
    vertices and average degree Θ((n′)^c) embedded among n - n′ isolated
    vertices becomes an instance of n vertices and average degree d′ =
    Θ((n′)^{1+c}/n), with identical triangle structure and farness-in-edges.
    This is how every bound proved at d = Θ(√n) extends to all d = O(√n).

    [embed_at_degree] picks n′ = (d′·n)^{1/(1+c)} (the lemma's formula) for a
    hard-instance family given as [make : n' -> inputs], pads every player's
    input to n vertices, and reports the achieved average degree so the
    experiments can verify the parameter mapping. *)

open Tfree_util
open Tfree_graph

(** n′ = (d′·n)^{1/(1+c)} for a family of intrinsic degree exponent c. *)
let source_size ~n ~d' ~c =
  let raw = Float.pow (d' *. float_of_int n) (1.0 /. (1.0 +. c)) in
  max 6 (min n (int_of_float (Float.round raw)))

type embedded = {
  inputs : Partition.t;
  graph : Graph.t;
  n' : int;
  achieved_degree : float;
}

(** Embed a k-player instance family [make rng n'] (returning the global
    graph) into an n-vertex instance of average degree ≈ d′.  The same label
    shuffle is applied to every player so the union stays consistent. *)
let embed_at_degree rng ~n ~d' ~c ~k ~make ~split =
  let n' = source_size ~n ~d' ~c in
  let g' = make rng n' in
  let parts' : Partition.t = split rng ~k g' in
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  let lift g = Graph.relabel (Graph.of_edges ~n (Graph.edges g)) perm in
  let inputs = Array.map lift parts' in
  let graph = lift g' in
  { inputs; graph; n'; achieved_degree = Graph.avg_degree graph }
