(** The Boolean Matching problem and its reduction to triangle-freeness
    testing at average degree Θ(1) — Definition 12 and Theorem 4.16 (§4.4),
    following Kallaugher–Price [27] / Verbin–Yu [36].

    Alice holds x ∈ {0,1}^{2n}; Bob holds a perfect matching M on [2n] and
    w ∈ {0,1}^n; the promise is Mx ⊕ w = 0ⁿ (yes) or 1ⁿ (no).  The reduction
    builds a graph on 4n+1 vertices such that yes-instances contain n
    edge-disjoint triangles (1-far from triangle-free) and no-instances are
    triangle-free — so any one-way tester solves Boolean Matching, whose
    one-way complexity is Ω(√n) [28, 36]. *)

open Tfree_util
open Tfree_graph

type instance = {
  x : bool array;  (** Alice's 2n bits *)
  matching : (int * int) array;  (** Bob's perfect matching on [0, 2n) *)
  w : bool array;  (** Bob's n bits *)
}

let size inst = Array.length inst.w

(** (Mx)_j ⊕ w_j for row j. *)
let row_value inst j =
  let j1, j2 = inst.matching.(j) in
  let ( +! ) a b = a <> b in
  inst.x.(j1) +! inst.x.(j2) +! inst.w.(j)

(** Generate an instance satisfying Mx ⊕ w = target·1ⁿ. *)
let generate rng ~n ~target =
  let x = Array.init (2 * n) (fun _ -> Rng.bool rng ~p:0.5) in
  let verts = Array.init (2 * n) (fun i -> i) in
  Sampling.shuffle_in_place rng verts;
  let matching = Array.init n (fun j -> (verts.(2 * j), verts.((2 * j) + 1))) in
  let w =
    Array.init n (fun j ->
        let j1, j2 = matching.(j) in
        (* w_j = x_{j1} ⊕ x_{j2} ⊕ target makes row j equal target. *)
        x.(j1) <> x.(j2) <> target)
  in
  { x; matching; w }

(* Vertex layout of the reduction graph: hub u = 0; (i, b) = 1 + 2i + b for
   i in [0, 2n), b in {0, 1}. *)
let hub = 0
let vertex_of ~i ~b = 1 + (2 * i) + if b then 1 else 0

let graph_n inst = 1 + (4 * size inst)

(** Alice's edges: {u, (i, x_i)} for every bit i. *)
let alice_edges inst =
  Array.to_list (Array.mapi (fun i xi -> (hub, vertex_of ~i ~b:xi)) inst.x)

(** Bob's edges per matched pair: parallel connections when w_j = 0, crossed
    when w_j = 1. *)
let bob_edges inst =
  List.concat
    (List.init (size inst) (fun j ->
         let j1, j2 = inst.matching.(j) in
         if inst.w.(j) then
           [ (vertex_of ~i:j1 ~b:false, vertex_of ~i:j2 ~b:true);
             (vertex_of ~i:j1 ~b:true, vertex_of ~i:j2 ~b:false) ]
         else
           [ (vertex_of ~i:j1 ~b:false, vertex_of ~i:j2 ~b:false);
             (vertex_of ~i:j1 ~b:true, vertex_of ~i:j2 ~b:true) ]))

let reduction_graph inst =
  Graph.of_edges ~n:(graph_n inst) (alice_edges inst @ bob_edges inst)

(** Two-player partition (Alice, Bob) of the reduction graph. *)
let to_partition inst : Partition.t =
  let n = graph_n inst in
  [| Graph.of_edges ~n (alice_edges inst); Graph.of_edges ~n (bob_edges inst) |]

(** Theorem 4.16's structural dichotomy, checked on a concrete instance:
    yes-instances yield exactly one triangle per matched pair (n edge-disjoint
    triangles), no-instances yield none. *)
let expected_triangles inst =
  List.length (List.filter (fun j -> not (row_value inst j)) (List.init (size inst) (fun j -> j)))
