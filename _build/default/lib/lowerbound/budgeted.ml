(** Budget-capped protocol variants for the threshold experiments (E6).

    The lower bounds of §4.2 cannot be "run", but their *shape* can be
    exhibited: cap the per-player communication budget of the matching upper
    bound and locate the budget at which the success probability collapses.
    Theorem 3.24 is tight at d = Θ(√n) against the Ω((nd)^{1/3}) simultaneous
    bound (Theorem 4.1(2)), so the measured threshold should scale as
    (nd)^{1/3} = n^{1/2}: the experiment fits that exponent. *)

open Tfree_graph
open Tfree_comm
open Tfree_util

(** Sim_high-style protocol whose sample size is derived from a per-player
    bit budget: |S| chosen so the expected per-player message just fits, and
    messages are hard-truncated at the budget. *)
let sim_high_budgeted ~budget_bits ~d : Triangle.triangle option Simultaneous.protocol =
  {
    Simultaneous.player =
      (fun ctx _j input ->
        let n = ctx.Simultaneous.n in
        let eb = Bits.edge ~n in
        let cap_edges = max 1 (budget_bits / eb) in
        (* Expected edges in S² is d·s²/(2n); pick s to fill the budget. *)
        let s =
          let raw = sqrt (2.0 *. float_of_int n *. float_of_int cap_edges /. Float.max 1.0 d) in
          max 2 (min n (int_of_float raw))
        in
        let rng = Simultaneous.shared_rng ctx ~key:31 in
        let in_s v = Rng.hash_float rng v < float_of_int s /. float_of_int n in
        let selected =
          Graph.fold_edges input ~init:[] ~f:(fun acc u v ->
              if in_s u && in_s v then (u, v) :: acc else acc)
        in
        Msg.edges ~n (List.filteri (fun idx _ -> idx < cap_edges) selected));
    referee =
      (fun ctx messages ->
        let n = ctx.Simultaneous.n in
        Triangle.find (Graph.of_edges ~n (List.concat_map Msg.get_edges (Array.to_list messages))));
  }

(** One-way chain variant for the Ω((nd)^{1/6}) one-way bound (E7): Alice
    forwards a budget-capped sample of her edges, Bob adds his own capped
    sample plus anything that closes a vee, Charlie answers. *)
let oneway_budgeted ~budget_bits : Triangle.triangle option Oneway.chain =
  let sample_msg ctx input key =
    let n = Graph.n input in
    let eb = Bits.edge ~n in
    let cap_edges = max 1 (budget_bits / eb) in
    let rng = Oneway.shared_rng ctx ~key in
    let m = max 1 (Graph.m input) in
    let p = Float.min 1.0 (float_of_int cap_edges /. float_of_int m) in
    let selected =
      Graph.fold_edges input ~init:[] ~f:(fun acc u v ->
          if Rng.hash_float2 rng u v < p then (u, v) :: acc else acc)
    in
    Msg.edges ~n (List.filteri (fun idx _ -> idx < cap_edges) selected)
  in
  {
    Oneway.alice = (fun ctx input -> sample_msg ctx input 41);
    bob =
      (fun ctx input m1 ->
        let n = Graph.n input in
        let own = sample_msg ctx input 42 in
        (* Forward Alice's sample along with Bob's, both within budget. *)
        let merged = Msg.get_edges m1 @ Msg.get_edges own in
        let eb = Bits.edge ~n in
        let cap_edges = max 1 (2 * budget_bits / eb) in
        Msg.edges ~n (List.filteri (fun idx _ -> idx < cap_edges) merged));
    charlie =
      (fun _ctx input _m1 m2 ->
        let n = Graph.n input in
        let received = Graph.of_edges ~n (Msg.get_edges m2) in
        let union = Graph.union received input in
        (* Charlie may use his own input for free; he must still output a
           real triangle, so search the union but verify each candidate. *)
        Triangle.find union);
  }

(** Success rate of a budgeted simultaneous protocol over [trials] fresh far
    inputs produced by [gen : seed -> Partition.t * Graph.t]. *)
let success_rate ~trials ~gen ~protocol =
  let ok = ref 0 in
  for t = 1 to trials do
    let inputs, g = gen t in
    let outcome = Simultaneous.run ~seed:(7919 * t) protocol inputs in
    match outcome.Simultaneous.result with
    | Some tri -> if Triangle.is_triangle g tri then incr ok
    | None -> ()
  done;
  float_of_int !ok /. float_of_int trials

(** Smallest power-of-two-stepped budget whose success rate reaches [target];
    scans geometrically from [lo] up to [hi]. *)
let threshold_budget ~trials ~gen ~protocol_of_budget ~target ~lo ~hi =
  let rec scan b =
    if b > hi then None
    else begin
      let rate = success_rate ~trials ~gen ~protocol:(protocol_of_budget b) in
      if rate >= target then Some (b, rate) else scan (b * 2)
    end
  in
  scan lo
