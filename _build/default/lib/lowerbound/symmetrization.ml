(** Symmetrization (Theorem 4.15): lifting a 3-player lower bound to k
    simultaneous players.

    Given a symmetric 3-player distribution µ over inputs (X₁, X₂, X₃), the
    k-player distribution η gives X₁ and X₂ to two random players (neither
    being player k) and X₃ to everyone else.  A k-player simultaneous
    protocol Π then yields a 3-player one-way protocol Π′ in which Alice and
    Bob send the messages of their impersonated players, and the proof's
    cost identity is E|Π′| = (2/k)·CC_η(Π).  [measure_identity] constructs
    η, runs Π on it, and measures both sides of the identity, which the
    experiments verify to within sampling error. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

(** embed(i, j, X): the η-input in which players i and j hold X₁ and X₂ and
    all others hold X₃. *)
let embed ~k ~i ~j (x1, x2, x3) : Partition.t =
  if i = j || i = k - 1 || j = k - 1 then invalid_arg "Symmetrization.embed: bad player ids";
  Array.init k (fun p -> if p = i then x1 else if p = j then x2 else x3)

(** Draw (i, j) uniform among ordered pairs of distinct players excluding
    player k-1, per the construction in the proof. *)
let draw_roles rng ~k =
  let i = Rng.int rng (k - 1) in
  let rec draw_j () =
    let j = Rng.int rng (k - 1) in
    if j = i then draw_j () else j
  in
  (i, draw_j ())

type measurement = {
  lhs_mean : float;  (** E[|Π′|]: Alice's + Bob's message bits *)
  rhs_mean : float;  (** (2/k)·E[CC_η(Π)] *)
  trials : int;
}

(** Measure both sides of the identity for a simultaneous protocol [protocol]
    over inputs drawn by [sample_mu] (a symmetric 3-player sampler). *)
let measure_identity rng ~k ~trials ~sample_mu protocol =
  let lhs = ref 0.0 and rhs = ref 0.0 in
  for t = 1 to trials do
    let x = sample_mu rng in
    let i, j = draw_roles rng ~k in
    let inputs = embed ~k ~i ~j x in
    let outcome = Simultaneous.run ~seed:(Rng.int rng 1_000_000_000 + t) protocol inputs in
    let per = outcome.Simultaneous.per_player_bits in
    lhs := !lhs +. float_of_int (per.(i) + per.(j));
    rhs := !rhs +. (2.0 /. float_of_int k *. float_of_int outcome.Simultaneous.total_bits)
  done;
  { lhs_mean = !lhs /. float_of_int trials; rhs_mean = !rhs /. float_of_int trials; trials }

(** Symmetric 3-player µ sampler built from the tripartite hard distribution:
    the marginals of the three sides are identical by symmetry of the
    construction (each side is an iid bipartite γ/√n graph on disjoint part
    pairs of equal size). *)
let mu_sampler ~part ~gamma rng =
  let _, parts = Mu_dist.sample_partition rng ~part ~gamma in
  (Partition.player parts 0, Partition.player parts 1, Partition.player parts 2)
