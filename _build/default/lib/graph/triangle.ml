(** Triangle machinery: detection, enumeration, counting, greedy edge-disjoint
    packing, and the paper's triangle-vee notions (Definitions 2 and 3).

    Enumeration uses the standard forward algorithm over a degeneracy-style
    order (vertices sorted by degree): each triangle is reported exactly once,
    in O(m^{3/2}) time, which is fast enough for every referee and generator
    in this reproduction. *)

type triangle = int * int * int

(** Normalize to increasing vertex order. *)
let normalize (a, b, c) =
  let l = List.sort compare [ a; b; c ] in
  match l with [ x; y; z ] -> (x, y, z) | _ -> assert false

let is_triangle g (a, b, c) =
  a <> b && b <> c && a <> c && Graph.mem_edge g a b && Graph.mem_edge g b c && Graph.mem_edge g a c

(* Rank vertices by (degree, id); the forward algorithm directs each edge from
   lower to higher rank and intersects out-neighbourhoods. *)
let degree_order g =
  let n = Graph.n g in
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun u v ->
      let c = compare (Graph.degree g u) (Graph.degree g v) in
      if c <> 0 then c else compare u v)
    order;
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  rank

(** [iter g f] calls [f a b c] once per triangle, with [rank a < rank b <
    rank c] in the degree order (vertex ids in unspecified order otherwise). *)
let iter g f =
  let rank = degree_order g in
  let n = Graph.n g in
  (* out.(v) = neighbours of v with higher rank, sorted by vertex id. *)
  let out = Array.make n [||] in
  for v = 0 to n - 1 do
    let higher = Array.of_list (List.filter (fun u -> rank.(u) > rank.(v)) (Array.to_list (Graph.neighbors g v))) in
    Array.sort compare higher;
    out.(v) <- higher
  done;
  let intersect_iter a b k =
    let la = Array.length a and lb = Array.length b in
    let rec go i j =
      if i < la && j < lb then begin
        if a.(i) = b.(j) then begin
          k a.(i);
          go (i + 1) (j + 1)
        end
        else if a.(i) < b.(j) then go (i + 1) j
        else go i (j + 1)
      end
    in
    go 0 0
  in
  for u = 0 to n - 1 do
    Array.iter
      (fun v -> intersect_iter out.(u) out.(v) (fun w -> f u v w))
      out.(u)
  done

let count g =
  let c = ref 0 in
  iter g (fun _ _ _ -> incr c);
  !c

let enumerate g =
  let acc = ref [] in
  iter g (fun a b c -> acc := normalize (a, b, c) :: !acc);
  List.rev !acc

(** First triangle found, if any — the referee's final check in every
    protocol.  One-sided error hinges on this returning only real triangles,
    which [iter] guarantees. *)
let find g =
  let exception Found of triangle in
  try
    iter g (fun a b c -> raise (Found (normalize (a, b, c))));
    None
  with Found t -> Some t

let is_free g = Option.is_none (find g)

(** Greedy maximal edge-disjoint triangle packing.  Its size lower-bounds the
    number of edges whose removal is needed to destroy all triangles, hence
    certifies ǫ-farness: packing of size >= ǫ·m implies ǫ-far. *)
let greedy_packing g =
  let used : (Graph.edge, unit) Hashtbl.t = Hashtbl.create 64 in
  let free e = not (Hashtbl.mem used e) in
  let acc = ref [] in
  iter g (fun a b c ->
      let e1 = Graph.normalize_edge (a, b)
      and e2 = Graph.normalize_edge (b, c)
      and e3 = Graph.normalize_edge (a, c) in
      if free e1 && free e2 && free e3 then begin
        Hashtbl.replace used e1 ();
        Hashtbl.replace used e2 ();
        Hashtbl.replace used e3 ();
        acc := normalize (a, b, c) :: !acc
      end);
  List.rev !acc

(** A triangle-vee with source [v] (Definition 2): edges {v,a},{v,b} such
    that {a,b} is also in the graph. *)
type vee = { source : int; a : int; b : int }

let is_vee g { source; a; b } =
  a <> b && Graph.mem_edge g source a && Graph.mem_edge g source b && Graph.mem_edge g a b

(** Greedy maximal set of disjoint triangle-vees with source [v]: pairwise
    edge-disjoint at [v], i.e. a matching in the link graph on N(v).  Greedy
    maximal matching is a 2-approximation, which suffices for the full-vertex
    analysis (Definition 5). *)
let disjoint_vees_at g v =
  let nbrs = Graph.neighbors g v in
  let used = Array.make (Array.length nbrs) false in
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      if not used.(i) then begin
        let rec probe j =
          if j >= Array.length nbrs then ()
          else if (not used.(j)) && Graph.mem_edge g a nbrs.(j) then begin
            used.(i) <- true;
            used.(j) <- true;
            acc := { source = v; a; b = nbrs.(j) } :: !acc
          end
          else probe (j + 1)
        in
        probe (i + 1)
      end)
    nbrs;
  List.rev !acc

let count_disjoint_vees_at g v = List.length (disjoint_vees_at g v)

(** Is [e] a triangle edge (Definition 3)? *)
let is_triangle_edge g (u, v) =
  Graph.mem_edge g u v
  && begin
       let nu = Graph.neighbors g u and nv = Graph.neighbors g v in
       let a, probe = if Array.length nu <= Array.length nv then (nu, v) else (nv, u) in
       Array.exists (fun w -> w <> u && w <> v && Graph.mem_edge g probe w) a
     end

(** All triangle edges, each once. *)
let triangle_edges g =
  let tbl = Hashtbl.create 64 in
  iter g (fun a b c ->
      Hashtbl.replace tbl (Graph.normalize_edge (a, b)) ();
      Hashtbl.replace tbl (Graph.normalize_edge (b, c)) ();
      Hashtbl.replace tbl (Graph.normalize_edge (a, c)) ());
  Hashtbl.fold (fun e () acc -> e :: acc) tbl []

(** Given a set of candidate vees and a graph of available edges, find an edge
    closing some vee into a triangle: the "players check their own inputs"
    step of the unrestricted protocol (§3.3). *)
let close_vee available vees =
  List.find_map
    (fun ({ source = _; a; b } as vee) ->
      if Graph.mem_edge available a b then Some (vee, Graph.normalize_edge (a, b)) else None)
    vees
