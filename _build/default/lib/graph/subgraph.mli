(** Small-subgraph containment for the H-freeness extension (§5): patterns,
    embedding search (backtracking with degree pruning), verification, and
    greedy edge-disjoint packing. *)

(** A pattern graph on vertices [0 .. vertices-1].  Patterns should list
    well-connected vertices first (the built-ins do); embeddings are
    not-necessarily-induced subgraph copies. *)
type pattern = { name : string; vertices : int; edges : (int * int) list }

val triangle : pattern
val four_cycle : pattern
val four_clique : pattern
val four_path : pattern
val diamond : pattern
val five_cycle : pattern

(** Degree of a vertex within the pattern. *)
val degree_in_pattern : pattern -> int -> int

(** An embedding [a] (with [a.(pattern vertex) = graph vertex]) if one
    exists. *)
val find : Graph.t -> pattern -> int array option

val contains : Graph.t -> pattern -> bool

val is_free : Graph.t -> pattern -> bool

(** Does the assignment really embed the pattern (injective, all pattern
    edges present)?  Referees verify candidate outputs with this to stay
    one-sided. *)
val is_embedding : Graph.t -> pattern -> int array -> bool

(** Greedy edge-disjoint packing of pattern copies; certifies farness from
    H-freeness as triangle packings do. *)
val greedy_packing : Graph.t -> pattern -> int array list
