(** Degree bucketing and the input analysis of §3.2 (Definitions 4--8,
    Lemmas 3.4--3.13).

    Buckets are indexed by powers of three, as in Algorithm 2: bucket [i]
    (i >= 0) holds the vertices of degree in [3^i, 3^{i+1}); isolated vertices
    belong to no bucket.  The module computes, for a concrete graph, every
    quantity the protocol's analysis reasons about — disjoint triangle-vee
    counts, full vertices, full buckets, B_min, and the degree window
    [d_l, d_h] — so the lemmas can be checked instance-by-instance and so the
    unrestricted protocol's tests can cross-validate sampling behaviour. *)

let rec log3_floor d = if d < 3 then 0 else 1 + log3_floor (d / 3)

(** Bucket index of a positive degree. *)
let index_of_degree d =
  if d <= 0 then invalid_arg "Bucket.index_of_degree: nonpositive degree";
  log3_floor d

let d_minus i = int_of_float (Float.pow 3.0 (float_of_int i))
let d_plus i = int_of_float (Float.pow 3.0 (float_of_int (i + 1)))

(** Number of bucket indices needed for an n-vertex graph. *)
let count ~n = 1 + log3_floor (max 1 (n - 1))

(** [members g] returns an array mapping bucket index to vertex list. *)
let members g =
  let n = Graph.n g in
  let buckets = Array.make (count ~n) [] in
  for v = n - 1 downto 0 do
    let d = Graph.degree g v in
    if d > 0 then begin
      let i = index_of_degree d in
      buckets.(i) <- v :: buckets.(i)
    end
  done;
  buckets

(** ǫ-dependent full-vertex threshold (Definition 5): v is full when at least
    an ǫ/(12·log n) fraction of its incident edges form disjoint vees. *)
let full_vertex_threshold ~n ~eps =
  eps /. (12.0 *. Float.max 1.0 (Tfree_util.Bits.log2 (float_of_int (max 2 n))))

let is_full_vertex g ~eps v =
  let d = Graph.degree g v in
  d > 0
  && begin
       (* A vee consumes two incident edges, so the edge fraction covered by
          the matching is 2·|matching| / d. *)
       let vees = Triangle.count_disjoint_vees_at g v in
       float_of_int (2 * vees) >= full_vertex_threshold ~n:(Graph.n g) ~eps *. float_of_int d
     end

let full_vertices g ~eps =
  List.filter (is_full_vertex g ~eps) (List.init (Graph.n g) (fun v -> v))

(** Disjoint triangle-vees sourced in the bucket, per the paper's notion of
    disjointness (edge-disjoint or different source). *)
let disjoint_vees_in g vs =
  List.fold_left (fun acc v -> acc + Triangle.count_disjoint_vees_at g v) 0 vs

(** Full-bucket threshold (Definition 4): ǫ·n·d / (2·log n) disjoint vees. *)
let full_bucket_threshold g ~eps =
  let n = float_of_int (Graph.n g) in
  let d = Graph.avg_degree g in
  eps *. n *. d /. (2.0 *. Float.max 1.0 (Tfree_util.Bits.log2 (Float.max 2.0 n)))

let is_full_bucket g ~eps vs =
  float_of_int (disjoint_vees_in g vs) >= full_bucket_threshold g ~eps

(** Index of the lowest-degree full bucket, if any (B_min, Definition 4). *)
let b_min g ~eps =
  let bs = members g in
  let rec scan i =
    if i >= Array.length bs then None
    else if bs.(i) <> [] && is_full_bucket g ~eps bs.(i) then Some i
    else scan (i + 1)
  in
  scan 0

(** Degree window of §3.2: d_l = ǫ·d / (2 log n), d_h = sqrt(n·d/ǫ)
    (Definitions 7 and 8). *)
let degree_window g ~eps =
  let n = float_of_int (Graph.n g) in
  let d = Graph.avg_degree g in
  let logn = Float.max 1.0 (Tfree_util.Bits.log2 (Float.max 2.0 n)) in
  let dl = eps *. d /. (2.0 *. logn) in
  let dh = sqrt (n *. d /. eps) in
  (dl, dh)

(** Membership test for the player-side suspected bucket B̃ʲᵢ of §3.3:
    player j suspects v is in bucket i when 3^i/k <= d_j(v) <= 3^{i+1}. *)
let suspects ~k ~i dj_v =
  dj_v > 0
  && float_of_int dj_v >= float_of_int (d_minus i) /. float_of_int k
  && dj_v <= d_plus i
