(** Certified bounds on the distance to triangle-freeness (the exact distance
    is NP-hard): a packing lower bound and a greedy hitting-set upper bound.
    A graph is ǫ-far when at least ǫ·m edge removals are needed (§2). *)

(** Removals forced by the greedy edge-disjoint packing (lower bound). *)
val removal_lower_bound : Graph.t -> int

(** Size of a greedy triangle-hitting edge set (upper bound). *)
val removal_upper_bound : Graph.t -> int

(** Is the graph certifiably ǫ-far?  [false] means "not certified by the
    packing bound", not "close". *)
val certified_far : Graph.t -> eps:float -> bool

(** Is the graph certifiably NOT ǫ-far (greedy removal set below ǫ·m)? *)
val certified_close : Graph.t -> eps:float -> bool

(** Best-known farness interval [lo, hi], as fractions of m. *)
val farness_interval : Graph.t -> float * float
