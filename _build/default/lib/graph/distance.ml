(** Distance to triangle-freeness.

    A graph is ǫ-far from triangle-free when at least ǫ·m edges must be
    removed to destroy every triangle.  Computing that distance exactly is
    NP-hard in general, but the reproduction only ever needs certified
    bounds:

    - {b lower bound}: any edge-disjoint triangle packing of size t forces at
      least t removals (each packed triangle loses >= 1 private edge);
    - {b upper bound}: any hitting set of edges that meets all triangles is a
      valid removal set; we take the greedy one.

    Generators plant instances whose farness is known by construction; these
    bounds serve as independent verification in tests and experiments. *)

(** Removals forced by the greedy packing. *)
let removal_lower_bound g = List.length (Triangle.greedy_packing g)

(** Greedy hitting set: repeatedly delete the edge participating in the most
    remaining triangles.  Returns the number of edges removed. *)
let removal_upper_bound g =
  let rec loop g removed =
    match Triangle.find g with
    | None -> removed
    | Some _ ->
        (* Count triangle participation per edge, remove the max. *)
        let counts : (Graph.edge, int ref) Hashtbl.t = Hashtbl.create 64 in
        let bump e =
          match Hashtbl.find_opt counts e with
          | Some r -> incr r
          | None -> Hashtbl.add counts e (ref 1)
        in
        Triangle.iter g (fun a b c ->
            bump (Graph.normalize_edge (a, b));
            bump (Graph.normalize_edge (b, c));
            bump (Graph.normalize_edge (a, c)));
        let best =
          Hashtbl.fold
            (fun e r acc ->
              match acc with
              | Some (_, n) when n >= !r -> acc
              | _ -> Some (e, !r))
            counts None
        in
        (match best with
        | None -> removed
        | Some ((u, v), _) -> loop (Graph.filter_edges g (fun a b -> not (a = u && b = v))) (removed + 1))
  in
  loop g 0

(** Certified check that [g] is ǫ-far: the packing lower bound alone
    suffices.  [false] means "not certified", not "close". *)
let certified_far g ~eps =
  float_of_int (removal_lower_bound g) >= eps *. float_of_int (Graph.m g)

(** Certified check that removing fewer than ǫ·m edges suffices, i.e. [g] is
    certainly NOT ǫ-far. *)
let certified_close g ~eps = float_of_int (removal_upper_bound g) < eps *. float_of_int (Graph.m g)

(** Best-known farness interval [lo, hi] as fractions of m. *)
let farness_interval g =
  let m = float_of_int (max 1 (Graph.m g)) in
  (float_of_int (removal_lower_bound g) /. m, float_of_int (removal_upper_bound g) /. m)
