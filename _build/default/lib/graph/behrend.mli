(** Behrend graphs — the triangle-removal-lemma instances §5 expects
    dense-regime lower bounds to need: Θ(1)-far from triangle-free with the
    minimum possible triangle count (every edge in exactly one triangle). *)

(** The largest spherical shell of {0..base-1}^digits encoded in radix
    2·base: a 3-AP-free subset of [(2·base)^digits].
    @raise Invalid_argument for base < 2 or digits < 1. *)
val ap_free_set : base:int -> digits:int -> int list

(** O(|S|²) check for non-trivial 3-term arithmetic progressions. *)
val is_ap_free : int list -> bool

type t = {
  graph : Graph.t;
  m_param : int;  (** M: the part-size parameter (parts M, 2M, 3M) *)
  set_size : int;  (** |S| *)
  planted : int;  (** M·|S| — the complete, edge-disjoint triangle set *)
}

(** The tripartite Behrend graph of a 3-AP-free set over [M]: 6·M vertices,
    3·M·|S| edges, exactly M·|S| pairwise edge-disjoint triangles.
    @raise Invalid_argument when the set leaves [0, M). *)
val graph_of_set : m_param:int -> int list -> t

(** Instance sized by (base, digits), optionally label-shuffled. *)
val instance : ?rng:Tfree_util.Rng.t -> base:int -> digits:int -> unit -> t

(** planted / m — exactly 1/3 by construction. *)
val triangles_per_edge : t -> float
