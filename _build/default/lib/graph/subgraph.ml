(** Small-subgraph containment: patterns, embedding search, and greedy
    edge-disjoint packing — the machinery behind the H-freeness extension
    (§5 suggests "generalizing our techniques for detecting a wider class of
    subgraphs"; [19] studies exactly the 4-vertex patterns below in the
    CONGEST model).

    A pattern is a small graph on vertices [0 .. vertices-1]; [find g
    pattern] searches for a (not necessarily induced) embedding: an injective
    vertex map under which every pattern edge is a graph edge.  Backtracking
    with degree pruning — exponential in the pattern size, linear-ish in the
    graph for the ≤5-vertex patterns used here. *)

type pattern = { name : string; vertices : int; edges : (int * int) list }

let triangle = { name = "K3"; vertices = 3; edges = [ (0, 1); (1, 2); (0, 2) ] }

let four_cycle = { name = "C4"; vertices = 4; edges = [ (0, 1); (1, 2); (2, 3); (0, 3) ] }

let four_clique =
  { name = "K4"; vertices = 4; edges = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] }

let four_path = { name = "P4"; vertices = 4; edges = [ (0, 1); (1, 2); (2, 3) ] }

let diamond =
  { name = "diamond"; vertices = 4; edges = [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ] }

let five_cycle =
  { name = "C5"; vertices = 5; edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] }

(* Pattern-side adjacency and degree, precomputed. *)
let pattern_adj p =
  let adj = Array.make p.vertices [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    p.edges;
  adj

let degree_in_pattern p v = List.length (pattern_adj p).(v)

(** [find g p] returns an embedding as an array [assignment] with
    [assignment.(pattern vertex) = graph vertex], or [None].  The search
    assigns pattern vertices in order, so patterns should list
    well-connected vertices first (all built-in patterns do). *)
let find g p =
  let padj = pattern_adj p in
  let assignment = Array.make p.vertices (-1) in
  let used = Hashtbl.create 8 in
  let n = Graph.n g in
  let consistent pv gv =
    Graph.degree g gv >= List.length padj.(pv)
    && List.for_all
         (fun pu ->
           let gu = assignment.(pu) in
           gu < 0 || Graph.mem_edge g gv gu)
         padj.(pv)
  in
  let rec assign pv =
    if pv >= p.vertices then true
    else begin
      (* Prefer extending from an already-assigned neighbour's adjacency. *)
      let anchored =
        List.find_map (fun pu -> if assignment.(pu) >= 0 then Some assignment.(pu) else None) padj.(pv)
      in
      let candidates =
        match anchored with
        | Some gu -> Array.to_list (Graph.neighbors g gu)
        | None -> List.init n (fun v -> v)
      in
      List.exists
        (fun gv ->
          if (not (Hashtbl.mem used gv)) && consistent pv gv then begin
            assignment.(pv) <- gv;
            Hashtbl.replace used gv ();
            if assign (pv + 1) then true
            else begin
              assignment.(pv) <- -1;
              Hashtbl.remove used gv;
              false
            end
          end
          else false)
        candidates
    end
  in
  if assign 0 then Some (Array.copy assignment) else None

let contains g p = Option.is_some (find g p)

let is_free g p = not (contains g p)

(** Check that [assignment] really embeds [p] in [g] (used to verify
    referee outputs, preserving one-sidedness). *)
let is_embedding g p assignment =
  Array.length assignment = p.vertices
  && Array.for_all (fun v -> v >= 0 && v < Graph.n g) assignment
  && (let distinct = Hashtbl.create 8 in
      Array.for_all
        (fun v ->
          if Hashtbl.mem distinct v then false
          else begin
            Hashtbl.replace distinct v ();
            true
          end)
        assignment)
  && List.for_all (fun (a, b) -> Graph.mem_edge g assignment.(a) assignment.(b)) p.edges

(** Greedy edge-disjoint packing of pattern copies: repeatedly find an
    embedding, remove its edges, recurse.  Its size certifies farness from
    H-freeness exactly as triangle packings do. *)
let greedy_packing g p =
  let rec loop g acc =
    match find g p with
    | None -> List.rev acc
    | Some assignment ->
        let to_remove = Hashtbl.create 8 in
        List.iter
          (fun (a, b) ->
            Hashtbl.replace to_remove (Graph.normalize_edge (assignment.(a), assignment.(b))) ())
          p.edges;
        let g' = Graph.filter_edges g (fun u v -> not (Hashtbl.mem to_remove (u, v))) in
        loop g' (assignment :: acc)
  in
  loop g []
