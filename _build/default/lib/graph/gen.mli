(** Graph generators: every input family used by the paper's analysis and the
    experiments.  [planted_far], [hub_far] and [planted_pattern_far] have
    farness known by construction (their complete triangle / pattern set is
    the planted edge-disjoint family); random families are far w.h.p.
    (Lemma 4.5) and are certified by {!Distance} in tests. *)

open Tfree_util

(** Erdős–Rényi G(n, p). *)
val gnp : Rng.t -> n:int -> p:float -> Graph.t

(** Uniform graph with exactly [m] edges. *)
val gnm : Rng.t -> n:int -> m:int -> Graph.t

(** Tripartite random graph on three parts of [part] vertices (3·part total),
    each cross-part pair an edge iid with probability [p] — the hard
    distribution µ of §4.2.1 when p = γ/√n. *)
val tripartite_gnp : Rng.t -> part:int -> p:float -> Graph.t

(** Triangle-free bipartite noise among the given vertices (split in halves,
    cross pairs iid with probability [p]); returns the edges. *)
val bipartite_noise : Rng.t -> int list -> p:float -> (int * int) list

(** [triangles] vertex-disjoint planted triangles plus ~[noise] bipartite
    edges on the remaining vertices; the triangle set is exactly the planted
    family.  @raise Invalid_argument when 3·triangles > n. *)
val planted_far : Rng.t -> n:int -> triangles:int -> noise:int -> Graph.t

(** The adversarial low-degree instance of §3.4.2: [pairs] edge-disjoint
    triangles all sourced at [hubs] high-degree vertices. *)
val hub_far : Rng.t -> n:int -> hubs:int -> pairs:int -> Graph.t

(** Triangle factors on three parts of [n_part] vertices starting at vertex
    [offset]: [rounds] random tripartite perfect matchings of triangles.
    Returns (edges, lower bound on the edge-disjoint triangle count). *)
val tripartite_planted : Rng.t -> n_part:int -> rounds:int -> int -> (int * int) list * int

(** ǫ-far instance at target average degree [d] (vertex-disjoint planting for
    small d, triangle factors for large d, plus triangle-free noise). *)
val far_with_degree : Rng.t -> n:int -> d:float -> eps:float -> Graph.t

(** [copies] vertex-disjoint copies of [pattern] plus matching noise (which
    contains no copy of any connected pattern on >= 3 vertices).
    @raise Invalid_argument when copies·|V(pattern)| > n. *)
val planted_pattern_far :
  Rng.t -> n:int -> pattern:Subgraph.pattern -> copies:int -> noise:int -> Graph.t

(** [triangles] vertex-disjoint triangles with [extra_degree] distractor
    leaves on every corner: probe-based testers hit a corner's vee with
    probability only ~2/extra_degree²; farness ≈ 1/(3·(extra_degree+1)).
    3·triangles·(1+extra_degree) vertices. *)
val diluted_far : Rng.t -> triangles:int -> extra_degree:int -> Graph.t

(** Triangle-free (bipartite) graph with average degree ≈ d. *)
val free_with_degree : Rng.t -> n:int -> d:float -> Graph.t

(** Lemma 4.17 embedding: pad with isolated vertices up to [n] and shuffle
    labels; triangles and farness-in-edges are preserved.
    @raise Invalid_argument when [n] is smaller than the source. *)
val embed : Rng.t -> Graph.t -> n:int -> Graph.t

val shuffle_labels : Rng.t -> Graph.t -> Graph.t

(** Deterministic small graphs for tests and examples. *)

val complete : n:int -> Graph.t
val cycle : n:int -> Graph.t
val path : n:int -> Graph.t
val star : n:int -> Graph.t
val complete_bipartite : left:int -> right:int -> Graph.t
