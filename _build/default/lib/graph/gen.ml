(** Graph generators: every input family used by the paper's analysis and by
    our experiments.

    Farness guarantees: [planted_far] and [hub_far] produce instances whose
    complete triangle set is the planted edge-disjoint family, so their
    distance to triangle-freeness is exactly the number of planted triangles
    (as a count of forced removals) and ǫ-farness is known by construction.
    Random families ([gnp], [tripartite_gnp]) are far with high probability
    (Lemma 4.5); tests certify them with {!Distance.certified_far}. *)

open Tfree_util

let gnp rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  (* Iterate over the n(n-1)/2 pairs with geometric skips. *)
  let total = n * (n - 1) / 2 in
  let pair_of_index idx =
    (* Row-major enumeration of pairs (u,v), u < v. *)
    let rec find_row u rem =
      let row = n - 1 - u in
      if rem < row then (u, u + 1 + rem) else find_row (u + 1) (rem - row)
    in
    find_row 0 idx
  in
  let selected = Sampling.bernoulli_subset rng total ~p in
  Graph.of_edges ~n (List.map pair_of_index selected)

let gnm rng ~n ~m =
  let total = n * (n - 1) / 2 in
  if m > total then invalid_arg "Gen.gnm: too many edges";
  let pair_of_index idx =
    let rec find_row u rem =
      let row = n - 1 - u in
      if rem < row then (u, u + 1 + rem) else find_row (u + 1) (rem - row)
    in
    find_row 0 idx
  in
  let chosen = Sampling.without_replacement rng total m in
  Graph.of_edges ~n (List.map pair_of_index chosen)

(** Tripartite random graph on parts U, V1, V2 of [part] vertices each (3·part
    total), each cross-part pair an edge iid with probability [p] — the hard
    distribution µ of §4.2.1 when p = γ/√n. *)
let tripartite_gnp rng ~part ~p =
  let n = 3 * part in
  let edges = ref [] in
  let cross offset1 offset2 =
    let total = part * part in
    let selected = Sampling.bernoulli_subset rng total ~p in
    List.iter
      (fun idx ->
        let a = offset1 + (idx / part) and b = offset2 + (idx mod part) in
        edges := (a, b) :: !edges)
      selected
  in
  cross 0 part;
  cross 0 (2 * part);
  cross part (2 * part);
  Graph.of_edges ~n !edges

(** Triangle-free bipartite noise among the given vertices (split in halves,
    each cross pair iid with probability [p]). *)
let bipartite_noise rng vertices ~p =
  let a = Array.of_list vertices in
  let len = Array.length a in
  let half = len / 2 in
  let total = half * (len - half) in
  let selected = Sampling.bernoulli_subset rng total ~p in
  List.map
    (fun idx ->
      let i = idx / (len - half) and j = idx mod (len - half) in
      (a.(i), a.(half + j)))
    selected

(** [planted_far rng ~n ~triangles ~noise] plants [triangles] vertex-disjoint
    triangles on the first 3·triangles vertices and adds ~[noise] bipartite
    (hence triangle-free) edges among the remaining vertices.  The triangle
    set of the result is exactly the planted family, so the graph is
    ǫ-far with ǫ = triangles / m. *)
let planted_far rng ~n ~triangles ~noise =
  if 3 * triangles > n then invalid_arg "Gen.planted_far: too many triangles";
  let tri_edges =
    List.concat_map
      (fun t ->
        let a = (3 * t) and b = (3 * t) + 1 and c = (3 * t) + 2 in
        [ (a, b); (b, c); (a, c) ])
      (List.init triangles (fun t -> t))
  in
  let rest = List.init (n - (3 * triangles)) (fun i -> (3 * triangles) + i) in
  let noise_edges =
    if noise <= 0 || List.length rest < 2 then []
    else begin
      let half = List.length rest / 2 in
      let total = max 1 (half * (List.length rest - half)) in
      bipartite_noise rng rest ~p:(Float.min 1.0 (float_of_int noise /. float_of_int total))
    end
  in
  (* Shuffle labels so structure is not positional. *)
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel (Graph.of_edges ~n (tri_edges @ noise_edges)) perm

(** The adversarial low-degree instance of §3.4.2: [hubs] high-degree vertices
    are the sources of all triangle-vees.  Leaves are grouped in pairs; each
    pair (a, b) attaches to a round-robin hub u with edges {u,a}, {u,b},
    {a,b}, yielding [pairs] edge-disjoint triangles all incident to the small
    hub set.  Average degree is ~6·pairs/n while hub degree is ~2·pairs/hubs. *)
let hub_far rng ~n ~hubs ~pairs =
  if hubs + (2 * pairs) > n then invalid_arg "Gen.hub_far: n too small";
  let edges = ref [] in
  for i = 0 to pairs - 1 do
    let a = hubs + (2 * i) and b = hubs + (2 * i) + 1 in
    let u = i mod hubs in
    edges := (u, a) :: (u, b) :: (a, b) :: !edges
  done;
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel (Graph.of_edges ~n !edges) perm

(** Lemma 4.17 embedding: pad a graph with isolated vertices up to [n] and
    shuffle labels; triangles and farness-in-edges are preserved while the
    average degree drops to 2m/n. *)
let embed rng g ~n =
  let n' = Graph.n g in
  if n < n' then invalid_arg "Gen.embed: target smaller than source";
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel (Graph.of_edges ~n (Graph.edges g)) perm

let shuffle_labels rng g =
  let perm = Array.init (Graph.n g) (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel g perm

(* Small deterministic graphs for tests. *)

let complete ~n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let cycle ~n =
  if n < 3 then invalid_arg "Gen.cycle: n < 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path ~n = Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let star ~n = Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete_bipartite ~left ~right =
  let n = left + right in
  let edges = ref [] in
  for u = 0 to left - 1 do
    for v = left to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

(** [tripartite_planted rng ~n_part ~rounds offset] plants [rounds]
    "triangle factors" on three parts of [n_part] vertices each (vertex ids
    starting at [offset]): round r matches part A to parts B and C by random
    permutations, creating n_part vertex-disjoint triangles per round.
    Rounds reuse vertices, so the number of planted triangles is not bounded
    by n/3 — this is how we reach high average degree while staying ǫ-far.
    Returns (edges, lower bound on the edge-disjoint triangle count); the
    bound discounts every cross-round edge collision conservatively. *)
let tripartite_planted rng ~n_part ~rounds offset =
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create (6 * n_part * rounds) in
  let edges = ref [] in
  let collisions = ref 0 in
  let add u v =
    let e = if u < v then (u, v) else (v, u) in
    if Hashtbl.mem seen e then incr collisions
    else begin
      Hashtbl.replace seen e ();
      edges := e :: !edges
    end
  in
  for _ = 1 to rounds do
    let pi = Array.init n_part (fun i -> i) in
    let sigma = Array.init n_part (fun i -> i) in
    Sampling.shuffle_in_place rng pi;
    Sampling.shuffle_in_place rng sigma;
    for i = 0 to n_part - 1 do
      let a = offset + i
      and b = offset + n_part + pi.(i)
      and c = offset + (2 * n_part) + sigma.(i) in
      add a b;
      add b c;
      add a c
    done
  done;
  (* A colliding edge invalidates at most the two triangles using it. *)
  let disjoint = max 0 ((rounds * n_part) - (2 * !collisions)) in
  (!edges, disjoint)

(** A graph that is ǫ-far by construction at target average degree [d]:
    an ǫ fraction of the m = nd/2 edges comes from planted edge-disjoint
    triangles (vertex-disjoint singles for small d, tripartite triangle
    factors for large d), the rest is bipartite (triangle-free) noise on
    separate vertices.  Triangle structure can only exceed the planted
    family, so the packing bound certifies at least the planted farness. *)
let far_with_degree rng ~n ~d ~eps =
  let m_target = max 3 (int_of_float (float_of_int n *. d /. 2.0)) in
  let triangles = max 1 (int_of_float (Float.ceil (eps *. float_of_int m_target))) in
  if (3 * triangles) + 2 <= n - (n / 4) then begin
    let noise = max 0 (m_target - (3 * triangles)) in
    planted_far rng ~n ~triangles ~noise
  end
  else begin
    (* Dense regime: triangle factors on half the vertices, noise on the rest. *)
    let n_part = max 1 (n / 6) in
    let rounds = max 1 (int_of_float (Float.ceil (float_of_int triangles /. float_of_int n_part))) in
    let tri_edges, _ = tripartite_planted rng ~n_part ~rounds 0 in
    let rest = List.init (n - (3 * n_part)) (fun i -> (3 * n_part) + i) in
    let noise = max 0 (m_target - List.length tri_edges) in
    let noise_edges =
      if noise = 0 || List.length rest < 2 then []
      else begin
        let half = List.length rest / 2 in
        let total = max 1 (half * (List.length rest - half)) in
        bipartite_noise rng rest ~p:(Float.min 1.0 (float_of_int noise /. float_of_int total))
      end
    in
    let perm = Array.init n (fun i -> i) in
    Sampling.shuffle_in_place rng perm;
    Graph.relabel (Graph.of_edges ~n (tri_edges @ noise_edges)) perm
  end

(** [planted_pattern_far rng ~n ~pattern ~copies ~noise] plants [copies]
    vertex-disjoint copies of the pattern and up to [noise] matching edges on
    the remaining vertices.  A matching contains no copy of any connected
    pattern with ≥ 3 vertices, so the packing of pattern copies is exactly the
    planted family: the instance is copies/m-far from pattern-freeness.  Used
    by the H-freeness extension (§5 / [19]-style patterns). *)
let planted_pattern_far rng ~n ~(pattern : Subgraph.pattern) ~copies ~noise =
  let h = pattern.Subgraph.vertices in
  if copies * h > n then invalid_arg "Gen.planted_pattern_far: too many copies";
  let planted =
    List.concat_map
      (fun c ->
        List.map (fun (a, b) -> ((c * h) + a, (c * h) + b)) pattern.Subgraph.edges)
      (List.init copies (fun c -> c))
  in
  let rest = Array.init (n - (copies * h)) (fun i -> (copies * h) + i) in
  Sampling.shuffle_in_place rng rest;
  let max_noise = Array.length rest / 2 in
  let noise_edges =
    List.init (min noise max_noise) (fun i -> (rest.(2 * i), rest.((2 * i) + 1)))
  in
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel (Graph.of_edges ~n (planted @ noise_edges)) perm

(** [diluted_far rng ~triangles ~extra_degree] plants [triangles]
    vertex-disjoint triangles and attaches [extra_degree] fresh leaves to
    every corner, so a corner's random neighbour-pair probe hits its
    triangle-vee with probability only ~2/extra_degree² — the hard regime
    for probe-based testers (farness ≈ 1/(3·(extra_degree+1))).  Returns the
    graph on 3·triangles·(1 + extra_degree) vertices. *)
let diluted_far rng ~triangles ~extra_degree =
  let corners = 3 * triangles in
  let n = corners * (1 + extra_degree) in
  let edges = ref [] in
  for t = 0 to triangles - 1 do
    let a = 3 * t and b = (3 * t) + 1 and c = (3 * t) + 2 in
    edges := (a, b) :: (b, c) :: (a, c) :: !edges
  done;
  let next_leaf = ref corners in
  for corner = 0 to corners - 1 do
    for _ = 1 to extra_degree do
      edges := (corner, !next_leaf) :: !edges;
      incr next_leaf
    done
  done;
  let perm = Array.init n (fun i -> i) in
  Sampling.shuffle_in_place rng perm;
  Graph.relabel (Graph.of_edges ~n !edges) perm

(** Triangle-free graph with average degree ≈ d (bipartite random). *)
let free_with_degree rng ~n ~d =
  let m_target = max 1 (int_of_float (float_of_int n *. d /. 2.0)) in
  let half = n / 2 in
  let total = half * (n - half) in
  let p = Float.min 1.0 (float_of_int m_target /. float_of_int total) in
  let edges = bipartite_noise rng (List.init n (fun i -> i)) ~p in
  Graph.of_edges ~n edges
