(** Centralized traversals used by referees, verifiers and the additional
    property testers. *)

(** Distance array from the source (-1 = unreachable). *)
val bfs : Graph.t -> int -> int array

(** (component label per vertex, number of components). *)
val components : Graph.t -> int array * int

val component_count : Graph.t -> int

val is_connected : Graph.t -> bool

(** Proper 2-coloring when bipartite. *)
val two_color : Graph.t -> int array option

val is_bipartite : Graph.t -> bool

(** An odd cycle (vertex list, consecutive entries and the wrap-around pair
    adjacent) when the graph is not bipartite. *)
val odd_cycle : Graph.t -> int list option
