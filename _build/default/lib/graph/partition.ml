(** Dividing an input graph between k players (§2, "Communication complexity
    of property testing in graphs").

    A partition is an array of k graphs on the same vertex set whose union is
    the input.  The model explicitly allows {e edge duplication} — several
    players may hold the same edge — and gives no locality guarantee (a
    vertex's edges may be spread over all players), so we provide partitioners
    covering the whole spectrum the paper discusses: disjoint random,
    duplicated, endpoint-local, skewed, and the degenerate all-to-one. *)

open Tfree_util

type t = Graph.t array

let k (p : t) = Array.length p

let n (p : t) = if Array.length p = 0 then 0 else Graph.n p.(0)

(** Reassemble the underlying input graph. *)
let union (p : t) = Graph.union_list ~n:(n p) (Array.to_list p)

let player (p : t) j = p.(j)

let of_assignment ~n ~k assign =
  let buckets = Array.make k [] in
  List.iter (fun (j, e) -> buckets.(j) <- e :: buckets.(j)) assign;
  Array.map (fun es -> Graph.of_edges ~n es) buckets

(** Each edge goes to exactly one uniformly random player. *)
let disjoint_random rng ~k g =
  let n = Graph.n g in
  of_assignment ~n ~k (List.map (fun e -> (Rng.int rng k, e)) (Graph.edges g))

(** Each edge goes to one uniform owner, and additionally to every other
    player independently with probability [dup_p] — the duplication regime. *)
let with_duplication rng ~k ~dup_p g =
  let n = Graph.n g in
  let assign =
    List.concat_map
      (fun e ->
        let owner = Rng.int rng k in
        let copies =
          List.filter_map
            (fun j -> if j <> owner && Rng.bool rng ~p:dup_p then Some (j, e) else None)
            (List.init k (fun j -> j))
        in
        (owner, e) :: copies)
      (Graph.edges g)
  in
  of_assignment ~n ~k assign

(** Every player receives the whole graph: worst-case duplication. *)
let replicate ~k g = Array.init k (fun _ -> g)

(** Edge (u, v) assigned to the player owning its lower endpoint (hashed):
    a locality-flavoured partition (closest to CONGEST-style inputs). *)
let by_endpoint_hash rng ~k g =
  let n = Graph.n g in
  let salt = Rng.int rng 1_000_000_007 in
  let owner v = (v + salt) mod k in
  of_assignment ~n ~k (List.map (fun (u, v) -> (owner u, (u, v))) (Graph.edges g))

(** Player 0 receives each edge with probability [bias]; the rest is spread
    uniformly — exercises the "irrelevant player" analysis of §3.4.3. *)
let skewed rng ~k ~bias g =
  let n = Graph.n g in
  let assign =
    List.map
      (fun e ->
        if Rng.bool rng ~p:bias then (0, e)
        else ((1 + Rng.int rng (max 1 (k - 1))), e))
      (Graph.edges g)
  in
  of_assignment ~n ~k assign

let all_to_one ~k g =
  Array.init k (fun j -> if j = 0 then g else Graph.empty ~n:(Graph.n g))

(** Do the players' inputs overlap anywhere? *)
let has_duplication (p : t) =
  let seen : (Graph.edge, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.exists
    (fun g ->
      Graph.fold_edges g ~init:false ~f:(fun acc u v ->
          let e = (u, v) in
          if Hashtbl.mem seen e then true
          else begin
            Hashtbl.replace seen e ();
            acc
          end))
    p
