(** Degree bucketing and the input analysis of §3.2 (Definitions 4–8,
    Lemmas 3.4–3.13).  Bucket [i] holds the vertices of degree in
    [3^i, 3^{i+1}); isolated vertices belong to no bucket. *)

(** Bucket index of a positive degree.
    @raise Invalid_argument on nonpositive degrees. *)
val index_of_degree : int -> int

(** Lower degree bound of bucket [i]: 3^i. *)
val d_minus : int -> int

(** Upper degree bound (exclusive) of bucket [i]: 3^{i+1}. *)
val d_plus : int -> int

(** Number of bucket indices needed for an n-vertex graph. *)
val count : n:int -> int

(** Vertex lists per bucket index. *)
val members : Graph.t -> int list array

(** The full-vertex edge-fraction threshold ǫ/(12·log n) (Definition 5). *)
val full_vertex_threshold : n:int -> eps:float -> float

(** Is at least an ǫ/(12·log n) fraction of v's incident edges covered by
    disjoint vees (Definition 5)? *)
val is_full_vertex : Graph.t -> eps:float -> int -> bool

val full_vertices : Graph.t -> eps:float -> int list

(** Disjoint triangle-vees sourced at the given vertices (the paper's
    disjointness: edge-disjoint or distinct sources). *)
val disjoint_vees_in : Graph.t -> int list -> int

(** The full-bucket threshold ǫ·n·d/(2·log n) (Definition 4). *)
val full_bucket_threshold : Graph.t -> eps:float -> float

val is_full_bucket : Graph.t -> eps:float -> int list -> bool

(** Index of the lowest-degree full bucket, if any (B_min). *)
val b_min : Graph.t -> eps:float -> int option

(** The degree window [d_l, d_h] of Definitions 7–8 within which B_min must
    fall (Lemma 3.12). *)
val degree_window : Graph.t -> eps:float -> float * float

(** Does a player observing local degree [dj_v] suspect bucket [i]
    (membership in B̃ʲᵢ, §3.3): 3^i/k <= dj_v <= 3^{i+1}? *)
val suspects : k:int -> i:int -> int -> bool
