(** Dividing an input graph between k players (§2).  A partition is an array
    of k graphs on the same vertex set whose union is the input; {e edge
    duplication} (several players holding the same edge) is allowed, and no
    locality is guaranteed. *)

type t = Graph.t array

val k : t -> int

(** Vertex count of the underlying graph (0 for zero players). *)
val n : t -> int

(** Reassemble the input graph as the union of all players' edges. *)
val union : t -> Graph.t

val player : t -> int -> Graph.t

(** Each edge to exactly one uniformly random player. *)
val disjoint_random : Tfree_util.Rng.t -> k:int -> Graph.t -> t

(** One uniform owner per edge, plus an independent copy to every other
    player with probability [dup_p] — the duplication regime. *)
val with_duplication : Tfree_util.Rng.t -> k:int -> dup_p:float -> Graph.t -> t

(** Every player holds the whole graph (worst-case duplication). *)
val replicate : k:int -> Graph.t -> t

(** Edge assigned by a hash of its lower endpoint: locality-flavoured. *)
val by_endpoint_hash : Tfree_util.Rng.t -> k:int -> Graph.t -> t

(** Player 0 takes each edge with probability [bias]; the rest spread
    uniformly — exercises the relevant/irrelevant-player analysis (§3.4.3). *)
val skewed : Tfree_util.Rng.t -> k:int -> bias:float -> Graph.t -> t

(** Player 0 holds everything, the others nothing. *)
val all_to_one : k:int -> Graph.t -> t

(** Do any two players share an edge? *)
val has_duplication : t -> bool
