(** Behrend graphs — the instances §5 expects dense-regime lower bounds to
    need ("devising a hard distribution for dense graphs ... will require
    some sophisticated utilization of Behrend graphs [3]").

    Behrend's construction gives a large subset S of [M] free of 3-term
    arithmetic progressions: encode vectors a ∈ {0..base-1}^digits as
    integers in radix 2·base and keep one spherical shell Σaᵢ² = r.  Sums of
    two members never carry between digits, so x + z = 2y lifts to the
    vector equation, and strict convexity of the Euclidean norm forces
    x = z on a shell: no non-trivial 3-AP.

    The graph: tripartite on parts of size M, 2M, 3M with, for every x ∈ [M]
    and s ∈ S, the triangle  a_x — b_{x+s} — c_{x+2s}.  Because S is
    3-AP-free these are the ONLY triangles, and they are pairwise
    edge-disjoint: the graph is 1/3-far from triangle-free (every edge is in
    exactly one triangle) yet its triangle count is minimal for its size —
    the regime where sampling testers are weakest. *)

open Tfree_util

(** The largest spherical shell of {0..base-1}^digits, encoded in radix
    2·base: a 3-AP-free subset of [ (2·base)^digits ]. *)
let ap_free_set ~base ~digits =
  if base < 2 || digits < 1 then invalid_arg "Behrend.ap_free_set: base >= 2, digits >= 1";
  let radix = 2 * base in
  (* Enumerate all digit vectors, bucket by squared norm, keep the largest. *)
  let shells : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let rec enumerate idx value norm =
    if idx >= digits then begin
      match Hashtbl.find_opt shells norm with
      | Some r -> r := value :: !r
      | None -> Hashtbl.add shells norm (ref [ value ])
    end
    else
      for a = 0 to base - 1 do
        enumerate (idx + 1) ((value * radix) + a) (norm + (a * a))
      done
  in
  enumerate 0 0 0;
  let best =
    Hashtbl.fold
      (fun norm r acc ->
        match acc with
        | Some (_, len) when len >= List.length !r -> acc
        | _ -> if norm = 0 then acc else Some (!r, List.length !r))
      shells None
  in
  match best with Some (s, _) -> List.sort compare s | None -> []

(** Is the set free of non-trivial 3-term APs (x + z = 2y)?  O(|S|²) check
    used by the tests. *)
let is_ap_free s =
  let arr = Array.of_list (List.sort_uniq compare s) in
  let mem =
    let tbl = Hashtbl.create (Array.length arr) in
    Array.iter (fun x -> Hashtbl.replace tbl x ()) arr;
    fun x -> Hashtbl.mem tbl x
  in
  let len = Array.length arr in
  let ok = ref true in
  for i = 0 to len - 1 do
    for j = i + 1 to len - 1 do
      (* x = arr(i), z = arr(j); the midpoint must not be a member. *)
      let sum = arr.(i) + arr.(j) in
      if sum mod 2 = 0 && mem (sum / 2) then ok := false
    done
  done;
  !ok

type t = {
  graph : Graph.t;
  m_param : int;  (** M: the part-size parameter *)
  set_size : int;  (** |S| *)
  planted : int;  (** number of (edge-disjoint) triangles: M·|S| *)
}

(* Part offsets: A = [0, M), B = [M, 3M), C = [3M, 6M). *)
let vertex_a ~m_param x = x mod m_param
let vertex_b ~m_param y = m_param + (y mod (2 * m_param))
let vertex_c ~m_param z = (3 * m_param) + (z mod (3 * m_param))

(** Build the Behrend graph for the 3-AP-free set [s] over [M] = [m_param];
    6·M vertices, 3·M·|S| edges, exactly M·|S| triangles, all edge-disjoint
    (1/3-far). *)
let graph_of_set ~m_param s =
  List.iter
    (fun x -> if x < 0 || x >= m_param then invalid_arg "Behrend.graph_of_set: set out of range")
    s;
  let edges = ref [] in
  for x = 0 to m_param - 1 do
    List.iter
      (fun sv ->
        let a = vertex_a ~m_param x
        and b = vertex_b ~m_param (x + sv)
        and c = vertex_c ~m_param (x + (2 * sv)) in
        edges := (a, b) :: (b, c) :: (a, c) :: !edges)
      s
  done;
  {
    graph = Graph.of_edges ~n:(6 * m_param) !edges;
    m_param;
    set_size = List.length s;
    planted = m_param * List.length s;
  }

(** Behrend instance sized by (base, digits); optionally relabelled. *)
let instance ?rng ~base ~digits () =
  let s = ap_free_set ~base ~digits in
  let m_param = (2 * base) * int_of_float (Float.pow (float_of_int (2 * base)) (float_of_int (digits - 1))) in
  let t = graph_of_set ~m_param s in
  match rng with
  | None -> t
  | Some rng ->
      let n = Graph.n t.graph in
      let perm = Array.init n (fun i -> i) in
      Sampling.shuffle_in_place rng perm;
      { t with graph = Graph.relabel t.graph perm }

(** Triangle density per edge-disjoint-triangle "slot": Behrend graphs have
    exactly one triangle per 3 edges and no others — the statistic E20
    contrasts with random far graphs. *)
let triangles_per_edge t =
  float_of_int t.planted /. float_of_int (max 1 (Graph.m t.graph))
