(** Centralized traversals used by referees, verifiers and the additional
    property testers: BFS, connected components, 2-coloring and odd-cycle
    extraction. *)

(** Distance array from [src] (-1 = unreachable). *)
let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  let rec drain () =
    if not (Queue.is_empty q) then begin
      let v = Queue.pop q in
      Array.iter
        (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            Queue.add u q
          end)
        (Graph.neighbors g v);
      drain ()
    end
  in
  drain ();
  dist

(** Component label per vertex (labels are arbitrary distinct ints). *)
let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) < 0 then begin
      let c = !next in
      incr next;
      label.(v) <- c;
      let q = Queue.create () in
      Queue.add v q;
      let rec drain () =
        if not (Queue.is_empty q) then begin
          let x = Queue.pop q in
          Array.iter
            (fun u ->
              if label.(u) < 0 then begin
                label.(u) <- c;
                Queue.add u q
              end)
            (Graph.neighbors g x);
          drain ()
        end
      in
      drain ()
    end
  done;
  (label, !next)

let component_count g = snd (components g)

let is_connected g = Graph.n g <= 1 || component_count g = 1

(** Proper 2-coloring if one exists (bipartite), [None] otherwise. *)
let two_color g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok && color.(v) < 0 then begin
      color.(v) <- 0;
      let q = Queue.create () in
      Queue.add v q;
      let rec drain () =
        if !ok && not (Queue.is_empty q) then begin
          let x = Queue.pop q in
          Array.iter
            (fun u ->
              if color.(u) < 0 then begin
                color.(u) <- 1 - color.(x);
                Queue.add u q
              end
              else if color.(u) = color.(x) then ok := false)
            (Graph.neighbors g x);
          drain ()
        end
      in
      drain ()
    end
  done;
  if !ok then Some color else None

let is_bipartite g = Option.is_some (two_color g)

(** An odd cycle (as a vertex list) when the graph is not bipartite: BFS
    levels plus a same-level edge give paths to the ancestor meeting point. *)
let odd_cycle g =
  match two_color g with
  | Some _ -> None
  | None ->
      let n = Graph.n g in
      let parent = Array.make n (-1) in
      let depth = Array.make n (-1) in
      let result = ref None in
      let rec path_to_root v acc = if v < 0 then acc else path_to_root parent.(v) (v :: acc) in
      for root = 0 to n - 1 do
        if !result = None && depth.(root) < 0 then begin
          depth.(root) <- 0;
          let q = Queue.create () in
          Queue.add root q;
          let rec drain () =
            if !result = None && not (Queue.is_empty q) then begin
              let v = Queue.pop q in
              Array.iter
                (fun u ->
                  if !result = None then begin
                    if depth.(u) < 0 then begin
                      depth.(u) <- depth.(v) + 1;
                      parent.(u) <- v;
                      Queue.add u q
                    end
                    else if depth.(u) mod 2 = depth.(v) mod 2 then begin
                      (* same parity: the tree paths + edge (v,u) close an
                         odd cycle; trim the common prefix from the root. *)
                      let pv = path_to_root v [] and pu = path_to_root u [] in
                      let rec trim a b =
                        match (a, b) with
                        | x :: (x' :: _ as a'), y :: (y' :: _ as b') when x = y && x' = y' -> trim a' b'
                        | _ -> (a, b)
                      in
                      let pv, pu = trim pv pu in
                      result := Some (List.rev_append pv (List.tl pu))
                    end
                  end)
                (Graph.neighbors g v);
              drain ()
            end
          in
          drain ()
        end
      done;
      !result
