type t = { n : int; adj : int array array; m : int }

type edge = int * int

let normalize_edge (u, v) = if u <= v then (u, v) else (v, u)

let check_vertex n v =
  if v < 0 || v >= n then invalid_arg (Printf.sprintf "Graph: vertex %d out of range [0,%d)" v n)

let of_edges ~n edges =
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u <> v then begin
        let u, v = normalize_edge (u, v) in
        buckets.(u) <- v :: buckets.(u);
        buckets.(v) <- u :: buckets.(v)
      end)
    edges;
  let dedup_sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    let len = Array.length a in
    if len = 0 then [||]
    else begin
      let out = Array.make len a.(0) in
      let k = ref 1 in
      for i = 1 to len - 1 do
        if a.(i) <> a.(i - 1) then begin
          out.(!k) <- a.(i);
          incr k
        end
      done;
      Array.sub out 0 !k
    end
  in
  let adj = Array.map dedup_sorted buckets in
  let deg_sum = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj in
  { n; adj; m = deg_sum / 2 }

let empty ~n = { n; adj = Array.make n [||]; m = 0 }

let n g = g.n
let m g = g.m

let avg_degree g = if g.n = 0 then 0.0 else 2.0 *. float_of_int g.m /. float_of_int g.n

let degree g v =
  check_vertex g.n v;
  Array.length g.adj.(v)

let neighbors g v =
  check_vertex g.n v;
  g.adj.(v)

(* Binary search in a sorted adjacency array. *)
let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      let y = a.(mid) in
      if y = x then true else if y < x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length a)

let mem_edge g u v =
  check_vertex g.n u;
  check_vertex g.n v;
  if u = v then false
  else begin
    (* Probe the smaller adjacency list. *)
    let a, x = if degree g u <= degree g v then (g.adj.(u), v) else (g.adj.(v), u) in
    mem_sorted a x
  end

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Graph.union: vertex counts differ";
  of_edges ~n:g1.n (edges g1 @ edges g2)

let union_list ~n gs = of_edges ~n (List.concat_map edges gs)

let induced g vs =
  let keep = Array.make g.n false in
  List.iter (fun v -> check_vertex g.n v; keep.(v) <- true) vs;
  of_edges ~n:g.n (List.filter (fun (u, v) -> keep.(u) && keep.(v)) (edges g))

let filter_edges g f = of_edges ~n:g.n (List.filter (fun (u, v) -> f u v) (edges g))

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: permutation size mismatch";
  of_edges ~n:g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let equal g1 g2 = g1.n = g2.n && g1.m = g2.m && g1.adj = g2.adj

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges g (fun u v -> Format.fprintf fmt "%d-%d@," u v);
  Format.fprintf fmt "@]"
