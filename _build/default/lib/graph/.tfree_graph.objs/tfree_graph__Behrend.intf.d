lib/graph/behrend.mli: Graph Tfree_util
