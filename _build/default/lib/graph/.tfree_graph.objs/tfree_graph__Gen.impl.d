lib/graph/gen.ml: Array Float Graph Hashtbl List Sampling Subgraph Tfree_util
