lib/graph/bucket.ml: Array Float Graph List Tfree_util Triangle
