lib/graph/triangle.mli: Graph
