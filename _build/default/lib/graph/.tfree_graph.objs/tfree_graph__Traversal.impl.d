lib/graph/traversal.ml: Array Graph List Option Queue
