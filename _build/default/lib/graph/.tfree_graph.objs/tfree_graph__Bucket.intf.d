lib/graph/bucket.mli: Graph
