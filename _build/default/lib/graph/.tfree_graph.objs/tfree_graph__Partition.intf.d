lib/graph/partition.mli: Graph Tfree_util
