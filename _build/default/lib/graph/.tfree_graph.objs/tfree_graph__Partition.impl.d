lib/graph/partition.ml: Array Graph Hashtbl List Rng Tfree_util
