lib/graph/behrend.ml: Array Float Graph Hashtbl List Sampling Tfree_util
