lib/graph/gen.mli: Graph Rng Subgraph Tfree_util
