lib/graph/distance.ml: Graph Hashtbl List Triangle
