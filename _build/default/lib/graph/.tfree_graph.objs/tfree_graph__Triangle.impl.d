lib/graph/triangle.ml: Array Graph Hashtbl List Option
