(* Single-pass audit of an edge log, and the §4.2.2 bridge to one-way
   communication.

   Scenario: an append-only log of graph edges too large to store.  A
   single-pass sampler keeps only the edges induced by a pseudorandom vertex
   sample and flags a triangle if the retained subgraph has one — the
   streaming twin of Algorithm 7, with space O~((nd)^{1/3}).

   The same code then runs as a 3-player one-way protocol (Alice, Bob and
   Charlie each hold a segment of the log): the messages are the algorithm's
   state snapshots, so communication = space.  This executable equality is
   exactly the reduction the paper uses to turn its one-way lower bound into
   a streaming space lower bound.

     dune exec examples/streaming_audit.exe *)

open Tfree_util
open Tfree_graph
open Tfree_streaming

let () =
  let rng = Rng.create 31337 in
  let n = 4_000 in
  let d = sqrt (float_of_int n) in
  let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
  Printf.printf "edge log: %d edges over %d vertices (avg degree %.0f)\n" (Graph.m g) n
    (Graph.avg_degree g);

  (* Single-pass audit. *)
  let p = Detector.tuned_p ~n ~d ~eps:0.1 ~c:3.0 in
  let det = Detector.make ~seed:5 ~p in
  let run = Stream_alg.run det ~n (Stream_alg.stream_of_graph rng g) in
  (match run.Stream_alg.result with
  | Some (a, b, c) ->
      Printf.printf "streaming audit: triangle (%d,%d,%d) found, verified %b\n" a b c
        (Triangle.is_triangle g (a, b, c))
  | None -> print_endline "streaming audit: no triangle retained this pass");
  Printf.printf "space used: %d bits for %d streamed edges (%.2f%% of the log)\n"
    run.Stream_alg.space_bits run.Stream_alg.edges_seen
    (100.0 *. float_of_int run.Stream_alg.space_bits
    /. float_of_int (Graph.m g * Tfree_util.Bits.edge ~n));

  (* The bridge: same algorithm as a one-way protocol over three segments. *)
  let parts = Partition.disjoint_random rng ~k:3 g in
  let bridge = Bridge.oneway_of_streaming det ~inputs:parts in
  let alice, bob = bridge.Tfree_streaming.Bridge.message_bits in
  Printf.printf "\none-way protocol from the same algorithm (§4.2.2 reduction):\n";
  Printf.printf "  Alice -> Bob   : %d bits (her state snapshot)\n" alice;
  Printf.printf "  Bob -> Charlie : %d bits\n" bob;
  Printf.printf "  space watermark: %d bits — messages never exceed it: %b\n"
    bridge.Tfree_streaming.Bridge.space_bits
    (alice <= bridge.Tfree_streaming.Bridge.space_bits && bob <= bridge.Tfree_streaming.Bridge.space_bits);
  (match bridge.Tfree_streaming.Bridge.result with
  | Some t -> Printf.printf "  verdict: triangle found, verified %b\n" (Triangle.is_triangle g t)
  | None -> print_endline "  verdict: none found");

  (* Consequence the paper draws: a streaming algorithm with space S yields a
     one-way protocol with messages <= S, so the paper's Ω((nd)^{1/6}) one-way
     bound is also a streaming space bound. *)
  print_endline "\n=> any one-way communication lower bound is a streaming space lower bound."
