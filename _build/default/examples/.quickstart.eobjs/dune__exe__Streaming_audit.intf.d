examples/streaming_audit.mli:
