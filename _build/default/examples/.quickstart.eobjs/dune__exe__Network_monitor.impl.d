examples/network_monitor.ml: Array Cost Gen Graph List Partition Printf Rng Runtime Tfree Tfree_comm Tfree_graph Tfree_util Triangle
