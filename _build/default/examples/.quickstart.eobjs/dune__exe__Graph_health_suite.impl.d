examples/graph_health_suite.ml: Array Bits Cost Gen Graph List Partition Printf Rng Runtime Simultaneous String Subgraph Tfree Tfree_comm Tfree_congest Tfree_graph Tfree_util Triangle
