examples/quickstart.ml: Distance Gen Graph Partition Printf Rng Tfree Tfree_graph Tfree_util
