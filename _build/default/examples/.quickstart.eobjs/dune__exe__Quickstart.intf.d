examples/quickstart.mli:
