examples/fraud_rings.ml: Gen Graph Partition Printf Rng Tfree Tfree_graph Tfree_util Triangle
