examples/graph_health_suite.mli:
