examples/lowerbound_tour.ml: Boolean_matching Budgeted Float Gen Graph Info List Mu_dist Partition Printf Rng Symmetrization Tfree Tfree_graph Tfree_lowerbound Tfree_util Triangle
