examples/streaming_audit.ml: Bridge Detector Gen Graph Partition Printf Rng Stream_alg Tfree_graph Tfree_streaming Tfree_util Triangle
