examples/fraud_rings.mli:
