(* Interactive network monitoring on a blackboard.

   Scenario: k packet brokers each observe a slice of the flow graph of a
   data-center (hosts = vertices, "these two hosts talked" = edges).  The
   operators' war-room channel is a broadcast medium — every message is seen
   by everyone — i.e. the paper's blackboard model.  The monitoring job:

   1. estimate a suspicious host's fan-out without shipping its flow list
      (degree approximation, Theorem 3.1 — exact counting under duplicated
      observations would cost Ω(k·deg));
   2. check reachability from the gateway with a distributed BFS (§3.1);
   3. decide whether the flow graph is triangle-heavy (lateral-movement
      cliques) with the unrestricted tester (§3.3), which on a blackboard
      saves the k-factor on its edge-posting stage (Theorem 3.23).

     dune exec examples/network_monitor.exe *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let () =
  let rng = Rng.create 4096 in
  let n = 3_000 in

  (* Flow graph: background traffic + a lateral-movement cluster. *)
  let background = Gen.free_with_degree rng ~n ~d:4.0 in
  let attack = Gen.hub_far rng ~n ~hubs:3 ~pairs:350 in
  let flows = Graph.union background attack in
  Printf.printf "flow graph: %d hosts, %d edges\n" (Graph.n flows) (Graph.m flows);

  (* Brokers see overlapping slices (mirrored links are seen twice). *)
  let k = 6 in
  let inputs = Partition.with_duplication rng ~k ~dup_p:0.25 flows in
  let rt = Runtime.make ~mode:Runtime.Blackboard ~seed:11 inputs in

  (* 1. Fan-out estimate for the busiest host. *)
  let hot =
    fst
      (List.fold_left
         (fun (bv, bd) v ->
           let d = Graph.degree flows v in
           if d > bd then (v, d) else (bv, bd))
         (0, -1)
         (List.init n (fun v -> v)))
  in
  let before = Cost.total (Runtime.cost rt) in
  let est = Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.1 ~boost:1.0 hot in
  Printf.printf "host %d fan-out: true %d, estimated %d (within 3x), cost %d bits vs >= %d to count exactly\n"
    hot (Graph.degree flows hot) est
    (Cost.total (Runtime.cost rt) - before)
    (k * Graph.degree flows hot);

  (* 2. Distributed BFS from the gateway (host 0). *)
  let dist = Tfree.Blocks.bfs rt 0 in
  let reachable = Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist in
  let diameter_seen = Array.fold_left max 0 dist in
  Printf.printf "BFS from gateway: %d/%d hosts reachable, max hops %d\n" reachable n diameter_seen;

  (* 3. Lateral-movement screen: triangle test on the blackboard. *)
  let params = Tfree.Params.practical in
  let report = Tfree.Tester.unrestricted ~mode:Runtime.Blackboard ~seed:7 params inputs in
  (match report.Tfree.Tester.verdict with
  | Tfree.Tester.Triangle (a, b, c) ->
      Printf.printf "lateral movement suspected: hosts %d-%d-%d form a triangle (verified %b)\n" a b c
        (Triangle.is_triangle flows (a, b, c))
  | Tfree.Tester.Triangle_free -> print_endline "no triangle found");
  Printf.printf "triangle screen cost: %d bits on the blackboard\n" report.Tfree.Tester.bits;
  let coord = Tfree.Tester.unrestricted ~mode:Runtime.Coordinator ~seed:7 params inputs in
  Printf.printf "same screen over private channels: %d bits (blackboard saves %.2fx)\n"
    coord.Tfree.Tester.bits
    (float_of_int coord.Tfree.Tester.bits /. float_of_int (max 1 report.Tfree.Tester.bits))
