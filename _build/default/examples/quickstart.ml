(* Quickstart: build a distributed graph, test it for triangle-freeness with
   every protocol in the library, and compare the communication bills.

     dune exec examples/quickstart.exe *)

open Tfree_util
open Tfree_graph

let describe name (r : Tfree.Tester.report) =
  let verdict =
    match r.Tfree.Tester.verdict with
    | Tfree.Tester.Triangle (a, b, c) -> Printf.sprintf "triangle (%d,%d,%d)" a b c
    | Tfree.Tester.Triangle_free -> "no triangle found"
  in
  Printf.printf "  %-22s %-24s %8d bits  %5d round(s)\n" name verdict r.Tfree.Tester.bits
    r.Tfree.Tester.rounds

let () =
  let rng = Rng.create 2024 in

  (* A 2000-vertex graph, average degree ~6, guaranteed 0.1-far from
     triangle-free by planting edge-disjoint triangles. *)
  let g = Gen.far_with_degree rng ~n:2000 ~d:6.0 ~eps:0.1 in
  Printf.printf "input graph: n=%d m=%d avg degree %.1f (certified %.2f-far)\n" (Graph.n g)
    (Graph.m g) (Graph.avg_degree g)
    (fst (Distance.farness_interval g));

  (* Split the edges across 5 players; ~30%% of edges are duplicated, which
     the protocols must (and do) tolerate. *)
  let inputs = Partition.with_duplication rng ~k:5 ~dup_p:0.3 g in
  Printf.printf "partitioned over k=%d players (duplication: %b)\n\n" (Partition.k inputs)
    (Partition.has_duplication inputs);

  let params = Tfree.Params.practical in
  print_endline "far input (every protocol should find a triangle):";
  describe "unrestricted" (Tfree.Tester.unrestricted ~seed:1 params inputs);
  describe "simultaneous (d known)" (Tfree.Tester.simultaneous ~seed:2 params ~d:(Graph.avg_degree g) inputs);
  describe "simultaneous oblivious" (Tfree.Tester.simultaneous_oblivious ~seed:3 params inputs);
  describe "exact baseline [38]" (Tfree.Tester.exact ~seed:4 inputs);

  (* One-sidedness: on a triangle-free input no protocol ever reports a
     triangle, for any seed. *)
  let free = Gen.free_with_degree rng ~n:2000 ~d:6.0 in
  let free_inputs = Partition.with_duplication rng ~k:5 ~dup_p:0.3 free in
  print_endline "\ntriangle-free input (one-sided error: nothing may be reported):";
  describe "unrestricted" (Tfree.Tester.unrestricted ~seed:1 params free_inputs);
  describe "simultaneous oblivious" (Tfree.Tester.simultaneous_oblivious ~seed:2 params free_inputs)
