(* A tour of the paper's lower-bound machinery (§4), executed.

   Walks through: the hard distribution µ and Lemma 4.5; the information-
   theoretic toolkit (Lemma 4.3); the Boolean-Matching reduction (Theorem
   4.16); the symmetrization lift (Theorem 4.15); and the budget-threshold
   experiment exhibiting the Ω((nd)^{1/3}) shape of Theorem 4.1(2).

     dune exec examples/lowerbound_tour.exe *)

open Tfree_util
open Tfree_graph
open Tfree_lowerbound

let () =
  let rng = Rng.create 1789 in

  (* 1. The hard distribution µ: tripartite, edge probability γ/√n. *)
  print_endline "1. hard distribution µ (§4.2.1) ----------------------------";
  let g, parts = Mu_dist.sample_partition rng ~part:100 ~gamma:2.0 in
  let s = Mu_dist.stats g in
  Printf.printf "   sample: n=%d m=%d, %d triangles, packing %d, certified %.3f-far\n" s.Mu_dist.n
    s.Mu_dist.m s.Mu_dist.triangles s.Mu_dist.disjoint_triangles s.Mu_dist.farness_lb;
  Printf.printf "   players hold: Alice %d, Bob %d, Charlie %d edges (U×V1 / U×V2 / V1×V2)\n"
    (Graph.m (Partition.player parts 0))
    (Graph.m (Partition.player parts 1))
    (Graph.m (Partition.player parts 2));
  let far_frac, normalized = Mu_dist.lemma_4_5_stats rng ~part:80 ~gamma:2.0 ~eps:0.05 ~trials:10 in
  Printf.printf "   Lemma 4.5: %.0f%% of samples certifiably far (needs >= 50%%); packing/n^1.5 = %.3f\n"
    (100.0 *. far_frac) normalized;

  (* 2. Information theory: Lemma 4.3 at a glance. *)
  print_endline "\n2. divergence bound (Lemma 4.3) -----------------------------";
  let q = 0.9 and p = 0.01 in
  Printf.printf "   D(%.2f || %.2f) = %.3f >= q - 2p = %.3f\n" q p (Info.binary_kl ~q ~p)
    (Info.lemma_4_3_bound ~q ~p);

  (* 3. Boolean-Matching reduction (Theorem 4.16). *)
  print_endline "\n3. Boolean-Matching reduction (§4.4) ------------------------";
  let yes = Boolean_matching.generate rng ~n:300 ~target:false in
  let no = Boolean_matching.generate rng ~n:300 ~target:true in
  let gy = Boolean_matching.reduction_graph yes in
  let gn = Boolean_matching.reduction_graph no in
  Printf.printf "   yes-instance: %d vertices, %d edge-disjoint triangles (one per matching row)\n"
    (Graph.n gy)
    (List.length (Triangle.greedy_packing gy));
  Printf.printf "   no-instance : triangle-free = %b\n" (Triangle.is_free gn);
  Printf.printf "   => testing triangle-freeness at d=Θ(1) inherits BM's Ω(√n) one-way bound\n";

  (* 4. Symmetrization (Theorem 4.15). *)
  print_endline "\n4. symmetrization lift (Theorem 4.15) -----------------------";
  let k = 8 in
  let m =
    Symmetrization.measure_identity rng ~k ~trials:80
      ~sample_mu:(Symmetrization.mu_sampler ~part:40 ~gamma:2.0)
      (Tfree.Sim_low.protocol Tfree.Params.practical ~d:8.0)
  in
  Printf.printf "   E|Π'| = %.1f bits, (2/k)·CC(Π) = %.1f bits — identity ratio %.3f\n"
    m.Symmetrization.lhs_mean m.Symmetrization.rhs_mean
    (m.Symmetrization.lhs_mean /. m.Symmetrization.rhs_mean);

  (* 5. Budget threshold: the Ω((nd)^{1/3}) shape. *)
  print_endline "\n5. budget threshold (Theorem 4.1(2) shape) ------------------";
  List.iter
    (fun n ->
      let d = sqrt (float_of_int n) in
      let gen seed =
        let r = Rng.create (90_000 + seed + n) in
        let graph = Gen.far_with_degree r ~n ~d ~eps:0.1 in
        (Partition.disjoint_random r ~k:3 graph, graph)
      in
      match
        Budgeted.threshold_budget ~trials:10 ~gen
          ~protocol_of_budget:(fun b -> Budgeted.sim_high_budgeted ~budget_bits:b ~d)
          ~target:0.6 ~lo:32 ~hi:1_000_000
      with
      | Some (b, rate) ->
          Printf.printf "   n=%5d: success >= 60%% first at budget %6d bits/player (rate %.2f); (nd)^(1/3) = %.0f\n"
            n b rate
            (Float.pow (float_of_int n *. d) (1.0 /. 3.0))
      | None -> Printf.printf "   n=%5d: threshold beyond cap\n" n)
    [ 300; 600; 1200 ]
