(* Fraud-ring screening across regional payment processors.

   Scenario: a payment network's transaction graph (accounts = vertices,
   "money moved between these accounts this week" = edges) is ingested by k
   regional processors.  Collusive "ring" behaviour shows up as triangles of
   mutual transfers; a clean book is triangle-free (the compliance rule bans
   A→B→C→A cycles of mutual dealing).  Regions overlap — a cross-border
   transfer lands at both processors — so the inputs have duplicated edges,
   exactly the paper's duplication regime.

   Headquarters wants to know whether the book is clean or riddled with rings
   (ǫ-far), paying as little backhaul bandwidth as possible, in ONE round of
   reports (processors upload nightly; no interactive back-and-forth).  That
   is precisely the degree-oblivious simultaneous protocol: nobody knows the
   global transaction density in advance.

     dune exec examples/fraud_rings.exe *)

open Tfree_util
open Tfree_graph

let () =
  let rng = Rng.create 77 in
  let n = 5_000 in

  (* The weekly book: mostly legitimate bipartite-ish commerce (consumers x
     merchants, no rings) plus a colluding cluster of rings around a few
     mule accounts — the paper's hub instance (§3.4.2). *)
  let legitimate = Gen.free_with_degree rng ~n ~d:5.0 in
  let rings = Gen.hub_far rng ~n ~hubs:6 ~pairs:600 in
  let book = Graph.union legitimate rings in
  Printf.printf "transaction book: %d accounts, %d edges, avg degree %.1f\n" (Graph.n book)
    (Graph.m book) (Graph.avg_degree book);
  Printf.printf "ground truth: %d disjoint rings planted via %d mule accounts\n\n" 600 6;

  (* Regional ingestion with overlap: each edge lands at the processor owning
     its lower account id, and at a second processor 20%% of the time. *)
  let k = 8 in
  let inputs = Partition.with_duplication rng ~k ~dup_p:0.2 book in

  (* Nightly screening: one simultaneous round, density unknown. *)
  let params = Tfree.Params.practical in
  let report = Tfree.Tester.simultaneous_oblivious ~seed:99 params inputs in
  (match report.Tfree.Tester.verdict with
  | Tfree.Tester.Triangle (a, b, c) ->
      Printf.printf "ALERT: ring detected among accounts %d, %d, %d\n" a b c;
      Printf.printf "verified: %b\n" (Triangle.is_triangle book (a, b, c))
  | Tfree.Tester.Triangle_free -> print_endline "book looks clean tonight (one-sided: no false alarms)");
  Printf.printf "backhaul used: %d bits in %d round\n" report.Tfree.Tester.bits report.Tfree.Tester.rounds;

  (* What the naive pipeline would have uploaded: everything. *)
  let naive = Tfree.Exact_baseline.cost inputs in
  Printf.printf "naive full upload: %d bits  (saving factor %.0fx)\n\n" naive
    (float_of_int naive /. float_of_int (max 1 report.Tfree.Tester.bits));

  (* False-alarm check on a clean book: run 5 independent nights. *)
  let clean_inputs = Partition.with_duplication rng ~k ~dup_p:0.2 legitimate in
  let alarms = ref 0 in
  for night = 1 to 5 do
    match (Tfree.Tester.simultaneous_oblivious ~seed:(1000 + night) params clean_inputs).Tfree.Tester.verdict with
    | Tfree.Tester.Triangle _ -> incr alarms
    | Tfree.Tester.Triangle_free -> ()
  done;
  Printf.printf "clean book, 5 nights: %d false alarms (guaranteed 0 by one-sidedness)\n" !alarms
