(* A full "graph health" audit across every model in the library.

   Scenario: a social platform's follower-overlap graph is sharded across k
   storage nodes.  The trust & safety team runs a nightly audit:

   1. is the graph still in one piece?          (connectivity protocol)
   2. is the user/community split intact?       (bipartiteness protocol)
   3. how much ring structure is there?         (triangle-edge counting)
   4. any 4-cliques (tight collusion cells)?    (H-freeness extension, §5)
   5. and the same triangle screen run INSIDE the network, node-to-node,
      with per-link bandwidth caps               (CONGEST tester, [10])

     dune exec examples/graph_health_suite.exe *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let () =
  let rng = Rng.create 90210 in
  let n = 2_000 in

  (* The platform graph: a large bipartite core (users x communities), plus
     an embedded clique cell and some rings. *)
  let core = Gen.complete_bipartite ~left:40 ~right:40 in
  let core = Gen.embed rng core ~n in
  let rings = Gen.hub_far rng ~n ~hubs:4 ~pairs:160 in
  let cell = Gen.embed rng (Gen.complete ~n:8) ~n in
  let g = Graph.union (Graph.union core rings) cell in
  Printf.printf "platform graph: %d vertices, %d edges\n\n" (Graph.n g) (Graph.m g);

  let k = 6 in
  let inputs = Partition.with_duplication rng ~k ~dup_p:0.25 g in
  let params = Tfree.Params.practical in

  (* 1. connectivity *)
  let rt = Runtime.make ~seed:1 inputs in
  (match Tfree.Prop_protocols.test_connectivity rt params ~key:3 with
  | Tfree.Prop_protocols.Disconnected comp ->
      Printf.printf "1. connectivity: found an isolated cluster of %d accounts\n" (List.length comp)
  | Tfree.Prop_protocols.Connected_looking ->
      print_endline "1. connectivity: no small isolated cluster found");
  Printf.printf "   (%s)\n" (Cost.summary (Runtime.cost rt));

  (* 2. bipartiteness *)
  let rt2 = Runtime.make ~seed:2 inputs in
  (match Tfree.Prop_protocols.test_bipartiteness rt2 params ~key:5 with
  | Tfree.Prop_protocols.Odd_cycle cycle ->
      Printf.printf "2. bipartiteness: violated — odd cycle of length %d (verified edges: %b)\n"
        (List.length cycle)
        (let arr = Array.of_list cycle in
         let len = Array.length arr in
         List.for_all
           (fun i -> Graph.mem_edge g arr.(i) arr.((i + 1) mod len))
           (List.init len (fun i -> i)))
  | Tfree.Prop_protocols.Bipartite_looking -> print_endline "2. bipartiteness: looks intact");

  (* 3. triangle-edge share *)
  let rt3 = Runtime.make ~seed:3 inputs in
  let est = Tfree.Count.estimate_triangle_edge_fraction rt3 ~key:7 ~samples:80 in
  let truth = float_of_int (List.length (Triangle.triangle_edges g)) /. float_of_int (Graph.m g) in
  Printf.printf "3. ring share: ~%.0f%% of edges sit in triangles (sampled %d edges; ground truth %.0f%%)\n"
    (100.0 *. est.Tfree.Count.fraction) est.Tfree.Count.sampled (100.0 *. truth);

  (* 4. 4-clique cells *)
  let d = Graph.avg_degree g in
  let o = Tfree.Sim_subgraph.run ~seed:4 params ~d Subgraph.four_clique inputs in
  (match o.Simultaneous.result with
  | Some a ->
      Printf.printf "4. collusion cells: K4 found on accounts %s (verified %b)\n"
        (String.concat "," (Array.to_list (Array.map string_of_int a)))
        (Subgraph.is_embedding g Subgraph.four_clique a)
  | None -> print_endline "4. collusion cells: no K4 found this pass");
  Printf.printf "   one simultaneous round, %d bits\n" o.Simultaneous.total_bits;

  (* 5. in-network CONGEST screen *)
  let r = Tfree_congest.Triangle_tester.test g ~eps:0.1 ~seed:5 in
  (match r.Tfree_congest.Triangle_tester.triangle with
  | Some (a, b, c) ->
      Printf.printf "5. in-network screen: triangle (%d,%d,%d) after %d rounds (verified %b)\n" a b c
        r.Tfree_congest.Triangle_tester.rounds
        (Triangle.is_triangle g (a, b, c))
  | None -> print_endline "5. in-network screen: nothing found");
  Printf.printf "   max per-link message: %d bits (cap: %d)\n"
    r.Tfree_congest.Triangle_tester.stats.Tfree_congest.Simulator.max_message_bits
    (1 + Bits.vertex ~n)
