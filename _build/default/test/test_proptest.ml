(* Tests for Tfree_proptest: the query-model oracle and the centralized
   testers used as baselines. *)

open Tfree_util
open Tfree_graph
open Tfree_proptest

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_oracle_counts () =
  let g = Gen.complete ~n:5 in
  let o = Query_model.make g in
  ignore (Query_model.edge_query o 0 1);
  ignore (Query_model.edge_query o 0 2);
  ignore (Query_model.degree_query o 0);
  ignore (Query_model.neighbor_query o 0 1);
  checki "edge queries" 2 o.Query_model.edge_queries;
  checki "degree queries" 1 o.Query_model.degree_queries;
  checki "neighbor queries" 1 o.Query_model.neighbor_queries;
  checki "total" 4 (Query_model.total_queries o)

let test_oracle_answers () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2) ] in
  let o = Query_model.make g in
  checkb "edge yes" true (Query_model.edge_query o 0 1);
  checkb "edge no" false (Query_model.edge_query o 1 2);
  checki "degree" 2 (Query_model.degree_query o 0);
  checkb "neighbor 0" true (Query_model.neighbor_query o 0 0 = Some 1);
  checkb "neighbor out of range" true (Query_model.neighbor_query o 0 5 = None)

let test_dense_tester_one_sided () =
  let rng = Rng.create 1 in
  let g = Gen.complete_bipartite ~left:30 ~right:30 in
  match Testers.dense_tester rng (Query_model.make g) ~trials:500 with
  | Testers.Found _ -> Alcotest.fail "dense tester fabricated a triangle"
  | Testers.Not_found_after q -> checkb "queries counted" true (q > 0)

let test_dense_tester_finds_on_dense_far () =
  (* K30: every triple is a triangle; the dense tester finds one fast. *)
  let rng = Rng.create 2 in
  match Testers.dense_tester rng (Query_model.make (Gen.complete ~n:30)) ~trials:200 with
  | Testers.Found t -> checkb "valid" true (Triangle.is_triangle (Gen.complete ~n:30) t)
  | Testers.Not_found_after _ -> Alcotest.fail "should find in K30"

let test_general_tester_one_sided () =
  let rng = Rng.create 3 in
  let g = Gen.free_with_degree rng ~n:200 ~d:6.0 in
  match Testers.general_tester rng (Query_model.make g) ~vertex_trials:200 ~c:2.0 with
  | Testers.Found _ -> Alcotest.fail "general tester fabricated a triangle"
  | Testers.Not_found_after _ -> ()

let test_general_tester_finds_on_planted () =
  let rng = Rng.create 4 in
  let g = Gen.planted_far rng ~n:300 ~triangles:60 ~noise:100 in
  let hits = ref 0 in
  for s = 1 to 10 do
    let r = Rng.create (100 + s) in
    match Testers.general_tester r (Query_model.make g) ~vertex_trials:150 ~c:3.0 with
    | Testers.Found t ->
        checkb "valid" true (Triangle.is_triangle g t);
        incr hits
    | Testers.Not_found_after _ -> ()
  done;
  checkb (Printf.sprintf "hits %d/10" !hits) true (!hits >= 6)

let test_query_counts_grow_with_work () =
  let rng = Rng.create 5 in
  let g = Gen.free_with_degree rng ~n:100 ~d:4.0 in
  let o1 = Query_model.make g and o2 = Query_model.make g in
  ignore (Testers.dense_tester rng o1 ~trials:10);
  ignore (Testers.dense_tester rng o2 ~trials:100);
  checkb "more trials, more queries" true (Query_model.total_queries o2 > Query_model.total_queries o1)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"oracle agrees with graph" ~count:50 (int_range 1 500) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:25 ~p:0.3 in
        let o = Query_model.make g in
        let u = Rng.int rng 25 and v = Rng.int rng 25 in
        (u = v || Query_model.edge_query o u v = Graph.mem_edge g u v)
        && Query_model.degree_query o u = Graph.degree g u);
    Test.make ~name:"testers' witnesses are real" ~count:30 (int_range 1 500) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:40 ~p:0.3 in
        (match Testers.dense_tester rng (Query_model.make g) ~trials:50 with
        | Testers.Found t -> Triangle.is_triangle g t
        | Testers.Not_found_after _ -> true)
        &&
        match Testers.general_tester rng (Query_model.make g) ~vertex_trials:30 ~c:2.0 with
        | Testers.Found t -> Triangle.is_triangle g t
        | Testers.Not_found_after _ -> true);
  ]

let () =
  Alcotest.run "tfree_proptest"
    [
      ( "oracle",
        [
          Alcotest.test_case "counts" `Quick test_oracle_counts;
          Alcotest.test_case "answers" `Quick test_oracle_answers;
        ] );
      ( "testers",
        [
          Alcotest.test_case "dense one-sided" `Quick test_dense_tester_one_sided;
          Alcotest.test_case "dense finds" `Quick test_dense_tester_finds_on_dense_far;
          Alcotest.test_case "general one-sided" `Quick test_general_tester_one_sided;
          Alcotest.test_case "general finds" `Quick test_general_tester_finds_on_planted;
          Alcotest.test_case "query counting" `Quick test_query_counts_grow_with_work;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
