(* Integration tests for the paper's protocols: the unrestricted tester
   (§3.3), the simultaneous testers (§3.4), the degree-oblivious combination,
   and the exact baseline.  The two pillars:

   - one-sided error: NO protocol ever reports a triangle on a triangle-free
     input, for any seed/partition (exhaustively exercised);
   - detection: on ǫ-far inputs each protocol finds a (verified real)
     triangle with probability well above 1-δ after amplification. *)

open Tfree_util
open Tfree_graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params = Tfree.Params.practical

let found (r : Tfree.Tester.report) =
  match r.Tfree.Tester.verdict with Tfree.Tester.Triangle _ -> true | Tfree.Tester.Triangle_free -> false

let witness_ok g (r : Tfree.Tester.report) =
  match r.Tfree.Tester.verdict with
  | Tfree.Tester.Triangle t -> Triangle.is_triangle g t
  | Tfree.Tester.Triangle_free -> true

(* Run [runs] trials and count detections, asserting every witness is real. *)
let detection_rate g _parts runs run_one =
  let ok = ref 0 in
  for s = 1 to runs do
    let r = run_one s in
    checkb "witness is a real triangle" true (witness_ok g r);
    if found r then incr ok
  done;
  float_of_int !ok /. float_of_int runs

let far_fixture ?(n = 900) ?(d = 6.0) ?(k = 4) ?(dup = true) seed =
  let rng = Rng.create seed in
  let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
  let parts =
    if dup then Partition.with_duplication rng ~k ~dup_p:0.3 g else Partition.disjoint_random rng ~k g
  in
  (g, parts)

let free_fixture ?(n = 900) ?(d = 6.0) ?(k = 4) seed =
  let rng = Rng.create seed in
  let g = Gen.free_with_degree rng ~n ~d in
  (g, Partition.with_duplication rng ~k ~dup_p:0.3 g)

(* ------------------------------------------------- one-sidedness (all) *)

let test_one_sided_all_protocols () =
  for s = 1 to 8 do
    let g, parts = free_fixture s in
    checkb "free input" true (Triangle.is_free g);
    checkb "unrestricted never lies" false (found (Tfree.Tester.unrestricted ~seed:s params parts));
    checkb "sim never lies" false
      (found (Tfree.Tester.simultaneous ~seed:s params ~d:(Graph.avg_degree g) parts));
    checkb "oblivious never lies" false (found (Tfree.Tester.simultaneous_oblivious ~seed:s params parts));
    checkb "exact never lies" false (found (Tfree.Tester.exact ~seed:s parts))
  done

let test_one_sided_dense_free () =
  (* complete bipartite: dense and triangle-free *)
  let g = Gen.complete_bipartite ~left:60 ~right:60 in
  let rng = Rng.create 5 in
  let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.5 g in
  for s = 1 to 5 do
    checkb "sim high never lies" false
      (found (Tfree.Tester.simultaneous ~seed:s params ~d:(Graph.avg_degree g) parts));
    checkb "unrestricted never lies" false (found (Tfree.Tester.unrestricted ~seed:s params parts))
  done

(* ----------------------------------------------------------- detection *)

let test_unrestricted_detects () =
  let g, parts = far_fixture 11 in
  let rate = detection_rate g parts 10 (fun s -> Tfree.Tester.unrestricted ~seed:s params parts) in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.8)

let test_unrestricted_detects_without_duplication () =
  let g, parts = far_fixture ~dup:false 12 in
  let rate = detection_rate g parts 10 (fun s -> Tfree.Tester.unrestricted ~seed:s params parts) in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.8)

let test_sim_low_detects () =
  let g, parts = far_fixture 13 in
  let rate =
    detection_rate g parts 20 (fun s ->
        Tfree.Tester.simultaneous ~seed:s params ~d:(Graph.avg_degree g) parts)
  in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.6)

let test_sim_high_detects () =
  let g, parts = far_fixture ~n:500 ~d:50.0 14 in
  let rate =
    detection_rate g parts 20 (fun s ->
        Tfree.Tester.simultaneous ~seed:s params ~d:(Graph.avg_degree g) parts)
  in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.6)

let test_sim_oblivious_detects_low () =
  let g, parts = far_fixture 15 in
  let rate =
    detection_rate g parts 15 (fun s -> Tfree.Tester.simultaneous_oblivious ~seed:s params parts)
  in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.7)

let test_sim_oblivious_detects_high () =
  let g, parts = far_fixture ~n:500 ~d:50.0 16 in
  let rate =
    detection_rate g parts 15 (fun s -> Tfree.Tester.simultaneous_oblivious ~seed:s params parts)
  in
  checkb (Printf.sprintf "rate %.2f" rate) true (rate >= 0.7)

let test_detection_on_hub_instance () =
  (* The adversarial instance of §3.4.2: all triangles on few high-degree
     hubs.  Sim_low's S-set targets exactly this. *)
  let rng = Rng.create 17 in
  let g = Gen.hub_far rng ~n:1200 ~hubs:5 ~pairs:300 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let rate =
    detection_rate g parts 20 (fun s ->
        Tfree.Tester.simultaneous ~seed:s params ~d:(Graph.avg_degree g) parts)
  in
  checkb (Printf.sprintf "hub rate %.2f" rate) true (rate >= 0.55);
  let rate_u = detection_rate g parts 8 (fun s -> Tfree.Tester.unrestricted ~seed:s params parts) in
  checkb (Printf.sprintf "unrestricted hub rate %.2f" rate_u) true (rate_u >= 0.75)

let test_detection_with_skewed_partition () =
  let rng = Rng.create 18 in
  let g = Gen.far_with_degree rng ~n:900 ~d:6.0 ~eps:0.1 in
  let parts = Partition.skewed rng ~k:5 ~bias:0.85 g in
  let rate =
    detection_rate g parts 15 (fun s -> Tfree.Tester.simultaneous_oblivious ~seed:s params parts)
  in
  checkb (Printf.sprintf "skewed rate %.2f" rate) true (rate >= 0.6)

let test_amplification () =
  let g, parts = far_fixture 19 in
  ignore g;
  let r =
    Tfree.Tester.amplify ~reps:5 ~seed:100 (fun ~seed ->
        Tfree.Tester.simultaneous ~seed params ~d:(Graph.avg_degree g) parts)
  in
  checkb "amplified run detects" true (found r)

(* ------------------------------------------------------- cost structure *)

let test_simultaneous_is_one_round () =
  let g, parts = far_fixture 20 in
  let r = Tfree.Tester.simultaneous ~seed:1 params ~d:(Graph.avg_degree g) parts in
  checki "one round" 1 r.Tfree.Tester.rounds

let test_exact_costs_dominate () =
  let g, parts = far_fixture ~n:2000 ~d:8.0 21 in
  ignore g;
  let exact = Tfree.Tester.exact ~seed:1 parts in
  let sim = Tfree.Tester.simultaneous ~seed:1 params ~d:8.0 parts in
  checkb "testing is cheaper than exact" true (sim.Tfree.Tester.bits < exact.Tfree.Tester.bits / 2)

let test_exact_always_correct () =
  for s = 1 to 5 do
    let g, parts = far_fixture (30 + s) in
    let r = Tfree.Tester.exact ~seed:s parts in
    checkb "exact finds on far input" true (found r);
    checkb "witness real" true (witness_ok g r)
  done

let test_blackboard_cheaper () =
  let _, parts = far_fixture 22 in
  let rc = Tfree.Tester.unrestricted ~mode:Tfree_comm.Runtime.Coordinator ~seed:3 params parts in
  let rb = Tfree.Tester.unrestricted ~mode:Tfree_comm.Runtime.Blackboard ~seed:3 params parts in
  checkb "blackboard <= coordinator" true (rb.Tfree.Tester.bits <= rc.Tfree.Tester.bits)

let test_sim_caps_respected () =
  (* per-player message of capped sim_low never exceeds cap·edge_bits + slack *)
  let g, parts = far_fixture ~n:1200 ~d:10.0 23 in
  let d = Graph.avg_degree g in
  let outcome = Tfree.Sim_low.run ~seed:4 params ~d parts in
  let cap = Tfree.Sim_low.edge_cap params ~n:1200 ~d in
  Array.iter
    (fun bits ->
      checkb "per-player cap" true (bits <= (cap * Tfree_util.Bits.edge ~n:1200) + 64))
    outcome.Tfree_comm.Simultaneous.per_player_bits

let test_sim_high_caps_respected () =
  let g, parts = far_fixture ~n:600 ~d:60.0 24 in
  let d = Graph.avg_degree g in
  let outcome = Tfree.Sim_high.run ~seed:4 params ~d parts in
  let s = Tfree.Sim_high.sample_size params ~n:600 ~d in
  let cap = Tfree.Sim_high.edge_cap params ~n:600 ~d ~s in
  Array.iter
    (fun bits -> checkb "per-player cap" true (bits <= (cap * Tfree_util.Bits.edge ~n:600) + 64))
    outcome.Tfree_comm.Simultaneous.per_player_bits

let test_unrestricted_stats_populated () =
  let _, parts = far_fixture 25 in
  let rt = Tfree_comm.Runtime.make ~seed:9 parts in
  let result, stats = Tfree.Unrestricted.find_triangle rt params in
  checkb "tried at least one bucket" true (stats.Tfree.Unrestricted.buckets_tried >= 1);
  match result with
  | Some t -> checkb "real" true (Triangle.is_triangle (Partition.union parts) t)
  | None -> ()

let test_empty_input_no_crash () =
  let parts = Array.make 3 (Graph.empty ~n:50) in
  let r = Tfree.Tester.unrestricted ~seed:1 params parts in
  checkb "no triangle in empty graph" false (found r);
  let r2 = Tfree.Tester.simultaneous_oblivious ~seed:1 params parts in
  checkb "sim oblivious empty" false (found r2);
  let r3 = Tfree.Tester.exact ~seed:1 parts in
  checkb "exact empty" false (found r3)

let test_single_player () =
  let rng = Rng.create 26 in
  let g = Gen.far_with_degree rng ~n:400 ~d:5.0 ~eps:0.1 in
  let parts = Partition.all_to_one ~k:1 g in
  let r = Tfree.Tester.unrestricted ~seed:2 params parts in
  checkb "k=1 works" true (witness_ok g r)

let test_tiny_graph () =
  let g = Gen.complete ~n:3 in
  let rng = Rng.create 27 in
  let parts = Partition.disjoint_random rng ~k:2 g in
  let r = Tfree.Tester.exact ~seed:1 parts in
  checkb "K3 detected by exact" true (found r)

(* -------------------------------------------------- component behaviors *)

let test_sample_uniform_from_btilde_hits_bucket () =
  (* Every sample must come from B̃_i (some player suspects it); and over many
     samples the true bucket members must appear. *)
  let rng = Rng.create 28 in
  let g = Gen.gnp rng ~n:120 ~p:0.1 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let buckets = Bucket.members g in
  let i =
    (* pick a non-empty bucket *)
    let rec first j = if buckets.(j) <> [] then j else first (j + 1) in
    first 0
  in
  let seen = Hashtbl.create 16 in
  for s = 1 to 300 do
    let rt = Tfree_comm.Runtime.make ~seed:s parts in
    match Tfree.Unrestricted.sample_uniform_from_btilde rt ~key:s ~i with
    | Some v ->
        Hashtbl.replace seen v ();
        let suspected =
          Array.exists
            (fun j -> Bucket.suspects ~k:4 ~i (Graph.degree (Partition.player parts j) v))
            (Array.init 4 (fun j -> j))
        in
        checkb "sample is suspected by someone" true suspected
    | None -> Alcotest.fail "bucket is non-empty, B̃ must be too"
  done;
  (* every true bucket member should eventually be sampled *)
  let missing = List.filter (fun v -> not (Hashtbl.mem seen v)) buckets.(i) in
  checkb "true members covered" true (List.length missing <= List.length buckets.(i) / 3)

let test_get_full_candidates_degree_filter () =
  let rng = Rng.create 29 in
  let g = Gen.gnp rng ~n:120 ~p:0.1 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let rt = Tfree_comm.Runtime.make ~seed:7 parts in
  let i = 2 in
  let cands = Tfree.Unrestricted.get_full_candidates rt params ~key:3 ~i in
  List.iter
    (fun (v, d_hat) ->
      checkb "v in range" true (v >= 0 && v < 120);
      let fd = float_of_int d_hat in
      checkb "d_hat within filter window" true
        (fd >= float_of_int (Bucket.d_minus i) /. sqrt 3.0
        && fd <= sqrt 3.0 *. float_of_int (Bucket.d_plus i)))
    cands

let test_sample_edges_returns_neighbors () =
  let rng = Rng.create 30 in
  let g = Gen.hub_far rng ~n:300 ~hubs:2 ~pairs:80 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let rt = Tfree_comm.Runtime.make ~seed:8 parts in
  let v =
    fst
      (List.fold_left
         (fun (bv, bd) u ->
           let d = Graph.degree g u in
           if d > bd then (u, d) else (bv, bd))
         (0, -1)
         (List.init 300 (fun i -> i)))
  in
  let ws = Tfree.Unrestricted.sample_edges rt params ~key:9 v ~d_hat:(Graph.degree g v) in
  List.iter (fun u -> checkb "sampled u is a real neighbor" true (Graph.mem_edge g v u)) ws;
  checkb "nonempty sample for heavy hub" true (List.length ws > 0)

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"one-sided error on arbitrary free graphs" ~count:12
      (pair (int_range 1 10_000) (int_range 2 6))
      (fun (seed, k) ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.free_with_degree rng ~n:200 ~d:4.0 in
        let parts = Partition.with_duplication rng ~k ~dup_p:0.4 g in
        (not (found (Tfree.Tester.unrestricted ~seed params parts)))
        && (not (found (Tfree.Tester.simultaneous_oblivious ~seed params parts)))
        && not (found (Tfree.Tester.exact ~seed parts)));
    Test.make ~name:"witnesses are always real triangles" ~count:12
      (pair (int_range 1 10_000) (int_range 2 6))
      (fun (seed, k) ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.far_with_degree rng ~n:300 ~d:5.0 ~eps:0.1 in
        let parts = Partition.with_duplication rng ~k ~dup_p:0.4 g in
        witness_ok g (Tfree.Tester.unrestricted ~seed params parts)
        && witness_ok g (Tfree.Tester.simultaneous_oblivious ~seed params parts));
    Test.make ~name:"simultaneous cost independent of verdict path" ~count:10 (int_range 1 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.far_with_degree rng ~n:300 ~d:5.0 ~eps:0.1 in
        let parts = Partition.disjoint_random rng ~k:3 g in
        let r = Tfree.Tester.simultaneous ~seed params ~d:(Graph.avg_degree g) parts in
        r.Tfree.Tester.rounds = 1 && r.Tfree.Tester.max_message <= r.Tfree.Tester.bits);
  ]

let () =
  Alcotest.run "tfree_protocols"
    [
      ( "one-sided",
        [
          Alcotest.test_case "all protocols on free inputs" `Slow test_one_sided_all_protocols;
          Alcotest.test_case "dense free inputs" `Quick test_one_sided_dense_free;
        ] );
      ( "detection",
        [
          Alcotest.test_case "unrestricted" `Slow test_unrestricted_detects;
          Alcotest.test_case "unrestricted no-dup" `Slow test_unrestricted_detects_without_duplication;
          Alcotest.test_case "sim low" `Slow test_sim_low_detects;
          Alcotest.test_case "sim high" `Slow test_sim_high_detects;
          Alcotest.test_case "oblivious low" `Slow test_sim_oblivious_detects_low;
          Alcotest.test_case "oblivious high" `Slow test_sim_oblivious_detects_high;
          Alcotest.test_case "hub instance" `Slow test_detection_on_hub_instance;
          Alcotest.test_case "skewed partition" `Slow test_detection_with_skewed_partition;
          Alcotest.test_case "amplification" `Quick test_amplification;
        ] );
      ( "cost",
        [
          Alcotest.test_case "simultaneous one round" `Quick test_simultaneous_is_one_round;
          Alcotest.test_case "exact dominates" `Quick test_exact_costs_dominate;
          Alcotest.test_case "exact correct" `Quick test_exact_always_correct;
          Alcotest.test_case "blackboard cheaper" `Quick test_blackboard_cheaper;
          Alcotest.test_case "sim low caps" `Quick test_sim_caps_respected;
          Alcotest.test_case "sim high caps" `Quick test_sim_high_caps_respected;
          Alcotest.test_case "stats populated" `Quick test_unrestricted_stats_populated;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty input" `Quick test_empty_input_no_crash;
          Alcotest.test_case "single player" `Quick test_single_player;
          Alcotest.test_case "tiny graph" `Quick test_tiny_graph;
        ] );
      ( "components",
        [
          Alcotest.test_case "btilde sampling" `Slow test_sample_uniform_from_btilde_hits_bucket;
          Alcotest.test_case "candidate degree filter" `Quick test_get_full_candidates_degree_filter;
          Alcotest.test_case "sample edges neighbors" `Quick test_sample_edges_returns_neighbors;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
