(* Tests for the §3.1 building blocks and the degree approximation
   (Theorem 3.1 / Lemma 3.2). *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fixture ?(k = 4) ?(dup = true) ?(n = 60) ?(p = 0.12) seed =
  let rng = Rng.create seed in
  let g = Gen.gnp rng ~n ~p in
  let parts =
    if dup then Partition.with_duplication rng ~k ~dup_p:0.4 g
    else Partition.disjoint_random rng ~k g
  in
  (g, parts)

(* ----------------------------------------------------------- query_edge *)

let test_query_edge_positive_negative () =
  let g, parts = fixture 1 in
  let rt = Runtime.make ~seed:1 parts in
  let u, v = List.hd (Graph.edges g) in
  checkb "present edge" true (Tfree.Blocks.query_edge rt (u, v));
  (* find a non-edge *)
  let rec non_edge a b = if Graph.mem_edge g a b || a = b then non_edge a ((b + 1) mod 60) else (a, b) in
  let a, b = non_edge 0 1 in
  checkb "absent edge" false (Tfree.Blocks.query_edge rt (a, b))

let test_query_edge_cost_linear_in_k () =
  let g, parts = fixture ~k:8 2 in
  let rt = Runtime.make ~seed:1 parts in
  let u, v = List.hd (Graph.edges g) in
  ignore (Tfree.Blocks.query_edge rt (u, v));
  (* k response bits + k broadcast bits *)
  checki "O(k) bits" 16 (Cost.total (Runtime.cost rt))

(* -------------------------------------------------- random_incident_edge *)

let test_random_incident_edge_is_real () =
  let g, parts = fixture 3 in
  let rt = Runtime.make ~seed:2 parts in
  let v = fst (List.hd (Graph.edges g)) in
  (match Tfree.Blocks.random_incident_edge rt ~key:5 v with
  | Some (a, b) ->
      checkb "incident to v" true (a = v || b = v);
      checkb "real edge" true (Graph.mem_edge g a b)
  | None -> Alcotest.fail "v has neighbours")

let test_random_incident_edge_isolated () =
  let parts = [| Graph.empty ~n:10; Graph.empty ~n:10 |] in
  let rt = Runtime.make ~seed:2 parts in
  checkb "no edge" true (Tfree.Blocks.random_incident_edge rt ~key:5 3 = None)

let test_random_incident_edge_uniform_despite_duplication () =
  (* Hub 0 with 5 leaves; edge (0,1) replicated to every player, the rest
     held once.  The sampled edge must still be uniform over the 5. *)
  let n = 6 in
  let star = Gen.star ~n in
  let heavy = Graph.of_edges ~n [ (0, 1) ] in
  let parts = [| star; heavy; heavy; heavy |] in
  let counts = Array.make n 0 in
  for s = 1 to 2000 do
    let rt = Runtime.make ~seed:s parts in
    match Tfree.Blocks.random_incident_edge rt ~key:s 0 with
    | Some (a, b) ->
        let other = if a = 0 then b else a in
        counts.(other) <- counts.(other) + 1
    | None -> Alcotest.fail "hub has edges"
  done;
  (* each leaf expected 400; chi-squared with 4 dof, generous threshold *)
  let chi2 = Stats.chi2_uniform (Array.sub counts 1 5) in
  checkb (Printf.sprintf "unbiased (chi2=%.1f)" chi2) true (chi2 < 20.0)

(* ------------------------------------------------------------ random_walk *)

let test_random_walk_follows_edges () =
  let g, parts = fixture 4 in
  let rt = Runtime.make ~seed:3 parts in
  let v = fst (List.hd (Graph.edges g)) in
  let walk = Tfree.Blocks.random_walk rt ~key:6 v ~steps:5 in
  checkb "starts at v" true (List.hd walk = v);
  let rec consecutive = function
    | a :: b :: rest ->
        checkb "walk follows real edges" true (Graph.mem_edge g a b);
        consecutive (b :: rest)
    | _ -> ()
  in
  consecutive walk

let test_random_walk_stops_at_isolated () =
  let parts = [| Graph.of_edges ~n:5 [] |] in
  let rt = Runtime.make ~seed:3 parts in
  Alcotest.(check (list int)) "stays put" [ 2 ] (Tfree.Blocks.random_walk rt ~key:6 2 ~steps:4)

(* ------------------------------------------------------------ random_edge *)

let test_random_edge_is_real () =
  let g, parts = fixture 5 in
  let rt = Runtime.make ~seed:4 parts in
  match Tfree.Blocks.random_edge rt ~key:7 with
  | Some (u, v) -> checkb "real edge" true (Graph.mem_edge g u v)
  | None -> Alcotest.fail "graph has edges"

let test_random_edge_empty_graph () =
  let parts = [| Graph.empty ~n:10; Graph.empty ~n:10 |] in
  let rt = Runtime.make ~seed:4 parts in
  checkb "none" true (Tfree.Blocks.random_edge rt ~key:7 = None)

let test_random_edge_uniform_despite_duplication () =
  (* 4 edges; one replicated everywhere.  Distribution must stay uniform. *)
  let n = 8 in
  let base = Graph.of_edges ~n [ (0, 1); (2, 3); (4, 5); (6, 7) ] in
  let heavy = Graph.of_edges ~n [ (0, 1) ] in
  let parts = [| base; heavy; heavy |] in
  let counts = Hashtbl.create 4 in
  for s = 1 to 2000 do
    let rt = Runtime.make ~seed:(7 * s) parts in
    match Tfree.Blocks.random_edge rt ~key:s with
    | Some e ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt counts e) in
        Hashtbl.replace counts e (cur + 1)
    | None -> Alcotest.fail "edges exist"
  done;
  let arr = Array.of_list (List.map snd (List.of_seq (Hashtbl.to_seq counts))) in
  checki "all four edges appear" 4 (Array.length arr);
  checkb "roughly uniform" true (Stats.chi2_uniform arr < 20.0)

(* ------------------------------------------------------- induced subgraph *)

let test_induced_subgraph_matches_local () =
  let g, parts = fixture 6 in
  let rt = Runtime.make ~seed:5 parts in
  let vs = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let got = Tfree.Blocks.induced_subgraph rt vs in
  checkb "matches centralized induced" true (Graph.equal got (Graph.induced g vs))

(* ---------------------------------------------------------------- BFS *)

let test_bfs_distances () =
  (* path 0-1-2-3-4 plus isolated 5 *)
  let g = Gen.path ~n:5 in
  let g = Graph.of_edges ~n:6 (Graph.edges g) in
  let rng = Rng.create 11 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let rt = Runtime.make ~seed:6 parts in
  let dist = Tfree.Blocks.bfs rt 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; -1 |] dist

let test_bfs_matches_centralized () =
  let g, parts = fixture 7 in
  let rt = Runtime.make ~seed:7 parts in
  let dist = Tfree.Blocks.bfs rt 0 in
  (* centralized BFS *)
  let expect = Array.make (Graph.n g) (-1) in
  expect.(0) <- 0;
  let q = Queue.create () in
  Queue.add 0 q;
  let rec drain () =
    if not (Queue.is_empty q) then begin
      let v = Queue.pop q in
      Array.iter
        (fun u ->
          if expect.(u) < 0 then begin
            expect.(u) <- expect.(v) + 1;
            Queue.add u q
          end)
        (Graph.neighbors g v);
      drain ()
    end
  in
  drain ();
  Alcotest.(check (array int)) "distances agree" expect dist

(* ------------------------------------------------------ degree approx *)

let test_approx_degree_within_factor () =
  let trials = 30 in
  let ok = ref 0 in
  for s = 1 to trials do
    let rng = Rng.create (100 + s) in
    let g = Gen.hub_far rng ~n:300 ~hubs:3 ~pairs:60 in
    let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.4 g in
    let rt = Runtime.make ~seed:s parts in
    (* pick the max-degree vertex (a hub) *)
    let v =
      fst
        (List.fold_left
           (fun (bv, bd) u ->
             let d = Graph.degree g u in
             if d > bd then (u, d) else (bv, bd))
           (0, -1)
           (List.init 300 (fun i -> i)))
    in
    let d = Graph.degree g v in
    let est = Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.05 ~boost:1.0 v in
    let ratio = Float.max (float_of_int est /. float_of_int d) (float_of_int d /. float_of_int est) in
    if ratio <= 3.5 then incr ok
  done;
  checkb (Printf.sprintf "approximation within factor on %d/%d" !ok trials) true (!ok >= trials - 4)

let test_approx_degree_zero () =
  let parts = [| Graph.empty ~n:20; Graph.empty ~n:20 |] in
  let rt = Runtime.make ~seed:1 parts in
  checki "degree 0" 0 (Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.05 ~boost:1.0 3)

let test_approx_degree_cheaper_than_exact_transfer () =
  let rng = Rng.create 200 in
  let g = Gen.hub_far rng ~n:2000 ~hubs:1 ~pairs:900 in
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.5 g in
  let rt = Runtime.make ~seed:1 parts in
  let v =
    fst
      (List.fold_left
         (fun (bv, bd) u ->
           let d = Graph.degree g u in
           if d > bd then (u, d) else (bv, bd))
         (0, -1)
         (List.init 2000 (fun i -> i)))
  in
  ignore (Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.1 ~boost:1.0 v);
  let approx_bits = Cost.total (Runtime.cost rt) in
  (* exact answer under duplication needs Ω(k·d(v)) bits (disjointness) *)
  let exact_bits = 4 * Graph.degree g v in
  checkb
    (Printf.sprintf "approx %d bits < exact %d bits" approx_bits exact_bits)
    true (approx_bits < exact_bits)

let test_approx_nodup_upper_and_ratio () =
  (* Without duplication the estimate never over-counts and is within alpha. *)
  let rng = Rng.create 300 in
  let g = Gen.gnp rng ~n:200 ~p:0.3 in
  let parts = Partition.disjoint_random rng ~k:5 g in
  let rt = Runtime.make ~seed:1 parts in
  for v = 0 to 19 do
    let d = Graph.degree g v in
    let est =
      Tfree.Degree_approx.approx_distinct_nodup rt ~key:1 ~alpha:1.5 ~elements:(fun input ->
          Array.to_list (Graph.neighbors input v))
    in
    checkb "no overcount" true (est <= d);
    checkb "within factor" true (float_of_int d <= 1.5 *. float_of_int (max est 1) || d <= 5)
  done

let test_approx_edge_count () =
  let rng = Rng.create 400 in
  let g = Gen.gnp rng ~n:300 ~p:0.05 in
  let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.3 g in
  let ok = ref 0 in
  for s = 1 to 10 do
    let rt = Runtime.make ~seed:s parts in
    let est = Tfree.Degree_approx.approx_edge_count rt ~key:2 ~alpha:2.0 ~tau:0.05 ~boost:1.0 in
    let m = Graph.m g in
    let ratio = Float.max (float_of_int est /. float_of_int m) (float_of_int m /. float_of_int est) in
    if ratio <= 2.5 then incr ok
  done;
  checkb (Printf.sprintf "edge count approx ok %d/10" !ok) true (!ok >= 8)

let test_msb_index () =
  checki "msb 0" (-1) (Tfree.Degree_approx.msb_index 0);
  checki "msb 1" 0 (Tfree.Degree_approx.msb_index 1);
  checki "msb 2" 1 (Tfree.Degree_approx.msb_index 2);
  checki "msb 255" 7 (Tfree.Degree_approx.msb_index 255);
  checki "msb 256" 8 (Tfree.Degree_approx.msb_index 256)

let test_thresholds_separate () =
  let theta, margin = Tfree.Degree_approx.thresholds ~alpha:3.0 in
  checkb "theta in (0,1)" true (theta > 0.0 && theta < 1.0);
  checkb "positive margin" true (margin > 0.05)


let test_bfs_limited_exhausts_small_component () =
  let g = Graph.of_edges ~n:10 [ (0, 1); (1, 2); (5, 6) ] in
  let rng = Rng.create 44 in
  let parts = Partition.disjoint_random rng ~k:2 g in
  let rt = Runtime.make ~seed:1 parts in
  let comp, exhausted = Tfree.Blocks.bfs_limited rt 5 ~max_vertices:100 in
  checkb "exhausted" true exhausted;
  Alcotest.(check (list int)) "component" [ 5; 6 ] (List.sort compare comp)

let test_bfs_limited_truncates () =
  let g = Gen.path ~n:50 in
  let rng = Rng.create 45 in
  let parts = Partition.disjoint_random rng ~k:2 g in
  let rt = Runtime.make ~seed:1 parts in
  let comp, exhausted = Tfree.Blocks.bfs_limited rt 0 ~max_vertices:5 in
  checkb "not exhausted" false exhausted;
  checkb "bounded work" true (List.length comp <= 12)

let test_bfs_limited_isolated () =
  let parts = [| Graph.empty ~n:5 |] in
  let rt = Runtime.make ~seed:1 parts in
  let comp, exhausted = Tfree.Blocks.bfs_limited rt 3 ~max_vertices:10 in
  checkb "exhausted singleton" true exhausted;
  Alcotest.(check (list int)) "alone" [ 3 ] comp

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"query_edge agrees with union graph" ~count:40
      (pair (int_range 1 500) (int_range 2 20))
      (fun (seed, k) ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:20 ~p:0.3 in
        let parts = Partition.with_duplication rng ~k ~dup_p:0.5 g in
        let rt = Runtime.make ~seed parts in
        let u = Rng.int rng 20 and v = Rng.int rng 20 in
        u = v || Tfree.Blocks.query_edge rt (u, v) = Graph.mem_edge g u v);
    Test.make ~name:"random_edge returns a real edge" ~count:40 (int_range 1 500) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:25 ~p:0.2 in
        let parts = Partition.disjoint_random rng ~k:3 g in
        let rt = Runtime.make ~seed parts in
        match Tfree.Blocks.random_edge rt ~key:seed with
        | Some (u, v) -> Graph.mem_edge g u v
        | None -> Graph.m g = 0);
    Test.make ~name:"induced subgraph matches centralized" ~count:30 (int_range 1 500) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:30 ~p:0.2 in
        let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
        let rt = Runtime.make ~seed parts in
        let vs = Sampling.without_replacement rng 30 10 in
        Graph.equal (Tfree.Blocks.induced_subgraph rt vs) (Graph.induced g vs));
  ]

let () =
  Alcotest.run "tfree_blocks"
    [
      ( "query_edge",
        [
          Alcotest.test_case "positive/negative" `Quick test_query_edge_positive_negative;
          Alcotest.test_case "O(k) cost" `Quick test_query_edge_cost_linear_in_k;
        ] );
      ( "random_incident_edge",
        [
          Alcotest.test_case "real edge" `Quick test_random_incident_edge_is_real;
          Alcotest.test_case "isolated vertex" `Quick test_random_incident_edge_isolated;
          Alcotest.test_case "unbiased under duplication" `Slow
            test_random_incident_edge_uniform_despite_duplication;
        ] );
      ( "random_walk",
        [
          Alcotest.test_case "follows edges" `Quick test_random_walk_follows_edges;
          Alcotest.test_case "stops at isolated" `Quick test_random_walk_stops_at_isolated;
        ] );
      ( "random_edge",
        [
          Alcotest.test_case "real edge" `Quick test_random_edge_is_real;
          Alcotest.test_case "empty graph" `Quick test_random_edge_empty_graph;
          Alcotest.test_case "unbiased under duplication" `Slow test_random_edge_uniform_despite_duplication;
        ] );
      ("induced", [ Alcotest.test_case "matches centralized" `Quick test_induced_subgraph_matches_local ]);
      ( "bfs",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_distances;
          Alcotest.test_case "matches centralized" `Quick test_bfs_matches_centralized;
          Alcotest.test_case "limited exhausts" `Quick test_bfs_limited_exhausts_small_component;
          Alcotest.test_case "limited truncates" `Quick test_bfs_limited_truncates;
          Alcotest.test_case "limited isolated" `Quick test_bfs_limited_isolated;
        ] );
      ( "degree_approx",
        [
          Alcotest.test_case "within factor" `Slow test_approx_degree_within_factor;
          Alcotest.test_case "zero degree" `Quick test_approx_degree_zero;
          Alcotest.test_case "cheaper than exact" `Quick test_approx_degree_cheaper_than_exact_transfer;
          Alcotest.test_case "nodup no overcount" `Quick test_approx_nodup_upper_and_ratio;
          Alcotest.test_case "edge count" `Quick test_approx_edge_count;
          Alcotest.test_case "msb index" `Quick test_msb_index;
          Alcotest.test_case "thresholds" `Quick test_thresholds_separate;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
