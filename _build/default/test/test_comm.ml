(* Tests for Tfree_comm: message accounting, cost ledger, coordinator /
   simultaneous / one-way runtimes. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ Msg *)

let test_msg_bool () = checki "1 bit" 1 (Msg.bits (Msg.bool true))

let test_msg_vertex () =
  checki "log2 1000 = 10" 10 (Msg.bits (Msg.vertex ~n:1000 7));
  checki "round trip" 7 (Option.get (Msg.get_vertex_opt (Msg.vertex_opt ~n:1000 (Some 7))))

let test_msg_vertex_opt () =
  checki "none is 1 bit" 1 (Msg.bits (Msg.vertex_opt ~n:1000 None));
  checki "some is 1+10" 11 (Msg.bits (Msg.vertex_opt ~n:1000 (Some 3)));
  checkb "none round trip" true (Msg.get_vertex_opt (Msg.vertex_opt ~n:1000 None) = None)

let test_msg_edge () =
  checki "edge is 2 vertices" 20 (Msg.bits (Msg.edge ~n:1000 (1, 2)));
  Alcotest.(check (pair int int)) "round trip" (1, 2) (Msg.get_edge (Msg.edge ~n:1000 (1, 2)))

let test_msg_edges_cost () =
  let es = [ (0, 1); (2, 3); (4, 5) ] in
  let m = Msg.edges ~n:1000 es in
  checki "length prefix + 3 edges" (Bits.elias_gamma 3 + (3 * 20)) (Msg.bits m);
  Alcotest.(check (list (pair int int))) "round trip" es (Msg.get_edges m)

let test_msg_empty_edges () =
  checki "empty list costs prefix only" (Bits.elias_gamma 0) (Msg.bits (Msg.edges ~n:1000 []))

let test_msg_vertices () =
  let m = Msg.vertices ~n:64 [ 1; 2; 3 ] in
  checki "cost" (Bits.elias_gamma 3 + (3 * 6)) (Msg.bits m);
  Alcotest.(check (list int)) "round trip" [ 1; 2; 3 ] (Msg.get_vertices m)

let test_msg_int_in () =
  let m = Msg.int_in ~lo:(-1) ~hi:62 5 in
  checki "6 bits" 6 (Msg.bits m);
  checki "value" 5 (Msg.get_int m)

let test_msg_int_in_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Msg.int_in: out of declared range") (fun () ->
      ignore (Msg.int_in ~lo:0 ~hi:3 9))

let test_msg_tuple () =
  let m = Msg.tuple [ Msg.bool true; Msg.vertex ~n:16 3 ] in
  checki "sum of parts" 5 (Msg.bits m);
  match Msg.get_tuple m with
  | [ a; b ] ->
      checkb "bool part" true (Msg.get_bool a);
      checkb "vertex part" true (Msg.get_vertex_opt b = Some 3)
  | _ -> Alcotest.fail "tuple arity"

let test_msg_getter_mismatch () =
  Alcotest.check_raises "wrong getter" (Invalid_argument "Msg.get_bool") (fun () ->
      ignore (Msg.get_bool (Msg.vertex ~n:4 1)))

let test_msg_nat () =
  checki "nat 0" 1 (Msg.bits (Msg.nat 0));
  checki "nat 7" 7 (Msg.bits (Msg.nat 7))

(* ----------------------------------------------------------------- Cost *)

let test_cost_ledger () =
  let c = Cost.create ~k:3 in
  Cost.charge_to_player c 10;
  Cost.charge_from_player c 0 5;
  Cost.charge_from_player c 2 7;
  Cost.next_round c;
  checki "total" 22 (Cost.total c);
  checki "max upload" 7 (Cost.max_player_upload c);
  checki "rounds" 1 c.Cost.rounds;
  checki "messages" 3 c.Cost.messages

(* -------------------------------------------------------------- Runtime *)

let fixture_partition k =
  let rng = Rng.create 99 in
  let g = Gen.gnp rng ~n:50 ~p:0.15 in
  (g, Partition.disjoint_random rng ~k g)

let test_runtime_basic_shape () =
  let _, parts = fixture_partition 4 in
  let rt = Runtime.make ~seed:1 parts in
  checki "k" 4 (Runtime.k rt);
  checki "n" 50 (Runtime.n rt)

let test_runtime_ask_all_costs () =
  let _, parts = fixture_partition 4 in
  let rt = Runtime.make ~seed:1 parts in
  let _ = Runtime.ask_all rt ~req:Msg.empty (fun _ _ -> Msg.bool true) in
  checki "k response bits" 4 (Cost.total (Runtime.cost rt));
  checki "one round" 1 (Runtime.cost rt).Cost.rounds

let test_runtime_ask_all_request_charged_per_player () =
  let _, parts = fixture_partition 4 in
  let rt = Runtime.make ~seed:1 parts in
  let _ = Runtime.ask_all rt ~req:(Msg.vertex ~n:50 3) (fun _ _ -> Msg.bool true) in
  (* vertex of n=50 is 6 bits; coordinator pays 4×6, players 4×1 *)
  checki "cost" ((4 * 6) + 4) (Cost.total (Runtime.cost rt))

let test_runtime_blackboard_broadcast_once () =
  let _, parts = fixture_partition 4 in
  let rt_c = Runtime.make ~mode:Runtime.Coordinator ~seed:1 parts in
  let rt_b = Runtime.make ~mode:Runtime.Blackboard ~seed:1 parts in
  Runtime.tell_all rt_c (Msg.vertices ~n:50 [ 1; 2; 3 ]);
  Runtime.tell_all rt_b (Msg.vertices ~n:50 [ 1; 2; 3 ]);
  checki "coordinator pays k-fold" (4 * Cost.total (Runtime.cost rt_b)) (Cost.total (Runtime.cost rt_c))

let test_runtime_query_single_player () =
  let _, parts = fixture_partition 3 in
  let rt = Runtime.make ~seed:1 parts in
  let reply = Runtime.query rt 1 ~req:(Msg.bool true) (fun input -> Msg.nat (Graph.m input)) in
  checki "reply value" (Graph.m (Partition.player parts 1)) (Msg.get_int reply);
  checkb "both directions charged" true (Cost.total (Runtime.cost rt) > 1)

let test_runtime_any_player () =
  let g, parts = fixture_partition 3 in
  let rt = Runtime.make ~seed:1 parts in
  let u, v = List.hd (Graph.edges g) in
  checkb "edge found" true (Runtime.any_player rt (fun input -> Graph.mem_edge input u v));
  checkb "absent everywhere" false (Runtime.any_player rt (fun _ -> false))

let test_runtime_shared_rng_agreement () =
  let _, parts = fixture_partition 3 in
  let rt = Runtime.make ~seed:5 parts in
  let r1 = Runtime.shared_rng rt ~key:9 and r2 = Runtime.shared_rng rt ~key:9 in
  Alcotest.check Alcotest.int64 "same stream" (Rng.next_int64 r1) (Rng.next_int64 r2)

let test_runtime_private_rngs_differ () =
  let _, parts = fixture_partition 3 in
  let rt = Runtime.make ~seed:5 parts in
  checkb "players have distinct private randomness" true
    (Rng.next_int64 (Runtime.private_rng rt 0) <> Rng.next_int64 (Runtime.private_rng rt 1))

(* --------------------------------------------------------- Simultaneous *)

let count_protocol : int Simultaneous.protocol =
  {
    Simultaneous.player =
      (fun ctx _j input ->
        Msg.vertices ~n:ctx.Simultaneous.n
          (List.filteri (fun i _ -> i < 3) (List.map fst (Graph.edges input))));
    referee =
      (fun _ msgs -> Array.fold_left (fun acc m -> acc + List.length (Msg.get_vertices m)) 0 msgs);
  }

let test_simultaneous_costs_and_result () =
  let _, parts = fixture_partition 4 in
  let outcome = Simultaneous.run ~seed:3 count_protocol parts in
  checkb "result computed" true (outcome.Simultaneous.result >= 0);
  checki "total = sum of per player" outcome.Simultaneous.total_bits
    (Array.fold_left ( + ) 0 outcome.Simultaneous.per_player_bits);
  checkb "max <= total" true (outcome.Simultaneous.max_message_bits <= outcome.Simultaneous.total_bits)

let test_simultaneous_shared_rng_same_for_all () =
  let _, parts = fixture_partition 3 in
  let seen = ref [] in
  let proto =
    {
      Simultaneous.player =
        (fun ctx _j _input ->
          let r = Simultaneous.shared_rng ctx ~key:7 in
          seen := Rng.next_int64 r :: !seen;
          Msg.empty);
      referee = (fun _ _ -> ());
    }
  in
  let _ = Simultaneous.run ~seed:4 proto parts in
  match !seen with
  | [ a; b; c ] -> checkb "all equal" true (a = b && b = c)
  | _ -> Alcotest.fail "expected 3 observations"

let test_simultaneous_deterministic_given_seed () =
  let _, parts = fixture_partition 3 in
  let o1 = Simultaneous.run ~seed:8 count_protocol parts in
  let o2 = Simultaneous.run ~seed:8 count_protocol parts in
  checki "same result" o1.Simultaneous.result o2.Simultaneous.result;
  checki "same bits" o1.Simultaneous.total_bits o2.Simultaneous.total_bits

(* --------------------------------------------------------------- Oneway *)

let test_oneway_chain () =
  let rng = Rng.create 7 in
  let g = Gen.gnp rng ~n:30 ~p:0.2 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let chain =
    {
      Oneway.alice = (fun _ input -> Msg.nat (Graph.m input));
      bob = (fun _ input m1 -> Msg.nat (Msg.get_int m1 + Graph.m input));
      charlie = (fun _ input _m1 m2 -> Msg.get_int m2 + Graph.m input);
    }
  in
  let o =
    Oneway.run_chain ~seed:1 chain ~alice_input:(Partition.player parts 0)
      ~bob_input:(Partition.player parts 1) ~charlie_input:(Partition.player parts 2)
  in
  checki "counts all edges" (Graph.m g) o.Oneway.result;
  checkb "bits counted" true (o.Oneway.total_bits > 0);
  checkb "max <= total" true (o.Oneway.max_message_bits <= o.Oneway.total_bits)

let test_oneway_extended_alternation () =
  let rng = Rng.create 8 in
  let g = Gen.gnp rng ~n:20 ~p:0.3 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let ext =
    {
      Oneway.speak = (fun _ ~turn input _transcript -> Msg.nat ((10 * turn) + (Graph.m input mod 10)));
      out = (fun _ _input transcript -> List.length transcript);
      turns = 5;
    }
  in
  let o =
    Oneway.run_extended ~seed:1 ext ~alice_input:(Partition.player parts 0)
      ~bob_input:(Partition.player parts 1) ~charlie_input:(Partition.player parts 2)
  in
  checki "five turns" 5 o.Oneway.result

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"edges msg cost is linear in length" ~count:100 (int_range 0 200) (fun len ->
        let es = List.init len (fun i -> (i, i + 201)) in
        Msg.bits (Msg.edges ~n:500 es) = Bits.elias_gamma len + (len * Bits.edge ~n:500));
    Test.make ~name:"tuple cost = sum of parts" ~count:100 (list (int_range 0 100)) (fun vs ->
        let parts = List.map (fun v -> Msg.int_in ~lo:0 ~hi:100 v) vs in
        Msg.bits (Msg.tuple parts) = List.fold_left (fun a p -> a + Msg.bits p) 0 parts);
    Test.make ~name:"vertex_opt some costs 1+vertex" ~count:50 (int_range 2 10_000) (fun n ->
        Msg.bits (Msg.vertex_opt ~n (Some 0)) = 1 + Bits.vertex ~n);
  ]

let () =
  Alcotest.run "tfree_comm"
    [
      ( "msg",
        [
          Alcotest.test_case "bool" `Quick test_msg_bool;
          Alcotest.test_case "vertex" `Quick test_msg_vertex;
          Alcotest.test_case "vertex_opt" `Quick test_msg_vertex_opt;
          Alcotest.test_case "edge" `Quick test_msg_edge;
          Alcotest.test_case "edges cost" `Quick test_msg_edges_cost;
          Alcotest.test_case "empty edges" `Quick test_msg_empty_edges;
          Alcotest.test_case "vertices" `Quick test_msg_vertices;
          Alcotest.test_case "int_in" `Quick test_msg_int_in;
          Alcotest.test_case "int_in range" `Quick test_msg_int_in_out_of_range;
          Alcotest.test_case "tuple" `Quick test_msg_tuple;
          Alcotest.test_case "getter mismatch" `Quick test_msg_getter_mismatch;
          Alcotest.test_case "nat" `Quick test_msg_nat;
        ] );
      ("cost", [ Alcotest.test_case "ledger" `Quick test_cost_ledger ]);
      ( "runtime",
        [
          Alcotest.test_case "basic shape" `Quick test_runtime_basic_shape;
          Alcotest.test_case "ask_all costs" `Quick test_runtime_ask_all_costs;
          Alcotest.test_case "request charged per player" `Quick
            test_runtime_ask_all_request_charged_per_player;
          Alcotest.test_case "blackboard broadcast" `Quick test_runtime_blackboard_broadcast_once;
          Alcotest.test_case "query single player" `Quick test_runtime_query_single_player;
          Alcotest.test_case "any_player" `Quick test_runtime_any_player;
          Alcotest.test_case "shared rng agreement" `Quick test_runtime_shared_rng_agreement;
          Alcotest.test_case "private rngs differ" `Quick test_runtime_private_rngs_differ;
        ] );
      ( "simultaneous",
        [
          Alcotest.test_case "costs and result" `Quick test_simultaneous_costs_and_result;
          Alcotest.test_case "shared rng same for all" `Quick test_simultaneous_shared_rng_same_for_all;
          Alcotest.test_case "deterministic" `Quick test_simultaneous_deterministic_given_seed;
        ] );
      ( "oneway",
        [
          Alcotest.test_case "chain" `Quick test_oneway_chain;
          Alcotest.test_case "extended alternation" `Quick test_oneway_extended_alternation;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
