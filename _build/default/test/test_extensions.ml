(* Tests for the extension features: H-freeness (patterns, packing, the
   generalized simultaneous protocol), Newman's private-coin transformation,
   and the message-passing ⇄ coordinator equivalence. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------- patterns *)

let test_pattern_shapes () =
  checki "K3 edges" 3 (List.length Subgraph.triangle.Subgraph.edges);
  checki "C4 vertices" 4 Subgraph.four_cycle.Subgraph.vertices;
  checki "K4 edges" 6 (List.length Subgraph.four_clique.Subgraph.edges);
  checki "P4 edges" 3 (List.length Subgraph.four_path.Subgraph.edges);
  checki "diamond edges" 5 (List.length Subgraph.diamond.Subgraph.edges);
  checki "C5 vertices" 5 Subgraph.five_cycle.Subgraph.vertices

let test_find_on_known_graphs () =
  let k5 = Gen.complete ~n:5 in
  List.iter
    (fun p -> checkb (p.Subgraph.name ^ " in K5") true (Subgraph.contains k5 p))
    [ Subgraph.triangle; Subgraph.four_cycle; Subgraph.four_clique; Subgraph.four_path;
      Subgraph.diamond; Subgraph.five_cycle ];
  let c6 = Gen.cycle ~n:6 in
  checkb "no K3 in C6" true (Subgraph.is_free c6 Subgraph.triangle);
  checkb "no C4 in C6" true (Subgraph.is_free c6 Subgraph.four_cycle);
  checkb "P4 in C6" true (Subgraph.contains c6 Subgraph.four_path);
  let c4 = Gen.cycle ~n:4 in
  checkb "C4 in C4" true (Subgraph.contains c4 Subgraph.four_cycle);
  checkb "no K4 in C4" true (Subgraph.is_free c4 Subgraph.four_clique);
  (* bipartite: C4 present, odd cycles absent *)
  let kb = Gen.complete_bipartite ~left:3 ~right:3 in
  checkb "C4 in K33" true (Subgraph.contains kb Subgraph.four_cycle);
  checkb "no C5 in K33" true (Subgraph.is_free kb Subgraph.five_cycle)

let test_find_returns_valid_embedding () =
  let rng = Rng.create 1 in
  let g = Gen.gnp rng ~n:40 ~p:0.25 in
  List.iter
    (fun p ->
      match Subgraph.find g p with
      | Some a -> checkb (p.Subgraph.name ^ " embedding valid") true (Subgraph.is_embedding g p a)
      | None -> ())
    [ Subgraph.triangle; Subgraph.four_cycle; Subgraph.four_clique; Subgraph.diamond ]

let test_triangle_agrees_with_triangle_module () =
  let rng = Rng.create 2 in
  for s = 1 to 20 do
    let g = Gen.gnp (Rng.split rng s) ~n:30 ~p:0.15 in
    checkb "same verdict" true (Subgraph.is_free g Subgraph.triangle = Triangle.is_free g)
  done

let test_is_embedding_rejects () =
  let g = Gen.cycle ~n:4 in
  checkb "repeated vertex" false (Subgraph.is_embedding g Subgraph.triangle [| 0; 0; 1 |]);
  checkb "non-edge" false (Subgraph.is_embedding g Subgraph.triangle [| 0; 1; 2 |]);
  checkb "wrong arity" false (Subgraph.is_embedding g Subgraph.triangle [| 0; 1 |])

let test_pattern_packing () =
  let rng = Rng.create 3 in
  let g = Gen.planted_pattern_far rng ~n:120 ~pattern:Subgraph.four_cycle ~copies:12 ~noise:20 in
  let packing = Subgraph.greedy_packing g Subgraph.four_cycle in
  checki "all planted copies packed" 12 (List.length packing);
  List.iter (fun a -> checkb "valid copy" true (Subgraph.is_embedding g Subgraph.four_cycle a)) packing

let test_planted_pattern_noise_is_clean () =
  (* matching noise introduces no extra copy of any >=3-vertex pattern *)
  let rng = Rng.create 4 in
  let g = Gen.planted_pattern_far rng ~n:100 ~pattern:Subgraph.four_clique ~copies:5 ~noise:30 in
  checki "only planted K4s" 5 (List.length (Subgraph.greedy_packing g Subgraph.four_clique));
  checkb "triangles only inside K4s" true (List.length (Triangle.greedy_packing g) <= 10)

(* ----------------------------------------------------- sim H-freeness *)

let params = Tfree.Params.practical

let test_sim_subgraph_one_sided () =
  (* A C4-free far-from-nothing graph: matchings and triangles only. *)
  let rng = Rng.create 5 in
  let g = Gen.planted_far rng ~n:400 ~triangles:40 ~noise:60 in
  checkb "input is C4-free" true (Subgraph.is_free g Subgraph.four_cycle);
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
  for s = 1 to 8 do
    let o = Tfree.Sim_subgraph.run ~seed:s params ~d:(Graph.avg_degree g) Subgraph.four_cycle parts in
    checkb "never fabricates a C4" true (o.Simultaneous.result = None)
  done

let detection_rate pattern ~copies ~noise ~n runs =
  let rng = Rng.create (1000 + n) in
  let g = Gen.planted_pattern_far rng ~n ~pattern ~copies ~noise in
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
  let hits = ref 0 in
  for s = 1 to runs do
    let o = Tfree.Sim_subgraph.run ~seed:s params ~d:(Graph.avg_degree g) pattern parts in
    match o.Simultaneous.result with
    | Some a ->
        checkb "embedding real" true (Subgraph.is_embedding g pattern a);
        incr hits
    | None -> ()
  done;
  float_of_int !hits /. float_of_int runs

let test_sim_subgraph_detects_c4 () =
  let rate = detection_rate Subgraph.four_cycle ~copies:60 ~noise:40 ~n:500 10 in
  checkb (Printf.sprintf "C4 rate %.2f" rate) true (rate >= 0.7)

let test_sim_subgraph_detects_k4 () =
  let rate = detection_rate Subgraph.four_clique ~copies:50 ~noise:40 ~n:500 10 in
  checkb (Printf.sprintf "K4 rate %.2f" rate) true (rate >= 0.7)

let test_sim_subgraph_specializes_to_triangle () =
  let rate = detection_rate Subgraph.triangle ~copies:80 ~noise:60 ~n:500 10 in
  checkb (Printf.sprintf "K3 rate %.2f" rate) true (rate >= 0.7)

let test_sim_subgraph_cap_respected () =
  let rng = Rng.create 6 in
  let g = Gen.planted_pattern_far rng ~n:600 ~pattern:Subgraph.four_cycle ~copies:60 ~noise:60 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let d = Graph.avg_degree g in
  let o = Tfree.Sim_subgraph.run ~seed:2 params ~d Subgraph.four_cycle parts in
  let s = Tfree.Sim_subgraph.sample_size params ~n:600 ~d Subgraph.four_cycle in
  let cap = Tfree.Sim_subgraph.edge_cap params ~n:600 ~d ~s in
  Array.iter
    (fun bits -> checkb "cap respected" true (bits <= (cap * Bits.edge ~n:600) + 64))
    o.Simultaneous.per_player_bits

let test_sim_subgraph_sample_grows_with_pattern () =
  (* catching 4-vertex copies needs a denser sample than 3-vertex ones *)
  let s3 = Tfree.Sim_subgraph.sample_size params ~n:2000 ~d:10.0 Subgraph.triangle in
  let s4 = Tfree.Sim_subgraph.sample_size params ~n:2000 ~d:10.0 Subgraph.four_cycle in
  checkb "sample grows with h" true (s4 > s3)

(* --------------------------------------------------------------- Newman *)

let test_newman_cost_overhead () =
  let rng = Rng.create 7 in
  let g = Gen.far_with_degree rng ~n:400 ~d:5.0 ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let result, rt =
    Newman.run_private ~coordinator_seed:9 ~seed_bits:24 parts (fun rt ->
        Cost.total (Runtime.cost rt))
  in
  (* the body observed exactly the announcement cost before doing anything *)
  checki "overhead charged"
    (Newman.overhead_bits ~mode:Runtime.Coordinator ~k:4 ~seed_bits:24)
    result;
  checkb "ledger matches" true (Cost.total (Runtime.cost rt) >= result)

let test_newman_blackboard_overhead () =
  checki "blackboard announce once" 24
    (Newman.overhead_bits ~mode:Runtime.Blackboard ~k:8 ~seed_bits:24);
  checki "coordinator announce k times" (8 * 24)
    (Newman.overhead_bits ~mode:Runtime.Coordinator ~k:8 ~seed_bits:24)

let test_newman_protocol_still_correct () =
  let rng = Rng.create 8 in
  let g = Gen.far_with_degree rng ~n:600 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
  let hits = ref 0 in
  for s = 1 to 6 do
    let result, _ =
      Newman.run_private ~coordinator_seed:s ~seed_bits:24 parts (fun rt ->
          fst (Tfree.Unrestricted.find_triangle rt params))
    in
    match result with
    | Some t ->
        checkb "real triangle" true (Triangle.is_triangle g t);
        incr hits
    | None -> ()
  done;
  checkb (Printf.sprintf "private coins still detect (%d/6)" !hits) true (!hits >= 4)

(* ------------------------------------------------------ message passing *)

let test_mp_transcript_accounting () =
  let rng = Rng.create 9 in
  let g = Gen.gnp rng ~n:40 ~p:0.2 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let mp = Message_passing.make ~seed:1 parts in
  let m1 = Message_passing.send mp ~src:0 ~dst:1 (Msg.nat 100) in
  let _ = Message_passing.send mp ~src:1 ~dst:2 (Msg.edges ~n:40 [ (0, 1) ]) in
  checki "two messages" 2 (Message_passing.message_count mp);
  checki "bits summed" (Msg.bits m1 + Msg.bits (Msg.edges ~n:40 [ (0, 1) ])) (Message_passing.total_bits mp)

let test_mp_rejects_bad_endpoints () =
  let parts = [| Graph.empty ~n:4; Graph.empty ~n:4 |] in
  let mp = Message_passing.make ~seed:1 parts in
  Alcotest.check_raises "self send" (Invalid_argument "Message_passing.send: bad endpoints")
    (fun () -> ignore (Message_passing.send mp ~src:0 ~dst:0 (Msg.bool true)));
  Alcotest.check_raises "out of range" (Invalid_argument "Message_passing.send: bad endpoints")
    (fun () -> ignore (Message_passing.send mp ~src:0 ~dst:5 (Msg.bool true)))

let test_mp_coordinator_simulation_bound () =
  (* §2: simulating message passing with a coordinator costs at most
     2·CC + messages·ceil(log k). *)
  let rng = Rng.create 10 in
  let g = Gen.gnp rng ~n:60 ~p:0.2 in
  let parts = Partition.disjoint_random rng ~k:8 g in
  let mp = Message_passing.make ~seed:2 parts in
  (* a toy gossip: each player ships its edge count around a ring *)
  for j = 0 to 6 do
    ignore
      (Message_passing.send mp ~src:j ~dst:(j + 1)
         (Msg.nat (Graph.m (Message_passing.input mp j))))
  done;
  checki "simulation matches claimed bound" (Message_passing.coordinator_bound mp)
    (Message_passing.simulate_in_coordinator mp);
  checkb "overhead is log k per message" true
    (Message_passing.simulate_in_coordinator mp
    = (2 * Message_passing.total_bits mp) + (7 * 3))

let test_mp_shared_rng () =
  let parts = [| Graph.empty ~n:4; Graph.empty ~n:4 |] in
  let mp = Message_passing.make ~seed:3 parts in
  let a = Message_passing.shared_rng mp ~key:5 and b = Message_passing.shared_rng mp ~key:5 in
  Alcotest.check Alcotest.int64 "agree" (Rng.next_int64 a) (Rng.next_int64 b)

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"pattern find is sound" ~count:50 (int_range 1 1000) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:25 ~p:0.25 in
        List.for_all
          (fun p ->
            match Subgraph.find g p with
            | Some a -> Subgraph.is_embedding g p a
            | None -> true)
          [ Subgraph.triangle; Subgraph.four_cycle; Subgraph.four_clique; Subgraph.four_path ]);
    Test.make ~name:"triangle pattern complete vs Triangle.find" ~count:50 (int_range 1 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:20 ~p:0.2 in
        Subgraph.contains g Subgraph.triangle = not (Triangle.is_free g));
    Test.make ~name:"packing copies are edge-disjoint" ~count:30 (int_range 1 1000) (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:25 ~p:0.3 in
        let packing = Subgraph.greedy_packing g Subgraph.four_cycle in
        let used = Hashtbl.create 16 in
        List.for_all
          (fun a ->
            List.for_all
              (fun (x, y) ->
                let e = Graph.normalize_edge (a.(x), a.(y)) in
                if Hashtbl.mem used e then false
                else begin
                  Hashtbl.replace used e ();
                  true
                end)
              Subgraph.four_cycle.Subgraph.edges)
          packing);
  ]

let () =
  Alcotest.run "tfree_extensions"
    [
      ( "patterns",
        [
          Alcotest.test_case "shapes" `Quick test_pattern_shapes;
          Alcotest.test_case "known graphs" `Quick test_find_on_known_graphs;
          Alcotest.test_case "valid embeddings" `Quick test_find_returns_valid_embedding;
          Alcotest.test_case "agrees with Triangle" `Quick test_triangle_agrees_with_triangle_module;
          Alcotest.test_case "is_embedding rejects" `Quick test_is_embedding_rejects;
          Alcotest.test_case "pattern packing" `Quick test_pattern_packing;
          Alcotest.test_case "clean noise" `Quick test_planted_pattern_noise_is_clean;
        ] );
      ( "sim-subgraph",
        [
          Alcotest.test_case "one-sided" `Quick test_sim_subgraph_one_sided;
          Alcotest.test_case "detects C4" `Slow test_sim_subgraph_detects_c4;
          Alcotest.test_case "detects K4" `Slow test_sim_subgraph_detects_k4;
          Alcotest.test_case "specializes to K3" `Slow test_sim_subgraph_specializes_to_triangle;
          Alcotest.test_case "cap respected" `Quick test_sim_subgraph_cap_respected;
          Alcotest.test_case "sample grows with h" `Quick test_sim_subgraph_sample_grows_with_pattern;
        ] );
      ( "newman",
        [
          Alcotest.test_case "cost overhead" `Quick test_newman_cost_overhead;
          Alcotest.test_case "blackboard overhead" `Quick test_newman_blackboard_overhead;
          Alcotest.test_case "still correct" `Slow test_newman_protocol_still_correct;
        ] );
      ( "message-passing",
        [
          Alcotest.test_case "transcript accounting" `Quick test_mp_transcript_accounting;
          Alcotest.test_case "bad endpoints" `Quick test_mp_rejects_bad_endpoints;
          Alcotest.test_case "coordinator bound" `Quick test_mp_coordinator_simulation_bound;
          Alcotest.test_case "shared rng" `Quick test_mp_shared_rng;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
