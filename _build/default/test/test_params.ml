(* Tests for the Params formulas: profile semantics, monotonicity, and the
   documented equalities at the default parameters. *)


let checkb = Alcotest.(check bool)

let paper = Tfree.Params.paper
let practical = Tfree.Params.practical

let test_defaults () =
  checkb "paper eps" true (paper.Tfree.Params.eps = 0.1);
  checkb "paper delta" true (Float.abs (paper.Tfree.Params.delta -. (1.0 /. 3.0)) < 1e-9);
  checkb "profiles differ" true (paper.Tfree.Params.profile <> practical.Tfree.Params.profile)

let test_with_setters () =
  let p = Tfree.Params.with_eps practical 0.25 in
  checkb "eps set" true (p.Tfree.Params.eps = 0.25);
  checkb "delta preserved" true (p.Tfree.Params.delta = practical.Tfree.Params.delta);
  let q = Tfree.Params.with_delta practical 0.1 in
  checkb "delta set" true (q.Tfree.Params.delta = 0.1);
  let r = Tfree.Params.with_boost practical 2.0 in
  checkb "boost set" true (r.Tfree.Params.boost = 2.0)

let test_paper_budgets_dominate () =
  (* the paper profile is never less conservative than practical *)
  List.iter
    (fun (k, n) ->
      checkb "bucket samples" true
        (Tfree.Params.bucket_samples paper ~k ~n >= Tfree.Params.bucket_samples practical ~k ~n);
      checkb "candidate cap" true
        (Tfree.Params.candidate_cap paper ~n >= Tfree.Params.candidate_cap practical ~n))
    [ (2, 100); (4, 1000); (16, 10000) ]

let test_bucket_samples_monotone () =
  checkb "grows with k" true
    (Tfree.Params.bucket_samples practical ~k:8 ~n:1000
    >= Tfree.Params.bucket_samples practical ~k:4 ~n:1000);
  checkb "grows with n" true
    (Tfree.Params.bucket_samples practical ~k:4 ~n:10000
    >= Tfree.Params.bucket_samples practical ~k:4 ~n:100)

let test_edge_sample_prob_shape () =
  (* p ∝ 1/sqrt(d): halves when d quadruples; capped at 1 *)
  let p1 = Tfree.Params.edge_sample_prob practical ~n:10000 ~d:400.0 in
  let p2 = Tfree.Params.edge_sample_prob practical ~n:10000 ~d:1600.0 in
  checkb "in (0,1]" true (p1 > 0.0 && p1 <= 1.0);
  checkb "sqrt scaling" true (Float.abs ((p1 /. p2) -. 2.0) < 0.01);
  checkb "capped at 1 for tiny d" true (Tfree.Params.edge_sample_prob practical ~n:100 ~d:1.0 = 1.0)

let test_edge_sample_prob_eps_dependence () =
  let tight = Tfree.Params.with_eps practical 0.01 in
  checkb "smaller eps, larger p" true
    (Tfree.Params.edge_sample_prob tight ~n:10000 ~d:1000.0
    > Tfree.Params.edge_sample_prob practical ~n:10000 ~d:1000.0)

let test_sim_c_matches_paper_at_default () =
  (* c = 8/(9δ) at ǫ = 0.1 *)
  let expected = 8.0 /. (9.0 *. practical.Tfree.Params.delta) in
  checkb "default value" true (Float.abs (Tfree.Params.sim_c practical -. expected) < 1e-9);
  checkb "grows as eps shrinks" true
    (Tfree.Params.sim_c (Tfree.Params.with_eps practical 0.05) > Tfree.Params.sim_c practical)

let test_log_helpers () =
  checkb "log_n floor" true (Tfree.Params.log_n ~n:1 = 1.0);
  checkb "log_n 1024" true (Float.abs (Tfree.Params.log_n ~n:1024 -. 10.0) < 1e-9);
  checkb "ln6d positive" true (Tfree.Params.ln6d practical > 0.0)

let test_sim_caps_monotone_in_n () =
  checkb "sim-low cap grows" true
    (Tfree.Sim_low.edge_cap practical ~n:10000 ~d:5.0 > Tfree.Sim_low.edge_cap practical ~n:100 ~d:5.0);
  let s1 = Tfree.Sim_high.sample_size practical ~n:1000 ~d:40.0 in
  let s2 = Tfree.Sim_high.sample_size practical ~n:4000 ~d:80.0 in
  checkb "sim-high sample grows" true (s2 > s1)

let test_oblivious_guess_range_covers_truth () =
  (* a relevant player's window contains the true degree *)
  let k = 8 and n = 4096 in
  List.iter
    (fun (d_true, d_bar) ->
      let guesses = Tfree.Sim_oblivious.guess_range practical ~k ~n d_bar in
      let covered =
        List.exists
          (fun t ->
            let g = Float.pow 2.0 (float_of_int t) in
            d_true >= g /. 2.0 && d_true <= g *. 2.0)
          guesses
      in
      checkb (Printf.sprintf "window covers d=%g from d_bar=%g" d_true d_bar) true covered)
    [ (8.0, 8.0); (16.0, 4.0); (64.0, 2.0) ]

let () =
  Alcotest.run "tfree_params"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "setters" `Quick test_with_setters;
          Alcotest.test_case "paper dominates" `Quick test_paper_budgets_dominate;
          Alcotest.test_case "bucket samples monotone" `Quick test_bucket_samples_monotone;
          Alcotest.test_case "edge prob shape" `Quick test_edge_sample_prob_shape;
          Alcotest.test_case "edge prob eps" `Quick test_edge_sample_prob_eps_dependence;
          Alcotest.test_case "sim_c default" `Quick test_sim_c_matches_paper_at_default;
          Alcotest.test_case "log helpers" `Quick test_log_helpers;
          Alcotest.test_case "caps monotone" `Quick test_sim_caps_monotone_in_n;
          Alcotest.test_case "oblivious window" `Quick test_oblivious_guess_range_covers_truth;
        ] );
    ]
