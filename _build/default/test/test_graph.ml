(* Tests for Tfree_graph: graphs, triangles, distance, generators,
   partitions, bucketing. *)

open Tfree_util
open Tfree_graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let triangle = Alcotest.testable (fun fmt (a, b, c) -> Format.fprintf fmt "(%d,%d,%d)" a b c) ( = )

(* ---------------------------------------------------------------- Graph *)

let test_graph_of_edges_dedup () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 0); (0, 1); (2, 3) ] in
  checki "m dedups" 2 (Graph.m g);
  checkb "edge present" true (Graph.mem_edge g 0 1);
  checkb "symmetric" true (Graph.mem_edge g 1 0)

let test_graph_self_loops_dropped () =
  let g = Graph.of_edges ~n:3 [ (1, 1); (0, 2) ] in
  checki "loop dropped" 1 (Graph.m g);
  checkb "no loop" false (Graph.mem_edge g 1 1)

let test_graph_out_of_range () =
  Alcotest.check_raises "vertex range"
    (Invalid_argument "Graph: vertex 5 out of range [0,3)") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 5) ]))

let test_graph_degrees () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  checki "hub degree" 3 (Graph.degree g 0);
  checki "leaf degree" 1 (Graph.degree g 1);
  checkb "avg degree" true (Float.abs (Graph.avg_degree g -. 1.5) < 1e-9)

let test_graph_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 3; 4 |] (Graph.neighbors g 2)

let test_graph_edges_normalized () =
  let g = Graph.of_edges ~n:4 [ (3, 1); (2, 0) ] in
  Alcotest.(check (list (pair int int))) "normalized sorted" [ (0, 2); (1, 3) ] (Graph.edges g)

let test_graph_iter_edges_each_once () =
  let g = Gen.complete ~n:6 in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      checkb "u<v" true (u < v);
      incr count);
  checki "each edge once" 15 !count

let test_graph_union () =
  let g1 = Graph.of_edges ~n:4 [ (0, 1) ] and g2 = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let u = Graph.union g1 g2 in
  checki "union m" 2 (Graph.m u)

let test_graph_union_mismatch () =
  Alcotest.check_raises "n mismatch" (Invalid_argument "Graph.union: vertex counts differ")
    (fun () -> ignore (Graph.union (Graph.empty ~n:3) (Graph.empty ~n:4)))

let test_graph_induced () =
  let g = Gen.complete ~n:5 in
  let sub = Graph.induced g [ 0; 1; 2 ] in
  checki "K3 inside K5" 3 (Graph.m sub);
  checkb "outside edge gone" false (Graph.mem_edge sub 3 4)

let test_graph_filter_edges () =
  let g = Gen.complete ~n:4 in
  let f = Graph.filter_edges g (fun u _ -> u = 0) in
  checki "star kept" 3 (Graph.m f)

let test_graph_relabel_preserves_structure () =
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:30 ~p:0.2 in
  let perm = Array.init 30 (fun i -> (i + 7) mod 30) in
  let h = Graph.relabel g perm in
  checki "m preserved" (Graph.m g) (Graph.m h);
  checki "triangles preserved" (Triangle.count g) (Triangle.count h);
  Graph.iter_edges g (fun u v -> checkb "edge mapped" true (Graph.mem_edge h perm.(u) perm.(v)))

let test_graph_equal () =
  let g1 = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let g2 = Graph.of_edges ~n:3 [ (1, 2); (0, 1) ] in
  checkb "equal" true (Graph.equal g1 g2);
  checkb "not equal" false (Graph.equal g1 (Graph.of_edges ~n:3 [ (0, 1) ]))

let test_graph_empty () =
  let g = Graph.empty ~n:5 in
  checki "no edges" 0 (Graph.m g);
  checkb "avg degree zero" true (Graph.avg_degree g = 0.0)

(* ------------------------------------------------------------- Triangle *)

let test_triangle_find_on_k3 () =
  Alcotest.(check (option triangle)) "K3" (Some (0, 1, 2)) (Triangle.find (Gen.complete ~n:3))

let test_triangle_none_on_bipartite () =
  checkb "bipartite free" true (Triangle.is_free (Gen.complete_bipartite ~left:5 ~right:5));
  checkb "star free" true (Triangle.is_free (Gen.star ~n:10));
  checkb "path free" true (Triangle.is_free (Gen.path ~n:10));
  checkb "C4 free" true (Triangle.is_free (Gen.cycle ~n:4));
  checkb "C3 not free" false (Triangle.is_free (Gen.cycle ~n:3))

let test_triangle_count_complete () =
  (* K_n has C(n,3) triangles *)
  checki "K4" 4 (Triangle.count (Gen.complete ~n:4));
  checki "K5" 10 (Triangle.count (Gen.complete ~n:5));
  checki "K7" 35 (Triangle.count (Gen.complete ~n:7))

let test_triangle_enumerate_distinct_and_valid () =
  let rng = Rng.create 5 in
  let g = Gen.gnp rng ~n:40 ~p:0.25 in
  let ts = Triangle.enumerate g in
  checki "count matches" (Triangle.count g) (List.length ts);
  checki "distinct" (List.length ts) (List.length (List.sort_uniq compare ts));
  List.iter (fun t -> checkb "valid" true (Triangle.is_triangle g t)) ts

let test_triangle_is_triangle_rejects () =
  let g = Gen.cycle ~n:5 in
  checkb "no triangle" false (Triangle.is_triangle g (0, 1, 2));
  checkb "degenerate" false (Triangle.is_triangle (Gen.complete ~n:4) (1, 1, 2))

let test_triangle_packing_disjoint_and_valid () =
  let rng = Rng.create 6 in
  let g = Gen.gnp rng ~n:50 ~p:0.2 in
  let packing = Triangle.greedy_packing g in
  let used = Hashtbl.create 64 in
  List.iter
    (fun (a, b, c) ->
      checkb "valid triangle" true (Triangle.is_triangle g (a, b, c));
      List.iter
        (fun e ->
          checkb "edge unused" false (Hashtbl.mem used e);
          Hashtbl.replace used e ())
        [ Graph.normalize_edge (a, b); Graph.normalize_edge (b, c); Graph.normalize_edge (a, c) ])
    packing

let test_triangle_packing_maximal_on_k4 () =
  (* K4's four triangles pairwise share edges, so the packing has exactly 1. *)
  checki "K4 packing" 1 (List.length (Triangle.greedy_packing (Gen.complete ~n:4)))

let test_triangle_packing_counts_planted () =
  let rng = Rng.create 7 in
  let g = Gen.planted_far rng ~n:100 ~triangles:20 ~noise:50 in
  checki "planted packing" 20 (List.length (Triangle.greedy_packing g));
  checki "planted count" 20 (Triangle.count g)

let test_vees_at_vertex () =
  (* wheel: hub 0 adjacent to cycle 1-2-3-4-1: link graph of 0 is C4; max
     matching 2. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (2, 3); (3, 4); (1, 4) ] in
  let vees = Triangle.disjoint_vees_at g 0 in
  checki "two disjoint vees" 2 (List.length vees);
  List.iter (fun v -> checkb "valid vee" true (Triangle.is_vee g v)) vees

let test_vees_none_on_triangle_free () =
  let g = Gen.complete_bipartite ~left:4 ~right:4 in
  for v = 0 to 7 do
    checki "no vees" 0 (Triangle.count_disjoint_vees_at g v)
  done

let test_triangle_edge_detection () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (0, 2); (3, 4) ] in
  checkb "triangle edge" true (Triangle.is_triangle_edge g (0, 1));
  checkb "isolated edge" false (Triangle.is_triangle_edge g (3, 4));
  checkb "non-edge" false (Triangle.is_triangle_edge g (0, 3))

let test_triangle_edges_of_planted () =
  let rng = Rng.create 8 in
  let g = Gen.planted_far rng ~n:60 ~triangles:10 ~noise:0 in
  checki "3 per planted triangle" 30 (List.length (Triangle.triangle_edges g))

let test_close_vee () =
  let available = Graph.of_edges ~n:5 [ (1, 2) ] in
  let vees = [ { Triangle.source = 0; a = 3; b = 4 }; { Triangle.source = 0; a = 1; b = 2 } ] in
  (match Triangle.close_vee available vees with
  | Some (vee, e) ->
      checki "source" 0 vee.Triangle.source;
      Alcotest.(check (pair int int)) "closing edge" (1, 2) e
  | None -> Alcotest.fail "expected closure");
  checkb "no closure" true (Triangle.close_vee (Graph.empty ~n:5) vees = None)

(* ------------------------------------------------------------- Distance *)

let test_distance_bounds_order () =
  let rng = Rng.create 9 in
  let g = Gen.gnp rng ~n:40 ~p:0.3 in
  let lb = Distance.removal_lower_bound g and ub = Distance.removal_upper_bound g in
  checkb "lb <= ub" true (lb <= ub)

let test_distance_zero_on_free () =
  let g = Gen.complete_bipartite ~left:6 ~right:6 in
  checki "lb 0" 0 (Distance.removal_lower_bound g);
  checki "ub 0" 0 (Distance.removal_upper_bound g)

let test_distance_k4 () =
  (* K4: one removal leaves two triangles sharing edges; 2 removals needed. *)
  checki "K4 needs 2 removals" 2 (Distance.removal_upper_bound (Gen.complete ~n:4))

let test_distance_certified_far_planted () =
  let rng = Rng.create 10 in
  let g = Gen.planted_far rng ~n:120 ~triangles:20 ~noise:100 in
  checkb "certified far" true (Distance.certified_far g ~eps:0.1);
  checkb "not far at eps=0.5" false (Distance.certified_far g ~eps:0.5)

let test_distance_certified_close () =
  (* One triangle among many edges: removing 1 of 43 edges suffices. *)
  let edges = (0, 1) :: (1, 2) :: (0, 2) :: List.init 40 (fun i -> (10 + i, 51 + i)) in
  let g = Graph.of_edges ~n:100 edges in
  checkb "certified close" true (Distance.certified_close g ~eps:0.2)

let test_farness_interval () =
  let rng = Rng.create 11 in
  let g = Gen.planted_far rng ~n:90 ~triangles:10 ~noise:30 in
  let lo, hi = Distance.farness_interval g in
  checkb "interval ordered" true (lo <= hi && lo > 0.0)

(* ------------------------------------------------------------------ Gen *)

let test_gen_gnp_edge_count () =
  let rng = Rng.create 12 in
  let g = Gen.gnp rng ~n:100 ~p:0.1 in
  (* expected 495, sd ~21 *)
  checkb "plausible edge count" true (abs (Graph.m g - 495) < 120)

let test_gen_gnp_extremes () =
  let rng = Rng.create 13 in
  checki "p=0" 0 (Graph.m (Gen.gnp rng ~n:20 ~p:0.0));
  checki "p=1" 190 (Graph.m (Gen.gnp rng ~n:20 ~p:1.0))

let test_gen_gnm_exact () =
  let rng = Rng.create 14 in
  let g = Gen.gnm rng ~n:50 ~m:100 in
  checki "exact m" 100 (Graph.m g)

let test_gen_tripartite_structure () =
  let rng = Rng.create 15 in
  let g = Gen.tripartite_gnp rng ~part:30 ~p:0.2 in
  checki "n = 3 part" 90 (Graph.n g);
  Graph.iter_edges g (fun u v -> checkb "cross-part" true (u / 30 <> v / 30))

let test_gen_planted_far_triangles_exact () =
  let rng = Rng.create 16 in
  let g = Gen.planted_far rng ~n:150 ~triangles:25 ~noise:80 in
  checki "exactly the planted triangles" 25 (Triangle.count g);
  checkb "noise present" true (Graph.m g > 75)

let test_gen_planted_far_too_many () =
  let rng = Rng.create 16 in
  Alcotest.check_raises "too many" (Invalid_argument "Gen.planted_far: too many triangles")
    (fun () -> ignore (Gen.planted_far rng ~n:10 ~triangles:4 ~noise:0))

let test_gen_hub_far_structure () =
  let rng = Rng.create 17 in
  let g = Gen.hub_far rng ~n:200 ~hubs:4 ~pairs:40 in
  checki "one triangle per pair" 40 (Triangle.count g);
  checki "packing = pairs" 40 (List.length (Triangle.greedy_packing g));
  let max_deg = List.fold_left (fun acc v -> max acc (Graph.degree g v)) 0 (List.init 200 (fun i -> i)) in
  checkb "hubs are heavy" true (float_of_int max_deg > 3.0 *. Graph.avg_degree g)

let test_gen_far_with_degree_low () =
  let rng = Rng.create 18 in
  let g = Gen.far_with_degree rng ~n:600 ~d:4.0 ~eps:0.1 in
  checkb "degree near target" true (Float.abs (Graph.avg_degree g -. 4.0) < 1.0);
  checkb "certified far" true (Distance.certified_far g ~eps:0.08)

let test_gen_far_with_degree_high () =
  let rng = Rng.create 19 in
  let g = Gen.far_with_degree rng ~n:400 ~d:40.0 ~eps:0.1 in
  checkb "degree near target" true (Float.abs (Graph.avg_degree g -. 40.0) < 8.0);
  checkb "certified far" true (Distance.certified_far g ~eps:0.05)

let test_gen_free_with_degree () =
  let rng = Rng.create 20 in
  let g = Gen.free_with_degree rng ~n:500 ~d:8.0 in
  checkb "triangle free" true (Triangle.is_free g);
  checkb "degree near target" true (Float.abs (Graph.avg_degree g -. 8.0) < 2.0)

let test_gen_embed_preserves () =
  let rng = Rng.create 21 in
  let g = Gen.complete ~n:10 in
  let h = Gen.embed rng g ~n:100 in
  checki "n padded" 100 (Graph.n h);
  checki "m preserved" (Graph.m g) (Graph.m h);
  checki "triangles preserved" (Triangle.count g) (Triangle.count h)

let test_gen_tripartite_planted_disjoint_bound () =
  let rng = Rng.create 22 in
  let edges, disjoint = Gen.tripartite_planted rng ~n_part:40 ~rounds:3 0 in
  let g = Graph.of_edges ~n:120 edges in
  checkb "claimed bound holds" true (List.length (Triangle.greedy_packing g) >= disjoint - 1);
  checkb "bound positive" true (disjoint > 0)

(* ------------------------------------------------------------ Partition *)

let test_partition_disjoint_random_union () =
  let rng = Rng.create 23 in
  let g = Gen.gnp rng ~n:60 ~p:0.1 in
  let parts = Partition.disjoint_random rng ~k:5 g in
  checki "k players" 5 (Partition.k parts);
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g);
  checkb "no duplication" false (Partition.has_duplication parts)

let test_partition_with_duplication_union () =
  let rng = Rng.create 24 in
  let g = Gen.gnp rng ~n:60 ~p:0.1 in
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.5 g in
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g);
  checkb "duplication present" true (Partition.has_duplication parts)

let test_partition_replicate () =
  let rng = Rng.create 25 in
  let g = Gen.gnp rng ~n:30 ~p:0.2 in
  let parts = Partition.replicate ~k:3 g in
  Array.iter (fun p -> checkb "full copy" true (Graph.equal p g)) parts;
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g)

let test_partition_by_endpoint_hash () =
  let rng = Rng.create 26 in
  let g = Gen.gnp rng ~n:60 ~p:0.1 in
  let parts = Partition.by_endpoint_hash rng ~k:4 g in
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g);
  checkb "no duplication" false (Partition.has_duplication parts)

let test_partition_skewed () =
  let rng = Rng.create 27 in
  let g = Gen.gnp rng ~n:100 ~p:0.2 in
  let parts = Partition.skewed rng ~k:4 ~bias:0.9 g in
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g);
  checkb "player 0 dominates" true (Graph.m (Partition.player parts 0) > Graph.m g / 2)

let test_partition_all_to_one () =
  let g = Gen.complete ~n:6 in
  let parts = Partition.all_to_one ~k:3 g in
  checki "others empty" 0 (Graph.m (Partition.player parts 1));
  checkb "union reassembles" true (Graph.equal (Partition.union parts) g)

(* --------------------------------------------------------------- Bucket *)

let test_bucket_index_of_degree () =
  checki "deg 1" 0 (Bucket.index_of_degree 1);
  checki "deg 2" 0 (Bucket.index_of_degree 2);
  checki "deg 3" 1 (Bucket.index_of_degree 3);
  checki "deg 8" 1 (Bucket.index_of_degree 8);
  checki "deg 9" 2 (Bucket.index_of_degree 9);
  checki "deg 27" 3 (Bucket.index_of_degree 27)

let test_bucket_bounds () =
  checki "d- of 0" 1 (Bucket.d_minus 0);
  checki "d+ of 0" 3 (Bucket.d_plus 0);
  checki "d- of 2" 9 (Bucket.d_minus 2);
  checki "d+ of 2" 27 (Bucket.d_plus 2)

let test_bucket_members_partition_nonisolated () =
  let rng = Rng.create 28 in
  let g = Gen.gnp rng ~n:80 ~p:0.08 in
  let buckets = Bucket.members g in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 buckets in
  let non_isolated =
    List.length (List.filter (fun v -> Graph.degree g v > 0) (List.init 80 (fun v -> v)))
  in
  checki "all non-isolated bucketed" non_isolated total;
  Array.iteri
    (fun i vs ->
      List.iter
        (fun v ->
          let d = Graph.degree g v in
          checkb "degree within bucket range" true (d >= Bucket.d_minus i && d < Bucket.d_plus i))
        vs)
    buckets

let test_bucket_full_vertex_on_planted () =
  (* In a bare planted triangle every corner has degree 2 fully covered by
     one vee: maximally full. *)
  let rng = Rng.create 29 in
  let g = Gen.planted_far rng ~n:30 ~triangles:5 ~noise:0 in
  let full = Bucket.full_vertices g ~eps:0.1 in
  checki "all 15 corners full" 15 (List.length full)

let test_bucket_full_vertex_absent_on_free () =
  let g = Gen.complete_bipartite ~left:5 ~right:5 in
  checki "no full vertices" 0 (List.length (Bucket.full_vertices g ~eps:0.1))

let test_bucket_b_min_exists_on_far_graph () =
  let rng = Rng.create 30 in
  let g = Gen.planted_far rng ~n:120 ~triangles:20 ~noise:40 in
  match Bucket.b_min g ~eps:0.1 with
  | Some i -> checkb "bucket index sane" true (i >= 0 && i < Bucket.count ~n:120)
  | None -> Alcotest.fail "expected a full bucket (Observation 3.3)"

let test_bucket_b_min_none_on_free () =
  let g = Gen.complete_bipartite ~left:10 ~right:10 in
  checkb "no full bucket" true (Bucket.b_min g ~eps:0.1 = None)

let test_bucket_degree_window () =
  let rng = Rng.create 31 in
  let g = Gen.planted_far rng ~n:120 ~triangles:20 ~noise:40 in
  let dl, dh = Bucket.degree_window g ~eps:0.1 in
  checkb "dl < dh" true (dl < dh);
  (* Lemma 3.12: B_min's degree range intersects the window. *)
  match Bucket.b_min g ~eps:0.1 with
  | Some i ->
      checkb "b_min above dl" true (float_of_int (Bucket.d_plus i) >= dl);
      checkb "b_min below dh" true (float_of_int (Bucket.d_minus i) <= dh)
  | None -> Alcotest.fail "expected full bucket"

let test_bucket_suspects () =
  checkb "suspects bucket 0" true (Bucket.suspects ~k:4 ~i:0 2);
  checkb "suspects bucket 1" true (Bucket.suspects ~k:4 ~i:1 2);
  checkb "not bucket 3" false (Bucket.suspects ~k:4 ~i:3 2);
  checkb "zero degree never suspects" false (Bucket.suspects ~k:4 ~i:0 0)

let test_bucket_membership_implies_suspect () =
  (* Correctness needs B_i ⊆ B̃_i: a vertex in bucket i globally is
     suspected by at least one player (pigeonhole, §3.3). *)
  let rng = Rng.create 32 in
  let g = Gen.gnp rng ~n:60 ~p:0.15 in
  let parts = Partition.disjoint_random rng ~k:4 g in
  let buckets = Bucket.members g in
  Array.iteri
    (fun i vs ->
      List.iter
        (fun v ->
          let suspected =
            Array.exists (fun pg -> Bucket.suspects ~k:4 ~i (Graph.degree pg v)) parts
          in
          checkb "some player suspects true bucket" true suspected)
        vs)
    buckets


(* -------------------------------------------------------------- Behrend *)

let test_behrend_ap_free_sets () =
  List.iter
    (fun (base, digits) ->
      let s = Behrend.ap_free_set ~base ~digits in
      checkb "non-empty" true (s <> []);
      checkb "ap-free" true (Behrend.is_ap_free s);
      let bound = int_of_float (Float.pow (float_of_int (2 * base)) (float_of_int digits)) in
      List.iter (fun x -> checkb "in range" true (x >= 0 && x < bound)) s)
    [ (2, 2); (3, 2); (4, 2); (3, 3); (5, 2) ]

let test_behrend_is_ap_free_detects () =
  checkb "AP detected" false (Behrend.is_ap_free [ 1; 3; 5 ]);
  checkb "no AP" true (Behrend.is_ap_free [ 1; 2; 4; 8 ]);
  checkb "empty fine" true (Behrend.is_ap_free [])

let test_behrend_graph_structure () =
  let t = Behrend.instance ~base:3 ~digits:2 () in
  let g = t.Behrend.graph in
  checki "6M vertices" (6 * t.Behrend.m_param) (Graph.n g);
  checki "3 edges per planted triangle" (3 * t.Behrend.planted) (Graph.m g);
  checki "triangle count minimal" t.Behrend.planted (Triangle.count g);
  checki "packing = count" t.Behrend.planted (List.length (Triangle.greedy_packing g));
  checkb "1/3-far certified" true (Distance.certified_far g ~eps:0.33);
  checkb "every edge is a triangle edge" true
    (List.length (Triangle.triangle_edges g) = Graph.m g);
  checkb "density statistic" true (Float.abs (Behrend.triangles_per_edge t -. (1.0 /. 3.0)) < 1e-9)

let test_behrend_shuffle_preserves () =
  let rng = Rng.create 55 in
  let t = Behrend.instance ~rng ~base:2 ~digits:2 () in
  checki "triangles preserved" t.Behrend.planted (Triangle.count t.Behrend.graph)

let test_behrend_rejects_bad_set () =
  Alcotest.check_raises "out of range" (Invalid_argument "Behrend.graph_of_set: set out of range")
    (fun () -> ignore (Behrend.graph_of_set ~m_param:4 [ 9 ]))

(* --------------------------------------------------------------- QCheck *)

let graph_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    int_range 0 1000 >|= fun seed ->
    let rng = Rng.create seed in
    Gen.gnp rng ~n ~p:0.2)

let arb_graph = QCheck.make ~print:(fun g -> Format.asprintf "%a" Graph.pp g) graph_gen

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"handshake: sum of degrees = 2m" ~count:100 arb_graph (fun g ->
        let sum =
          List.fold_left (fun acc v -> acc + Graph.degree g v) 0 (List.init (Graph.n g) (fun v -> v))
        in
        sum = 2 * Graph.m g);
    Test.make ~name:"mem_edge consistent with edges list" ~count:100 arb_graph (fun g ->
        List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges g));
    Test.make ~name:"packing <= triangle count" ~count:100 arb_graph (fun g ->
        List.length (Triangle.greedy_packing g) <= Triangle.count g);
    Test.make ~name:"packing lb <= greedy ub" ~count:50 arb_graph (fun g ->
        Distance.removal_lower_bound g <= Distance.removal_upper_bound g);
    Test.make ~name:"triangle edges subset of edges" ~count:100 arb_graph (fun g ->
        List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Triangle.triangle_edges g));
    Test.make ~name:"free graphs have no triangle edges" ~count:100 arb_graph (fun g ->
        (not (Triangle.is_free g)) || Triangle.triangle_edges g = []);
    Test.make ~name:"union idempotent" ~count:50 arb_graph (fun g -> Graph.equal (Graph.union g g) g);
    Test.make ~name:"vees at v <= deg v / 2" ~count:100 arb_graph (fun g ->
        List.for_all
          (fun v -> 2 * Triangle.count_disjoint_vees_at g v <= Graph.degree g v)
          (List.init (Graph.n g) (fun v -> v)));
    Test.make ~name:"partition union is input (disjoint)" ~count:50
      (pair arb_graph (int_range 1 6))
      (fun (g, k) ->
        let rng = Rng.create (Graph.m g + k) in
        Graph.equal (Partition.union (Partition.disjoint_random rng ~k g)) g);
    Test.make ~name:"partition union is input (duplicated)" ~count:50
      (pair arb_graph (int_range 1 6))
      (fun (g, k) ->
        let rng = Rng.create (Graph.m g + (13 * k)) in
        Graph.equal (Partition.union (Partition.with_duplication rng ~k ~dup_p:0.4 g)) g);
    Test.make ~name:"bucket index consistent with bounds" ~count:200 (int_range 1 100_000) (fun d ->
        let i = Bucket.index_of_degree d in
        d >= Bucket.d_minus i && d < Bucket.d_plus i);
  ]

let () =
  Alcotest.run "tfree_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges dedup" `Quick test_graph_of_edges_dedup;
          Alcotest.test_case "self loops dropped" `Quick test_graph_self_loops_dropped;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "degrees" `Quick test_graph_degrees;
          Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
          Alcotest.test_case "edges normalized" `Quick test_graph_edges_normalized;
          Alcotest.test_case "iter edges once" `Quick test_graph_iter_edges_each_once;
          Alcotest.test_case "union" `Quick test_graph_union;
          Alcotest.test_case "union mismatch" `Quick test_graph_union_mismatch;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "filter edges" `Quick test_graph_filter_edges;
          Alcotest.test_case "relabel" `Quick test_graph_relabel_preserves_structure;
          Alcotest.test_case "equal" `Quick test_graph_equal;
          Alcotest.test_case "empty" `Quick test_graph_empty;
        ] );
      ( "triangle",
        [
          Alcotest.test_case "find on K3" `Quick test_triangle_find_on_k3;
          Alcotest.test_case "none on bipartite" `Quick test_triangle_none_on_bipartite;
          Alcotest.test_case "count complete" `Quick test_triangle_count_complete;
          Alcotest.test_case "enumerate distinct+valid" `Quick test_triangle_enumerate_distinct_and_valid;
          Alcotest.test_case "is_triangle rejects" `Quick test_triangle_is_triangle_rejects;
          Alcotest.test_case "packing disjoint+valid" `Quick test_triangle_packing_disjoint_and_valid;
          Alcotest.test_case "packing on K4" `Quick test_triangle_packing_maximal_on_k4;
          Alcotest.test_case "packing counts planted" `Quick test_triangle_packing_counts_planted;
          Alcotest.test_case "vees at vertex" `Quick test_vees_at_vertex;
          Alcotest.test_case "vees absent on free" `Quick test_vees_none_on_triangle_free;
          Alcotest.test_case "triangle edge detection" `Quick test_triangle_edge_detection;
          Alcotest.test_case "triangle edges of planted" `Quick test_triangle_edges_of_planted;
          Alcotest.test_case "close vee" `Quick test_close_vee;
        ] );
      ( "distance",
        [
          Alcotest.test_case "bounds ordered" `Quick test_distance_bounds_order;
          Alcotest.test_case "zero on free" `Quick test_distance_zero_on_free;
          Alcotest.test_case "K4 removals" `Quick test_distance_k4;
          Alcotest.test_case "certified far" `Quick test_distance_certified_far_planted;
          Alcotest.test_case "certified close" `Quick test_distance_certified_close;
          Alcotest.test_case "farness interval" `Quick test_farness_interval;
        ] );
      ( "gen",
        [
          Alcotest.test_case "gnp count" `Quick test_gen_gnp_edge_count;
          Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
          Alcotest.test_case "gnm exact" `Quick test_gen_gnm_exact;
          Alcotest.test_case "tripartite structure" `Quick test_gen_tripartite_structure;
          Alcotest.test_case "planted triangles exact" `Quick test_gen_planted_far_triangles_exact;
          Alcotest.test_case "planted too many" `Quick test_gen_planted_far_too_many;
          Alcotest.test_case "hub structure" `Quick test_gen_hub_far_structure;
          Alcotest.test_case "far_with_degree low" `Quick test_gen_far_with_degree_low;
          Alcotest.test_case "far_with_degree high" `Quick test_gen_far_with_degree_high;
          Alcotest.test_case "free_with_degree" `Quick test_gen_free_with_degree;
          Alcotest.test_case "embed preserves" `Quick test_gen_embed_preserves;
          Alcotest.test_case "tripartite planted bound" `Quick test_gen_tripartite_planted_disjoint_bound;
        ] );
      ( "partition",
        [
          Alcotest.test_case "disjoint random" `Quick test_partition_disjoint_random_union;
          Alcotest.test_case "with duplication" `Quick test_partition_with_duplication_union;
          Alcotest.test_case "replicate" `Quick test_partition_replicate;
          Alcotest.test_case "by endpoint hash" `Quick test_partition_by_endpoint_hash;
          Alcotest.test_case "skewed" `Quick test_partition_skewed;
          Alcotest.test_case "all to one" `Quick test_partition_all_to_one;
        ] );
      ( "bucket",
        [
          Alcotest.test_case "index of degree" `Quick test_bucket_index_of_degree;
          Alcotest.test_case "bounds" `Quick test_bucket_bounds;
          Alcotest.test_case "members partition" `Quick test_bucket_members_partition_nonisolated;
          Alcotest.test_case "full vertices planted" `Quick test_bucket_full_vertex_on_planted;
          Alcotest.test_case "no full vertices on free" `Quick test_bucket_full_vertex_absent_on_free;
          Alcotest.test_case "b_min exists on far" `Quick test_bucket_b_min_exists_on_far_graph;
          Alcotest.test_case "b_min none on free" `Quick test_bucket_b_min_none_on_free;
          Alcotest.test_case "degree window" `Quick test_bucket_degree_window;
          Alcotest.test_case "suspects" `Quick test_bucket_suspects;
          Alcotest.test_case "membership implies suspect" `Quick test_bucket_membership_implies_suspect;
        ] );
      ( "behrend",
        [
          Alcotest.test_case "ap-free sets" `Quick test_behrend_ap_free_sets;
          Alcotest.test_case "ap detection" `Quick test_behrend_is_ap_free_detects;
          Alcotest.test_case "graph structure" `Quick test_behrend_graph_structure;
          Alcotest.test_case "shuffle preserves" `Quick test_behrend_shuffle_preserves;
          Alcotest.test_case "rejects bad set" `Quick test_behrend_rejects_bad_set;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
