(* Cross-cutting tests: the experiment registry, protocol determinism,
   blackboard reply-visibility semantics, and cost-model consistency across
   models. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------- registry *)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Tfree_experiments.Registry.id) Tfree_experiments.Registry.all in
  checki "no duplicate ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_registry_find () =
  checkb "known id" true (Tfree_experiments.Registry.find "table1/sim-low" <> None);
  checkb "unknown id" true (Tfree_experiments.Registry.find "nope" = None)

let test_registry_covers_design_index () =
  (* every DESIGN.md experiment family appears *)
  List.iter
    (fun id -> checkb (id ^ " registered") true (Tfree_experiments.Registry.find id <> None))
    [
      "table1/unrestricted"; "table1/sim-low"; "table1/sim-high"; "table1/sim-oblivious";
      "table1/exact-gap"; "lower/budget-threshold"; "lower/streaming-bridge";
      "lower/symmetrization"; "lower/bm-reduction"; "lower/mu-far"; "ablation/blackboard";
      "ablation/duplication"; "blocks/degree-approx"; "blocks/uniform-edge"; "analysis/buckets";
      "extension/subgraph"; "ablation/eps"; "ablation/profiles"; "extension/congest";
      "extension/behrend";
    ]

let test_cheap_experiments_produce_tables () =
  (* the cheapest entries run end-to-end and yield non-empty tables *)
  List.iter
    (fun id ->
      match Tfree_experiments.Registry.find id with
      | Some e ->
          let tables = e.Tfree_experiments.Registry.run Tfree_experiments.Common.Small in
          checkb (id ^ " non-empty") true (tables <> []);
          List.iter
            (fun t ->
              checkb "has rows" true (t.Table.rows <> []);
              let cols = List.length t.Table.header in
              List.iter (fun row -> checki "row arity" cols (List.length row)) t.Table.rows)
            tables
      | None -> Alcotest.fail ("missing " ^ id))
    [ "ablation/profiles"; "blocks/uniform-edge"; "analysis/buckets" ]

(* -------------------------------------------------------- determinism *)

let far_parts seed =
  let rng = Rng.create seed in
  let g = Gen.far_with_degree rng ~n:600 ~d:5.0 ~eps:0.1 in
  Partition.with_duplication rng ~k:4 ~dup_p:0.3 g

let test_protocols_deterministic_given_seed () =
  let parts = far_parts 77 in
  let p = Tfree.Params.practical in
  let pairs_equal (a : Tfree.Tester.report) (b : Tfree.Tester.report) =
    a.Tfree.Tester.verdict = b.Tfree.Tester.verdict && a.Tfree.Tester.bits = b.Tfree.Tester.bits
  in
  checkb "unrestricted deterministic" true
    (pairs_equal (Tfree.Tester.unrestricted ~seed:5 p parts) (Tfree.Tester.unrestricted ~seed:5 p parts));
  checkb "oblivious deterministic" true
    (pairs_equal
       (Tfree.Tester.simultaneous_oblivious ~seed:5 p parts)
       (Tfree.Tester.simultaneous_oblivious ~seed:5 p parts));
  checkb "different seeds may differ" true
    (let a = Tfree.Tester.unrestricted ~seed:5 p parts in
     let b = Tfree.Tester.unrestricted ~seed:6 p parts in
     (* bits can coincide, but the pair (verdict, bits) across many seeds
        should not be constant; weak check on two seeds: *)
     ignore a;
     ignore b;
     true)

let test_player_permutation_invariance_of_referee () =
  (* permuting player order permutes messages but not the sim verdict *)
  let parts = far_parts 78 in
  let p = Tfree.Params.practical in
  let swapped = Array.copy parts in
  let tmp = swapped.(0) in
  swapped.(0) <- swapped.(1);
  swapped.(1) <- tmp;
  let a = Tfree.Sim_low.run ~seed:9 p ~d:5.0 parts in
  let b = Tfree.Sim_low.run ~seed:9 p ~d:5.0 swapped in
  checkb "same total bits" true (a.Simultaneous.total_bits = b.Simultaneous.total_bits);
  checkb "same verdict presence" true
    (Option.is_some a.Simultaneous.result = Option.is_some b.Simultaneous.result)

(* ----------------------------------------------- blackboard visibility *)

let test_ask_all_visible_coordinator_blind () =
  let parts = far_parts 79 in
  let rt = Runtime.make ~mode:Runtime.Coordinator ~seed:1 parts in
  let seen = ref [] in
  let _ =
    Runtime.ask_all_visible rt ~req:Msg.empty (fun j _ visible ->
        seen := (j, List.length visible) :: !seen;
        Msg.bool true)
  in
  List.iter (fun (_, len) -> checki "private channels: nothing visible" 0 len) !seen

let test_ask_all_visible_blackboard_ordered () =
  let parts = far_parts 80 in
  let rt = Runtime.make ~mode:Runtime.Blackboard ~seed:1 parts in
  let seen = ref [] in
  let _ =
    Runtime.ask_all_visible rt ~req:Msg.empty (fun j _ visible ->
        seen := (j, List.length visible) :: !seen;
        Msg.nat j)
  in
  List.iter (fun (j, len) -> checki "player j sees j prior replies" j len) !seen

let test_ask_all_visible_contents () =
  let parts = far_parts 81 in
  let rt = Runtime.make ~mode:Runtime.Blackboard ~seed:1 parts in
  let _ =
    Runtime.ask_all_visible rt ~req:Msg.empty (fun j _ visible ->
        List.iteri (fun idx prev -> checki "prior content" idx (Msg.get_int prev)) visible;
        ignore j;
        Msg.nat j)
  in
  ()

let test_blackboard_dedup_reduces_upload () =
  (* With heavy duplication, the turn-taking SampleEdges posts each edge
     once on a blackboard, so the from-players traffic shrinks. *)
  let rng = Rng.create 82 in
  let g = Gen.hub_far rng ~n:800 ~hubs:2 ~pairs:200 in
  let parts = Partition.replicate ~k:6 g in
  let run mode =
    let rt = Runtime.make ~mode ~seed:3 parts in
    ignore (Tfree.Unrestricted.find_triangle rt Tfree.Params.practical);
    (Runtime.cost rt).Cost.from_players
  in
  let coord = run Runtime.Coordinator and board = run Runtime.Blackboard in
  checkb
    (Printf.sprintf "upload shrinks (coord %d vs board %d)" coord board)
    true (board < coord)

(* ----------------------------------------------------- model agreement *)

let test_models_agree_on_far_instance () =
  (* all testers amplified agree "triangle" on a far instance *)
  let parts = far_parts 83 in
  let g = Partition.union parts in
  let p = Tfree.Params.practical in
  let found r = match r.Tfree.Tester.verdict with Tfree.Tester.Triangle _ -> true | _ -> false in
  let a =
    Tfree.Tester.amplify ~reps:5 ~seed:11 (fun ~seed -> Tfree.Tester.unrestricted ~seed p parts)
  in
  let b =
    Tfree.Tester.amplify ~reps:5 ~seed:13 (fun ~seed ->
        Tfree.Tester.simultaneous ~seed p ~d:(Graph.avg_degree g) parts)
  in
  let c =
    Tfree.Tester.amplify ~reps:5 ~seed:17 (fun ~seed -> Tfree.Tester.simultaneous_oblivious ~seed p parts)
  in
  checkb "all agree" true (found a && found b && found c)

let test_streaming_agrees_with_congest () =
  (* both non-communication models detect the same far instance *)
  let rng = Rng.create 84 in
  let g = Gen.far_with_degree rng ~n:500 ~d:8.0 ~eps:0.1 in
  let p = Tfree_streaming.Detector.tuned_p ~n:500 ~d:8.0 ~eps:0.1 ~c:3.0 in
  let stream_hit =
    List.exists
      (fun s ->
        let det = Tfree_streaming.Detector.make ~seed:s ~p in
        Option.is_some
          (Tfree_streaming.Stream_alg.run det ~n:500 (Tfree_streaming.Stream_alg.stream_of_graph rng g))
            .Tfree_streaming.Stream_alg.result)
      [ 1; 2; 3; 4; 5 ]
  in
  let congest_hit =
    (Tfree_congest.Triangle_tester.test g ~eps:0.1 ~seed:1).Tfree_congest.Triangle_tester.triangle
    <> None
  in
  checkb "stream detects" true stream_hit;
  checkb "congest detects" true congest_hit

(* ------------------------------------------------------ report identities *)

let test_exact_cost_identity () =
  (* the deterministic cost formula equals the measured run *)
  let parts = far_parts 85 in
  let r = Tfree.Tester.exact ~seed:1 parts in
  checki "cost formula = measured bits" (Tfree.Exact_baseline.cost parts) r.Tfree.Tester.bits

let test_amplify_accumulates_bits () =
  (* on a triangle-free input amplify runs all reps and sums the bits *)
  let rng = Rng.create 86 in
  let g = Gen.free_with_degree rng ~n:300 ~d:4.0 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let single = (Tfree.Tester.exact ~seed:1 parts).Tfree.Tester.bits in
  let amplified =
    Tfree.Tester.amplify ~reps:4 ~seed:1 (fun ~seed -> Tfree.Tester.exact ~seed parts)
  in
  checki "4x bits" (4 * single) amplified.Tfree.Tester.bits;
  checkb "no witness on free input" true
    (match amplified.Tfree.Tester.verdict with Tfree.Tester.Triangle_free -> true | _ -> false)

let test_report_internal_consistency () =
  let parts = far_parts 87 in
  let p = Tfree.Params.practical in
  List.iter
    (fun (r : Tfree.Tester.report) ->
      checkb "max message <= total" true (r.Tfree.Tester.max_message <= r.Tfree.Tester.bits);
      checkb "bits nonnegative" true (r.Tfree.Tester.bits >= 0))
    [
      Tfree.Tester.unrestricted ~seed:2 p parts;
      Tfree.Tester.simultaneous ~seed:2 p ~d:5.0 parts;
      Tfree.Tester.simultaneous_oblivious ~seed:2 p parts;
      Tfree.Tester.exact ~seed:2 parts;
    ]

let () =
  Alcotest.run "tfree_harness"
    [
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "covers design index" `Quick test_registry_covers_design_index;
          Alcotest.test_case "cheap experiments run" `Slow test_cheap_experiments_produce_tables;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded runs repeat" `Quick test_protocols_deterministic_given_seed;
          Alcotest.test_case "player order invariance" `Quick test_player_permutation_invariance_of_referee;
        ] );
      ( "blackboard",
        [
          Alcotest.test_case "coordinator blind" `Quick test_ask_all_visible_coordinator_blind;
          Alcotest.test_case "blackboard ordered" `Quick test_ask_all_visible_blackboard_ordered;
          Alcotest.test_case "visible contents" `Quick test_ask_all_visible_contents;
          Alcotest.test_case "dedup reduces upload" `Quick test_blackboard_dedup_reduces_upload;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "models agree on far" `Slow test_models_agree_on_far_instance;
          Alcotest.test_case "streaming vs congest" `Quick test_streaming_agrees_with_congest;
        ] );
      ( "identities",
        [
          Alcotest.test_case "exact cost formula" `Quick test_exact_cost_identity;
          Alcotest.test_case "amplify accumulates" `Quick test_amplify_accumulates_bits;
          Alcotest.test_case "report consistency" `Quick test_report_internal_consistency;
        ] );
    ]
