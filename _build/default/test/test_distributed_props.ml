(* Tests for the additional property-testing systems: centralized traversal
   helpers, the connectivity/bipartiteness protocols, triangle-edge counting,
   and the CONGEST substrate with its [10]-style tester. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params = Tfree.Params.practical

(* ------------------------------------------------------------ traversal *)

let test_traversal_bfs () =
  let g = Gen.path ~n:5 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] (Traversal.bfs g 0)

let test_traversal_components () =
  let g = Graph.of_edges ~n:7 [ (0, 1); (1, 2); (3, 4) ] in
  let label, count = Traversal.components g in
  checki "four components (two isolated)" 4 count;
  checkb "0,1,2 together" true (label.(0) = label.(1) && label.(1) = label.(2));
  checkb "3,4 together" true (label.(3) = label.(4));
  checkb "separate" true (label.(0) <> label.(3) && label.(3) <> label.(5))

let test_traversal_connected () =
  checkb "path connected" true (Traversal.is_connected (Gen.path ~n:10));
  checkb "matching disconnected" false
    (Traversal.is_connected (Graph.of_edges ~n:6 [ (0, 1); (2, 3); (4, 5) ]));
  checkb "empty trivially connected" true (Traversal.is_connected (Graph.empty ~n:1))

let test_traversal_two_color () =
  checkb "even cycle bipartite" true (Traversal.is_bipartite (Gen.cycle ~n:8));
  checkb "odd cycle not" false (Traversal.is_bipartite (Gen.cycle ~n:9));
  checkb "K33 bipartite" true (Traversal.is_bipartite (Gen.complete_bipartite ~left:3 ~right:3));
  match Traversal.two_color (Gen.cycle ~n:8) with
  | Some color ->
      Graph.iter_edges (Gen.cycle ~n:8) (fun u v -> checkb "proper" true (color.(u) <> color.(v)))
  | None -> Alcotest.fail "expected coloring"

let test_traversal_odd_cycle_valid () =
  let check_graph g =
    match Traversal.odd_cycle g with
    | Some cycle ->
        checkb "odd length" true (List.length cycle mod 2 = 1);
        checkb "length >= 3" true (List.length cycle >= 3);
        let arr = Array.of_list cycle in
        let len = Array.length arr in
        for i = 0 to len - 1 do
          checkb "cycle edge" true (Graph.mem_edge g arr.(i) arr.((i + 1) mod len))
        done
    | None -> checkb "graph was bipartite" true (Traversal.is_bipartite g)
  in
  check_graph (Gen.cycle ~n:9);
  check_graph (Gen.complete ~n:5);
  let rng = Rng.create 3 in
  for s = 1 to 20 do
    check_graph (Gen.gnp (Rng.split rng s) ~n:30 ~p:0.15)
  done

let test_traversal_odd_cycle_none_on_bipartite () =
  checkb "none" true (Traversal.odd_cycle (Gen.complete_bipartite ~left:5 ~right:4) = None)

(* --------------------------------------------------------- connectivity *)

let matching_graph ~n =
  Graph.of_edges ~n (List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1)))

let test_connectivity_rejects_matching () =
  (* n/2 two-vertex components: maximally far from connected. *)
  let rng = Rng.create 11 in
  let g = matching_graph ~n:400 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let rt = Runtime.make ~seed:1 parts in
  match Tfree.Prop_protocols.test_connectivity rt params ~key:5 with
  | Tfree.Prop_protocols.Disconnected comp ->
      (* the witness must be a full small component *)
      checkb "component size 2" true (List.length comp = 2);
      let a, b = match comp with [ a; b ] -> (a, b) | _ -> Alcotest.fail "size" in
      checkb "really an edge" true (Graph.mem_edge g a b)
  | Tfree.Prop_protocols.Connected_looking -> Alcotest.fail "should detect disconnection"

let test_connectivity_accepts_connected () =
  let rng = Rng.create 12 in
  for s = 1 to 5 do
    let g = Gen.cycle ~n:300 in
    let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.3 g in
    let rt = Runtime.make ~seed:s parts in
    match Tfree.Prop_protocols.test_connectivity rt params ~key:5 with
    | Tfree.Prop_protocols.Disconnected _ -> Alcotest.fail "false witness on a connected graph"
    | Tfree.Prop_protocols.Connected_looking -> ()
  done

let test_connectivity_witness_always_sound () =
  (* One-sidedness: any Disconnected witness is a full component < V. *)
  let rng = Rng.create 13 in
  for s = 1 to 10 do
    let g = Gen.gnp (Rng.split rng s) ~n:120 ~p:0.01 in
    let parts = Partition.disjoint_random (Rng.split rng (100 + s)) ~k:3 g in
    let rt = Runtime.make ~seed:s parts in
    match Tfree.Prop_protocols.test_connectivity rt params ~key:5 with
    | Tfree.Prop_protocols.Disconnected comp ->
        let label, _ = Traversal.components g in
        let c0 = label.(List.hd comp) in
        List.iter (fun v -> checki "same component" c0 label.(v)) comp;
        let full_size =
          Array.fold_left (fun acc l -> if l = c0 then acc + 1 else acc) 0 label
        in
        checki "witness is the whole component" full_size (List.length comp);
        checkb "smaller than V" true (List.length comp < Graph.n g)
    | Tfree.Prop_protocols.Connected_looking -> ()
  done

let test_connectivity_empty_graph () =
  let parts = [| Graph.empty ~n:10; Graph.empty ~n:10 |] in
  let rt = Runtime.make ~seed:1 parts in
  match Tfree.Prop_protocols.test_connectivity rt params ~key:5 with
  | Tfree.Prop_protocols.Disconnected _ -> ()
  | Tfree.Prop_protocols.Connected_looking -> Alcotest.fail "empty graph with 10 vertices is disconnected"

(* -------------------------------------------------------- bipartiteness *)

let test_bipartiteness_accepts_bipartite () =
  let rng = Rng.create 14 in
  for s = 1 to 5 do
    let g = Gen.complete_bipartite ~left:40 ~right:40 in
    let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.3 g in
    let rt = Runtime.make ~seed:s parts in
    match Tfree.Prop_protocols.test_bipartiteness rt params ~key:7 with
    | Tfree.Prop_protocols.Odd_cycle _ -> Alcotest.fail "false odd cycle"
    | Tfree.Prop_protocols.Bipartite_looking -> ()
  done

let test_bipartiteness_rejects_far () =
  (* planted triangles are odd cycles; dense with them = far from bipartite *)
  let rng = Rng.create 15 in
  let g = Gen.planted_far rng ~n:200 ~triangles:60 ~noise:0 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let hits = ref 0 in
  for s = 1 to 10 do
    let rt = Runtime.make ~seed:s parts in
    match Tfree.Prop_protocols.test_bipartiteness rt params ~key:7 with
    | Tfree.Prop_protocols.Odd_cycle cycle ->
        checkb "odd" true (List.length cycle mod 2 = 1);
        let arr = Array.of_list cycle in
        let len = Array.length arr in
        for i = 0 to len - 1 do
          checkb "real edge" true (Graph.mem_edge g arr.(i) arr.((i + 1) mod len))
        done;
        incr hits
    | Tfree.Prop_protocols.Bipartite_looking -> ()
  done;
  checkb (Printf.sprintf "detected %d/10" !hits) true (!hits >= 6)

(* --------------------------------------------------------------- count *)

let test_is_triangle_edge_distributed () =
  (* closing pair split across players: local checking would miss it *)
  let n = 4 in
  let p1 = Graph.of_edges ~n [ (0, 1); (0, 2) ] in
  let p2 = Graph.of_edges ~n [ (1, 2) ] in
  let rt = Runtime.make ~seed:1 [| p1; p2 |] in
  checkb "detects split triangle" true (Tfree.Count.is_triangle_edge rt ~key:1 (0, 1));
  let rt2 = Runtime.make ~seed:1 [| p1; Graph.empty ~n |] in
  checkb "no closing edge" false (Tfree.Count.is_triangle_edge rt2 ~key:1 (0, 1))

let test_is_triangle_edge_matches_centralized () =
  let rng = Rng.create 16 in
  let g = Gen.gnp rng ~n:40 ~p:0.15 in
  let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.4 g in
  let rt = Runtime.make ~seed:2 parts in
  List.iteri
    (fun i e ->
      if i < 15 then
        checkb "agrees with Definition 3" true
          (Tfree.Count.is_triangle_edge rt ~key:(100 + i) e = Triangle.is_triangle_edge g e))
    (Graph.edges g)

let test_count_zero_on_free () =
  let rng = Rng.create 17 in
  let g = Gen.free_with_degree rng ~n:200 ~d:4.0 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let rt = Runtime.make ~seed:3 parts in
  let est = Tfree.Count.estimate_triangle_edge_fraction rt ~key:9 ~samples:30 in
  checki "no hits on a free graph" 0 est.Tfree.Count.hits;
  checkb "fraction zero" true (est.Tfree.Count.fraction = 0.0)

let test_count_estimates_fraction () =
  let rng = Rng.create 18 in
  let g = Gen.planted_far rng ~n:300 ~triangles:40 ~noise:120 in
  let truth = float_of_int (List.length (Triangle.triangle_edges g)) /. float_of_int (Graph.m g) in
  let parts = Partition.with_duplication rng ~k:3 ~dup_p:0.3 g in
  let rt = Runtime.make ~seed:4 parts in
  let est = Tfree.Count.estimate_triangle_edge_fraction rt ~key:9 ~samples:120 in
  checkb
    (Printf.sprintf "estimate %.3f vs truth %.3f" est.Tfree.Count.fraction truth)
    true
    (Float.abs (est.Tfree.Count.fraction -. truth) < 0.15)

let test_count_empty_graph () =
  let parts = [| Graph.empty ~n:10 |] in
  let rt = Runtime.make ~seed:5 parts in
  let est = Tfree.Count.estimate_triangle_edge_fraction rt ~key:9 ~samples:10 in
  checki "nothing sampled" 0 est.Tfree.Count.sampled

let test_collect_neighbors_union () =
  let rng = Rng.create 19 in
  let g = Gen.gnp rng ~n:50 ~p:0.2 in
  let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.5 g in
  let rt = Runtime.make ~seed:6 parts in
  let got = List.sort compare (Tfree.Count.collect_neighbors rt ~key:1 7) in
  Alcotest.(check (list int)) "matches true neighbourhood" (Array.to_list (Graph.neighbors g 7)) got


let test_count_estimate_scaled () =
  (* the m-scaled estimator lands near the true triangle-edge count *)
  let rng = Rng.create 20 in
  let g = Gen.planted_far rng ~n:300 ~triangles:40 ~noise:120 in
  let truth = float_of_int (List.length (Triangle.triangle_edges g)) in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let rt = Runtime.make ~seed:6 parts in
  let est = Tfree.Count.estimate_triangle_edges rt params ~key:13 ~samples:120 in
  checkb (Printf.sprintf "estimate %.0f vs truth %.0f" est truth) true
    (est > truth /. 3.0 && est < truth *. 3.0)

(* -------------------------------------------------------------- congest *)

let test_congest_bandwidth_enforced () =
  let g = Gen.path ~n:4 in
  let chatty : unit Tfree_congest.Simulator.algorithm =
    {
      init = (fun ~n:_ _ _ -> ());
      round =
        (fun ~n ~round:_ v () ~rng:_ ~inbox:_ ~neighbors ->
          ((), Array.to_list (Array.map (fun u -> (u, Msg.vertices ~n [ v; v; v; v; v; v ])) neighbors)));
    }
  in
  checkb "raises on oversized message" true
    (try
       ignore (Tfree_congest.Simulator.run g ~b_bits:4 ~rounds:1 ~seed:1 chatty);
       false
     with Tfree_congest.Simulator.Bandwidth_exceeded _ -> true)

let test_congest_rejects_nonneighbor_send () =
  let g = Gen.path ~n:4 in
  let bad : unit Tfree_congest.Simulator.algorithm =
    {
      init = (fun ~n:_ _ _ -> ());
      round = (fun ~n:_ ~round:_ v () ~rng:_ ~inbox:_ ~neighbors:_ ->
          ((), if v = 0 then [ (3, Msg.bool true) ] else []));
    }
  in
  Alcotest.check_raises "non-neighbour" (Invalid_argument "Congest.run: send to non-neighbour")
    (fun () -> ignore (Tfree_congest.Simulator.run g ~b_bits:8 ~rounds:1 ~seed:1 bad))

let test_congest_message_delivery () =
  (* ping along a path: message sent in round r arrives in round r+1 *)
  let g = Gen.path ~n:3 in
  let relay : int Tfree_congest.Simulator.algorithm =
    {
      init = (fun ~n:_ v _ -> if v = 0 then 1 else 0);
      round =
        (fun ~n:_ ~round:_ v st ~rng:_ ~inbox ~neighbors:_ ->
          let received = List.fold_left (fun acc (_, m) -> acc + Msg.get_int m) 0 inbox in
          let st = st + received in
          let outbox = if st > 0 && v < 2 then [ (v + 1, Msg.nat st) ] else [] in
          (st, outbox))
    }
  in
  let states, stats = Tfree_congest.Simulator.run g ~b_bits:16 ~rounds:3 ~seed:1 relay in
  checkb "token reached the end" true (states.(2) > 0);
  checkb "messages counted" true (stats.Tfree_congest.Simulator.messages >= 2)

let test_congest_tester_one_sided () =
  let rng = Rng.create 20 in
  for s = 1 to 6 do
    let g = Gen.free_with_degree (Rng.split rng s) ~n:300 ~d:5.0 in
    let r = Tfree_congest.Triangle_tester.test g ~eps:0.1 ~seed:s in
    checkb "never fabricates" true (r.Tfree_congest.Triangle_tester.triangle = None)
  done

let test_congest_tester_detects () =
  let rng = Rng.create 21 in
  let hits = ref 0 in
  for s = 1 to 10 do
    let g = Gen.far_with_degree (Rng.split rng s) ~n:400 ~d:6.0 ~eps:0.1 in
    let r = Tfree_congest.Triangle_tester.test g ~eps:0.1 ~seed:s in
    match r.Tfree_congest.Triangle_tester.triangle with
    | Some t ->
        checkb "real triangle" true (Triangle.is_triangle g t);
        incr hits
    | None -> ()
  done;
  checkb (Printf.sprintf "detected %d/10" !hits) true (!hits >= 8)

let test_congest_tester_respects_bandwidth () =
  let rng = Rng.create 22 in
  let g = Gen.far_with_degree rng ~n:300 ~d:5.0 ~eps:0.1 in
  let r = Tfree_congest.Triangle_tester.test g ~eps:0.2 ~seed:1 in
  checkb "messages within log n + 1" true
    (r.Tfree_congest.Triangle_tester.stats.Tfree_congest.Simulator.max_message_bits
    <= 1 + Bits.vertex ~n:300)

let test_congest_rounds_to_detect () =
  let rng = Rng.create 23 in
  let g = Gen.far_with_degree rng ~n:400 ~d:6.0 ~eps:0.1 in
  match Tfree_congest.Triangle_tester.rounds_to_detect g ~seed:2 ~max_rounds:4096 with
  | Some rounds -> checkb "found within budget" true (rounds <= 4096)
  | None -> Alcotest.fail "far graph should be detected"

let () =
  Alcotest.run "tfree_distributed_props"
    [
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_traversal_bfs;
          Alcotest.test_case "components" `Quick test_traversal_components;
          Alcotest.test_case "connected" `Quick test_traversal_connected;
          Alcotest.test_case "two color" `Quick test_traversal_two_color;
          Alcotest.test_case "odd cycle valid" `Quick test_traversal_odd_cycle_valid;
          Alcotest.test_case "odd cycle none" `Quick test_traversal_odd_cycle_none_on_bipartite;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "rejects matching" `Quick test_connectivity_rejects_matching;
          Alcotest.test_case "accepts connected" `Quick test_connectivity_accepts_connected;
          Alcotest.test_case "witness sound" `Quick test_connectivity_witness_always_sound;
          Alcotest.test_case "empty graph" `Quick test_connectivity_empty_graph;
        ] );
      ( "bipartiteness",
        [
          Alcotest.test_case "accepts bipartite" `Quick test_bipartiteness_accepts_bipartite;
          Alcotest.test_case "rejects far" `Quick test_bipartiteness_rejects_far;
        ] );
      ( "count",
        [
          Alcotest.test_case "split triangle" `Quick test_is_triangle_edge_distributed;
          Alcotest.test_case "matches centralized" `Quick test_is_triangle_edge_matches_centralized;
          Alcotest.test_case "zero on free" `Quick test_count_zero_on_free;
          Alcotest.test_case "estimates fraction" `Slow test_count_estimates_fraction;
          Alcotest.test_case "empty graph" `Quick test_count_empty_graph;
          Alcotest.test_case "collect neighbors" `Quick test_collect_neighbors_union;
          Alcotest.test_case "scaled estimate" `Slow test_count_estimate_scaled;
        ] );
      ( "congest",
        [
          Alcotest.test_case "bandwidth enforced" `Quick test_congest_bandwidth_enforced;
          Alcotest.test_case "non-neighbour send" `Quick test_congest_rejects_nonneighbor_send;
          Alcotest.test_case "message delivery" `Quick test_congest_message_delivery;
          Alcotest.test_case "one-sided" `Quick test_congest_tester_one_sided;
          Alcotest.test_case "detects" `Slow test_congest_tester_detects;
          Alcotest.test_case "bandwidth respected" `Quick test_congest_tester_respects_bandwidth;
          Alcotest.test_case "rounds to detect" `Quick test_congest_rounds_to_detect;
        ] );
    ]
