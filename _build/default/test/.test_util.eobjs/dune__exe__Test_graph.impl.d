test/test_graph.ml: Alcotest Array Behrend Bucket Distance Float Format Gen Graph Hashtbl List Partition QCheck QCheck_alcotest Rng Test Tfree_graph Tfree_util Triangle
