test/test_blocks.ml: Alcotest Array Cost Float Gen Graph Hashtbl List Option Partition Printf QCheck QCheck_alcotest Queue Rng Runtime Sampling Stats Test Tfree Tfree_comm Tfree_graph Tfree_util
