test/test_streaming.ml: Alcotest Bits Bridge Detector Gen Graph List Option Partition Printf QCheck QCheck_alcotest Rng Stream_alg Test Tfree_graph Tfree_streaming Tfree_util Triangle
