test/test_comm.ml: Alcotest Array Bits Cost Gen Graph List Msg Oneway Option Partition QCheck QCheck_alcotest Rng Runtime Simultaneous Test Tfree_comm Tfree_graph Tfree_util
