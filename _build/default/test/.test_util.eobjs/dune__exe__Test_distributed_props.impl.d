test/test_distributed_props.ml: Alcotest Array Bits Float Gen Graph List Msg Partition Printf Rng Runtime Tfree Tfree_comm Tfree_congest Tfree_graph Tfree_util Traversal Triangle
