test/test_util.ml: Alcotest Array Bits Float Gen Hashtbl List QCheck QCheck_alcotest Rng Sampling Seq Stats String Table Test Tfree_util
