test/test_params.ml: Alcotest Float List Printf Tfree
