test/test_protocols.ml: Alcotest Array Bucket Gen Graph Hashtbl List Partition Printf QCheck QCheck_alcotest Rng Test Tfree Tfree_comm Tfree_graph Tfree_util Triangle
