test/test_proptest.ml: Alcotest Gen Graph List Printf QCheck QCheck_alcotest Query_model Rng Test Testers Tfree_graph Tfree_proptest Tfree_util Triangle
