test/test_proptest.mli:
