test/test_distributed_props.mli:
