(** Degree-oblivious simultaneous protocol — Algorithm 11 / Theorem 3.32.
    Each player derives a window of O(log k) shared degree guesses from its
    observed average degree and participates in the matching AlgHigh/AlgLow
    instances with d̄ⱼ-tied budgets (Lemmas 3.30–3.31); the referee checks
    each per-guess union. *)

open Tfree_comm
open Tfree_graph

(** d̄ⱼ = 2|Eⱼ|/n: the player's observed average degree. *)
val observed_avg_degree : n:int -> Graph.t -> float

(** The shared power-of-two guess exponents covering [d̄ⱼ, (4k/ǫ)·d̄ⱼ]. *)
val guess_range : Params.t -> k:int -> n:int -> float -> int list

(** Per-instance edge budgets (Lemmas 3.30 and 3.31). *)
val cap_high : Params.t -> k:int -> n:int -> float -> int

val cap_low : Params.t -> k:int -> n:int -> int

val protocol : Params.t -> Triangle.triangle option Simultaneous.protocol

val run :
  ?tap:Tfree_comm.Channel.tap ->
  seed:int ->
  Params.t ->
  Partition.t ->
  Triangle.triangle option Simultaneous.outcome
