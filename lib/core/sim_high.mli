(** Simultaneous protocol for high degrees d = Ω(√n) — Algorithm 7
    (Theorem 3.24, O~(k·(nd)^{1/3}) bits) and its uncapped variant
    Algorithm 9: a shared vertex sample S of ~c·(n²/(ǫd))^{1/3} vertices;
    players send their edges inside S; the referee searches the union. *)

open Tfree_comm
open Tfree_graph

(** |S| = c·(n²/(ǫ·d))^{1/3}, clamped to [3, n]. *)
val sample_size : Params.t -> n:int -> d:float -> int

(** Per-player edge cap l = 4·|S|²·d/(δ·n) (Algorithm 7 step 2). *)
val edge_cap : Params.t -> n:int -> d:float -> s:int -> int

val protocol : ?capped:bool -> Params.t -> d:float -> Triangle.triangle option Simultaneous.protocol

val run :
  ?tap:Tfree_comm.Channel.tap ->
  ?capped:bool ->
  seed:int ->
  Params.t ->
  d:float ->
  Partition.t ->
  Triangle.triangle option Simultaneous.outcome
