(** Degree-oblivious simultaneous protocol — Algorithm 11 / Theorem 3.32.

    No player knows the global average degree d, and being simultaneous they
    cannot estimate it first.  Following §3.4.3: each player j computes its
    observed average degree d̄ⱼ = 2|Eⱼ|/n; if j is "relevant"
    (d̄ⱼ ≥ (ǫ/4k)·d) then the true d lies in [d̄ⱼ, (4k/ǫ)·d̄ⱼ].  The player
    participates in the O(log k) protocol instances whose degree guesses
    (powers of two, shared across players) fall in that window — AlgHigh
    (uncapped Sim_high sampling) for guesses ≥ √n, AlgLow below — with a
    per-instance edge budget tied to d̄ⱼ (Lemmas 3.30/3.31), which is what
    prevents the k-factor blow-up.  The referee unions the messages per
    guess and checks each union for a triangle; the instance at the correct
    guess receives every edge it needs from all relevant players. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let observed_avg_degree ~n input = 2.0 *. float_of_int (Graph.m input) /. float_of_int (max 1 n)

(* Shared guess grid: exponent t encodes the degree guess 2^t. *)
let guess_range (p : Params.t) ~k ~n d_bar =
  let lo = Float.max 1.0 d_bar in
  let hi = Float.min (float_of_int n) (4.0 *. float_of_int k /. p.eps *. Float.max 1.0 d_bar) in
  let t_lo = int_of_float (Float.floor (Bits.log2 lo)) in
  let t_hi = int_of_float (Float.ceil (Bits.log2 (Float.max 2.0 hi))) in
  List.init (t_hi - t_lo + 1) (fun i -> t_lo + i)

(* Per-instance caps of Lemmas 3.30 and 3.31, scaled by boost. *)
let cap_high (p : Params.t) ~k ~n d_bar =
  let logn = Params.log_n ~n in
  let logk = Float.max 1.0 (Bits.log2 (float_of_int (max 2 k))) in
  let base = Float.pow (float_of_int n *. Float.max 1.0 d_bar) (1.0 /. 3.0) in
  max 8 (int_of_float (Float.ceil (4.0 *. p.boost /. p.delta *. base *. logn *. (1.0 +. logk))))

let cap_low (p : Params.t) ~k ~n =
  let logn = Params.log_n ~n in
  let logk = Float.max 1.0 (Bits.log2 (float_of_int (max 2 k))) in
  max 8
    (int_of_float
       (Float.ceil (4.0 *. p.boost /. p.delta *. sqrt (float_of_int n) *. logn *. (1.0 +. logk))))

(* Edges this player contributes to the instance with guess 2^t. *)
let instance_edges (p : Params.t) ctx ~t ~d_bar input =
  let n = ctx.Simultaneous.n in
  let k = ctx.Simultaneous.k in
  let d_guess = Float.pow 2.0 (float_of_int t) in
  if d_guess >= sqrt (float_of_int n) then begin
    (* AlgHigh sampling at guessed density, shared stream keyed by t. *)
    let s = Sim_high.sample_size p ~n ~d:d_guess in
    let rng = Simultaneous.shared_rng ctx ~key:(1000 + t) in
    let in_s v = Rng.hash_float rng v < float_of_int s /. float_of_int n in
    let selected =
      Graph.fold_edges input ~init:[] ~f:(fun acc u v -> if in_s u && in_s v then (u, v) :: acc else acc)
    in
    List.filteri (fun idx _ -> idx < cap_high p ~k ~n d_bar) selected
  end
  else begin
    (* AlgLow sampling: S keyed by the guess, R shared across instances (the
       paper notes players can reuse the same R). *)
    let rng_s = Simultaneous.shared_rng ctx ~key:(2000 + t) in
    let rng_r = Simultaneous.shared_rng ctx ~key:22 in
    let c = Sim_low.c_const p in
    let ps = Float.min 1.0 (c /. Float.max 1.0 d_guess) in
    let pr = Float.min 1.0 (c /. sqrt (float_of_int n)) in
    let in_s v = Rng.hash_float rng_s v < ps in
    let in_r v = Rng.hash_float rng_r v < pr in
    let wanted u v = (in_r u && (in_r v || in_s v)) || (in_r v && (in_r u || in_s u)) in
    let selected =
      Graph.fold_edges input ~init:[] ~f:(fun acc u v -> if wanted u v then (u, v) :: acc else acc)
    in
    List.filteri (fun idx _ -> idx < cap_low p ~k ~n) selected
  end

let player_message (p : Params.t) ctx _j input =
  let n = ctx.Simultaneous.n in
  let k = ctx.Simultaneous.k in
  let d_bar = observed_avg_degree ~n input in
  let guesses = if Graph.m input = 0 then [] else guess_range p ~k ~n d_bar in
  let parts =
    List.concat_map
      (fun t -> [ Msg.nat t; Msg.edges ~n (instance_edges p ctx ~t ~d_bar input) ])
      guesses
  in
  Msg.tuple parts

let referee ctx messages =
  let n = ctx.Simultaneous.n in
  (* Group the received edge lists by guess exponent and test each union. *)
  let by_guess : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun msg ->
      let rec pairs = function
        | [] -> ()
        | tag :: payload :: rest ->
            let t = Msg.get_int tag in
            let es = Msg.get_edges payload in
            (match Hashtbl.find_opt by_guess t with
            | Some r -> r := es @ !r
            | None -> Hashtbl.add by_guess t (ref es));
            pairs rest
        | [ _ ] -> invalid_arg "Sim_oblivious.referee: odd tuple"
      in
      pairs (Msg.get_tuple msg))
    messages;
  let guesses = Hashtbl.fold (fun t _ acc -> t :: acc) by_guess [] in
  List.fold_left
    (fun acc t ->
      match acc with
      | Some _ -> acc
      | None ->
          let es = !(Hashtbl.find by_guess t) in
          Triangle.find (Graph.of_edges ~n es))
    None
    (List.sort compare guesses)

let protocol (p : Params.t) = { Simultaneous.player = player_message p; referee }

(* One simultaneous round: a single "upload" phase covers every charged bit. *)
let run ?tap ~seed (p : Params.t) inputs =
  Tfree_trace.Trace.span "upload" (fun () -> Simultaneous.run ?tap ~seed (protocol p) inputs)
