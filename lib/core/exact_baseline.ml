(** Exact triangle detection baseline.

    Woodruff–Zhang [38] show that exact triangle detection in this model
    essentially requires every player to send its whole input — Ω(k·n·d)
    bits.  The trivial protocol below realizes that cost: each player sends
    all of its edges and the referee answers exactly.  Every experiment that
    quantifies how much the property-testing relaxation buys (§5, Table 1's
    headline gap) compares against this baseline. *)

open Tfree_graph
open Tfree_comm

let protocol =
  {
    Simultaneous.player = (fun ctx _j input -> Msg.edges ~n:ctx.Simultaneous.n (Graph.edges input));
    referee =
      (fun ctx messages ->
        let union =
          Graph.of_edges ~n:ctx.Simultaneous.n (List.concat_map Msg.get_edges (Array.to_list messages))
        in
        Triangle.find union);
  }

(* One simultaneous round of full inputs: a single "full-upload" phase. *)
let run ?tap ~seed inputs =
  Tfree_trace.Trace.span "full-upload" (fun () -> Simultaneous.run ?tap ~seed protocol inputs)

(** Exact bit cost of the baseline on a given partition (no randomness). *)
let cost inputs =
  let n = Partition.n inputs in
  Array.fold_left
    (fun acc g -> acc + Msg.bits (Msg.edges ~n (Graph.edges g)))
    0
    (Array.init (Partition.k inputs) (Partition.player inputs))
