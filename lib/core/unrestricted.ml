(** The unrestricted-communication triangle-finding protocol of §3.3
    (Algorithms 1–6), achieving O~(k·(nd)^{1/4} + k²) bits.

    Pipeline, exactly as in the paper:
    + estimate the average degree (Corollary 3.22 — the protocol is
      degree-oblivious);
    + iterate over degree buckets B_i in the window [d_l, d_h] (Lemma 3.12
      guarantees the lowest full bucket B_min lies there);
    + per bucket, sample candidate full vertices uniformly from the suspected
      set B̃_i via shared random priorities (Algorithm 1), filter them by an
      approximate-degree check (Algorithm 3);
    + per candidate, sample its incident edges with probability
      ~sqrt(log n/(ǫ·deg)) (Algorithm 4) — by the extended birthday paradox
      (Lemma 3.9) a full vertex's sample contains a triangle-vee;
    + the coordinator posts the sampled star; any player holding an edge that
      closes a vee into a triangle reports it (the step impossible in the
      query model that powers the (nd)^{1/4} bound).

    One-sided error: a triangle is reported only after the closing edge is
    exhibited by a player that holds it, and both vee edges were received
    from players, so every reported triangle is real. *)

open Tfree_util
open Tfree_graph
open Tfree_comm

type stats = {
  buckets_tried : int;
  candidates_tested : int;
  edges_posted : int;
}

let no_stats = { buckets_tried = 0; candidates_tested = 0; edges_posted = 0 }

(* Player j's suspected-bucket membership B̃ʲ_i for all buckets, computed
   once per protocol run (purely local, so free of communication). *)
let btilde_members rt =
  let n = Runtime.n rt in
  let k = Runtime.k rt in
  let n_buckets = Bucket.count ~n in
  Array.init k (fun j ->
      let input = Runtime.input rt j in
      let lists = Array.make n_buckets [] in
      for v = n - 1 downto 0 do
        let dv = Graph.degree input v in
        if dv > 0 then
          for i = 0 to n_buckets - 1 do
            if Bucket.suspects ~k ~i dv then lists.(i) <- v :: lists.(i)
          done
      done;
      Array.map Array.of_list lists)

(* Algorithm 1: uniform sample from B̃_i = ∪_j B̃ʲ_i under a shared random
   priority; unbiased despite vertices being suspected by several players.
   [btilde] is the optional precomputed membership (player -> bucket ->
   vertices); without it each player scans its whole vertex range. *)
let sample_uniform_from_btilde ?btilde rt ~key ~i =
  let rng = Runtime.shared_rng rt ~key in
  let prio v = (Rng.hash_float rng v, v) in
  let n = Runtime.n rt in
  let k = Runtime.k rt in
  let best_in_array vs =
    Array.fold_left
      (fun acc v ->
        match acc with Some b when prio b <= prio v -> acc | _ -> Some v)
      None vs
  in
  let best_of j input =
    match btilde with
    | Some tbl -> best_in_array tbl.(j).(i)
    | None ->
        let best = ref None in
        for v = 0 to n - 1 do
          if Bucket.suspects ~k ~i (Graph.degree input v) then begin
            match !best with
            | Some b when prio b <= prio v -> ()
            | _ -> best := Some v
          end
        done;
        !best
  in
  let replies =
    Tfree_trace.Trace.span "candidate-sample" (fun () ->
        Runtime.ask_all rt ~req:Msg.empty (fun j input -> Msg.vertex_opt ~n (best_of j input)))
  in
  Array.fold_left
    (fun acc reply ->
      match (acc, Msg.get_vertex_opt reply) with
      | None, r -> r
      | Some b, Some v when prio v < prio b -> Some v
      | acc, _ -> acc)
    None replies

(* Algorithm 3: candidate full vertices for bucket i, with approximate
   degrees.  Caps follow the paper's q and |C| bounds scaled by boost. *)
let get_full_candidates ?btilde rt (p : Params.t) ~key ~i =
  let n = Runtime.n rt in
  let k = Runtime.k rt in
  let q = max 4 (Params.bucket_samples p ~k ~n) in
  let cap = max 2 (Params.candidate_cap p ~n) in
  let tau = p.delta /. (3.0 *. float_of_int q) in
  let lo = float_of_int (Bucket.d_minus i) /. sqrt 3.0 in
  let hi = sqrt 3.0 *. float_of_int (Bucket.d_plus i) in
  let seen = Hashtbl.create 16 in
  let rec loop count c =
    if count >= q || List.length c >= cap then List.rev c
    else begin
      match sample_uniform_from_btilde ?btilde rt ~key:(key + (31 * (count + 1))) ~i with
      | None -> List.rev c (* no player suspects this bucket: B̃_i is empty *)
      | Some v ->
          if Hashtbl.mem seen v then loop (count + 1) c
          else begin
            Hashtbl.replace seen v ();
            let d_hat =
              Tfree_trace.Trace.span "degree-guess" (fun () ->
                  Degree_approx.approx_degree rt ~key:(key + (997 * (count + 1))) ~alpha:(sqrt 3.0)
                    ~tau ~boost:(Params.degree_approx_boost p) v)
            in
            let fd = float_of_int d_hat in
            if fd >= lo && fd <= hi then loop (count + 1) ((v, d_hat) :: c)
            else loop (count + 1) c
          end
    end
  in
  loop 0 []

(* Algorithm 4: post a sampled star around v; returns the sampled neighbours
   confirmed to exist (union over players, truncated per player by the cap of
   step 2). *)
let sample_edges rt (p : Params.t) ~key v ~d_hat =
  let n = Runtime.n rt in
  let d_eff = Float.max 1.0 (float_of_int d_hat /. sqrt 3.0) in
  let prob = Params.edge_sample_prob p ~n ~d:d_eff in
  let cap =
    int_of_float
      (Float.ceil ((sqrt 3.0 *. float_of_int d_hat *. prob) +. (18.0 *. sqrt 3.0 *. Params.ln6d p)))
  in
  let rng = Runtime.shared_rng rt ~key in
  let marked u = Rng.hash_float rng u < prob in
  (* On a blackboard the players post in turns and skip edges already on the
     board (Theorem 3.23); on private channels each sends its full sample. *)
  let replies =
    Tfree_trace.Trace.span "sample-edges" @@ fun () ->
    Runtime.ask_all_visible rt ~req:(Msg.vertex ~n v) (fun _ input visible ->
        let already = Hashtbl.create 16 in
        List.iter
          (fun prev -> List.iter (fun u -> Hashtbl.replace already u ()) (Msg.get_vertices prev))
          visible;
        let sampled =
          Array.to_list (Graph.neighbors input v)
          |> List.filter (fun u -> marked u && not (Hashtbl.mem already u))
          |> List.filteri (fun idx _ -> idx < cap)
        in
        Msg.vertices ~n sampled)
  in
  let tbl = Hashtbl.create 32 in
  Array.iter (fun reply -> List.iter (fun u -> Hashtbl.replace tbl u ()) (Msg.get_vertices reply)) replies;
  Hashtbl.fold (fun u () acc -> u :: acc) tbl []

(* Close a vee: the coordinator posts the star {v} × ws; each player replies
   with an edge {a,b} ⊆ ws it holds, if any. *)
let close_vee rt ~v ~ws =
  Tfree_trace.Trace.span "broadcast" @@ fun () ->
  let n = Runtime.n rt in
  (* On a blackboard the sampled star is already public; on private channels
     the coordinator must forward it to every player. *)
  (match Runtime.mode rt with
  | Runtime.Coordinator -> Runtime.tell_all rt (Msg.tuple [ Msg.vertex ~n v; Msg.vertices ~n ws ])
  | Runtime.Blackboard -> ());
  let ws_arr = Array.of_list (List.sort_uniq compare ws) in
  let find_closing input =
    let len = Array.length ws_arr in
    let rec outer i =
      if i >= len then None
      else begin
        let rec inner j =
          if j >= len then None
          else if Graph.mem_edge input ws_arr.(i) ws_arr.(j) then Some (ws_arr.(i), ws_arr.(j))
          else inner (j + 1)
        in
        match inner (i + 1) with None -> outer (i + 1) | some -> some
      end
    in
    outer 0
  in
  let replies =
    Runtime.ask_all rt ~req:Msg.empty (fun _ input ->
        match find_closing input with
        | None -> Msg.edges ~n []
        | Some e -> Msg.edges ~n [ e ])
  in
  Array.fold_left
    (fun acc reply ->
      match (acc, Msg.get_edges reply) with
      | None, [ (a, b) ] -> Some (Triangle.normalize (v, a, b))
      | acc, _ -> acc)
    None replies

(* Algorithm 5 for one bucket. *)
let find_triangle_vee ?btilde rt p ~key ~i ~stats =
  let candidates = get_full_candidates ?btilde rt p ~key ~i in
  let rec try_candidates idx = function
    | [] -> None
    | (v, d_hat) :: rest -> begin
        stats := { !stats with candidates_tested = !stats.candidates_tested + 1 };
        let ws = sample_edges rt p ~key:(key + (7 * (idx + 1)) + 3) v ~d_hat in
        stats := { !stats with edges_posted = !stats.edges_posted + List.length ws };
        match close_vee rt ~v ~ws with
        | Some t -> Some t
        | None -> try_candidates (idx + 1) rest
      end
  in
  try_candidates 0 candidates

(** Algorithm 6 with the degree-oblivious window of Corollary 3.22: estimate
    d, then run FindTriangleVee on every bucket intersecting [d_l/2, 2·d_h].
    Returns a real triangle or [None]. *)
let find_triangle ?(collect_stats = false) rt (p : Params.t) =
  let stats = ref no_stats in
  let n = Runtime.n rt in
  let m_hat =
    Tfree_trace.Trace.span "degree-estimate" (fun () ->
        Degree_approx.approx_edge_count rt ~key:17 ~alpha:2.0 ~tau:(p.delta /. 6.0)
          ~boost:(Params.degree_approx_boost p))
  in
  if m_hat = 0 then (None, !stats)
  else begin
    let btilde = btilde_members rt in
    let d_est = 2.0 *. float_of_int m_hat /. float_of_int n in
    let logn = Params.log_n ~n in
    let dl = p.eps *. d_est /. (2.0 *. logn) /. 2.0 in
    let dh = 2.0 *. sqrt (float_of_int n *. d_est /. p.eps) in
    let i_max = Bucket.count ~n - 1 in
    let rec scan i =
      if i > i_max then None
      else if float_of_int (Bucket.d_plus i) < dl then scan (i + 1)
      else if float_of_int (Bucket.d_minus i) > dh then None
      else begin
        stats := { !stats with buckets_tried = !stats.buckets_tried + 1 };
        match find_triangle_vee ~btilde rt p ~key:(1009 * (i + 1)) ~i ~stats with
        | Some t -> Some t
        | None -> scan (i + 1)
      end
    in
    let result = Tfree_trace.Trace.span "bucket-scan" (fun () -> scan 0) in
    ignore collect_stats;
    (result, !stats)
  end
