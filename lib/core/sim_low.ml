(** Simultaneous protocol for low degrees d = O(√n) — Algorithm 8 (capped,
    Theorem 3.26) and its uncapped variant Algorithm 10.

    Two shared random vertex sets: S (each vertex with probability min(c/d,1))
    targets the few possibly-high-degree triangle sources, and R (probability
    c/√n) catches the two low-degree corners of each triangle by the birthday
    paradox.  Players send their edges with one endpoint in R and the other
    in R ∪ S; the referee looks for a triangle in the union.  Cost
    O(k·√n·log n) with constant error (Theorem 3.26). *)

open Tfree_util
open Tfree_graph
open Tfree_comm

let c_const (p : Params.t) = Params.sim_c p

let p1 (p : Params.t) ~d = Float.min 1.0 (c_const p /. Float.max 1.0 d)

let p2 (p : Params.t) ~n = Float.min 1.0 (c_const p /. sqrt (float_of_int n))

(** Per-player cap q = 2c²(√n + d)·(2/δ) (Algorithm 8 step 3). *)
let edge_cap (p : Params.t) ~n ~d =
  let c = c_const p in
  let q = 2.0 *. c *. c *. (sqrt (float_of_int n) +. Float.max 1.0 d) *. 2.0 /. p.delta in
  max 8 (int_of_float (Float.ceil q))

let player_message (p : Params.t) ~d ~capped ctx _j input =
  let n = ctx.Simultaneous.n in
  let rng_s = Simultaneous.shared_rng ctx ~key:21 in
  let rng_r = Simultaneous.shared_rng ctx ~key:22 in
  let in_s v = Rng.hash_float rng_s v < p1 p ~d in
  let in_r v = Rng.hash_float rng_r v < p2 p ~n in
  let wanted u v = (in_r u && (in_r v || in_s v)) || (in_r v && (in_r u || in_s u)) in
  let cap = if capped then edge_cap p ~n ~d else max_int in
  let selected = Graph.fold_edges input ~init:[] ~f:(fun acc u v -> if wanted u v then (u, v) :: acc else acc) in
  Msg.edges ~n (List.filteri (fun idx _ -> idx < cap) selected)

let referee ctx messages =
  let n = ctx.Simultaneous.n in
  let union = Graph.of_edges ~n (List.concat_map Msg.get_edges (Array.to_list messages)) in
  Triangle.find union

let protocol ?(capped = true) (p : Params.t) ~d =
  { Simultaneous.player = player_message p ~d ~capped; referee }

(* The whole protocol is one simultaneous round, so a single "upload" phase
   covers every charged bit (per-player structure lives in the trace's
   player rows). *)
let run ?tap ?(capped = true) ~seed (p : Params.t) ~d inputs =
  Tfree_trace.Trace.span "upload" (fun () -> Simultaneous.run ?tap ~seed (protocol ~capped p ~d) inputs)
