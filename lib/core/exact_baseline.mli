(** Exact triangle detection baseline: each player ships its whole input —
    the Θ(k·n·d) cost that Woodruff–Zhang [38] prove essentially necessary
    for exact detection, and the comparator for the paper's headline
    testing-vs-exact gap. *)

open Tfree_comm
open Tfree_graph

val protocol : Triangle.triangle option Simultaneous.protocol

val run :
  ?tap:Tfree_comm.Channel.tap ->
  seed:int ->
  Partition.t ->
  Triangle.triangle option Simultaneous.outcome

(** Deterministic bit cost of the baseline on the given partition. *)
val cost : Partition.t -> int
