(** Top-level API: test triangle-freeness of a distributed graph.

    Every tester is one-sided (§3): on a triangle-free input the verdict is
    always [Triangle_free] (no false witnesses, ever); on an ǫ-far input a
    real triangle is found with probability >= 1-δ. *)

open Tfree_graph
open Tfree_comm

type verdict =
  | Triangle of Triangle.triangle  (** witness found: the graph has a triangle *)
  | Triangle_free  (** nothing found: triangle-free, or the δ-failure on a far input *)

type report = {
  verdict : verdict;
  bits : int;  (** total communication *)
  rounds : int;  (** communication rounds (1 for simultaneous) *)
  max_message : int;  (** largest single player message *)
}

(** Unrestricted-communication tester (§3.3), degree-oblivious:
    O~(k·(nd)^¼ + k²) bits. *)
val unrestricted :
  ?mode:Runtime.mode -> ?tap:Channel.tap -> seed:int -> Params.t -> Partition.t -> report

(** Simultaneous tester for known average degree [d]: Algorithm 8 when
    d <= √n, Algorithm 7 otherwise (§3.4.2: they coincide at d = Θ(√n)). *)
val simultaneous : ?tap:Channel.tap -> seed:int -> Params.t -> d:float -> Partition.t -> report

(** Degree-oblivious simultaneous tester (Algorithm 11). *)
val simultaneous_oblivious : ?tap:Channel.tap -> seed:int -> Params.t -> Partition.t -> report

(** Exact baseline [38]: always correct, Θ(k·n·d) bits. *)
val exact : ?tap:Channel.tap -> seed:int -> Partition.t -> report

(** All tester entry points accept an optional {!Channel.tap}: with a
    byte-moving tap installed (see [Tfree_wire]) every charged message also
    crosses a real transport and the protocol consumes the decoded copies,
    so verdict and bits can be reconciled wire-vs-model.

    Repeat a randomized tester with independent seeds; any found triangle
    wins (sound by one-sidedness).  Bits are summed over the runs made. *)
val amplify : reps:int -> seed:int -> (seed:int -> report) -> report
