(** Simultaneous protocol for low degrees d = O(√n) — Algorithm 8
    (Theorem 3.26, O~(k·√n) bits) and its uncapped variant Algorithm 10.
    Two shared vertex samples: S (probability min(c/d, 1)) catches
    high-degree triangle sources, R (probability c/√n) catches the
    low-degree corners by the birthday paradox. *)

open Tfree_comm
open Tfree_graph

(** The Chebyshev constant (from {!Params.sim_c}). *)
val c_const : Params.t -> float

(** S-sampling probability min(c/d, 1). *)
val p1 : Params.t -> d:float -> float

(** R-sampling probability c/√n. *)
val p2 : Params.t -> n:int -> float

(** Per-player edge cap q = 2c²(√n + d)·(2/δ) (Algorithm 8 step 3). *)
val edge_cap : Params.t -> n:int -> d:float -> int

val protocol : ?capped:bool -> Params.t -> d:float -> Triangle.triangle option Simultaneous.protocol

val run :
  ?tap:Tfree_comm.Channel.tap ->
  ?capped:bool ->
  seed:int ->
  Params.t ->
  d:float ->
  Partition.t ->
  Triangle.triangle option Simultaneous.outcome
