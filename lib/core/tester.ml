(** Top-level API: test triangle-freeness of a distributed graph.

    Each protocol is a one-sided tester (§3): a triangle is output only when
    one is actually found, so on a triangle-free input the verdict is always
    [Triangle_free]; on an ǫ-far input a triangle is found with probability
    at least 1-δ.  [Verdict] reports the triangle as the witness. *)

open Tfree_graph
open Tfree_comm

type verdict =
  | Triangle of Triangle.triangle  (** witness found: the graph has a triangle *)
  | Triangle_free  (** no triangle found: triangle-free, or the δ-failure on a far input *)

let of_option = function Some t -> Triangle t | None -> Triangle_free

type report = {
  verdict : verdict;
  bits : int;  (** total communication in bits *)
  rounds : int;  (** communication rounds (1 for simultaneous) *)
  max_message : int;  (** largest single player message, in bits *)
}

(** Unrestricted-communication tester (§3.3), degree-oblivious.  O~(k·(nd)^¼
    + k²) bits. *)
let unrestricted ?(mode = Runtime.Coordinator) ?tap ~seed (p : Params.t) inputs =
  let rt = Runtime.make ~mode ?tap ~seed inputs in
  let result, _stats = Unrestricted.find_triangle rt p in
  let cost = Runtime.cost rt in
  {
    verdict = of_option result;
    bits = Cost.total cost;
    rounds = cost.Cost.rounds;
    max_message = Cost.max_player_upload cost;
  }

let of_sim_outcome (o : Triangle.triangle option Simultaneous.outcome) =
  {
    verdict = of_option o.Simultaneous.result;
    bits = o.Simultaneous.total_bits;
    rounds = 1;
    max_message = o.Simultaneous.max_message_bits;
  }

(** Simultaneous tester for known average degree [d]: Algorithm 8 when
    d = O(√n), Algorithm 7 otherwise (they coincide at d = Θ(√n), §3.4.2). *)
let simultaneous ?tap ~seed (p : Params.t) ~d inputs =
  let n = Partition.n inputs in
  let outcome =
    if d <= sqrt (float_of_int n) then Sim_low.run ?tap ~seed p ~d inputs
    else Sim_high.run ?tap ~seed p ~d inputs
  in
  of_sim_outcome outcome

(** Degree-oblivious simultaneous tester (Algorithm 11). *)
let simultaneous_oblivious ?tap ~seed (p : Params.t) inputs =
  of_sim_outcome (Sim_oblivious.run ?tap ~seed p inputs)

(** Exact baseline [38]: always correct, Θ(k·n·d) bits. *)
let exact ?tap ~seed inputs = of_sim_outcome (Exact_baseline.run ?tap ~seed inputs)

(** Error amplification: repeat a randomized tester [reps] times with
    independent seeds; any found triangle wins (one-sidedness makes this
    sound).  Returns the combined verdict and the summed bits. *)
let amplify ~reps ~seed run =
  let rec go i bits =
    if i >= reps then { verdict = Triangle_free; bits; rounds = 0; max_message = 0 }
    else begin
      let r = run ~seed:(seed + (1_000_003 * i)) in
      match r.verdict with
      | Triangle _ -> { r with bits = bits + r.bits }
      | Triangle_free -> go (i + 1) (bits + r.bits)
    end
  in
  go 0 0
