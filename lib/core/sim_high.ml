(** Simultaneous protocol for high degrees d = Ω(√n) — Algorithm 7 (capped,
    Theorem 3.24) and its uncapped variant Algorithm 9 used by the
    degree-oblivious combination.

    A shared random vertex set S of ~c·(n²/(ǫd))^{1/3} vertices is sampled;
    every player sends its edges inside S (paying only for edges that exist,
    unlike the query model); the referee looks for a triangle in the union.
    If the graph is ǫ-far, the induced subgraph contains a triangle with
    constant probability ([3]'s dense tester, Theorem 3.24). *)

open Tfree_util
open Tfree_graph
open Tfree_comm

(** Sample-set size |S| = c·(n²/(ǫ·d))^{1/3}; [c] grows with 1/δ. *)
let sample_size (p : Params.t) ~n ~d =
  let c = Params.sim_c p in
  let raw = c *. Float.pow (float_of_int n *. float_of_int n /. (p.eps *. Float.max 1.0 d)) (1.0 /. 3.0) in
  max 3 (min n (int_of_float (Float.ceil raw)))

(** Per-player edge cap l = 4·|S|²·d/(δ·n) (Algorithm 7 step 2). *)
let edge_cap (p : Params.t) ~n ~d ~s =
  let l = 4.0 *. float_of_int (s * s) *. Float.max 1.0 d /. (p.delta *. float_of_int n) in
  max 8 (int_of_float (Float.ceil l))

(* Shared membership test for S: a keyed Bernoulli mark per vertex with
   probability s/n reproduces a uniform sample of expected size s while
   letting players test membership without materializing S. *)
let in_sample rng ~n ~s v = Rng.hash_float rng v < float_of_int s /. float_of_int n

let player_message (p : Params.t) ~d ~capped ctx _j input =
  let n = ctx.Simultaneous.n in
  let s = sample_size p ~n ~d in
  let rng = Simultaneous.shared_rng ctx ~key:11 in
  let cap = if capped then edge_cap p ~n ~d ~s else max_int in
  let selected =
    Graph.fold_edges input ~init:[] ~f:(fun acc u v ->
        if in_sample rng ~n ~s u && in_sample rng ~n ~s v then (u, v) :: acc else acc)
  in
  let truncated = List.filteri (fun idx _ -> idx < cap) selected in
  Msg.edges ~n truncated

let referee ctx messages =
  let n = ctx.Simultaneous.n in
  let union = Graph.of_edges ~n (List.concat_map Msg.get_edges (Array.to_list messages)) in
  Triangle.find union

(** The protocol, for average degree [d] known to the players. *)
let protocol ?(capped = true) (p : Params.t) ~d =
  { Simultaneous.player = player_message p ~d ~capped; referee }

(* One simultaneous round: a single "upload" phase covers every charged bit. *)
let run ?tap ?(capped = true) ~seed (p : Params.t) ~d inputs =
  Tfree_trace.Trace.span "upload" (fun () -> Simultaneous.run ?tap ~seed (protocol ~capped p ~d) inputs)
