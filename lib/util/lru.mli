(** Bounded least-recently-used map with hit/miss counters.

    Backs tfree-serve's instance/partition cache: repeated queries for the
    same [(family, n, k, seed, partition)] key skip the instance rebuild,
    and the counters feed the server's [{"op": "stats"}] telemetry.  Keys
    are compared with structural equality/hashing, so use plain data (the
    service uses a tuple of enums, ints and floats).

    Not thread-safe: callers that share a cache across domains must
    serialize access themselves (the tfree-serve event loop is
    single-threaded, so it needs no lock). *)

type ('k, 'v) t

(** [create capacity] is an empty cache holding at most [capacity] entries.
    @raise Invalid_argument when [capacity < 1]. *)
val create : int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int

(** Entries currently held (≤ capacity). *)
val length : ('k, 'v) t -> int

(** Lookups answered from the cache (each refreshes the entry's recency). *)
val hits : ('k, 'v) t -> int

(** Lookups that found nothing. *)
val misses : ('k, 'v) t -> int

(** [hits + misses]. *)
val lookups : ('k, 'v) t -> int

(** Membership test; does not touch the counters or recency. *)
val mem : ('k, 'v) t -> 'k -> bool

(** Counting lookup: a hit refreshes recency and bumps [hits]; a miss bumps
    [misses]. *)
val find_opt : ('k, 'v) t -> 'k -> 'v option

(** Insert (replacing any entry under the same key), evicting the
    least-recently-used entry when at capacity.  Does not touch the
    hit/miss counters. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t key build] is the cached value under [key], or
    [build ()] inserted and returned — one counted lookup either way. *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Drop every entry and zero the counters. *)
val clear : ('k, 'v) t -> unit
