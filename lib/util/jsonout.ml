(** Minimal JSON emitter/parser for the machine-readable bench baseline
    (BENCH_results.json) — see jsonout.mli.  Self-contained so the repo takes
    no new dependency; the parser exists to validate what the emitter wrote
    (the @bench-smoke alias) and to let future tooling read baselines back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- emit *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_to_string x =
  if Float.is_nan x then "null" (* JSON has no NaN; absent measurement *)
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(indent = 2) v =
  let b = Buffer.create 1024 in
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num x -> Buffer.add_string b (num_to_string x)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            emit (depth + 1) x)
          xs;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\": ";
            emit (depth + 1) x)
          kvs;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b '}'
  in
  emit 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* One value per line: the framing of the tfree-serve socket protocol, where
   a newline terminates a request or response. *)
let to_line v =
  let b = Buffer.create 256 in
  let rec emit v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num x -> Buffer.add_string b (num_to_string x)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            emit x)
          kvs;
        Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

(* --------------------------------------------------------------- parse *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
                 if !pos + 4 > n then fail "bad \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
                 in
                 (* ASCII range only — all this emitter ever writes. *)
                 if code < 0x80 then Buffer.add_char b (Char.chr code)
                 else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
             | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some x -> Num x
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let pair () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ pair () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := pair () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  with Bad msg -> Error msg

(* ------------------------------------------------------------- lookups *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_list = function List xs -> Some xs | _ -> None
