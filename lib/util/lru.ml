(* Bounded LRU map with hit/miss counters (see lru.mli).

   Implementation: a Hashtbl from key to a slot carrying the value and a
   monotonically increasing use stamp.  A lookup refreshes the stamp; an
   insert over capacity evicts the minimum-stamp entry with a linear scan.
   Capacities in this codebase are tens of entries (tfree-serve's instance
   cache), where the O(capacity) eviction scan is noise next to building
   even one instance — and the structure stays obviously correct. *)

type ('k, 'v) slot = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) slot) Hashtbl.t;
  mutable clock : int;  (* next use stamp *)
  mutable hits : int;
  mutable misses : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); clock = 0; hits = 0; misses = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let lookups t = t.hits + t.misses
let mem t key = Hashtbl.mem t.table key

let tick t =
  let s = t.clock in
  t.clock <- s + 1;
  s

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best <= slot.stamp -> acc
        | _ -> Some (key, slot.stamp))
      t.table None
  in
  match victim with Some (key, _) -> Hashtbl.remove t.table key | None -> ()

let find_opt t key =
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      t.hits <- t.hits + 1;
      slot.stamp <- tick t;
      Some slot.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_oldest t);
  Hashtbl.add t.table key { value; stamp = tick t }

let find_or_add t key build =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = build () in
      (* [build] may have recursively inserted; re-check before adding so the
         table never exceeds capacity. *)
      if not (Hashtbl.mem t.table key) then add t key v;
      v

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  t.clock <- 0
