(** Minimal JSON support for the bench harness — enough to emit
    [BENCH_results.json] and validate it back ([@bench-smoke]), with no
    dependency outside the stdlib.

    The emitter covers the full JSON value space; the parser accepts what the
    emitter produces (plus ordinary whitespace) and is used only for
    round-trip validation, not as a general-purpose JSON reader. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render with a trailing newline.  Integral floats print without a decimal
    point; NaN prints as [null] (JSON has no NaN). *)
val to_string : ?indent:int -> t -> string

(** Render on a single line, no trailing newline — the framing of the
    tfree-serve socket protocol (one JSON value per line). *)
val to_line : t -> string

(** Parse a complete JSON document.  [Error msg] carries a byte offset. *)
val parse : string -> (t, string) result

(** [member k v] is the field [k] of object [v], if any. *)
val member : string -> t -> t option

val to_float : t -> float option

val to_list : t -> t list option
