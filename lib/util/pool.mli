(** Fixed-size domain pool for embarrassingly parallel measurement sweeps.

    The experiment harness measures thousands of independent, deterministically
    seeded [(n, seed)] cells; this module fans them over OCaml 5 domains.
    Results are always collected in index order and every index is computed
    exactly once, so for pure cell functions the output is {e identical} to
    the sequential [Array.init]/[List.map] — only wall-clock changes with the
    job count.

    The worker count is resolved, in priority order, from {!set_jobs} (the
    CLI's [--jobs]), the [TFREE_JOBS] environment variable, and
    [Domain.recommended_domain_count] — and is then capped at the hardware
    core count: domains share one stop-the-world minor collector, so
    oversubscribing cores makes every collection a cross-domain scheduling
    stall (measured 4-5× slower, not faster, on a single-core host).  At
    [jobs = 1] — and for calls nested inside a pool task — execution is plain
    sequential code with no domain, lock, or allocation overhead beyond the
    result array. *)

(** Effective job count (≥ 1): the requested ceiling capped by the hardware
    core count. *)
val jobs : unit -> int

(** Set the requested job ceiling for the rest of the process (clamped to
    [1, 64]); takes precedence over [TFREE_JOBS]. *)
val set_jobs : int -> unit

(** [parallel_init n f] is [Array.init n f] computed on the pool.  [f] must
    tolerate being called from any domain in any order (the harness's cells
    derive everything from their index, so they do).  Chunks of indices are
    claimed dynamically for load balance; exceptions raised by [f] are
    re-raised in the caller after the batch drains.  An explicit [?jobs] is
    used exactly as given (no hardware cap) — tests rely on this to exercise
    true multi-domain execution regardless of host shape. *)
val parallel_init : ?jobs:int -> int -> (int -> 'a) -> 'a array

(** [parallel_map f xs] is [List.map f xs] computed on the pool, preserving
    order. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Join the worker domains (registered with [at_exit]; explicit calls are
    only needed by tests that count live domains). *)
val shutdown : unit -> unit
