(** Fixed-size domain pool for the experiment harness (see pool.mli).

    Implementation notes.  Worker domains are spawned lazily on first use and
    kept for the life of the process (spawning a domain costs tens of
    microseconds, which would otherwise be paid on every [parallel_map] of the
    harness's thousands of measurement cells).  A batch is executed by [jobs]
    {e runners}: [jobs - 1] tasks pushed onto the shared queue plus the
    calling domain itself.  Runners claim contiguous index chunks from an
    atomic cursor, so scheduling is dynamic (good load balance when cells have
    uneven cost) while every index is computed exactly once into its slot of
    the result array — making the result independent of scheduling order. *)

(* ------------------------------------------------------------ job count *)

let max_jobs = 64

let clamp j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

(* Explicit override (the CLI's --jobs) wins over the TFREE_JOBS environment
   variable, which wins over the hardware default. *)
let override = ref None

let env_jobs () =
  match Sys.getenv_opt "TFREE_JOBS" with
  | None -> None
  | Some s -> Option.map clamp (int_of_string_opt (String.trim s))

(* The requested count is a ceiling, not a target: OCaml 5 domains share one
   stop-the-world minor collector, and running more domains than cores turns
   every collection into a cross-domain scheduling stall (measured 4-5× TOTAL
   slowdown of the harness on a 1-core host at TFREE_JOBS=4).  Capping at the
   hardware count makes oversubscribed settings degrade to parity instead. *)
let jobs () =
  let requested =
    match !override with
    | Some j -> j
    | None -> (
        match env_jobs () with
        | Some j -> j
        | None -> clamp (Domain.recommended_domain_count ()))
  in
  min requested (clamp (Domain.recommended_domain_count ()))

let set_jobs j = override := Some (clamp j)

(* ------------------------------------------------------------- the pool *)

type pool = {
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let pool =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    stop = false;
    workers = [];
  }

(* Set in every pool worker (and in the caller while it participates in a
   batch): parallel calls made from inside a task run sequentially instead of
   deadlocking on or oversubscribing the pool. *)
let inside = Domain.DLS.new_key (fun () -> false)

let rec worker_loop () =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopping *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop ()
  end

let shutdown () =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* All domains synchronize on every minor collection; at the default
   256k-word minor heap those stop-the-world barriers dominate the run as
   soon as there are more domains than cores (measured 5× slowdown on an
   allocation-heavy harness).  A few megawords per domain makes the barriers
   rare enough to be negligible, and new domains inherit the setting. *)
let raise_minor_heap () =
  let g = Gc.get () in
  let want = 4 * 1024 * 1024 in
  if g.Gc.minor_heap_size < want then Gc.set { g with Gc.minor_heap_size = want }

(* Must only be called from the main domain (parallel entry points are
   sequential when [inside] is set, so this holds by construction). *)
let ensure_workers count =
  let have = List.length pool.workers in
  if have < count then begin
    if have = 0 then begin
      at_exit shutdown;
      raise_minor_heap ()
    end;
    pool.stop <- false (* revive after an explicit shutdown *);
    for _ = have + 1 to count do
      let d =
        Domain.spawn (fun () ->
            Domain.DLS.set inside true;
            worker_loop ())
      in
      pool.workers <- d :: pool.workers
    done
  end

(* ---------------------------------------------------------------- batch *)

type batch = {
  bmutex : Mutex.t;
  finished : Condition.t;
  mutable live : int; (* runners still to finish *)
  mutable failure : exn option; (* first exception raised by a cell *)
}

let parallel_init ?jobs:requested n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative size";
  let j = match requested with Some j -> clamp j | None -> jobs () in
  let j = min j n in
  if j <= 1 || Domain.DLS.get inside then Array.init n f
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Small chunks keep runners balanced when cell costs vary; the atomic
       claim is negligible next to any real measurement cell. *)
    let chunk = max 1 (n / (j * 8)) in
    let batch =
      { bmutex = Mutex.create (); finished = Condition.create (); live = j; failure = None }
    in
    let runner () =
      let rec claim () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          (try
             for i = start to min n (start + chunk) - 1 do
               results.(i) <- Some (f i)
             done
           with e ->
             Mutex.lock batch.bmutex;
             if batch.failure = None then batch.failure <- Some e;
             Mutex.unlock batch.bmutex);
          claim ()
        end
      in
      claim ();
      Mutex.lock batch.bmutex;
      batch.live <- batch.live - 1;
      if batch.live = 0 then Condition.broadcast batch.finished;
      Mutex.unlock batch.bmutex
    in
    ensure_workers (j - 1);
    Mutex.lock pool.mutex;
    for _ = 1 to j - 1 do
      Queue.add runner pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* The caller is the j-th runner; flag it so cells that themselves call
       into the pool fall back to sequential execution. *)
    Domain.DLS.set inside true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set inside false) runner;
    Mutex.lock batch.bmutex;
    while batch.live > 0 do
      Condition.wait batch.finished batch.bmutex
    done;
    let failure = batch.failure in
    Mutex.unlock batch.bmutex;
    (match failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (parallel_init ?jobs (Array.length arr) (fun i -> f arr.(i)))
