(** Statistics for the experiment harness: summaries, quantiles, and the
    log–log least-squares exponent fit used to compare measured communication
    costs against the paper's asymptotic bounds. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Unbiased sample variance; 0 for fewer than two points. *)
val variance : float list -> float

val stddev : float list -> float

(** Empirical quantile with linear interpolation; [q] is clamped into
    [0, 1]; [nan] on the empty list. *)
val quantile : float -> float list -> float

val median : float list -> float

type linfit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares y = slope·x + intercept; [nan] fields for fewer
    than two points. *)
val linear_fit : (float * float) list -> linfit

(** Fit y ~ C·x^e on positive data by regressing log y on log x; [slope] is
    the measured scaling exponent.  Non-positive points are skipped. *)
val loglog_exponent : (float * float) list -> linfit

(** Wilson score confidence interval for a binomial proportion (default 95%);
    [(0, 1)] when [trials = 0]. *)
val wilson_interval : ?z:float -> successes:int -> trials:int -> unit -> float * float

(** Pearson chi-squared statistic of the counts against a uniform
    expectation; [nan] for empty input. *)
val chi2_uniform : int array -> float
