(** Small statistics toolkit for the experiment harness: summary statistics,
    quantiles, and the log--log least-squares exponent fit used to compare
    measured communication costs against the paper's asymptotic bounds. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

(** Empirical quantile with linear interpolation; [q] in [0, 1]. *)
let quantile q xs =
  let q = Float.min 1.0 (Float.max 0.0 q) in
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let pos = q *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor pos) in
        let hi = min (lo + 1) (n - 1) in
        let frac = pos -. float_of_int lo in
        (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
      end

let median xs = quantile 0.5 xs

type linfit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares y = slope*x + intercept. *)
let linear_fit pts =
  let n = float_of_int (List.length pts) in
  if n < 2.0 then { slope = nan; intercept = nan; r2 = nan }
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    let ybar = sy /. n in
    let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.0)) 0.0 pts in
    let ss_res =
      List.fold_left (fun a (x, y) -> a +. ((y -. (slope *. x) -. intercept) ** 2.0)) 0.0 pts
    in
    let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
    { slope; intercept; r2 }
  end

(** Fit y ~ C * x^e on positive data by regressing log y on log x; the slope
    is the measured scaling exponent [e]. *)
let loglog_exponent pts =
  let logs =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      pts
  in
  linear_fit logs

(** Wilson score interval for a binomial proportion (95% by default). *)
let wilson_interval ?(z = 1.96) ~successes ~trials () =
  if trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half = z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) /. denom in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

(** Pearson chi-squared statistic against a uniform expectation. *)
let chi2_uniform counts =
  let total = Array.fold_left ( + ) 0 counts in
  let cells = Array.length counts in
  if cells = 0 || total = 0 then nan
  else begin
    let expect = float_of_int total /. float_of_int cells in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expect in
        acc +. (d *. d /. expect))
      0.0 counts
  end
