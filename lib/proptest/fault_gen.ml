(** Random fault-schedule generation for wire chaos property tests: a
    QCheck arbitrary over {!Tfree_wire.Fault.schedule} covering all six
    fault kinds with randomized op positions and arguments.  Shrinking
    drops events — a minimal counterexample is the fewest faults that still
    break the property — and schedules are printed in the same grammar
    [Fault.parse] accepts, so a failing case can be replayed verbatim with
    [--fault-spec]. *)

open Tfree_wire

let print = Fault.to_string

let gen_kind : Fault.kind QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (2, return Fault.Drop);
      (3, map (fun bit -> Fault.Corrupt { bit }) (int_range 0 4095));
      (2, map (fun keep -> Fault.Truncate { keep }) (int_range 0 64));
      (2, map (fun amount -> Fault.Delay { amount }) (int_range 1 8));
      (2, map (fun at -> Fault.Partial { at }) (int_range 1 64));
      (1, return Fault.Close);
    ]

(** Schedules of up to [max_events] faults over the first [max_ops] write
    operations, normalized (sorted by op, one fault per op). *)
let gen ?(max_ops = 60) ?(max_events = 6) () : Fault.schedule QCheck.Gen.t =
  let open QCheck.Gen in
  let event = map2 (fun op kind -> { Fault.op; kind }) (int_range 0 (max_ops - 1)) gen_kind in
  map Fault.normalize (list_size (int_range 0 max_events) event)

let shrink sched =
  QCheck.Iter.map Fault.normalize (QCheck.Shrink.list ~shrink:QCheck.Shrink.nil sched)

let arb_fault_schedule ?max_ops ?max_events () =
  QCheck.make ~print ~shrink (gen ?max_ops ?max_events ())

let arbitrary = arb_fault_schedule ()
