(** Random CONGEST-run cases for the congest property suite: a QCheck
    arbitrary over (instance family, size, seed, round budget) tuples, with
    the graph derived deterministically from the case so a printed
    counterexample reproduces the exact run.  Families cover the three
    regimes the tester meets: ǫ-far (many disjoint triangles), triangle-free
    (must never report), and sparse G(n, p) (either way).  Shrinking walks n
    and the budget down, so a minimal counterexample is the smallest graph
    and fewest rounds that still break the property. *)

open Tfree_util
open Tfree_graph

type family = Far | Free | Gnp

type case = {
  family : family;
  n : int;
  seed : int;  (** drives both the instance rng and the simulator *)
  budget : int;  (** hard round budget for the run *)
}

let family_to_string = function Far -> "far" | Free -> "free" | Gnp -> "gnp"

let print { family; n; seed; budget } =
  Printf.sprintf "{%s; n=%d; seed=%d; budget=%d}" (family_to_string family) n seed budget

(** The case's instance, derived from the case alone (the rng stream is
    keyed off [seed] and [n]) — properties rebuild it at will. *)
let graph { family; n; seed; _ } =
  let rng = Rng.create (515_000 + (7919 * seed) + n) in
  match family with
  | Far -> Gen.far_with_degree rng ~n ~d:5.0 ~eps:0.1
  | Free -> Gen.free_with_degree rng ~n ~d:5.0
  | Gnp -> Gen.gnp rng ~n ~p:(3.0 /. float_of_int n)

let gen : case QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun (family, n, seed, budget) -> { family; n; seed; budget })
    (quad (oneofl [ Far; Free; Gnp ]) (int_range 12 120) (int_range 1 1_000_000) (int_range 1 48))

(* Shrink toward small graphs and short budgets; family and seed stay put
   (changing them changes the instance, not its size). *)
let shrink c yield =
  if c.n > 12 then yield { c with n = max 12 (c.n / 2) };
  if c.budget > 1 then yield { c with budget = c.budget / 2 }

let arb_case = QCheck.make ~print ~shrink gen

(** {!arb_case}: cases over all three families, n ≤ 120, budgets ≤ 48. *)
let arbitrary = arb_case
