(** Random CONGEST-run cases for the congest property suite: (family, n,
    seed, budget) tuples whose instance graph derives deterministically from
    the case, so printed counterexamples reproduce the exact run. *)

open Tfree_graph

type family = Far  (** ǫ-far from triangle-free *) | Free  (** triangle-free *) | Gnp  (** sparse G(n, p) *)

type case = {
  family : family;
  n : int;
  seed : int;  (** drives both the instance rng and the simulator *)
  budget : int;  (** hard round budget for the run *)
}

val family_to_string : family -> string

val print : case -> string

(** The case's instance, derived from the case alone — properties rebuild
    it at will. *)
val graph : case -> Graph.t

val gen : case QCheck.Gen.t

(** Cases over all three families, 12 ≤ n ≤ 120, budgets 1 … 48; shrinking
    walks n and the budget down. *)
val arb_case : case QCheck.arbitrary

(** {!arb_case}. *)
val arbitrary : case QCheck.arbitrary
