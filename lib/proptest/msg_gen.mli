(** Random {!Tfree_comm.Msg.t} generation for wire-codec property tests:
    covers every smart constructor (nested tuples included) with randomized
    layout parameters. *)

open Tfree_comm

(** Readable rendering of a message's value and bit count (the QCheck
    counterexample printer). *)
val print : Msg.t -> string

val gen : Msg.t QCheck.Gen.t

val arbitrary : Msg.t QCheck.arbitrary
