(** Random message generation for wire-codec property tests: a QCheck
    arbitrary covering every {!Tfree_comm.Msg} smart constructor, nested
    tuples included, with the layout parameters (n, [lo, hi] ranges, list
    lengths) themselves randomized. *)

open Tfree_comm

let rec value_to_string = function
  | Msg.Unit -> "()"
  | Msg.Bool b -> string_of_bool b
  | Msg.Int v -> string_of_int v
  | Msg.Vertex v -> Printf.sprintf "v%d" v
  | Msg.No_vertex -> "v-"
  | Msg.Edge (u, v) -> Printf.sprintf "(%d,%d)" u v
  | Msg.Vertices vs -> "[" ^ String.concat ";" (List.map string_of_int vs) ^ "]"
  | Msg.Edges es ->
      "[" ^ String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) es) ^ "]"
  | Msg.Tuple parts -> "<" ^ String.concat ", " (List.map value_to_string parts) ^ ">"

let print msg = Printf.sprintf "%s (%d bits)" (value_to_string (Msg.value msg)) (Msg.bits msg)

let gen : Msg.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_n = int_range 2 5000 in
  let vertex_in n = int_range 0 (n - 1) in
  let leaf =
    frequency
      [
        (1, return Msg.empty);
        (2, map Msg.bool bool);
        ( 3,
          (* range-coded integer; lo may be negative, span may be 0 *)
          int_range (-1000) 1000 >>= fun lo ->
          int_range 0 1000 >>= fun span ->
          let hi = lo + span in
          int_range lo hi >>= fun v -> return (Msg.int_in ~lo ~hi v) );
        (2, map Msg.nat (int_range 0 1_000_000));
        (3, gen_n >>= fun n -> vertex_in n >>= fun v -> return (Msg.vertex ~n v));
        ( 2,
          gen_n >>= fun n ->
          opt (vertex_in n) >>= fun v -> return (Msg.vertex_opt ~n v) );
        ( 3,
          gen_n >>= fun n ->
          pair (vertex_in n) (vertex_in n) >>= fun e -> return (Msg.edge ~n e) );
        ( 2,
          gen_n >>= fun n ->
          list_size (int_range 0 40) (vertex_in n) >>= fun vs -> return (Msg.vertices ~n vs) );
        ( 2,
          gen_n >>= fun n ->
          list_size (int_range 0 40) (pair (vertex_in n) (vertex_in n)) >>= fun es ->
          return (Msg.edges ~n es) );
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (4, leaf);
          (1, list_size (int_range 0 4) (go (depth - 1)) >>= fun parts -> return (Msg.tuple parts));
        ]
  in
  go 2

let arbitrary : Msg.t QCheck.arbitrary = QCheck.make ~print gen
