(** Random finite distributions and joints for information-theory property
    tests over {!Tfree_lowerbound.Info}.  Every atom is strictly positive
    and masses are normalized exactly, so KL divergences are finite and
    [Info.check_joint] accepts every generated joint. *)

(** Distributions with [2..max_n] (default 8) strictly positive atoms. *)
val gen_dist : ?max_n:int -> unit -> float array QCheck.Gen.t

(** Two distributions over one support (for KL divergence). *)
val gen_dist_pair : ?max_n:int -> unit -> (float array * float array) QCheck.Gen.t

(** Joints with [2..max_n] (default 5) rows and columns, all cells
    positive. *)
val gen_joint : ?max_n:int -> unit -> float array array QCheck.Gen.t

val print_dist : float array -> string
val print_joint : float array array -> string
val arb_dist : ?max_n:int -> unit -> float array QCheck.arbitrary
val arb_dist_pair : ?max_n:int -> unit -> (float array * float array) QCheck.arbitrary
val arb_joint : ?max_n:int -> unit -> float array array QCheck.arbitrary

(** Bernoulli parameter pairs [(q, p)] with [p < 1/2] (Lemma 4.3's
    hypothesis). *)
val arb_lemma43_params : (float * float) QCheck.arbitrary
