(** Random {!Tfree_wire.Fault.schedule} generation for wire chaos property
    tests: all six fault kinds, randomized ops and arguments, list
    shrinking to a minimal breaking schedule, printed in the grammar
    [Fault.parse] accepts so counterexamples replay with [--fault-spec]. *)

open Tfree_wire

(** {!Tfree_wire.Fault.to_string}: the replayable spec. *)
val print : Fault.schedule -> string

val gen_kind : Fault.kind QCheck.Gen.t

(** Normalized schedules of up to [max_events] (default 6) faults over the
    first [max_ops] (default 60) write operations. *)
val gen : ?max_ops:int -> ?max_events:int -> unit -> Fault.schedule QCheck.Gen.t

val arb_fault_schedule : ?max_ops:int -> ?max_events:int -> unit -> Fault.schedule QCheck.arbitrary

(** {!arb_fault_schedule} at its defaults. *)
val arbitrary : Fault.schedule QCheck.arbitrary
