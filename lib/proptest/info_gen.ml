(** Random finite distributions and joint distributions for
    information-theory property tests over {!Tfree_lowerbound.Info}:
    entropy bounds, Gibbs' inequality for KL divergence, the mutual-
    information chain rule and the Lemma 4.3 divergence bound.

    Distributions are dense float arrays normalized to unit mass with
    every atom strictly positive (so KL divergences stay finite and the
    equality case of Gibbs' inequality is exact, not a 0·log 0
    convention).  Joints are matrices normalized the same way.  Printing
    renders the full support so a failing case replays by hand; shrinking
    is omitted — a counterexample to an analytic identity is already as
    small as its support. *)

(* Normalize strictly-positive weights to unit mass.  The largest atom
   absorbs the float roundoff so the total is exactly what check_joint
   demands. *)
let normalize weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  let dist = Array.map (fun w -> w /. total) weights in
  let sum = Array.fold_left ( +. ) 0.0 dist in
  let imax = ref 0 in
  Array.iteri (fun i w -> if w > dist.(!imax) then imax := i) dist;
  dist.(!imax) <- dist.(!imax) -. (sum -. 1.0);
  dist

let gen_weight : float QCheck.Gen.t = QCheck.Gen.float_range 0.01 1.0

(** Distributions with [2..max_n] strictly positive atoms, unit mass. *)
let gen_dist ?(max_n = 8) () : float array QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 max_n >>= fun n -> map normalize (array_size (return n) gen_weight)

(** Pairs of distributions over one support (for KL divergence). *)
let gen_dist_pair ?(max_n = 8) () : (float array * float array) QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 max_n >>= fun n ->
  pair
    (map normalize (array_size (return n) gen_weight))
    (map normalize (array_size (return n) gen_weight))

(** Joint distributions p(x,y) with [2..max_n] rows and columns, every
    cell strictly positive, unit mass (passes [Info.check_joint]). *)
let gen_joint ?(max_n = 5) () : float array array QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 max_n >>= fun nx ->
  int_range 2 max_n >>= fun ny ->
  map
    (fun rows ->
      let flat = normalize (Array.concat (Array.to_list rows)) in
      Array.init nx (fun x -> Array.sub flat (x * ny) ny))
    (array_size (return nx) (array_size (return ny) gen_weight))

let print_dist d =
  Printf.sprintf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.6f") d)))

let print_joint j = String.concat "\n" (Array.to_list (Array.map print_dist j))

let arb_dist ?max_n () = QCheck.make ~print:print_dist (gen_dist ?max_n ())

let arb_dist_pair ?max_n () =
  QCheck.make
    ~print:(fun (mu, eta) -> Printf.sprintf "mu=%s eta=%s" (print_dist mu) (print_dist eta))
    (gen_dist_pair ?max_n ())

let arb_joint ?max_n () = QCheck.make ~print:print_joint (gen_joint ?max_n ())

(** Bernoulli parameter pairs (q, p) with p < 1/2, for Lemma 4.3. *)
let arb_lemma43_params =
  QCheck.make
    ~print:(fun (q, p) -> Printf.sprintf "q=%.6f p=%.6f" q p)
    QCheck.Gen.(pair (float_range 0.001 0.999) (float_range 0.001 0.499))
