(** Channels and transport taps.

    The runtimes ({!Runtime}, {!Simultaneous}) account costs by declaration:
    whenever a message crosses a channel they charge its {!Msg.bits}.  A
    {e tap} is an optional hook invoked at exactly those crossing points; it
    receives the message and the channel it crosses, and returns the message
    the receiving side observes.  The identity tap reproduces the pure
    accounting model.  The wire subsystem ([Tfree_wire]) installs a tap that
    encodes the message, moves the bytes through a real transport, decodes
    them on the far side and returns the decoded copy — so everything a
    protocol learns through a tapped runtime has physically round-tripped,
    and the declared cost can be reconciled against measured wire bytes. *)

type t =
  | To_player of int  (** coordinator (or referee) -> player [j] *)
  | From_player of int  (** player [j] -> coordinator/referee *)
  | Board  (** a broadcast posting, visible to all parties *)

type tap = { deliver : t -> Msg.t -> Msg.t }

(** The pure-model tap: messages arrive untouched. *)
let identity = { deliver = (fun _ msg -> msg) }

let describe = function
  | To_player j -> Printf.sprintf "coord->p%d" j
  | From_player j -> Printf.sprintf "p%d->coord" j
  | Board -> "board"
