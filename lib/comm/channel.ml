(** Channels and transport taps.

    The runtimes ({!Runtime}, {!Simultaneous}) account costs by declaration:
    whenever a message crosses a channel they charge its {!Msg.bits}.  A
    {e tap} is an optional hook invoked at exactly those crossing points; it
    receives the message, the channel it crosses and the current round
    number, and returns the message the receiving side observes.  The
    identity tap reproduces the pure accounting model.  The wire subsystem
    ([Tfree_wire]) installs a tap that encodes the message, moves the bytes
    through a real transport, decodes them on the far side and returns the
    decoded copy — so everything a protocol learns through a tapped runtime
    has physically round-tripped, and the declared cost can be reconciled
    against measured wire bytes.  The trace subsystem ([Tfree_trace])
    installs a tap that records one event per crossing, attributed to the
    protocol phase in scope at that moment.

    Taps compose: {!compose} chains two taps so the message flows through
    the first and then the second, and both observe the same round.  Since
    every tap must preserve [Msg.value] and [Msg.bits] (the wire tap asserts
    this, the trace tap is read-only), composition order cannot change what
    the protocol sees — only which observers are attached.

    A tap is allowed to {e fail} instead of delivering: the wire tap raises
    a typed [Tfree_wire.Wire_error.Wire_error] when its transport cannot
    round-trip the message (a truncated stream, a corrupted frame, an
    injected fault from [Transport.faulty]).  The contract is fail-closed:
    a tap either returns a faithful copy or raises — it never returns an
    altered message — so a fault below a tapped runtime can abort a run but
    never flip its verdict.  Protocol code does not catch these; the caller
    that installed the tap (the serve daemon, the chaos harness) decides
    what an aborted run means. *)

type t =
  | To_player of int  (** coordinator (or referee) -> player [j] *)
  | From_player of int  (** player [j] -> coordinator/referee *)
  | Board  (** a broadcast posting, visible to all parties *)

type tap = { deliver : round:int -> t -> Msg.t -> Msg.t }

(** The pure-model tap: messages arrive untouched. *)
let identity = { deliver = (fun ~round:_ _ msg -> msg) }

(** [compose a b] delivers through [a], then through [b]. *)
let compose a b = { deliver = (fun ~round ch msg -> b.deliver ~round ch (a.deliver ~round ch msg)) }

(** Chain any number of taps, left to right; [compose_all []] is {!identity}. *)
let compose_all taps = List.fold_left compose identity taps

let describe = function
  | To_player j -> Printf.sprintf "coord->p%d" j
  | From_player j -> Printf.sprintf "p%d->coord" j
  | Board -> "board"

(** The player a channel touches; [None] for the board. *)
let player = function To_player j | From_player j -> Some j | Board -> None

(** Inverse of {!describe}: parse "coord->p3", "p3->coord" or "board". *)
let parse s =
  let num ~prefix ~suffix =
    let plen = String.length prefix and slen = String.length suffix in
    let len = String.length s in
    if len > plen + slen
       && String.sub s 0 plen = prefix
       && String.sub s (len - slen) slen = suffix
    then int_of_string_opt (String.sub s plen (len - plen - slen))
    else None
  in
  if s = "board" then Some Board
  else
    match num ~prefix:"coord->p" ~suffix:"" with
    | Some j when j >= 0 -> Some (To_player j)
    | _ -> (
        match num ~prefix:"p" ~suffix:"->coord" with
        | Some j when j >= 0 -> Some (From_player j)
        | _ -> None)
