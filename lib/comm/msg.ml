(** Messages with exact bit accounting.

    Every value crossing a channel in any of the models is a [Msg.t]: a typed
    payload plus the number of bits it costs under the schema of
    {!Tfree_util.Bits} (a vertex costs ceil(log2 n), an edge twice that, a
    list additionally carries a self-delimiting length).  Protocols construct
    messages only through the smart constructors here, so the cost model is
    centralized and auditable.

    Each message also records its {!layout}: the exact bit-level encoding its
    constructor committed to (field widths, length prefixes, flag bits).  The
    layout is what lets the wire subsystem ([Tfree_wire.Codec]) serialize the
    payload into exactly [bits] physical bits and decode it back — the cost
    model and the wire format are the same schema by construction, not two
    schemas kept in sync by hand. *)

open Tfree_util

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Vertex of int
  | No_vertex
  | Edge of int * int
  | Vertices of int list
  | Edges of (int * int) list
  | Tuple of value list

type layout =
  | L_unit
  | L_bool
  | L_int_in of { lo : int; hi : int }
  | L_nat
  | L_vertex of { n : int }
  | L_vertex_opt of { n : int }
  | L_edge of { n : int }
  | L_vertices of { n : int }
  | L_edges of { n : int }
  | L_tuple of layout list

type t = { value : value; bits : int; layout : layout }

let bits t = t.bits
let value t = t.value
let layout t = t.layout

(* The single source of truth for cost: the bit-length of [value] encoded
   under [layout].  Every smart constructor goes through here, so [bits] can
   never drift from what the wire codec emits. *)
let rec measure layout value =
  match (layout, value) with
  | L_unit, Unit -> 0
  | L_bool, Bool _ -> 1
  | L_int_in { lo; hi }, Int v ->
      if v < lo || v > hi then invalid_arg "Msg.int_in: out of declared range";
      Bits.int_in_range ~lo ~hi
  | L_nat, Int v -> Bits.elias_gamma v
  | L_vertex { n }, Vertex _ -> Bits.vertex ~n
  | L_vertex_opt _, No_vertex -> 1
  | L_vertex_opt { n }, Vertex _ -> 1 + Bits.vertex ~n
  | L_edge { n }, Edge _ -> Bits.edge ~n
  | L_vertices { n }, Vertices vs ->
      Bits.elias_gamma (List.length vs) + (List.length vs * Bits.vertex ~n)
  | L_edges { n }, Edges es ->
      Bits.elias_gamma (List.length es) + (List.length es * Bits.edge ~n)
  | L_tuple ls, Tuple vs ->
      if List.length ls <> List.length vs then invalid_arg "Msg.measure: tuple arity mismatch";
      List.fold_left2 (fun acc l v -> acc + measure l v) 0 ls vs
  | _ -> invalid_arg "Msg.measure: value does not fit layout"

(** Rebuild a message from its layout and payload — the decoder's
    constructor.  The bit count is recomputed from the layout, so a decoded
    message is indistinguishable from the original (same value, bits,
    layout); a value/layout mismatch is a codec bug and fails loudly. *)
let of_layout layout value = { value; bits = measure layout value; layout }

let empty = of_layout L_unit Unit

let bool b = of_layout L_bool (Bool b)

(** Integer known by both sides to lie in [lo, hi]. *)
let int_in ~lo ~hi v = of_layout (L_int_in { lo; hi }) (Int v)

(** Nonnegative integer with a self-delimiting code. *)
let nat v = of_layout L_nat (Int v)

let vertex ~n v = of_layout (L_vertex { n }) (Vertex v)

(** Optional vertex: 1 flag bit plus the identifier when present. *)
let vertex_opt ~n vo =
  match vo with
  | None -> of_layout (L_vertex_opt { n }) No_vertex
  | Some v -> of_layout (L_vertex_opt { n }) (Vertex v)

let edge ~n (u, v) = of_layout (L_edge { n }) (Edge (u, v))

(** Length-prefixed vertex list. *)
let vertices ~n vs = of_layout (L_vertices { n }) (Vertices vs)

(** Length-prefixed edge list — the dominant message type in every protocol. *)
let edges ~n es = of_layout (L_edges { n }) (Edges es)

let tuple parts =
  { value = Tuple (List.map (fun p -> p.value) parts);
    bits = List.fold_left (fun acc p -> acc + p.bits) 0 parts;
    layout = L_tuple (List.map (fun p -> p.layout) parts) }

(* Extraction: a mismatch is a protocol bug, so we fail loudly. *)

let get_bool t = match t.value with Bool b -> b | _ -> invalid_arg "Msg.get_bool"

let get_int t = match t.value with Int v -> v | _ -> invalid_arg "Msg.get_int"

let get_vertex_opt t =
  match t.value with
  | Vertex v -> Some v
  | No_vertex -> None
  | _ -> invalid_arg "Msg.get_vertex_opt"

let get_edge t = match t.value with Edge (u, v) -> (u, v) | _ -> invalid_arg "Msg.get_edge"

let get_vertices t = match t.value with Vertices vs -> vs | _ -> invalid_arg "Msg.get_vertices"

let get_edges t = match t.value with Edges es -> es | _ -> invalid_arg "Msg.get_edges"

let get_tuple t =
  match (t.value, t.layout) with
  | Tuple vs, L_tuple ls when List.length vs = List.length ls ->
      List.map2 (fun l v -> of_layout l v) ls vs
  | _ -> invalid_arg "Msg.get_tuple"
