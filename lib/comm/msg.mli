(** Messages with exact bit accounting.  Every value crossing a channel in
    any model is a [Msg.t]: a typed payload plus its cost under the
    {!Tfree_util.Bits} schema.  Protocols construct messages only through the
    smart constructors, keeping the cost model centralized and auditable.

    Every message also carries its {!layout} — the exact bit-level encoding
    (field widths, length prefixes, flag bits) that its constructor committed
    to.  The wire codec ([Tfree_wire.Codec]) serializes payloads from the
    layout, so an encoded message occupies exactly {!bits} physical bits:
    the cost model and the wire format are one schema. *)

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Vertex of int
  | No_vertex
  | Edge of int * int
  | Vertices of int list
  | Edges of (int * int) list
  | Tuple of value list

(** Bit-level encoding schema of a message.  [n] fixes the vertex-identifier
    width ceil(log2 n); [lo, hi] fix a range-coded integer's width; lists are
    length-prefixed with an Elias-gamma code. *)
type layout =
  | L_unit
  | L_bool
  | L_int_in of { lo : int; hi : int }
  | L_nat
  | L_vertex of { n : int }
  | L_vertex_opt of { n : int }
  | L_edge of { n : int }
  | L_vertices of { n : int }
  | L_edges of { n : int }
  | L_tuple of layout list

type t

(** Cost in bits. *)
val bits : t -> int

val value : t -> value

(** The encoding schema committed to by the constructor. *)
val layout : t -> layout

(** Rebuild a message from a layout and a payload value; [bits] is
    recomputed from the layout, so a decoded message equals the original.
    @raise Invalid_argument if the value does not fit the layout (a codec
    bug, not a recoverable condition). *)
val of_layout : layout -> value -> t

(** Zero-bit placeholder (structurally implied requests). *)
val empty : t

(** One bit. *)
val bool : bool -> t

(** Integer known by both sides to lie in [lo, hi]; costs
    ceil(log2 (hi-lo+1)).  @raise Invalid_argument outside the range. *)
val int_in : lo:int -> hi:int -> int -> t

(** Nonnegative integer, self-delimiting code. *)
val nat : int -> t

(** Vertex identifier: ceil(log2 n) bits. *)
val vertex : n:int -> int -> t

(** Optional vertex: 1 flag bit plus the identifier when present. *)
val vertex_opt : n:int -> int option -> t

(** Edge: two vertex identifiers. *)
val edge : n:int -> int * int -> t

(** Length-prefixed vertex list. *)
val vertices : n:int -> int list -> t

(** Length-prefixed edge list — the dominant message type everywhere. *)
val edges : n:int -> (int * int) list -> t

(** Concatenation; cost is the sum of the parts. *)
val tuple : t list -> t

(** Extractors; a mismatch is a protocol bug and raises [Invalid_argument]. *)

val get_bool : t -> bool
val get_int : t -> int
val get_vertex_opt : t -> int option
val get_edge : t -> int * int
val get_vertices : t -> int list
val get_edges : t -> (int * int) list

(** Parts of a tuple, each carrying its own layout and bit count. *)
val get_tuple : t -> t list
