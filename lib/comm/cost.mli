(** Communication-cost ledger: CC(Π) is the total number of bits exchanged
    between the players and the coordinator (§2), tracked per direction, per
    player, and per round. *)

type t = {
  k : int;
  mutable to_players : int;  (** bits sent by the coordinator *)
  mutable from_players : int;  (** bits sent by all players *)
  per_player : int array;  (** upload per player *)
  mutable messages : int;
  mutable rounds : int;
}

val create : k:int -> t

(** Total bits in both directions. *)
val total : t -> int

val charge_to_player : t -> int -> unit
val charge_from_player : t -> int -> int -> unit
val next_round : t -> unit

(** Largest single player's upload — becomes streaming space in §4.2.2. *)
val max_player_upload : t -> int

(** Smallest single player's upload. *)
val min_player_upload : t -> int

(** [max_player_upload - min_player_upload]: per-player imbalance. *)
val upload_spread : t -> int

(** Human-readable one-line summary, including the per-player upload
    watermark (max/min/spread). *)
val summary : t -> string

(** Ledger as JSON (totals, directions, rounds, per-player uploads). *)
val to_json : t -> Tfree_util.Jsonout.t
