(** Coordinator-model runtime (§2): k players with private edge-set inputs
    and a coordinator with none, exchanging messages over private channels —
    or over a blackboard, where every posted message is visible to all
    (Theorem 3.23's model).

    All parties run in one process; player code is a function of the
    player's own input and the shared randomness, and the runtime charges
    the declared size of everything that crosses a channel.  The model is
    the accounting.

    An optional {!Channel.tap} is invoked once per physical channel crossing
    at exactly the charging points; replies flow back to the protocol through
    the tap's return value, so a byte-moving tap (the wire subsystem) routes
    every protocol-visible datum through its codec and transport. *)

open Tfree_graph

type mode = Coordinator | Blackboard

type t

val make : ?mode:mode -> ?tap:Channel.tap -> seed:int -> Partition.t -> t

val k : t -> int
val n : t -> int
val mode : t -> mode
val cost : t -> Cost.t

(** Player [j]'s private input. *)
val input : t -> int -> Graph.t

(** Shared-randomness sub-stream for protocol step [key]; identical for all
    parties, free of communication. *)
val shared_rng : t -> key:int -> Tfree_util.Rng.t

(** Player [j]'s private randomness. *)
val private_rng : t -> int -> Tfree_util.Rng.t

(** One round: the coordinator sends [req] to player [j], who answers with
    [respond input]; both directions charged. *)
val query : t -> int -> req:Msg.t -> (Graph.t -> Msg.t) -> Msg.t

(** One parallel round: the same request to every player, one response each.
    The request is charged k times on private channels, once on a
    blackboard. *)
val ask_all : t -> req:Msg.t -> (int -> Graph.t -> Msg.t) -> Msg.t array

(** Like {!ask_all}, but on a blackboard each player also sees the replies
    of the players before it — the "post in turns, no edge twice" mechanism
    of Theorem 3.23.  On private channels the visible list is empty. *)
val ask_all_visible : t -> req:Msg.t -> (int -> Graph.t -> Msg.t list -> Msg.t) -> Msg.t array

(** Coordinator announcement (no responses): charged k-fold on private
    channels, once on a blackboard. *)
val tell_all : t -> Msg.t -> unit

(** OR of one bit per player: "does anyone have it". *)
val any_player : t -> (Graph.t -> bool) -> bool
