(** Simultaneous-model runtime (§2, "Simultaneous Communication").

    Each player sees its input and the shared randomness, sends exactly one
    message to the referee, and the referee (who has no input) outputs the
    answer.  The runtime enforces the one-round structure by construction:
    the player function cannot observe other messages. *)

open Tfree_util
open Tfree_graph

type ctx = { k : int; n : int; shared : Rng.t }

(** Shared-randomness sub-stream for step [key] — identical for all players
    and the referee. *)
let shared_rng ctx ~key = Rng.split ctx.shared key

type 'r protocol = {
  player : ctx -> int -> Graph.t -> Msg.t;
  referee : ctx -> Msg.t array -> 'r;
}

type 'r outcome = {
  result : 'r;
  total_bits : int;
  max_message_bits : int;
  per_player_bits : int array;
}

(* With a tap installed, each player's single message crosses its channel to
   the referee physically: the referee decides on the delivered copies. *)
let run ?(tap = Channel.identity) ~seed protocol inputs =
  let k = Partition.k inputs in
  let ctx = { k; n = Partition.n inputs; shared = Rng.split (Rng.create seed) 0 } in
  let messages =
    Array.init k (fun j ->
        tap.Channel.deliver ~round:1 (Channel.From_player j) (protocol.player ctx j (Partition.player inputs j)))
  in
  let per_player_bits = Array.map Msg.bits messages in
  {
    result = protocol.referee ctx messages;
    total_bits = Array.fold_left ( + ) 0 per_player_bits;
    max_message_bits = Array.fold_left max 0 per_player_bits;
    per_player_bits;
  }
