(** Simultaneous-model runtime (§2): each player sends exactly one message to
    the referee (a function of its input and the shared randomness only), and
    the referee outputs the answer.  The types make a second round
    unrepresentable. *)

open Tfree_graph

type ctx = { k : int; n : int; shared : Tfree_util.Rng.t }

(** Shared-randomness sub-stream for step [key] — identical for all players
    and the referee. *)
val shared_rng : ctx -> key:int -> Tfree_util.Rng.t

type 'r protocol = {
  player : ctx -> int -> Graph.t -> Msg.t;  (** player index, private input *)
  referee : ctx -> Msg.t array -> 'r;
}

type 'r outcome = {
  result : 'r;
  total_bits : int;
  max_message_bits : int;
  per_player_bits : int array;
}

(** Run the protocol.  With a {!Channel.tap}, each player's one message is
    delivered through it (channel [From_player j]) and the referee receives
    the delivered copies. *)
val run : ?tap:Channel.tap -> seed:int -> 'r protocol -> Partition.t -> 'r outcome
