(** Coordinator-model runtime (§2).

    k players hold private edge-set inputs; a coordinator with no input
    exchanges messages with them over private channels.  In [`Blackboard]
    mode every posted message is visible to all parties, which changes the
    accounting of broadcasts (posted once rather than k times) — the source
    of the k-factor saving in Theorem 3.23.

    Fidelity note: all parties run in one process.  Player code is a function
    of the player's own input (and the shared randomness); the runtime merely
    invokes it and charges the declared size of whatever it returns.  This is
    the standard way to measure communication complexity — the model is the
    accounting, not process isolation.

    A {!Channel.tap} can be installed at construction time: it is invoked at
    exactly the points where the ledger charges bits, once per physical
    channel crossing (so a k-fold coordinator broadcast taps k times while
    being charged in one ledger entry, and a blackboard posting taps once).
    Replies flow back to the protocol {e through} the tap's return value, so
    a byte-moving tap (the wire subsystem) puts every protocol-visible datum
    through its codec and transport. *)

open Tfree_util
open Tfree_graph

type mode = Coordinator | Blackboard

type t = {
  k : int;
  n : int;
  inputs : Partition.t;
  shared : Rng.t;
  private_rngs : Rng.t array;
  cost : Cost.t;
  mode : mode;
  tap : Channel.tap;
}

let make ?(mode = Coordinator) ?(tap = Channel.identity) ~seed inputs =
  let k = Partition.k inputs in
  let root = Rng.create seed in
  {
    k;
    n = Partition.n inputs;
    inputs;
    shared = Rng.split root 0;
    private_rngs = Array.init k (fun j -> Rng.split root (j + 1));
    cost = Cost.create ~k;
    mode;
    tap;
  }

let k t = t.k
let n t = t.n
let cost t = t.cost
let input t j = Partition.player t.inputs j

(** Derive a shared-randomness sub-stream for protocol step [key]; both the
    coordinator and all players can derive the identical stream, so no
    communication is charged. *)
let shared_rng t ~key = Rng.split t.shared key

let private_rng t j = t.private_rngs.(j)

(* Send [req] down every player channel (private mode) or post it once
   (blackboard); mirrors the ledger's k-vs-1 charging of broadcasts. *)
let deliver_request t ~round req =
  match t.mode with
  | Coordinator ->
      for j = 0 to t.k - 1 do
        ignore (t.tap.Channel.deliver ~round (Channel.To_player j) req)
      done
  | Blackboard -> ignore (t.tap.Channel.deliver ~round Channel.Board req)

(** One communication round in which the coordinator sends [req] to player
    [j] and the player answers with [respond input].  Charges both
    directions. *)
let query t j ~req respond =
  Cost.next_round t.cost;
  let round = t.cost.Cost.rounds in
  Cost.charge_to_player t.cost (Msg.bits req);
  ignore (t.tap.Channel.deliver ~round (Channel.To_player j) req);
  let reply = respond (input t j) in
  Cost.charge_from_player t.cost j (Msg.bits reply);
  t.tap.Channel.deliver ~round (Channel.From_player j) reply

(** One parallel round: the same request to every player, one response each.
    In blackboard mode the request is posted once. *)
let ask_all t ~req respond =
  Cost.next_round t.cost;
  let round = t.cost.Cost.rounds in
  let req_bits = Msg.bits req in
  (match t.mode with
  | Coordinator -> if req_bits > 0 then Cost.charge_to_player t.cost (t.k * req_bits)
  | Blackboard -> if req_bits > 0 then Cost.charge_to_player t.cost req_bits);
  if req_bits > 0 then deliver_request t ~round req;
  Array.init t.k (fun j ->
      let reply = respond j (input t j) in
      Cost.charge_from_player t.cost j (Msg.bits reply);
      t.tap.Channel.deliver ~round (Channel.From_player j) reply)

(** Like {!ask_all}, but in blackboard mode each player also sees the replies
    of the players before it (they are posted publicly, §2) — the mechanism
    behind Theorem 3.23's "post in turns, ensuring no edge is posted twice".
    In coordinator mode the previous-replies list is empty, preserving the
    private-channel semantics. *)
let ask_all_visible t ~req respond =
  Cost.next_round t.cost;
  let round = t.cost.Cost.rounds in
  let req_bits = Msg.bits req in
  (match t.mode with
  | Coordinator -> if req_bits > 0 then Cost.charge_to_player t.cost (t.k * req_bits)
  | Blackboard -> if req_bits > 0 then Cost.charge_to_player t.cost req_bits);
  if req_bits > 0 then deliver_request t ~round req;
  let replies = Array.make t.k Msg.empty in
  for j = 0 to t.k - 1 do
    let visible =
      match t.mode with
      | Blackboard -> List.init j (fun j' -> replies.(j'))
      | Coordinator -> []
    in
    let reply = respond j (input t j) visible in
    Cost.charge_from_player t.cost j (Msg.bits reply);
    (* Later players' [visible] lists read back the delivered copy — on a
       blackboard what they see is what was posted, not what was meant. *)
    replies.(j) <- t.tap.Channel.deliver ~round (Channel.From_player j) reply
  done;
  replies

let mode t = t.mode

(** Coordinator announcement to all players (no responses). *)
let tell_all t msg =
  Cost.next_round t.cost;
  let round = t.cost.Cost.rounds in
  let bits = Msg.bits msg in
  (match t.mode with
  | Coordinator -> Cost.charge_to_player t.cost (t.k * bits)
  | Blackboard -> Cost.charge_to_player t.cost bits);
  deliver_request t ~round msg

(** OR over one bit per player — the "does anyone have it" idiom used by the
    edge-query building block and the degree-approximation experiments. *)
let any_player t predicate =
  let replies = ask_all t ~req:Msg.empty (fun _ input -> Msg.bool (predicate input)) in
  Array.exists Msg.get_bool replies
