(** Channels and transport taps: a tap is a hook invoked at every point
    where a runtime charges communication, receiving the crossing message
    and returning the copy the receiver observes.  The identity tap is the
    pure accounting model; the wire subsystem installs a tap that moves the
    message through a real byte transport and returns the decoded copy. *)

type t =
  | To_player of int  (** coordinator (or referee) -> player [j] *)
  | From_player of int  (** player [j] -> coordinator/referee *)
  | Board  (** a broadcast posting, visible to all parties *)

type tap = { deliver : t -> Msg.t -> Msg.t }

(** The pure-model tap: messages arrive untouched. *)
val identity : tap

(** Human-readable channel name ("coord->p3", "p3->coord", "board"). *)
val describe : t -> string
