(** Channels and transport taps: a tap is a hook invoked at every point
    where a runtime charges communication, receiving the crossing message
    (plus the channel and the current round) and returning the copy the
    receiver observes.  The identity tap is the pure accounting model; the
    wire subsystem installs a tap that moves the message through a real byte
    transport, the trace subsystem one that records a phase-attributed event
    per crossing.  Taps compose.

    A tap either returns a faithful copy or raises (the wire tap fails
    closed with a typed [Tfree_wire.Wire_error.Wire_error] on transport
    faults, injected or real); it never returns an altered message, so a
    fault below a tapped runtime can abort a run but never flip its
    verdict. *)

type t =
  | To_player of int  (** coordinator (or referee) -> player [j] *)
  | From_player of int  (** player [j] -> coordinator/referee *)
  | Board  (** a broadcast posting, visible to all parties *)

type tap = { deliver : round:int -> t -> Msg.t -> Msg.t }

(** The pure-model tap: messages arrive untouched. *)
val identity : tap

(** [compose a b] delivers through [a], then through [b].  Every tap must
    preserve the message's value and bit count, so composition order only
    selects which observers are attached, never what the protocol sees. *)
val compose : tap -> tap -> tap

(** Chain any number of taps, left to right; [compose_all []] = {!identity}. *)
val compose_all : tap list -> tap

(** Human-readable channel name ("coord->p3", "p3->coord", "board"). *)
val describe : t -> string

(** The player a channel touches; [None] for the board. *)
val player : t -> int option

(** Inverse of {!describe}; [None] on anything it never printed. *)
val parse : string -> t option
