(** Communication-cost ledger.

    CC(Π) in the paper is the total number of bits exchanged between the
    players and the coordinator (§2).  The ledger tracks both directions,
    per-player upload (needed for the per-player caps of §3.4 and for the
    max-message statistic that becomes streaming space in §4.2.2), message
    count and round count (a simultaneous protocol must show exactly one
    round). *)

type t = {
  k : int;
  mutable to_players : int;     (* bits sent by the coordinator *)
  mutable from_players : int;   (* bits sent by all players *)
  per_player : int array;       (* upload per player *)
  mutable messages : int;
  mutable rounds : int;
}

let create ~k = { k; to_players = 0; from_players = 0; per_player = Array.make k 0; messages = 0; rounds = 0 }

let total t = t.to_players + t.from_players

let charge_to_player t bits =
  t.to_players <- t.to_players + bits;
  t.messages <- t.messages + 1

let charge_from_player t j bits =
  t.from_players <- t.from_players + bits;
  t.per_player.(j) <- t.per_player.(j) + bits;
  t.messages <- t.messages + 1

let next_round t = t.rounds <- t.rounds + 1

let max_player_upload t = Array.fold_left max 0 t.per_player

let min_player_upload t = Array.fold_left min max_int (if Array.length t.per_player = 0 then [| 0 |] else t.per_player)

(* Max − min upload: the per-player imbalance.  The max is the streaming
   bridge's space watermark (§4.2.2), so the summary line must show how far
   the ledger is from a balanced split. *)
let upload_spread t = max_player_upload t - min_player_upload t

let summary t =
  Printf.sprintf
    "total=%d bits (coord->players=%d, players->coord=%d), rounds=%d, messages=%d, player upload max=%d min=%d spread=%d"
    (total t) t.to_players t.from_players t.rounds t.messages (max_player_upload t)
    (min_player_upload t) (upload_spread t)

let to_json t =
  Tfree_util.Jsonout.(
    Obj
      [
        ("total", Num (float_of_int (total t)));
        ("to_players", Num (float_of_int t.to_players));
        ("from_players", Num (float_of_int t.from_players));
        ("rounds", Num (float_of_int t.rounds));
        ("messages", Num (float_of_int t.messages));
        ("max_player_upload", Num (float_of_int (max_player_upload t)));
        ("min_player_upload", Num (float_of_int (min_player_upload t)));
        ("upload_spread", Num (float_of_int (upload_spread t)));
        ("per_player", List (Array.to_list (Array.map (fun b -> Num (float_of_int b)) t.per_player)));
      ])
