(** Phase-attributed protocol tracing.

    The cost ledger ({!Tfree_comm.Cost}) records totals; this module records
    {e structure}.  Protocol code marks its paper-level phases with {!span}
    ("sample-edges", "bucket-scan", "degree-guess", "broadcast", ...), and a
    collector installed as a {!Tfree_comm.Channel.tap} records one event per
    charged message — channel, bits, round, and the phase in scope at the
    moment the message crossed.  Because the tap fires at exactly the
    ledger's charging points and every event carries its bit count,
    [Cost.total] decomposes exactly into per-phase and per-player
    attributions: the sum of event bits equals the accounted bits, always
    (the trace-smoke and test suites assert it for every protocol × mode ×
    transport combination).

    Phase scope is ambient, per domain: {!span} pushes onto a
    [Domain.DLS]-backed stack, so the experiment pool's parallel domains
    each see their own phase context and collectors never observe another
    domain's phases.  The tap holds its collector directly (message events
    always land), while {!with_collector} additionally registers the
    collector to receive timed span records for the Chrome timeline.

    The trace tap is read-only — it returns the message unchanged — so it
    composes freely with the wire tap: [compose (trace) (wire)] records the
    declared message then moves it through bytes, and neither verdicts nor
    accounted bits can change. *)

open Tfree_comm

(** Phase recorded for a message that crossed outside any {!span}. *)
let untraced = "(untraced)"

type event = {
  seq : int;  (** 0-based order of crossing within this collector *)
  phase : string;  (** innermost {!span} in scope, or {!untraced} *)
  channel : Channel.t;
  bits : int;
  round : int;
  ts_us : float;  (** wall-clock µs relative to the collector's creation *)
}

type span_rec = { name : string; depth : int; start_us : float; dur_us : float }

type t = {
  mutable events : event list;  (* newest first *)
  mutable spans : span_rec list;  (* newest first *)
  mutable next_seq : int;
  t0 : float;
}

let now_us () = Unix.gettimeofday () *. 1e6

let create () = { events = []; spans = []; next_seq = 0; t0 = now_us () }

(* ------------------------------------------------ ambient per-domain state *)

type ambient = { mutable stack : string list; mutable active : t list }

let ambient_key : ambient Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; active = [] })

let ambient () = Domain.DLS.get ambient_key

let current_phase () = match (ambient ()).stack with [] -> untraced | p :: _ -> p

let with_collector t f =
  let a = ambient () in
  a.active <- t :: a.active;
  Fun.protect ~finally:(fun () -> a.active <- List.filter (fun c -> c != t) a.active) f

let span name f =
  let a = ambient () in
  let depth = List.length a.stack in
  a.stack <- name :: a.stack;
  let start = now_us () in
  Fun.protect
    ~finally:(fun () ->
      let dur = now_us () -. start in
      (match a.stack with _ :: rest -> a.stack <- rest | [] -> ());
      List.iter
        (fun t ->
          t.spans <- { name; depth; start_us = start -. t.t0; dur_us = dur } :: t.spans)
        a.active)
    f

(* ----------------------------------------------------------------- the tap *)

let record t ~round ch msg =
  let e =
    {
      seq = t.next_seq;
      phase = current_phase ();
      channel = ch;
      bits = Msg.bits msg;
      round;
      ts_us = now_us () -. t.t0;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.events <- e :: t.events

let tap t =
  {
    Channel.deliver =
      (fun ~round ch msg ->
        record t ~round ch msg;
        msg);
  }

(* ------------------------------------------------------------- aggregation *)

let events t = List.rev t.events
let spans t = List.rev t.spans
let total_bits t = List.fold_left (fun acc e -> acc + e.bits) 0 t.events
let message_count t = List.length t.events

(* Group events by [key] in first-seen order, summing messages and bits. *)
let rows_by key t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = key e in
      (match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.add tbl k (1, e.bits)
      | Some (msgs, bits) -> Hashtbl.replace tbl k (msgs + 1, bits + e.bits)))
    (events t);
  List.rev_map (fun k -> let msgs, bits = Hashtbl.find tbl k in (k, msgs, bits)) !order

let phase_rows t = rows_by (fun e -> e.phase) t

(** Per-round [(round, messages, bits)] rows in ascending round order — how
    a congest trace decomposes, with the round stamped on every event at its
    charging point.  Rounds that charged no message have no row. *)
let round_rows t =
  List.sort compare (rows_by (fun e -> e.round) t)

let player_label ch =
  match Channel.player ch with Some j -> Printf.sprintf "p%d" j | None -> "board"

(* Per-player split by direction: (label, download bits, upload bits). *)
let player_rows t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let label = player_label e.channel in
      let down, up =
        match e.channel with
        | Channel.To_player _ | Channel.Board -> (e.bits, 0)
        | Channel.From_player _ -> (0, e.bits)
      in
      match Hashtbl.find_opt tbl label with
      | None ->
          order := label :: !order;
          Hashtbl.add tbl label (down, up)
      | Some (d, u) -> Hashtbl.replace tbl label (d + down, u + up))
    (events t);
  List.rev_map (fun l -> let d, u = Hashtbl.find tbl l in (l, d, u)) !order

(** Log2-bucketed message-size histogram: [(bucket_floor_bits, count)] where
    bucket [b] covers sizes in [[2^b, 2^{b+1})]; bucket [-1] holds zero-bit
    messages.  First-seen order replaced by ascending bucket order. *)
let size_histogram t =
  let bucket bits = if bits <= 0 then -1 else int_of_float (Float.log2 (float_of_int bits)) in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let b = bucket e.bits in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    t.events;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl [] |> List.sort compare

(** The decomposition identity: the sum of traced event bits must equal what
    the ledger accounted.  This is the observability contract — if it fails,
    a charging point is missing its tap (or vice versa). *)
let decomposes t ~accounted = total_bits t = accounted

(* ---------------------------------------------------- Chrome trace events *)

open Tfree_util

let event_args e =
  Jsonout.Obj
    [
      ("channel", Jsonout.Str (Channel.describe e.channel));
      ("bits", Jsonout.Num (float_of_int e.bits));
      ("round", Jsonout.Num (float_of_int e.round));
      ("phase", Jsonout.Str e.phase);
      ("seq", Jsonout.Num (float_of_int e.seq));
    ]

(** Chrome trace-event JSON (the [traceEvents] object form), viewable in
    Perfetto / chrome://tracing.  Spans become "X" (complete) events, one
    track per nesting depth; each charged message becomes an "i" (instant)
    event whose [args] carry channel, bits, round, phase and sequence
    number.  [other] lands in [otherData] — callers put [accounted_bits],
    the verdict and the protocol name there so a trace file is
    self-validating. *)
let to_chrome ?(other = []) t =
  let span_events =
    List.map
      (fun (s : span_rec) ->
        Jsonout.Obj
          [
            ("name", Jsonout.Str s.name);
            ("cat", Jsonout.Str "phase");
            ("ph", Jsonout.Str "X");
            ("ts", Jsonout.Num s.start_us);
            ("dur", Jsonout.Num s.dur_us);
            ("pid", Jsonout.Num 1.);
            ("tid", Jsonout.Num (float_of_int (s.depth + 1)));
          ])
      (spans t)
  in
  let msg_events =
    List.map
      (fun e ->
        Jsonout.Obj
          [
            ("name", Jsonout.Str (Channel.describe e.channel));
            ("cat", Jsonout.Str "message");
            ("ph", Jsonout.Str "i");
            ("ts", Jsonout.Num e.ts_us);
            ("pid", Jsonout.Num 1.);
            ("tid", Jsonout.Num 1.);
            ("s", Jsonout.Str "t");
            ("args", event_args e);
          ])
      (events t)
  in
  Jsonout.Obj
    [
      ("traceEvents", Jsonout.List (span_events @ msg_events));
      ( "otherData",
        Jsonout.Obj
          (("traced_bits", Jsonout.Num (float_of_int (total_bits t)))
          :: ("traced_messages", Jsonout.Num (float_of_int (message_count t)))
          :: other) );
    ]

(* ------------------------------------------------- reading a trace back in *)

(* trace-report and trace_check work from the serialized file, so the
   aggregations must also run over parsed JSON. *)

let chrome_message_args json =
  match Jsonout.member "traceEvents" json with
  | Some (Jsonout.List evs) ->
      List.filter_map
        (fun ev ->
          match Jsonout.member "cat" ev with
          | Some (Jsonout.Str "message") -> Jsonout.member "args" ev
          | _ -> None)
        evs
  | _ -> []

let arg_num k args = Option.bind (Jsonout.member k args) Jsonout.to_float
let arg_str k args =
  match Jsonout.member k args with Some (Jsonout.Str s) -> Some s | _ -> None

(** Per-phase [(phase, messages, bits)] rows of a parsed Chrome trace, in
    first-appearance order. *)
let phase_rows_of_chrome json =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun args ->
      let phase = Option.value ~default:untraced (arg_str "phase" args) in
      let bits = int_of_float (Option.value ~default:0. (arg_num "bits" args)) in
      match Hashtbl.find_opt tbl phase with
      | None ->
          order := phase :: !order;
          Hashtbl.add tbl phase (1, bits)
      | Some (m, b) -> Hashtbl.replace tbl phase (m + 1, b + bits))
    (chrome_message_args json);
  List.rev_map (fun p -> let m, b = Hashtbl.find tbl p in (p, m, b)) !order

(** Per-player [(label, download bits, upload bits)] rows of a parsed trace. *)
let player_rows_of_chrome json =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun args ->
      match Option.bind (arg_str "channel" args) Channel.parse with
      | None -> ()
      | Some ch ->
          let bits = int_of_float (Option.value ~default:0. (arg_num "bits" args)) in
          let label = player_label ch in
          let down, up =
            match ch with
            | Channel.To_player _ | Channel.Board -> (bits, 0)
            | Channel.From_player _ -> (0, bits)
          in
          (match Hashtbl.find_opt tbl label with
          | None ->
              order := label :: !order;
              Hashtbl.add tbl label (down, up)
          | Some (d, u) -> Hashtbl.replace tbl label (d + down, u + up)))
    (chrome_message_args json);
  List.rev_map (fun l -> let d, u = Hashtbl.find tbl l in (l, d, u)) !order

(** Per-round [(round, messages, bits)] rows of a parsed Chrome trace, in
    ascending round order — the serialized-file side of {!round_rows}, used
    by the congest smoke to re-derive the per-round ledger from the trace
    alone. *)
let round_rows_of_chrome json =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun args ->
      let round = int_of_float (Option.value ~default:0. (arg_num "round" args)) in
      let bits = int_of_float (Option.value ~default:0. (arg_num "bits" args)) in
      match Hashtbl.find_opt tbl round with
      | None -> Hashtbl.add tbl round (1, bits)
      | Some (m, b) -> Hashtbl.replace tbl round (m + 1, b + bits))
    (chrome_message_args json);
  Hashtbl.fold (fun r (m, b) acc -> (r, m, b) :: acc) tbl [] |> List.sort compare

(** [otherData] numeric field, e.g. [accounted_of_chrome "accounted_bits"]. *)
let other_num_of_chrome key json =
  Option.bind (Jsonout.member "otherData" json) (fun od ->
      Option.map int_of_float (Option.bind (Jsonout.member key od) Jsonout.to_float))
