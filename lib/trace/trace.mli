(** Phase-attributed protocol tracing.

    A collector, installed as a {!Tfree_comm.Channel.tap}, records one event
    per charged message; protocol code marks its paper-level phases with
    {!span}.  The sum of event bits equals [Cost.total] exactly — the
    decomposition identity ({!decomposes}) — so total communication splits
    into per-phase and per-player attributions with nothing lost.

    Phase scope is ambient and per-domain ([Domain.DLS]), so collectors on
    the experiment pool's parallel domains never see each other's phases.
    The trace tap returns messages unchanged and composes freely with the
    wire tap. *)

type event = {
  seq : int;  (** 0-based order of crossing within this collector *)
  phase : string;  (** innermost {!span} in scope, or {!untraced} *)
  channel : Tfree_comm.Channel.t;
  bits : int;
  round : int;
  ts_us : float;  (** wall-clock µs since the collector was created *)
}

type span_rec = {
  name : string;
  depth : int;  (** nesting depth, 0 = outermost *)
  start_us : float;  (** relative to the collector's creation *)
  dur_us : float;
}

type t

(** Phase label given to messages that cross outside any {!span}. *)
val untraced : string

val create : unit -> t

(** [span name f] runs [f] with [name] as the innermost ambient phase; every
    message the tap sees during [f] is attributed to it.  Nests; exceptions
    restore the phase stack.  Active collectors (see {!with_collector})
    additionally record a timed span for the Chrome timeline. *)
val span : string -> (unit -> 'a) -> 'a

(** [with_collector t f] registers [t] to receive {!span} timing records
    while [f] runs (message events need only the tap). *)
val with_collector : t -> (unit -> 'a) -> 'a

(** The read-only tap: records an event per delivery, returns the message
    unchanged.  Compose it with the wire tap via {!Tfree_comm.Channel.compose}. *)
val tap : t -> Tfree_comm.Channel.tap

(** Recorded events, oldest first. *)
val events : t -> event list

(** Completed spans, oldest first. *)
val spans : t -> span_rec list

val total_bits : t -> int
val message_count : t -> int

(** [(phase, messages, bits)] in first-appearance order. *)
val phase_rows : t -> (string * int * int) list

(** [(round, messages, bits)] in ascending round order; rounds that charged
    no message have no row.  How congest runs decompose. *)
val round_rows : t -> (int * int * int) list

(** [(label, download bits, upload bits)] per player ("p0", ... or "board"),
    in first-appearance order.  Board postings count as download. *)
val player_rows : t -> (string * int * int) list

(** Log2-bucketed message-size histogram [(bucket, count)], ascending;
    bucket [b] covers bit sizes in [2^b, 2^(b+1)), bucket [-1] holds
    zero-bit messages. *)
val size_histogram : t -> (int * int) list

(** The decomposition identity: traced bits = accounted bits. *)
val decomposes : t -> accounted:int -> bool

(** Chrome trace-event JSON ([traceEvents] + [otherData]), viewable in
    Perfetto.  [other] fields land in [otherData]; callers record
    [accounted_bits], the protocol and the verdict there so the file is
    self-validating. *)
val to_chrome : ?other:(string * Tfree_util.Jsonout.t) list -> t -> Tfree_util.Jsonout.t

(** Per-phase rows recovered from a parsed Chrome trace (for
    [tfree trace-report] and the trace-smoke validator). *)
val phase_rows_of_chrome : Tfree_util.Jsonout.t -> (string * int * int) list

(** Per-player rows recovered from a parsed Chrome trace. *)
val player_rows_of_chrome : Tfree_util.Jsonout.t -> (string * int * int) list

(** Per-round rows recovered from a parsed Chrome trace, ascending. *)
val round_rows_of_chrome : Tfree_util.Jsonout.t -> (int * int * int) list

(** Numeric [otherData] field of a parsed trace, if present. *)
val other_num_of_chrome : string -> Tfree_util.Jsonout.t -> int option
