(** The serve-request phases: where a request's wall-clock goes between
    the socket and the reply.  Each phase gets its own latency histogram
    in {!Tfree_wire.Metrics}; under a clean single-query load every phase
    records exactly one sample per served query, which is the consistency
    the observability smoke asserts.

    - [Read]: assembling one request unit (line or frame) from socket
      chunks — first buffered byte to unit extraction.
    - [Parse]: text → JSON parse (v1) or frame-body decode (v2); one
      sample per request unit.
    - [Cache_lookup]: instance/dataset resolution against the LRU cache,
      including any rebuild on miss.
    - [Run]: the protocol run itself.
    - [Encode]: serializing a successful query response.
    - [Write]: delivering the reply bytes to the socket. *)

type t = Read | Parse | Cache_lookup | Run | Encode | Write

let all = [ Read; Parse; Cache_lookup; Run; Encode; Write ]
let count = 6

let index = function
  | Read -> 0
  | Parse -> 1
  | Cache_lookup -> 2
  | Run -> 3
  | Encode -> 4
  | Write -> 5

let of_index = function
  | 0 -> Read
  | 1 -> Parse
  | 2 -> Cache_lookup
  | 3 -> Run
  | 4 -> Encode
  | 5 -> Write
  | i -> invalid_arg (Printf.sprintf "Phase.of_index: %d" i)

let name = function
  | Read -> "read"
  | Parse -> "parse"
  | Cache_lookup -> "cache_lookup"
  | Run -> "run"
  | Encode -> "encode"
  | Write -> "write"

let of_name = function
  | "read" -> Some Read
  | "parse" -> Some Parse
  | "cache_lookup" -> Some Cache_lookup
  | "run" -> Some Run
  | "encode" -> Some Encode
  | "write" -> Some Write
  | _ -> None
