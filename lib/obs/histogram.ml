(** Bounded log-linear latency histogram (HdrHistogram-style).

    Values are non-negative microseconds, floored to integers and mapped to
    a fixed bucket array: values below [2^sub_bits] land in unit-width
    buckets (exact); above that, each power-of-two octave is split into
    [2^sub_bits] sub-buckets, so a bucket holding value [v] is at most
    [v * 2^-sub_bits] wide.  Memory is O(buckets) — [(64 - sub_bits) *
    2^sub_bits] counters, about 15 KB at the default [sub_bits = 5] — no
    matter how many samples are recorded, and two histograms with the same
    [sub_bits] merge exactly (bucket-wise count addition).

    Recording allocates nothing: counts live in an [int array] and the
    sum/min/max scalars in a [float array] (a flat float array keeps those
    updates unboxed, where mutable float fields in a mixed record would box
    on every write).  This is what lets the serve hot path record per-query
    and per-phase samples inside the [@micro-smoke] minor-words budget.

    Precision: quantiles interpolate between bucket representatives
    (midpoints), clamped into the exact recorded [min, max].  Against
    {!Tfree_util.Stats.quantile} over the raw samples the documented bound
    is [|approx - exact| <= 1.0 + exact * 2^(1 - sub_bits)] — one
    microsecond of floor quantization plus twice the relative bucket
    width.  [quantile] mirrors [Stats.quantile]'s interpolation rule
    (nan on empty, the sample itself on a single sample). *)

type t = {
  sub_bits : int;
  sub_count : int;  (* 1 lsl sub_bits *)
  counts : int array;
  mutable total : int;
  fstate : float array;  (* [| sum; min; max |], unboxed float updates *)
}

let num_buckets_for sub_bits = (64 - sub_bits) lsl sub_bits

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 16 then
    invalid_arg "Histogram.create: sub_bits must be in 1..16";
  {
    sub_bits;
    sub_count = 1 lsl sub_bits;
    counts = Array.make (num_buckets_for sub_bits) 0;
    total = 0;
    fstate = [| 0.0; infinity; neg_infinity |];
  }

let sub_bits t = t.sub_bits
let num_buckets t = Array.length t.counts
let precision t = 1.0 /. float_of_int t.sub_count
let count t = t.total
let sum t = t.fstate.(0)
let min_value t = if t.total = 0 then nan else t.fstate.(1)
let max_value t = if t.total = 0 then nan else t.fstate.(2)
let mean t = if t.total = 0 then nan else t.fstate.(0) /. float_of_int t.total

(* Highest set bit of a positive int; plain tail recursion over int
   arguments so the hot path allocates nothing (a [ref] would). *)
let rec msb_from k u = if u >= 2 then msb_from (k + 1) (u lsr 1) else k

let index_of t u =
  if u < t.sub_count then u
  else begin
    let shift = msb_from 0 u - t.sub_bits in
    ((shift + 1) lsl t.sub_bits) + ((u lsr shift) - t.sub_count)
  end

(* Inverse of [index_of]: the midpoint of bucket [i] (exact for unit-width
   buckets, i.e. the linear region and the first octave above it). *)
let representative t i =
  if i < t.sub_count then float_of_int i
  else begin
    let shift = (i lsr t.sub_bits) - 1 in
    let base = (t.sub_count + (i land (t.sub_count - 1))) lsl shift in
    float_of_int base +. (float_of_int ((1 lsl shift) - 1) /. 2.0)
  end

let record_int t u =
  let u = if u < 0 then 0 else u in
  let i = index_of t u in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  let v = float_of_int u in
  t.fstate.(0) <- t.fstate.(0) +. v;
  if v < t.fstate.(1) then t.fstate.(1) <- v;
  if v > t.fstate.(2) then t.fstate.(2) <- v

(* [4e18 < max_int] keeps [int_of_float] defined; nan and negatives clamp
   to zero so a corrupt sample cannot crash or poison the buckets. *)
let record t v =
  let v = if v > 0.0 then (if v > 4e18 then 4e18 else v) else 0.0 in
  let i = index_of t (int_of_float v) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.fstate.(0) <- t.fstate.(0) +. v;
  if v < t.fstate.(1) then t.fstate.(1) <- v;
  if v > t.fstate.(2) then t.fstate.(2) <- v

let merge t other =
  if t.sub_bits <> other.sub_bits then
    invalid_arg "Histogram.merge: sub_bits mismatch";
  Array.iteri (fun i n -> if n > 0 then t.counts.(i) <- t.counts.(i) + n) other.counts;
  t.total <- t.total + other.total;
  t.fstate.(0) <- t.fstate.(0) +. other.fstate.(0);
  if other.fstate.(1) < t.fstate.(1) then t.fstate.(1) <- other.fstate.(1);
  if other.fstate.(2) > t.fstate.(2) then t.fstate.(2) <- other.fstate.(2)

let copy t =
  {
    t with
    counts = Array.copy t.counts;
    fstate = Array.copy t.fstate;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.fstate.(0) <- 0.0;
  t.fstate.(1) <- infinity;
  t.fstate.(2) <- neg_infinity

let equal a b =
  a.sub_bits = b.sub_bits && a.total = b.total && a.counts = b.counts

(* Value at 0-based rank [r] of the sorted multiset: the exact min/max at
   the extremes, a clamped bucket representative in between. *)
let rank_value t r =
  if r <= 0 then t.fstate.(1)
  else if r >= t.total - 1 then t.fstate.(2)
  else begin
    let rec find i cum =
      let cum = cum + t.counts.(i) in
      if cum > r then i else find (i + 1) cum
    in
    let v = representative t (find 0 0) in
    Float.min t.fstate.(2) (Float.max t.fstate.(1) v)
  end

let quantile t q =
  if t.total = 0 then nan
  else if t.total = 1 then t.fstate.(2)
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let pos = q *. float_of_int (t.total - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (t.total - 1) in
    let frac = pos -. float_of_int lo in
    (rank_value t lo *. (1.0 -. frac)) +. (rank_value t hi *. frac)
  end

let max_error t exact = 1.0 +. (Float.abs exact *. (2.0 *. precision t))

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

open Tfree_util

let to_json t =
  Jsonout.Obj
    [
      ("sub_bits", Jsonout.Num (float_of_int t.sub_bits));
      ("count", Jsonout.Num (float_of_int t.total));
      ("sum", Jsonout.Num t.fstate.(0));
      ("min", if t.total = 0 then Jsonout.Null else Jsonout.Num t.fstate.(1));
      ("max", if t.total = 0 then Jsonout.Null else Jsonout.Num t.fstate.(2));
      ( "buckets",
        Jsonout.List
          (List.map
             (fun (i, n) ->
               Jsonout.List [ Jsonout.Num (float_of_int i); Jsonout.Num (float_of_int n) ])
             (buckets t)) );
    ]

(* Compact single-token codec for histogram shipping over the load
   generator's tally pipe: no spaces, so it survives a space-split line
   format.  Floats travel as hex floats ([%h]) — exact round-trip.
   Example: "5:3:0x1.8p+6:0x1p+4:0x1.cp+5:16.1,22.2". *)
let to_compact t =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "%d:%d:%h:%h:%h:" t.sub_bits t.total t.fstate.(0) t.fstate.(1)
       t.fstate.(2));
  List.iteri
    (fun j (i, n) ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b '.';
      Buffer.add_string b (string_of_int n))
    (buckets t);
  Buffer.contents b

let of_compact s =
  match String.split_on_char ':' s with
  | [ sb; total; sum; mn; mx; bk ] -> (
      try
        let t = create ~sub_bits:(int_of_string sb) () in
        t.total <- int_of_string total;
        t.fstate.(0) <- float_of_string sum;
        t.fstate.(1) <- float_of_string mn;
        t.fstate.(2) <- float_of_string mx;
        if bk <> "" then
          List.iter
            (fun tok ->
              match String.split_on_char '.' tok with
              | [ i; n ] ->
                  let i = int_of_string i in
                  if i < 0 || i >= Array.length t.counts then
                    failwith "bucket index out of range";
                  t.counts.(i) <- int_of_string n
              | _ -> failwith "bad bucket token")
            (String.split_on_char ',' bk);
        let by_buckets = Array.fold_left ( + ) 0 t.counts in
        if by_buckets <> t.total then failwith "count does not match buckets";
        Ok t
      with
      | Failure msg -> Error (Printf.sprintf "Histogram.of_compact: %s" msg)
      | Invalid_argument msg -> Error (Printf.sprintf "Histogram.of_compact: %s" msg))
  | _ -> Error "Histogram.of_compact: expected 6 colon-separated fields"
