(** Prometheus text exposition (version 0.0.4) of the tfree-serve stats
    JSON, plus a strict-enough validator used by the observability smoke.

    [of_stats] translates the {!Tfree_wire.Metrics.to_json} document into
    metric families: monotone counters get a [_total] suffix, gauges stay
    bare, and the latency histograms surface as summaries
    ([tfree_latency_us{quantile="0.99"}] plus [_sum]/[_count]), with the
    per-phase histograms under one family labeled by phase.  The
    translation reads the JSON rather than the registry so any stats
    document — including one fetched over the wire by
    [tfree client --stats --format prom] — can be exposed. *)

open Tfree_util

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let num_member k j =
  match Jsonout.member k j with
  | Some v -> ( match Jsonout.to_float v with Some f -> Some f | None -> None)
  | None -> None

let obj_member k j =
  match Jsonout.member k j with Some (Jsonout.Obj fields) -> Some fields | _ -> None

type emitter = { buf : Buffer.t }

let family e name typ help =
  Buffer.add_string e.buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string e.buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let sample ?(labels = []) e name v =
  Buffer.add_string e.buf name;
  (match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char e.buf '{';
      List.iteri
        (fun i (k, lv) ->
          if i > 0 then Buffer.add_char e.buf ',';
          Buffer.add_string e.buf (Printf.sprintf "%s=\"%s\"" k (escape_label lv)))
        labels;
      Buffer.add_char e.buf '}');
  Buffer.add_char e.buf ' ';
  Buffer.add_string e.buf (fmt_value v);
  Buffer.add_char e.buf '\n'

(* One summary family out of a latency_us-shaped object
   ({count, mean, sum, p50, p90, p99, p999}); quantile samples are
   omitted while the histogram is empty (the JSON holds null). *)
let summary ?(labels = []) e name j =
  List.iter
    (fun (q, key) ->
      match num_member key j with
      | Some v -> sample e name v ~labels:(labels @ [ ("quantile", q) ])
      | None -> ())
    [ ("0.5", "p50"); ("0.9", "p90"); ("0.99", "p99"); ("0.999", "p999") ];
  let count = Option.value ~default:0.0 (num_member "count" j) in
  let sum =
    match num_member "sum" j with
    | Some s -> s
    | None -> count *. Option.value ~default:0.0 (num_member "mean" j)
  in
  sample e (name ^ "_sum") sum ~labels;
  sample e (name ^ "_count") count ~labels

let of_stats j =
  let e = { buf = Buffer.create 2048 } in
  let counter ?labels name help v =
    family e name "counter" help;
    sample ?labels e name v
  in
  let gauge name help v =
    family e name "gauge" help;
    sample e name v
  in
  let n k = Option.value ~default:0.0 (num_member k j) in
  counter "tfree_queries_served_total" "Queries served" (n "queries_served");
  counter "tfree_errors_total" "Failed request lines" (n "errors");
  family e "tfree_category_errors_total" "counter" "Failed request lines by category";
  (match obj_member "errors_by_category" j with
  | Some fields ->
      List.iter
        (fun (cat, v) ->
          match Jsonout.to_float v with
          | Some v -> sample e "tfree_category_errors_total" v ~labels:[ ("category", cat) ]
          | None -> ())
        fields
  | None -> ());
  counter "tfree_retries_total" "Client retry attempts" (n "retries");
  counter "tfree_injected_faults_total" "Scheduled chaos faults fired" (n "injected_faults");
  counter "tfree_wire_bytes_total" "Transport bytes of served queries" (n "wire_bytes");
  counter "tfree_accounted_bits_total" "Ledger bits of served queries" (n "accounted_bits");
  gauge "tfree_uptime_seconds" "Seconds since registry creation" (n "uptime_s");
  gauge "tfree_served_per_second" "Lifetime served/uptime" (n "served_per_sec");
  gauge "tfree_in_flight" "Connections currently open" (n "in_flight");
  (match obj_member "connections" j with
  | Some fields ->
      let cn k = Option.value ~default:0.0 (num_member k (Jsonout.Obj fields)) in
      counter "tfree_connections_accepted_total" "Connections accepted" (cn "accepted");
      counter "tfree_connections_shed_total" "Connections shed under overload" (cn "shed")
  | None -> ());
  (match obj_member "cache" j with
  | Some fields ->
      let cn k = Option.value ~default:0.0 (num_member k (Jsonout.Obj fields)) in
      counter "tfree_cache_hits_total" "Instance-cache hits" (cn "hits");
      counter "tfree_cache_misses_total" "Instance-cache misses" (cn "misses")
  | None -> ());
  (match obj_member "batch" j with
  | Some fields ->
      let cn k = Option.value ~default:0.0 (num_member k (Jsonout.Obj fields)) in
      counter "tfree_batches_total" "Batch exchanges" (cn "batches");
      counter "tfree_batch_items_total" "Queries carried by batch exchanges" (cn "items")
  | None -> ());
  (match obj_member "protocol_versions" j with
  | Some fields ->
      family e "tfree_version_served_total" "counter" "Queries served per wire version";
      family e "tfree_version_bytes_total" "counter" "Serve-socket bytes per wire version";
      List.iter
        (fun (v, vj) ->
          let cn k = Option.value ~default:0.0 (num_member k vj) in
          sample e "tfree_version_served_total" (cn "served") ~labels:[ ("version", v) ];
          sample e "tfree_version_bytes_total" (cn "bytes") ~labels:[ ("version", v) ])
        fields
  | None -> ());
  (match obj_member "verdicts" j with
  | Some fields ->
      family e "tfree_verdicts_total" "counter" "Verdicts by protocol";
      List.iter
        (fun (proto, vj) ->
          List.iter
            (fun verdict ->
              match num_member verdict vj with
              | Some v ->
                  sample e "tfree_verdicts_total" v
                    ~labels:[ ("protocol", proto); ("verdict", verdict) ]
              | None -> ())
            [ "triangle"; "triangle_free" ])
        fields
  | None -> ());
  (match obj_member "datasets" j with
  | Some fields when fields <> [] ->
      family e "tfree_dataset_queries_total" "counter" "Dataset queries served, per name";
      List.iter
        (fun (name, v) ->
          match Jsonout.to_float v with
          | Some v -> sample e "tfree_dataset_queries_total" v ~labels:[ ("dataset", name) ]
          | None -> ())
        fields
  | _ -> ());
  (match Jsonout.member "latency_us" j with
  | Some lat ->
      family e "tfree_latency_us" "summary" "Served-query latency (microseconds)";
      summary e "tfree_latency_us" lat
  | None -> ());
  (match obj_member "phases" j with
  | Some fields ->
      family e "tfree_phase_latency_us" "summary" "Per-phase serve latency (microseconds)";
      List.iter
        (fun (phase, pj) -> summary e "tfree_phase_latency_us" pj ~labels:[ ("phase", phase) ])
        fields
  | None -> ());
  Buffer.contents e.buf

(* ---- validator ---------------------------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let parse_name line i =
  let n = String.length line in
  if i >= n || not (is_name_start line.[i]) then None
  else begin
    let j = ref (i + 1) in
    while !j < n && is_name_char line.[!j] do
      incr j
    done;
    Some (String.sub line i (!j - i), !j)
  end

let parse_float_value s =
  match String.trim s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | s -> float_of_string_opt s

(* Parse one {label="value",...} block starting at [i] (which points at
   '{'); returns the index just past '}'. *)
let parse_labels line i =
  let n = String.length line in
  let rec labels i first =
    if i < n && line.[i] = '}' then Ok (i + 1)
    else begin
      let i = if (not first) && i < n && line.[i] = ',' then i + 1 else i in
      match parse_name line i with
      | None -> Error "expected label name"
      | Some (_, i) ->
          if i + 1 >= n || line.[i] <> '=' || line.[i + 1] <> '"' then
            Error "expected =\" after label name"
          else begin
            let j = ref (i + 2) in
            let fine = ref true in
            while !fine && !j < n && line.[!j] <> '"' do
              if line.[!j] = '\\' then
                if !j + 1 < n then j := !j + 2 else fine := false
              else incr j
            done;
            if (not !fine) || !j >= n then Error "unterminated label value"
            else labels (!j + 1) false
          end
    end
  in
  labels (i + 1) true

let validate text =
  let typed = Hashtbl.create 16 in
  let samples = ref 0 in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      if !err = None && String.trim line <> "" then
        if String.length line >= 2 && String.sub line 0 2 = "# " then begin
          (* comment: must be HELP or TYPE with a well-formed metric name *)
          match String.index_from_opt line 2 ' ' with
          | None -> fail lineno "bare comment (expected # HELP or # TYPE)"
          | Some sp -> (
              let kind = String.sub line 2 (sp - 2) in
              match kind with
              | "HELP" | "TYPE" -> (
                  match parse_name line (sp + 1) with
                  | None -> fail lineno "missing metric name"
                  | Some (name, j) ->
                      if kind = "TYPE" then begin
                        let typ = String.trim (String.sub line j (String.length line - j)) in
                        if List.mem typ [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]
                        then Hashtbl.replace typed name ()
                        else fail lineno (Printf.sprintf "unknown TYPE %S" typ)
                      end)
              | _ -> fail lineno "comment is neither # HELP nor # TYPE")
        end
        else begin
          match parse_name line 0 with
          | None -> fail lineno "sample does not start with a metric name"
          | Some (name, i) -> (
              let after_labels =
                if i < String.length line && line.[i] = '{' then parse_labels line i
                else Ok i
              in
              match after_labels with
              | Error msg -> fail lineno msg
              | Ok i -> (
                  let rest = String.sub line i (String.length line - i) in
                  match parse_float_value rest with
                  | None -> fail lineno (Printf.sprintf "unparseable value %S" (String.trim rest))
                  | Some _ ->
                      let base suffix =
                        if
                          String.length name > String.length suffix
                          && String.sub name
                               (String.length name - String.length suffix)
                               (String.length suffix)
                             = suffix
                        then String.sub name 0 (String.length name - String.length suffix)
                        else name
                      in
                      let declared =
                        Hashtbl.mem typed name
                        || Hashtbl.mem typed (base "_sum")
                        || Hashtbl.mem typed (base "_count")
                        || Hashtbl.mem typed (base "_bucket")
                      in
                      if not declared then
                        fail lineno (Printf.sprintf "sample %s has no preceding # TYPE" name)
                      else incr samples))
        end)
    (String.split_on_char '\n' text);
  match !err with
  | Some e -> Error e
  | None -> if !samples = 0 then Error "no samples" else Ok ()
