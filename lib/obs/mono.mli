(** Monotonic (never-decreasing) clock for latency timing: a clamped
    high-water mark over [Unix.gettimeofday].  Successive reads never
    decrease — during a backwards NTP step the clock holds still until
    real time catches up — so latency deltas are never negative.  Use for
    durations, not for wall-clock timestamps. *)

(** Seconds; same epoch as [Unix.gettimeofday], clamped non-decreasing. *)
val now_s : unit -> float

(** Microseconds ([now_s *. 1e6]). *)
val now_us : unit -> float
