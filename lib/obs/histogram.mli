(** Bounded log-linear latency histogram (HdrHistogram-style).

    Fixed bucket array over non-negative integer microseconds: exact
    unit-width buckets below [2^sub_bits], then [2^sub_bits] sub-buckets
    per power-of-two octave, so memory is O(buckets) — [(64 - sub_bits) *
    2^sub_bits] counters (~15 KB at the default [sub_bits = 5]) — no
    matter how many samples are recorded.  Exact count and sum are kept
    alongside, recording allocates nothing (int-array counters, float-array
    scalars), and histograms with equal [sub_bits] merge exactly.

    Documented quantile precision against
    {!Tfree_util.Stats.quantile} over the raw samples:
    [|quantile t q - exact| <= max_error t exact], i.e. one microsecond of
    floor quantization plus twice the relative bucket width
    [2^-sub_bits]. *)

type t

(** [create ~sub_bits ()] — [sub_bits] (default 5) is the log2 of
    sub-buckets per octave; relative bucket width is [2^-sub_bits].
    @raise Invalid_argument outside 1..16. *)
val create : ?sub_bits:int -> unit -> t

val sub_bits : t -> int

(** Total bucket count — the memory bound, independent of samples. *)
val num_buckets : t -> int

(** Relative bucket width, [2^-sub_bits]. *)
val precision : t -> float

(** Upper bound on [|quantile t q - exact_q|] for an exact quantile value
    [exact]: [1.0 +. |exact| *. 2^(1 - sub_bits)]. *)
val max_error : t -> float -> float

(** Record a sample in microseconds.  Negative and nan values clamp to 0;
    values are floored to integers for bucketing while exact float
    min/max/sum are kept. *)
val record : t -> float -> unit

(** [record] for an integer sample — the zero-allocation hot-path entry
    (no float boxing at the call boundary). *)
val record_int : t -> int -> unit

val count : t -> int

(** Exact sum of recorded values (microseconds). *)
val sum : t -> float

(** [nan] when empty. *)
val mean : t -> float

(** Exact smallest recorded sample; [nan] when empty. *)
val min_value : t -> float

(** Exact largest recorded sample; [nan] when empty. *)
val max_value : t -> float

(** Empirical quantile mirroring {!Tfree_util.Stats.quantile}: [nan] when
    empty, the sample itself when [count = 1], otherwise linear
    interpolation between bucket representatives at the straddling ranks,
    clamped into the exact recorded [min, max] (so q=0 and q=1 are exact).
    O(buckets).  [q] is clamped into [0, 1]. *)
val quantile : t -> float -> float

(** Fold [other] into [t], bucket-wise — exact: merging split histograms
    equals the histogram of the concatenated samples.
    @raise Invalid_argument when [sub_bits] differ. *)
val merge : t -> t -> unit

(** Deep copy (snapshot). *)
val copy : t -> t

(** Reset to empty, keeping the bucket array. *)
val clear : t -> unit

(** Same [sub_bits] and identical bucket counts (sum/min/max excluded:
    float sums depend on addition order). *)
val equal : t -> t -> bool

(** Sparse non-empty buckets as [(index, count)], ascending index. *)
val buckets : t -> (int * int) list

val to_json : t -> Tfree_util.Jsonout.t

(** Single-token text codec (no spaces; hex floats for exactness) for
    shipping histograms through the load generator's tally pipe. *)
val to_compact : t -> string

val of_compact : string -> (t, string) result
