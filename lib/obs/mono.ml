(** Monotonic (never-decreasing) wall-clock reads for latency timing.

    [Unix.gettimeofday] can step backwards under NTP adjustment, which
    turned into negative latency samples in the serve path.  Without
    reaching for an external clock library, a clamped global high-water
    mark over [gettimeofday] gives the property the telemetry needs:
    successive reads never decrease, so deltas are never negative.  The
    cost is that during a backwards step the clock holds still (deltas
    read 0) until real time catches back up — fine for latency
    measurement, not a basis for wall-clock timestamps. *)

let mu = Mutex.create ()
let high_water = ref neg_infinity

let now_s () =
  Mutex.lock mu;
  let t = Unix.gettimeofday () in
  if t > !high_water then high_water := t;
  let r = !high_water in
  Mutex.unlock mu;
  r

let now_us () = now_s () *. 1e6
