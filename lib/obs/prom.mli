(** Prometheus text exposition (0.0.4) of a tfree-serve stats JSON
    document, and a validator for the smoke tests.

    Counters get [_total] names, gauges stay bare, the latency histograms
    render as summaries with [quantile] labels plus [_sum]/[_count], and
    per-phase histograms share one family labeled by [phase]. *)

(** Translate a {!Tfree_wire.Metrics.to_json}-shaped document (local or
    fetched over the wire) into exposition text.  Unknown/missing fields
    are skipped, never fatal. *)
val of_stats : Tfree_util.Jsonout.t -> string

(** Check exposition text: every comment is a well-formed [# HELP]/[#
    TYPE], every sample line parses (name, optional labels with escaped
    values, float value, [+Inf]/[-Inf]/[NaN] accepted), every sample's
    family has a preceding [# TYPE] (modulo [_sum]/[_count]/[_bucket]
    suffixes), and there is at least one sample. *)
val validate : string -> (unit, string) result
