(** Serve-request phases (read, parse, cache-lookup, run, encode, write):
    the per-request decomposition of the daemon hot path.  Each phase gets
    a latency histogram in the metrics registry; under a clean
    single-query load every phase records exactly one sample per served
    query. *)

type t = Read | Parse | Cache_lookup | Run | Encode | Write

(** In [index] order. *)
val all : t list

(** [List.length all] = 6. *)
val count : int

(** Dense 0-based index (array slot). *)
val index : t -> int

(** Inverse of [index].  @raise Invalid_argument outside [0, count). *)
val of_index : int -> t

(** Lower-snake name as it appears in stats JSON, Prometheus labels and
    trace span names: ["read"], ["parse"], ["cache_lookup"], ["run"],
    ["encode"], ["write"]. *)
val name : t -> string

val of_name : string -> t option
