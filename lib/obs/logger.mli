(** Leveled structured JSONL event log: one [{"ts": ..., "level": ...,
    "event": ..., ...}] object per line, flushed per event, with the last
    N lines also held in a fixed-size in-memory ring.  Thread-safe. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_name : string -> level option

type t

(** [create ~ring ~level ~path ()] opens [path] for append.  [ring]
    (default 256) bounds the in-memory tail; [level] (default [Info]) is
    the minimum emitted severity.
    @raise Invalid_argument when [ring < 1]
    @raise Sys_error when the file cannot be opened. *)
val create : ?ring:int -> ?level:level -> path:string -> unit -> t

(** Would an event at this level be emitted?  Use to skip building
    expensive fields. *)
val enabled : t -> level -> bool

(** [log t level event fields] emits one JSONL line; a no-op below the
    configured level. *)
val log : t -> level -> string -> (string * Tfree_util.Jsonout.t) list -> unit

(** Lines actually written (post-filter), over the logger's lifetime. *)
val emitted : t -> int

(** The ring's current contents, oldest first (at most [ring] lines). *)
val recent : t -> string list

val close : t -> unit
