(** Leveled structured JSONL event log for the daemon.

    One JSON object per line: [{"ts": epoch_seconds, "level": "...",
    "event": "...", ...fields}].  Events below the configured level are
    dropped before any formatting.  Every emitted line is flushed to the
    log file immediately (the daemon may be killed) and also kept in a
    fixed-size in-memory ring, so the last N events survive for
    post-mortem inspection without re-reading the file.

    Thread-safe: emission takes a mutex (the serve loop is single-threaded,
    but client-side registries share freely). *)

open Tfree_util

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  mu : Mutex.t;
  oc : out_channel;
  min_severity : int;
  ring : string option array;
  mutable ring_next : int;  (* next slot to overwrite *)
  mutable emitted : int;  (* lines actually written *)
}

let create ?(ring = 256) ?(level = Info) ~path () =
  if ring < 1 then invalid_arg "Logger.create: ring must be >= 1";
  {
    mu = Mutex.create ();
    oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path;
    min_severity = severity level;
    ring = Array.make ring None;
    ring_next = 0;
    emitted = 0;
  }

let enabled t level = severity level >= t.min_severity

let log t level event fields =
  if enabled t level then begin
    let line =
      Jsonout.to_line
        (Jsonout.Obj
           (("ts", Jsonout.Num (Unix.gettimeofday ()))
           :: ("level", Jsonout.Str (level_name level))
           :: ("event", Jsonout.Str event)
           :: fields))
    in
    Mutex.lock t.mu;
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    t.ring.(t.ring_next) <- Some line;
    t.ring_next <- (t.ring_next + 1) mod Array.length t.ring;
    t.emitted <- t.emitted + 1;
    Mutex.unlock t.mu
  end

let emitted t =
  Mutex.lock t.mu;
  let n = t.emitted in
  Mutex.unlock t.mu;
  n

let recent t =
  Mutex.lock t.mu;
  let n = Array.length t.ring in
  let acc = ref [] in
  (* Oldest-first: walk the ring forward starting at the overwrite cursor. *)
  for i = 0 to n - 1 do
    match t.ring.((t.ring_next + i) mod n) with
    | Some line -> acc := line :: !acc
    | None -> ()
  done;
  Mutex.unlock t.mu;
  List.rev !acc

let close t =
  Mutex.lock t.mu;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.mu
