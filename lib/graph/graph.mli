(** Undirected simple graphs on vertices [0 .. n-1], the common substrate for
    the whole reproduction.

    The representation is immutable after construction: sorted adjacency
    arrays, giving O(log deg) edge membership, O(1) degree queries and cheap
    set intersections (the triangle algorithms rely on all three).  A player's
    private input in the communication protocols is itself a [t] on the same
    vertex set, so every local operation a player performs is a plain graph
    operation. *)

type t

(** An edge is normalized as [(u, v)] with [u < v]. *)
type edge = int * int

val normalize_edge : int * int -> edge

(** [of_edges ~n edges] builds a graph; duplicate edges and self-loops are
    dropped.  Raises [Invalid_argument] on out-of-range endpoints. *)
val of_edges : n:int -> (int * int) list -> t

(** [of_edge_seq ~n seq] is {!of_edges} over a sequence, forced exactly once:
    endpoints stream into a growable flat int buffer (no intermediate list
    cells), so million-edge parsers feed the CSR build incrementally.
    Semantics are identical to [of_edges ~n (List.of_seq seq)]. *)
val of_edge_seq : n:int -> (int * int) Seq.t -> t

val empty : n:int -> t

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** Average degree 2m/n (0 for the empty vertex set). *)
val avg_degree : t -> float

val degree : t -> int -> int

(** Sorted array of neighbours; physically shared, do not mutate. *)
val neighbors : t -> int -> int array

(** O(log min-degree) membership probe of the shorter sorted adjacency;
    both vertices must be in range. *)
val mem_edge : t -> int -> int -> bool

(** All edges, each once, normalized, in lexicographic order. *)
val edges : t -> edge list

val iter_edges : t -> (int -> int -> unit) -> unit

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

(** Union of edge sets (same [n] required); linear merge of the sorted
    adjacency arrays. *)
val union : t -> t -> t

val union_list : n:int -> t list -> t

(** Subgraph keeping only edges with both endpoints in the given set. *)
val induced : t -> int list -> t

(** Subgraph keeping edges on which [f u v] holds. *)
val filter_edges : t -> (int -> int -> bool) -> t

(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)
val relabel : t -> int array -> t

(** Structural equality of edge sets. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
