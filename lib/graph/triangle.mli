(** Triangle machinery: detection, enumeration, counting, greedy edge-disjoint
    packing, and the paper's triangle-vee notions (Definitions 2 and 3).

    Enumeration is the forward algorithm over a degree order: every triangle
    reported exactly once, O(m^{3/2}) time. *)

type triangle = int * int * int

(** Normalize to increasing vertex order. *)
val normalize : triangle -> triangle

(** Are these three distinct vertices pairwise adjacent? *)
val is_triangle : Graph.t -> triangle -> bool

(** [iter g f] calls [f a b c] exactly once per triangle of [g]. *)
val iter : Graph.t -> (int -> int -> int -> unit) -> unit

(** [iter_until g f] enumerates like {!iter} but stops as soon as [f] returns
    [true]; returns whether enumeration stopped early.  The early-exit path
    behind {!find}/{!is_free}. *)
val iter_until : Graph.t -> (int -> int -> int -> bool) -> bool

val count : Graph.t -> int

(** All triangles, normalized, each once. *)
val enumerate : Graph.t -> triangle list

(** First triangle found, if any — the referee's final check in every
    protocol; returns only real triangles (one-sided error rests on this). *)
val find : Graph.t -> triangle option

val is_free : Graph.t -> bool

(** Greedy maximal edge-disjoint triangle packing.  Its size lower-bounds the
    removals needed to destroy all triangles, certifying ǫ-farness. *)
val greedy_packing : Graph.t -> triangle list

(** A triangle-vee with source [source] (Definition 2): edges
    {source,a}, {source,b} such that {a,b} is also in the graph. *)
type vee = { source : int; a : int; b : int }

val is_vee : Graph.t -> vee -> bool

(** Greedy maximal set of vees sourced at [v] that are pairwise edge-disjoint
    at [v] (a maximal matching in v's link graph; 2-approximation of the
    maximum, which suffices for the Definition-5 analysis). *)
val disjoint_vees_at : Graph.t -> int -> vee list

val count_disjoint_vees_at : Graph.t -> int -> int

(** Is the edge part of some triangle (Definition 3)? *)
val is_triangle_edge : Graph.t -> Graph.edge -> bool

(** All triangle edges, each once (unspecified order). *)
val triangle_edges : Graph.t -> Graph.edge list

(** [close_vee available vees] finds a vee that an edge of [available]
    closes into a triangle — the "players check their own inputs" step of
    §3.3. *)
val close_vee : Graph.t -> vee list -> (vee * Graph.edge) option
