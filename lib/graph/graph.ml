type t = { n : int; adj : int array array; m : int }

type edge = int * int

let normalize_edge (u, v) = if u <= v then (u, v) else (v, u)

let check_vertex n v =
  if v < 0 || v >= n then invalid_arg (Printf.sprintf "Graph: vertex %d out of range [0,%d)" v n)

(* Sort + dedup each adjacency array in place, returning the half-sum of the
   final degrees (= m).  Shared finishing step of every constructor. *)
let sort_dedup_adj adj =
  let deg_sum = ref 0 in
  for v = 0 to Array.length adj - 1 do
    let a = adj.(v) in
    let len = Array.length a in
    if len > 0 then begin
      Array.sort (fun (x : int) y -> compare x y) a;
      let k = ref 1 in
      for i = 1 to len - 1 do
        if a.(i) <> a.(!k - 1) then begin
          a.(!k) <- a.(i);
          incr k
        end
      done;
      if !k < len then adj.(v) <- Array.sub a 0 !k;
      deg_sum := !deg_sum + !k
    end
  done;
  !deg_sum / 2

(* Streaming build: force the sequence exactly once, buffering endpoints in a
   growable flat int array (two slots per edge, no list cells), then the usual
   exact-size count-then-fill into per-vertex adjacency arrays. *)
let of_edge_seq ~n seq =
  let deg = Array.make n 0 in
  let buf = ref (Array.make 4096 0) in
  let len = ref 0 in
  Seq.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u <> v then begin
        if !len + 2 > Array.length !buf then begin
          let grown = Array.make (2 * Array.length !buf) 0 in
          Array.blit !buf 0 grown 0 !len;
          buf := grown
        end;
        !buf.(!len) <- u;
        !buf.(!len + 1) <- v;
        len := !len + 2;
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    seq;
  let flat = !buf in
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  let i = ref 0 in
  while !i < !len do
    let u = flat.(!i) and v = flat.(!i + 1) in
    adj.(u).(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1;
    adj.(v).(fill.(v)) <- u;
    fill.(v) <- fill.(v) + 1;
    i := !i + 2
  done;
  let m = sort_dedup_adj adj in
  { n; adj; m }

let of_edges ~n edges = of_edge_seq ~n (List.to_seq edges)

let empty ~n = { n; adj = Array.make n [||]; m = 0 }

let n g = g.n
let m g = g.m

let avg_degree g = if g.n = 0 then 0.0 else 2.0 *. float_of_int g.m /. float_of_int g.n

let degree g v =
  check_vertex g.n v;
  Array.length g.adj.(v)

let neighbors g v =
  check_vertex g.n v;
  g.adj.(v)

(* Binary search in a sorted adjacency array. *)
let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      let y = a.(mid) in
      if y = x then true else if y < x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length a)

(* Hot path for every referee and triangle kernel: bounds come from the array
   accesses themselves, and the probe goes straight to the shorter sorted
   adjacency without separate [degree] calls. *)
let mem_edge g u v =
  if u = v then false
  else begin
    let au = g.adj.(u) and av = g.adj.(v) in
    let a, x = if Array.length au <= Array.length av then (au, v) else (av, u) in
    mem_sorted a x
  end

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

(* Merge the sorted adjacency arrays directly instead of rebuilding from the
   concatenated edge lists (no list materialization, no re-sort). *)
let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Graph.union: vertex counts differ";
  let merge a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then begin
          out.(!k) <- x;
          incr i
        end
        else if y < x then begin
          out.(!k) <- y;
          incr j
        end
        else begin
          out.(!k) <- x;
          incr i;
          incr j
        end;
        incr k
      done;
      while !i < la do
        out.(!k) <- a.(!i);
        incr i;
        incr k
      done;
      while !j < lb do
        out.(!k) <- b.(!j);
        incr j;
        incr k
      done;
      if !k < la + lb then Array.sub out 0 !k else out
    end
  in
  let deg_sum = ref 0 in
  let adj =
    Array.init g1.n (fun v ->
        let a = merge g1.adj.(v) g2.adj.(v) in
        deg_sum := !deg_sum + Array.length a;
        a)
  in
  { n = g1.n; adj; m = !deg_sum / 2 }

let union_list ~n gs = of_edges ~n (List.concat_map edges gs)

let induced g vs =
  let keep = Array.make g.n false in
  List.iter (fun v -> check_vertex g.n v; keep.(v) <- true) vs;
  of_edges ~n:g.n (List.filter (fun (u, v) -> keep.(u) && keep.(v)) (edges g))

let filter_edges g f = of_edges ~n:g.n (List.filter (fun (u, v) -> f u v) (edges g))

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: permutation size mismatch";
  of_edges ~n:g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let equal g1 g2 = g1.n = g2.n && g1.m = g2.m && g1.adj = g2.adj

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges g (fun u v -> Format.fprintf fmt "%d-%d@," u v);
  Format.fprintf fmt "@]"
