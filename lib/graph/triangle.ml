(** Triangle machinery: detection, enumeration, counting, greedy edge-disjoint
    packing, and the paper's triangle-vee notions (Definitions 2 and 3).

    Enumeration uses the standard forward algorithm over a degeneracy-style
    order (vertices sorted by degree): each triangle is reported exactly once,
    in O(m^{3/2}) time, which is fast enough for every referee and generator
    in this reproduction. *)

type triangle = int * int * int

(** Normalize to increasing vertex order. *)
let normalize (a, b, c) =
  let l = List.sort compare [ a; b; c ] in
  match l with [ x; y; z ] -> (x, y, z) | _ -> assert false

let is_triangle g (a, b, c) =
  a <> b && b <> c && a <> c && Graph.mem_edge g a b && Graph.mem_edge g b c && Graph.mem_edge g a c

(* Rank vertices by (degree, id); the forward algorithm directs each edge from
   lower to higher rank and intersects out-neighbourhoods.  Counting sort on
   degrees — O(n + max degree), no comparison sort — filled in vertex-id order
   so it is stable, i.e. identical to sorting by (degree, id). *)
let degree_order g =
  let n = Graph.n g in
  let maxd = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    if d > !maxd then maxd := d
  done;
  let start = Array.make (!maxd + 1) 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    start.(d) <- start.(d) + 1
  done;
  let acc = ref 0 in
  for d = 0 to !maxd do
    let c = start.(d) in
    start.(d) <- !acc;
    acc := !acc + c
  done;
  let rank = Array.make n 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    rank.(v) <- start.(d);
    start.(d) <- start.(d) + 1
  done;
  rank

(* CSR of the higher-rank out-adjacency: the out-neighbours of [v] are
   [csr.(off.(v)) .. csr.(off.(v + 1) - 1)], sorted by vertex id (adjacency
   arrays are already sorted, and filtering preserves order — no sort, no
   intermediate lists).  Flat layout keeps the whole structure in two
   allocations and the intersections cache-friendly. *)
let build_out_csr g rank =
  let n = Graph.n g in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let nbrs = Graph.neighbors g v in
    let rv = rank.(v) in
    let c = ref 0 in
    for i = 0 to Array.length nbrs - 1 do
      if rank.(nbrs.(i)) > rv then incr c
    done;
    off.(v + 1) <- !c
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let csr = Array.make (max 1 off.(n)) 0 in
  let cursor = Array.make n 0 in
  for v = 0 to n - 1 do
    cursor.(v) <- off.(v)
  done;
  for v = 0 to n - 1 do
    let nbrs = Graph.neighbors g v in
    let rv = rank.(v) in
    for i = 0 to Array.length nbrs - 1 do
      let u = nbrs.(i) in
      if rank.(u) > rv then begin
        csr.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1
      end
    done
  done;
  (off, csr)

exception Stop

(* Forward algorithm over the CSR.  [f] returns [true] to stop enumeration;
   the function returns whether it was stopped early.  Triangles are reported
   in the same order as the historical array-of-arrays implementation:
   ascending [u], then ascending [v] within [u], then ascending [w]. *)
let forward g f =
  let n = Graph.n g in
  if n = 0 then false
  else begin
    let rank = degree_order g in
    let off, csr = build_out_csr g rank in
    try
      for u = 0 to n - 1 do
        let ulo = off.(u) and uhi = off.(u + 1) in
        for i = ulo to uhi - 1 do
          let v = csr.(i) in
          let vhi = off.(v + 1) in
          let p = ref ulo and q = ref off.(v) in
          while !p < uhi && !q < vhi do
            let a = csr.(!p) and b = csr.(!q) in
            if a = b then begin
              if f u v a then raise_notrace Stop;
              incr p;
              incr q
            end
            else if a < b then incr p
            else incr q
          done
        done
      done;
      false
    with Stop -> true
  end

(** [iter g f] calls [f a b c] once per triangle, with [rank a < rank b <
    rank c] in the degree order (vertex ids in unspecified order otherwise). *)
let iter g f =
  ignore
    (forward g (fun a b c ->
         f a b c;
         false))

(** [iter_until g f] enumerates like {!iter} but stops as soon as [f] returns
    [true]; the result says whether it stopped.  This is the early-exit path
    under {!find}/{!is_free}: referees only need one witness, so there is no
    reason to walk the remaining intersections. *)
let iter_until g f = forward g f

let count g =
  let c = ref 0 in
  iter g (fun _ _ _ -> incr c);
  !c

let enumerate g =
  let acc = ref [] in
  iter g (fun a b c -> acc := normalize (a, b, c) :: !acc);
  List.rev !acc

(** First triangle found, if any — the referee's final check in every
    protocol.  One-sided error hinges on this returning only real triangles,
    which [iter_until] guarantees; enumeration stops at the first witness. *)
let find g =
  let result = ref None in
  ignore
    (iter_until g (fun a b c ->
         result := Some (normalize (a, b, c));
         true));
  !result

let is_free g = Option.is_none (find g)

(** Greedy maximal edge-disjoint triangle packing.  Its size lower-bounds the
    number of edges whose removal is needed to destroy all triangles, hence
    certifies ǫ-farness: packing of size >= ǫ·m implies ǫ-far. *)
let greedy_packing g =
  let used : (Graph.edge, unit) Hashtbl.t = Hashtbl.create 64 in
  let free e = not (Hashtbl.mem used e) in
  let acc = ref [] in
  iter g (fun a b c ->
      let e1 = Graph.normalize_edge (a, b)
      and e2 = Graph.normalize_edge (b, c)
      and e3 = Graph.normalize_edge (a, c) in
      if free e1 && free e2 && free e3 then begin
        Hashtbl.replace used e1 ();
        Hashtbl.replace used e2 ();
        Hashtbl.replace used e3 ();
        acc := normalize (a, b, c) :: !acc
      end);
  List.rev !acc

(** A triangle-vee with source [v] (Definition 2): edges {v,a},{v,b} such
    that {a,b} is also in the graph. *)
type vee = { source : int; a : int; b : int }

let is_vee g { source; a; b } =
  a <> b && Graph.mem_edge g source a && Graph.mem_edge g source b && Graph.mem_edge g a b

(** Greedy maximal set of disjoint triangle-vees with source [v]: pairwise
    edge-disjoint at [v], i.e. a matching in the link graph on N(v).  Greedy
    maximal matching is a 2-approximation, which suffices for the full-vertex
    analysis (Definition 5). *)
let disjoint_vees_at g v =
  let nbrs = Graph.neighbors g v in
  let used = Array.make (Array.length nbrs) false in
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      if not used.(i) then begin
        let rec probe j =
          if j >= Array.length nbrs then ()
          else if (not used.(j)) && Graph.mem_edge g a nbrs.(j) then begin
            used.(i) <- true;
            used.(j) <- true;
            acc := { source = v; a; b = nbrs.(j) } :: !acc
          end
          else probe (j + 1)
        in
        probe (i + 1)
      end)
    nbrs;
  List.rev !acc

let count_disjoint_vees_at g v = List.length (disjoint_vees_at g v)

(** Is [e] a triangle edge (Definition 3)? *)
let is_triangle_edge g (u, v) =
  Graph.mem_edge g u v
  && begin
       let nu = Graph.neighbors g u and nv = Graph.neighbors g v in
       let a, probe = if Array.length nu <= Array.length nv then (nu, v) else (nv, u) in
       Array.exists (fun w -> w <> u && w <> v && Graph.mem_edge g probe w) a
     end

(** All triangle edges, each once. *)
let triangle_edges g =
  let tbl = Hashtbl.create 64 in
  iter g (fun a b c ->
      Hashtbl.replace tbl (Graph.normalize_edge (a, b)) ();
      Hashtbl.replace tbl (Graph.normalize_edge (b, c)) ();
      Hashtbl.replace tbl (Graph.normalize_edge (a, c)) ());
  Hashtbl.fold (fun e () acc -> e :: acc) tbl []

(** Given a set of candidate vees and a graph of available edges, find an edge
    closing some vee into a triangle: the "players check their own inputs"
    step of the unrestricted protocol (§3.3). *)
let close_vee available vees =
  List.find_map
    (fun ({ source = _; a; b } as vee) ->
      if Graph.mem_edge available a b then Some (vee, Graph.normalize_edge (a, b)) else None)
    vees
