(** E26: fleet sharding — merged-worker parity and per-shard cache
    relief.

    Both tables drive the exact code path a fleet worker runs
    ({!Tfree_wire.Service.handle_line} against a per-worker instance
    cache and {!Tfree_wire.Metrics} registry), route every line with
    {!Tfree_wire.Service.shard_of_request} — the same hash the fleet
    parent and the shard-aware load generator use — and reconcile the
    per-worker registries through the ctl-channel codec
    ({!Tfree_wire.Metrics.to_wire} / [of_wire] / [merge]), so the run is
    deterministic (no sockets, no forks, no clock-dependent counters)
    yet measures the invariants the live fleet's stats gate relies on.

    Table A is the merged-vs-single parity gate: the same query stream —
    plain lines, per-shard-grouped [{"op": "batch"}] exchanges, a
    malformed line and an unknown op — served by W ∈ {1, 2, 4} sharded
    workers with caches big enough to hold every distinct instance.  The
    merged fleet registry must agree with the single-process run on
    every deterministic counter: queries served, categorized errors,
    batch items, cache lookups/hits/misses (a distinct key lives on
    exactly one shard), measured wire bytes and accounted bits.  Only
    the batch {e exchange} count may grow with W (one envelope per shard
    touched) — the table reports it.

    Table B is the mechanism behind the fleet throughput gate on a
    single core: [Q] queries cycling [S] distinct seeds against
    per-worker LRUs of capacity [C < S].  One worker thrashes — LRU
    evicts every instance before its reuse, so all [Q] lookups miss and
    rebuild — while at W ≥ 2 every shard's slice of the key space fits
    its cache, so misses collapse to exactly [S] (one build per distinct
    instance) and the rest hit.  The [check] column asserts both
    regimes exactly. *)

open Tfree_util
module Service = Tfree_wire.Service
module Metrics = Tfree_wire.Metrics

let request_for ~n seed = { Service.default_request with n; seed }
let line_for ~n seed = Jsonout.to_line (Service.request_to_json (request_for ~n seed))

(* Route one (shard, line) stream through W independent worker states
   and return the merged registry, reconciled through the wire codec
   exactly as the fleet parent merges ctl snapshots. *)
let run_sharded ~workers ~cache_capacity lines =
  let states =
    Array.init workers (fun _ ->
        (Service.create_cache ~capacity:cache_capacity (), Metrics.create ()))
  in
  let stop = ref false in
  List.iter
    (fun (shard, line) ->
      let cache, metrics = states.(shard) in
      ignore (Service.handle_line ~cache ~metrics ~stop line))
    lines;
  let acc = Metrics.create () in
  Array.iter
    (fun (_, m) ->
      match Metrics.of_wire (Metrics.to_wire m) with
      | Ok m -> Metrics.merge acc m
      | Error msg -> failwith ("E26: worker snapshot does not round-trip: " ^ msg))
    states;
  acc

(* The parity stream for [workers]: plain lines routed by shard, batches
   grouped per shard (the load generator's grouping), and two error
   lines pinned to fixed shards so every W sees the same totals. *)
let parity_stream ~n ~workers ~seeds =
  let plain =
    List.map
      (fun seed ->
        ( Service.shard_of_request ~workers (request_for ~n seed),
          line_for ~n seed ))
      (seeds @ seeds)
  in
  let batch_seeds = List.map (fun s -> 100 + s) seeds in
  let by_shard = Hashtbl.create 4 in
  List.iter
    (fun seed ->
      let r = request_for ~n seed in
      let sh = Service.shard_of_request ~workers r in
      Hashtbl.replace by_shard sh
        (r :: (try Hashtbl.find by_shard sh with Not_found -> [])))
    batch_seeds;
  let batches =
    Hashtbl.fold
      (fun sh rs acc ->
        (sh, Jsonout.to_line (Service.batch_request_to_json (List.rev rs))) :: acc)
      by_shard []
    |> List.sort compare
  in
  plain @ batches @ [ (0, "{nope"); (0, "{\"op\": \"levitate\"}") ]

let e26_fleet scale =
  let n, passes = match scale with Common.Small -> 200, 2 | Common.Big -> 400, 4 in
  let worker_counts = [ 1; 2; 4 ] in
  (* ---- Table A: merged-vs-single parity ---- *)
  let parity_seeds = List.init 6 (fun i -> 1 + i) in
  let counters m =
    ( Metrics.queries_served m,
      Metrics.errors m,
      Metrics.batch_items m,
      Metrics.cache_hits m,
      Metrics.cache_misses m,
      Metrics.wire_bytes m,
      Metrics.accounted_bits m )
  in
  let row_a ~reference w =
    let m =
      run_sharded ~workers:w ~cache_capacity:32 (parity_stream ~n ~workers:w ~seeds:parity_seeds)
    in
    let served, errors, items, hits, misses, bytes, bits = counters m in
    let okay = match reference with None -> true | Some c -> counters m = c in
    ( counters m,
      [
        string_of_int w;
        string_of_int served;
        string_of_int errors;
        string_of_int (Metrics.batches m);
        string_of_int items;
        string_of_int hits;
        string_of_int misses;
        string_of_int bytes;
        string_of_int bits;
        (if okay then "yes" else "NO");
      ] )
  in
  let single, first_row = row_a ~reference:None 1 in
  let rows_a =
    first_row
    :: List.map (fun w -> snd (row_a ~reference:(Some single) w)) (List.tl worker_counts)
  in
  let table_a =
    Table.make
      ~title:
        (Printf.sprintf
           "E26a merged-vs-single parity: one query stream (n=%d) sharded across W workers, \
            ctl-codec merged; every counter but the batch envelope count must match W=1"
           n)
      ~header:
        [ "workers"; "served"; "errors"; "batches"; "items"; "hits"; "misses"; "wire B";
          "acc bits"; "check" ]
      rows_a
  in
  (* ---- Table B: per-shard cache relief (the 1-core throughput lever) ---- *)
  let distinct = 12 and capacity = 8 in
  let queries = passes * distinct in
  let row_b w =
    let lines =
      List.init queries (fun i ->
          let seed = 1 + (i mod distinct) in
          ( Service.shard_of_request ~workers:w (request_for ~n seed),
            line_for ~n seed ))
    in
    let m = run_sharded ~workers:w ~cache_capacity:capacity lines in
    let hits = Metrics.cache_hits m and misses = Metrics.cache_misses m in
    let lookups = hits + misses in
    let okay =
      Metrics.queries_served m = queries
      && lookups = queries
      && if w = 1 then misses = queries (* LRU thrash: every reuse already evicted *)
         else misses = distinct (* every shard slice fits its cache *)
    in
    [
      string_of_int w;
      string_of_int queries;
      string_of_int lookups;
      string_of_int misses;
      string_of_int hits;
      Table.fcell ~prec:3 (float_of_int hits /. float_of_int lookups);
      (if okay then "yes" else "NO");
    ]
  in
  let table_b =
    Table.make
      ~title:
        (Printf.sprintf
           "E26b per-shard cache relief: %d queries (n=%d) cycling %d seeds, per-worker LRU \
            capacity %d; W=1 thrashes (misses=Q), W>=2 collapses to one build per instance"
           queries n distinct capacity)
      ~header:[ "workers"; "queries"; "lookups"; "misses"; "hits"; "hit rate"; "check" ]
      (List.map row_b worker_counts)
  in
  [ table_a; table_b ]
