(** Shared machinery for the experiment harness (DESIGN.md §4).

    Every experiment produces one or more {!Tfree_util.Table.t} rendering the
    measured quantities next to the paper's predicted shape; EXPERIMENTS.md
    quotes the small-scale outputs produced by [bench/main.exe].  All
    experiments run at two scales: [Small] (seconds, used by the bench
    executable) and [Big] (minutes, via the CLI). *)

open Tfree_util
open Tfree_graph

type scale = Small | Big

let reps = function Small -> 5 | Big -> 15

(** Per-seed samples of [run : seed -> 'a] for seeds [1 .. reps], computed on
    the domain pool ({!Tfree_util.Pool}) and returned in seed order.  Every
    experiment cell derives all of its state (instance, partition, runtime)
    from the seed alone, so fanning the seeds over domains changes nothing
    but wall-clock. *)
let seed_samples ~reps run = Pool.parallel_init reps (fun i -> run (i + 1))

(* Aggregate (bits, found) cells exactly as the historical sequential loop
   did — pushing seed 1 first so the mean sums in the identical float order —
   keeping harness output byte-identical at every job count. *)
let mean_of_cells cells =
  let bits = ref [] and hits = ref 0 in
  Array.iter
    (fun (b, found) ->
      bits := float_of_int b :: !bits;
      if found then incr hits)
    cells;
  (Stats.mean !bits, float_of_int !hits /. float_of_int (Array.length cells))

(** Mean communication bits of [run : seed -> int] over [reps] seeds, with
    the detection count (every experiment also tracks correctness).  Trials
    run in parallel on the pool. *)
let mean_bits ~reps run = mean_of_cells (seed_samples ~reps run)

(** [cells ~reps items run] evaluates [run item seed] for every
    [(item, seed)] measurement cell of a scaling sweep as one flat parallel
    batch — the finest useful grain, so a sweep saturates the pool even when
    its largest row dominates.  Per-item cell arrays come back in item order,
    seeds in [1 .. reps] order within each. *)
let cells ~reps items run =
  let arr = Array.of_list items in
  let ni = Array.length arr in
  let flat =
    Pool.parallel_init (ni * reps) (fun idx -> run arr.(idx / reps) ((idx mod reps) + 1))
  in
  List.init ni (fun i -> (arr.(i), Array.sub flat (i * reps) reps))

(** [sweep ~reps items run] is the common one-protocol scaling sweep:
    [(item, (mean bits, success rate))] per item, cells computed in
    parallel, aggregation identical to the sequential loop. *)
let sweep ~reps items run =
  List.map (fun (x, cs) -> (x, mean_of_cells cs)) (cells ~reps items run)

let found_of_report (r : Tfree.Tester.report) =
  match r.Tfree.Tester.verdict with Tfree.Tester.Triangle _ -> true | Tfree.Tester.Triangle_free -> false

(** A far instance at (n, d) partitioned over k players with mild
    duplication, seeded deterministically. *)
let far_instance ~n ~d ~k ~dup seed =
  let rng = Rng.create (914_771 * seed) in
  let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
  let parts =
    if dup then Partition.with_duplication rng ~k ~dup_p:0.3 g else Partition.disjoint_random rng ~k g
  in
  (g, parts)

(** Mean per-phase attribution over [reps] traced runs.  [run seed tap]
    performs one protocol run under [tap] and returns the bits the ledger
    accounted; the decomposition identity (traced = accounted) is asserted
    for every run, so the table rows are guaranteed to sum to the measured
    total.  Returns [(phase, mean messages, mean bits, share %)] rows in
    first-appearance order — deterministic at every job count because the
    sums are integers accumulated in seed order. *)
let phase_attribution ~reps run =
  let module Trace = Tfree_trace.Trace in
  let samples =
    seed_samples ~reps (fun s ->
        let c = Trace.create () in
        let accounted = Trace.with_collector c (fun () -> run s (Trace.tap c)) in
        if not (Trace.decomposes c ~accounted) then
          failwith "phase_attribution: decomposition identity failed";
        Trace.phase_rows c)
  in
  let order = ref [] and tbl = Hashtbl.create 8 in
  Array.iter
    (fun rows ->
      List.iter
        (fun (phase, msgs, bits) ->
          match Hashtbl.find_opt tbl phase with
          | None ->
              order := phase :: !order;
              Hashtbl.add tbl phase (msgs, bits)
          | Some (m, b) -> Hashtbl.replace tbl phase (m + msgs, b + bits))
        rows)
    samples;
  let total = Hashtbl.fold (fun _ (_, b) acc -> acc + b) tbl 0 in
  let r = float_of_int reps in
  List.rev_map
    (fun phase ->
      let msgs, bits = Hashtbl.find tbl phase in
      ( phase,
        float_of_int msgs /. r,
        float_of_int bits /. r,
        100.0 *. float_of_int bits /. float_of_int (max 1 total) ))
    !order

(** Fit the log–log exponent of (n, bits) points. *)
let exponent pts = (Stats.loglog_exponent pts).Stats.slope

let fmt_exp e = Table.fcell ~prec:2 e

(** Build the standard scaling table: one row per n, closing with the fitted
    exponent row. *)
let scaling_table ~title ~claim rows_with_fit =
  let rows, pts = rows_with_fit in
  let fit = exponent pts in
  Table.make ~title
    ~header:[ "n"; "d"; "k"; "mean bits"; "success" ]
    (rows @ [ [ "fit"; "-"; "-"; Printf.sprintf "n^%s" (fmt_exp fit); claim ] ])
