(** E21: wire-vs-model overhead.

    Runs each of the four protocols (E1–E4's subjects) twice on the same
    seed: once against the plain cost-model runtime and once through a
    {!Tfree_wire.Wire_runtime} network, where every charged message is
    encoded, framed and pushed through a byte transport.  The table shows
    the accounted (model) bits next to the measured wire bits, the framing
    overhead, and the wire/model ratio; [parity] asserts that both runs
    returned the same verdict and the same accounted bits, [reconciled]
    that [wire_bytes·8 − framing_overhead_bits = accounted_bits] held
    exactly on every seed.

    Expected shape: the one-shot simultaneous protocols (sim, oblivious,
    exact) send k large messages, so framing is a few hundred bits and the
    ratio sits near 1.0; the unrestricted protocol is chatty — tens of
    thousands of frames a few bits each — so per-frame overhead dominates
    and the ratio is large.  The model's bit count is the paper's object of
    study; the ratio prices what a naive length-prefixed encoding adds. *)

open Tfree_util
module Wire = Tfree_wire.Wire_runtime

let params = Tfree.Params.practical

let e21_wire scale =
  let k = 4 and d = 4.0 in
  let n = match scale with Common.Small -> 600 | Common.Big -> 2000 in
  let reps = Common.reps scale in
  let run_tester ?tap proto ~seed ~davg parts =
    match proto with
    | `Unrestricted -> Tfree.Tester.unrestricted ?tap ~seed params parts
    | `Sim -> Tfree.Tester.simultaneous ?tap ~seed params ~d:davg parts
    | `Oblivious -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params parts
    | `Exact -> Tfree.Tester.exact ?tap ~seed parts
  in
  let row (name, proto) =
    let cells =
      Common.seed_samples ~reps (fun s ->
          let g, parts = Common.far_instance ~n ~d ~k ~dup:true s in
          let davg = Tfree_graph.Graph.avg_degree g in
          let model = run_tester proto ~seed:s ~davg parts in
          let net = Wire.create ~transport:Wire.Pipe ~k () in
          let wired = run_tester ~tap:(Wire.tap net) proto ~seed:s ~davg parts in
          let rep = Wire.report net ~accounted_bits:wired.Tfree.Tester.bits in
          Wire.close net;
          let parity =
            model.Tfree.Tester.verdict = wired.Tfree.Tester.verdict
            && model.Tfree.Tester.bits = wired.Tfree.Tester.bits
          in
          ( model.Tfree.Tester.bits,
            8 * rep.Wire.wire_bytes,
            rep.Wire.framing_overhead_bits,
            rep.Wire.ratio,
            parity,
            Wire.reconciles rep ))
    in
    let mean f = Stats.mean (Array.to_list (Array.map f cells)) in
    let model_bits = mean (fun (b, _, _, _, _, _) -> float_of_int b) in
    let wire_bits = mean (fun (_, w, _, _, _, _) -> float_of_int w) in
    let framing = mean (fun (_, _, f, _, _, _) -> float_of_int f) in
    let ratio = mean (fun (_, _, _, r, _, _) -> r) in
    let parity = Array.for_all (fun (_, _, _, _, p, _) -> p) cells in
    let reconciled = Array.for_all (fun (_, _, _, _, _, ok) -> ok) cells in
    [
      name;
      Table.fcell ~prec:0 model_bits;
      Table.fcell ~prec:0 wire_bits;
      Table.fcell ~prec:0 framing;
      Table.fcell ~prec:3 ratio;
      (if parity then "yes" else "NO");
      (if reconciled then "yes" else "NO");
    ]
  in
  let rows =
    List.map row
      [
        ("unrestricted", `Unrestricted); ("sim", `Sim); ("oblivious", `Oblivious);
        ("exact", `Exact);
      ]
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "E21 wire overhead: model vs pipe-transport wire runtime (n=%d d=%.0f k=%d, %d seeds)"
           n d k reps)
      ~header:[ "protocol"; "model bits"; "wire bits"; "framing bits"; "ratio"; "parity"; "reconciled" ]
      rows;
  ]
