(** Registry mapping experiment ids (DESIGN.md §4) to runners, shared by
    [bench/main.exe] (Small scale) and the CLI (either scale). *)

open Tfree_util

type entry = { id : string; title : string; run : Common.scale -> Table.t list }

let all : entry list =
  [
    { id = "table1/unrestricted"; title = "E1 unrestricted upper bound"; run = Upper_bounds.e1_unrestricted };
    { id = "table1/sim-low"; title = "E2 simultaneous low-degree upper bound"; run = Upper_bounds.e2_sim_low };
    { id = "table1/sim-high"; title = "E3 simultaneous high-degree upper bound"; run = Upper_bounds.e3_sim_high };
    { id = "table1/sim-oblivious"; title = "E4 degree-oblivious overhead"; run = Upper_bounds.e4_oblivious };
    { id = "table1/exact-gap"; title = "E5 exact-vs-testing gap"; run = Upper_bounds.e5_exact_gap };
    { id = "lower/budget-threshold"; title = "E6 budget threshold"; run = Lower_bounds.e6_budget_threshold };
    { id = "lower/streaming-bridge"; title = "E7 streaming bridge"; run = Lower_bounds.e7_streaming };
    { id = "lower/symmetrization"; title = "E8 symmetrization identity"; run = Lower_bounds.e8_symmetrization };
    { id = "lower/bm-reduction"; title = "E9 Boolean-Matching reduction"; run = Lower_bounds.e9_boolean_matching };
    { id = "lower/mu-far"; title = "E10 hard distribution farness"; run = Lower_bounds.e10_mu };
    { id = "ablation/blackboard"; title = "E11 blackboard saving"; run = Ablations.e11_blackboard };
    { id = "ablation/duplication"; title = "E12 duplication saving"; run = Ablations.e12_duplication };
    { id = "blocks/degree-approx"; title = "E13 degree approximation"; run = Ablations.e13_degree_approx };
    { id = "blocks/uniform-edge"; title = "E14 uniform edge sampling"; run = Ablations.e14_uniform_edge };
    { id = "analysis/buckets"; title = "E15 input-analysis lemmas"; run = Ablations.e15_buckets };
    { id = "extension/subgraph"; title = "E16 H-freeness extension"; run = Extensions.e16_subgraph };
    { id = "ablation/eps"; title = "E17 ǫ-sensitivity"; run = Extensions.e17_eps_sweep };
    { id = "ablation/profiles"; title = "E18 paper-vs-practical constants"; run = Extensions.e18_profiles };
    { id = "extension/congest"; title = "E19 CONGEST tester rounds"; run = Extensions.e19_congest };
    { id = "extension/behrend"; title = "E20 Behrend instances"; run = Extensions.e20_behrend };
    { id = "wire/overhead"; title = "E21 wire overhead"; run = Wire_overhead.e21_wire };
    { id = "wire/fault-tolerance"; title = "E22 fault tolerance"; run = Fault_tolerance.e22_fault };
    { id = "serve/throughput"; title = "E23 serve throughput"; run = Serve_throughput.e23_serve };
    { id = "dataset/scaling"; title = "E24 real-graph datasets"; run = Datasets.e24_datasets };
    { id = "serve/latency"; title = "E25 serve latency decomposition"; run = Serve_latency.e25_serve_latency };
    { id = "serve/fleet"; title = "E26 fleet sharding"; run = Serve_fleet.e26_fleet };
    { id = "congest/round-threshold"; title = "E27 round-budget threshold"; run = Congest_threshold.e27_round_threshold };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(** Run one entry and return its tables.  The scaling-row sweeps inside each
    runner fan their [(n, seed)] cells over the domain pool
    ({!Tfree_util.Pool}, sized by [TFREE_JOBS] / [--jobs]); rows come back in
    index order with sequential aggregation, so the tables are identical at
    every job count. *)
let run ?(scale = Common.Small) entry = entry.run scale

(** Run every registered experiment in registry order, pairing each entry
    with its tables — the Table-1 harness loop shared by [bench/main.exe]
    and callers that want the tables without printing. *)
let run_all ?(scale = Common.Small) () = List.map (fun e -> (e, run ~scale e)) all

let run_and_print ?(scale = Common.Small) entry = List.iter Table.print (run ~scale entry)
