(** Experiments E16–E18: the extension features and parameter-sensitivity
    ablations (not rows of Table 1, but claims of §5 and of the parameter
    discussion in §2/§3). *)

open Tfree_util
open Tfree_graph

let params = Tfree.Params.practical

(* ------------------------------------------------------------------ E16 *)

(** E16: H-freeness extension (§5): the generalized Algorithm-7 sampler for
    4-vertex patterns.  Cost per n should sit above the triangle protocol's
    (the sample must be denser for 4-vertex copies: n^{1-?/h} scaling), with
    detection preserved. *)
let e16_subgraph scale =
  let sizes = match scale with Common.Small -> [ 300; 600; 1200 ] | Common.Big -> [ 600; 1200; 2400; 4800 ] in
  let reps = Common.reps scale in
  let run_pattern pattern ~copies_frac n =
    let rng = Rng.create (112_000 + n) in
    let copies = max 2 (int_of_float (copies_frac *. float_of_int n)) in
    let g = Gen.planted_pattern_far rng ~n ~pattern ~copies ~noise:(n / 8) in
    let parts = Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
    let samples =
      Common.seed_samples ~reps (fun s ->
          let o = Tfree.Sim_subgraph.run ~seed:s params ~d:(Graph.avg_degree g) pattern parts in
          let hit =
            match o.Tfree_comm.Simultaneous.result with
            | Some a -> Subgraph.is_embedding g pattern a
            | None -> false
          in
          (float_of_int o.Tfree_comm.Simultaneous.total_bits, hit))
    in
    let bits = ref [] and hits = ref 0 in
    Array.iter
      (fun (b, hit) ->
        bits := b :: !bits;
        if hit then incr hits)
      samples;
    (Stats.mean !bits, float_of_int !hits /. float_of_int reps)
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (pattern, frac) ->
            let bits, rate = run_pattern pattern ~copies_frac:frac n in
            [ string_of_int n; pattern.Subgraph.name; Table.fcell ~prec:0 bits; Table.fcell rate ])
          [ (Subgraph.triangle, 0.12); (Subgraph.four_cycle, 0.10); (Subgraph.four_clique, 0.08) ])
      sizes
  in
  [ Table.make
      ~title:"E16 H-freeness extension (§5): generalized simultaneous sampler, 3- vs 4-vertex patterns"
      ~header:[ "n"; "pattern"; "mean bits"; "success" ]
      rows ]

(* ------------------------------------------------------------------ E17 *)

(** E17: ǫ-sensitivity — the simultaneous protocols' sample sizes scale as
    poly(1/ǫ), so cost rises and detection holds as instances get closer to
    triangle-free. *)
let e17_eps_sweep scale =
  let n = 2000 and k = 4 in
  let reps = Common.reps scale in
  let rows =
    List.map
      (fun (eps, (mean, succ)) ->
        [ Table.fcell eps; Table.fcell ~prec:0 mean; Table.fcell succ ])
      (Common.sweep ~reps [ 0.2; 0.1; 0.05; 0.025 ] (fun eps s ->
           let p = Tfree.Params.(with_eps practical eps) in
           let rng = Rng.create (123_000 + s) in
           let g = Gen.far_with_degree rng ~n ~d:6.0 ~eps in
           let parts = Partition.disjoint_random rng ~k g in
           let o = Tfree.Sim_low.run ~seed:s p ~d:(Graph.avg_degree g) parts in
           (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result)))
  in
  [ Table.make
      ~title:"E17 ǫ-sensitivity of sim-low at n=2000, d=6 (cost grows as ǫ shrinks; detection maintained)"
      ~header:[ "eps"; "mean bits"; "success" ]
      rows ]

(* ------------------------------------------------------------------ E19 *)

(** E19: the CONGEST tester of [10] (the paper's motivating model): rounds
    to detect scale like 1/ǫ² at fixed n and stay flat in n at fixed ǫ,
    with O(log n)-bit messages throughout. *)
let e19_congest scale =
  let reps = match scale with Common.Small -> 9 | Common.Big -> 21 in
  (* Diluted instances: farness ≈ 1/(3·(D+1)) and each corner's probe hits
     with probability ~2/D², isolating the 1/ǫ² round dependence. *)
  let median_rounds ~triangles ~extra_degree =
    let samples =
      Common.seed_samples ~reps (fun s ->
          let rng = Rng.create (134_000 + (7 * s) + extra_degree) in
          let g = Gen.diluted_far rng ~triangles ~extra_degree in
          Tfree_congest.Triangle_tester.rounds_to_detect g ~seed:s ~max_rounds:262_144)
    in
    let rounds = ref [] in
    Array.iter
      (function Some r -> rounds := float_of_int r :: !rounds | None -> ())
      samples;
    Stats.median !rounds
  in
  let rows = ref [] and pts = ref [] in
  List.iter
    (fun extra_degree ->
      let eps = 1.0 /. (3.0 *. float_of_int (extra_degree + 1)) in
      let med = median_rounds ~triangles:6 ~extra_degree in
      rows := [ Table.fcell ~prec:3 eps; string_of_int extra_degree; Table.fcell ~prec:0 med ] :: !rows;
      pts := (1.0 /. eps, med) :: !pts)
    [ 4; 8; 16; 32 ];
  let fit = Common.exponent (List.rev !pts) in
  [ Table.make
      ~title:
        "E19 CONGEST tester [10] on diluted instances: median rounds vs ǫ (paper context: O(1/ǫ²) \
         rounds, O(log n)-bit messages)"
      ~header:[ "eps"; "distractor degree"; "median rounds" ]
      (List.rev !rows
      @ [ [ "fit"; "-"; Printf.sprintf "(1/eps)^%s vs paper <= (1/eps)^2" (Common.fmt_exp fit) ] ]) ]

(* ------------------------------------------------------------------ E20 *)

(** E20: Behrend instances (§5): Θ(1)-far with the minimum triangle count —
    triangle count equals the edge-disjoint packing exactly (no slack),
    unlike random far graphs where the count dwarfs the packing.  The
    protocols still detect (there are m/3 planted triangles), which is why
    the paper expects dense lower bounds to need a more sophisticated use of
    these graphs. *)
let e20_behrend scale =
  ignore scale;
  let rng = Rng.create 145_000 in
  let rows =
    List.map
      (fun (base, digits) ->
        let t = Behrend.instance ~rng ~base ~digits () in
        let g = t.Behrend.graph in
        let n = Graph.n g in
        let count = Triangle.count g in
        let packing = List.length (Triangle.greedy_packing g) in
        (* a random far graph of the same size for contrast *)
        let gr = Gen.gnp (Rng.split rng base) ~n ~p:(2.2 /. sqrt (float_of_int n)) in
        let rnd_count = Triangle.count gr in
        let rnd_packing = List.length (Triangle.greedy_packing gr) in
        (* the sim tester on the Behrend instance *)
        let parts = Partition.disjoint_random rng ~k:3 g in
        let hits = ref 0 and bits = ref [] in
        for s = 1 to 8 do
          let o = Tfree.Sim_low.run ~seed:s params ~d:(Graph.avg_degree g) parts in
          bits := float_of_int o.Tfree_comm.Simultaneous.total_bits :: !bits;
          if Option.is_some o.Tfree_comm.Simultaneous.result then incr hits
        done;
        [
          string_of_int n;
          string_of_int (Graph.m g);
          Printf.sprintf "%d=%d" count packing;
          string_of_bool (count = packing && 3 * count = Graph.m g);
          Printf.sprintf "%d>%d" rnd_count rnd_packing;
          Printf.sprintf "%d/8 @ %.0f bits" !hits (Stats.mean !bits);
        ])
      [ (2, 2); (3, 2); (3, 3) ]
  in
  [ Table.make
      ~title:
        "E20 Behrend instances (§5): far with count=packing=m/3 exactly; random far graphs have \
         count >> packing"
      ~header:[ "n"; "m"; "behrend count=packing"; "minimal"; "random count>packing"; "sim detection" ]
      rows ]

(* ------------------------------------------------------------------ E18 *)

(** E18: profile ablation — the literal paper constants vs the practical
    profile on a small instance (the paper profile is orders of magnitude
    more conservative at the same correctness). *)
let e18_profiles scale =
  ignore scale;
  let n = 240 and k = 3 in
  let rng = Rng.create 321 in
  let g = Gen.far_with_degree rng ~n ~d:5.0 ~eps:0.2 in
  let parts = Partition.disjoint_random rng ~k g in
  let d = Graph.avg_degree g in
  let run p =
    let o = Tfree.Sim_low.run ~seed:5 p ~d parts in
    (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result)
  in
  let paper_p = Tfree.Params.(with_eps paper 0.2) in
  let pract_p = Tfree.Params.(with_eps practical 0.2) in
  let paper_bits, paper_ok = run paper_p in
  let pract_bits, pract_ok = run pract_p in
  (* the unrestricted protocol's candidate-sampling budgets under each *)
  let q_paper = Tfree.Params.bucket_samples paper_p ~k ~n in
  let q_pract = Tfree.Params.bucket_samples pract_p ~k ~n in
  [ Table.make
      ~title:"E18 profile ablation at n=240 (paper constants vs practical; same asymptotic terms)"
      ~header:[ "profile"; "sim-low bits"; "found"; "Alg-3 samples/bucket (q)" ]
      [
        [ "paper"; string_of_int paper_bits; string_of_bool paper_ok; string_of_int q_paper ];
        [ "practical"; string_of_int pract_bits; string_of_bool pract_ok; string_of_int q_pract ];
      ] ]
