(** E27: the round-budget threshold for CONGEST triangle detection — the
    Assadi–Sundaresan axis (PAPERS.md: "Distributed Triangle Detection is
    Hard in Few Rounds").  Rounds are a budgeted resource exactly like bits,
    and the question is where detection collapses as the budget shrinks: for
    each (family, n, ǫ) cell we locate the smallest budget on the geometric
    grid {1, 2, 4, ...} at which the detection probability over seeded
    repetitions crosses 1/2.

    Method.  One halted run per seed at the cap budget yields that seed's
    first-detection round r* (the tester's message schedule is
    budget-independent — see {!Tfree_congest.Triangle_tester} — so detection
    within budget R ⟺ r* ≤ R, and a single run answers every budget
    question).  The threshold is then the smallest grid point R with
    [#{seeds : r* ≤ R} ≥ reps/2].  Everything derives from the seed alone,
    so the cells fan over the domain pool and the tables are identical at
    every job count.

    Two instance families stress the two knobs:
    - "far": [Gen.far_with_degree] at fixed average degree, ǫ scanning the
      planted-triangle density — thresholds stay flat and small (many
      disjoint triangles, each round probes them all in parallel);
    - "diluted": [Gen.diluted_far] with distractor degree D (so
      ǫ = 1/(3(D+1)) and each corner's probe hits with probability ~2/D²),
      isolating the 1/ǫ² round dependence — thresholds grow with 1/ǫ. *)

open Tfree_util
open Tfree_graph
module Simulator = Tfree_congest.Simulator
module Tester = Tfree_congest.Triangle_tester

(* One experiment cell: a family label, the printable parameters, and the
   seeded instance builder. *)
type cell = { family : string; n : int; eps : float; build : int -> Graph.t }

let far_cell ~n ~eps =
  {
    family = "far";
    n;
    eps;
    build =
      (fun s ->
        let rng = Rng.create (167_000 + (7 * s) + n + int_of_float (1000.0 *. eps)) in
        Gen.far_with_degree rng ~n ~d:6.0 ~eps);
  }

let diluted_cell ~extra_degree =
  let triangles = 6 in
  {
    family = "diluted";
    n = 3 * triangles * (1 + extra_degree);
    eps = 1.0 /. (3.0 *. float_of_int (extra_degree + 1));
    build =
      (fun s ->
        let rng = Rng.create (168_000 + (7 * s) + extra_degree) in
        Gen.diluted_far rng ~triangles ~extra_degree);
  }

let cells_for scale =
  let far_ns, far_epss, dilutions =
    match scale with
    | Common.Small -> ([ 300; 600 ], [ 0.2; 0.1; 0.05 ], [ 4; 8; 16; 32 ])
    | Common.Big -> ([ 300; 600; 1200 ], [ 0.2; 0.1; 0.05; 0.025 ], [ 4; 8; 16; 32; 64 ])
  in
  List.concat_map (fun n -> List.map (fun eps -> far_cell ~n ~eps) far_epss) far_ns
  @ List.map (fun d -> diluted_cell ~extra_degree:d) dilutions

(* Budget cap: the largest power of two the scan considers.  Diluted D=16
   detects around 2^10 (E19), so Small leaves three grid points of headroom. *)
let cap = function Common.Small -> 8192 | Common.Big -> 65_536

(* One seeded measurement: (first-detection round if any, total bits the run
   charged).  A single halted run at the cap budget. *)
let run_cell cell ~max_rounds seed =
  let g = cell.build seed in
  let r = Tester.test ~rounds:max_rounds g ~eps:cell.eps ~seed in
  let first =
    match r.Tester.stats.Simulator.outcome with
    | Simulator.Halted -> Some r.Tester.rounds
    | Simulator.Budget_exhausted -> None
  in
  (first, r.Tester.stats.Simulator.total_message_bits)

let detected_within samples r =
  Array.fold_left (fun a (f, _) -> match f with Some f when f <= r -> a + 1 | _ -> a) 0 samples

(** Smallest grid budget {1, 2, 4, ...} within [cap] at which at least half
    of the seeds detect; [None] when even the cap misses the majority. *)
let threshold ~reps ~cap samples =
  let rec scan r =
    if r > cap then None else if 2 * detected_within samples r >= reps then Some r else scan (2 * r)
  in
  scan 1

(* ------------------------------------------------------------------ E27 *)

let e27_round_threshold scale =
  let reps = match scale with Common.Small -> 9 | Common.Big -> 21 in
  let max_rounds = cap scale in
  let measured = Common.cells ~reps (cells_for scale) (fun c s -> run_cell c ~max_rounds s) in
  let rows = ref [] and pts = ref [] in
  List.iter
    (fun (c, samples) ->
      let thr = threshold ~reps ~cap:max_rounds samples in
      let firsts =
        Array.to_list samples
        |> List.filter_map (fun (f, _) -> Option.map float_of_int f)
      in
      let thr_cell, rate_cell =
        match thr with
        | Some t ->
            ( string_of_int t,
              Table.fcell (float_of_int (detected_within samples t) /. float_of_int reps) )
        | None -> ("> " ^ string_of_int max_rounds, "-")
      in
      rows :=
        [
          c.family;
          string_of_int c.n;
          Table.fcell ~prec:3 c.eps;
          string_of_int (List.length firsts) ^ "/" ^ string_of_int reps;
          thr_cell;
          rate_cell;
          (if firsts = [] then "-" else Table.fcell ~prec:0 (Stats.median firsts));
        ]
        :: !rows;
      if c.family = "diluted" then
        Option.iter (fun t -> pts := (1.0 /. c.eps, float_of_int t) :: !pts) thr)
    measured;
  let fit = Common.exponent (List.rev !pts) in
  [ Table.make
      ~title:
        "E27 round-budget threshold (Assadi–Sundaresan axis): smallest geometric-grid budget with \
         detection probability >= 1/2 over seeded reps (paper context: O(1/ǫ²) rounds suffice [10])"
      ~header:[ "family"; "n"; "eps"; "detected"; "threshold rounds"; "rate at threshold"; "median first" ]
      (List.rev !rows
      @ [
          [ "fit (diluted)"; "-"; "-"; "-"; Printf.sprintf "(1/eps)^%s" (Common.fmt_exp fit);
            "paper <= (1/eps)^2"; "-" ];
        ]) ]

(* ------------------------------------------------- machine-readable rows *)

(** One traced run whose per-round ledger must reconcile three ways —
    sum(round_stats bits) = stats.total_message_bits = traced bits (and the
    same for message counts) — checked here before the row is emitted and
    again by check_json from the document alone. *)
let accounting_row () =
  let module Trace = Tfree_trace.Trace in
  let g = Gen.far_with_degree (Rng.create 167_777) ~n:400 ~d:6.0 ~eps:0.1 in
  let c = Trace.create () in
  let r =
    Trace.with_collector c (fun () -> Tester.test ~tap:(Trace.tap c) ~rounds:64 g ~eps:0.1 ~seed:7)
  in
  let st = r.Tester.stats in
  let sum_bits = Array.fold_left (fun a (rs : Simulator.round_stat) -> a + rs.Simulator.round_bits) 0 st.Simulator.round_stats in
  let sum_msgs = Array.fold_left (fun a (rs : Simulator.round_stat) -> a + rs.Simulator.round_messages) 0 st.Simulator.round_stats in
  let traced = Trace.total_bits c in
  let identity =
    sum_bits = st.Simulator.total_message_bits
    && traced = st.Simulator.total_message_bits
    && sum_msgs = st.Simulator.messages
    && Trace.message_count c = st.Simulator.messages
  in
  if not identity then failwith "congest/accounting: per-round ledger does not reconcile";
  Jsonout.Obj
    [
      ("name", Jsonout.Str "congest/accounting");
      ("rounds_run", Jsonout.Num (float_of_int st.Simulator.rounds_run));
      ("budget", Jsonout.Num (float_of_int r.Tester.budget));
      ("outcome", Jsonout.Str (Simulator.outcome_to_string st.Simulator.outcome));
      ("messages", Jsonout.Num (float_of_int st.Simulator.messages));
      ("total_bits", Jsonout.Num (float_of_int st.Simulator.total_message_bits));
      ("round_bits_sum", Jsonout.Num (float_of_int sum_bits));
      ("round_messages_sum", Jsonout.Num (float_of_int sum_msgs));
      ("traced_bits", Jsonout.Num (float_of_int traced));
      ("identity", Jsonout.Bool identity);
    ]

(** The congest/* rows embedded in BENCH_results.json's micro list and
    re-validated by [bench/check_json.exe]: one "congest/threshold" row per
    cell of a fixed small grid (reps, cap and instances independent of
    --jobs, aggregation in seed order — the document is byte-stable), plus
    one "congest/accounting" row witnessing the per-round ledger identity on
    a traced run: sum of round bits = total message bits = traced bits. *)
let bench_rows () =
  let reps = 5 and max_rounds = 4096 in
  let cells =
    [ far_cell ~n:300 ~eps:0.2; far_cell ~n:300 ~eps:0.1; diluted_cell ~extra_degree:4;
      diluted_cell ~extra_degree:8; diluted_cell ~extra_degree:16 ]
  in
  let measured = Common.cells ~reps cells (fun c s -> run_cell c ~max_rounds s) in
  let threshold_rows =
    List.map
      (fun (c, samples) ->
        let thr = threshold ~reps ~cap:max_rounds samples in
        let mean_bits =
          Stats.mean (Array.to_list samples |> List.map (fun (_, b) -> float_of_int b))
        in
        Jsonout.Obj
          [
            ("name", Jsonout.Str "congest/threshold");
            ("family", Jsonout.Str c.family);
            ("n", Jsonout.Num (float_of_int c.n));
            ("eps", Jsonout.Num c.eps);
            ("reps", Jsonout.Num (float_of_int reps));
            ("cap_rounds", Jsonout.Num (float_of_int max_rounds));
            ("detected", Jsonout.Num (float_of_int (detected_within samples max_rounds)));
            ( "threshold_rounds",
              match thr with Some t -> Jsonout.Num (float_of_int t) | None -> Jsonout.Null );
            ( "rate_at_threshold",
              match thr with
              | Some t -> Jsonout.Num (float_of_int (detected_within samples t) /. float_of_int reps)
              | None -> Jsonout.Null );
            ("mean_bits", Jsonout.Num mean_bits);
          ])
      measured
  in
  threshold_rows @ [ accounting_row () ]
