(** Experiments E6–E10: the lower-bound rows of Table 1, reproduced as
    executable evidence (DESIGN.md §2 explains the methodology: threshold
    scaling, reduction structure, and measured identities — proofs cannot be
    run, but everything they predict about concrete instances can be
    checked). *)

open Tfree_util
open Tfree_graph
open Tfree_lowerbound

(* ------------------------------------------------------------------- E6 *)

(** E6: budget-vs-success threshold for the 3-player simultaneous protocol
    at d = Θ(√n).  Theorem 4.1(2) gives Ω((nd)^{1/3}) = Ω(n^{1/2}) and
    Theorem 3.24 matches it, so the minimal per-player budget that still
    succeeds should scale as ~n^{1/2}. *)
let e6_budget_threshold scale =
  let sizes = match scale with Common.Small -> [ 300; 600; 1200 ] | Common.Big -> [ 300; 600; 1200; 2400; 4800 ] in
  let trials = match scale with Common.Small -> 10 | Common.Big -> 30 in
  let rows = ref [] and pts = ref [] in
  List.iter
    (fun n ->
      let d = sqrt (float_of_int n) in
      let gen seed =
        let rng = Rng.create (33_000 + (7 * seed) + n) in
        let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
        (Partition.disjoint_random rng ~k:3 g, g)
      in
      match
        Budgeted.threshold_budget ~trials ~gen
          ~protocol_of_budget:(fun b -> Budgeted.sim_high_budgeted ~budget_bits:b ~d)
          ~target:0.6 ~lo:32 ~hi:10_000_000
      with
      | Some (b, rate) ->
          rows :=
            [ string_of_int n; Table.fcell d; string_of_int b; Table.fcell rate ] :: !rows;
          pts := (float_of_int n, float_of_int b) :: !pts
      | None -> rows := [ string_of_int n; Table.fcell d; "-"; "-" ] :: !rows)
    sizes;
  let fit = Common.exponent (List.rev !pts) in
  [ Table.make
      ~title:
        "E6 budget threshold at d=Θ(√n), 3 players simultaneous (paper LB: Ω((nd)^1/3) = n^0.5; \
         UB tight, Thm 3.24)"
      ~header:[ "n"; "d"; "threshold bits/player"; "success at threshold" ]
      (List.rev !rows
      @ [ [ "fit"; "-"; Printf.sprintf "n^%s" (Common.fmt_exp fit); "paper n^0.5" ] ]) ]

(* ------------------------------------------------------------------- E7 *)

(** E7: the streaming bridge (§4.2.2): the one-way protocol built from the
    streaming detector has messages bounded by the space high-water mark,
    and the space scales like the protocol message size O~((nd)^{1/3}). *)
let e7_streaming scale =
  let sizes = match scale with Common.Small -> [ 300; 600; 1200 ] | Common.Big -> [ 300; 600; 1200; 2400; 4800 ] in
  let rows = ref [] and pts = ref [] in
  List.iter
    (fun n ->
      let d = sqrt (float_of_int n) in
      let rng = Rng.create (44_000 + n) in
      let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
      let parts = Partition.disjoint_random rng ~k:3 g in
      let p = Tfree_streaming.Detector.tuned_p ~n ~d ~eps:0.1 ~c:3.0 in
      let det = Tfree_streaming.Detector.make ~seed:n ~p in
      let b = Tfree_streaming.Bridge.oneway_of_streaming det ~inputs:parts in
      let a_bits, b_bits = b.Tfree_streaming.Bridge.message_bits in
      let ok = match b.Tfree_streaming.Bridge.result with Some t -> Triangle.is_triangle g t | None -> false in
      rows :=
        [
          string_of_int n;
          string_of_int b.Tfree_streaming.Bridge.space_bits;
          string_of_int a_bits;
          string_of_int b_bits;
          string_of_bool (a_bits <= b.Tfree_streaming.Bridge.space_bits && b_bits <= b.Tfree_streaming.Bridge.space_bits);
          string_of_bool ok;
        ]
        :: !rows;
      pts := (float_of_int n, float_of_int b.Tfree_streaming.Bridge.space_bits) :: !pts)
    sizes;
  let fit = Common.exponent (List.rev !pts) in
  [ Table.make
      ~title:
        "E7 streaming bridge (paper §4.2.2: one-way messages = stream state; space tracks \
         O~((nd)^1/3) = n^0.5 at d=√n)"
      ~header:[ "n"; "space bits"; "alice msg"; "bob msg"; "msgs ≤ space"; "found" ]
      (List.rev !rows @ [ [ "fit"; Printf.sprintf "n^%s" (Common.fmt_exp fit); "-"; "-"; "-"; "paper n^0.5" ] ]) ]

(* ------------------------------------------------------------------- E8 *)

(** E8: symmetrization cost identity E|Π′| = (2/k)·CC(Π) (Theorem 4.15). *)
let e8_symmetrization scale =
  let trials = match scale with Common.Small -> 40 | Common.Big -> 200 in
  let rows =
    List.map
      (fun k ->
        let rng = Rng.create (55_000 + k) in
        let protocol = Tfree.Sim_low.protocol Tfree.Params.practical ~d:8.0 in
        let m =
          Symmetrization.measure_identity rng ~k ~trials
            ~sample_mu:(Symmetrization.mu_sampler ~part:40 ~gamma:2.0)
            protocol
        in
        [
          string_of_int k;
          Table.fcell ~prec:1 m.Symmetrization.lhs_mean;
          Table.fcell ~prec:1 m.Symmetrization.rhs_mean;
          Table.fcell (m.Symmetrization.lhs_mean /. Float.max 1.0 m.Symmetrization.rhs_mean);
        ])
      [ 4; 6; 10 ]
  in
  [ Table.make
      ~title:"E8 symmetrization (Theorem 4.15: E|Π'| = (2/k)·CC(Π); ratio → 1.0)"
      ~header:[ "k"; "E|Π'| (lhs)"; "(2/k)·CC(Π) (rhs)"; "ratio" ]
      rows ]

(* ------------------------------------------------------------------- E9 *)

(** E9: the Boolean-Matching reduction (Theorem 4.16) at d = Θ(1): structure
    of both promises, plus the simultaneous tester's measured cost on the
    yes-instances (paper: Ω(√n) lower bound, O~(k√n) upper → tight). *)
let e9_boolean_matching scale =
  let sizes = match scale with Common.Small -> [ 64; 128; 256; 512 ] | Common.Big -> [ 128; 256; 512; 1024; 2048 ] in
  let rows = ref [] and pts = ref [] in
  List.iter
    (fun bm_n ->
      let rng = Rng.create (66_000 + bm_n) in
      let yes = Boolean_matching.generate rng ~n:bm_n ~target:false in
      let no = Boolean_matching.generate rng ~n:bm_n ~target:true in
      let gy = Boolean_matching.reduction_graph yes in
      let gn = Boolean_matching.reduction_graph no in
      let structure_ok =
        List.length (Triangle.greedy_packing gy) = bm_n && Triangle.is_free gn
      in
      (* our tester's cost on the reduction instance *)
      let parts = Boolean_matching.to_partition yes in
      let d = Graph.avg_degree gy in
      (* median, not mean: Alice's hub lands in R rarely but then dominates
         the message, which makes the mean very noisy at few repetitions. *)
      let samples =
        Common.seed_samples ~reps:12 (fun s ->
            let r = Tfree.Tester.simultaneous ~seed:s Tfree.Params.practical ~d parts in
            (float_of_int r.Tfree.Tester.bits, Common.found_of_report r))
      in
      let bits = ref [] and hit = ref 0 in
      Array.iter
        (fun (b, found) ->
          bits := b :: !bits;
          if found then incr hit)
        samples;
      let mean = Stats.median !bits in
      rows :=
        [
          string_of_int bm_n;
          string_of_int (Graph.n gy);
          string_of_bool structure_ok;
          Table.fcell ~prec:0 mean;
          Printf.sprintf "%d/12" !hit;
        ]
        :: !rows;
      pts := (float_of_int (Graph.n gy), mean) :: !pts)
    sizes;
  let fit = Common.exponent (List.rev !pts) in
  [ Table.make
      ~title:
        "E9 Boolean-Matching reduction, d=Θ(1) (Thm 4.16: yes → n disjoint triangles, no → \
         triangle-free; cost ~ √n matches Ω(√n) LB)"
      ~header:[ "BM n"; "graph n"; "dichotomy holds"; "sim bits median (yes)"; "detections" ]
      (List.rev !rows @ [ [ "fit"; "-"; "-"; Printf.sprintf "n^%s" (Common.fmt_exp fit); "paper n^0.5" ] ]) ]

(* ------------------------------------------------------------------ E10 *)

(** E10: Lemma 4.5 — µ samples are Ω(1)-far w.p. ≥ 1/2 with Θ(n^{3/2})
    disjoint triangles. *)
let e10_mu scale =
  let parts_sizes = match scale with Common.Small -> [ 30; 60; 120 ] | Common.Big -> [ 30; 60; 120; 240 ] in
  let trials = match scale with Common.Small -> 8 | Common.Big -> 25 in
  let rows =
    List.map
      (fun part ->
        let rng = Rng.create (77_000 + part) in
        let far_frac, norm_packing =
          Mu_dist.lemma_4_5_stats rng ~part ~gamma:2.0 ~eps:0.05 ~trials
        in
        [
          string_of_int (3 * part);
          Table.fcell far_frac;
          Table.fcell ~prec:4 norm_packing;
          string_of_bool (far_frac >= 0.5);
        ])
      parts_sizes
  in
  [ Table.make
      ~title:
        "E10 hard distribution µ (Lemma 4.5: ≥1/2 of samples Ω(1)-far; packing/n^1.5 ≈ constant \
         across n)"
      ~header:[ "n"; "far fraction"; "packing/n^1.5"; "≥ 1/2" ]
      rows ]
