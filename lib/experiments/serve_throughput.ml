(** E23: tfree-serve throughput — batch amortization and the instance
    cache.

    Both tables exercise the service layer in-process through
    {!Tfree_wire.Service.handle_line} — the exact code path a socket line
    takes, minus the socket — so the measured line-protocol bytes and
    cache counters are the ones a live daemon would report, yet the run is
    deterministic (no wall clock, no pool, no forked processes: the bench
    harness renders every experiment twice, at jobs=1 and jobs=N, and
    diffs the bytes).

    Table A prices the [{"op": "batch"}] framing: the same [Q] queries
    sent as batch exchanges of size 1, 2, 4, ...  A batch item's reply
    object is byte-for-byte what the request would get on its own line, so
    all a bigger batch can save is the per-exchange envelope — the
    [{"op": "batch", "requests": []}] wrapper, the reply's
    [{"ok", "count", "results"}] shell and the two newlines, a constant
    split across the batch.  Bytes/query therefore decreases strictly and
    monotonically in the batch size, asymptoting to the bare
    request+reply cost (the [overhead] column, relative to a plain
    unbatched line, shows the envelope amortizing away).

    Table B prices the instance cache: a fresh server state per row serves
    [Q] queries cycling [S] distinct seeds.  Requests agreeing on every
    instance-determining field share one graph/partition build, so the
    cache must miss exactly [S] times and hit the other [Q - S] — the
    [check] column asserts both counts and that lookups reconcile with
    queries served. *)

open Tfree_util
module Service = Tfree_wire.Service

(* One serving context: metrics + cache + the stop flag handle_line wants. *)
let fresh_state ~cache_capacity =
  (Service.create_cache ~capacity:cache_capacity (), Tfree_wire.Metrics.create (), ref false)

let request_for ~n seed = { Service.default_request with n; seed }

(* Feed one line through the service and return (reply, served), counting
   the two newlines the socket framing would add. *)
let exchange ~cache ~metrics ~stop line =
  let reply, served = Service.handle_line ~cache ~metrics ~stop line in
  (String.length line + 1 + String.length reply + 1, served)

let e23_serve scale =
  let n, queries = match scale with Common.Small -> 200, 16 | Common.Big -> 400, 32 in
  (* ---- Table A: bytes/query vs batch size ---- *)
  let single_line seed = Jsonout.to_line (Service.request_to_json (request_for ~n seed)) in
  let batch_line seeds =
    Jsonout.to_line (Service.batch_request_to_json (List.map (request_for ~n) seeds))
  in
  let seeds_all = List.init queries (fun i -> 1 + i) in
  let rec chunk b = function
    | [] -> []
    | l ->
        let rec take k = function
          | x :: tl when k > 0 ->
              let h, r = take (k - 1) tl in
              (x :: h, r)
          | r -> ([], r)
        in
        let h, r = take b l in
        h :: chunk b r
  in
  let run_plan lines =
    let cache, metrics, stop = fresh_state ~cache_capacity:queries in
    List.fold_left
      (fun (bytes, served) line ->
        let b, s = exchange ~cache ~metrics ~stop line in
        (bytes + b, served + s))
      (0, 0) lines
  in
  let unbatched_bytes, _ = run_plan (List.map single_line seeds_all) in
  let unbatched_per_query = float_of_int unbatched_bytes /. float_of_int queries in
  let batch_sizes = List.filter (fun b -> b <= queries) [ 1; 2; 4; 8; 16 ] in
  let row_a b =
    let bytes, served = run_plan (List.map batch_line (chunk b seeds_all)) in
    let per_query = float_of_int bytes /. float_of_int queries in
    ( per_query,
      [
        string_of_int b;
        string_of_int (queries / b);
        string_of_int bytes;
        Table.fcell ~prec:1 per_query;
        Table.fcell ~prec:3 (per_query /. unbatched_per_query);
        (if served = queries then "yes" else "NO");
      ] )
  in
  let rows_a = List.map row_a batch_sizes in
  let decreasing =
    let rec ok = function
      | (a, _) :: ((b, _) :: _ as tl) -> a > b && ok tl
      | _ -> true
    in
    ok rows_a
  in
  let table_a =
    Table.make
      ~title:
        (Printf.sprintf
           "E23a batch amortization: %d queries (n=%d) per batch size; strictly decreasing: %s"
           queries n
           (if decreasing then "yes" else "NO"))
      ~header:[ "batch"; "exchanges"; "line bytes"; "bytes/query"; "vs unbatched"; "all served" ]
      (List.map snd rows_a)
  in
  (* ---- Table B: cache hit rate vs seed reuse ---- *)
  let row_b s =
    let cache, metrics, stop = fresh_state ~cache_capacity:queries in
    let served = ref 0 in
    List.iter
      (fun q ->
        let line = single_line (1 + (q mod s)) in
        let _, k = exchange ~cache ~metrics ~stop line in
        served := !served + k)
      (List.init queries Fun.id);
    let hits = Tfree_wire.Metrics.cache_hits metrics in
    let misses = Tfree_wire.Metrics.cache_misses metrics in
    let lookups = hits + misses in
    let okay = !served = queries && lookups = queries && misses = s && hits = queries - s in
    [
      string_of_int s;
      string_of_int lookups;
      string_of_int misses;
      string_of_int hits;
      Table.fcell ~prec:3 (float_of_int hits /. float_of_int lookups);
      (if okay then "yes" else "NO");
    ]
  in
  let table_b =
    Table.make
      ~title:
        (Printf.sprintf
           "E23b instance cache: %d queries (n=%d) cycling S distinct seeds, fresh cache per row"
           queries n)
      ~header:[ "seeds"; "lookups"; "misses"; "hits"; "hit rate"; "check" ]
      (List.map row_b (List.filter (fun s -> s <= queries) [ 1; 2; 4; 8 ]))
  in
  [ table_a; table_b ]
