(** Experiments E11–E15: ablations and in-text claims (blackboard saving,
    no-duplication saving, degree-approximation cost, duplication-unbiased
    edge sampling, and the §3.2 input-analysis lemmas checked instance-wise). *)

open Tfree_util
open Tfree_graph

let params = Tfree.Params.practical

(* ------------------------------------------------------------------ E11 *)

(** E11: blackboard vs coordinator for the unrestricted protocol
    (Theorem 3.23: the blackboard saves the k factor on broadcasts). *)
let e11_blackboard scale =
  let n = 1500 and d = 5.0 in
  let reps = Common.reps scale in
  let rows =
    List.map
      (fun k ->
        (* Total bits plus the coordinator->players direction in isolation:
           the theorem's k-factor lives in the broadcast stage, which is a
           minority of the total at low degree. *)
        let run mode =
          let samples =
            Common.seed_samples ~reps (fun s ->
                let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
                let rt = Tfree_comm.Runtime.make ~mode ~seed:s parts in
                ignore (Tfree.Unrestricted.find_triangle rt params);
                let c = Tfree_comm.Runtime.cost rt in
                (float_of_int (Tfree_comm.Cost.total c), float_of_int c.Tfree_comm.Cost.to_players))
          in
          let totals = ref [] and down = ref [] in
          Array.iter
            (fun (t, dn) ->
              totals := t :: !totals;
              down := dn :: !down)
            samples;
          (Stats.mean !totals, Stats.mean !down)
        in
        let coord_total, coord_down = run Tfree_comm.Runtime.Coordinator in
        let board_total, board_down = run Tfree_comm.Runtime.Blackboard in
        [
          string_of_int k;
          Table.fcell ~prec:0 coord_total;
          Table.fcell ~prec:0 board_total;
          Table.fcell (coord_total /. Float.max 1.0 board_total);
          Table.fcell (coord_down /. Float.max 1.0 board_down);
        ])
      [ 2; 4; 8; 16 ]
  in
  (* Per-phase comparison at k=4: the two traces attribute every charged bit
     to its stage, so the theorem's "the saving lives in the broadcast-heavy
     stages" is read directly off the rows rather than inferred from the
     to_players aggregate. *)
  let k = 4 in
  let phases_for mode =
    Common.phase_attribution ~reps (fun s tap ->
        let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
        let rt = Tfree_comm.Runtime.make ~mode ~tap ~seed:s parts in
        ignore (Tfree.Unrestricted.find_triangle rt params);
        Tfree_comm.Cost.total (Tfree_comm.Runtime.cost rt))
  in
  let coord_phases = phases_for Tfree_comm.Runtime.Coordinator in
  let board_phases = phases_for Tfree_comm.Runtime.Blackboard in
  let board_bits phase =
    List.fold_left
      (fun acc (p, _, bits, _) -> if p = phase then bits else acc)
      0.0 board_phases
  in
  let phase_rows =
    List.map
      (fun (phase, _, coord_bits, _) ->
        let bb = board_bits phase in
        [
          phase;
          Table.fcell ~prec:0 coord_bits;
          Table.fcell ~prec:0 bb;
          Table.fcell (coord_bits /. Float.max 1.0 bb);
        ])
      coord_phases
  in
  [
    Table.make
      ~title:
        "E11 blackboard ablation (Theorem 3.23: broadcast stage saves ~k; total saving bounded by \
         that stage's share)"
      ~header:[ "k"; "coordinator bits"; "blackboard bits"; "total saving"; "broadcast-stage saving" ]
      rows;
    Table.make
      ~title:
        (Printf.sprintf
           "E11b per-phase blackboard saving at k=%d, n=%d (traced; saving concentrates in the \
            broadcast-heavy phases)"
           k n)
      ~header:[ "phase"; "coordinator bits"; "blackboard bits"; "saving" ]
      phase_rows;
  ]

(* ------------------------------------------------------------------ E12 *)

(** E12: duplication ablation for simultaneous protocols (Corollaries 3.25
    and 3.27: without duplication the realized cost drops, approaching a
    k-factor as replication rises). *)
let e12_duplication scale =
  let n = 2000 and d = 5.0 and k = 6 in
  let reps = Common.reps scale in
  let run mk_parts =
    Common.mean_bits ~reps (fun s ->
        let rng = Rng.create (88_000 + s) in
        let g = Gen.far_with_degree rng ~n ~d ~eps:0.1 in
        let parts = mk_parts rng g in
        let o = Tfree.Sim_low.run ~seed:s params ~d:(Graph.avg_degree g) parts in
        (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result))
  in
  let disjoint, s1 = run (fun rng g -> Partition.disjoint_random rng ~k g) in
  let dup, s2 = run (fun rng g -> Partition.with_duplication rng ~k ~dup_p:0.5 g) in
  let replicated, s3 = run (fun _ g -> Partition.replicate ~k g) in
  [ Table.make
      ~title:
        "E12 duplication ablation, sim-low, k=6 (Cor 3.27: no-duplication total ≈ per-player cost; \
         full replication ≈ k× that)"
      ~header:[ "partition"; "mean bits"; "success"; "vs disjoint" ]
      [
        [ "disjoint"; Table.fcell ~prec:0 disjoint; Table.fcell s1; "1.00" ];
        [ "dup p=0.5"; Table.fcell ~prec:0 dup; Table.fcell s2; Table.fcell (dup /. disjoint) ];
        [ "replicated"; Table.fcell ~prec:0 replicated; Table.fcell s3; Table.fcell (replicated /. disjoint) ];
      ] ]

(* ------------------------------------------------------------------ E13 *)

(** E13: degree approximation (Theorem 3.1) — bits grow polylogarithmically
    in d(v) while the exact-under-duplication cost Ω(k·d(v)) grows linearly;
    plus the realized approximation ratio. *)
let e13_degree_approx scale =
  let k = 4 in
  let reps = Common.reps scale in
  let rows =
    List.map
      (fun pairs ->
        let samples =
          Common.seed_samples ~reps (fun s ->
              let rng = Rng.create (99_000 + (31 * s) + pairs) in
              let g = Gen.hub_far rng ~n:(4 * pairs) ~hubs:1 ~pairs in
              let parts = Partition.with_duplication rng ~k ~dup_p:0.4 g in
              let rt = Tfree_comm.Runtime.make ~seed:s parts in
              let v =
                fst
                  (List.fold_left
                     (fun (bv, bd) u ->
                       let du = Graph.degree g u in
                       if du > bd then (u, du) else (bv, bd))
                     (0, -1)
                     (List.init (Graph.n g) (fun i -> i)))
              in
              let d = Graph.degree g v in
              let est = Tfree.Degree_approx.approx_degree rt ~key:1 ~alpha:3.0 ~tau:0.1 ~boost:1.0 v in
              ( float_of_int (Tfree_comm.Cost.total (Tfree_comm.Runtime.cost rt)),
                Float.max (float_of_int est /. float_of_int d) (float_of_int d /. float_of_int est) ))
        in
        let bits = ref [] and ratios = ref [] in
        Array.iter
          (fun (b, r) ->
            bits := b :: !bits;
            ratios := r :: !ratios)
          samples;
        let d_v = 2 * pairs in
        [
          string_of_int d_v;
          Table.fcell ~prec:0 (Stats.mean !bits);
          string_of_int (k * d_v);
          Table.fcell (Stats.mean !ratios);
        ])
      [ 50; 200; 800; 3200 ]
  in
  [ Table.make
      ~title:
        "E13 degree approximation (Thm 3.1: O(k·polylog) bits vs Ω(k·d(v)) for exact; ratio ≤ α=3)"
      ~header:[ "d(v)"; "approx bits"; "exact lower bound k·d"; "mean ratio" ]
      rows ]

(* ------------------------------------------------------------------ E14 *)

(** E14: duplication-unbiased uniform edge sampling (§3.1): χ² of the
    sampled-edge distribution on an adversarially replicated instance. *)
let e14_uniform_edge scale =
  let trials = match scale with Common.Small -> 2000 | Common.Big -> 10_000 in
  let n = 12 in
  let edges = [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9); (10, 11) ] in
  let base = Graph.of_edges ~n edges in
  let heavy = Graph.of_edges ~n [ (0, 1); (2, 3) ] in
  let parts = [| base; heavy; heavy; heavy |] in
  let counts = Hashtbl.create 8 in
  let misses = ref 0 in
  for s = 1 to trials do
    let rt = Tfree_comm.Runtime.make ~seed:s parts in
    match Tfree.Blocks.random_edge rt ~key:s with
    | Some e ->
        Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e))
    | None -> incr misses
  done;
  let arr = Array.of_list (List.map (fun e -> Option.value ~default:0 (Hashtbl.find_opt counts e)) edges) in
  let chi2 = Stats.chi2_uniform arr in
  [ Table.make
      ~title:"E14 uniform random edge under duplication (§3.1: priority order de-biases; χ² small)"
      ~header:[ "trials"; "edges"; "chi2 (5 dof)"; "unbiased (χ²<15)" ]
      [ [ string_of_int trials; string_of_int (Array.length arr); Table.fcell chi2; string_of_bool (chi2 < 15.0) ] ] ]

(* ------------------------------------------------------------------ E15 *)

(** E15: the §3.2 input-analysis lemmas checked instance-wise on three far
    families. *)
let e15_buckets scale =
  let eps = 0.1 in
  let instances =
    let rng = Rng.create 123 in
    let scale_n = match scale with Common.Small -> 1 | Common.Big -> 3 in
    [
      ("planted", Gen.planted_far rng ~n:(300 * scale_n) ~triangles:(40 * scale_n) ~noise:(150 * scale_n));
      ("hub", Gen.hub_far rng ~n:(600 * scale_n) ~hubs:5 ~pairs:(140 * scale_n));
      ("mu", Tfree_lowerbound.Mu_dist.sample rng ~part:(70 * scale_n) ~gamma:2.0);
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g in
        let full_bucket = Bucket.b_min g ~eps in
        (* Observation 3.3: at least one full bucket exists in far graphs. *)
        let obs33 = full_bucket <> None in
        (* Lemma 3.12: B_min within [d_l, d_h]. *)
        let dl, dh = Bucket.degree_window g ~eps in
        let lem312 =
          match full_bucket with
          | Some i -> float_of_int (Bucket.d_plus i) >= dl && float_of_int (Bucket.d_minus i) <= dh
          | None -> false
        in
        (* Lemma 3.5-flavoured check: the full bucket contains full vertices. *)
        let lem35 =
          match full_bucket with
          | Some i ->
              let members = (Bucket.members g).(i) in
              List.exists (Bucket.is_full_vertex g ~eps) members
          | None -> false
        in
        (* Lemma 3.4: bucket size within the stated bounds. *)
        let lem34 =
          match full_bucket with
          | Some i ->
              let size = List.length (Bucket.members g).(i) in
              let ub = Float.min (float_of_int n) (2.0 *. float_of_int n *. Graph.avg_degree g /. float_of_int (Bucket.d_minus i)) in
              float_of_int size <= ub +. 1e-9
          | None -> false
        in
        [ name; string_of_int n; string_of_bool obs33; string_of_bool lem34; string_of_bool lem35; string_of_bool lem312 ])
      instances
  in
  [ Table.make
      ~title:"E15 input analysis of §3.2 (Observation 3.3, Lemmas 3.4/3.5/3.12) checked instance-wise"
      ~header:[ "family"; "n"; "full bucket exists"; "L3.4 size"; "L3.5 full vertex"; "L3.12 window" ]
      rows ]
