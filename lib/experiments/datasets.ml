(** E24: real-graph datasets — snapshot compactness and the
    [{"op": "dataset"}] service path.

    Table A prices the on-disk formats: the same generated corpora
    rendered as DIMACS text and as the binary snapshot
    ({!Tfree_dataset.Snapshot}).  The delta-varint snapshot must undercut
    the text encoding at every scale, and both formats must round-trip to
    the identical graph (compared canonically, by snapshot image) — the
    [check] column asserts all of it.

    Table B proves the service equivalence the registry is built on: a
    dataset-backed query answers byte-for-byte what the equivalent
    generated-instance query answers.  Each row feeds one
    [{"op": "dataset"}] line and its generated twin through
    {!Tfree_wire.Service.handle_line} — the exact daemon code path, minus
    the socket — against a registry whose snapshot holds the same
    generator output; the graph/partition rng split makes the two replies
    identical.  The dataset line is sent twice, so the row also asserts
    the instance cache serves the repeat without a rebuild.  Everything
    derives from seeds and file bytes (no wall clock), so the tables are
    byte-identical at every job count. *)

open Tfree_util
open Tfree_graph
module Service = Tfree_wire.Service
module Snapshot = Tfree_dataset.Snapshot
module Dimacs = Tfree_dataset.Dimacs
module Edgelist = Tfree_dataset.Edgelist
module Registry = Tfree_dataset.Registry

(* Canonical graph equality: the snapshot image is a function of the
   sorted, deduplicated edge set and nothing else. *)
let same_graph a b = String.equal (Snapshot.encode a) (Snapshot.encode b)

let gen_graph ~n ~d ~seed = Service.build_instance Service.Far (Service.graph_rng seed) ~n ~d ~eps:0.1

let e24_datasets scale =
  let sizes =
    match scale with
    | Common.Small -> [ (200, 5.0); (400, 6.0); (800, 6.0) ]
    | Common.Big -> [ (2_000, 6.0); (8_000, 8.0); (20_000, 8.0) ]
  in
  (* ---- Table A: format sizes and round trips ---- *)
  let row_a (n, d) =
    let g = gen_graph ~n ~d ~seed:(1000 + n) in
    let m = Graph.m g in
    let dimacs = Dimacs.to_string g in
    let snap = Snapshot.encode g in
    let edges = Edgelist.to_string g in
    let ok =
      same_graph g (Dimacs.parse_string dimacs)
      && same_graph g (Snapshot.decode snap)
      && same_graph g (Edgelist.parse_string ~n:(Graph.n g) edges)
    in
    [
      string_of_int n;
      string_of_int m;
      string_of_int (String.length dimacs);
      string_of_int (String.length snap);
      Table.fcell ~prec:2 (8.0 *. float_of_int (String.length snap) /. float_of_int (max 1 m));
      Table.fcell ~prec:1 (float_of_int (String.length dimacs) /. float_of_int (String.length snap));
      (if ok then "yes" else "NO");
    ]
  in
  let table_a =
    Table.make
      ~title:"E24a snapshot compactness: generated far instances in each on-disk format"
      ~header:[ "n"; "m"; "dimacs B"; "snapshot B"; "snap bits/edge"; "dimacs/snap"; "check" ]
      (List.map row_a sizes)
  in
  (* ---- Table B: dataset-vs-generated reply parity through handle_line ---- *)
  let n, d, seed = match scale with Common.Small -> (300, 6.0, 5) | Common.Big -> (1200, 6.0, 5) in
  let g = gen_graph ~n ~d ~seed in
  let snap_file = Filename.temp_file "tfree_e24" ".tfs" in
  let table_b =
    Fun.protect
      ~finally:(fun () -> try Sys.remove snap_file with Sys_error _ -> ())
      (fun () ->
        Snapshot.save g snap_file;
        let registry = Registry.create () in
        Registry.add registry
          {
            Registry.name = "e24";
            path = snap_file;
            format = Registry.Snapshot;
            n = Graph.n g;
            m = Graph.m g;
            gen =
              Some
                { Registry.gen_family = "far"; gen_n = n; gen_d = d; gen_eps = 0.1; gen_seed = seed };
          };
        let row_b protocol =
          let cache = Service.create_cache () in
          let metrics = Tfree_wire.Metrics.create () in
          let stop = ref false in
          let exchange line = fst (Service.handle_line ~cache ~registry ~metrics ~stop line) in
          let dataset_line =
            Jsonout.to_line
              (Service.dataset_request_to_json
                 { (Service.default_dataset_request ~name:"e24") with ds_protocol = protocol; ds_seed = seed })
          in
          let query_line =
            Jsonout.to_line
              (Service.request_to_json
                 { Service.default_request with family = Service.Far; protocol; n; d; seed })
          in
          let from_dataset = exchange dataset_line in
          let from_generated = exchange query_line in
          let repeat = exchange dataset_line in
          let parity = String.equal from_dataset from_generated && String.equal from_dataset repeat in
          let hits = Tfree_wire.Metrics.cache_hits metrics in
          let served = Tfree_wire.Metrics.dataset_served metrics "e24" in
          let bits =
            match Jsonout.parse from_dataset with
            | Ok json -> (
                match Option.map Jsonout.to_float (Jsonout.member "bits" json) with
                | Some (Some b) -> string_of_int (int_of_float b)
                | _ -> "?")
            | Error _ -> "?"
          in
          [
            Service.protocol_to_string protocol;
            bits;
            string_of_int (String.length from_dataset);
            (if parity then "yes" else "NO");
            (* the repeat must hit; the generated twin shares the graph
               build but keys separately, so exactly one hit *)
            (if hits = 1 && served = 2 then "yes" else "NO");
          ]
        in
        Table.make
          ~title:
            (Printf.sprintf
               "E24b dataset service parity: {\"op\":\"dataset\"} vs generated twin (far n=%d d=%g \
                seed=%d), reply lines compared byte-for-byte"
               n d seed)
          ~header:[ "protocol"; "bits"; "reply B"; "parity"; "cache+gauge" ]
          (List.map row_b [ Service.Sim; Service.Oblivious; Service.Exact ]))
  in
  [ table_a; table_b ]
