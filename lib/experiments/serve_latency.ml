(** E25: serve latency decomposition — the phase-count contract and the
    bounded histogram's quantile precision.

    Wall-clock latency is the one thing the bench harness cannot diff
    byte-for-byte across runs, so both tables report only deterministic
    quantities: sample {e counts} from the live phase instrumentation and
    quantile {e errors} over a seeded synthetic workload.

    Table A drives real queries through
    {!Tfree_wire.Service.handle_line} — the exact code path a socket line
    takes, minus the socket — and reads the per-phase histogram counts
    back out of the metrics registry.  The serve loop's decomposition
    contract says a clean single-query line costs exactly one
    [cache_lookup], one [run] and one [encode] sample (and one end-to-end
    latency sample), while one [parse] sample is paid per line whether or
    not it serves; [read]/[write] belong to the socket loop and stay 0
    in-process.  The [check] column asserts all of it, including that an
    error line pays [parse] but touches no other phase.

    Table B prices the histogram's documented precision bound: a seeded
    heavy-tailed sample stream (microsecond-scale mixture spanning five
    orders of magnitude, like real serve latencies) is recorded into
    histograms at several [sub_bits] resolutions and the histogram
    quantiles are compared against the exact {!Tfree_util.Stats.quantile}
    of the raw samples.  Every absolute error must sit inside
    [Histogram.max_error] — one microsecond of floor quantization plus
    [2^(1 - sub_bits)] relative — while the bucket-array memory bound
    stays fixed regardless of sample count. *)

open Tfree_util
module Service = Tfree_wire.Service
module Metrics = Tfree_wire.Metrics
module Histogram = Tfree_obs.Histogram
module Phase = Tfree_obs.Phase

let e25_serve_latency scale =
  let n, queries, samples =
    match scale with Common.Small -> (200, 12, 4_000) | Common.Big -> (400, 32, 40_000)
  in
  (* ---- Table A: phase counts through handle_line ---- *)
  let run_plan lines =
    let cache = Service.create_cache ~capacity:queries () in
    let metrics = Metrics.create () in
    let stop = ref false in
    let served =
      List.fold_left (fun acc line -> acc + snd (Service.handle_line ~cache ~metrics ~stop line)) 0 lines
    in
    (metrics, served)
  in
  let query_line seed =
    Jsonout.to_line (Service.request_to_json { Service.default_request with n; seed })
  in
  let plans =
    [
      ("clean queries", List.init queries (fun i -> query_line (1 + i)), queries, 0);
      ( "queries + 2 bad lines",
        ("{nope" :: List.init queries (fun i -> query_line (1 + i))) @ [ "{\"op\": \"levitate\"}" ],
        queries, 2 );
      ("errors only", [ "{nope"; "{\"n\": -5}" ], 0, 2);
    ]
  in
  let rows_a =
    List.map
      (fun (label, lines, expect_served, expect_failed) ->
        let metrics, served = run_plan lines in
        let count p = Metrics.phase_count metrics p in
        let latency = Histogram.count (Metrics.latency_snapshot metrics) in
        (* parse is paid per parsed line; the malformed "{nope" line never
           reaches the parser's output, but still costs its parse attempt *)
        let okay =
          served = expect_served
          && count Phase.Cache_lookup = served
          && count Phase.Run = served
          && count Phase.Encode = served
          && latency = served
          && count Phase.Parse = List.length lines
          && count Phase.Read = 0
          && count Phase.Write = 0
          && Metrics.errors metrics = expect_failed
        in
        [
          label;
          string_of_int (List.length lines);
          string_of_int served;
          string_of_int (count Phase.Parse);
          string_of_int (count Phase.Cache_lookup);
          string_of_int (count Phase.Run);
          string_of_int (count Phase.Encode);
          string_of_int latency;
          (if okay then "yes" else "NO");
        ])
      plans
  in
  let table_a =
    Table.make
      ~title:
        (Printf.sprintf
           "E25a phase-count decomposition: handle_line in-process (n=%d); cache_lookup = run = \
            encode = latency = served, parse = lines"
           n)
      ~header:
        [ "plan"; "lines"; "served"; "parse"; "cache_lookup"; "run"; "encode"; "latency"; "check" ]
      rows_a
  in
  (* ---- Table B: quantile precision vs sub_bits ---- *)
  let rng = Rng.create 25 in
  let sample i =
    (* heavy-tailed mixture: mostly sub-millisecond, a long tail to ~1 s *)
    let u = Rng.hash_float rng i in
    let v = Rng.hash_float2 rng i 1 in
    if u < 0.9 then 20.0 +. (980.0 *. v) else Float.pow 10.0 (3.0 +. (3.0 *. v))
  in
  let raw = List.init samples sample in
  let quantiles = [ 0.5; 0.9; 0.99 ] in
  let exact = List.map (fun q -> (q, Stats.quantile q raw)) quantiles in
  let row_b sub_bits =
    let h = Histogram.create ~sub_bits () in
    List.iter (Histogram.record h) raw;
    let errs =
      List.map
        (fun (q, ex) ->
          let err = Float.abs (Histogram.quantile h q -. ex) in
          (err, Histogram.max_error h ex))
        exact
    in
    let okay = List.for_all (fun (err, bound) -> err <= bound) errs in
    string_of_int sub_bits
    :: string_of_int (Histogram.num_buckets h)
    :: List.concat_map
         (fun (err, bound) -> [ Table.fcell ~prec:1 err; Table.fcell ~prec:1 bound ])
         errs
    @ [ (if okay then "yes" else "NO") ]
  in
  let table_b =
    Table.make
      ~title:
        (Printf.sprintf
           "E25b histogram precision: %d seeded samples vs Stats.quantile; |err| <= 1 + q * \
            2^(1-sub_bits), memory fixed at num_buckets"
           samples)
      ~header:
        [
          "sub_bits"; "buckets"; "p50 err"; "bound"; "p90 err"; "bound"; "p99 err"; "bound";
          "check";
        ]
      (List.map row_b [ 2; 3; 5; 8 ])
  in
  [ table_a; table_b ]
