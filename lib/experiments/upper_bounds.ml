(** Experiments E1–E5: the upper-bound rows of Table 1.

    Each measures the communication cost of the corresponding protocol over a
    sweep of n (and k), fits the log–log exponent, and prints it next to the
    paper's predicted shape.  The measured exponent carries the polylog
    factors on top of the leading power, so it is expected to sit slightly
    above the clean exponent. *)

open Tfree_util
open Tfree_graph

let params = Tfree.Params.practical

let sizes_low = function Common.Small -> [ 500; 1000; 2000; 4000 ] | Common.Big -> [ 1000; 2000; 4000; 8000; 16000 ]

let sizes_dense = function Common.Small -> [ 400; 800; 1600 ] | Common.Big -> [ 800; 1600; 3200; 6400 ]

(* ------------------------------------------------------------------- E1 *)

(** E1: unrestricted protocol, O~(k·(nd)^¼ + k²) (Theorem 3.20).  Two
    sweeps: n at constant degree, and k at fixed n. *)
let e1_unrestricted scale =
  let k = 4 and d = 4.0 in
  let reps = Common.reps scale in
  let n_sweep =
    Common.sweep ~reps (sizes_low scale) (fun n s ->
        let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
        let r = Tfree.Tester.unrestricted ~seed:s params parts in
        (r.Tfree.Tester.bits, Common.found_of_report r))
  in
  let rows =
    List.map
      (fun (n, (mean, succ)) ->
        [ string_of_int n; Table.fcell d; string_of_int k; Table.fcell ~prec:0 mean; Table.fcell succ ])
      n_sweep
  in
  let pts = List.map (fun (n, (mean, _)) -> (float_of_int n, mean)) n_sweep in
  let n_table =
    Common.scaling_table ~title:"E1a unrestricted: bits vs n at d=Θ(1) (paper: O~(k·(nd)^1/4+k²) → n^0.25·polylog)"
      ~claim:"paper n^0.25+polylog" (rows, pts)
  in
  (* k sweep at fixed n: expect roughly linear in k plus the k² term. *)
  let n = List.nth (sizes_low scale) 1 in
  let krows =
    List.map
      (fun (k, (mean, succ)) ->
        [ string_of_int n; Table.fcell d; string_of_int k; Table.fcell ~prec:0 mean; Table.fcell succ ])
      (Common.sweep ~reps [ 2; 4; 8; 16 ] (fun k s ->
           let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
           let r = Tfree.Tester.unrestricted ~seed:s params parts in
           (r.Tfree.Tester.bits, Common.found_of_report r)))
  in
  let k_table =
    Table.make ~title:"E1b unrestricted: bits vs k at fixed n (paper: ≥ linear in k, + k² term)"
      ~header:[ "n"; "d"; "k"; "mean bits"; "success" ]
      krows
  in
  (* d = Θ(√n) sweep.  Two statistics per n: the realized cost on far
     inputs (Theorem 3.20's w.h.p. bound O~(k·√d(B_min) + k²) — the
     protocol exits at the first full bucket, so this can even fall with n
     as detection gets easier), and the full-scan cost on triangle-free
     inputs of the same degree profile, which is where the worst-case
     (nd)^{1/4} = n^{3/8} term lives. *)
  let dense =
    Common.cells ~reps (sizes_dense scale) (fun n s ->
        let d = sqrt (float_of_int n) in
        let far =
          let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
          let r = Tfree.Tester.unrestricted ~seed:s params parts in
          (r.Tfree.Tester.bits, Common.found_of_report r)
        in
        let free =
          let rng = Tfree_util.Rng.create (515_131 * s) in
          let g = Gen.free_with_degree rng ~n ~d in
          let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
          let r = Tfree.Tester.unrestricted ~seed:s params parts in
          (r.Tfree.Tester.bits, false)
        in
        (far, free))
  in
  let dense =
    List.map
      (fun (n, cs) ->
        (n, Common.mean_of_cells (Array.map fst cs), Common.mean_of_cells (Array.map snd cs)))
      dense
  in
  let rows_dense =
    List.map
      (fun (n, (far_mean, succ), (free_mean, _)) ->
        [
          string_of_int n;
          Table.fcell (sqrt (float_of_int n));
          Table.fcell ~prec:0 far_mean;
          Table.fcell succ;
          Table.fcell ~prec:0 free_mean;
        ])
      dense
  in
  let fit_far =
    Common.exponent (List.map (fun (n, (far_mean, _), _) -> (float_of_int n, far_mean)) dense)
  in
  let fit_free =
    Common.exponent (List.map (fun (n, _, (free_mean, _)) -> (float_of_int n, free_mean)) dense)
  in
  let dense_table =
    Table.make
      ~title:
        "E1c unrestricted at d=Θ(√n): realized cost on far inputs (w.h.p. bound, early exit) vs \
         full-scan cost on free inputs (worst case, paper (nd)^1/4 = n^0.375 + k²·polylog)"
      ~header:[ "n"; "d"; "far bits"; "success"; "free bits (full scan)" ]
      (rows_dense
      @ [
          [
            "fit";
            "-";
            Printf.sprintf "n^%s" (Common.fmt_exp fit_far);
            "early exit";
            Printf.sprintf "n^%s vs paper ≤ n^0.375+polylog" (Common.fmt_exp fit_free);
          ];
        ])
  in
  (* Phase attribution at the E1b size: the trace tap splits the measured
     total into the paper's stages, so "which term dominates at d=Θ(1)" is a
     printed row instead of an inference from the aggregate fit. *)
  let phase_rows =
    Common.phase_attribution ~reps (fun s tap ->
        let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
        let r = Tfree.Tester.unrestricted ~tap ~seed:s params parts in
        r.Tfree.Tester.bits)
  in
  let phase_table =
    Table.make
      ~title:
        (Printf.sprintf
           "E1d phase attribution at n=%d, d=Θ(1), k=%d (traced bits sum to the measured total \
            exactly)"
           n k)
      ~header:[ "phase"; "mean msgs"; "mean bits"; "share %" ]
      (List.map
         (fun (phase, msgs, bits, share) ->
           [ phase; Table.fcell ~prec:1 msgs; Table.fcell ~prec:0 bits; Table.fcell ~prec:1 share ])
         phase_rows)
  in
  [ n_table; k_table; phase_table; dense_table ]

(* ------------------------------------------------------------------- E2 *)

(** E2: simultaneous low-degree protocol, O~(k√n) for d = O(√n)
    (Theorem 3.26). *)
let e2_sim_low scale =
  let k = 4 and d = 4.0 in
  let reps = Common.reps scale in
  let results =
    Common.sweep ~reps (sizes_low scale) (fun n s ->
        let g, parts = Common.far_instance ~n ~d ~k ~dup:true s in
        let o = Tfree.Sim_low.run ~seed:s params ~d:(Graph.avg_degree g) parts in
        (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result))
  in
  let rows =
    List.map
      (fun (n, (mean, succ)) ->
        [ string_of_int n; Table.fcell d; string_of_int k; Table.fcell ~prec:0 mean; Table.fcell succ ])
      results
  in
  let pts = List.map (fun (n, (mean, _)) -> (float_of_int n, mean)) results in
  [ Common.scaling_table ~title:"E2 simultaneous low degree: bits vs n at d=Θ(1) (paper: O~(k·√n) → n^0.5·polylog)"
      ~claim:"paper n^0.5+polylog" (rows, pts) ]

(* ------------------------------------------------------------------- E3 *)

(** E3: simultaneous high-degree protocol, O~(k·(nd)^⅓) for d = Ω(√n)
    (Theorem 3.24).  At d = √n the predicted cost is n^{1/2}·polylog. *)
let e3_sim_high scale =
  let k = 4 in
  let reps = Common.reps scale in
  let results =
    Common.sweep ~reps (sizes_dense scale) (fun n s ->
        let d = sqrt (float_of_int n) *. 1.5 in
        let g, parts = Common.far_instance ~n ~d ~k ~dup:true s in
        let o = Tfree.Sim_high.run ~seed:s params ~d:(Graph.avg_degree g) parts in
        (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result))
  in
  let rows =
    List.map
      (fun (n, (mean, succ)) ->
        let d = sqrt (float_of_int n) *. 1.5 in
        [ string_of_int n; Table.fcell d; string_of_int k; Table.fcell ~prec:0 mean; Table.fcell succ ])
      results
  in
  let pts = List.map (fun (n, (mean, _)) -> (float_of_int n, mean)) results in
  [ Common.scaling_table
      ~title:"E3 simultaneous high degree: bits vs n at d=Θ(√n) (paper: O~(k·(nd)^1/3) → n^0.5·polylog)"
      ~claim:"paper n^0.5+polylog" (rows, pts) ]

(* ------------------------------------------------------------------- E4 *)

(** E4: degree-oblivious simultaneous protocol (Theorem 3.32) — cost vs the
    degree-aware protocol on the same instances; the gap should be the
    O(log k·log n) instance multiplicity, not a power of n. *)
let e4_oblivious scale =
  let k = 4 and d = 4.0 in
  let reps = Common.reps scale in
  let rows =
    List.map
      (fun (n, cs) ->
        let aware, succ_a = Common.mean_of_cells (Array.map fst cs) in
        let obliv, succ_o = Common.mean_of_cells (Array.map snd cs) in
        [
          string_of_int n;
          Table.fcell ~prec:0 aware;
          Table.fcell ~prec:0 obliv;
          Table.fcell (obliv /. Float.max 1.0 aware);
          Table.fcell succ_a;
          Table.fcell succ_o;
        ])
      (Common.cells ~reps (sizes_low scale) (fun n s ->
           let aware =
             let g, parts = Common.far_instance ~n ~d ~k ~dup:true s in
             let o = Tfree.Sim_low.run ~seed:s params ~d:(Graph.avg_degree g) parts in
             (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result)
           in
           let obliv =
             let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
             let o = Tfree.Sim_oblivious.run ~seed:s params parts in
             (o.Tfree_comm.Simultaneous.total_bits, Option.is_some o.Tfree_comm.Simultaneous.result)
           in
           (aware, obliv)))
  in
  [ Table.make
      ~title:"E4 degree-oblivious overhead (paper: polylog factor, Theorem 3.32)"
      ~header:[ "n"; "aware bits"; "oblivious bits"; "ratio"; "aware succ"; "obliv succ" ]
      rows ]

(* ------------------------------------------------------------------- E5 *)

(** E5: the exact baseline [38] vs testing — the headline gap of the paper:
    Θ(k·n·d) against O~(k·(nd)^¼). *)
let e5_exact_gap scale =
  let k = 4 and d = 6.0 in
  let reps = Common.reps scale in
  let rows =
    List.map
      (fun (n, cs) ->
        let exact, _ =
          Common.mean_bits ~reps:1 (fun s ->
              let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
              (Tfree.Exact_baseline.cost parts, true))
        in
        let testing, succ = Common.mean_of_cells (Array.map fst cs) in
        let sim, _ = Common.mean_of_cells (Array.map snd cs) in
        [
          string_of_int n;
          Table.fcell ~prec:0 exact;
          Table.fcell ~prec:0 testing;
          Table.fcell ~prec:0 sim;
          Table.fcell (exact /. Float.max 1.0 testing);
          Table.fcell (exact /. Float.max 1.0 sim);
          Table.fcell succ;
        ])
      (Common.cells ~reps (sizes_low scale) (fun n s ->
           let testing =
             let _, parts = Common.far_instance ~n ~d ~k ~dup:true s in
             let r = Tfree.Tester.unrestricted ~seed:s params parts in
             (r.Tfree.Tester.bits, Common.found_of_report r)
           in
           let sim =
             let g, parts = Common.far_instance ~n ~d ~k ~dup:true s in
             let o = Tfree.Sim_low.run ~seed:s params ~d:(Graph.avg_degree g) parts in
             (o.Tfree_comm.Simultaneous.total_bits, true)
           in
           (testing, sim)))
  in
  [ Table.make
      ~title:"E5 exact [38] vs testing (paper: Θ(knd) vs O~(k(nd)^1/4); gap grows with n)"
      ~header:[ "n"; "exact bits"; "unrestricted"; "sim-low"; "gap(unr)"; "gap(sim)"; "success" ]
      rows ]
