(** E22: fault tolerance of the wire stack.

    Runs protocols through a {!Tfree_wire.Wire_runtime} network whose every
    link is wrapped in {!Tfree_wire.Transport.faulty} with a seeded random
    schedule ([Fault.random]), and measures what the hardened stack promises:
    a fault can abort a run with a typed error, but it can never flip a
    verdict or change the accounted bits.

    Table 1 (survival): per (protocol, fault rate), the fraction of seeded
    runs that completed — which requires every fired fault to have been
    benign (delay/partial deliver the same bytes) or the schedule to have
    missed the run's frames entirely — versus runs aborted by a typed
    [Wire_error].  Every completed run is checked against a fault-free base
    run on the same seed; the [wrong] column counts mismatches and must be
    zero.  The one-shot protocols send a handful of frames, so they mostly
    dodge the schedule at low rates; the chatty unrestricted protocol
    crosses every scheduled op and aborts almost surely.

    Table 2 (retry overhead): the client-side story.  A query is retried
    with a fresh schedule (new seed, same rate) until it completes, up to 8
    attempts — the in-process analogue of [Service.client_query ~retries] —
    reporting mean attempts, mean retries and the recovery rate per fault
    rate.  Recovery hands back the exact fault-free verdict or it does not
    count. *)

open Tfree_util
module Wire = Tfree_wire.Wire_runtime
module Fault = Tfree_wire.Fault
module Wire_error = Tfree_wire.Wire_error

let params = Tfree.Params.practical

(* Schedules cover the first [ops] frames of the global sequence; the
   one-shot protocols send fewer, the unrestricted protocol far more. *)
let ops = 64
let max_attempts = 8

let run_tester ?tap proto ~seed ~davg parts =
  match proto with
  | `Unrestricted -> Tfree.Tester.unrestricted ?tap ~seed params parts
  | `Sim -> Tfree.Tester.simultaneous ?tap ~seed params ~d:davg parts
  | `Oblivious -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params parts
  | `Exact -> Tfree.Tester.exact ?tap ~seed parts

(* One wired run under [fault]: [Ok report] on completion, [Error kind] when
   a typed fault aborted it.  Any other exception escapes — only Wire_error
   is a legitimate way for a run to die. *)
let wired_run proto ~seed ~davg ~fault parts =
  let net = Wire.create ~fault ~transport:Wire.Pipe ~k:4 () in
  match
    Fun.protect
      ~finally:(fun () -> Wire.close net)
      (fun () -> run_tester ~tap:(Wire.tap net) proto ~seed ~davg parts)
  with
  | r -> Ok r
  | exception Wire_error.Wire_error k -> Error k

let e22_fault scale =
  let k = 4 and d = 4.0 in
  let n = match scale with Common.Small -> 300 | Common.Big -> 1000 in
  let trials = match scale with Common.Small -> 20 | Common.Big -> 60 in
  let instance seed = Common.far_instance ~n ~d ~k ~dup:true seed in
  (* Survival: one seeded schedule per (seed, rate), verdict checked against
     the fault-free base of the same seed. *)
  let survival_row (name, proto) rate =
    let cells =
      Common.seed_samples ~reps:trials (fun seed ->
          let _, parts = instance seed in
          let davg = d in
          let base = run_tester proto ~seed ~davg parts in
          let fault = Fault.random ~seed:(7919 * seed) ~rate ~ops () in
          match wired_run proto ~seed ~davg ~fault parts with
          | Error _ -> `Aborted
          | Ok r ->
              if
                r.Tfree.Tester.verdict = base.Tfree.Tester.verdict
                && r.Tfree.Tester.bits = base.Tfree.Tester.bits
              then `Clean
              else `Wrong)
    in
    let count want = Array.fold_left (fun acc c -> if c = want then acc + 1 else acc) 0 cells in
    let clean = count `Clean and aborted = count `Aborted and wrong = count `Wrong in
    [
      name;
      Table.fcell ~prec:2 rate;
      string_of_int clean;
      string_of_int aborted;
      string_of_int wrong;
      Table.fcell ~prec:2 (float_of_int clean /. float_of_int trials);
    ]
  in
  let survival =
    List.concat_map
      (fun proto -> List.map (survival_row proto) [ 0.05; 0.2 ])
      [
        ("exact", `Exact); ("oblivious", `Oblivious); ("sim", `Sim);
        ("unrestricted", `Unrestricted);
      ]
  in
  (* Retry overhead: fresh schedule per attempt (seed varies, rate fixed),
     the oblivious protocol as the cheap representative query. *)
  let retry_row rate =
    let cells =
      Common.seed_samples ~reps:trials (fun seed ->
          let _, parts = instance seed in
          let davg = d in
          let base = run_tester `Oblivious ~seed ~davg parts in
          let rec go attempt =
            if attempt >= max_attempts then (max_attempts, false, false)
            else
              let fault = Fault.random ~seed:(977 * seed + attempt) ~rate ~ops () in
              match wired_run `Oblivious ~seed ~davg ~fault parts with
              | Error _ -> go (attempt + 1)
              | Ok r ->
                  let exact_match =
                    r.Tfree.Tester.verdict = base.Tfree.Tester.verdict
                    && r.Tfree.Tester.bits = base.Tfree.Tester.bits
                  in
                  (attempt + 1, exact_match, not exact_match)
          in
          go 0)
    in
    let attempts = Stats.mean (Array.to_list (Array.map (fun (a, _, _) -> float_of_int a) cells)) in
    let recovered = Array.fold_left (fun acc (_, ok, _) -> if ok then acc + 1 else acc) 0 cells in
    let wrong = Array.fold_left (fun acc (_, _, w) -> if w then acc + 1 else acc) 0 cells in
    [
      Table.fcell ~prec:2 rate;
      Table.fcell ~prec:2 attempts;
      Table.fcell ~prec:2 (attempts -. 1.0);
      Printf.sprintf "%d/%d" recovered trials;
      string_of_int wrong;
    ]
  in
  let retry = List.map retry_row [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "E22 fault tolerance: verdict survival under seeded fault schedules (n=%d d=%.0f k=%d, \
            rate over first %d frames, %d trials)"
           n d k ops trials)
      ~header:[ "protocol"; "rate"; "clean"; "aborted"; "wrong"; "survival" ]
      survival;
    Table.make
      ~title:
        (Printf.sprintf
           "E22 retry overhead: oblivious query, fresh schedule per attempt, up to %d attempts"
           max_attempts)
      ~header:[ "rate"; "mean attempts"; "mean retries"; "recovered"; "wrong" ]
      retry;
  ]
