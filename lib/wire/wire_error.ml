(** The wire stack's typed failure taxonomy.

    Every layer of [Tfree_wire] fails {e closed} through this one exception:
    a transport that cannot supply bytes, a frame that does not parse, a
    codec that reads garbage, a service read that exceeds its deadline — all
    raise {!Wire_error} with a {!kind} naming what went wrong, never a bare
    [Invalid_argument]/[Failure] that callers would have to match on message
    strings.  The paper's one-sidedness guarantee (a triangle is reported
    only when its three edges were really seen) extends to the wire this
    way: a fault can abort a run with a typed, categorized error, but it can
    never smuggle a wrong verdict past the decoder.

    {!category} collapses the kinds onto the five service-telemetry buckets
    ({!Tfree_wire.Metrics}); {!is_transient} marks the kinds a client may
    meaningfully retry. *)

type kind =
  | Truncated of string  (** the stream ended before the bytes the frame promised *)
  | Corrupt of string  (** bytes arrived but do not decode (checksum, varint, layout, bit count) *)
  | Oversized of { limit : int; got : int }  (** a length field beyond the frame-size cap *)
  | Peer_closed of string  (** the other side of the transport went away *)
  | Timeout of string  (** a read deadline expired *)
  | Injected of string  (** a scheduled {!Fault} fired and was detected as such *)

exception Wire_error of kind

let message = function
  | Truncated m -> m
  | Corrupt m -> m
  | Peer_closed m -> m
  | Timeout m -> m
  | Injected m -> m
  | Oversized { limit; got } -> Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" got limit

(** The service-telemetry bucket: truncated/corrupt/oversized/peer-closed
    and injected faults are all ["transport"]; deadlines are ["timeout"]. *)
let category = function
  | Timeout _ -> "timeout"
  | Truncated _ | Corrupt _ | Oversized _ | Peer_closed _ | Injected _ -> "transport"

let to_string k = Printf.sprintf "wire error (%s): %s" (category k) (message k)

(** Raise {!Wire_error}. *)
let error k = raise (Wire_error k)

let errorf_corrupt fmt = Printf.ksprintf (fun m -> error (Corrupt m)) fmt
let errorf_truncated fmt = Printf.ksprintf (fun m -> error (Truncated m)) fmt

(** The kinds that a fresh attempt can plausibly clear: everything a flaky
    transport produces.  (Nothing in the taxonomy is permanent — a corrupt
    frame re-sent is a new frame — so today every kind is transient; the
    function exists so callers don't hard-code that.) *)
let is_transient (_ : kind) = true

(** [Some kind] when [exn] is a {!Wire_error}. *)
let of_exn = function Wire_error k -> Some k | _ -> None

let () =
  Printexc.register_printer (function Wire_error k -> Some (to_string k) | _ -> None)
