(** Deterministic fault schedules for the wire stack.

    A schedule is a finite list of [(op, kind)] events: when the [op]-th
    write operation of a faulty component comes up (0-based — the frame
    index for a {!Transport.faulty} wrapper, the reply index for a
    [tfree-serve --fault-spec] daemon), the named fault fires on it.  Two
    constructions, both reproducible:

    - {!parse} reads an explicit spec such as ["2:drop,5:corrupt@13,9:close"];
    - {!random} derives a schedule from a seed and a per-op fault rate, so
      chaos sweeps are a function of [(seed, rate, ops)] alone.

    The [--fault-spec] grammar accepts both forms:

    {v
    SPEC  ::= EVENT ("," EVENT)*                explicit schedule
            | "seed=" INT "," "rate=" FLOAT "," "ops=" INT
              ["," "kinds=" KINDNAME ("+" KINDNAME)*]
    EVENT ::= OP ":" KIND
    KIND  ::= "drop" | "corrupt" ["@" BIT] | "truncate" ["@" KEEP]
            | "delay" ["@" AMOUNT] | "partial" ["@" AT] | "close"
    v}

    Fault semantics (see {!Transport.faulty} and {!Service.serve} for the
    byte-level and reply-level interpretations):
    - [drop]: the write is swallowed whole;
    - [corrupt@b]: bit [b] (modulo the buffer length) is flipped;
    - [truncate@k]: only the first [k] bytes are delivered;
    - [delay@a]: the write is held back ([a] = hold amount: operations at
      the transport level, milliseconds at the service level);
    - [partial@p]: the write is split at byte [p] into two deliveries — a
      correct byte stream must reassemble it, so this fault is benign;
    - [close]: the connection is closed, losing the write. *)

type kind =
  | Drop
  | Corrupt of { bit : int }
  | Truncate of { keep : int }
  | Delay of { amount : int }
  | Partial of { at : int }
  | Close

type event = { op : int; kind : kind }
type schedule = event list

let kind_name = function
  | Drop -> "drop"
  | Corrupt _ -> "corrupt"
  | Truncate _ -> "truncate"
  | Delay _ -> "delay"
  | Partial _ -> "partial"
  | Close -> "close"

let all_kind_names = [ "drop"; "corrupt"; "truncate"; "delay"; "partial"; "close" ]

let kind_to_string = function
  | Drop -> "drop"
  | Corrupt { bit } -> Printf.sprintf "corrupt@%d" bit
  | Truncate { keep } -> Printf.sprintf "truncate@%d" keep
  | Delay { amount } -> Printf.sprintf "delay@%d" amount
  | Partial { at } -> Printf.sprintf "partial@%d" at
  | Close -> "close"

(** Canonical explicit form; {!parse} inverts it exactly. *)
let to_string schedule =
  String.concat "," (List.map (fun e -> Printf.sprintf "%d:%s" e.op (kind_to_string e.kind)) schedule)

(** Whether a kind delivers the same bytes it was given (possibly split or
    late) — a correct stack must survive it with an unchanged verdict. *)
let benign = function Delay _ | Partial _ -> true | Drop | Corrupt _ | Truncate _ | Close -> false

(** The first event scheduled at [op], if any. *)
let find schedule op = Option.map (fun e -> e.kind) (List.find_opt (fun e -> e.op = op) schedule)

let normalize schedule = List.sort_uniq (fun a b -> compare (a.op, a.kind) (b.op, b.kind)) schedule

(* ---------------------------------------------------------------- parse *)

let parse_kind s =
  let name, arg =
    match String.index_opt s '@' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let num what = function
    | None -> Error (Printf.sprintf "fault %S needs a numeric @%s argument" name what)
    | Some a -> (
        match int_of_string_opt a with
        | Some v when v >= 0 -> Ok v
        | _ -> Error (Printf.sprintf "bad @%s argument %S for fault %S" what a name))
  in
  let no_arg k = match arg with None -> Ok k | Some _ -> Error (Printf.sprintf "fault %S takes no argument" name) in
  let with_default ~default mk =
    match arg with None -> Ok (mk default) | Some _ -> Result.map mk (num "arg" arg)
  in
  match name with
  | "drop" -> no_arg Drop
  | "close" -> no_arg Close
  | "corrupt" -> with_default ~default:0 (fun bit -> Corrupt { bit })
  | "truncate" -> with_default ~default:1 (fun keep -> Truncate { keep })
  | "delay" -> with_default ~default:1 (fun amount -> Delay { amount })
  | "partial" -> with_default ~default:1 (fun at -> Partial { at })
  | _ -> Error (Printf.sprintf "unknown fault kind %S" name)

let split_on_string ~sep s =
  (* stdlib has only char split; the grammar needs none longer than 1 *)
  String.split_on_char sep s

let parse_event s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault event %S is not OP:KIND" s)
  | Some i -> (
      let op_s = String.sub s 0 i and kind_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt op_s with
      | Some op when op >= 0 -> Result.map (fun kind -> { op; kind }) (parse_kind kind_s)
      | _ -> Error (Printf.sprintf "bad fault op %S" op_s))

let lookup_assoc fields k = List.assoc_opt k fields

(* The seeded form: seed=..,rate=..,ops=..[,kinds=a+b]. *)
let parse_seeded s =
  let fields =
    List.filter_map
      (fun part ->
        match String.index_opt part '=' with
        | None -> None
        | Some i -> Some (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1)))
      (split_on_string ~sep:',' s)
  in
  let int_f k = Option.bind (lookup_assoc fields k) int_of_string_opt in
  let float_f k = Option.bind (lookup_assoc fields k) float_of_string_opt in
  match (int_f "seed", float_f "rate", int_f "ops") with
  | Some seed, Some rate, Some ops when rate >= 0.0 && rate <= 1.0 && ops >= 0 ->
      let kinds =
        match lookup_assoc fields "kinds" with
        | None -> Ok None
        | Some ks ->
            let names = split_on_string ~sep:'+' ks in
            if List.for_all (fun n -> List.mem n all_kind_names) names && names <> [] then Ok (Some names)
            else Error (Printf.sprintf "bad kinds list %S" ks)
      in
      Result.map (fun kinds -> `Seeded (seed, rate, ops, kinds)) kinds
  | _ -> Error "seeded fault spec needs seed=INT, rate=FLOAT in [0,1] and ops=INT"

(* ---------------------------------------------------------------- random *)

(** Deterministic seeded schedule: each op in [0, ops) independently draws a
    Bernoulli([rate]) fault whose kind and argument come from the same
    stream — a pure function of the arguments.  [kinds] (default: all six)
    restricts the palette, e.g. to transient-only kinds for retry sweeps. *)
let random ~seed ~rate ~ops ?kinds () =
  let rng = Tfree_util.Rng.create (0x0fa17 + (31 * seed)) in
  let palette =
    match kinds with
    | Some (_ :: _ as ks) -> Array.of_list ks
    | _ -> Array.of_list all_kind_names
  in
  let pick op =
    let arg = Tfree_util.Rng.int rng 64 in
    match palette.(Tfree_util.Rng.int rng (Array.length palette)) with
    | "drop" -> Drop
    | "corrupt" -> Corrupt { bit = arg }
    | "truncate" -> Truncate { keep = arg }
    | "delay" -> Delay { amount = 1 + (arg mod 4) }
    | "partial" -> Partial { at = 1 + arg }
    | "close" -> Close
    | _ -> Corrupt { bit = op }
  in
  List.filter_map
    (fun op -> if Tfree_util.Rng.float rng < rate then Some { op; kind = pick op } else None)
    (List.init ops Fun.id)

(** Parse either grammar form; [""] is the empty schedule. *)
let parse s =
  if String.trim s = "" then Ok []
  else if String.length s >= 5 && String.sub s 0 5 = "seed=" then
    match parse_seeded s with
    | Ok (`Seeded (seed, rate, ops, kinds)) -> Ok (random ~seed ~rate ~ops ?kinds ())
    | Error e -> Error e
  else
    let rec go acc = function
      | [] -> Ok (normalize (List.rev acc))
      | part :: rest -> (
          match parse_event (String.trim part) with
          | Ok e -> go (e :: acc) rest
          | Error e -> Error e)
    in
    go [] (split_on_string ~sep:',' s)
