(** Deterministic fault schedules for the wire stack: a finite list of
    [(op, kind)] events naming which write operation each fault fires on.
    Built either from an explicit spec (["2:drop,5:corrupt@13"]) or from a
    seed and a rate (["seed=42,rate=0.05,ops=200"]), so every chaos run is
    reproducible.  Consumed by {!Transport.faulty} (ops = frames) and
    {!Service.serve} (ops = replies). *)

type kind =
  | Drop  (** the write is swallowed whole *)
  | Corrupt of { bit : int }  (** bit [bit mod (8·len)] is flipped *)
  | Truncate of { keep : int }  (** only the first [keep] bytes are delivered *)
  | Delay of { amount : int }  (** held back: ops (transport) / ms (service) *)
  | Partial of { at : int }  (** split at byte [at] into two deliveries; benign *)
  | Close  (** the connection is closed, losing the write *)

type event = { op : int; kind : kind }
type schedule = event list

val kind_name : kind -> string
val kind_to_string : kind -> string

(** The six grammar names, in canonical order. *)
val all_kind_names : string list

(** Canonical explicit spec; {!parse} inverts it exactly. *)
val to_string : schedule -> string

(** Whether the kind delivers the same bytes it was given (split or late):
    [delay] and [partial].  A correct stack survives benign faults with an
    unchanged verdict; the other four may only produce typed errors. *)
val benign : kind -> bool

(** The fault scheduled at write operation [op], if any. *)
val find : schedule -> int -> kind option

(** Sort by op and drop duplicates. *)
val normalize : schedule -> schedule

(** Deterministic seeded schedule: each op in [0, ops) independently draws a
    Bernoulli([rate]) fault; kind and argument come from the same SplitMix64
    stream, so the result is a pure function of the arguments.  [kinds]
    restricts the palette (grammar names; default all six). *)
val random : seed:int -> rate:float -> ops:int -> ?kinds:string list -> unit -> schedule

(** Parse either grammar form ([OP:KIND,...] or [seed=..,rate=..,ops=..]);
    [""] is the empty schedule. *)
val parse : string -> (schedule, string) result
