(** Service telemetry for tfree-serve: queries served, per-protocol verdict
    counts, wire traffic totals and wall-clock latency quantiles, exposed
    through the [{"op": "stats"}] service query. *)

type t

val create : unit -> t

(** Record one successfully served protocol query. *)
val record_query :
  t ->
  protocol:string ->
  found_triangle:bool ->
  wire_bytes:int ->
  accounted_bits:int ->
  latency_us:float ->
  unit

(** Record a failed line: malformed JSON, unknown command, or a run error. *)
val record_error : t -> unit

val queries_served : t -> int
val errors : t -> int
val wire_bytes : t -> int
val accounted_bits : t -> int

(** The stats-query payload: counters, per-protocol verdict counts, and
    latency mean/p50/p90/p99 (via {!Tfree_util.Stats.quantile}; [null] when
    no query has been served). *)
val to_json : t -> Tfree_util.Jsonout.t
