(** Service telemetry for tfree-serve: queries served, per-protocol verdict
    counts, categorized error counts (malformed / unknown-op / run-failure /
    timeout / transport), retry and injected-fault tallies, wire traffic
    totals and wall-clock latency quantiles, exposed through the
    [{"op": "stats"}] service query. *)

type error_category =
  | Malformed  (** unparseable JSON, bad field types, unknown command, bad request values *)
  | Unknown_op  (** an [op] the service does not provide *)
  | Run_failure  (** the protocol run itself raised (not a wire fault) *)
  | Timeout  (** a per-line read deadline expired *)
  | Transport  (** truncated/corrupt/closed connections and other wire faults *)

val all_categories : error_category list
val category_name : error_category -> string

(** Inverse of {!category_name}; unknown strings land in [Run_failure]. *)
val category_of_name : string -> error_category

type t

val create : unit -> t

(** Record one successfully served protocol query. *)
val record_query :
  t ->
  protocol:string ->
  found_triangle:bool ->
  wire_bytes:int ->
  accounted_bits:int ->
  latency_us:float ->
  unit

(** Record a failed line under its category. *)
val record_error : t -> category:error_category -> unit

(** Record one client-side retry attempt (client registries). *)
val record_retry : t -> unit

(** Record one scheduled fault that fired (chaos bookkeeping, not an
    error). *)
val record_injected : t -> unit

val queries_served : t -> int

(** Total errors across all categories. *)
val errors : t -> int

val errors_in : t -> error_category -> int
val retries : t -> int
val injected : t -> int
val wire_bytes : t -> int
val accounted_bits : t -> int

(** The stats-query payload: counters, per-category error counts, retry and
    injected-fault tallies, per-protocol verdict counts, and latency
    mean/p50/p90/p99 (via {!Tfree_util.Stats.quantile}; [null] when no query
    has been served, the sample itself on a single-sample registry). *)
val to_json : t -> Tfree_util.Jsonout.t
