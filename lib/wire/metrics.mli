(** Service telemetry for tfree-serve: queries served, per-protocol verdict
    counts, categorized error counts (malformed / unknown-op / run-failure /
    timeout / transport / overload), retry and injected-fault tallies,
    connection and instance-cache gauges, wire traffic totals and wall-clock
    latency quantiles, exposed through the [{"op": "stats"}] service query.

    Latency (end-to-end and per serve {!Tfree_obs.Phase}) lives in bounded
    {!Tfree_obs.Histogram}s: registry memory is O(buckets) regardless of
    queries served, quantiles cost O(buckets) within the histogram's
    documented precision, and {!merge} folds histograms exactly.

    Safe under concurrent mutation: every record and read takes an internal
    mutex, so one registry can be shared across domains (the concurrent
    server, or a load generator's per-client tallies merged with
    {!merge}). *)

type error_category =
  | Malformed  (** unparseable JSON, bad field types, unknown command, bad request values *)
  | Unknown_op  (** an [op] the service does not provide *)
  | Run_failure  (** the protocol run itself raised (not a wire fault) *)
  | Timeout  (** a per-line read deadline expired *)
  | Transport  (** truncated/corrupt/closed connections and other wire faults *)
  | Overload  (** a connection shed because the server was at [--max-clients] *)

val all_categories : error_category list
val category_name : error_category -> string

(** Inverse of {!category_name}; [None] on unknown strings. *)
val category_of_name : string -> error_category option

type t

(** [started_at] (default: now) back-dates the registry's start time —
    the fleet parent stamps its merged registry with its own start so the
    fleet-wide [uptime_s]/[served_per_sec] describe the fleet, not the
    moment of the merge. *)
val create : ?started_at:float -> unit -> t

(** Record one successfully served protocol query.  [version] is the wire
    protocol the serving connection negotiated (1 = JSON lines, 2 = binary;
    default 1) and feeds the per-version served gauge.  A negative or nan
    [latency_us] (impossible from the monotonic serve clock, possible from
    a buggy caller) is rejected: the query still counts, the latency
    sample is dropped. *)
val record_query :
  ?version:int ->
  t ->
  protocol:string ->
  found_triangle:bool ->
  wire_bytes:int ->
  accounted_bits:int ->
  latency_us:float ->
  unit

(** Record a failed line under its category. *)
val record_error : t -> category:error_category -> unit

(** Record one client-side retry attempt (client registries). *)
val record_retry : t -> unit

(** Record one scheduled fault that fired (chaos bookkeeping, not an
    error). *)
val record_injected : t -> unit

(** Record one accepted connection. *)
val record_accept : t -> unit

(** Record one connection shed at the [--max-clients] cap (pairs with an
    [Overload] error). *)
val record_shed : t -> unit

(** Set the open-connections gauge (the event loop updates it on every
    accept and close). *)
val set_in_flight : t -> int -> unit

(** Record one instance-cache lookup. *)
val record_cache : t -> hit:bool -> unit

(** Record one [{"op": "batch"}] exchange carrying [items] requests. *)
val record_batch : t -> items:int -> unit

(** Record one served [{"op": "dataset"}] query against its dataset name
    (on top of the {!record_query} the query also gets). *)
val record_dataset : t -> name:string -> unit

(** Queries served over the named dataset (0 for a name never served). *)
val dataset_served : t -> string -> int

(** Highest wire-protocol version the per-version gauges track. *)
val max_wire_version : int

(** Add [bytes] of serve-socket traffic (request plus reply, as written)
    to [version]'s byte gauge. *)
val record_version_bytes : t -> version:int -> bytes:int -> unit

(** Record one per-phase latency sample (microseconds; negative and nan
    samples are rejected like {!record_query}'s). *)
val record_phase : t -> phase:Tfree_obs.Phase.t -> us:float -> unit

(** Snapshot (deep copy) of the end-to-end latency histogram. *)
val latency_snapshot : t -> Tfree_obs.Histogram.t

(** Snapshot of one phase's latency histogram. *)
val phase_snapshot : t -> Tfree_obs.Phase.t -> Tfree_obs.Histogram.t

(** Samples recorded for one phase. *)
val phase_count : t -> Tfree_obs.Phase.t -> int

val queries_served : t -> int

(** Total errors across all categories. *)
val errors : t -> int

val errors_in : t -> error_category -> int
val retries : t -> int
val injected : t -> int
val accepted : t -> int
val shed : t -> int
val in_flight : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
val batches : t -> int
val batch_items : t -> int
val wire_bytes : t -> int
val accounted_bits : t -> int

(** Queries served over wire-protocol version [v] (out-of-range versions
    clamp to the nearest tracked slot). *)
val version_served : t -> int -> int

(** Serve-socket bytes recorded for wire-protocol version [v]. *)
val version_bytes : t -> int -> int

(** Fold [other]'s counters, verdict tallies and latency histograms into
    the first registry (gauges are not merged; histogram merge is exact).
    Used by the load generator to reconcile per-client tallies against the
    server's stats, and by fleet-wide stats to combine worker
    registries. *)
val merge : t -> t -> unit

(** Serialize the registry for the fleet control channel: every counter,
    the verdict/dataset tables, the start time and each histogram in its
    exact {!Tfree_obs.Histogram.to_compact} encoding, as one JSON line.
    {!of_wire} round-trips to a registry whose {!merge} into an
    accumulator is indistinguishable from merging the original —
    fleet-wide stats stay exact across process boundaries.  The
    [in_flight] gauge travels too (merge ignores it; the fleet parent
    sums it by hand). *)
val to_wire : t -> string

val of_wire : string -> (t, string) result

(** The stats-query payload: counters, per-category error counts, retry and
    injected-fault tallies, connection gauges ([accepted]/[shed]/
    [in_flight]), instance-cache hit/miss/lookup counts, batch tallies,
    uptime and served-per-second, per-protocol verdict counts, latency
    count/mean/sum/min/max and p50/p90/p99/p999 from the bounded histogram
    ([null] quantiles when no query has been served, the exact sample on a
    single-sample registry), and a ["phases"] object with the same shape
    per serve phase. *)
val to_json : t -> Tfree_util.Jsonout.t

(** Cheap liveness payload for [{"op": "health"}]: uptime, queries served,
    errors, in-flight/accepted/shed — scalar counters only, O(1) under the
    mutex (no hashtable iteration, no histogram walk).  The service layer
    adds cache occupancy. *)
val health_json : t -> Tfree_util.Jsonout.t
