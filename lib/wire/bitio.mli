(** Bit-granular I/O over byte buffers: MSB-first bit packing, so the codec
    can emit exactly the bit counts the cost model charges.  Byte-boundary
    padding happens once per frame at {!to_bytes} and is the caller's
    framing overhead, never part of the payload. *)

type writer

val writer : unit -> writer

(** Total bits written so far (excluding any final padding). *)
val bits_written : writer -> int

val put_bit : writer -> bool -> unit

(** Write [v] in exactly [width] bits, most significant first.
    @raise Invalid_argument if [v] does not fit. *)
val put_bits : writer -> width:int -> int -> unit

(** Elias-gamma code: exactly {!Tfree_util.Bits.elias_gamma}[ v] bits. *)
val put_gamma : writer -> int -> unit

(** Flush, zero-padding the final partial byte on the right. *)
val to_bytes : writer -> Bytes.t

type reader

(** Read bits from [len] bytes of [data] starting at byte [off]. *)
val reader : ?off:int -> ?len:int -> Bytes.t -> reader

val bits_read : reader -> int
val get_bit : reader -> bool
val get_bits : reader -> width:int -> int
val get_gamma : reader -> int
