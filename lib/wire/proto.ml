(** Wire-format primitives for the serve protocol's binary v2.

    The JSON-per-line service protocol (v1) pays a parse/print cost and a
    5-10x byte inflation on every query — exactly the waste the repo's
    bit-accounting discipline exists to expose.  Protocol v2 keeps the
    framing discipline of {!Frame} (varint length prefix, byte-sum
    checksum, fail-closed typed errors) but carries fixed binary layouts
    for the service's request/reply/batch/stats shapes.  This module owns
    the pieces that are shape-independent:

    - the negotiation handshake constants ({!magic}, {!max_version});
    - {!buf}, a reusable growable scratch buffer with a frame
      writer ({!begin_frame}/{!end_frame}) that seals a varint length
      prefix and a 2-byte mod-2^16 checksum around whatever was put;
    - {!cursor}, a reusable bounds-checked reader over a byte region;
    - {!try_frame}, the streaming frame splitter the server's event loop
      drains its per-connection read buffer with;
    - {!rbuf}, that per-connection read buffer: grown on demand, compacted
      in place, and — the part a long-lived daemon needs — shrunk back to
      a small default once a large request has been consumed, so one
      near-8MB line does not pin megabytes for the connection's lifetime.

    Everything on the steady-state path is allocation-free: puts poke
    bytes into preallocated storage, gets read scalars out of it, and the
    only allocations are amortized buffer growth and the boxed
    float/int64 a 64-bit load cannot avoid.  The micro-benchmark gate
    ([bench/micro]) asserts this with a [Gc.minor_words]-per-query bound.

    Frame format (identical discipline to {!Frame}):

    {v
    varint  L         length in bytes of everything after this varint
    body    L-2 bytes tag byte + fixed layout fields (Service owns these)
    2 bytes checksum  sum mod 2^16 of the body bytes
    v} *)

(* --------------------------------------------------------- negotiation *)

(* The first byte of any JSON value the v1 protocol can carry is an open
   brace/bracket, a double quote, [t]/[f]/[n], a digit, a minus sign or
   whitespace — all below 0x80.  0xBF can
   therefore never open a v1 request line, which is what makes the
   handshake backward-compatible: a server reading 0xBF first knows it has
   a v2-capable peer, and a v1 client's JSON is served unchanged. *)
let magic = '\xbf'
let max_version = 2

(** The client's protocol preference: [V1] speaks JSON lines without a
    handshake (wire-compatible with pre-v2 servers), [V2] and [Auto] send
    the magic+version hello and use whatever the server negotiates —
    binary v2 when both sides speak it, JSON v1 otherwise. *)
type pref = V1 | V2 | Auto

let pref_to_string = function V1 -> "v1" | V2 -> "v2" | Auto -> "auto"

let pref_of_string = function
  | "v1" -> Some V1
  | "v2" -> Some V2
  | "auto" -> Some Auto
  | _ -> None

(** The two-byte hello for [version], both directions: the client offers
    the highest version it speaks, the server answers with the version the
    connection will use (0 = refused; the connection falls back to v1). *)
let hello version = Printf.sprintf "%c%c" magic (Char.chr (version land 0xff))

(* ------------------------------------------------------------- checksum *)

let sum16 data off len =
  let s = ref 0 in
  for i = off to off + len - 1 do
    s := !s + Char.code (Bytes.unsafe_get data i)
  done;
  !s land 0xffff

(* The frame cap mirrors {!Frame.max_frame_bytes}: a corrupted length
   prefix must not make the server allocate or wait for gigabytes. *)
let max_frame_bytes = 1 lsl 26

(* ------------------------------------------------------- scratch buffer *)

(* Room reserved in front of the body for the sealed length varint: 64 MiB
   needs 4 varint bytes; 5 is safe for anything the cap admits. *)
let headroom = 5

type buf = {
  mutable data : Bytes.t;
  mutable len : int;  (** bytes written so far, including the headroom *)
  mutable off : int;  (** start of the sealed frame after {!end_frame} *)
}

let create_buf ?(capacity = 256) () =
  { data = Bytes.create (max capacity (headroom + 8)); len = headroom; off = headroom }

let ensure b extra =
  let need = b.len + extra in
  if need > Bytes.length b.data then begin
    let cap = ref (Bytes.length b.data) in
    while !cap < need do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end

let put_u8 b v =
  ensure b 1;
  Bytes.unsafe_set b.data b.len (Char.unsafe_chr (v land 0xff));
  b.len <- b.len + 1

(* Unsigned LEB128, as everywhere else in lib/wire. *)
let put_varint b v =
  if v < 0 then invalid_arg "Proto.put_varint: negative";
  ensure b 10;
  let v = ref v in
  let continue = ref true in
  while !continue do
    if !v < 0x80 then begin
      Bytes.unsafe_set b.data b.len (Char.unsafe_chr !v);
      b.len <- b.len + 1;
      continue := false
    end
    else begin
      Bytes.unsafe_set b.data b.len (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
      b.len <- b.len + 1;
      v := !v lsr 7
    end
  done

let put_zigzag b v = put_varint b (if v >= 0 then 2 * v else (-2 * v) - 1)

let put_f64 b f =
  ensure b 8;
  Bytes.set_int64_le b.data b.len (Int64.bits_of_float f);
  b.len <- b.len + 8

let put_string b s =
  let n = String.length s in
  put_varint b n;
  ensure b n;
  Bytes.blit_string s 0 b.data b.len n;
  b.len <- b.len + n

let varint_size v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let begin_frame b =
  b.len <- headroom;
  b.off <- headroom

let end_frame b =
  let body_len = b.len - headroom in
  let ck = sum16 b.data headroom body_len in
  ensure b 2;
  Bytes.unsafe_set b.data b.len (Char.unsafe_chr (ck land 0xff));
  Bytes.unsafe_set b.data (b.len + 1) (Char.unsafe_chr (ck lsr 8));
  b.len <- b.len + 2;
  (* seal the length varint flush against the body, inside the headroom *)
  let l = body_len + 2 in
  let s = varint_size l in
  b.off <- headroom - s;
  let v = ref l and pos = ref b.off in
  let continue = ref true in
  while !continue do
    if !v < 0x80 then begin
      Bytes.unsafe_set b.data !pos (Char.unsafe_chr !v);
      continue := false
    end
    else begin
      Bytes.unsafe_set b.data !pos (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
      incr pos;
      v := !v lsr 7
    end
  done

let storage b = b.data
let frame_off b = b.off
let frame_len b = b.len - b.off

(** Body bytes inside the sealed frame — the tag and layout fields, without
    the length prefix and checksum.  This is the "payload" side of the
    framed/payload byte split the load generator reports. *)
let frame_body_len b = b.len - headroom - 2

(* ---------------------------------------------------------------- cursor *)

type cursor = { mutable cdata : Bytes.t; mutable cpos : int; mutable clim : int }

let cursor () = { cdata = Bytes.empty; cpos = 0; clim = 0 }

let set_cursor cur data ~pos ~limit =
  cur.cdata <- data;
  cur.cpos <- pos;
  cur.clim <- limit

let remaining cur = cur.clim - cur.cpos

let get_u8 cur =
  if cur.cpos >= cur.clim then
    Wire_error.errorf_truncated "Proto.get_u8: read past the end of the body";
  let v = Char.code (Bytes.unsafe_get cur.cdata cur.cpos) in
  cur.cpos <- cur.cpos + 1;
  v

let get_varint cur =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if cur.cpos >= cur.clim then
      Wire_error.errorf_truncated "Proto.get_varint: truncated varint";
    if !shift > 63 then Wire_error.errorf_corrupt "Proto.get_varint: varint longer than 10 bytes";
    let byte = Char.code (Bytes.unsafe_get cur.cdata cur.cpos) in
    cur.cpos <- cur.cpos + 1;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  if !v < 0 then Wire_error.errorf_corrupt "Proto.get_varint: negative value";
  !v

let get_zigzag cur =
  let z = get_varint cur in
  if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let get_f64 cur =
  if cur.cpos + 8 > cur.clim then Wire_error.errorf_truncated "Proto.get_f64: truncated float";
  let f = Int64.float_of_bits (Bytes.get_int64_le cur.cdata cur.cpos) in
  cur.cpos <- cur.cpos + 8;
  f

let get_string cur =
  let n = get_varint cur in
  if cur.cpos + n > cur.clim then
    Wire_error.errorf_truncated "Proto.get_string: %d-byte string in a %d-byte remainder" n
      (remaining cur);
  let s = if n = 0 then "" else Bytes.sub_string cur.cdata cur.cpos n in
  cur.cpos <- cur.cpos + n;
  s

let expect_end cur =
  if cur.cpos <> cur.clim then
    Wire_error.errorf_corrupt "Proto.expect_end: %d trailing bytes after the message"
      (remaining cur)

(* ---------------------------------------------------- stream frame split *)

(** Scan [data[pos, limit)] for one complete frame.  On success, verify the
    checksum, point [cur] at the body (tag + fields, checksum excluded) and
    return the total frame length to consume from the stream; return [-1]
    when the bytes so far are a prefix of a valid frame (read more).
    @raise Wire_error.Wire_error when the bytes can never become a valid
    frame: an oversized or garbage length prefix, a checksum mismatch, a
    body too short to carry a tag.  A byte stream cannot resync after any
    of these, so the caller must fail the connection closed. *)
let try_frame data ~pos ~limit cur =
  (* length varint, streaming: incomplete only while it may still finish *)
  let l = ref 0 and shift = ref 0 and p = ref pos and continue = ref true and result = ref 0 in
  while !continue do
    if !p >= limit then begin
      if !p - pos >= 10 then Wire_error.errorf_corrupt "Proto.try_frame: length varint longer than 10 bytes";
      result := -1;
      continue := false
    end
    else begin
      if !p - pos >= 10 then Wire_error.errorf_corrupt "Proto.try_frame: length varint longer than 10 bytes";
      let byte = Char.code (Bytes.unsafe_get data !p) in
      incr p;
      l := !l lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    end
  done;
  if !result = -1 then -1
  else begin
    if !l < 0 then Wire_error.errorf_corrupt "Proto.try_frame: negative length prefix";
    if !l > max_frame_bytes then
      Wire_error.error (Wire_error.Oversized { limit = max_frame_bytes; got = !l });
    if !l < 3 then
      Wire_error.errorf_corrupt "Proto.try_frame: %d-byte frame is shorter than any message" !l;
    let body_start = !p in
    let frame_end = body_start + !l in
    if frame_end > limit then -1
    else begin
      let body_len = !l - 2 in
      let ck_off = body_start + body_len in
      let expect = sum16 data body_start body_len in
      let got =
        Char.code (Bytes.unsafe_get data ck_off)
        lor (Char.code (Bytes.unsafe_get data (ck_off + 1)) lsl 8)
      in
      if expect <> got then
        Wire_error.errorf_corrupt "Proto.try_frame: checksum mismatch (computed %04x, carried %04x)"
          expect got;
      set_cursor cur data ~pos:body_start ~limit:ck_off;
      frame_end - pos
    end
  end

(** Framing overhead of a sealed frame whose body is [body_len] bytes: the
    length varint plus the 2-byte checksum. *)
let frame_overhead_bytes ~body_len = varint_size (body_len + 2) + 2

(* ------------------------------------------------ connection read buffer *)

(* A connection's read accumulation: appended by the event loop's [read],
   consumed a line or a frame at a time.  Capacity policy: grow by doubling
   to fit whatever arrives (the server separately caps buffered bytes), but
   once consumption leaves at most a small tail, fall back to the default
   allocation — a connection that once carried a near-8MB batch must not
   pin that memory while it idles. *)

let rbuf_default_capacity = 4 * 1024

(** Retained capacity above this is released as soon as the buffered tail
    fits the default allocation again. *)
let rbuf_retain_capacity = 64 * 1024

type rbuf = { mutable rdata : Bytes.t; mutable rstart : int; mutable rend : int }

let rbuf_create () = { rdata = Bytes.create rbuf_default_capacity; rstart = 0; rend = 0 }
let rbuf_avail r = r.rend - r.rstart
let rbuf_data r = r.rdata
let rbuf_start r = r.rstart
let rbuf_capacity r = Bytes.length r.rdata

let rbuf_append r src off len =
  let avail = rbuf_avail r in
  if r.rend + len > Bytes.length r.rdata then begin
    (* compact first; grow only if the tail plus the new bytes still miss *)
    if r.rstart > 0 then begin
      Bytes.blit r.rdata r.rstart r.rdata 0 avail;
      r.rstart <- 0;
      r.rend <- avail
    end;
    if r.rend + len > Bytes.length r.rdata then begin
      let cap = ref (Bytes.length r.rdata) in
      while !cap < r.rend + len do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit r.rdata 0 grown 0 r.rend;
      r.rdata <- grown
    end
  end;
  Bytes.blit src off r.rdata r.rend len;
  r.rend <- r.rend + len

let rbuf_consume r n =
  if n < 0 || n > rbuf_avail r then invalid_arg "Proto.rbuf_consume: not that many bytes buffered";
  r.rstart <- r.rstart + n;
  let avail = rbuf_avail r in
  if avail = 0 then begin
    r.rstart <- 0;
    r.rend <- 0;
    if Bytes.length r.rdata > rbuf_retain_capacity then r.rdata <- Bytes.create rbuf_default_capacity
  end
  else if Bytes.length r.rdata > rbuf_retain_capacity && avail <= rbuf_default_capacity then begin
    (* a big request went through but a small tail remains: keep the tail,
       release the oversized allocation *)
    let small = Bytes.create rbuf_default_capacity in
    Bytes.blit r.rdata r.rstart small 0 avail;
    r.rdata <- small;
    r.rstart <- 0;
    r.rend <- avail
  end
