(** Length-prefixed message framing.

    Frame format, all framing fields byte-aligned:

    {v
    varint  L              length in bytes of everything after this varint
    varint  payload_bits   exact payload length in bits
    layout  descriptor     self-delimiting (Codec.layout_to_bytes)
    payload bytes          ceil(payload_bits / 8), right-padded
    2 bytes checksum       sum mod 2^16 of every body byte before it
    v}

    The payload occupies exactly [Msg.bits] bits ({!Codec.encode_payload}
    asserts it); everything else — length prefix, bit count, descriptor,
    final padding, checksum — is framing overhead.  Per frame,
    [8 * total_bytes - payload_bits] is that overhead, so over a run
    [wire_bytes * 8 - framing_overhead_bits = accounted_bits] holds exactly
    when the ledger and the transport agree.

    Parsing fails closed: a length field beyond {!max_frame_bytes} raises
    [Oversized], a body the stream cannot supply raises [Truncated], and a
    checksum mismatch, impossible length combination or undecodable payload
    raises [Corrupt] — all typed {!Wire_error.Wire_error}s, so a fault
    injected below this layer can abort a run but never smuggle a wrong
    message past it.  The byte-sum checksum detects {e every} single
    bit-flip in the body (a flip changes one byte by ±2^k, k ≤ 7, which
    cannot vanish mod 2^16). *)

open Tfree_comm

(** Hard cap on the body length a reader will believe (64 MiB) — a
    corrupted length prefix must not make the receiver allocate or wait for
    gigabytes.  The largest honest frame in the repo is well under 1 MiB. *)
let max_frame_bytes = 1 lsl 26

(* Smallest possible body: 1-byte bit count + 1-byte layout + checksum. *)
let min_body_bytes = 4

let sum16 data off len =
  let s = ref 0 in
  for i = off to off + len - 1 do
    s := !s + Char.code (Bytes.get data i)
  done;
  !s land 0xffff

(** The whole frame for [msg]. *)
let encode msg =
  let payload, payload_bits = Codec.encode_payload msg in
  let layout = Codec.layout_to_bytes (Msg.layout msg) in
  let body = Buffer.create (Bytes.length payload + Bytes.length layout + 6) in
  Codec.put_varint body payload_bits;
  Buffer.add_bytes body layout;
  Buffer.add_bytes body payload;
  let ck = sum16 (Buffer.to_bytes body) 0 (Buffer.length body) in
  Buffer.add_char body (Char.chr (ck land 0xff));
  Buffer.add_char body (Char.chr (ck lsr 8));
  let frame = Buffer.create (Buffer.length body + 2) in
  Codec.put_varint frame (Buffer.length body);
  Buffer.add_buffer frame body;
  Buffer.to_bytes frame

(* Validate and decode one frame body at [start], [body_len] bytes: verify
   the checksum, then the length arithmetic, then decode the payload.  The
   caller has already bounds-checked [start + body_len] against the data. *)
let parse_body data ~start ~body_len =
  if body_len < min_body_bytes then
    Wire_error.errorf_corrupt "Frame: body of %d bytes is shorter than any frame" body_len;
  let ck_off = start + body_len - 2 in
  let expect = sum16 data start (body_len - 2) in
  let got = Char.code (Bytes.get data ck_off) lor (Char.code (Bytes.get data (ck_off + 1)) lsl 8) in
  if expect <> got then
    Wire_error.errorf_corrupt "Frame: checksum mismatch (computed %04x, carried %04x)" expect got;
  let pos = ref start in
  let payload_bits = Codec.get_varint data pos in
  let layout = Codec.get_layout data pos in
  let payload_bytes = (payload_bits + 7) / 8 in
  if !pos + payload_bytes <> ck_off then
    Wire_error.errorf_corrupt "Frame: inconsistent frame lengths (%d-bit payload in a %d-byte body)"
      payload_bits body_len;
  Codec.decode_payload layout ~off:!pos ~bits:payload_bits data

let check_body_len body_len =
  if body_len > max_frame_bytes then
    Wire_error.error (Wire_error.Oversized { limit = max_frame_bytes; got = body_len })

(** Parse one frame from [data] at [!pos]; advances [pos] past it. *)
let decode data pos =
  let body_len = Codec.get_varint data pos in
  check_body_len body_len;
  let body_end = !pos + body_len in
  if body_end > Bytes.length data then
    Wire_error.errorf_truncated "Frame.decode: length field %d larger than the %d-byte buffer"
      body_len
      (Bytes.length data - !pos);
  let msg = parse_body data ~start:!pos ~body_len in
  pos := body_end;
  msg

(** Overhead of the frame [bytes] carrying a [payload_bits]-bit payload. *)
let overhead_bits ~frame_bytes ~payload_bits = (8 * frame_bytes) - payload_bits

(** Send one frame; returns the frame size in bytes. *)
let write tr msg =
  let frame = encode msg in
  Transport.send tr frame;
  Bytes.length frame

(* Read the length varint one byte at a time (a stream has no lookahead),
   then the body in one recv.  A varint that does not terminate within ten
   bytes is garbage, not a length. *)
let read_varint tr =
  let v = ref 0 and shift = ref 0 and continue = ref true and consumed = ref 0 in
  while !continue do
    if !consumed >= 10 then
      Wire_error.errorf_corrupt "Frame.read: length varint longer than 10 bytes";
    let byte = Char.code (Bytes.get (Transport.recv tr 1) 0) in
    incr consumed;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  if !v < 0 then Wire_error.errorf_corrupt "Frame.read: negative length varint";
  (!v, !consumed)

(** Receive one frame; returns the message and the frame size in bytes. *)
let read tr =
  let body_len, prefix_len = read_varint tr in
  check_body_len body_len;
  let body = Transport.recv tr body_len in
  let msg = parse_body body ~start:0 ~body_len in
  (msg, prefix_len + body_len)

(** Loopback round trip: the frame crosses the transport and comes back
    decoded.  Returns the delivered message and the frame size. *)
let exchange tr msg =
  let frame = encode msg in
  let back = Transport.exchange tr frame in
  let pos = ref 0 in
  let msg' = decode back pos in
  if !pos <> Bytes.length back then
    Wire_error.errorf_corrupt "Frame.exchange: %d trailing bytes after the frame"
      (Bytes.length back - !pos);
  (msg', Bytes.length frame)
