(** Length-prefixed message framing.

    Frame format, all framing fields byte-aligned:

    {v
    varint  L              length in bytes of everything after this varint
    varint  payload_bits   exact payload length in bits
    layout  descriptor     self-delimiting (Codec.layout_to_bytes)
    payload bytes          ceil(payload_bits / 8), right-padded
    v}

    The payload occupies exactly [Msg.bits] bits ({!Codec.encode_payload}
    asserts it); everything else — length prefix, bit count, descriptor,
    final padding — is framing overhead.  Per frame,
    [8 * total_bytes - payload_bits] is that overhead, so over a run
    [wire_bytes * 8 - framing_overhead_bits = accounted_bits] holds exactly
    when the ledger and the transport agree. *)

open Tfree_comm

(** The whole frame for [msg]. *)
let encode msg =
  let payload, payload_bits = Codec.encode_payload msg in
  let layout = Codec.layout_to_bytes (Msg.layout msg) in
  let body = Buffer.create (Bytes.length payload + Bytes.length layout + 4) in
  Codec.put_varint body payload_bits;
  Buffer.add_bytes body layout;
  Buffer.add_bytes body payload;
  let frame = Buffer.create (Buffer.length body + 2) in
  Codec.put_varint frame (Buffer.length body);
  Buffer.add_buffer frame body;
  Buffer.to_bytes frame

(** Parse one frame from [data] at [!pos]; advances [pos] past it. *)
let decode data pos =
  let body_len = Codec.get_varint data pos in
  let body_end = !pos + body_len in
  if body_end > Bytes.length data then invalid_arg "Frame.decode: truncated frame";
  let payload_bits = Codec.get_varint data pos in
  let layout = Codec.get_layout data pos in
  let payload_bytes = (payload_bits + 7) / 8 in
  if !pos + payload_bytes <> body_end then invalid_arg "Frame.decode: inconsistent frame lengths";
  let msg = Codec.decode_payload layout ~off:!pos ~bits:payload_bits data in
  pos := body_end;
  msg

(** Overhead of the frame [bytes] carrying a [payload_bits]-bit payload. *)
let overhead_bits ~frame_bytes ~payload_bits = (8 * frame_bytes) - payload_bits

(** Send one frame; returns the frame size in bytes. *)
let write tr msg =
  let frame = encode msg in
  Transport.send tr frame;
  Bytes.length frame

(* Read the length varint one byte at a time (a stream has no lookahead),
   then the body in one recv. *)
let read_varint tr =
  let v = ref 0 and shift = ref 0 and continue = ref true and consumed = ref 0 in
  while !continue do
    let byte = Char.code (Bytes.get (Transport.recv tr 1) 0) in
    incr consumed;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  (!v, !consumed)

(** Receive one frame; returns the message and the frame size in bytes. *)
let read tr =
  let body_len, prefix_len = read_varint tr in
  let body = Transport.recv tr body_len in
  let pos = ref 0 in
  let payload_bits = Codec.get_varint body pos in
  let layout = Codec.get_layout body pos in
  let payload_bytes = (payload_bits + 7) / 8 in
  if !pos + payload_bytes <> body_len then invalid_arg "Frame.read: inconsistent frame lengths";
  let msg = Codec.decode_payload layout ~off:!pos ~bits:payload_bits body in
  (msg, prefix_len + body_len)

(** Loopback round trip: the frame crosses the transport and comes back
    decoded.  Returns the delivered message and the frame size. *)
let exchange tr msg =
  let frame = encode msg in
  let back = Transport.exchange tr frame in
  let pos = ref 0 in
  let msg' = decode back pos in
  if !pos <> Bytes.length back then invalid_arg "Frame.exchange: trailing bytes";
  (msg', Bytes.length frame)
