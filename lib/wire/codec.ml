(** Self-delimiting binary codec for {!Tfree_comm.Msg} values.

    The payload encoding is driven by the message's {!Msg.layout} — the same
    schema {!Tfree_util.Bits} charges — so an encoded payload occupies
    {e exactly} [Msg.bits] bits; {!encode_payload} asserts this on every
    message, making "wire bytes reconcile with the cost model" a checked
    invariant rather than a hope.

    The layout descriptor itself is serialized separately ({!layout_to_bytes},
    byte-aligned tag + varint form).  On the wire it travels in the frame
    header and is accounted as framing overhead: the model charges for the
    payload because both parties know the protocol structure; the descriptor
    is what a byte transport needs to be self-delimiting without that shared
    knowledge. *)

open Tfree_comm

(* ------------------------------------------------------------- payload *)

let rec encode_value w layout (value : Msg.value) =
  match (layout, value) with
  | Msg.L_unit, Msg.Unit -> ()
  | Msg.L_bool, Msg.Bool b -> Bitio.put_bit w b
  | Msg.L_int_in { lo; hi }, Msg.Int v ->
      Bitio.put_bits w ~width:(Tfree_util.Bits.int_in_range ~lo ~hi) (v - lo)
  | Msg.L_nat, Msg.Int v -> Bitio.put_gamma w v
  | Msg.L_vertex { n }, Msg.Vertex v -> Bitio.put_bits w ~width:(Tfree_util.Bits.vertex ~n) v
  | Msg.L_vertex_opt _, Msg.No_vertex -> Bitio.put_bit w false
  | Msg.L_vertex_opt { n }, Msg.Vertex v ->
      Bitio.put_bit w true;
      Bitio.put_bits w ~width:(Tfree_util.Bits.vertex ~n) v
  | Msg.L_edge { n }, Msg.Edge (u, v) ->
      let width = Tfree_util.Bits.vertex ~n in
      Bitio.put_bits w ~width u;
      Bitio.put_bits w ~width v
  | Msg.L_vertices { n }, Msg.Vertices vs ->
      let width = Tfree_util.Bits.vertex ~n in
      Bitio.put_gamma w (List.length vs);
      List.iter (fun v -> Bitio.put_bits w ~width v) vs
  | Msg.L_edges { n }, Msg.Edges es ->
      let width = Tfree_util.Bits.vertex ~n in
      Bitio.put_gamma w (List.length es);
      List.iter
        (fun (u, v) ->
          Bitio.put_bits w ~width u;
          Bitio.put_bits w ~width v)
        es
  | Msg.L_tuple ls, Msg.Tuple vs ->
      if List.length ls <> List.length vs then invalid_arg "Codec.encode_value: tuple arity";
      List.iter2 (encode_value w) ls vs
  | _ -> invalid_arg "Codec.encode_value: value does not fit layout"

let rec decode_value r layout : Msg.value =
  match layout with
  | Msg.L_unit -> Msg.Unit
  | Msg.L_bool -> Msg.Bool (Bitio.get_bit r)
  | Msg.L_int_in { lo; hi } ->
      Msg.Int (lo + Bitio.get_bits r ~width:(Tfree_util.Bits.int_in_range ~lo ~hi))
  | Msg.L_nat -> Msg.Int (Bitio.get_gamma r)
  | Msg.L_vertex { n } -> Msg.Vertex (Bitio.get_bits r ~width:(Tfree_util.Bits.vertex ~n))
  | Msg.L_vertex_opt { n } ->
      if Bitio.get_bit r then Msg.Vertex (Bitio.get_bits r ~width:(Tfree_util.Bits.vertex ~n))
      else Msg.No_vertex
  | Msg.L_edge { n } ->
      let width = Tfree_util.Bits.vertex ~n in
      let u = Bitio.get_bits r ~width in
      Msg.Edge (u, Bitio.get_bits r ~width)
  | Msg.L_vertices { n } ->
      let width = Tfree_util.Bits.vertex ~n in
      let len = Bitio.get_gamma r in
      Msg.Vertices (List.init len (fun _ -> Bitio.get_bits r ~width))
  | Msg.L_edges { n } ->
      let width = Tfree_util.Bits.vertex ~n in
      let len = Bitio.get_gamma r in
      Msg.Edges
        (List.init len (fun _ ->
             let u = Bitio.get_bits r ~width in
             (u, Bitio.get_bits r ~width)))
  | Msg.L_tuple ls -> Msg.Tuple (List.map (decode_value r) ls)

(** Encode a message's payload: returns the (right-padded) payload bytes and
    the exact bit count, which is asserted equal to [Msg.bits] — the codec's
    central contract. *)
let encode_payload msg =
  let w = Bitio.writer () in
  encode_value w (Msg.layout msg) (Msg.value msg);
  let emitted = Bitio.bits_written w in
  if emitted <> Msg.bits msg then
    invalid_arg
      (Printf.sprintf "Codec.encode_payload: emitted %d bits but the cost model charges %d" emitted
         (Msg.bits msg));
  (Bitio.to_bytes w, emitted)

(** Decode a payload of [bits] bits under [layout]; the decoder must consume
    exactly [bits].  All decode failures — a read past the end of the
    buffer, a value that does not fit its layout, a bit-count mismatch —
    raise the typed {!Wire_error} ([Corrupt]): bytes that arrived but do not
    decode are a wire fault, never a crash. *)
let decode_payload layout ?(off = 0) ~bits data =
  let r = Bitio.reader ~off data in
  let value =
    try decode_value r layout with
    | Invalid_argument msg -> Wire_error.errorf_corrupt "Codec.decode_payload: %s" msg
    | Failure msg -> Wire_error.errorf_corrupt "Codec.decode_payload: %s" msg
  in
  if Bitio.bits_read r <> bits then
    Wire_error.errorf_corrupt "Codec.decode_payload: consumed %d bits of a %d-bit payload"
      (Bitio.bits_read r) bits;
  Msg.of_layout layout value

(* ---------------------------------------------------- layout descriptor *)

(* Unsigned LEB128. *)
let put_varint b v =
  if v < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* Decode-side failures are wire faults, not caller bugs: a truncated or
   over-long varint raises the typed {!Wire_error}.  Ten 7-bit groups cover
   every OCaml int; an eleventh continuation byte is garbage (and would
   otherwise shift into the sign bit). *)
let get_varint data pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length data then
      Wire_error.errorf_truncated "Codec.get_varint: truncated at byte %d" !pos;
    if !shift > 63 then Wire_error.errorf_corrupt "Codec.get_varint: varint longer than 10 bytes";
    let byte = Char.code (Bytes.get data !pos) in
    incr pos;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  if !v < 0 then Wire_error.errorf_corrupt "Codec.get_varint: negative value";
  !v

(* Zigzag for possibly-negative range bounds. *)
let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag z = if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let rec put_layout b (l : Msg.layout) =
  match l with
  | Msg.L_unit -> put_varint b 0
  | Msg.L_bool -> put_varint b 1
  | Msg.L_int_in { lo; hi } ->
      put_varint b 2;
      put_varint b (zigzag lo);
      put_varint b (zigzag hi)
  | Msg.L_nat -> put_varint b 3
  | Msg.L_vertex { n } ->
      put_varint b 4;
      put_varint b n
  | Msg.L_vertex_opt { n } ->
      put_varint b 5;
      put_varint b n
  | Msg.L_edge { n } ->
      put_varint b 6;
      put_varint b n
  | Msg.L_vertices { n } ->
      put_varint b 7;
      put_varint b n
  | Msg.L_edges { n } ->
      put_varint b 8;
      put_varint b n
  | Msg.L_tuple ls ->
      put_varint b 9;
      put_varint b (List.length ls);
      List.iter (put_layout b) ls

let rec get_layout data pos : Msg.layout =
  match get_varint data pos with
  | 0 -> Msg.L_unit
  | 1 -> Msg.L_bool
  | 2 ->
      let lo = unzigzag (get_varint data pos) in
      let hi = unzigzag (get_varint data pos) in
      Msg.L_int_in { lo; hi }
  | 3 -> Msg.L_nat
  | 4 -> Msg.L_vertex { n = get_varint data pos }
  | 5 -> Msg.L_vertex_opt { n = get_varint data pos }
  | 6 -> Msg.L_edge { n = get_varint data pos }
  | 7 -> Msg.L_vertices { n = get_varint data pos }
  | 8 -> Msg.L_edges { n = get_varint data pos }
  | 9 ->
      let len = get_varint data pos in
      Msg.L_tuple (List.init len (fun _ -> get_layout data pos))
  | tag -> Wire_error.errorf_corrupt "Codec.get_layout: unknown tag %d" tag

let layout_to_bytes l =
  let b = Buffer.create 8 in
  put_layout b l;
  Buffer.to_bytes b
