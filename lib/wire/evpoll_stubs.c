/* poll(2) binding for the serve event loop.

   The OCaml stdlib only exposes select(), whose fd_set caps every
   descriptor at FD_SETSIZE (~1024): a server holding more connections —
   or a *client* library whose process happens to have 1024 fds open —
   gets EINVAL or silent fd_set corruption.  poll() has no such cap, so
   this one entry point backs both the event loop's multi-fd wait and
   the deadline readers' single-fd wait.

   Contract (kept deliberately tiny so the stub needs no unixsupport.h):
   - fds / events / revents are same-length OCaml arrays; events and
     revents use bit 1 = readable, bit 2 = writable.  A descriptor at
     EOF, half-closed or invalid is reported readable: the caller's
     read() then surfaces the real condition (0 bytes, ECONNRESET,
     EBADF) through its existing error handling, exactly as select()
     behaved.
   - The OCaml runtime lock is released around the kernel wait.
   - EINTR/EAGAIN surface as 0 ready descriptors, not an exception:
     every caller sits in a deadline loop that re-checks wall clock and
     re-polls, which is also what the old select paths did on EINTR.
   - Any other failure (ENOMEM, EINVAL) is a caml_failwith: those mean
     the process is broken, not the connection. */

#include <poll.h>
#include <errno.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>

#define TFREE_EVPOLL_STACK_FDS 64

CAMLprim value tfree_evpoll_wait(value v_fds, value v_events, value v_revents,
                                 value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  mlsize_t n = Wosize_val(v_fds);
  struct pollfd stack_pfds[TFREE_EVPOLL_STACK_FDS];
  struct pollfd *pfds = stack_pfds;
  int rc, err;
  mlsize_t i;

  if (Wosize_val(v_events) != n || Wosize_val(v_revents) != n)
    caml_invalid_argument("Evpoll: array length mismatch");
  if (n > TFREE_EVPOLL_STACK_FDS)
    pfds = (struct pollfd *) caml_stat_alloc(n * sizeof(struct pollfd));

  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short) (((ev & 1) ? POLLIN : 0) | ((ev & 2) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }

  caml_enter_blocking_section();
  rc = poll(pfds, (nfds_t) n, Int_val(v_timeout_ms));
  err = errno;
  caml_leave_blocking_section();

  if (rc < 0) {
    if (pfds != stack_pfds) caml_stat_free(pfds);
    if (err == EINTR || err == EAGAIN) CAMLreturn(Val_int(0));
    caml_failwith("Evpoll: poll failed");
  }

  for (i = 0; i < n; i++) {
    int rv = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) rv |= 1;
    if (pfds[i].revents & (POLLOUT | POLLHUP | POLLERR)) rv |= 2;
    Store_field(v_revents, i, Val_int(rv));
  }
  if (pfds != stack_pfds) caml_stat_free(pfds);
  CAMLreturn(Val_int(rc));
}
