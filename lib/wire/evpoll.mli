(** A poll(2)-backed readiness wait for the serve event loop and the
    deadline readers.

    [Unix.select] caps every descriptor at [FD_SETSIZE] (~1024): a fleet
    worker holding thousands of connections — or a client library living
    in a process that merely has 1024 other fds open — crashes with
    [EINVAL] the moment a descriptor crosses the cap.  poll(2) has no
    such ceiling, so everything in {!Service} that used to sit in a
    select now sits here.

    Semantics match the selects they replace: a descriptor at EOF,
    half-closed, reset or invalid reports as readable, and the caller's
    [read] surfaces the real condition through its existing error paths.
    An interrupting signal ([EINTR]) surfaces as "nothing ready", never
    an exception — every caller loops under a wall-clock deadline and
    simply re-polls. *)

(** [wait_in fds ~timeout_s] blocks until at least one of [fds] is
    readable (or erroring/at EOF, which reads surface), the timeout
    expires, or a signal interrupts; returns the ready subset in [fds]
    order (empty on timeout or [EINTR]).  A negative [timeout_s] waits
    forever; a tiny positive one is rounded {e up} to the next
    millisecond so a not-yet-expired deadline cannot spin. *)
val wait_in : Unix.file_descr list -> timeout_s:float -> Unix.file_descr list

(** [readable fd ~timeout_s] is [wait_in [fd]] collapsed to a boolean:
    [true] when [fd] is readable (or at EOF/error), [false] on timeout or
    [EINTR].  The single-fd wait the byte-at-a-time deadline readers
    use. *)
val readable : Unix.file_descr -> timeout_s:float -> bool
