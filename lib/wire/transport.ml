(** Byte transports.

    A transport is a reliable duplex byte stream.  Two in-process loopback
    implementations back the wire runtime — an in-memory {!pipe} for
    deterministic tests and a real Unix-domain {!socketpair} — plus
    {!of_fd} wrapping one end of an established connection for the
    [tfree-serve] daemon and its client.

    Loopback transports support {!exchange}: write a buffer and read the
    same number of bytes back from the stream.  On the socketpair this is a
    [select]-interleaved loop, so a frame larger than the kernel socket
    buffer cannot deadlock the single-process sender/receiver pair. *)

type t = {
  kind : string;
  send : Bytes.t -> unit;  (** write the whole buffer *)
  recv : int -> Bytes.t;  (** read exactly this many bytes *)
  exchange : Bytes.t -> Bytes.t;  (** loopback: write all, read back the same length *)
  close : unit -> unit;
}

let kind t = t.kind
let send t b = t.send b
let recv t n = t.recv n
let exchange t b = t.exchange b
let close t = t.close ()

(* ----------------------------------------------------------------- pipe *)

(** In-memory FIFO of bytes: writes append, reads consume in order.
    Deterministic, allocation-only — the default for tests and experiments. *)
let pipe () =
  let buf = Buffer.create 256 in
  let pos = ref 0 in
  let send b = Buffer.add_bytes buf b in
  let recv n =
    if Buffer.length buf - !pos < n then
      invalid_arg
        (Printf.sprintf "Transport.pipe: read of %d bytes but only %d buffered" n
           (Buffer.length buf - !pos));
    let out = Bytes.create n in
    Buffer.blit buf !pos out 0 n;
    pos := !pos + n;
    (* Reclaim consumed space once everything in flight has been read. *)
    if !pos = Buffer.length buf then begin
      Buffer.clear buf;
      pos := 0
    end;
    out
  in
  {
    kind = "pipe";
    send;
    recv;
    exchange = (fun b -> send b; recv (Bytes.length b));
    close = (fun () -> ());
  }

(* ------------------------------------------------------------- unix fds *)

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_exact fd n =
  let out = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let r = Unix.read fd out !off (n - !off) in
    if r = 0 then failwith "Transport: peer closed the connection";
    off := !off + r
  done;
  out

(* Write [b] while draining the read side, so a buffer larger than the
   kernel's socket buffer cannot wedge a single-process loopback. *)
let exchange_fds ~wr ~rd b =
  let len = Bytes.length b in
  let out = Bytes.create len in
  let w = ref 0 and r = ref 0 in
  while !w < len || !r < len do
    let ws = if !w < len then [ wr ] else [] in
    let rs = if !r < len then [ rd ] else [] in
    let readable, writable, _ = Unix.select rs ws [] (-1.0) in
    if writable <> [] then w := !w + Unix.write wr b !w (min 65536 (len - !w));
    if readable <> [] then begin
      let got = Unix.read rd out !r (len - !r) in
      if got = 0 then failwith "Transport: peer closed the connection";
      r := !r + got
    end
  done;
  out

(** A connected [AF_UNIX]/[SOCK_STREAM] pair in one process: writes enter
    one end, reads drain the other — real kernel-crossing bytes. *)
let socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let closed = ref false in
  {
    kind = "socketpair";
    send = (fun buf -> write_all a buf);
    recv = (fun n -> read_exact b n);
    exchange = (fun buf -> exchange_fds ~wr:a ~rd:b buf);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ()
        end);
  }

(** Wrap one end of an established duplex connection (the serve/client
    side).  [exchange] here is a plain request/response round trip — the
    peer is another process, so no loopback interleaving is needed. *)
let of_fd ?(kind = "fd") fd =
  let closed = ref false in
  {
    kind;
    send = (fun b -> write_all fd b);
    recv = (fun n -> read_exact fd n);
    exchange =
      (fun b ->
        write_all fd b;
        read_exact fd (Bytes.length b));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end);
  }
