(** Byte transports.

    A transport is a duplex byte stream.  Two in-process loopback
    implementations back the wire runtime — an in-memory {!pipe} for
    deterministic tests and a real Unix-domain {!socketpair} — plus
    {!of_fd} wrapping one end of an established connection for the
    [tfree-serve] daemon and its client.

    Loopback transports support {!exchange}: write a buffer and read the
    same number of bytes back from the stream.  On the socketpair this is a
    [select]-interleaved loop, so a frame larger than the kernel socket
    buffer cannot deadlock the single-process sender/receiver pair.

    All failure modes raise the typed {!Wire_error.Wire_error} — underruns
    as [Truncated], a gone peer as [Peer_closed] — never a bare
    [Invalid_argument]/[Failure] callers would have to string-match.

    {!faulty} wraps any transport with a deterministic {!Fault.schedule}:
    the [op]-th write through the wrapper suffers the scheduled fault
    (drop, bit-flip, truncation, delay, split write, peer close), and the
    wrapper's read side refuses to block on bytes an injected fault made
    unavailable — so chaos runs can crash with a typed error but can never
    hang. *)

type t = {
  kind : string;
  send : Bytes.t -> unit;  (** write the whole buffer *)
  recv : int -> Bytes.t;  (** read exactly this many bytes *)
  exchange : Bytes.t -> Bytes.t;  (** loopback: write all, read back the same length *)
  close : unit -> unit;
}

let kind t = t.kind
let send t b = t.send b
let recv t n = t.recv n
let exchange t b = t.exchange b
let close t = t.close ()

(* ----------------------------------------------------------------- pipe *)

(** In-memory FIFO of bytes: writes append, reads consume in order.
    Deterministic, allocation-only — the default for tests and experiments. *)
let pipe () =
  let buf = Buffer.create 256 in
  let pos = ref 0 in
  let send b = Buffer.add_bytes buf b in
  let recv n =
    if Buffer.length buf - !pos < n then
      Wire_error.errorf_truncated "Transport.pipe: read of %d bytes but only %d buffered" n
        (Buffer.length buf - !pos);
    let out = Bytes.create n in
    Buffer.blit buf !pos out 0 n;
    pos := !pos + n;
    (* Reclaim consumed space once everything in flight has been read. *)
    if !pos = Buffer.length buf then begin
      Buffer.clear buf;
      pos := 0
    end;
    out
  in
  {
    kind = "pipe";
    send;
    recv;
    exchange = (fun b -> send b; recv (Bytes.length b));
    close = (fun () -> ());
  }

(* ------------------------------------------------------------- unix fds *)

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_exact fd n =
  let out = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let r = Unix.read fd out !off (n - !off) in
    if r = 0 then
      Wire_error.error
        (Wire_error.Peer_closed
           (Printf.sprintf "Transport: peer closed with %d of %d bytes read" !off n));
    off := !off + r
  done;
  out

(* Write [b] while draining the read side, so a buffer larger than the
   kernel's socket buffer cannot wedge a single-process loopback. *)
let exchange_fds ~wr ~rd b =
  let len = Bytes.length b in
  let out = Bytes.create len in
  let w = ref 0 and r = ref 0 in
  while !w < len || !r < len do
    let ws = if !w < len then [ wr ] else [] in
    let rs = if !r < len then [ rd ] else [] in
    let readable, writable, _ = Unix.select rs ws [] (-1.0) in
    if writable <> [] then w := !w + Unix.write wr b !w (min 65536 (len - !w));
    if readable <> [] then begin
      let got = Unix.read rd out !r (len - !r) in
      if got = 0 then
        Wire_error.error (Wire_error.Peer_closed "Transport: peer closed mid-exchange");
      r := !r + got
    end
  done;
  out

(** A connected [AF_UNIX]/[SOCK_STREAM] pair in one process: writes enter
    one end, reads drain the other — real kernel-crossing bytes. *)
let socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let closed = ref false in
  {
    kind = "socketpair";
    send = (fun buf -> write_all a buf);
    recv = (fun n -> read_exact b n);
    exchange = (fun buf -> exchange_fds ~wr:a ~rd:b buf);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ()
        end);
  }

(** Wrap one end of an established duplex connection (the serve/client
    side).  [exchange] here is a plain request/response round trip — the
    peer is another process, so no loopback interleaving is needed. *)
let of_fd ?(kind = "fd") fd =
  let closed = ref false in
  {
    kind;
    send = (fun b -> write_all fd b);
    recv = (fun n -> read_exact fd n);
    exchange =
      (fun b ->
        write_all fd b;
        read_exact fd (Bytes.length b));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end);
  }

(* --------------------------------------------------------------- faulty *)

(* The fault-injecting wrapper.  Every wrapper [send] (and every fast-path
   [exchange]) consumes one op of the shared [counter]; the schedule names
   ops to sabotage.  The wrapper tracks delivered-minus-consumed bytes for
   loopback transports, so a read that an injected drop/truncate starved
   raises [Truncated] instead of blocking forever — the no-hang half of the
   chaos contract lives here, the no-wrong-verdict half in the frame
   checksum and the wire tap's echo check. *)
let faulty ?(counter = ref 0) ~schedule inner =
  let closed = ref false in
  let pending = Queue.create () in
  (* delayed sends: (release_op, bytes) — release once the op counter passes *)
  let delivered = ref 0 and consumed = ref 0 in
  let loopback = inner.kind = "pipe" || inner.kind = "socketpair" in
  let deliver b =
    inner.send b;
    delivered := !delivered + Bytes.length b
  in
  let flush_due () =
    let rec go () =
      match Queue.peek_opt pending with
      | Some (due, b) when due <= !counter ->
          ignore (Queue.pop pending);
          deliver b;
          go ()
      | _ -> ()
    in
    go ()
  in
  let flush_all () =
    while not (Queue.is_empty pending) do
      deliver (snd (Queue.pop pending))
    done
  in
  let guard () =
    if !closed then Wire_error.error (Wire_error.Peer_closed "injected peer-close")
  in
  let send b =
    guard ();
    let op = !counter in
    incr counter;
    flush_due ();
    match Fault.find schedule op with
    | None -> deliver b
    | Some Fault.Drop -> ()
    | Some (Fault.Corrupt { bit }) ->
        let c = Bytes.copy b in
        let len = Bytes.length c in
        if len > 0 then begin
          let bi = bit mod (8 * len) in
          Bytes.set c (bi / 8)
            (Char.chr (Char.code (Bytes.get c (bi / 8)) lxor (1 lsl (bi mod 8))))
        end;
        deliver c
    | Some (Fault.Truncate { keep }) ->
        let len = Bytes.length b in
        deliver (Bytes.sub b 0 (min keep (max 0 (len - 1))))
    | Some (Fault.Delay { amount }) -> Queue.push (op + max 1 amount, Bytes.copy b) pending
    | Some (Fault.Partial { at }) ->
        let len = Bytes.length b in
        let cut = min (max 1 at) (max 0 (len - 1)) in
        deliver (Bytes.sub b 0 cut);
        deliver (Bytes.sub b cut (len - cut))
    | Some Fault.Close ->
        closed := true;
        inner.close ()
  in
  let recv n =
    guard ();
    flush_all ();
    if loopback && !delivered - !consumed < n then
      Wire_error.errorf_truncated
        "Transport.faulty: read of %d bytes but an injected fault left only %d in flight" n
        (!delivered - !consumed)
    else begin
      let out = inner.recv n in
      consumed := !consumed + n;
      out
    end
  in
  let exchange b =
    guard ();
    let len = Bytes.length b in
    if Fault.find schedule !counter = None && Queue.is_empty pending then begin
      (* fault-free op on a clean stream: delegate to the deadlock-free
         underlying exchange (matters for frames beyond the kernel buffer) *)
      incr counter;
      delivered := !delivered + len;
      let out = inner.exchange b in
      consumed := !consumed + len;
      out
    end
    else begin
      send b;
      recv len
    end
  in
  {
    kind = inner.kind ^ "+faulty";
    send;
    recv;
    exchange;
    close = (fun () -> inner.close ());
  }
