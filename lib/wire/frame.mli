(** Length-prefixed framing over a {!Transport}: varint length, varint
    payload bit count, layout descriptor, then a payload of exactly
    [Msg.bits] bits.  Everything except the payload bits is framing
    overhead, so [8 * frame_bytes - payload_bits] per frame reconciles wire
    bytes against the cost ledger. *)

open Tfree_comm

(** The whole frame for a message. *)
val encode : Msg.t -> Bytes.t

(** Parse one frame from a buffer at [!pos]; advances [pos] past it. *)
val decode : Bytes.t -> int ref -> Msg.t

val overhead_bits : frame_bytes:int -> payload_bits:int -> int

(** Send one frame; returns its size in bytes. *)
val write : Transport.t -> Msg.t -> int

(** Receive one frame; returns the message and its size in bytes. *)
val read : Transport.t -> Msg.t * int

(** Loopback round trip: write the frame, read it back from the same
    stream, decode.  Returns the delivered message and the frame size. *)
val exchange : Transport.t -> Msg.t -> Msg.t * int
