(** Length-prefixed framing over a {!Transport}: varint length, varint
    payload bit count, layout descriptor, a payload of exactly [Msg.bits]
    bits, and a 2-byte mod-2^16 checksum that detects every single bit-flip
    in the body.  Everything except the payload bits is framing overhead,
    so [8 * frame_bytes - payload_bits] per frame reconciles wire bytes
    against the cost ledger.  Parsing fails closed with typed
    {!Wire_error.Wire_error}s ([Oversized] / [Truncated] / [Corrupt]) —
    never out-of-bounds reads, unbounded allocation, or string-matched
    exceptions. *)

open Tfree_comm

(** Hard cap (64 MiB) on the body length a reader will believe; a corrupted
    length prefix beyond it raises [Oversized]. *)
val max_frame_bytes : int

(** The whole frame for a message. *)
val encode : Msg.t -> Bytes.t

(** Parse one frame from a buffer at [!pos]; advances [pos] past it.
    @raise Wire_error.Wire_error on truncation, an oversized or inconsistent
    length, a checksum mismatch, or an undecodable payload. *)
val decode : Bytes.t -> int ref -> Msg.t

val overhead_bits : frame_bytes:int -> payload_bits:int -> int

(** Send one frame; returns its size in bytes. *)
val write : Transport.t -> Msg.t -> int

(** Receive one frame; returns the message and its size in bytes.
    @raise Wire_error.Wire_error as for {!decode}, plus whatever the
    transport raises ([Truncated] / [Peer_closed]). *)
val read : Transport.t -> Msg.t * int

(** Loopback round trip: write the frame, read it back from the same
    stream, decode.  Returns the delivered message and the frame size. *)
val exchange : Transport.t -> Msg.t -> Msg.t * int
