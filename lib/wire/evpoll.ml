(* See evpoll.mli.  The stub takes parallel fds/events/revents arrays
   (bit 1 = readable, bit 2 = writable) and a millisecond timeout;
   it returns the ready count with revents filled in. *)
external poll_raw : Unix.file_descr array -> int array -> int array -> int -> int
  = "tfree_evpoll_wait"

(* poll's timeout is a C int of milliseconds.  Round *up* so a deadline
   with 0.2ms left waits 1ms instead of spinning; cap at a day so an
   [infinity]-ish float cannot overflow the C int (every caller loops
   and re-computes its deadline anyway). *)
let ms_of_timeout timeout_s =
  if timeout_s < 0.0 then -1
  else if timeout_s >= 86_400.0 then 86_400_000
  else int_of_float (Float.ceil (timeout_s *. 1000.0))

let readable fd ~timeout_s =
  let fds = [| fd |] and events = [| 1 |] and revents = [| 0 |] in
  poll_raw fds events revents (ms_of_timeout timeout_s) > 0 && revents.(0) land 1 <> 0

let wait_in fds ~timeout_s =
  match fds with
  | [] ->
      (* poll(NULL, 0, t) is a valid sleep, which is exactly what the
         event loop wants while no connection is open *)
      ignore (poll_raw [||] [||] [||] (ms_of_timeout timeout_s));
      []
  | _ ->
      let arr = Array.of_list fds in
      let n = Array.length arr in
      let events = Array.make n 1 and revents = Array.make n 0 in
      if poll_raw arr events revents (ms_of_timeout timeout_s) <= 0 then []
      else
        let ready = ref [] in
        for i = n - 1 downto 0 do
          if revents.(i) land 1 <> 0 then ready := arr.(i) :: !ready
        done;
        !ready
