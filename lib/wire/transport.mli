(** Byte transports: duplex byte streams.  {!pipe} is an in-memory FIFO
    (deterministic tests/experiments); {!socketpair} moves real bytes
    through a Unix-domain socket pair; {!of_fd} wraps one end of an
    established connection for the serve daemon and client; {!faulty} wraps
    any of them with a deterministic fault-injection schedule.  All failure
    modes raise the typed {!Wire_error.Wire_error}. *)

type t

(** "pipe", "socketpair", "fd", or the wrapped form "<kind>+faulty". *)
val kind : t -> string

(** Write the whole buffer. *)
val send : t -> Bytes.t -> unit

(** Read exactly [n] bytes.
    @raise Wire_error.Wire_error — [Truncated] on a stream that cannot
    supply them, [Peer_closed] when the other side went away. *)
val recv : t -> int -> Bytes.t

(** Loopback round trip: write the buffer, read the same number of bytes
    back.  Deadlock-free on the socketpair even for buffers larger than the
    kernel socket buffer ([select]-interleaved). *)
val exchange : t -> Bytes.t -> Bytes.t

val close : t -> unit

val pipe : unit -> t
val socketpair : unit -> t
val of_fd : ?kind:string -> Unix.file_descr -> t

(** [faulty ~schedule tr] injects the scheduled faults into [tr]: the
    [op]-th write through the wrapper (0-based; [counter] shares the op
    numbering across several wrapped transports, e.g. one per channel of a
    wire network) suffers the fault named for it — [Drop] swallows the
    buffer, [Corrupt] flips one bit, [Truncate] delivers a proper prefix,
    [Delay] holds the buffer until the op counter passes (benign), [Partial]
    splits the write in two (benign), [Close] closes the stream.  On
    loopback transports the wrapper's read side raises a typed [Truncated]
    instead of blocking when injected faults starved the stream, so a chaos
    run can fail closed but never hang; on [of_fd] transports reads pass
    through (pair with a read deadline on the peer).  Deterministic: same
    schedule, same traffic, same faults. *)
val faulty : ?counter:int ref -> schedule:Fault.schedule -> t -> t
