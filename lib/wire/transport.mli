(** Byte transports: reliable duplex byte streams.  {!pipe} is an in-memory
    FIFO (deterministic tests/experiments); {!socketpair} moves real bytes
    through a Unix-domain socket pair; {!of_fd} wraps one end of an
    established connection for the serve daemon and client. *)

type t

(** "pipe", "socketpair", or "fd". *)
val kind : t -> string

(** Write the whole buffer. *)
val send : t -> Bytes.t -> unit

(** Read exactly [n] bytes.  @raise Invalid_argument (pipe underrun) or
    [Failure] (peer closed) when the stream cannot supply them. *)
val recv : t -> int -> Bytes.t

(** Loopback round trip: write the buffer, read the same number of bytes
    back.  Deadlock-free on the socketpair even for buffers larger than the
    kernel socket buffer ([select]-interleaved). *)
val exchange : t -> Bytes.t -> Bytes.t

val close : t -> unit

val pipe : unit -> t
val socketpair : unit -> t
val of_fd : ?kind:string -> Unix.file_descr -> t
