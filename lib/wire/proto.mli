(** Wire-format primitives for the serve protocol's binary v2: the
    negotiation handshake constants, a reusable zero-alloc frame writer and
    bounds-checked reader, the streaming frame splitter the server's event
    loop drains with, and the self-shrinking per-connection read buffer.

    The service-shape layouts (query/reply/batch/stats) live in
    {!Service}; this module only knows bytes.  Frames carry the same
    discipline as {!Frame}: a varint length prefix, a body, and a 2-byte
    mod-2^16 checksum over the body.  All reader failures raise the typed
    {!Wire_error.Wire_error} — nothing here fails open. *)

(** {2 Negotiation} *)

(** First byte of the client hello; chosen ([0xBF]) to be invalid as the
    first byte of any JSON line, which is what keeps v1 clients working
    unchanged against a v2 server. *)
val magic : char

(** Highest protocol version this build speaks. *)
val max_version : int

(** The client's protocol preference: [V1] speaks JSON lines without a
    handshake (wire-compatible with pre-v2 servers); [V2] and [Auto] send
    the hello and use whatever the server negotiates — binary when both
    sides speak v2, JSON lines otherwise. *)
type pref = V1 | V2 | Auto

val pref_to_string : pref -> string
val pref_of_string : string -> pref option

(** The two-byte hello for [version], identical in both directions: the
    client offers the highest version it speaks, the server answers with
    the version the connection will use ([0] = refused, fall back to v1). *)
val hello : int -> string

(** {2 Frames} *)

(** Same cap as {!Frame.max_frame_bytes}: a corrupted length prefix must
    not make either side allocate or wait for gigabytes. *)
val max_frame_bytes : int

val sum16 : Bytes.t -> int -> int -> int

(** Length prefix + checksum bytes a sealed frame adds around a
    [body_len]-byte body. *)
val frame_overhead_bytes : body_len:int -> int

(** {2 Writing: reusable scratch buffer}

    One {!buf} per connection (or per client), reused for every frame:
    {!begin_frame}, [put_*] the tag and fields, {!end_frame} — which seals
    the checksum and writes the length varint backwards into reserved
    headroom, so the finished frame is the contiguous byte range
    [{!frame_off}, {!frame_off} + {!frame_len}) of {!storage}.  No
    allocation happens on the steady-state path once the buffer has grown
    to its working size. *)

type buf

val create_buf : ?capacity:int -> unit -> buf
val begin_frame : buf -> unit
val put_u8 : buf -> int -> unit

(** Unsigned LEB128; negative is a programming error.
    @raise Invalid_argument on a negative value. *)
val put_varint : buf -> int -> unit

(** Zigzag-mapped varint for possibly-negative integers. *)
val put_zigzag : buf -> int -> unit

(** IEEE-754 binary64, little-endian. *)
val put_f64 : buf -> float -> unit

(** Varint byte length, then the bytes. *)
val put_string : buf -> string -> unit

val end_frame : buf -> unit
val storage : buf -> Bytes.t
val frame_off : buf -> int
val frame_len : buf -> int

(** Body bytes inside the sealed frame (tag + fields, without length
    prefix and checksum) — the "payload" side of the framed/payload byte
    split. *)
val frame_body_len : buf -> int

(** {2 Reading: reusable bounds-checked cursor} *)

type cursor

val cursor : unit -> cursor

(** Point the cursor at [data[pos, limit)]. *)
val set_cursor : cursor -> Bytes.t -> pos:int -> limit:int -> unit

val remaining : cursor -> int

(** The [get_*] readers mirror the writers; each raises a typed
    {!Wire_error.Wire_error} ([Truncated] past the limit, [Corrupt] on an
    overlong or negative varint) rather than reading out of bounds. *)

val get_u8 : cursor -> int
val get_varint : cursor -> int
val get_zigzag : cursor -> int
val get_f64 : cursor -> float
val get_string : cursor -> string

(** Fail [Corrupt] if the cursor has not consumed its whole region — a
    layout mismatch, not trailing garbage to ignore. *)
val expect_end : cursor -> unit

(** {2 Stream splitting} *)

(** [try_frame data ~pos ~limit cur] scans [data[pos, limit)] for one
    complete frame.  On success: verifies the checksum, points [cur] at
    the body (checksum excluded) and returns the total byte length to
    consume.  Returns [-1] while the buffered bytes are still a prefix of
    a valid frame (read more).
    @raise Wire_error.Wire_error when the bytes can never become a valid
    frame (oversized or garbage length, checksum mismatch, body shorter
    than a tag) — a byte stream cannot resync after these, so fail the
    connection closed. *)
val try_frame : Bytes.t -> pos:int -> limit:int -> cursor -> int

(** {2 Per-connection read buffer}

    Grown by doubling to fit whatever arrives, compacted in place, and —
    the part a long-lived daemon needs — shrunk back to the default
    allocation once consumption leaves at most a small tail, so one
    near-8MB batch does not pin megabytes for the connection's
    lifetime. *)

type rbuf

val rbuf_default_capacity : int

(** Retained capacity above this is released as soon as the buffered tail
    fits the default allocation again. *)
val rbuf_retain_capacity : int

val rbuf_create : unit -> rbuf

(** Unconsumed byte count. *)
val rbuf_avail : rbuf -> int

(** Backing storage; unconsumed bytes live at
    [[rbuf_start, rbuf_start + rbuf_avail)]. *)
val rbuf_data : rbuf -> Bytes.t

val rbuf_start : rbuf -> int

(** Current backing allocation size (observable for the shrink tests). *)
val rbuf_capacity : rbuf -> int

(** Append [len] bytes of [src] starting at [off]. *)
val rbuf_append : rbuf -> Bytes.t -> int -> int -> unit

(** Discard [n] bytes from the front (a consumed line or frame); applies
    the shrink policy.
    @raise Invalid_argument when [n] exceeds {!rbuf_avail}. *)
val rbuf_consume : rbuf -> int -> unit
