(* tfree-serve — a query service over Unix-domain sockets.

   Protocol: one JSON value per line, both directions.  A request names an
   instance family, an edge partition and a protocol (the same enums the
   tfree CLI exposes) plus size parameters; the server builds the instance,
   runs the protocol through a {!Wire_runtime} network — so every charged
   message crosses a real transport — and replies with the verdict, the
   accounted bits and the measured wire traffic, reconciled.

   A request of the form [{"cmd": "shutdown"}] stops the server after the
   acknowledgement is written.  [{"op": "stats"}] returns the server's
   telemetry ({!Metrics}): queries served, per-protocol verdict counts,
   categorized error counts, retry and injected-fault tallies, wire traffic
   totals and latency quantiles.

   The server is built to degrade, never die: malformed lines get a
   structured [{"ok": false, "error": ..., "category": ...}] reply and the
   connection stays usable; a client killed mid-line, a half-written
   request, a reply write into a closed socket, or a silent client holding
   the line past the read deadline each cost one categorized error counter
   and at worst that one connection.  SIGPIPE is ignored for the same
   reason — a dead peer must surface as an [EPIPE] result, not a signal.

   The client side mirrors this with {!client_query}'s bounded retry:
   transient failures (connection refused, timeouts, garbled or truncated
   replies, server errors in the timeout/transport categories) back off
   exponentially with deterministic jitter and try again; structured server
   rejections (malformed request, unknown op) are fatal immediately. *)

open Tfree_util
open Tfree_graph

(* ------------------------------------------------------ the CLI's enums *)

type family = Far | Free | Hub | Mu | Gnp | Behrend | Diluted
type partition_kind = Disjoint | Dup | Replicate | Skewed | Hash
type protocol = Unrestricted | Sim | Oblivious | Exact

let family_to_string = function
  | Far -> "far"
  | Free -> "free"
  | Hub -> "hub"
  | Mu -> "mu"
  | Gnp -> "gnp"
  | Behrend -> "behrend"
  | Diluted -> "diluted"

let family_of_string = function
  | "far" -> Some Far
  | "free" -> Some Free
  | "hub" -> Some Hub
  | "mu" -> Some Mu
  | "gnp" -> Some Gnp
  | "behrend" -> Some Behrend
  | "diluted" -> Some Diluted
  | _ -> None

let partition_to_string = function
  | Disjoint -> "disjoint"
  | Dup -> "dup"
  | Replicate -> "replicate"
  | Skewed -> "skewed"
  | Hash -> "hash"

let partition_of_string = function
  | "disjoint" -> Some Disjoint
  | "dup" -> Some Dup
  | "replicate" -> Some Replicate
  | "skewed" -> Some Skewed
  | "hash" -> Some Hash
  | _ -> None

let protocol_to_string = function
  | Unrestricted -> "unrestricted"
  | Sim -> "sim"
  | Oblivious -> "oblivious"
  | Exact -> "exact"

let protocol_of_string = function
  | "unrestricted" -> Some Unrestricted
  | "sim" -> Some Sim
  | "oblivious" -> Some Oblivious
  | "exact" -> Some Exact
  | _ -> None

(* ------------------------------------------------------------- builders *)

let build_instance family rng ~n ~d ~eps =
  match family with
  | Far -> Gen.far_with_degree rng ~n ~d ~eps
  | Free -> Gen.free_with_degree rng ~n ~d
  | Hub ->
      Gen.hub_far rng ~n ~hubs:(max 1 (n / 400))
        ~pairs:(max 1 (int_of_float (eps *. float_of_int n *. d /. 2.0)))
  | Mu -> Tfree_lowerbound.Mu_dist.sample rng ~part:(n / 3) ~gamma:2.0
  | Gnp -> Gen.gnp rng ~n ~p:(Float.min 1.0 (d /. float_of_int n))
  | Behrend ->
      (* pick digits/base so 6·(2·base)^digits is near n *)
      let base = max 2 (int_of_float (sqrt (float_of_int n /. 24.0))) in
      (Behrend.instance ~rng ~base ~digits:2 ()).Behrend.graph
  | Diluted ->
      let extra = max 1 (int_of_float (1.0 /. (3.0 *. eps)) - 1) in
      let triangles = max 1 (n / (3 * (1 + extra))) in
      Gen.diluted_far rng ~triangles ~extra_degree:extra

let build_partition kind rng ~k g =
  match kind with
  | Disjoint -> Partition.disjoint_random rng ~k g
  | Dup -> Partition.with_duplication rng ~k ~dup_p:0.3 g
  | Replicate -> Partition.replicate ~k g
  | Skewed -> Partition.skewed rng ~k ~bias:0.8 g
  | Hash -> Partition.by_endpoint_hash rng ~k g

(* ------------------------------------------------------------- requests *)

type request = {
  family : family;
  partition : partition_kind;
  protocol : protocol;
  n : int;
  d : float;
  k : int;
  eps : float;
  seed : int;
  transport : Wire_runtime.kind;
  fault : string;  (** {!Fault.parse} spec injected below the framing; [""] = none *)
}

let default_request =
  {
    family = Far;
    partition = Dup;
    protocol = Oblivious;
    n = 300;
    d = 6.0;
    k = 4;
    eps = 0.1;
    seed = 1;
    transport = Wire_runtime.Pipe;
    fault = "";
  }

type response = {
  verdict : Tfree.Tester.verdict;
  bits : int;
  rounds : int;
  max_message : int;
  wire : Wire_runtime.report;
}

(* ----------------------------------------------------------------- JSON *)

let request_to_json r =
  Jsonout.Obj
    [
      ("family", Jsonout.Str (family_to_string r.family));
      ("partition", Jsonout.Str (partition_to_string r.partition));
      ("protocol", Jsonout.Str (protocol_to_string r.protocol));
      ("n", Jsonout.Num (float_of_int r.n));
      ("d", Jsonout.Num r.d);
      ("k", Jsonout.Num (float_of_int r.k));
      ("eps", Jsonout.Num r.eps);
      ("seed", Jsonout.Num (float_of_int r.seed));
      ("transport", Jsonout.Str (Wire_runtime.kind_to_string r.transport));
      ("fault", Jsonout.Str r.fault);
    ]

exception Bad of string

let num_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some v -> (
      match Jsonout.to_float v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "field %S must be a number" k)))

let int_field j k default = int_of_float (num_field j k (float_of_int default))

let str_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> s
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let enum_field j k of_string default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> (
      match of_string s with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "unknown %s %S" k s)))
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let request_of_json j =
  try
    let r = default_request in
    Ok
      {
        family = enum_field j "family" family_of_string r.family;
        partition = enum_field j "partition" partition_of_string r.partition;
        protocol = enum_field j "protocol" protocol_of_string r.protocol;
        n = int_field j "n" r.n;
        d = num_field j "d" r.d;
        k = int_field j "k" r.k;
        eps = num_field j "eps" r.eps;
        seed = int_field j "seed" r.seed;
        transport = enum_field j "transport" Wire_runtime.kind_of_string r.transport;
        fault =
          (let s = str_field j "fault" r.fault in
           match Fault.parse s with
           | Ok _ -> s
           | Error msg -> raise (Bad (Printf.sprintf "bad fault spec: %s" msg)));
      }
  with Bad msg -> Error msg

let response_to_json r =
  let verdict_fields =
    match r.verdict with
    | Tfree.Tester.Triangle (a, b, c) ->
        [
          ("verdict", Jsonout.Str "triangle");
          ( "witness",
            Jsonout.List
              [
                Jsonout.Num (float_of_int a); Jsonout.Num (float_of_int b);
                Jsonout.Num (float_of_int c);
              ] );
        ]
    | Tfree.Tester.Triangle_free -> [ ("verdict", Jsonout.Str "triangle-free") ]
  in
  let w = r.wire in
  Jsonout.Obj
    (("ok", Jsonout.Bool true)
     :: verdict_fields
    @ [
        ("bits", Jsonout.Num (float_of_int r.bits));
        ("rounds", Jsonout.Num (float_of_int r.rounds));
        ("max_message", Jsonout.Num (float_of_int r.max_message));
        ("wire_bytes", Jsonout.Num (float_of_int w.Wire_runtime.wire_bytes));
        ("frames", Jsonout.Num (float_of_int w.Wire_runtime.frames));
        ("payload_bits", Jsonout.Num (float_of_int w.Wire_runtime.payload_bits));
        ("framing_overhead_bits", Jsonout.Num (float_of_int w.Wire_runtime.framing_overhead_bits));
        ("accounted_bits", Jsonout.Num (float_of_int w.Wire_runtime.accounted_bits));
        ("ratio", Jsonout.Num w.Wire_runtime.ratio);
        ("reconciled", Jsonout.Bool (Wire_runtime.reconciles w));
      ])

let response_of_json j =
  try
    (match Jsonout.member "ok" j with
    | Some (Jsonout.Bool true) -> ()
    | _ ->
        let msg =
          match Jsonout.member "error" j with Some (Jsonout.Str s) -> s | _ -> "server error"
        in
        raise (Bad msg));
    let verdict =
      match Jsonout.member "verdict" j with
      | Some (Jsonout.Str "triangle-free") -> Tfree.Tester.Triangle_free
      | Some (Jsonout.Str "triangle") -> (
          match Jsonout.member "witness" j with
          | Some (Jsonout.List [ a; b; c ]) ->
              let v x =
                match Jsonout.to_float x with
                | Some f -> int_of_float f
                | None -> raise (Bad "witness must be three vertices")
              in
              Tfree.Tester.Triangle (v a, v b, v c)
          | _ -> raise (Bad "triangle verdict without witness"))
      | _ -> raise (Bad "missing verdict")
    in
    let i k = int_field j k 0 in
    Ok
      {
        verdict;
        bits = i "bits";
        rounds = i "rounds";
        max_message = i "max_message";
        wire =
          {
            Wire_runtime.wire_bytes = i "wire_bytes";
            frames = i "frames";
            payload_bits = i "payload_bits";
            framing_overhead_bits = i "framing_overhead_bits";
            accounted_bits = i "accounted_bits";
            ratio = num_field j "ratio" 0.0;
          };
      }
  with Bad msg -> Error msg

(* ---------------------------------------------------------- run a query *)

(** Build the requested instance, run the requested protocol over a wire
    network, reconcile.  The whole execution is deterministic in the
    request's seed (and fault spec).  The network is closed even when an
    injected fault aborts the run, so a chaos loop cannot leak
    descriptors. *)
let run_request req =
  let fault =
    match Fault.parse req.fault with
    | Ok s -> s
    | Error msg -> invalid_arg (Printf.sprintf "run_request: bad fault spec: %s" msg)
  in
  let rng = Rng.create req.seed in
  let g = build_instance req.family rng ~n:req.n ~d:req.d ~eps:req.eps in
  let inputs = build_partition req.partition rng ~k:req.k g in
  let net = Wire_runtime.create ~fault ~transport:req.transport ~k:req.k () in
  Fun.protect
    ~finally:(fun () -> Wire_runtime.close net)
    (fun () ->
      let tap = Wire_runtime.tap net in
      let params = Tfree.Params.(with_eps practical req.eps) in
      let report =
        match req.protocol with
        | Unrestricted -> Tfree.Tester.unrestricted ~tap ~seed:req.seed params inputs
        | Sim ->
            Tfree.Tester.simultaneous ~tap ~seed:req.seed params ~d:(Graph.avg_degree g) inputs
        | Oblivious -> Tfree.Tester.simultaneous_oblivious ~tap ~seed:req.seed params inputs
        | Exact -> Tfree.Tester.exact ~tap ~seed:req.seed inputs
      in
      let wire = Wire_runtime.report net ~accounted_bits:report.Tfree.Tester.bits in
      {
        verdict = report.Tfree.Tester.verdict;
        bits = report.Tfree.Tester.bits;
        rounds = report.Tfree.Tester.rounds;
        max_message = report.Tfree.Tester.max_message;
        wire;
      })

(* ------------------------------------------------------- line transport *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let write_line fd s = write_all fd (s ^ "\n")

type line_read =
  | Line of string  (** a complete newline-terminated line *)
  | Eof  (** orderly close with nothing buffered *)
  | Partial of string  (** the peer vanished mid-line; never process this *)
  | Timed_out  (** the deadline expired before the newline arrived *)

(* Read one line byte-by-byte under a wall-clock deadline.  The select
   before every read keeps a silent or half-dead peer from pinning the
   server; a connection reset surfaces as [Partial]/[Eof] rather than an
   exception so the caller's accounting stays simple. *)
let read_line_deadline fd ~deadline =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let finish_eof () = if Buffer.length buf = 0 then Eof else Partial (Buffer.contents buf) in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Timed_out
    else
      match Unix.select [ fd ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> Timed_out
      | _ -> (
          match Unix.read fd one 0 1 with
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> finish_eof ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | 0 -> finish_eof ()
          | _ ->
              let c = Bytes.get one 0 in
              if c = '\n' then Line (Buffer.contents buf)
              else (
                Buffer.add_char buf c;
                loop ()))
  in
  loop ()

let read_line_fd ?(timeout_s = 30.0) fd =
  match read_line_deadline fd ~deadline:(Unix.gettimeofday () +. timeout_s) with
  | Line l -> Some l
  | Eof | Partial _ | Timed_out -> None

let error_line ~category msg =
  Jsonout.to_line
    (Jsonout.Obj
       [
         ("ok", Jsonout.Bool false);
         ("error", Jsonout.Str msg);
         ("category", Jsonout.Str (Metrics.category_name category));
       ])

(* One request line -> one reply line.  Sets [stop] on a shutdown command;
   returns whether the line was a successfully served protocol query (the
   unit the [max_requests] budget and the served counter measure).  All
   failure shapes — unparseable JSON, unknown command or op, bad request
   field, a run that raises — reply with a structured, categorized error
   and record it under that category; the connection stays usable either
   way.  A wire fault surfacing from the run keeps its own category
   (timeout/transport) so an operator can tell chaos from bad input. *)
let handle_line ~metrics ~stop line =
  let err category msg =
    Metrics.record_error metrics ~category;
    (error_line ~category msg, false)
  in
  match Jsonout.parse line with
  | Error msg -> err Metrics.Malformed ("bad JSON: " ^ msg)
  | Ok j -> (
      match (Jsonout.member "cmd" j, Jsonout.member "op" j) with
      | Some (Jsonout.Str "shutdown"), _ ->
          stop := true;
          (Jsonout.to_line (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("bye", Jsonout.Bool true) ]), false)
      | Some (Jsonout.Str c), _ -> err Metrics.Malformed (Printf.sprintf "unknown command %S" c)
      | Some _, _ -> err Metrics.Malformed "cmd must be a string"
      | None, Some (Jsonout.Str "stats") ->
          ( Jsonout.to_line
              (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("stats", Metrics.to_json metrics) ]),
            false )
      | None, Some (Jsonout.Str o) -> err Metrics.Unknown_op (Printf.sprintf "unknown op %S" o)
      | None, Some _ -> err Metrics.Malformed "op must be a string"
      | None, None -> (
          match request_of_json j with
          | Error msg -> err Metrics.Malformed msg
          | Ok req -> (
              let t0 = Unix.gettimeofday () in
              match run_request req with
              | resp ->
                  Metrics.record_query metrics
                    ~protocol:(protocol_to_string req.protocol)
                    ~found_triangle:
                      (match resp.verdict with
                      | Tfree.Tester.Triangle _ -> true
                      | Tfree.Tester.Triangle_free -> false)
                    ~wire_bytes:resp.wire.Wire_runtime.wire_bytes
                    ~accounted_bits:resp.wire.Wire_runtime.accounted_bits
                    ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6);
                  (Jsonout.to_line (response_to_json resp), true)
              | exception Wire_error.Wire_error k ->
                  err (Metrics.category_of_name (Wire_error.category k)) (Wire_error.message k)
              | exception e -> err Metrics.Run_failure (Printexc.to_string e))))

(* Reply-level fault injection: the [op]-th reply the server writes (0-based
   across the whole server lifetime) suffers the scheduled fault.  [Drop]
   and [Close] cost the client its connection; [Corrupt] garbles one bit of
   the line body (the newline survives, so the client reads a line that
   fails to parse); [Truncate] sends a proper prefix and closes; [Delay]
   holds the reply [amount] milliseconds; [Partial] splits the write in two
   (same bytes — the client must not notice).  Every firing bumps the
   injected-fault tally, never the error counters: the fault is ours. *)
let inject_reply ~metrics ~fault ~op fd reply =
  match Fault.find fault op with
  | None ->
      write_line fd reply;
      `Keep
  | Some kind -> (
      Metrics.record_injected metrics;
      match kind with
      | Fault.Drop | Fault.Close -> `Close
      | Fault.Corrupt { bit } ->
          let b = Bytes.of_string reply in
          let nbits = 8 * Bytes.length b in
          if nbits > 0 then begin
            let i = ((bit mod nbits) + nbits) mod nbits in
            let byte = i / 8 and off = i mod 8 in
            Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl off)))
          end;
          write_line fd (Bytes.to_string b);
          `Keep
      | Fault.Truncate { keep } ->
          let s = reply ^ "\n" in
          write_all fd (String.sub s 0 (min (max keep 0) (max 0 (String.length s - 1))));
          `Close
      | Fault.Delay { amount } ->
          Unix.sleepf (float_of_int (max amount 0) /. 1000.0);
          write_line fd reply;
          `Keep
      | Fault.Partial { at } ->
          let s = reply ^ "\n" in
          let cut = max 1 (min at (String.length s - 1)) in
          write_all fd (String.sub s 0 cut);
          write_all fd (String.sub s cut (String.length s - cut));
          `Keep)

(** Serve requests on a Unix-domain socket at [path] until a shutdown
    command (or [max_requests] queries) arrives.  Returns the number of
    queries served.  [line_timeout_s] bounds how long one connection may
    hold the server waiting for a newline; [fault] injects scheduled faults
    into the server's own replies (chaos testing the client's retry path).
    No client behaviour — killed mid-line, flooding garbage, going silent —
    takes the daemon down; each costs a categorized error counter and at
    worst its own connection. *)
let serve ?max_requests ?(line_timeout_s = 30.0) ?(fault = []) ~path () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 8
   with e ->
     cleanup ();
     raise e);
  let metrics = Metrics.create () in
  let served = ref 0 and stop = ref false and reply_op = ref 0 in
  let budget_left () = match max_requests with None -> true | Some m -> !served < m in
  while (not !stop) && budget_left () do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | conn, _ ->
        let transport_error () = Metrics.record_error metrics ~category:Metrics.Transport in
        let rec conn_loop () =
          if (not !stop) && budget_left () then
            match read_line_deadline conn ~deadline:(Unix.gettimeofday () +. line_timeout_s) with
            | Eof -> ()
            | Partial _ ->
                (* the client died mid-line; a half request is not a request *)
                transport_error ()
            | Timed_out ->
                Metrics.record_error metrics ~category:Metrics.Timeout;
                (try write_line conn (error_line ~category:Metrics.Timeout "read timed out")
                 with Unix.Unix_error _ -> ())
            | Line line -> (
                let reply, was_query = handle_line ~metrics ~stop line in
                let op = !reply_op in
                incr reply_op;
                match inject_reply ~metrics ~fault ~op conn reply with
                | `Keep ->
                    if was_query then incr served;
                    conn_loop ()
                | `Close -> if was_query then incr served
                | exception Unix.Unix_error _ ->
                    (* the peer closed before the reply landed *)
                    transport_error ())
        in
        (try conn_loop () with _ -> transport_error ());
        (try Unix.close conn with Unix.Unix_error _ -> ())
  done;
  cleanup ();
  !served

(* ---------------------------------------------------------------- client *)

let with_connection ~path f =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      f sock)

(* One connect/write/read attempt, classified: [`Transient] failures are
   worth retrying (the server may be restarting, the reply may have been
   garbled by a fault), [`Fatal] ones are the server telling us the request
   itself is wrong.  A structured error reply is fatal unless its category
   is timeout/transport — those describe the wire, not the request. *)
let attempt_query ~timeout_s ~path req =
  match
    with_connection ~path (fun sock ->
        write_line sock (Jsonout.to_line (request_to_json req));
        match read_line_deadline sock ~deadline:(Unix.gettimeofday () +. timeout_s) with
        | Eof | Partial _ -> Error (`Transient, "server closed the connection")
        | Timed_out -> Error (`Transient, "reply timed out")
        | Line line -> (
            match Jsonout.parse line with
            | Error msg -> Error (`Transient, "bad reply JSON: " ^ msg)
            | Ok j -> (
                match Jsonout.member "ok" j with
                | Some (Jsonout.Bool false) ->
                    let msg =
                      match Jsonout.member "error" j with
                      | Some (Jsonout.Str s) -> s
                      | _ -> "server error"
                    in
                    let transient =
                      match Jsonout.member "category" j with
                      | Some (Jsonout.Str ("timeout" | "transport")) -> true
                      | _ -> false
                    in
                    Error ((if transient then `Transient else `Fatal), msg)
                | _ -> (
                    match response_of_json j with
                    | Ok resp -> Ok resp
                    | Error msg -> Error (`Transient, "garbled reply: " ^ msg)))))
  with
  | v -> v
  | exception Unix.Unix_error (e, fn, _) ->
      Error (`Transient, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Wire_error.Wire_error k -> Error (`Transient, Wire_error.message k)

(** Send one request to a server at [path]; wait up to [timeout_s] for the
    reply.  Transient failures retry up to [retries] more times with
    exponential backoff ([backoff_s · 2^attempt] plus up to 25% jitter,
    deterministic in [backoff_seed]); each retry is tallied in [metrics]
    when given.  Fatal server rejections return immediately. *)
let client_query ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ~path req =
  let rng = Rng.create (0xc11e47 + (31 * backoff_seed)) in
  let rec go attempt =
    match attempt_query ~timeout_s ~path req with
    | Ok resp -> Ok resp
    | Error (`Fatal, msg) -> Error msg
    | Error (`Transient, msg) ->
        if attempt >= retries then Error msg
        else begin
          (match metrics with Some m -> Metrics.record_retry m | None -> ());
          let base = backoff_s *. (2.0 ** float_of_int attempt) in
          Unix.sleepf (base +. (base *. 0.25 *. Rng.float rng));
          go (attempt + 1)
        end
  in
  go 0

(** Fetch the server's telemetry ([{"op": "stats"}]); returns the [stats]
    object of the reply. *)
let client_stats ?(timeout_s = 30.0) ~path () =
  with_connection ~path (fun sock ->
      write_line sock (Jsonout.to_line (Jsonout.Obj [ ("op", Jsonout.Str "stats") ]));
      match read_line_fd ~timeout_s sock with
      | None -> Error "server closed the connection"
      | Some line -> (
          match Jsonout.parse line with
          | Error msg -> Error ("bad reply JSON: " ^ msg)
          | Ok j -> (
              match (Jsonout.member "ok" j, Jsonout.member "stats" j) with
              | Some (Jsonout.Bool true), Some stats -> Ok stats
              | _ ->
                  Error
                    (match Jsonout.member "error" j with
                    | Some (Jsonout.Str s) -> s
                    | _ -> "server error"))))

(** Ask a server at [path] to shut down. *)
let client_shutdown ~path =
  with_connection ~path (fun sock ->
      write_line sock (Jsonout.to_line (Jsonout.Obj [ ("cmd", Jsonout.Str "shutdown") ]));
      ignore (read_line_fd sock))
