(* tfree-serve — a query service over Unix-domain sockets.

   Protocol: one JSON value per line, both directions.  A request names an
   instance family, an edge partition and a protocol (the same enums the
   tfree CLI exposes) plus size parameters; the server builds the instance,
   runs the protocol through a {!Wire_runtime} network — so every charged
   message crosses a real transport — and replies with the verdict, the
   accounted bits and the measured wire traffic, reconciled.

   A request of the form [{"cmd": "shutdown"}] stops the server after the
   acknowledgement is written.  [{"op": "stats"}] returns the server's
   telemetry ({!Metrics}): queries served, per-protocol verdict counts,
   categorized error counts, retry and injected-fault tallies, connection
   and cache gauges, wire traffic totals and latency quantiles.
   [{"op": "batch", "requests": [...]}] runs many queries over one framed
   exchange and returns per-item verdicts in order — one line out, one line
   back, amortizing the JSON-line framing across the batch.

   The server is a single-threaded select event loop: every open
   connection owns a read buffer and a per-line deadline, so a slow,
   silent or chaos-faulted client costs at most its own connection while
   the loop keeps serving everyone else.  Admission is bounded by
   [max_clients]; a connection over the cap is shed with a typed
   [overload]-category error, never a hang.  Instances and partitions are
   memoized in a bounded {!Tfree_util.Lru} keyed by the request fields
   that determine them, so repeated seeds skip the rebuild (hits and
   misses are surfaced through the stats op).

   The server is built to degrade, never die: malformed lines get a
   structured [{"ok": false, "error": ..., "category": ...}] reply and the
   connection stays usable; a client killed mid-line, a half-written
   request, a reply write into a closed socket, or a silent client holding
   the line past the read deadline each cost one categorized error counter
   and at worst that one connection.  SIGPIPE is ignored for the same
   reason — a dead peer must surface as an [EPIPE] result, not a signal.

   The client side mirrors this with {!client_query}'s bounded retry:
   transient failures (connection refused, timeouts, garbled or truncated
   replies, server errors in the timeout/transport/overload categories)
   back off exponentially with deterministic jitter and try again;
   structured server rejections (malformed request, unknown op) are fatal
   immediately. *)

open Tfree_util
open Tfree_graph
module Phase = Tfree_obs.Phase
module Mono = Tfree_obs.Mono
module Logger = Tfree_obs.Logger
module Prom = Tfree_obs.Prom
module Trace = Tfree_trace.Trace

(* ------------------------------------------------------ the CLI's enums *)

type family = Far | Free | Hub | Mu | Gnp | Behrend | Diluted
type partition_kind = Disjoint | Dup | Replicate | Skewed | Hash
type protocol = Unrestricted | Sim | Oblivious | Exact

let family_to_string = function
  | Far -> "far"
  | Free -> "free"
  | Hub -> "hub"
  | Mu -> "mu"
  | Gnp -> "gnp"
  | Behrend -> "behrend"
  | Diluted -> "diluted"

let family_of_string = function
  | "far" -> Some Far
  | "free" -> Some Free
  | "hub" -> Some Hub
  | "mu" -> Some Mu
  | "gnp" -> Some Gnp
  | "behrend" -> Some Behrend
  | "diluted" -> Some Diluted
  | _ -> None

let partition_to_string = function
  | Disjoint -> "disjoint"
  | Dup -> "dup"
  | Replicate -> "replicate"
  | Skewed -> "skewed"
  | Hash -> "hash"

let partition_of_string = function
  | "disjoint" -> Some Disjoint
  | "dup" -> Some Dup
  | "replicate" -> Some Replicate
  | "skewed" -> Some Skewed
  | "hash" -> Some Hash
  | _ -> None

let protocol_to_string = function
  | Unrestricted -> "unrestricted"
  | Sim -> "sim"
  | Oblivious -> "oblivious"
  | Exact -> "exact"

let protocol_of_string = function
  | "unrestricted" -> Some Unrestricted
  | "sim" -> Some Sim
  | "oblivious" -> Some Oblivious
  | "exact" -> Some Exact
  | _ -> None

(* ------------------------------------------------------------- builders *)

let build_instance family rng ~n ~d ~eps =
  match family with
  | Far -> Gen.far_with_degree rng ~n ~d ~eps
  | Free -> Gen.free_with_degree rng ~n ~d
  | Hub ->
      Gen.hub_far rng ~n ~hubs:(max 1 (n / 400))
        ~pairs:(max 1 (int_of_float (eps *. float_of_int n *. d /. 2.0)))
  | Mu -> Tfree_lowerbound.Mu_dist.sample rng ~part:(n / 3) ~gamma:2.0
  | Gnp -> Gen.gnp rng ~n ~p:(Float.min 1.0 (d /. float_of_int n))
  | Behrend ->
      (* pick digits/base so 6·(2·base)^digits is near n *)
      let base = max 2 (int_of_float (sqrt (float_of_int n /. 24.0))) in
      (Behrend.instance ~rng ~base ~digits:2 ()).Behrend.graph
  | Diluted ->
      let extra = max 1 (int_of_float (1.0 /. (3.0 *. eps)) - 1) in
      let triangles = max 1 (n / (3 * (1 + extra))) in
      Gen.diluted_far rng ~triangles ~extra_degree:extra

let build_partition kind rng ~k g =
  match kind with
  | Disjoint -> Partition.disjoint_random rng ~k g
  | Dup -> Partition.with_duplication rng ~k ~dup_p:0.3 g
  | Replicate -> Partition.replicate ~k g
  | Skewed -> Partition.skewed rng ~k ~bias:0.8 g
  | Hash -> Partition.by_endpoint_hash rng ~k g

(* ------------------------------------------------------------- requests *)

type request = {
  family : family;
  partition : partition_kind;
  protocol : protocol;
  n : int;
  d : float;
  k : int;
  eps : float;
  seed : int;
  transport : Wire_runtime.kind;
  fault : string;  (** {!Fault.parse} spec injected below the framing; [""] = none *)
}

let default_request =
  {
    family = Far;
    partition = Dup;
    protocol = Oblivious;
    n = 300;
    d = 6.0;
    k = 4;
    eps = 0.1;
    seed = 1;
    transport = Wire_runtime.Pipe;
    fault = "";
  }

type response = {
  verdict : Tfree.Tester.verdict;
  bits : int;
  rounds : int;
  max_message : int;
  wire : Wire_runtime.report;
}

(* A [{"op": "dataset"}] query: the same protocol/partition/k/eps/seed
   vocabulary as a generated request, but the graph comes from the server's
   dataset registry by name — family/n/d have no say. *)
type dataset_request = {
  ds_name : string;
  ds_partition : partition_kind;
  ds_protocol : protocol;
  ds_k : int;
  ds_eps : float;
  ds_seed : int;
  ds_transport : Wire_runtime.kind;
  ds_fault : string;
}

let default_dataset_request ~name =
  {
    ds_name = name;
    ds_partition = Dup;
    ds_protocol = Oblivious;
    ds_k = 4;
    ds_eps = 0.1;
    ds_seed = 1;
    ds_transport = Wire_runtime.Pipe;
    ds_fault = "";
  }

(* ----------------------------------------------------------------- JSON *)

let request_to_json r =
  Jsonout.Obj
    [
      ("family", Jsonout.Str (family_to_string r.family));
      ("partition", Jsonout.Str (partition_to_string r.partition));
      ("protocol", Jsonout.Str (protocol_to_string r.protocol));
      ("n", Jsonout.Num (float_of_int r.n));
      ("d", Jsonout.Num r.d);
      ("k", Jsonout.Num (float_of_int r.k));
      ("eps", Jsonout.Num r.eps);
      ("seed", Jsonout.Num (float_of_int r.seed));
      ("transport", Jsonout.Str (Wire_runtime.kind_to_string r.transport));
      ("fault", Jsonout.Str r.fault);
    ]

exception Bad of string

let num_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some v -> (
      match Jsonout.to_float v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "field %S must be a number" k)))

let int_field j k default = int_of_float (num_field j k (float_of_int default))

let str_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> s
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let enum_field j k of_string default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> (
      match of_string s with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "unknown %s %S" k s)))
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let request_of_json j =
  try
    let r = default_request in
    Ok
      {
        family = enum_field j "family" family_of_string r.family;
        partition = enum_field j "partition" partition_of_string r.partition;
        protocol = enum_field j "protocol" protocol_of_string r.protocol;
        n = int_field j "n" r.n;
        d = num_field j "d" r.d;
        k = int_field j "k" r.k;
        eps = num_field j "eps" r.eps;
        seed = int_field j "seed" r.seed;
        transport = enum_field j "transport" Wire_runtime.kind_of_string r.transport;
        fault =
          (let s = str_field j "fault" r.fault in
           match Fault.parse s with
           | Ok _ -> s
           | Error msg -> raise (Bad (Printf.sprintf "bad fault spec: %s" msg)));
      }
  with Bad msg -> Error msg

let dataset_request_to_json r =
  Jsonout.Obj
    [
      ("op", Jsonout.Str "dataset");
      ("name", Jsonout.Str r.ds_name);
      ("partition", Jsonout.Str (partition_to_string r.ds_partition));
      ("protocol", Jsonout.Str (protocol_to_string r.ds_protocol));
      ("k", Jsonout.Num (float_of_int r.ds_k));
      ("eps", Jsonout.Num r.ds_eps);
      ("seed", Jsonout.Num (float_of_int r.ds_seed));
      ("transport", Jsonout.Str (Wire_runtime.kind_to_string r.ds_transport));
      ("fault", Jsonout.Str r.ds_fault);
    ]

let dataset_request_of_json j =
  try
    let name =
      match Jsonout.member "name" j with
      | Some (Jsonout.Str "") -> raise (Bad "dataset name must be non-empty")
      | Some (Jsonout.Str s) -> s
      | Some _ -> raise (Bad "field \"name\" must be a string")
      | None -> raise (Bad "dataset request without a \"name\"")
    in
    let r = default_dataset_request ~name in
    Ok
      {
        r with
        ds_partition = enum_field j "partition" partition_of_string r.ds_partition;
        ds_protocol = enum_field j "protocol" protocol_of_string r.ds_protocol;
        ds_k = int_field j "k" r.ds_k;
        ds_eps = num_field j "eps" r.ds_eps;
        ds_seed = int_field j "seed" r.ds_seed;
        ds_transport = enum_field j "transport" Wire_runtime.kind_of_string r.ds_transport;
        ds_fault =
          (let s = str_field j "fault" r.ds_fault in
           match Fault.parse s with
           | Ok _ -> s
           | Error msg -> raise (Bad (Printf.sprintf "bad fault spec: %s" msg)));
      }
  with Bad msg -> Error msg

let response_to_json r =
  let verdict_fields =
    match r.verdict with
    | Tfree.Tester.Triangle (a, b, c) ->
        [
          ("verdict", Jsonout.Str "triangle");
          ( "witness",
            Jsonout.List
              [
                Jsonout.Num (float_of_int a); Jsonout.Num (float_of_int b);
                Jsonout.Num (float_of_int c);
              ] );
        ]
    | Tfree.Tester.Triangle_free -> [ ("verdict", Jsonout.Str "triangle-free") ]
  in
  let w = r.wire in
  Jsonout.Obj
    (("ok", Jsonout.Bool true)
     :: verdict_fields
    @ [
        ("bits", Jsonout.Num (float_of_int r.bits));
        ("rounds", Jsonout.Num (float_of_int r.rounds));
        ("max_message", Jsonout.Num (float_of_int r.max_message));
        ("wire_bytes", Jsonout.Num (float_of_int w.Wire_runtime.wire_bytes));
        ("frames", Jsonout.Num (float_of_int w.Wire_runtime.frames));
        ("payload_bits", Jsonout.Num (float_of_int w.Wire_runtime.payload_bits));
        ("framing_overhead_bits", Jsonout.Num (float_of_int w.Wire_runtime.framing_overhead_bits));
        ("accounted_bits", Jsonout.Num (float_of_int w.Wire_runtime.accounted_bits));
        ("ratio", Jsonout.Num w.Wire_runtime.ratio);
        ("reconciled", Jsonout.Bool (Wire_runtime.reconciles w));
      ])

let response_of_json j =
  try
    (match Jsonout.member "ok" j with
    | Some (Jsonout.Bool true) -> ()
    | _ ->
        let msg =
          match Jsonout.member "error" j with Some (Jsonout.Str s) -> s | _ -> "server error"
        in
        raise (Bad msg));
    let verdict =
      match Jsonout.member "verdict" j with
      | Some (Jsonout.Str "triangle-free") -> Tfree.Tester.Triangle_free
      | Some (Jsonout.Str "triangle") -> (
          match Jsonout.member "witness" j with
          | Some (Jsonout.List [ a; b; c ]) ->
              let v x =
                match Jsonout.to_float x with
                | Some f -> int_of_float f
                | None -> raise (Bad "witness must be three vertices")
              in
              Tfree.Tester.Triangle (v a, v b, v c)
          | _ -> raise (Bad "triangle verdict without witness"))
      | _ -> raise (Bad "missing verdict")
    in
    let i k = int_field j k 0 in
    Ok
      {
        verdict;
        bits = i "bits";
        rounds = i "rounds";
        max_message = i "max_message";
        wire =
          {
            Wire_runtime.wire_bytes = i "wire_bytes";
            frames = i "frames";
            payload_bits = i "payload_bits";
            framing_overhead_bits = i "framing_overhead_bits";
            accounted_bits = i "accounted_bits";
            ratio = num_field j "ratio" 0.0;
          };
      }
  with Bad msg -> Error msg

(* ------------------------------------------- binary protocol v2 layout *)

(* Protocol v2 carries the same request/reply/batch/stats shapes as the
   JSON lines, as fixed binary layouts inside {!Proto} frames (varint
   length prefix + body + 2-byte checksum).  One tag byte opens every
   body; integers travel as zigzag varints, floats as little-endian
   binary64, strings as varint-length-prefixed bytes.  The layouts are
   fixed — unknown tags and trailing bytes are typed errors, not
   extensions — because a byte stream cannot resync on guesswork.

   Encoding pokes bytes into a caller-owned {!Proto.buf} and decoding
   reads scalars out of a caller-owned {!Proto.cursor}, so the serve hot
   path allocates nothing per query beyond the decoded request record
   itself (the micro benchmark holds this to a [Gc.minor_words] budget).

   Structural failures (bytes missing, varint overflow) raise the typed
   {!Wire_error.Wire_error}; semantic ones (enum code out of range, bad
   fault spec) return [Error msg] so the server can answer a malformed
   frame the way it answers a malformed line — typed reply, connection
   kept. *)

let tag_query = 1
let tag_reply = 2
let tag_error = 3
let tag_batch = 4
let tag_batch_reply = 5
let tag_stats = 6
let tag_stats_reply = 7
let tag_shutdown = 8
let tag_bye = 9
let tag_dataset = 10
let tag_health = 11
let tag_health_reply = 12

(* enum codes: stable on the wire, dense for a match-based decode *)

let family_code = function
  | Far -> 0
  | Free -> 1
  | Hub -> 2
  | Mu -> 3
  | Gnp -> 4
  | Behrend -> 5
  | Diluted -> 6

let family_of_code = function
  | 0 -> Some Far
  | 1 -> Some Free
  | 2 -> Some Hub
  | 3 -> Some Mu
  | 4 -> Some Gnp
  | 5 -> Some Behrend
  | 6 -> Some Diluted
  | _ -> None

let partition_code = function Disjoint -> 0 | Dup -> 1 | Replicate -> 2 | Skewed -> 3 | Hash -> 4

let partition_of_code = function
  | 0 -> Some Disjoint
  | 1 -> Some Dup
  | 2 -> Some Replicate
  | 3 -> Some Skewed
  | 4 -> Some Hash
  | _ -> None

let protocol_code = function Unrestricted -> 0 | Sim -> 1 | Oblivious -> 2 | Exact -> 3

let protocol_of_code = function
  | 0 -> Some Unrestricted
  | 1 -> Some Sim
  | 2 -> Some Oblivious
  | 3 -> Some Exact
  | _ -> None

let transport_code = function Wire_runtime.Pipe -> 0 | Wire_runtime.Socketpair -> 1

let transport_of_code = function
  | 0 -> Some Wire_runtime.Pipe
  | 1 -> Some Wire_runtime.Socketpair
  | _ -> None

(* error categories travel as their index in {!Metrics.all_categories} *)

let category_code category =
  let rec go i = function [] -> 0 | c :: rest -> if c = category then i else go (i + 1) rest in
  go 0 Metrics.all_categories

let category_of_code i =
  match List.nth_opt Metrics.all_categories i with Some c -> c | None -> Metrics.Run_failure

(* query body: 4 enum bytes, 3 zigzag ints, 2 f64, the fault spec *)
let put_request b r =
  Proto.put_u8 b (family_code r.family);
  Proto.put_u8 b (partition_code r.partition);
  Proto.put_u8 b (protocol_code r.protocol);
  Proto.put_u8 b (transport_code r.transport);
  Proto.put_zigzag b r.n;
  Proto.put_zigzag b r.k;
  Proto.put_zigzag b r.seed;
  Proto.put_f64 b r.d;
  Proto.put_f64 b r.eps;
  Proto.put_string b r.fault

(* Structural reads happen unconditionally (a failure raises and fails the
   whole frame); the semantic checks return [Error] so a bad enum code or
   fault spec is a per-request malformed reply, exactly like its JSON
   twin.  The [""] fast path keeps the no-fault hot query from paying a
   [Fault.parse]. *)
let decode_request_body cur =
  let family_c = Proto.get_u8 cur in
  let partition_c = Proto.get_u8 cur in
  let protocol_c = Proto.get_u8 cur in
  let transport_c = Proto.get_u8 cur in
  let n = Proto.get_zigzag cur in
  let k = Proto.get_zigzag cur in
  let seed = Proto.get_zigzag cur in
  let d = Proto.get_f64 cur in
  let eps = Proto.get_f64 cur in
  let fault = Proto.get_string cur in
  match (family_of_code family_c, partition_of_code partition_c, protocol_of_code protocol_c,
         transport_of_code transport_c)
  with
  | Some family, Some partition, Some protocol, Some transport ->
      if fault = "" then Ok { family; partition; protocol; n; d; k; eps; seed; transport; fault }
      else (
        match Fault.parse fault with
        | Ok _ -> Ok { family; partition; protocol; n; d; k; eps; seed; transport; fault }
        | Error msg -> Error (Printf.sprintf "bad fault spec: %s" msg))
  | None, _, _, _ -> Error (Printf.sprintf "unknown family code %d" family_c)
  | _, None, _, _ -> Error (Printf.sprintf "unknown partition code %d" partition_c)
  | _, _, None, _ -> Error (Printf.sprintf "unknown protocol code %d" protocol_c)
  | _, _, _, None -> Error (Printf.sprintf "unknown transport code %d" transport_c)

(* reply body: verdict (+ witness), the counters, the reconciled wire report *)
let put_response b r =
  (match r.verdict with
  | Tfree.Tester.Triangle_free -> Proto.put_u8 b 0
  | Tfree.Tester.Triangle (x, y, z) ->
      Proto.put_u8 b 1;
      Proto.put_zigzag b x;
      Proto.put_zigzag b y;
      Proto.put_zigzag b z);
  Proto.put_zigzag b r.bits;
  Proto.put_zigzag b r.rounds;
  Proto.put_zigzag b r.max_message;
  let w = r.wire in
  Proto.put_zigzag b w.Wire_runtime.wire_bytes;
  Proto.put_zigzag b w.Wire_runtime.frames;
  Proto.put_zigzag b w.Wire_runtime.payload_bits;
  Proto.put_zigzag b w.Wire_runtime.framing_overhead_bits;
  Proto.put_zigzag b w.Wire_runtime.accounted_bits;
  Proto.put_f64 b w.Wire_runtime.ratio

let decode_response_body cur =
  let verdict =
    match Proto.get_u8 cur with
    | 0 -> Tfree.Tester.Triangle_free
    | 1 ->
        let x = Proto.get_zigzag cur in
        let y = Proto.get_zigzag cur in
        let z = Proto.get_zigzag cur in
        Tfree.Tester.Triangle (x, y, z)
    | v -> Wire_error.errorf_corrupt "unknown verdict code %d" v
  in
  let bits = Proto.get_zigzag cur in
  let rounds = Proto.get_zigzag cur in
  let max_message = Proto.get_zigzag cur in
  let wire_bytes = Proto.get_zigzag cur in
  let frames = Proto.get_zigzag cur in
  let payload_bits = Proto.get_zigzag cur in
  let framing_overhead_bits = Proto.get_zigzag cur in
  let accounted_bits = Proto.get_zigzag cur in
  let ratio = Proto.get_f64 cur in
  {
    verdict;
    bits;
    rounds;
    max_message;
    wire =
      {
        Wire_runtime.wire_bytes;
        frames;
        payload_bits;
        framing_overhead_bits;
        accounted_bits;
        ratio;
      };
  }

let encode_query_frame b r =
  Proto.begin_frame b;
  Proto.put_u8 b tag_query;
  put_request b r;
  Proto.end_frame b

let encode_response_frame b r =
  Proto.begin_frame b;
  Proto.put_u8 b tag_reply;
  put_response b r;
  Proto.end_frame b

let encode_error_frame b ~category msg =
  Proto.begin_frame b;
  Proto.put_u8 b tag_error;
  Proto.put_u8 b (category_code category);
  Proto.put_string b msg;
  Proto.end_frame b

let encode_batch_frame b reqs =
  Proto.begin_frame b;
  Proto.put_u8 b tag_batch;
  Proto.put_varint b (List.length reqs);
  List.iter (fun r -> put_request b r) reqs;
  Proto.end_frame b

(* The all-ok batch reply, byte-identical to what [handle_frame] writes
   when every item serves — the load generator re-encodes expected replies
   with this to account the server's per-version byte gauge exactly. *)
let encode_batch_reply_frame b resps =
  Proto.begin_frame b;
  Proto.put_u8 b tag_batch_reply;
  Proto.put_varint b (List.length resps);
  List.iter
    (fun resp ->
      Proto.put_u8 b tag_reply;
      put_response b resp)
    resps;
  Proto.end_frame b

let encode_stats_frame b =
  Proto.begin_frame b;
  Proto.put_u8 b tag_stats;
  Proto.end_frame b

let encode_health_frame b =
  Proto.begin_frame b;
  Proto.put_u8 b tag_health;
  Proto.end_frame b

let encode_shutdown_frame b =
  Proto.begin_frame b;
  Proto.put_u8 b tag_shutdown;
  Proto.end_frame b

(* dataset query body: the registered name, 3 enum bytes, 2 zigzag ints,
   1 f64, the fault spec — the binary twin of the {"op": "dataset"} line *)
let put_dataset_request b r =
  Proto.put_string b r.ds_name;
  Proto.put_u8 b (partition_code r.ds_partition);
  Proto.put_u8 b (protocol_code r.ds_protocol);
  Proto.put_u8 b (transport_code r.ds_transport);
  Proto.put_zigzag b r.ds_k;
  Proto.put_zigzag b r.ds_seed;
  Proto.put_f64 b r.ds_eps;
  Proto.put_string b r.ds_fault

let decode_dataset_request_body cur =
  let name = Proto.get_string cur in
  let partition_c = Proto.get_u8 cur in
  let protocol_c = Proto.get_u8 cur in
  let transport_c = Proto.get_u8 cur in
  let k = Proto.get_zigzag cur in
  let seed = Proto.get_zigzag cur in
  let eps = Proto.get_f64 cur in
  let fault = Proto.get_string cur in
  if name = "" then Error "dataset name must be non-empty"
  else
    match (partition_of_code partition_c, protocol_of_code protocol_c, transport_of_code transport_c)
    with
    | Some partition, Some protocol, Some transport ->
        let r =
          {
            ds_name = name;
            ds_partition = partition;
            ds_protocol = protocol;
            ds_k = k;
            ds_eps = eps;
            ds_seed = seed;
            ds_transport = transport;
            ds_fault = fault;
          }
        in
        if fault = "" then Ok r
        else (
          match Fault.parse fault with
          | Ok _ -> Ok r
          | Error msg -> Error (Printf.sprintf "bad fault spec: %s" msg))
    | None, _, _ -> Error (Printf.sprintf "unknown partition code %d" partition_c)
    | _, None, _ -> Error (Printf.sprintf "unknown protocol code %d" protocol_c)
    | _, _, None -> Error (Printf.sprintf "unknown transport code %d" transport_c)

let encode_dataset_frame b r =
  Proto.begin_frame b;
  Proto.put_u8 b tag_dataset;
  put_dataset_request b r;
  Proto.end_frame b

(* ------------------------------------------------- the instance cache *)

(* The fields of a request that determine the instance and its partition —
   and nothing else.  Protocol, transport and fault spec are deliberately
   absent: two requests that differ only in how the instance is *queried*
   share the cached build.  A dataset-backed instance is keyed by its
   registered name instead of the generator fields.  Correctness of sharing
   rests on the graph and the partition being derived from independent
   seed-determined streams ({!graph_rng}/{!partition_rng}) and the protocol
   run seeding itself off a fresh [~seed], so a cache hit is bit-identical
   to a rebuild. *)
type instance_key =
  | Key_generated of {
      key_family : family;
      key_partition : partition_kind;
      key_n : int;
      key_d : float;
      key_k : int;
      key_eps : float;
      key_seed : int;
    }
  | Key_dataset of {
      key_name : string;
      key_ds_partition : partition_kind;
      key_ds_k : int;
      key_ds_seed : int;
    }

type instance_cache = (instance_key, Graph.t * Partition.t) Lru.t

let create_cache ?(capacity = 32) () : instance_cache = Lru.create capacity

let key_of_request req =
  Key_generated
    {
      key_family = req.family;
      key_partition = req.partition;
      key_n = req.n;
      key_d = req.d;
      key_k = req.k;
      key_eps = req.eps;
      key_seed = req.seed;
    }

let key_of_dataset_request dreq =
  Key_dataset
    {
      key_name = dreq.ds_name;
      key_ds_partition = dreq.ds_partition;
      key_ds_k = dreq.ds_k;
      key_ds_seed = dreq.ds_seed;
    }

(* ------------------------------------------------------- fleet sharding *)

(* Where a fleet routes a key: FNV-1a over a canonical rendering of every
   field of the instance key.  Deliberately *not* [Hashtbl.hash]: the
   shard of a key must agree across processes, builds and runs — the
   client picks the worker socket from it, and the worker's cache
   hit-rate rests on the agreement.  Floats render in hex ([%h]) so the
   encoding is exact, and the two key arms get distinct prefixes so a
   generated key can never collide with a dataset key by rendering. *)
let shard_key key =
  let canonical =
    match key with
    | Key_generated k ->
        Printf.sprintf "g|%s|%s|%d|%h|%d|%h|%d"
          (family_to_string k.key_family)
          (partition_to_string k.key_partition)
          k.key_n k.key_d k.key_k k.key_eps k.key_seed
    | Key_dataset k ->
        Printf.sprintf "d|%s|%s|%d|%d" k.key_name
          (partition_to_string k.key_ds_partition)
          k.key_ds_k k.key_ds_seed
  in
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) canonical;
  (* xor-fold the high half in, then drop to 30 bits so the result is a
     nonnegative immediate int on every platform *)
  (!h lxor (!h lsr 16)) land 0x3FFFFFFF

let shard_of_key ~workers key = if workers <= 1 then 0 else shard_key key mod workers
let shard_of_request ~workers req = shard_of_key ~workers (key_of_request req)

let shard_of_dataset_request ~workers dreq =
  shard_of_key ~workers (key_of_dataset_request dreq)

(* The shard socket of fleet worker [i] under a fleet at [path]. *)
let worker_path ~path i = Printf.sprintf "%s.w%d" path i

(* The graph and the partition come from *independent* seed-determined
   streams.  This is what lets a dataset-backed query (whose graph comes
   off disk, consuming no randomness) partition identically to the
   generated query of the same seed — the byte-identical-replies
   guarantee the dataset tests pin down. *)
let graph_rng seed = Rng.create seed
let partition_rng seed = Rng.create (seed lxor 0x7ea5eed)

let build_pair req =
  let g = build_instance req.family (graph_rng req.seed) ~n:req.n ~d:req.d ~eps:req.eps in
  let inputs = build_partition req.partition (partition_rng req.seed) ~k:req.k g in
  (g, inputs)

(* The cached instance/partition pair for [req], built on a miss.  Each call
   is one counted lookup; [metrics] mirrors the hit/miss into the server
   registry so [{"op": "stats"}] can report it. *)
let instance_pair ?cache ?metrics req =
  match cache with
  | None -> build_pair req
  | Some c ->
      let key = key_of_request req in
      let hit = Lru.mem c key in
      (match metrics with Some m -> Metrics.record_cache m ~hit | None -> ());
      Lru.find_or_add c key (fun () -> build_pair req)

(* The dataset twin: the graph is the registry's memoized load (shared
   across every connection of the daemon), only the partition is built —
   from the same [partition_rng] stream a generated request of this seed
   would use. *)
let dataset_pair ?cache ?metrics ~registry dreq =
  let build () =
    let g = Tfree_dataset.Registry.graph registry dreq.ds_name in
    let inputs =
      build_partition dreq.ds_partition (partition_rng dreq.ds_seed) ~k:dreq.ds_k g
    in
    (g, inputs)
  in
  match cache with
  | None -> build ()
  | Some c ->
      let key = key_of_dataset_request dreq in
      let hit = Lru.mem c key in
      (match metrics with Some m -> Metrics.record_cache m ~hit | None -> ());
      Lru.find_or_add c key build

(* -------------------------------------------------- serve observability *)

(* Ambient per-request observation state.  The serve event loop is
   single-threaded, so one module-level scratch is data-race free; the
   in-process callers (tests, experiments) simply leave tracing and the
   slow-query log off, and still get per-phase histograms through
   [metrics].  [trace] is [Some] only while the loop is handling a
   sampled request unit: it routes protocol messages into the sampled
   timeline and turns the phase timers into {!Trace.span}s. *)
module Obs_ctx = struct
  (* per-phase durations (µs) of the request being handled, for the
     slow-query log's latency breakdown *)
  let scratch = Array.make Phase.count nan

  (* the sampled-request collector, set around a sampled unit *)
  let trace : Trace.t option ref = ref None

  (* accounted bits of every traced run, the trace file's otherData
     reconciliation figure *)
  let traced_bits = ref 0

  (* slow-query log: threshold (µs, on the run phase) and sink *)
  let slow : (float * Logger.t) option ref = ref None
end

(* Time [f] as serve phase [phase]: one histogram sample into [metrics],
   the duration into the slow-query scratch, and — while a sampled trace
   is active — a {!Trace.span} in the request timeline.  Records only
   when [f] returns (an aborted phase is not a completed phase), which is
   what keeps phase counts consistent with served counts. *)
let timed_phase ~metrics phase f =
  let t0 = Mono.now_us () in
  let r =
    match !Obs_ctx.trace with
    | Some _ -> Trace.span (Phase.name phase) f
    | None -> f ()
  in
  let dt = Mono.now_us () -. t0 in
  Metrics.record_phase metrics ~phase ~us:dt;
  Obs_ctx.scratch.(Phase.index phase) <- dt;
  r

(* Emit one slow-query line when the run phase of the query just served
   crossed the threshold: the request key [fields] plus the latency
   breakdown the scratch holds. *)
let maybe_slow_query ~latency_us fields =
  match !Obs_ctx.slow with
  | Some (threshold_us, logger) ->
      let run_us = Obs_ctx.scratch.(Phase.index Phase.Run) in
      if run_us >= threshold_us then
        Logger.log logger Logger.Warn "slow_query"
          (fields
          @ [
              ("run_us", Jsonout.Num run_us);
              ("cache_lookup_us", Jsonout.Num Obs_ctx.scratch.(Phase.index Phase.Cache_lookup));
              ("latency_us", Jsonout.Num latency_us);
            ])
  | None -> ()

(* ---------------------------------------------------------- run a query *)

(** Build the requested instance, run the requested protocol over a wire
    network, reconcile.  The whole execution is deterministic in the
    request's seed (and fault spec) — with or without [cache], whose hits
    return the identical graph/partition a rebuild would produce.  The
    network is closed even when an injected fault aborts the run, so a
    chaos loop cannot leak descriptors. *)
(* The protocol run itself, shared by the generated and dataset paths so
   the two can never drift: same network, same params, same report shape.
   [trace] additionally routes every protocol message into a sampled
   request timeline (composed before the wire tap, so the ledger the wire
   reconciles against is untouched). *)
let run_protocol ?trace ~protocol ~seed ~eps ~transport ~fault ~k g inputs =
  let net = Wire_runtime.create ~fault ~transport ~k () in
  Fun.protect
    ~finally:(fun () -> Wire_runtime.close net)
    (fun () ->
      let tap =
        match trace with
        | None -> Wire_runtime.tap net
        | Some tr -> Tfree_comm.Channel.compose_all [ Trace.tap tr; Wire_runtime.tap net ]
      in
      let params = Tfree.Params.(with_eps practical eps) in
      let report =
        match protocol with
        | Unrestricted -> Tfree.Tester.unrestricted ~tap ~seed params inputs
        | Sim -> Tfree.Tester.simultaneous ~tap ~seed params ~d:(Graph.avg_degree g) inputs
        | Oblivious -> Tfree.Tester.simultaneous_oblivious ~tap ~seed params inputs
        | Exact -> Tfree.Tester.exact ~tap ~seed inputs
      in
      let wire = Wire_runtime.report net ~accounted_bits:report.Tfree.Tester.bits in
      {
        verdict = report.Tfree.Tester.verdict;
        bits = report.Tfree.Tester.bits;
        rounds = report.Tfree.Tester.rounds;
        max_message = report.Tfree.Tester.max_message;
        wire;
      })

let parse_fault_spec ~who spec =
  match Fault.parse spec with
  | Ok s -> s
  | Error msg -> invalid_arg (Printf.sprintf "%s: bad fault spec: %s" who msg)

let run_request ?cache ?metrics req =
  let fault = parse_fault_spec ~who:"run_request" req.fault in
  let g, inputs = instance_pair ?cache ?metrics req in
  run_protocol ~protocol:req.protocol ~seed:req.seed ~eps:req.eps ~transport:req.transport ~fault
    ~k:req.k g inputs

(* Run a protocol over a registered dataset.  Byte-identical to the
   generated path when the dataset was generated with the same seed and
   family parameters: the registry hands back the exact graph
   {!graph_rng} would build, and partition/protocol derive from the same
   streams a generated request uses.
   @raise Dataset_error on an unknown name or a failing load. *)
let run_dataset_request ?cache ?metrics ~registry dreq =
  let fault = parse_fault_spec ~who:"run_dataset_request" dreq.ds_fault in
  let g, inputs = dataset_pair ?cache ?metrics ~registry dreq in
  run_protocol ~protocol:dreq.ds_protocol ~seed:dreq.ds_seed ~eps:dreq.ds_eps
    ~transport:dreq.ds_transport ~fault ~k:dreq.ds_k g inputs

(* ------------------------------------------------------- line transport *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let write_line fd s = write_all fd (s ^ "\n")

type line_read =
  | Line of string  (** a complete newline-terminated line *)
  | Eof  (** orderly close with nothing buffered *)
  | Partial of string  (** the peer vanished mid-line; never process this *)
  | Timed_out  (** the deadline expired before the newline arrived *)

(* Read one line byte-by-byte under a wall-clock deadline.  The poll
   before every read keeps a silent or half-dead peer from pinning the
   server; a connection reset surfaces as [Partial]/[Eof] rather than an
   exception so the caller's accounting stays simple.  {!Evpoll.readable}
   rather than [Unix.select]: a select here crashes with EINVAL the
   moment the process holds any fd >= FD_SETSIZE, which a fleet-scale
   process routinely does. *)
let read_line_deadline fd ~deadline =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let finish_eof () = if Buffer.length buf = 0 then Eof else Partial (Buffer.contents buf) in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Timed_out
    else if not (Evpoll.readable fd ~timeout_s:remaining) then
      (* timeout or EINTR: re-check the deadline and wait again *)
      loop ()
    else
      match Unix.read fd one 0 1 with
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> finish_eof ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | 0 -> finish_eof ()
      | _ ->
          let c = Bytes.get one 0 in
          if c = '\n' then Line (Buffer.contents buf)
          else (
            Buffer.add_char buf c;
            loop ())
  in
  loop ()

let error_obj ~category msg =
  Jsonout.Obj
    [
      ("ok", Jsonout.Bool false);
      ("error", Jsonout.Str msg);
      ("category", Jsonout.Str (Metrics.category_name category));
    ]

let error_line ~category msg = Jsonout.to_line (error_obj ~category msg)

let batch_request_to_json reqs =
  Jsonout.Obj
    [ ("op", Jsonout.Str "batch"); ("requests", Jsonout.List (List.map request_to_json reqs)) ]

(* Run one protocol query, record it, and classify the outcome.  Shared by
   the JSON and binary reply paths so a batch item, a v1 line and a v2
   frame for the same request produce the same metrics and the same
   semantic reply.  [version] is the wire protocol of the serving
   connection, feeding the per-version served gauge.  [Ok resp] counts as
   one served query (the unit the [max_requests] budget measures);
   [Error (category, msg)] was already recorded under its category. *)
let run_core ?cache ~metrics ?(version = 1) req =
  let t0 = Mono.now_us () in
  let phased () =
    let fault = parse_fault_spec ~who:"run_request" req.fault in
    let g, inputs =
      timed_phase ~metrics Phase.Cache_lookup (fun () -> instance_pair ?cache ~metrics req)
    in
    (* A sampled trace only accounts clean runs: an injected fault aborts
       mid-protocol and would leave a half timeline. *)
    let trace =
      match !Obs_ctx.trace with Some tr when req.fault = "" -> Some tr | _ -> None
    in
    ( trace,
      timed_phase ~metrics Phase.Run (fun () ->
          run_protocol ?trace ~protocol:req.protocol ~seed:req.seed ~eps:req.eps
            ~transport:req.transport ~fault ~k:req.k g inputs) )
  in
  match phased () with
  | trace, resp ->
      Metrics.record_query ~version metrics
        ~protocol:(protocol_to_string req.protocol)
        ~found_triangle:
          (match resp.verdict with
          | Tfree.Tester.Triangle _ -> true
          | Tfree.Tester.Triangle_free -> false)
        ~wire_bytes:resp.wire.Wire_runtime.wire_bytes
        ~accounted_bits:resp.wire.Wire_runtime.accounted_bits
        ~latency_us:(Mono.now_us () -. t0);
      (match trace with
      | Some _ -> Obs_ctx.traced_bits := !Obs_ctx.traced_bits + resp.wire.Wire_runtime.accounted_bits
      | None -> ());
      maybe_slow_query
        ~latency_us:(Mono.now_us () -. t0)
        [
          ("protocol", Jsonout.Str (protocol_to_string req.protocol));
          ("family", Jsonout.Str (family_to_string req.family));
          ("partition", Jsonout.Str (partition_to_string req.partition));
          ("n", Jsonout.Num (float_of_int req.n));
          ("k", Jsonout.Num (float_of_int req.k));
          ("seed", Jsonout.Num (float_of_int req.seed));
        ];
      Ok resp
  | exception Wire_error.Wire_error k ->
      let category =
        Option.value ~default:Metrics.Run_failure
          (Metrics.category_of_name (Wire_error.category k))
      in
      Metrics.record_error metrics ~category;
      Error (category, Wire_error.message k)
  | exception e ->
      Metrics.record_error metrics ~category:Metrics.Run_failure;
      Error (Metrics.Run_failure, Printexc.to_string e)

(* {!run_core} for a dataset query: same recording and classification,
   plus the per-dataset served gauge; a typed dataset failure (the file
   vanished or rotted under the manifest) keeps its own message under
   [Run_failure] — the request was well-formed, the server's data was
   not. *)
let run_core_dataset ?cache ~metrics ?(version = 1) ~registry dreq =
  let t0 = Mono.now_us () in
  let phased () =
    let fault = parse_fault_spec ~who:"run_dataset_request" dreq.ds_fault in
    let g, inputs =
      timed_phase ~metrics Phase.Cache_lookup (fun () ->
          dataset_pair ?cache ~metrics ~registry dreq)
    in
    let trace =
      match !Obs_ctx.trace with Some tr when dreq.ds_fault = "" -> Some tr | _ -> None
    in
    ( trace,
      timed_phase ~metrics Phase.Run (fun () ->
          run_protocol ?trace ~protocol:dreq.ds_protocol ~seed:dreq.ds_seed ~eps:dreq.ds_eps
            ~transport:dreq.ds_transport ~fault ~k:dreq.ds_k g inputs) )
  in
  match phased () with
  | trace, resp ->
      Metrics.record_query ~version metrics
        ~protocol:(protocol_to_string dreq.ds_protocol)
        ~found_triangle:
          (match resp.verdict with
          | Tfree.Tester.Triangle _ -> true
          | Tfree.Tester.Triangle_free -> false)
        ~wire_bytes:resp.wire.Wire_runtime.wire_bytes
        ~accounted_bits:resp.wire.Wire_runtime.accounted_bits
        ~latency_us:(Mono.now_us () -. t0);
      Metrics.record_dataset metrics ~name:dreq.ds_name;
      (match trace with
      | Some _ -> Obs_ctx.traced_bits := !Obs_ctx.traced_bits + resp.wire.Wire_runtime.accounted_bits
      | None -> ());
      maybe_slow_query
        ~latency_us:(Mono.now_us () -. t0)
        [
          ("protocol", Jsonout.Str (protocol_to_string dreq.ds_protocol));
          ("dataset", Jsonout.Str dreq.ds_name);
          ("k", Jsonout.Num (float_of_int dreq.ds_k));
          ("seed", Jsonout.Num (float_of_int dreq.ds_seed));
        ];
      Ok resp
  | exception Wire_error.Wire_error k ->
      let category =
        Option.value ~default:Metrics.Run_failure
          (Metrics.category_of_name (Wire_error.category k))
      in
      Metrics.record_error metrics ~category;
      Error (category, Wire_error.message k)
  | exception Tfree_dataset.Dataset_error.Dataset_error kind ->
      Metrics.record_error metrics ~category:Metrics.Run_failure;
      Error (Metrics.Run_failure, "dataset: " ^ Tfree_dataset.Dataset_error.message kind)
  | exception e ->
      Metrics.record_error metrics ~category:Metrics.Run_failure;
      Error (Metrics.Run_failure, Printexc.to_string e)

(* The JSON shape of one query's outcome; the [int] is 1 when the query
   was served, 0 on a categorized failure. *)
let run_one ?cache ~metrics ?version req =
  match run_core ?cache ~metrics ?version req with
  | Ok resp -> (timed_phase ~metrics Phase.Encode (fun () -> response_to_json resp), 1)
  | Error (category, msg) -> (error_obj ~category msg, 0)

(* The [{"op": "health"}] payload: the registry's O(1) scalars plus the
   instance cache's occupancy — no verdict/dataset table walk, no
   histogram walk, so a prober's poll never contends with serving. *)
let health_payload ?cache metrics =
  let entries, capacity =
    match cache with Some c -> (Lru.length c, Lru.capacity c) | None -> (0, 0)
  in
  match Metrics.health_json metrics with
  | Jsonout.Obj fields ->
      Jsonout.Obj
        (fields
        @ [
            ( "cache",
              Jsonout.Obj
                [
                  ("entries", Jsonout.Num (float_of_int entries));
                  ("capacity", Jsonout.Num (float_of_int capacity));
                ] );
          ])
  | j -> j

(* Fleet delegation hooks: a fleet worker's stats/health ops must
   describe the whole fleet, not one shard, so the dispatchers let the
   fleet layer substitute those two payloads.  [None] from a hook (the
   parent was unreachable) degrades to the local registry — a stats query
   never errors because the control channel hiccupped. *)
type serve_hooks = {
  hook_stats : unit -> Jsonout.t option;
  hook_health : unit -> Jsonout.t option;
}

(* One request line -> one reply line.  Sets [stop] on a shutdown command;
   returns how many protocol queries the line served (the unit the
   [max_requests] budget and the served counter measure — 0 or 1 for a
   plain line, up to the item count for a batch).  All failure shapes —
   unparseable JSON, unknown command or op, bad request field, a run that
   raises — reply with a structured, categorized error and record it under
   that category; the connection stays usable either way.  A wire fault
   surfacing from the run keeps its own category (timeout/transport) so an
   operator can tell chaos from bad input.  Inside a batch, failures are
   per-item: each element of [results] is exactly the reply the request
   would have gotten on its own line, errors included. *)
let handle_line ?cache ?registry ?hooks ~metrics ~stop ?version line =
  let err category msg =
    Metrics.record_error metrics ~category;
    (error_line ~category msg, 0)
  in
  let stats_obj () =
    match hooks with
    | Some h -> ( match h.hook_stats () with Some j -> j | None -> Metrics.to_json metrics)
    | None -> Metrics.to_json metrics
  in
  let health_obj () =
    match hooks with
    | Some h -> (
        match h.hook_health () with Some j -> j | None -> health_payload ?cache metrics)
    | None -> health_payload ?cache metrics
  in
  match timed_phase ~metrics Phase.Parse (fun () -> Jsonout.parse line) with
  | Error msg -> err Metrics.Malformed ("bad JSON: " ^ msg)
  | Ok j -> (
      match (Jsonout.member "cmd" j, Jsonout.member "op" j) with
      | Some (Jsonout.Str "shutdown"), _ ->
          stop := true;
          (Jsonout.to_line (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("bye", Jsonout.Bool true) ]), 0)
      | Some (Jsonout.Str c), _ -> err Metrics.Malformed (Printf.sprintf "unknown command %S" c)
      | Some _, _ -> err Metrics.Malformed "cmd must be a string"
      | None, Some (Jsonout.Str "stats") ->
          (Jsonout.to_line (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("stats", stats_obj ()) ]), 0)
      | None, Some (Jsonout.Str "health") ->
          ( Jsonout.to_line (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("health", health_obj ()) ]),
            0 )
      | None, Some (Jsonout.Str "batch") -> (
          match Jsonout.member "requests" j with
          | Some (Jsonout.List items) ->
              Metrics.record_batch metrics ~items:(List.length items);
              let served = ref 0 in
              let results =
                List.map
                  (fun item ->
                    match request_of_json item with
                    | Error msg ->
                        Metrics.record_error metrics ~category:Metrics.Malformed;
                        error_obj ~category:Metrics.Malformed msg
                    | Ok req ->
                        let obj, n = run_one ?cache ~metrics ?version req in
                        served := !served + n;
                        obj)
                  items
              in
              ( Jsonout.to_line
                  (Jsonout.Obj
                     [
                       ("ok", Jsonout.Bool true);
                       ("count", Jsonout.Num (float_of_int (List.length results)));
                       ("results", Jsonout.List results);
                     ]),
                !served )
          | Some _ -> err Metrics.Malformed "batch field \"requests\" must be a list"
          | None -> err Metrics.Malformed "batch without a \"requests\" list")
      | None, Some (Jsonout.Str "dataset") -> (
          match registry with
          | None -> err Metrics.Unknown_op "no dataset registry configured"
          | Some reg -> (
              match dataset_request_of_json j with
              | Error msg -> err Metrics.Malformed msg
              | Ok dreq -> (
                  if Tfree_dataset.Registry.find reg dreq.ds_name = None then
                    err Metrics.Malformed (Printf.sprintf "unknown dataset %S" dreq.ds_name)
                  else
                    match run_core_dataset ?cache ~metrics ?version ~registry:reg dreq with
                    | Ok resp ->
                        ( Jsonout.to_line
                            (timed_phase ~metrics Phase.Encode (fun () -> response_to_json resp)),
                          1 )
                    | Error (category, msg) -> (error_line ~category msg, 0))))
      | None, Some (Jsonout.Str o) -> err Metrics.Unknown_op (Printf.sprintf "unknown op %S" o)
      | None, Some _ -> err Metrics.Malformed "op must be a string"
      | None, None -> (
          match request_of_json j with
          | Error msg -> err Metrics.Malformed msg
          | Ok req ->
              let obj, n = run_one ?cache ~metrics ?version req in
              (Jsonout.to_line obj, n)))

(* One protocol-v2 frame body -> one sealed reply frame in [b]; the binary
   twin of [handle_line], with the same dispatch, the same error
   categories and the same served-count contract.  [cur] covers the frame
   body (tag onward); structural decode failures — the frame passed its
   checksum but its layout is garbled — fail that frame with a typed
   malformed reply while the connection stays usable, because the frame
   boundary is known and the stream can resync on the next frame.  Batch
   items fail per item, like their JSON twins, when the failure is
   semantic (bad enum code, bad fault spec); a structurally garbled item
   makes the remaining bytes meaningless, so it fails the whole frame. *)
let handle_frame ?cache ?registry ?hooks ~metrics ~stop ~version b cur =
  let err category msg =
    Metrics.record_error metrics ~category;
    encode_error_frame b ~category msg;
    0
  in
  let stats_obj () =
    match hooks with
    | Some h -> ( match h.hook_stats () with Some j -> j | None -> Metrics.to_json metrics)
    | None -> Metrics.to_json metrics
  in
  let health_obj () =
    match hooks with
    | Some h -> (
        match h.hook_health () with Some j -> j | None -> health_payload ?cache metrics)
    | None -> health_payload ?cache metrics
  in
  try
    let tag = Proto.get_u8 cur in
    if tag = tag_query then (
      match timed_phase ~metrics Phase.Parse (fun () -> decode_request_body cur) with
      | Error msg -> err Metrics.Malformed msg
      | Ok req -> (
          Proto.expect_end cur;
          match run_core ?cache ~metrics ~version req with
          | Ok resp ->
              timed_phase ~metrics Phase.Encode (fun () -> encode_response_frame b resp);
              1
          | Error (category, msg) ->
              encode_error_frame b ~category msg;
              0))
    else if tag = tag_batch then begin
      let count = Proto.get_varint cur in
      Metrics.record_batch metrics ~items:count;
      Proto.begin_frame b;
      Proto.put_u8 b tag_batch_reply;
      Proto.put_varint b count;
      let served = ref 0 in
      for _ = 1 to count do
        match timed_phase ~metrics Phase.Parse (fun () -> decode_request_body cur) with
        | Error msg ->
            Metrics.record_error metrics ~category:Metrics.Malformed;
            Proto.put_u8 b tag_error;
            Proto.put_u8 b (category_code Metrics.Malformed);
            Proto.put_string b msg
        | Ok req -> (
            match run_core ?cache ~metrics ~version req with
            | Ok resp ->
                timed_phase ~metrics Phase.Encode (fun () ->
                    Proto.put_u8 b tag_reply;
                    put_response b resp);
                incr served
            | Error (category, msg) ->
                Proto.put_u8 b tag_error;
                Proto.put_u8 b (category_code category);
                Proto.put_string b msg)
      done;
      Proto.expect_end cur;
      Proto.end_frame b;
      !served
    end
    else if tag = tag_stats then begin
      Proto.expect_end cur;
      Proto.begin_frame b;
      Proto.put_u8 b tag_stats_reply;
      Proto.put_string b (Jsonout.to_string (stats_obj ()));
      Proto.end_frame b;
      0
    end
    else if tag = tag_health then begin
      Proto.expect_end cur;
      Proto.begin_frame b;
      Proto.put_u8 b tag_health_reply;
      Proto.put_string b (Jsonout.to_string (health_obj ()));
      Proto.end_frame b;
      0
    end
    else if tag = tag_shutdown then begin
      Proto.expect_end cur;
      stop := true;
      Proto.begin_frame b;
      Proto.put_u8 b tag_bye;
      Proto.end_frame b;
      0
    end
    else if tag = tag_dataset then (
      match timed_phase ~metrics Phase.Parse (fun () -> decode_dataset_request_body cur) with
      | Error msg -> err Metrics.Malformed msg
      | Ok dreq -> (
          Proto.expect_end cur;
          match registry with
          | None -> err Metrics.Unknown_op "no dataset registry configured"
          | Some reg -> (
              if Tfree_dataset.Registry.find reg dreq.ds_name = None then
                err Metrics.Malformed (Printf.sprintf "unknown dataset %S" dreq.ds_name)
              else
                match run_core_dataset ?cache ~metrics ~version ~registry:reg dreq with
                | Ok resp ->
                    timed_phase ~metrics Phase.Encode (fun () -> encode_response_frame b resp);
                    1
                | Error (category, msg) ->
                    encode_error_frame b ~category msg;
                    0)))
    else err Metrics.Unknown_op (Printf.sprintf "unknown frame tag %d" tag)
  with Wire_error.Wire_error k -> err Metrics.Malformed ("bad frame: " ^ Wire_error.message k)

(* Reply-level fault injection: the [op]-th reply the server writes (0-based
   across the whole server lifetime) suffers the scheduled fault.  [Drop]
   and [Close] cost the client its connection; [Corrupt] garbles one bit of
   the line body (the newline survives, so the client reads a line that
   fails to parse); [Truncate] sends a proper prefix and closes; [Delay]
   holds the reply [amount] milliseconds; [Partial] splits the write in two
   (same bytes — the client must not notice).  Every firing bumps the
   injected-fault tally, never the error counters: the fault is ours.

   The second component reports whether the reply landed byte-intact
   ([Delay] and [Partial] reorder time, not bytes) — the condition under
   which the exchange's traffic counts toward the per-version byte gauge,
   so the gauge reconciles exactly against what a client's successful
   exchanges measured. *)
let inject_reply ~metrics ~fault ~op fd reply =
  match Fault.find fault op with
  | None ->
      write_line fd reply;
      (`Keep, true)
  | Some kind -> (
      Metrics.record_injected metrics;
      match kind with
      | Fault.Drop | Fault.Close -> (`Close, false)
      | Fault.Corrupt { bit } ->
          let b = Bytes.of_string reply in
          let nbits = 8 * Bytes.length b in
          if nbits > 0 then begin
            let i = ((bit mod nbits) + nbits) mod nbits in
            let byte = i / 8 and off = i mod 8 in
            Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl off)))
          end;
          write_line fd (Bytes.to_string b);
          (`Keep, false)
      | Fault.Truncate { keep } ->
          let s = reply ^ "\n" in
          write_all fd (String.sub s 0 (min (max keep 0) (max 0 (String.length s - 1))));
          (`Close, false)
      | Fault.Delay { amount } ->
          Unix.sleepf (float_of_int (max amount 0) /. 1000.0);
          write_line fd reply;
          (`Keep, true)
      | Fault.Partial { at } ->
          let s = reply ^ "\n" in
          let cut = max 1 (min at (String.length s - 1)) in
          write_all fd (String.sub s 0 cut);
          write_all fd (String.sub s cut (String.length s - cut));
          (`Keep, true))

let write_bytes_all fd data off len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd data (off + !sent) (len - !sent)
  done

(* Write the sealed frame currently held by [b]. *)
let write_frame fd b = write_bytes_all fd (Proto.storage b) (Proto.frame_off b) (Proto.frame_len b)

(* [inject_reply] for a sealed binary reply frame in [b]; same fault
   semantics, adapted to frames.  [Corrupt] flips a bit past the length
   varint — in the body or its checksum — so the frame stays delimited and
   the client reads a complete frame that fails its checksum, mirroring
   how the line path garbles the body but preserves the newline.
   [Truncate] sends a proper prefix and closes, starving the client's
   frame read until its deadline. *)
let inject_reply_frame ~metrics ~fault ~op fd b =
  let data = Proto.storage b and off = Proto.frame_off b and len = Proto.frame_len b in
  match Fault.find fault op with
  | None ->
      write_bytes_all fd data off len;
      (`Keep, true)
  | Some kind -> (
      Metrics.record_injected metrics;
      match kind with
      | Fault.Drop | Fault.Close -> (`Close, false)
      | Fault.Corrupt { bit } ->
          let varint_len = len - (Proto.frame_body_len b + 2) in
          let region_off = off + varint_len in
          let nbits = 8 * (len - varint_len) in
          if nbits > 0 then begin
            let i = ((bit mod nbits) + nbits) mod nbits in
            let byte = region_off + (i / 8) and o = i mod 8 in
            Bytes.set data byte (Char.chr (Char.code (Bytes.get data byte) lxor (1 lsl o)))
          end;
          write_bytes_all fd data off len;
          (`Keep, false)
      | Fault.Truncate { keep } ->
          write_bytes_all fd data off (min (max keep 0) (max 0 (len - 1)));
          (`Close, false)
      | Fault.Delay { amount } ->
          Unix.sleepf (float_of_int (max amount 0) /. 1000.0);
          write_bytes_all fd data off len;
          (`Keep, true)
      | Fault.Partial { at } ->
          let cut = max 1 (min at (len - 1)) in
          write_bytes_all fd data off cut;
          write_bytes_all fd data (off + cut) (len - cut);
          (`Keep, true))

(* One open connection in the event loop: its descriptor, the read buffer
   holding bytes that do not yet form a complete line or frame, the
   preallocated scratch a binary reply is encoded into, the reusable
   cursor binary requests are decoded through, the wire-protocol version
   the connection negotiated (0 until the first byte decides), and the
   wall-clock instant by which the next request unit must arrive.  The
   read buffer shrinks back to a small default once a large request has
   been consumed ({!Proto.rbuf_consume}), so one near-cap line or batch
   does not pin megabytes for the connection's lifetime. *)
type conn = {
  conn_fd : Unix.file_descr;
  rbuf : Proto.rbuf;
  wbuf : Proto.buf;
  rcur : Proto.cursor;
  mutable version : int;
  mutable deadline : float;
  mutable conn_open : bool;
  (* µs timestamp of the first buffered byte of the request unit being
     assembled; nan between units.  Feeds the read-phase histogram. *)
  mutable read_start : float;
}

(* Find '\n' in [data[pos, lim)]; [Bytes.index_from] would scan past the
   buffered region. *)
let find_newline data pos lim =
  let i = ref pos in
  while !i < lim && Bytes.unsafe_get data !i <> '\n' do
    incr i
  done;
  if !i < lim then Some !i else None

(* A connection that streams garbage without newlines must not grow its
   buffer forever; past this it is shed with a malformed error. *)
let max_line_bytes = 8 * 1024 * 1024

(* Bind, listen and unblock one Unix-domain listener, replacing any stale
   socket file at [path]. *)
let bind_listener ~backlog path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock backlog;
     (* poll may report the listener readable for a connection that was
        aborted before we accept; nonblocking turns that race into EAGAIN *)
     Unix.set_nonblock sock
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ());
     raise e);
  sock

(* The event loop proper, over already-bound [listeners]: a poll-based
   ({!Evpoll}, no FD_SETSIZE ceiling) single-threaded loop serving every
   open connection plus any number of accept sources.  The single-process
   server runs it over one listener; a fleet worker runs it over the
   shared public listener plus its own shard listener, with [ctl] adding
   the parent's control descriptor to the poll set ([on_ctl] runs when it
   turns readable) and [hooks] routing stats/health payloads through the
   parent.  [stop] is caller-owned so the control channel can stop the
   loop from outside a connection.  Returns the number of queries served;
   the caller owns listener cleanup. *)
let run_event_loop ~listeners ?ctl ?hooks ~metrics ~stop ~max_clients ?max_requests
    ~line_timeout_s ~fault ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample
    ?trace_out ?metrics_file ~metrics_interval_s ~who () =
  let log level event fields =
    match logger with Some lg -> Logger.log lg level event fields | None -> ()
  in
  let jnum v = Jsonout.Num (float_of_int v) in
  Obs_ctx.slow :=
    (match (logger, slow_us) with Some lg, Some thr -> Some (thr, lg) | _ -> None);
  Obs_ctx.traced_bits := 0;
  let tracer =
    match trace_out with Some _ when trace_sample > 0 -> Some (Trace.create ()) | _ -> None
  in
  let units_seen = ref 0 and units_sampled = ref 0 in
  (* Run the handling of one request unit; every [trace_sample]-th unit
     runs under the sampled collector, so its phases and protocol
     messages land in the request timeline. *)
  let observe_unit f =
    match tracer with
    | Some tr when !units_seen mod max 1 trace_sample = 0 ->
        incr units_seen;
        incr units_sampled;
        Obs_ctx.trace := Some tr;
        Fun.protect
          ~finally:(fun () -> Obs_ctx.trace := None)
          (fun () -> Trace.with_collector tr f)
    | _ ->
        incr units_seen;
        f ()
  in
  let dump_metrics () =
    match metrics_file with
    | None -> ()
    | Some file -> (
        let tmp = file ^ ".tmp" in
        try
          Out_channel.with_open_text tmp (fun oc ->
              Out_channel.output_string oc (Prom.of_stats (Metrics.to_json metrics)));
          Sys.rename tmp file;
          log Logger.Debug "metrics_dump" [ ("file", Jsonout.Str file) ]
        with Sys_error msg -> log Logger.Error "metrics_dump_failed" [ ("error", Jsonout.Str msg) ])
  in
  let next_dump =
    ref
      (match metrics_file with
      | None -> infinity
      | Some _ -> Unix.gettimeofday () +. Float.max 0.1 metrics_interval_s)
  in
  log Logger.Info "start"
    [
      ("path", Jsonout.Str who);
      ("max_clients", jnum max_clients);
      ("cache_capacity", jnum cache_capacity);
    ];
  let cache = if cache_capacity <= 0 then None else Some (create_cache ~capacity:cache_capacity ()) in
  let served = ref 0 and reply_op = ref 0 in
  let budget_left () = match max_requests with None -> true | Some m -> !served < m in
  let conns = ref [] in
  let transport_error () = Metrics.record_error metrics ~category:Metrics.Transport in
  let close_conn c =
    if c.conn_open then begin
      c.conn_open <- false;
      try Unix.close c.conn_fd with Unix.Unix_error _ -> ()
    end
  in
  let prune () =
    let live = List.filter (fun c -> c.conn_open) !conns in
    conns := live;
    Metrics.set_in_flight metrics (List.length live)
  in
  let accept_one lsock =
    match Unix.accept lsock with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | fd, _ ->
        if List.length !conns >= max_clients then begin
          (* shed: a typed refusal, then close — the client sees a reply,
             not a hang, and its retry loop treats overload as transient *)
          Metrics.record_shed metrics;
          Metrics.record_error metrics ~category:Metrics.Overload;
          log Logger.Warn "shed" [ ("max_clients", jnum max_clients) ];
          (try
             write_line fd
               (error_line ~category:Metrics.Overload
                  (Printf.sprintf "server at capacity (%d clients); retry later" max_clients))
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Metrics.record_accept metrics;
          conns :=
            {
              conn_fd = fd;
              rbuf = Proto.rbuf_create ();
              wbuf = Proto.create_buf ();
              rcur = Proto.cursor ();
              version = 0;
              deadline = Unix.gettimeofday () +. line_timeout_s;
              conn_open = true;
              read_start = nan;
            }
            :: !conns;
          Metrics.set_in_flight metrics (List.length !conns);
          log Logger.Debug "accept" [ ("in_flight", jnum (List.length !conns)) ]
        end
  in
  (* Write [c] a categorized error in whatever protocol it negotiated —
     best-effort: the peer may already be gone. *)
  let write_error_conn c ~category msg =
    log Logger.Warn "request_error"
      [
        ("category", Jsonout.Str (Metrics.category_name category)); ("detail", Jsonout.Str msg);
      ];
    try
      if c.version >= 2 then begin
        encode_error_frame c.wbuf ~category msg;
        write_frame c.conn_fd c.wbuf
      end
      else write_line c.conn_fd (error_line ~category msg)
    with Unix.Unix_error _ -> ()
  in
  (* One request unit fully assembled out of [c]'s socket: one read-phase
     sample from the first buffered byte to now.  [remaining] > 0 means
     the next unit's bytes are already buffered, so its read began now;
     otherwise the clock re-arms on the next readable event. *)
  let note_unit_read c ~remaining =
    if not (Float.is_nan c.read_start) then begin
      let now = Mono.now_us () in
      Metrics.record_phase metrics ~phase:Phase.Read ~us:(now -. c.read_start);
      Obs_ctx.scratch.(Phase.index Phase.Read) <- now -. c.read_start;
      c.read_start <- (if remaining > 0 then now else nan)
    end
  in
  (* Route one reply (line or frame) through the fault schedule, tally the
     served queries, and — when the reply landed byte-intact — credit the
     exchange's request+reply bytes to the connection's wire-protocol
     version, so stats reconcile exactly against what the client's
     successful exchanges measured. *)
  let deliver_reply c ~nserved ~request_bytes ~reply_bytes inject =
    let op = !reply_op in
    incr reply_op;
    match timed_phase ~metrics Phase.Write (fun () -> inject ~op c.conn_fd) with
    | exception Unix.Unix_error _ ->
        (* the peer closed before the reply landed *)
        transport_error ();
        close_conn c
    | action, clean ->
        served := !served + nserved;
        if clean && nserved > 0 then
          Metrics.record_version_bytes metrics
            ~version:(max 1 c.version)
            ~bytes:(request_bytes + reply_bytes);
        if action = `Close then close_conn c
  in
  let handle_one c line =
    match handle_line ?cache ?registry ?hooks ~metrics ~stop ~version:(max 1 c.version) line with
    | exception e ->
        Metrics.record_error metrics ~category:Metrics.Run_failure;
        write_error_conn c ~category:Metrics.Run_failure (Printexc.to_string e);
        close_conn c
    | reply, nserved ->
        deliver_reply c ~nserved
          ~request_bytes:(String.length line + 1)
          ~reply_bytes:(String.length reply + 1)
          (fun ~op fd -> inject_reply ~metrics ~fault ~op fd reply)
  in
  (* Split off and handle every complete line in [c]'s read buffer; keep
     the unterminated tail for the next readable event.  Each complete
     line rolls the deadline forward. *)
  let drain_lines c =
    let scanning = ref true in
    while !scanning && c.conn_open do
      let data = Proto.rbuf_data c.rbuf and start = Proto.rbuf_start c.rbuf in
      match find_newline data start (start + Proto.rbuf_avail c.rbuf) with
      | None -> scanning := false
      | Some nl ->
          let line = Bytes.sub_string data start (nl - start) in
          Proto.rbuf_consume c.rbuf (nl - start + 1);
          note_unit_read c ~remaining:(Proto.rbuf_avail c.rbuf);
          c.deadline <- Unix.gettimeofday () +. line_timeout_s;
          if (not !stop) && budget_left () then observe_unit (fun () -> handle_one c line);
          if !stop then scanning := false
    done;
    if c.conn_open && Proto.rbuf_avail c.rbuf > max_line_bytes then begin
      Metrics.record_error metrics ~category:Metrics.Malformed;
      write_error_conn c ~category:Metrics.Malformed "request line too long";
      close_conn c
    end
  in
  (* Split off and handle every complete frame.  A stream-level framing
     error — garbage or oversized length prefix, checksum mismatch — is
     unrecoverable (a byte stream cannot resync), so it costs a transport
     error and the connection; a frame that passes its checksum but
     decodes badly is handled inside [handle_frame] with the connection
     kept. *)
  let drain_frames c =
    let scanning = ref true in
    while !scanning && c.conn_open && not !stop do
      let start = Proto.rbuf_start c.rbuf in
      match
        Proto.try_frame (Proto.rbuf_data c.rbuf) ~pos:start
          ~limit:(start + Proto.rbuf_avail c.rbuf)
          c.rcur
      with
      | exception Wire_error.Wire_error k ->
          transport_error ();
          write_error_conn c ~category:Metrics.Transport
            ("unrecoverable frame stream: " ^ Wire_error.message k);
          close_conn c
      | -1 ->
          if Proto.rbuf_avail c.rbuf > max_line_bytes then begin
            Metrics.record_error metrics ~category:Metrics.Malformed;
            write_error_conn c ~category:Metrics.Malformed "request frame too long";
            close_conn c
          end;
          scanning := false
      | frame_len ->
          note_unit_read c ~remaining:(Proto.rbuf_avail c.rbuf - frame_len);
          c.deadline <- Unix.gettimeofday () +. line_timeout_s;
          if (not !stop) && budget_left () then
            observe_unit (fun () ->
                match
                  handle_frame ?cache ?registry ?hooks ~metrics ~stop ~version:c.version c.wbuf
                    c.rcur
                with
                | exception e ->
                    Metrics.record_error metrics ~category:Metrics.Run_failure;
                    write_error_conn c ~category:Metrics.Run_failure (Printexc.to_string e);
                    close_conn c
                | nserved ->
                    deliver_reply c ~nserved ~request_bytes:frame_len
                      ~reply_bytes:(Proto.frame_len c.wbuf) (fun ~op fd ->
                        inject_reply_frame ~metrics ~fault ~op fd c.wbuf));
          if c.conn_open then Proto.rbuf_consume c.rbuf frame_len else scanning := false
    done
  in
  (* The first byte decides the connection's protocol: {!Proto.magic}
     opens the version handshake, anything else is the first byte of a
     JSON line and the connection is v1.  A hello offering version 0 is a
     typed malformed error answered with a version-0 hello; the
     connection then falls back to v1 and stays usable.  Handshake bytes
     are excluded from the per-version byte gauges and from the fault
     schedule's reply numbering, so op indices line up across versions. *)
  let rec drain c =
    if c.conn_open then
      if c.version = 0 then begin
        let avail = Proto.rbuf_avail c.rbuf in
        if avail >= 1 then begin
          let data = Proto.rbuf_data c.rbuf and start = Proto.rbuf_start c.rbuf in
          if Bytes.get data start <> Proto.magic then begin
            c.version <- 1;
            drain c
          end
          else if avail >= 2 then begin
            let requested = Char.code (Bytes.get data (start + 1)) in
            Proto.rbuf_consume c.rbuf 2;
            (* handshake bytes are not a request unit: re-arm the read
               clock without recording *)
            c.read_start <-
              (if Proto.rbuf_avail c.rbuf > 0 then Mono.now_us () else nan);
            c.deadline <- Unix.gettimeofday () +. line_timeout_s;
            let negotiated = if requested < 1 then 0 else min requested max_version in
            if negotiated = 0 then
              Metrics.record_error metrics ~category:Metrics.Malformed;
            (match
               write_all c.conn_fd (Proto.hello negotiated)
             with
            | () ->
                c.version <- max 1 negotiated;
                drain c
            | exception Unix.Unix_error _ ->
                transport_error ();
                close_conn c)
          end
          (* else: magic seen, version byte still in flight — wait *)
        end
      end
      else if c.version >= 2 then drain_frames c
      else drain_lines c
  in
  let chunk = Bytes.create 4096 in
  let on_eof c =
    (* the client died mid-line (or mid-frame); a half request is not a
       request *)
    if Proto.rbuf_avail c.rbuf > 0 then transport_error ();
    close_conn c
  in
  let service_conn c =
    match Unix.read c.conn_fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> on_eof c
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ ->
        transport_error ();
        close_conn c
    | 0 -> on_eof c
    | nread ->
        Proto.rbuf_append c.rbuf chunk 0 nread;
        if Float.is_nan c.read_start then c.read_start <- Mono.now_us ();
        drain c
  in
  let expire_deadlines now =
    List.iter
      (fun c ->
        if c.conn_open && c.deadline <= now then begin
          Metrics.record_error metrics ~category:Metrics.Timeout;
          write_error_conn c ~category:Metrics.Timeout "read timed out";
          close_conn c
        end)
      !conns
  in
  while (not !stop) && budget_left () do
    let now = Unix.gettimeofday () in
    expire_deadlines now;
    if now >= !next_dump then begin
      dump_metrics ();
      next_dump := now +. Float.max 0.1 metrics_interval_s
    end;
    prune ();
    let timeout =
      List.fold_left (fun acc c -> Float.min acc (c.deadline -. now)) Float.infinity !conns
    in
    let timeout = Float.min timeout (!next_dump -. now) in
    let timeout = if timeout = Float.infinity then -1.0 else Float.max 0.0 timeout in
    let fds =
      List.rev_append listeners
        ((match ctl with Some (fd, _) -> [ fd ] | None -> [])
        @ List.map (fun c -> c.conn_fd) !conns)
    in
    (* Evpoll absorbs EINTR (empty ready set) and has no FD_SETSIZE cap,
       so a fleet-scale descriptor count cannot EINVAL the loop. *)
    let ready = Evpoll.wait_in fds ~timeout_s:timeout in
    (match ctl with
    | Some (fd, on_ctl) when List.mem fd ready -> on_ctl ()
    | _ -> ());
    List.iter (fun lsock -> if List.mem lsock ready then accept_one lsock) listeners;
    List.iter
      (fun c ->
        if c.conn_open && (not !stop) && budget_left () && List.mem c.conn_fd ready then (
          try service_conn c
          with _ ->
            transport_error ();
            close_conn c))
      !conns;
    prune ()
  done;
  List.iter close_conn !conns;
  prune ();
  dump_metrics ();
  (match (trace_out, tracer) with
  | Some file, Some tr -> (
      let json =
        Trace.to_chrome tr
          ~other:[ ("accounted_bits", Jsonout.Num (float_of_int !Obs_ctx.traced_bits)) ]
      in
      try
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (Jsonout.to_string json));
        log Logger.Info "trace_written"
          [ ("file", Jsonout.Str file); ("sampled_units", jnum !units_sampled) ]
      with Sys_error msg -> log Logger.Error "trace_write_failed" [ ("error", Jsonout.Str msg) ])
  | _ -> ());
  log Logger.Info "shutdown" [ ("served", jnum !served) ];
  Obs_ctx.slow := None;
  !served

(* ------------------------------------------------- fleet control channel *)

(* Parent <-> worker control messages over a per-worker socketpair: one
   tag byte, a 4-byte little-endian payload length, the payload bytes.
   Worker to parent: ['q']/['h'] delegate a stats/health op (payload =
   the worker's own {!Metrics.to_wire} snapshot), ['o'] answers a parent
   ping with a fresh snapshot, ['f'] announces exit (one flag byte —
   0 = parent-ordered, 1 = a client asked the fleet to shut down,
   2 = this worker's request budget ran out — then the final snapshot).
   Parent to worker: ['p'] pings for a snapshot, ['r'] carries the merged
   stats/health JSON, ['x'] orders the worker to stop. *)

let ctl_write fd tag payload =
  let n = String.length payload in
  let hdr = Bytes.create 5 in
  Bytes.set hdr 0 tag;
  Bytes.set hdr 1 (Char.chr (n land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 4 (Char.chr ((n lsr 24) land 0xff));
  write_bytes_all fd hdr 0 5;
  write_all fd payload

(* Largest control payload we accept: a metrics snapshot is a few KB, so
   anything past this is a desynchronized stream, treated like a close. *)
let ctl_max_payload = 16 * 1024 * 1024

let ctl_read fd =
  let rec read_exact b off len =
    if len = 0 then true
    else
      match Unix.read fd b off len with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact b off len
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
      | 0 -> false
      | k -> read_exact b (off + k) (len - k)
  in
  let hdr = Bytes.create 5 in
  if not (read_exact hdr 0 5) then `Eof
  else
    let b i = Char.code (Bytes.get hdr i) in
    let n = b 1 lor (b 2 lsl 8) lor (b 3 lsl 16) lor (b 4 lsl 24) in
    if n < 0 || n > ctl_max_payload then `Eof
    else
      let payload = Bytes.create n in
      if read_exact payload 0 n then `Msg (Bytes.get hdr 0, Bytes.to_string payload) else `Eof

(* ------------------------------------------------------------ fleet mode *)

(* One fleet worker: the event loop over the shared public listener plus
   this worker's shard listener, with stats/health delegated to the
   parent over [ctl].  Runs in the forked child.  While waiting for the
   parent's merged ['r'] reply the worker keeps answering ['p'] pings —
   the parent may be mid-barrier collecting snapshots for *another*
   worker's stats op, and two workers each waiting on the other's
   snapshot must not deadlock.  A dead control channel degrades to local
   payloads and, on EOF, stops the loop: an orphaned worker must not
   outlive its fleet. *)
let worker_main ~ctl ~listeners ~max_clients ?max_requests ~line_timeout_s ~fault
    ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample ?trace_out
    ?metrics_file ~metrics_interval_s ~who () =
  let metrics = Metrics.create () in
  let stop = ref false in
  (* distinguishes a parent-ordered stop from a client shutdown command *)
  let parent_stopped = ref false in
  let send tag payload =
    try
      ctl_write ctl tag payload;
      true
    with Unix.Unix_error _ -> false
  in
  let on_parent_gone () =
    stop := true;
    parent_stopped := true
  in
  let ask tag =
    if not (send tag (Metrics.to_wire metrics)) then None
    else
      let rec await () =
        match ctl_read ctl with
        | `Eof ->
            on_parent_gone ();
            None
        | `Msg ('r', payload) -> (
            match Jsonout.parse payload with Ok j -> Some j | Error _ -> None)
        | `Msg ('p', _) ->
            ignore (send 'o' (Metrics.to_wire metrics));
            await ()
        | `Msg ('x', _) ->
            stop := true;
            parent_stopped := true;
            await ()
        | `Msg _ -> await ()
      in
      await ()
  in
  let hooks = { hook_stats = (fun () -> ask 'q'); hook_health = (fun () -> ask 'h') } in
  let on_ctl () =
    match ctl_read ctl with
    | `Eof -> on_parent_gone ()
    | `Msg ('p', _) -> ignore (send 'o' (Metrics.to_wire metrics))
    | `Msg ('x', _) ->
        stop := true;
        parent_stopped := true
    | `Msg _ -> ()
  in
  let served =
    run_event_loop ~listeners ~ctl:(ctl, on_ctl) ~hooks ~metrics ~stop ~max_clients ?max_requests
      ~line_timeout_s ~fault ~cache_capacity ~max_version ?registry ?logger ?slow_us
      ~trace_sample ?trace_out ?metrics_file ~metrics_interval_s ~who ()
  in
  let flag =
    if !stop && not !parent_stopped then '\001' (* a client asked the fleet to stop *)
    else if not !stop then '\002' (* own max_requests budget ran out *)
    else '\000'
  in
  ignore (send 'f' (String.make 1 flag ^ Metrics.to_wire metrics));
  (try Unix.close ctl with Unix.Unix_error _ -> ());
  served

(* Parent-side bookkeeping for one worker seat.  [slot_last] is the
   latest snapshot this incarnation reported; when the process dies it is
   folded into the fleet graveyard and reset, so merged counters are
   always graveyard + live snapshots — monotone across respawns, never
   double-counted. *)
type fleet_slot = {
  slot_id : int;
  mutable slot_pid : int;
  mutable slot_ctl : Unix.file_descr;
  mutable slot_ctl_open : bool;
  mutable slot_alive : bool;  (* process believed running (until reaped) *)
  mutable slot_restarts : int;
  mutable slot_done : bool;  (* exited on purpose: shutdown or budget *)
  mutable slot_last : Metrics.t;
}

let serve_fleet ~workers ~backlog ~max_clients ?max_requests ~line_timeout_s ~fault
    ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample ?trace_out
    ?metrics_file ~metrics_interval_s ~path () =
  let log level event fields =
    match logger with Some lg -> Logger.log lg level event fields | None -> ()
  in
  let jnum v = Jsonout.Num (float_of_int v) in
  let started_at = Unix.gettimeofday () in
  (* Every listener is bound before the first fork and stays open in the
     parent for the fleet's whole life: a respawned worker re-inherits
     the same descriptors, and while a seat is empty its connections
     queue in the kernel backlog instead of being refused. *)
  let public = bind_listener ~backlog path in
  let privates =
    try Array.init workers (fun i -> bind_listener ~backlog (worker_path ~path i))
    with e ->
      (try Unix.close public with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      for i = 0 to workers - 1 do
        try Unix.unlink (worker_path ~path i) with Unix.Unix_error _ -> ()
      done;
      raise e
  in
  let slots =
    Array.init workers (fun i ->
        {
          slot_id = i;
          slot_pid = 0;
          slot_ctl = Unix.stdin;
          slot_ctl_open = false;
          slot_alive = false;
          slot_restarts = 0;
          slot_done = false;
          slot_last = Metrics.create ();
        })
  in
  let graveyard = Metrics.create ~started_at () in
  let stopping = ref false in
  let close_ctl slot =
    if slot.slot_ctl_open then begin
      slot.slot_ctl_open <- false;
      try Unix.close slot.slot_ctl with Unix.Unix_error _ -> ()
    end
  in
  let spawn slot =
    let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        Array.iter (fun s -> if s.slot_ctl_open then close_ctl s) slots;
        (* this worker accepts on the public socket and its own shard
           socket only *)
        Array.iteri
          (fun j fd ->
            if j <> slot.slot_id then try Unix.close fd with Unix.Unix_error _ -> ())
          privates;
        let suffix file = file ^ ".w" ^ string_of_int slot.slot_id in
        let code =
          try
            ignore
              (worker_main ~ctl:child_fd
                 ~listeners:[ public; privates.(slot.slot_id) ]
                 ~max_clients ?max_requests ~line_timeout_s
                   (* the chaos schedule, when given, belongs to worker 0
                      alone so fault indices stay deterministic *)
                 ~fault:(if slot.slot_id = 0 then fault else [])
                 ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample
                 ?trace_out:(Option.map suffix trace_out)
                 ?metrics_file:(Option.map suffix metrics_file)
                 ~metrics_interval_s
                 ~who:(Printf.sprintf "%s#w%d" path slot.slot_id)
                 ());
            0
          with _ -> 1
        in
        (* _exit: the child must not run the parent's at_exit machinery
           (the logger flushes per line already) *)
        Unix._exit code
    | pid ->
        (try Unix.close child_fd with Unix.Unix_error _ -> ());
        slot.slot_pid <- pid;
        slot.slot_ctl <- parent_fd;
        slot.slot_ctl_open <- true;
        slot.slot_alive <- true;
        slot.slot_last <- Metrics.create ();
        log Logger.Info "worker_start" [ ("worker", jnum slot.slot_id); ("pid", jnum pid) ]
  in
  let broadcast_stop () =
    if not !stopping then begin
      stopping := true;
      Array.iter
        (fun s ->
          if s.slot_ctl_open then
            try ctl_write s.slot_ctl 'x' "" with Unix.Unix_error _ -> close_ctl s)
        slots
    end
  in
  let update_last slot payload =
    match Metrics.of_wire payload with Ok m -> slot.slot_last <- m | Error _ -> ()
  in
  (* a worker's exit announcement: its final snapshot plus why it left *)
  let note_final slot payload =
    if String.length payload >= 1 then begin
      update_last slot (String.sub payload 1 (String.length payload - 1));
      match payload.[0] with
      | '\001' ->
          slot.slot_done <- true;
          broadcast_stop ()
      | '\002' -> slot.slot_done <- true
      | _ -> ()
    end;
    close_ctl slot
  in
  (* Reap exited workers: fold the last snapshot into the graveyard (and
     zero the seat's live snapshot so merged counters never double-count),
     then respawn the seat unless the fleet is stopping or the worker left
     on purpose — the respawned process re-inherits the still-open
     listeners, so the seat's shard keeps its socket. *)
  let reap () =
    let scanning = ref true in
    while !scanning do
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> scanning := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0, _ -> scanning := false
      | pid, _ -> (
          match Array.find_opt (fun s -> s.slot_alive && s.slot_pid = pid) slots with
          | None -> ()
          | Some slot ->
              slot.slot_alive <- false;
              (* The worker's exit announcement may still sit unread in
                 the ctl socket: the child writes ['f'] and exits, and
                 this reap can run before the main loop polls the
                 channel.  Drain it before discarding the channel —
                 dropping a flag-1 ['f'] here would lose a client's
                 fleet-stop order and respawn the seat forever.  The
                 child is already reaped, so the drain ends at EOF and
                 cannot block. *)
              let rec drain_ctl () =
                if slot.slot_ctl_open then
                  match ctl_read slot.slot_ctl with
                  | `Eof -> close_ctl slot
                  | `Msg (('o' | 'q' | 'h'), payload) ->
                      update_last slot payload;
                      drain_ctl ()
                  | `Msg ('f', payload) -> note_final slot payload (* closes the ctl *)
                  | `Msg _ -> drain_ctl ()
              in
              drain_ctl ();
              close_ctl slot;
              Metrics.merge graveyard slot.slot_last;
              slot.slot_last <- Metrics.create ();
              if !stopping || slot.slot_done then
                log Logger.Info "worker_exit" [ ("worker", jnum slot.slot_id); ("pid", jnum pid) ]
              else begin
                slot.slot_restarts <- slot.slot_restarts + 1;
                log Logger.Warn "worker_respawn"
                  [ ("worker", jnum slot.slot_id); ("restarts", jnum slot.slot_restarts) ];
                spawn slot
              end)
    done
  in
  (* Fleet-wide merged registry: graveyard + every seat's last snapshot.
     [in_flight] is a gauge, not a counter — summed by hand over live
     seats. *)
  let merged () =
    let m = Metrics.create ~started_at () in
    Metrics.merge m graveyard;
    Array.iter (fun s -> Metrics.merge m s.slot_last) slots;
    Metrics.set_in_flight m
      (Array.fold_left
         (fun acc s -> if s.slot_alive then acc + Metrics.in_flight s.slot_last else acc)
         0 slots);
    m
  in
  let worker_gauges () =
    Jsonout.Obj
      [
        ("count", jnum workers);
        ("restarts", jnum (Array.fold_left (fun acc s -> acc + s.slot_restarts) 0 slots));
        ( "fleet",
          Jsonout.List
            (Array.to_list
               (Array.map
                  (fun s ->
                    Jsonout.Obj
                      [
                        ("worker", jnum s.slot_id);
                        ("pid", jnum s.slot_pid);
                        ("alive", Jsonout.Bool s.slot_alive);
                        ("restarts", jnum s.slot_restarts);
                        ("served", jnum (Metrics.queries_served s.slot_last));
                        ("in_flight", jnum (Metrics.in_flight s.slot_last));
                        ("cache_hits", jnum (Metrics.cache_hits s.slot_last));
                      ])
                  slots)) );
      ]
  in
  let reply_payload kind =
    let m = merged () in
    let body = if kind = 'q' then Metrics.to_json m else Metrics.health_json m in
    let body =
      match body with
      | Jsonout.Obj fields -> Jsonout.Obj (fields @ [ ("workers", worker_gauges ()) ])
      | j -> j
    in
    Jsonout.to_string body
  in
  (* stats/health asks that arrived from other workers while a barrier
     was draining; answered right after the triggering reply, against the
     snapshots that same barrier just refreshed *)
  let queued_asks = Queue.create () in
  (* Barrier-pull every other live seat's snapshot before answering a
     stats/health delegation, so the merged payload is fresh, not
     cache-stale.  A seat that answers with its own ['q']/['h'] instead
     of a pong is itself blocked waiting for a merged reply: its ask is
     queued and it stays pending, because its pong is still on the way
     (the worker's await loop answers pings).  A seat that reports
     ['f'] or EOF mid-barrier is simply dropped from pending; timeout
     falls back to whatever snapshot the seat last sent. *)
  let pull_all ~except =
    let pending = ref [] in
    Array.iter
      (fun s ->
        if s != except && s.slot_alive && s.slot_ctl_open then
          match ctl_write s.slot_ctl 'p' "" with
          | () -> pending := s :: !pending
          | exception Unix.Unix_error _ -> close_ctl s)
      slots;
    let deadline = Unix.gettimeofday () +. 5.0 in
    while !pending <> [] && Unix.gettimeofday () < deadline do
      let fds = List.map (fun s -> s.slot_ctl) !pending in
      let remaining = Float.max 0.01 (deadline -. Unix.gettimeofday ()) in
      let ready = Evpoll.wait_in fds ~timeout_s:remaining in
      List.iter
        (fun s ->
          let drop () = pending := List.filter (fun x -> x != s) !pending in
          match ctl_read s.slot_ctl with
          | `Eof ->
              close_ctl s;
              drop ()
          | `Msg ('o', payload) ->
              update_last s payload;
              drop ()
          | `Msg (('q' | 'h') as k, payload) ->
              update_last s payload;
              Queue.push (s, k) queued_asks
          | `Msg ('f', payload) ->
              note_final s payload;
              drop ()
          | `Msg _ -> ())
        (List.filter (fun s -> List.mem s.slot_ctl ready) !pending)
    done
  in
  let answer slot kind =
    if slot.slot_ctl_open then
      try ctl_write slot.slot_ctl 'r' (reply_payload kind)
      with Unix.Unix_error _ -> close_ctl slot
  in
  let handle_msg slot =
    match ctl_read slot.slot_ctl with
    | `Eof -> close_ctl slot
    | `Msg ('o', payload) -> update_last slot payload
    | `Msg ('f', payload) -> note_final slot payload
    | `Msg (('q' | 'h') as kind, payload) ->
        update_last slot payload;
        pull_all ~except:slot;
        answer slot kind;
        while not (Queue.is_empty queued_asks) do
          let s, k = Queue.pop queued_asks in
          answer s k
        done
    | `Msg _ -> ()
  in
  log Logger.Info "fleet_start" [ ("path", Jsonout.Str path); ("workers", jnum workers) ];
  Array.iter spawn slots;
  let all_reaped () = Array.for_all (fun s -> not s.slot_alive) slots in
  while not (all_reaped ()) do
    reap ();
    if not (all_reaped ()) then begin
      let fds =
        Array.fold_left (fun acc s -> if s.slot_ctl_open then s.slot_ctl :: acc else acc) [] slots
      in
      let ready = Evpoll.wait_in fds ~timeout_s:0.25 in
      Array.iter (fun s -> if s.slot_ctl_open && List.mem s.slot_ctl ready then handle_msg s) slots
    end
  done;
  (try Unix.close public with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Array.iteri
    (fun i fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink (worker_path ~path i) with Unix.Unix_error _ -> ())
    privates;
  let total = Metrics.queries_served graveyard in
  log Logger.Info "fleet_shutdown" [ ("served", jnum total) ];
  total

let serve ?(backlog = 64) ?(max_clients = 64) ?max_requests ?(line_timeout_s = 30.0)
    ?(fault = []) ?(cache_capacity = 32) ?(max_version = Proto.max_version) ?registry ?logger
    ?slow_us ?(trace_sample = 0) ?trace_out ?metrics_file ?(metrics_interval_s = 5.0) ?workers
    ~path () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match workers with
  | Some w when w < 1 -> invalid_arg "serve: workers must be >= 1"
  | Some w ->
      serve_fleet ~workers:w ~backlog ~max_clients ?max_requests ~line_timeout_s ~fault
        ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample ?trace_out
        ?metrics_file ~metrics_interval_s ~path ()
  | None ->
      let sock = bind_listener ~backlog path in
      let metrics = Metrics.create () in
      let stop = ref false in
      let finish () =
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally:finish (fun () ->
          run_event_loop ~listeners:[ sock ] ~metrics ~stop ~max_clients ?max_requests
            ~line_timeout_s ~fault ~cache_capacity ~max_version ?registry ?logger ?slow_us
            ~trace_sample ?trace_out ?metrics_file ~metrics_interval_s ~who:path ())

(* ---------------------------------------------------------------- client *)

let with_connection ~path f =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      f sock)

(* Is a structured [{"ok": false}] reply worth retrying?  Only when its
   category describes the wire or the server's load, not the request:
   timeout, transport and overload pass, everything else is the server
   telling us the request itself is wrong. *)
let reply_error j =
  let msg =
    match Jsonout.member "error" j with Some (Jsonout.Str s) -> s | _ -> "server error"
  in
  let transient =
    match Jsonout.member "category" j with
    | Some (Jsonout.Str ("timeout" | "transport" | "overload")) -> true
    | _ -> false
  in
  ((if transient then `Transient else `Fatal), msg)

(* Same transient-or-fatal split, from a binary error frame's category. *)
let classify_category category =
  match category with
  | Metrics.Timeout | Metrics.Transport | Metrics.Overload -> `Transient
  | Metrics.Malformed | Metrics.Unknown_op | Metrics.Run_failure -> `Fatal

(* One JSON line-protocol exchange on an already-connected socket;
   [interpret] turns the parsed reply of a successful exchange into the
   caller's result. *)
let json_exchange sock ~deadline ~line ~interpret =
  write_line sock line;
  match read_line_deadline sock ~deadline with
  | Eof | Partial _ -> Error (`Transient, "server closed the connection")
  | Timed_out -> Error (`Transient, "reply timed out")
  | Line reply -> (
      match Jsonout.parse reply with
      | Error msg -> Error (`Transient, "bad reply JSON: " ^ msg)
      | Ok j -> (
          match Jsonout.member "ok" j with
          | Some (Jsonout.Bool false) -> Error (reply_error j)
          | _ -> interpret j))

(* The exceptions any attempt can surface, classified transient: the
   server may be restarting, shedding load, or mid-fault. *)
let guard_attempt f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (e, fn, _) ->
      Error (`Transient, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Wire_error.Wire_error k -> Error (`Transient, Wire_error.message k)

(* One v1 connect/write/read attempt, classified: [`Transient] failures
   are worth retrying (the server may be restarting or shedding load, the
   reply may have been garbled by a fault), [`Fatal] ones are the server
   telling us the request itself is wrong. *)
let attempt_exchange ~timeout_s ~path ~line ~interpret =
  guard_attempt (fun () ->
      with_connection ~path (fun sock ->
          json_exchange sock ~deadline:(Unix.gettimeofday () +. timeout_s) ~line ~interpret))

(* ----------------------------------------------------- client, binary v2 *)

(* One byte off the socket under a deadline.  Poll-backed like every
   deadline read: a client library living in a process with >= FD_SETSIZE
   descriptors open must not crash in select. *)
let read_byte_deadline fd ~deadline =
  let one = Bytes.create 1 in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then `Timeout
    else if not (Evpoll.readable fd ~timeout_s:remaining) then loop ()
    else
      match Unix.read fd one 0 1 with
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | 0 -> `Eof
      | _ -> `Byte (Bytes.get one 0)
  in
  loop ()

(* Accumulate socket bytes until {!Proto.try_frame} finds one complete
   frame; [cur] then covers its body.  Garbage that can never frame
   raises {!Wire_error.Wire_error} (the attempt guard classifies it
   transient). *)
let read_frame_deadline sock ~deadline cur =
  let rb = Proto.rbuf_create () in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let start = Proto.rbuf_start rb in
    match
      Proto.try_frame (Proto.rbuf_data rb) ~pos:start ~limit:(start + Proto.rbuf_avail rb) cur
    with
    | n when n >= 0 -> `Frame
    | _ -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then `Timeout
        else if not (Evpoll.readable sock ~timeout_s:remaining) then loop ()
        else
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Closed
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | 0 -> `Closed
          | nread ->
              Proto.rbuf_append rb chunk 0 nread;
              loop ())
  in
  loop ()

(* The four exchanges a client performs, shaped once so the v1 and v2
   paths cannot drift. *)
type wire_op =
  | Op_query of request
  | Op_dataset of dataset_request
  | Op_batch of request list
  | Op_stats
  | Op_health
  | Op_shutdown

let op_line = function
  | Op_query req -> Jsonout.to_line (request_to_json req)
  | Op_dataset dreq -> Jsonout.to_line (dataset_request_to_json dreq)
  | Op_batch reqs -> Jsonout.to_line (batch_request_to_json reqs)
  | Op_stats -> Jsonout.to_line (Jsonout.Obj [ ("op", Jsonout.Str "stats") ])
  | Op_health -> Jsonout.to_line (Jsonout.Obj [ ("op", Jsonout.Str "health") ])
  | Op_shutdown -> Jsonout.to_line (Jsonout.Obj [ ("cmd", Jsonout.Str "shutdown") ])

let op_fill b = function
  | Op_query req -> encode_query_frame b req
  | Op_dataset dreq -> encode_dataset_frame b dreq
  | Op_batch reqs -> encode_batch_frame b reqs
  | Op_stats -> encode_stats_frame b
  | Op_health -> encode_health_frame b
  | Op_shutdown -> encode_shutdown_frame b

(* A decoded binary reply, every shape the server can send. *)
type wire_reply =
  | R_response of response
  | R_error of Metrics.error_category * string
  | R_batch of (response, Metrics.error_category * string) result list
  | R_stats of Jsonout.t
  | R_health of Jsonout.t
  | R_bye

let decode_reply cur =
  let tag = Proto.get_u8 cur in
  if tag = tag_reply then begin
    let r = decode_response_body cur in
    Proto.expect_end cur;
    R_response r
  end
  else if tag = tag_error then begin
    let category = category_of_code (Proto.get_u8 cur) in
    let msg = Proto.get_string cur in
    Proto.expect_end cur;
    R_error (category, msg)
  end
  else if tag = tag_batch_reply then begin
    let count = Proto.get_varint cur in
    let items = ref [] in
    for _ = 1 to count do
      let sub = Proto.get_u8 cur in
      if sub = tag_reply then items := Ok (decode_response_body cur) :: !items
      else if sub = tag_error then begin
        let category = category_of_code (Proto.get_u8 cur) in
        let msg = Proto.get_string cur in
        items := Error (category, msg) :: !items
      end
      else Wire_error.errorf_corrupt "unknown batch item tag %d" sub
    done;
    Proto.expect_end cur;
    R_batch (List.rev !items)
  end
  else if tag = tag_stats_reply then begin
    let s = Proto.get_string cur in
    Proto.expect_end cur;
    match Jsonout.parse s with
    | Ok j -> R_stats j
    | Error msg -> Wire_error.errorf_corrupt "bad stats JSON in frame: %s" msg
  end
  else if tag = tag_health_reply then begin
    let s = Proto.get_string cur in
    Proto.expect_end cur;
    match Jsonout.parse s with
    | Ok j -> R_health j
    | Error msg -> Wire_error.errorf_corrupt "bad health JSON in frame: %s" msg
  end
  else if tag = tag_bye then begin
    Proto.expect_end cur;
    R_bye
  end
  else Wire_error.errorf_corrupt "unknown reply tag %d" tag

(* Offer the server our best version and classify its answer.  A server
   that does not speak the handshake still answers *something* — most
   usefully the overload-shed JSON error line — so a non-magic first byte
   is read out as a line and interpreted as a v1 reply; its typed
   category keeps the retry classification (an overload shed stays
   transient with the server's own message). *)
let client_hello sock ~deadline =
  write_all sock (Proto.hello Proto.max_version);
  match read_byte_deadline sock ~deadline with
  | `Timeout -> Error (`Transient, "handshake timed out")
  | `Eof -> Error (`Transient, "server closed during handshake")
  | `Byte b when b = Proto.magic -> (
      match read_byte_deadline sock ~deadline with
      | `Timeout -> Error (`Transient, "handshake timed out")
      | `Eof -> Error (`Transient, "server closed during handshake")
      | `Byte v -> (
          match Char.code v with
          | 2 -> Ok 2
          | 1 -> Ok 1
          | 0 -> Error (`Fatal, "server refused the protocol handshake")
          | v -> Error (`Transient, Printf.sprintf "server negotiated unknown version %d" v)))
  | `Byte b -> (
      (* a JSON line, not a handshake: read it out and interpret it *)
      match read_line_deadline sock ~deadline with
      | Timed_out -> Error (`Transient, "handshake timed out")
      | Eof | Partial _ -> Error (`Transient, "server closed during handshake")
      | Line rest -> (
          match Jsonout.parse (String.make 1 b ^ rest) with
          | Ok j when Jsonout.member "ok" j = Some (Jsonout.Bool false) -> Error (reply_error j)
          | Ok _ | Error _ -> Error (`Transient, "garbled handshake reply")))

(* One exchange attempt honouring [protocol]: [V1] is the bare JSON line
   path; [V2]/[Auto] shake hands first and speak binary frames when the
   server agrees, JSON lines on the same connection when it answers v1.
   [interpret]/[interpret_bin] turn the two reply shapes into the caller's
   result; both run under the transient-exception guard. *)
let attempt_op ~protocol ~timeout_s ~path ~op ~interpret ~interpret_bin =
  match (protocol : Proto.pref) with
  | Proto.V1 -> attempt_exchange ~timeout_s ~path ~line:(op_line op) ~interpret
  | Proto.V2 | Proto.Auto ->
      guard_attempt (fun () ->
          with_connection ~path (fun sock ->
              let deadline = Unix.gettimeofday () +. timeout_s in
              match client_hello sock ~deadline with
              | Error e -> Error e
              | Ok 1 -> json_exchange sock ~deadline ~line:(op_line op) ~interpret
              | Ok _ -> (
                  let b = Proto.create_buf () in
                  op_fill b op;
                  write_frame sock b;
                  let cur = Proto.cursor () in
                  match read_frame_deadline sock ~deadline cur with
                  | `Timeout -> Error (`Transient, "reply timed out")
                  | `Closed -> Error (`Transient, "server closed the connection")
                  | `Frame -> (
                      match decode_reply cur with
                      | R_error (category, msg) -> Error (classify_category category, msg)
                      | reply -> interpret_bin reply))))

(* The shared retry envelope: transient failures back off exponentially
   ([backoff_s · 2^attempt] plus up to 25% jitter, deterministic in
   [backoff_seed]) and try the whole exchange again, tallying each retry in
   [metrics] when given; fatal ones return immediately. *)
let with_retries ~retries ~backoff_s ~backoff_seed ~metrics attempt =
  let rng = Rng.create (0xc11e47 + (31 * backoff_seed)) in
  let rec go n =
    match attempt () with
    | Ok v -> Ok v
    | Error (`Fatal, msg) -> Error msg
    | Error (`Transient, msg) ->
        if n >= retries then Error msg
        else begin
          (match metrics with Some m -> Metrics.record_retry m | None -> ());
          let base = backoff_s *. (2.0 ** float_of_int n) in
          Unix.sleepf (base +. (base *. 0.25 *. Rng.float rng));
          go (n + 1)
        end
  in
  go 0

(** Send one request to a server at [path]; wait up to [timeout_s] for the
    reply.  Transient failures retry up to [retries] more times with
    exponential backoff ([backoff_s · 2^attempt] plus up to 25% jitter,
    deterministic in [backoff_seed]); each retry is tallied in [metrics]
    when given.  Fatal server rejections return immediately.  [protocol]
    picks the wire protocol (default [Auto]: binary v2 when the server
    speaks it, JSON v1 otherwise); the retry envelope covers the
    handshake, so a garbled negotiation retries like a garbled reply. *)
let client_query ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ?(protocol = Proto.Auto) ~path req =
  with_retries ~retries ~backoff_s ~backoff_seed ~metrics (fun () ->
      attempt_op ~protocol ~timeout_s ~path ~op:(Op_query req)
        ~interpret:(fun j ->
          match response_of_json j with
          | Ok resp -> Ok resp
          | Error msg -> Error (`Transient, "garbled reply: " ^ msg))
        ~interpret_bin:(function
          | R_response resp -> Ok resp
          | _ -> Error (`Transient, "garbled reply: unexpected frame shape")))

(** {!client_query} for a [{"op": "dataset"}] query: same retry envelope,
    same protocol negotiation, same reply shape — the server just takes
    the graph from its registry instead of generating it. *)
let client_dataset ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ?(protocol = Proto.Auto) ~path dreq =
  with_retries ~retries ~backoff_s ~backoff_seed ~metrics (fun () ->
      attempt_op ~protocol ~timeout_s ~path ~op:(Op_dataset dreq)
        ~interpret:(fun j ->
          match response_of_json j with
          | Ok resp -> Ok resp
          | Error msg -> Error (`Transient, "garbled reply: " ^ msg))
        ~interpret_bin:(function
          | R_response resp -> Ok resp
          | _ -> Error (`Transient, "garbled reply: unexpected frame shape")))

(** Send [reqs] as one [{"op": "batch"}] exchange — one line out, one line
    back — and return per-item results in request order.  The retry
    envelope is the same as {!client_query}'s and covers the whole
    exchange: a garbled or truncated batch reply retries everything, while
    a structured per-item error (bad request inside an otherwise healthy
    batch) is that item's final [Error].  An empty [reqs] is one empty
    round trip. *)
let client_batch ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ?(protocol = Proto.Auto) ~path reqs =
  with_retries ~retries ~backoff_s ~backoff_seed ~metrics (fun () ->
      attempt_op ~protocol ~timeout_s ~path ~op:(Op_batch reqs)
        ~interpret:(fun j ->
          match Jsonout.member "results" j with
          | Some (Jsonout.List items) when List.length items = List.length reqs ->
              Ok
                (List.map
                   (fun item ->
                     match Jsonout.member "ok" item with
                     | Some (Jsonout.Bool false) -> Error (snd (reply_error item))
                     | _ -> (
                         match response_of_json item with
                         | Ok resp -> Ok resp
                         | Error msg -> Error ("garbled batch item: " ^ msg)))
                   items)
          | Some (Jsonout.List items) ->
              Error
                ( `Transient,
                  Printf.sprintf "garbled reply: %d results for %d requests" (List.length items)
                    (List.length reqs) )
          | _ -> Error (`Transient, "garbled reply: batch reply without results"))
        ~interpret_bin:(function
          | R_batch items when List.length items = List.length reqs ->
              Ok (List.map (function Ok resp -> Ok resp | Error (_, msg) -> Error msg) items)
          | R_batch items ->
              Error
                ( `Transient,
                  Printf.sprintf "garbled reply: %d results for %d requests" (List.length items)
                    (List.length reqs) )
          | _ -> Error (`Transient, "garbled reply: unexpected frame shape")))

(** Fetch the server's telemetry ([{"op": "stats"}]); returns the [stats]
    object of the reply. *)
let client_stats ?(timeout_s = 30.0) ?(protocol = Proto.Auto) ~path () =
  match
    attempt_op ~protocol ~timeout_s ~path ~op:Op_stats
      ~interpret:(fun j ->
        match Jsonout.member "stats" j with
        | Some stats -> Ok stats
        | None -> Error (`Transient, "garbled reply: stats reply without stats"))
      ~interpret_bin:(function
        | R_stats stats -> Ok stats
        | _ -> Error (`Transient, "garbled reply: unexpected frame shape"))
  with
  | Ok stats -> Ok stats
  | Error (_, msg) -> Error msg

(** Fetch the server's cheap liveness payload ([{"op": "health"}]);
    returns the [health] object of the reply. *)
let client_health ?(timeout_s = 30.0) ?(protocol = Proto.Auto) ~path () =
  match
    attempt_op ~protocol ~timeout_s ~path ~op:Op_health
      ~interpret:(fun j ->
        match Jsonout.member "health" j with
        | Some health -> Ok health
        | None -> Error (`Transient, "garbled reply: health reply without health"))
      ~interpret_bin:(function
        | R_health health -> Ok health
        | _ -> Error (`Transient, "garbled reply: unexpected frame shape"))
  with
  | Ok health -> Ok health
  | Error (_, msg) -> Error msg

(** Ask a server at [path] to shut down. *)
let client_shutdown ?(protocol = Proto.Auto) ~path () =
  ignore
    (attempt_op ~protocol ~timeout_s:30.0 ~path ~op:Op_shutdown
       ~interpret:(fun _ -> Ok ())
       ~interpret_bin:(fun _ -> Ok ()))
